# Development targets for the icost repository. `make ci` is the gate
# the CI workflow runs; keep it green before pushing.

GO ?= go

.PHONY: build test race bench fuzz fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench smoke: one iteration of every benchmark, just to prove they run.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# fuzz smoke: a few seconds per fuzz target.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadTrace -fuzztime=10s ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=10s ./internal/trace/

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench
