# Development targets for the icost repository. `make ci` is the gate
# the CI workflow runs; keep it green before pushing.

GO ?= go

.PHONY: build test race bench bench-batch bench-cold bench-fleet bench-graph bench-sens bench-shard chaos fuzz fmt vet lint ci

# Seconds-per-target budget for the fuzz smoke; CI uses the default.
FUZZTIME ?= 5s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench smoke: one iteration of every benchmark with allocation
# stats, just to prove they run. Kept to one iteration so CI stays
# under ~2 minutes.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# bench-batch: stable timings for the batched-evaluation hot paths;
# run before and after touching internal/depgraph/batch.go or
# internal/cost, and record results in BENCH_batch.json.
bench-batch:
	$(GO) test -run='^$$' -bench='BenchmarkICostPair|BenchmarkICostBatch|BenchmarkMatrixBatch|BenchmarkExecTimeWarm' -benchmem -benchtime=2s -count=3 .

# bench-cold: the cold-path numbers BENCH_coldpath.json tracks —
# pipelined session build, multisim fan-out, profiler fragment
# analysis — always with -benchmem, since the cold-path work is
# judged on bytes/op and allocs/op as much as on ns/op. CI runs it
# with COLD_BENCHTIME=1x as a smoke; use the 2s default for numbers
# worth recording.
COLD_BENCHTIME ?= 2s

bench-cold:
	$(GO) test -run='^$$' -bench=BenchmarkSessionBuild -benchmem -benchtime=$(COLD_BENCHTIME) ./internal/engine/
	$(GO) test -run='^$$' -bench=BenchmarkMultisimBreakdown -benchmem -benchtime=$(COLD_BENCHTIME) ./internal/multisim/
	$(GO) test -run='^$$' -bench=BenchmarkProfilerAnalyze -benchmem -benchtime=$(COLD_BENCHTIME) ./internal/profiler/

# bench-fleet: the ingestion-path numbers BENCH_fleet.json's service
# view complements — merge throughput, memoized vs cold fleet queries
# — with -benchmem, since the aggregator is judged on retained bytes
# as much as on ns/op. The second step is the no-regression guard:
# the fleet's memoized query path must stay in the same performance
# class as the engine's warm (result-cached) query path. CI runs the
# benchmarks with FLEET_BENCHTIME=1x as a smoke; use the 2s default
# for numbers worth recording.
FLEET_BENCHTIME ?= 2s

bench-fleet:
	$(GO) test -run='^$$' -bench='BenchmarkFleet' -benchmem -benchtime=$(FLEET_BENCHTIME) ./internal/fleet/
	$(GO) test -run='TestMemoizedQueryTracksEngineWarmPath' -count=1 ./internal/fleet/

# bench-graph: the flat-CSR walk kernels against the legacy layout's
# reference implementations — forward walk, backward (slack) walk and
# the multi-lane batch kernel — always with -benchmem, since the CSR
# refactor is judged on bytes/op as much as ns/op. Numbers land in
# BENCH_graph.json. The second step is the warm-path no-regression
# guard CI leans on: relative CSR-vs-legacy timing in one process, so
# machine speed never matters. CI runs the benchmarks with
# GRAPH_BENCHTIME=1x as a smoke; use the 2s default for numbers worth
# recording.
GRAPH_BENCHTIME ?= 2s

bench-graph:
	$(GO) test -run='^$$' -bench='BenchmarkForwardWalk|BenchmarkBackwardWalk|BenchmarkBatchEval' -benchmem -benchtime=$(GRAPH_BENCHTIME) -count=3 ./internal/depgraph/
	$(GO) test -run='TestWarmPathNoRegression' -count=1 ./internal/depgraph/

# bench-sens: the parametric-sensitivity numbers BENCH_sens.json
# tracks — curve-evaluation throughput (all eight categories over the
# default α grid in one batched walk) plus the refutation harness's
# measured model-vs-simulator error envelope. The second step is the
# no-regression gate CI leans on: TestRefuteEnvelopeGuard re-runs the
# harness and fails if any knob's relative error exceeds the recorded
# envelope (regenerate deliberately with REFUTE_WRITE=1). CI runs the
# benchmark with SENS_BENCHTIME=1x as a smoke; use the 2s default for
# numbers worth recording.
SENS_BENCHTIME ?= 2s

bench-sens:
	$(GO) test -run='^$$' -bench='BenchmarkSensitivityCurves' -benchmem -benchtime=$(SENS_BENCHTIME) ./internal/cost/
	$(GO) test -run='TestRefuteEnvelopeGuard' -count=1 ./internal/refute/

# bench-shard: the horizontal-scaling numbers BENCH_shard.json tracks
# — saturation sweeps of a direct single shard vs the routed 3-shard
# cluster, plus the hedged-vs-unhedged tail comparison under a seeded
# slow-forward perturbation. The injected per-query service time
# (icostload -service) pins shard capacity to worker count, so the
# sweep measures topology rather than host CPU count. The second step
# is the no-regression guard CI leans on: a short in-process run that
# must show the cluster out-sustaining the single shard at comparable
# p50 — relative within one process, so machine speed never matters.
SHARD_DURATION ?= 2s

bench-shard:
	$(GO) run ./cmd/icostload -duration $(SHARD_DURATION) -sweep 100,200,400,800 -rate 150 -json BENCH_shard.json
	$(GO) test -run='TestShardBenchGuard' -count=1 ./cmd/icostload/

# chaos: the fault-injection suite (internal/faultinject + every
# TestChaos* test) under the race detector. Seeded fault plans make a
# failure replayable: rerun with the seed from the failure log. The
# router drills include the backend-kill storm: shards hard-killed
# mid-query while hedged reads ride replicas and writes re-route.
chaos:
	$(GO) test -race ./internal/faultinject/
	$(GO) test -race -run='TestChaos' ./internal/engine/ ./internal/fleet/ ./internal/router/ ./cmd/icostd/

# fuzz smoke: FUZZTIME per fuzz target (override: make fuzz FUZZTIME=1m).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadTrace -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzReadSamples -fuzztime=$(FUZZTIME) ./internal/profiler/
	$(GO) test -run='^$$' -fuzz=FuzzWindowFold -fuzztime=$(FUZZTIME) ./internal/window/

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint: go vet plus the repo's own analyzer suite (cmd/icostvet) —
# all ten analyzers. Zero unsuppressed findings is the bar;
# deliberate exceptions carry `//lint:ignore <analyzer> <reason>`
# annotations in the source. The hotalloc analyzer needs a toolchain
# whose `go build -gcflags=-m` emits parseable escape output; the
# driver probes for that and skips hotalloc with a stderr notice
# (never silently) when the probe fails, so `make lint` stays usable
# on exotic toolchains.
lint: vet
	$(GO) run ./cmd/icostvet ./...

ci: fmt lint build race chaos bench
	$(MAKE) bench-fleet FLEET_BENCHTIME=1x
	$(MAKE) bench-graph GRAPH_BENCHTIME=1x
	$(MAKE) bench-sens SENS_BENCHTIME=1x
	$(GO) test -run='TestShardBenchGuard' -count=1 ./cmd/icostload/
