// Benchmark harness: one testing.B benchmark per table and figure of
// the paper (DESIGN.md §4), plus the ablation benches DESIGN.md §5
// calls out and microbenchmarks of the core engines. Accuracy-style
// ablations report their quality figure through b.ReportMetric.
//
// Run with: go test -bench=. -benchmem
package icost_test

import (
	"math"
	"testing"

	"icost"
	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/experiments"
	"icost/internal/multisim"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/workload"
)

// benchScale keeps each iteration around tens of milliseconds.
func benchConfig(benches ...string) experiments.Config {
	return experiments.Config{TraceLen: 10000, Warmup: 10000, Seed: 42, Benches: benches}
}

// --- one benchmark per paper table/figure ---

func BenchmarkTable4a(b *testing.B) {
	cfg := benchConfig() // full 12-benchmark suite
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4b(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4c(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4c(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		full, err := experiments.Figure1(cfg, "gcc")
		if err != nil {
			b.Fatal(err)
		}
		if err := full.CheckIdentity(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	// The graph-model instance: build and evaluate a small graph on
	// the Figure 2 machine.
	cfg := depgraph.DefaultConfig()
	cfg.Window = 4
	cfg.FetchBW = 2
	cfg.CommitBW = 2
	for i := 0; i < b.N; i++ {
		g := depgraph.New(cfg, 7)
		for j := 0; j < 7; j++ {
			g.Info[j] = depgraph.InstInfo{Op: 1, SIdx: int32(j)}
		}
		if g.ExecTime(depgraph.Ideal{}) <= 0 {
			b.Fatal("empty time")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(cfg, "gap"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec42(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sec42(cfg, "gap"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	cfg := benchConfig("gzip") // one benchmark; multisim is 2^n sims
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		g, p := experiments.Table7Summary(rows, 5)
		b.ReportMetric(g, "graphErrPts")
		b.ReportMetric(p, "profErrPts")
	}
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkGraphOverhead measures the simulator with and without
// graph retention (the paper reports ~2x slowdown for graph building;
// our simulator computes through the graph, so retention is nearly
// free — the interesting ratio is simulation vs pure trace
// generation, reported by BenchmarkWorkloadExecute).
func BenchmarkGraphOverhead(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("keepGraph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{KeepGraph: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dropGraph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGraphVsResim compares the cost of one cost query via graph
// re-evaluation against one idealized re-simulation — the paper's
// headline efficiency argument for the graph method.
func BenchmarkGraphVsResim(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := cost.New(res.Graph)
			if a.Cost(depgraph.IdealDMiss) < 0 {
				b.Fatal("negative cost")
			}
		}
	})
	b.Run("resim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := multisim.New(tr, ooo.DefaultConfig(), 0)
			if err != nil {
				b.Fatal(err)
			}
			if a.Cost(depgraph.IdealDMiss) < 0 {
				b.Fatal("negative cost")
			}
		}
	})
}

// BenchmarkWindowApproximation ablates the paper's 20x window
// approximation of an infinite window (Table 1 footnote), reporting
// the additional speedup 100x would find (ideally ~0).
func BenchmarkWindowApproximation(b *testing.B) {
	tr, err := workload.Load("vortex", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		g20 := res.Graph
		t20 := g20.ExecTime(depgraph.Ideal{Global: depgraph.IdealWindow})
		cfg100 := g20.Cfg
		cfg100.WindowIdealFactor = 100
		g100 := g20.WithConfig(cfg100)
		t100 := g100.ExecTime(depgraph.Ideal{Global: depgraph.IdealWindow})
		b.ReportMetric(100*(float64(t20)/float64(t100)-1), "extraSpeedupPct")
	}
}

// BenchmarkSignatureWidth ablates 1-bit vs 2-bit signatures
// (DESIGN.md §5.4), reporting each width's mean absolute breakdown
// error against the full-graph analysis.
func BenchmarkSignatureWidth(b *testing.B) {
	w, err := workload.New("parser", 42)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Execute(30000, 43)
	if err != nil {
		b.Fatal(err)
	}
	const warmup = 10000
	res, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{KeepGraph: true, Warmup: warmup})
	if err != nil {
		b.Fatal(err)
	}
	ga := cost.New(res.Graph)
	cats := breakdown.BaseCategories()
	truth := map[string]float64{}
	for _, c := range cats {
		truth[c.Name] = 100 * float64(ga.Cost(c.Flags)) / float64(ga.BaseTime())
	}
	for _, bits := range []int{1, 2} {
		bits := bits
		name := "2bit"
		if bits == 1 {
			name = "1bit"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := profiler.DefaultConfig()
				cfg.SignatureBits = bits
				cfg.Fragments = 10
				est, _, err := profiler.Profile(w.Prog, ooo.DefaultConfig().Graph,
					tr, res.Graph, warmup, cfg, cats[0], cats)
				if err != nil {
					b.Fatal(err)
				}
				sum, n := 0.0, 0
				for _, c := range cats {
					sum += math.Abs(est.Pct[c.Name] - truth[c.Name])
					n++
				}
				b.ReportMetric(sum/float64(n), "errPts")
			}
		})
	}
}

// --- microbenchmarks of the core engines ---

func BenchmarkWorkloadGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.New("gcc", uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadExecute(b *testing.B) {
	w, err := workload.New("gcc", 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Execute(20000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(20000*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkSimulate(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(20000*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkGraphEval(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Graph.ExecTime(depgraph.Ideal{Global: depgraph.IdealDMiss})
	}
	b.ReportMetric(20000*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkICostPair(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := cost.New(res.Graph) // fresh memo each iteration
		if _, err := a.ICost(depgraph.IdealDL1, depgraph.IdealWindow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkICostBatch is the batched-evaluator acceptance workload: a
// 4-set icost query (16 subset unions) against a fresh analyzer, so
// every term needs a graph evaluation. Before the batched kernel this
// ran 16 scalar walks; after, one multi-lane walk.
func BenchmarkICostBatch(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := cost.New(res.Graph) // fresh memo each iteration
		_, err := a.ICost(depgraph.IdealDL1, depgraph.IdealWindow,
			depgraph.IdealDMiss, depgraph.IdealBMisp)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatrixBatch measures the all-pairs interaction-cost matrix
// over the eight base categories (36 distinct subset unions) on a
// fresh analyzer — the engine's OpMatrix cold path.
func BenchmarkMatrixBatch(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cats := breakdown.BaseCategories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := cost.New(res.Graph) // fresh memo each iteration
		if _, err := breakdown.ComputeMatrix(a, cats, "gcc"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecTimeWarm measures a single scalar ExecTime evaluation
// with the analyzer memo bypassed — the path whose per-call scratch
// allocation the depgraph pool removes.
func BenchmarkExecTimeWarm(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 20000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.Graph.ExecTime(depgraph.Ideal{Global: depgraph.IdealWindow}) <= 0 {
			b.Fatal("empty time")
		}
	}
}

func BenchmarkFragmentReconstruction(b *testing.B) {
	w, err := workload.New("gzip", 42)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Execute(30000, 43)
	if err != nil {
		b.Fatal(err)
	}
	const warmup = 10000
	res, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{KeepGraph: true, Warmup: warmup})
	if err != nil {
		b.Fatal(err)
	}
	cfg := profiler.DefaultConfig()
	s, err := profiler.Collect(tr, res.Graph, warmup, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cats := breakdown.BaseCategories()
		p, err := profiler.New(w.Prog, ooo.DefaultConfig().Graph, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Analyze(cats[0], cats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacade exercises the public API end to end (also keeps the
// facade compiled against its implementation).
func BenchmarkFacade(b *testing.B) {
	tr, err := icost.LoadWorkload("gzip", 42, 10000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := icost.Simulate(tr, icost.DefaultMachine(), icost.Options{KeepGraph: true})
		if err != nil {
			b.Fatal(err)
		}
		a := icost.NewAnalyzer(res.Graph)
		ic, err := a.ICost(icost.IdealDMiss, icost.IdealWindow)
		if err != nil {
			b.Fatal(err)
		}
		_ = icost.Classify(ic, 0)
	}
}

// BenchmarkWrongPath ablates wrong-path fetch modeling (off by
// default), reporting the icache-miss delta it introduces.
func BenchmarkWrongPath(b *testing.B) {
	tr, err := workload.Load("gcc", 42, 40000)
	if err != nil {
		b.Fatal(err)
	}
	for _, wp := range []bool{false, true} {
		wp := wp
		name := "off"
		if wp {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := ooo.DefaultConfig()
			cfg.ModelWrongPath = wp
			for i := 0; i < b.N; i++ {
				res, err := ooo.Simulate(tr, cfg, ooo.Options{Warmup: 20000})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.IL1Misses), "il1miss")
			}
		})
	}
}
