// Command icost runs one benchmark through the out-of-order simulator
// and prints its interaction-cost breakdown (paper Section 2.3).
//
// Usage:
//
//	icost [-bench name] [-n insts] [-warmup insts] [-seed s]
//	      [-focus cat] [-dl1 lat] [-window size] [-wakeup extra]
//	      [-recovery cycles] [-lanes k] [-full cat1,cat2,...] [-matrix]
//	      [-naive] [-cp] [-slack] [-phases k] [-dot lo:hi] [-save f]
//	      [-load f] [-engine]
//
// Examples:
//
//	icost -bench mcf                      # Table 4a-style row for mcf
//	icost -bench gap -focus shalu -wakeup 1
//	icost -bench gcc -full dmiss,bmisp,win  # full power-set breakdown
//	icost -bench twolf -matrix            # all-pairs interaction costs
//	icost -bench gzip -phases 5           # bottleneck mix over time
//	icost -bench gzip -dot 100:120        # Graphviz of a graph window
//	icost -bench mcf -engine              # same analysis via internal/engine, JSON out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/engine"
	"icost/internal/experiments"
	"icost/internal/ooo"
	"icost/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse flags, analyze, print, and
// return the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icost", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", "gzip", "benchmark name")
		n         = fs.Int("n", 30000, "measured instructions")
		warmup    = fs.Int("warmup", 30000, "warmup instructions")
		seed      = fs.Uint64("seed", 42, "workload seed")
		focus     = fs.String("focus", "dl1", "focus category for pairwise icosts")
		dl1       = fs.Int("dl1", 2, "level-one data-cache latency")
		window    = fs.Int("window", 64, "instruction window size")
		wakeup    = fs.Int("wakeup", 0, "extra issue-wakeup latency")
		recovery  = fs.Int("recovery", 8, "branch-misprediction recovery cycles")
		lanes     = fs.Int("lanes", 0, "batched-evaluation lane width (power of two, up to 64; 0 = auto)")
		full      = fs.String("full", "", "comma-separated categories for a full power-set breakdown")
		matrix    = fs.Bool("matrix", false, "print the all-pairs interaction-cost matrix")
		naive     = fs.Bool("naive", false, "print the traditional count-x-latency breakdown for contrast")
		cp        = fs.Bool("cp", false, "print the critical-path attribution by edge kind")
		slack     = fs.Bool("slack", false, "print the slack distribution (de-optimization headroom)")
		dot       = fs.String("dot", "", "write a Graphviz rendering of instructions lo:hi, e.g. -dot 100:120")
		phases    = fs.Int("phases", 0, "split the execution into K intervals and print each interval's top costs")
		save      = fs.String("save", "", "save the generated trace to a file and exit")
		load      = fs.String("load", "", "analyze a previously saved trace instead of generating one")
		useEngine = fs.Bool("engine", false, "route the query through internal/engine and print the JSON response")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "icost:", err)
		return 1
	}
	if *n < 1 || *warmup < 0 {
		return fail(fmt.Errorf("-n must be >= 1 and -warmup >= 0"))
	}

	cfg := experiments.Config{TraceLen: *n, Warmup: *warmup, Seed: *seed}
	mc := ooo.DefaultConfig().
		WithDL1Latency(*dl1).
		WithWindow(*window).
		WithWakeupExtra(*wakeup).
		WithBranchRecovery(*recovery)
	mc.Graph.Lanes = *lanes
	if err := mc.Graph.Validate(); err != nil {
		return fail(err)
	}

	if *useEngine {
		return runEngine(stdout, stderr, engineQuery{
			bench: *bench, n: *n, warmup: *warmup, seed: *seed,
			dl1: *dl1, window: *window, wakeup: *wakeup, recovery: *recovery,
			lanes: *lanes,
			focus: *focus, full: *full, matrix: *matrix, slack: *slack,
			incompatible: *save != "" || *load != "" || *dot != "" ||
				*phases > 0 || *cp || *naive,
		})
	}

	if *save != "" {
		tr, err := experiments.LoadTrace(cfg, *bench)
		if err != nil {
			return fail(err)
		}
		f, err := os.Create(*save)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "saved %d instructions of %s to %s\n", tr.Len(), tr.Name, *save)
		return 0
	}

	var a *cost.Analyzer
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return fail(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		if *warmup >= tr.Len() {
			*warmup = tr.Len() / 2
		}
		res, err := ooo.Simulate(tr, mc, ooo.Options{KeepGraph: true, Warmup: *warmup})
		if err != nil {
			return fail(err)
		}
		*bench = tr.Name
		a = cost.New(res.Graph)
	} else {
		var err error
		a, err = experiments.GraphAnalyzer(cfg, *bench, mc)
		if err != nil {
			return fail(err)
		}
	}
	cats := breakdown.BaseCategories()

	if *matrix {
		m, err := breakdown.ComputeMatrix(a, cats, *bench)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, m)
		sa, sb, sp := m.StrongestSerial()
		if sp < 0 {
			fmt.Fprintf(stdout, "strongest serial pair:   %s+%s (%.1f%%)\n", sa.Name, sb.Name, sp)
		}
		pa, pb, pp := m.StrongestParallel()
		if pp > 0 {
			fmt.Fprintf(stdout, "strongest parallel pair: %s+%s (+%.1f%%)\n", pa.Name, pb.Name, pp)
		}
		return 0
	}
	if *naive {
		nv, err := breakdown.ComputeNaive(a, cats, *bench)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, nv)
		return 0
	}
	if *cp {
		printCriticalPath(stdout, a)
		return 0
	}
	if *slack {
		printSlack(stdout, a)
		return 0
	}
	if *phases > 0 {
		if err := printPhases(stdout, a, *phases); err != nil {
			return fail(err)
		}
		return 0
	}
	if *dot != "" {
		var lo, hi int
		if _, err := fmt.Sscanf(*dot, "%d:%d", &lo, &hi); err != nil {
			return fail(fmt.Errorf("bad -dot range %q (want lo:hi): %w", *dot, err))
		}
		if err := a.Graph().DOT(stdout, lo, hi, depgraph.Ideal{}); err != nil {
			return fail(err)
		}
		return 0
	}

	if *full != "" {
		var sel []breakdown.Category
		for _, name := range strings.Split(*full, ",") {
			found := false
			for _, c := range cats {
				if c.Name == name {
					sel = append(sel, c)
					found = true
				}
			}
			if !found {
				return fail(fmt.Errorf("unknown category %q", name))
			}
		}
		fb, err := breakdown.ComputeFull(a, sel, *bench)
		if err != nil {
			return fail(err)
		}
		if err := fb.CheckIdentity(); err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, breakdown.StackedBar(fb, 50))
		return 0
	}

	var fc breakdown.Category
	ok := false
	for _, c := range cats {
		if c.Name == *focus {
			fc, ok = c, true
		}
	}
	if !ok {
		return fail(fmt.Errorf("unknown focus category %q", *focus))
	}
	bd, err := breakdown.Focus(a, fc, cats, *bench)
	if err != nil {
		return fail(err)
	}
	insts := a.Graph().Len()
	fmt.Fprintf(stdout, "%s: %d cycles over %d instructions (IPC %.2f)\n",
		*bench, bd.TotalCycles, insts, float64(insts)/float64(bd.TotalCycles))
	fmt.Fprint(stdout, breakdown.Table([]*breakdown.Focused{bd}))
	return 0
}

// engineQuery carries the flag state runEngine needs.
type engineQuery struct {
	bench                                string
	n, warmup                            int
	seed                                 uint64
	dl1, window, wakeup, recovery, lanes int
	focus, full                          string
	matrix, slack                        bool
	incompatible                         bool
}

// runEngine answers the query through internal/engine — the same code
// path cmd/icostd serves — and prints the engine's JSON response.
func runEngine(stdout, stderr io.Writer, eq engineQuery) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "icost:", err)
		return 1
	}
	if eq.incompatible {
		return fail(fmt.Errorf("-engine supports the breakdown, -full, -matrix and -slack views only"))
	}
	q := engine.Query{
		Session: engine.SessionSpec{
			Bench: eq.bench, Seed: eq.seed, TraceLen: eq.n, Warmup: eq.warmup,
			DL1Latency: eq.dl1, Window: eq.window,
			WakeupExtra: eq.wakeup, BranchRecovery: eq.recovery,
		},
	}
	switch {
	case eq.matrix:
		q.Op = engine.OpMatrix
	case eq.slack:
		q.Op = engine.OpSlack
	case eq.full != "":
		q.Op = engine.OpFull
		q.Cats = strings.Split(eq.full, ",")
	default:
		q.Op = engine.OpBreakdown
		q.Focus = eq.focus
	}
	e := engine.New(engine.Config{Lanes: eq.lanes})
	defer e.Close()
	resp, err := e.Query(context.Background(), q)
	if err != nil {
		return fail(err)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		return fail(err)
	}
	return 0
}

// printCriticalPath attributes one critical path's cycles by edge
// kind (the classic criticality view that icost breakdowns refine).
func printCriticalPath(w io.Writer, a *cost.Analyzer) {
	g := a.Graph()
	tally := g.CriticalTally(depgraph.Ideal{})
	fmt.Fprintf(w, "critical path: %d cycles across %d edge kinds\n", tally.Total, len(tally.Cycles))
	for k := range tally.Cycles {
		if tally.Edges[k] == 0 {
			continue
		}
		kind := depgraph.EdgeKind(k)
		fmt.Fprintf(w, "  %-4v %8d cycles  %6d edges  %5.1f%%\n",
			kind, tally.Cycles[k], tally.Edges[k],
			100*float64(tally.Cycles[k])/float64(tally.Total))
	}
}

// printSlack summarizes per-instruction slack: how much latency could
// be added for free (de-optimization headroom, paper Section 1).
func printSlack(w io.Writer, a *cost.Analyzer) {
	g := a.Graph()
	slacks := g.Slacks(depgraph.Ideal{})
	var zero, small, large int
	var sum int64
	for _, s := range slacks {
		sum += s
		switch {
		case s == 0:
			zero++
		case s < 10:
			small++
		default:
			large++
		}
	}
	n := len(slacks)
	fmt.Fprintf(w, "slack over %d instructions (cycles an instruction can slip for free):\n", n)
	fmt.Fprintf(w, "  critical (slack = 0):   %6d (%.1f%%)\n", zero, 100*float64(zero)/float64(n))
	fmt.Fprintf(w, "  slack 1..9:             %6d (%.1f%%)\n", small, 100*float64(small)/float64(n))
	fmt.Fprintf(w, "  slack >= 10:            %6d (%.1f%%)  <- de-optimization candidates\n",
		large, 100*float64(large)/float64(n))
	fmt.Fprintf(w, "  mean slack:             %.1f cycles\n", float64(sum)/float64(n))
}

// printPhases shows how the bottleneck mix shifts over the execution:
// one row per interval with the interval's dominant categories.
func printPhases(w io.Writer, a *cost.Analyzer, k int) error {
	g := a.Graph()
	parts, err := g.Phases(k)
	if err != nil {
		return err
	}
	cats := breakdown.BaseCategories()
	masks := make([]depgraph.Flags, 0, len(cats))
	for _, c := range cats {
		masks = append(masks, c.Flags)
	}
	fmt.Fprintf(w, "phase  insts   cycles   IPC    top categories\n")
	for pi, pg := range parts {
		pa := cost.New(pg)
		// One batched walk per phase graph instead of one scalar walk
		// per category.
		if err := pa.PrewarmCtx(context.Background(), masks); err != nil {
			return err
		}
		type cv struct {
			name string
			pct  float64
		}
		var top []cv
		for _, c := range cats {
			top = append(top, cv{c.Name,
				100 * float64(pa.Cost(c.Flags)) / float64(pa.BaseTime())})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].pct > top[j].pct })
		fmt.Fprintf(w, "%5d  %5d  %7d  %4.2f   %s %.1f%%, %s %.1f%%, %s %.1f%%\n",
			pi, pg.Len(), pa.BaseTime(),
			float64(pg.Len())/float64(pa.BaseTime()),
			top[0].name, top[0].pct, top[1].name, top[1].pct, top[2].name, top[2].pct)
	}
	return nil
}
