// Command icost runs one benchmark through the out-of-order simulator
// and prints its interaction-cost breakdown (paper Section 2.3).
//
// Usage:
//
//	icost [-bench name] [-n insts] [-warmup insts] [-seed s]
//	      [-focus cat] [-dl1 lat] [-window size] [-wakeup extra]
//	      [-recovery cycles] [-full cat1,cat2,...] [-matrix] [-naive]
//	      [-cp] [-slack] [-phases k] [-dot lo:hi] [-save f] [-load f]
//
// Examples:
//
//	icost -bench mcf                      # Table 4a-style row for mcf
//	icost -bench gap -focus shalu -wakeup 1
//	icost -bench gcc -full dmiss,bmisp,win  # full power-set breakdown
//	icost -bench twolf -matrix            # all-pairs interaction costs
//	icost -bench gzip -phases 5           # bottleneck mix over time
//	icost -bench gzip -dot 100:120        # Graphviz of a graph window
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/experiments"
	"icost/internal/ooo"
	"icost/internal/trace"
)

func main() {
	var (
		bench    = flag.String("bench", "gzip", "benchmark name")
		n        = flag.Int("n", 30000, "measured instructions")
		warmup   = flag.Int("warmup", 30000, "warmup instructions")
		seed     = flag.Uint64("seed", 42, "workload seed")
		focus    = flag.String("focus", "dl1", "focus category for pairwise icosts")
		dl1      = flag.Int("dl1", 2, "level-one data-cache latency")
		window   = flag.Int("window", 64, "instruction window size")
		wakeup   = flag.Int("wakeup", 0, "extra issue-wakeup latency")
		recovery = flag.Int("recovery", 8, "branch-misprediction recovery cycles")
		full     = flag.String("full", "", "comma-separated categories for a full power-set breakdown")
		matrix   = flag.Bool("matrix", false, "print the all-pairs interaction-cost matrix")
		naive    = flag.Bool("naive", false, "print the traditional count-x-latency breakdown for contrast")
		cp       = flag.Bool("cp", false, "print the critical-path attribution by edge kind")
		slack    = flag.Bool("slack", false, "print the slack distribution (de-optimization headroom)")
		dot      = flag.String("dot", "", "write a Graphviz rendering of instructions lo:hi, e.g. -dot 100:120")
		phases   = flag.Int("phases", 0, "split the execution into K intervals and print each interval's top costs")
		save     = flag.String("save", "", "save the generated trace to a file and exit")
		load     = flag.String("load", "", "analyze a previously saved trace instead of generating one")
	)
	flag.Parse()

	cfg := experiments.Config{TraceLen: *n, Warmup: *warmup, Seed: *seed}
	mc := ooo.DefaultConfig().
		WithDL1Latency(*dl1).
		WithWindow(*window).
		WithWakeupExtra(*wakeup).
		WithBranchRecovery(*recovery)

	if *save != "" {
		tr, err := experiments.LoadTrace(cfg, *bench)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			fail(err)
		}
		fmt.Printf("saved %d instructions of %s to %s\n", tr.Len(), tr.Name, *save)
		return
	}

	var a *cost.Analyzer
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fail(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if *warmup >= tr.Len() {
			*warmup = tr.Len() / 2
		}
		res, err := ooo.Simulate(tr, mc, ooo.Options{KeepGraph: true, Warmup: *warmup})
		if err != nil {
			fail(err)
		}
		*bench = tr.Name
		a = cost.New(res.Graph)
	} else {
		var err error
		a, err = experiments.GraphAnalyzer(cfg, *bench, mc)
		if err != nil {
			fail(err)
		}
	}
	cats := breakdown.BaseCategories()

	if *matrix {
		m, err := breakdown.ComputeMatrix(a, cats, *bench)
		if err != nil {
			fail(err)
		}
		fmt.Print(m)
		sa, sb, sp := m.StrongestSerial()
		if sp < 0 {
			fmt.Printf("strongest serial pair:   %s+%s (%.1f%%)\n", sa.Name, sb.Name, sp)
		}
		pa, pb, pp := m.StrongestParallel()
		if pp > 0 {
			fmt.Printf("strongest parallel pair: %s+%s (+%.1f%%)\n", pa.Name, pb.Name, pp)
		}
		return
	}
	if *naive {
		nv, err := breakdown.ComputeNaive(a, cats, *bench)
		if err != nil {
			fail(err)
		}
		fmt.Print(nv)
		return
	}
	if *cp {
		printCriticalPath(a)
		return
	}
	if *slack {
		printSlack(a)
		return
	}
	if *phases > 0 {
		printPhases(a, *phases)
		return
	}
	if *dot != "" {
		var lo, hi int
		if _, err := fmt.Sscanf(*dot, "%d:%d", &lo, &hi); err != nil {
			fail(fmt.Errorf("bad -dot range %q (want lo:hi): %w", *dot, err))
		}
		if err := a.Graph().DOT(os.Stdout, lo, hi, depgraph.Ideal{}); err != nil {
			fail(err)
		}
		return
	}

	if *full != "" {
		var sel []breakdown.Category
		for _, name := range strings.Split(*full, ",") {
			found := false
			for _, c := range cats {
				if c.Name == name {
					sel = append(sel, c)
					found = true
				}
			}
			if !found {
				fail(fmt.Errorf("unknown category %q", name))
			}
		}
		fb, err := breakdown.ComputeFull(a, sel, *bench)
		if err != nil {
			fail(err)
		}
		if err := fb.CheckIdentity(); err != nil {
			fail(err)
		}
		fmt.Print(breakdown.StackedBar(fb, 50))
		return
	}

	var fc breakdown.Category
	ok := false
	for _, c := range cats {
		if c.Name == *focus {
			fc, ok = c, true
		}
	}
	if !ok {
		fail(fmt.Errorf("unknown focus category %q", *focus))
	}
	bd, err := breakdown.Focus(a, fc, cats, *bench)
	if err != nil {
		fail(err)
	}
	insts := a.Graph().Len()
	fmt.Printf("%s: %d cycles over %d instructions (IPC %.2f)\n",
		*bench, bd.TotalCycles, insts, float64(insts)/float64(bd.TotalCycles))
	fmt.Print(breakdown.Table([]*breakdown.Focused{bd}))
}

// printCriticalPath attributes one critical path's cycles by edge
// kind (the classic criticality view that icost breakdowns refine).
func printCriticalPath(a *cost.Analyzer) {
	g := a.Graph()
	tally := g.CriticalTally(depgraph.Ideal{})
	fmt.Printf("critical path: %d cycles across %d edge kinds\n", tally.Total, len(tally.Cycles))
	for k := range tally.Cycles {
		if tally.Edges[k] == 0 {
			continue
		}
		kind := depgraph.EdgeKind(k)
		fmt.Printf("  %-4v %8d cycles  %6d edges  %5.1f%%\n",
			kind, tally.Cycles[k], tally.Edges[k],
			100*float64(tally.Cycles[k])/float64(tally.Total))
	}
}

// printSlack summarizes per-instruction slack: how much latency could
// be added for free (de-optimization headroom, paper Section 1).
func printSlack(a *cost.Analyzer) {
	g := a.Graph()
	slacks := g.Slacks(depgraph.Ideal{})
	var zero, small, large int
	var sum int64
	for _, s := range slacks {
		sum += s
		switch {
		case s == 0:
			zero++
		case s < 10:
			small++
		default:
			large++
		}
	}
	n := len(slacks)
	fmt.Printf("slack over %d instructions (cycles an instruction can slip for free):\n", n)
	fmt.Printf("  critical (slack = 0):   %6d (%.1f%%)\n", zero, 100*float64(zero)/float64(n))
	fmt.Printf("  slack 1..9:             %6d (%.1f%%)\n", small, 100*float64(small)/float64(n))
	fmt.Printf("  slack >= 10:            %6d (%.1f%%)  <- de-optimization candidates\n",
		large, 100*float64(large)/float64(n))
	fmt.Printf("  mean slack:             %.1f cycles\n", float64(sum)/float64(n))
}

// printPhases shows how the bottleneck mix shifts over the execution:
// one row per interval with the interval's dominant categories.
func printPhases(a *cost.Analyzer, k int) {
	g := a.Graph()
	parts, err := g.Phases(k)
	if err != nil {
		fail(err)
	}
	cats := breakdown.BaseCategories()
	fmt.Printf("phase  insts   cycles   IPC    top categories\n")
	for pi, pg := range parts {
		pa := cost.New(pg)
		type cv struct {
			name string
			pct  float64
		}
		var top []cv
		for _, c := range cats {
			top = append(top, cv{c.Name,
				100 * float64(pa.Cost(c.Flags)) / float64(pa.BaseTime())})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].pct > top[j].pct })
		fmt.Printf("%5d  %5d  %7d  %4.2f   %s %.1f%%, %s %.1f%%, %s %.1f%%\n",
			pi, pg.Len(), pa.BaseTime(),
			float64(pg.Len())/float64(pa.BaseTime()),
			top[0].name, top[0].pct, top[1].name, top[1].pct, top[2].name, top[2].pct)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "icost:", err)
	os.Exit(1)
}
