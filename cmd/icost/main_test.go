package main

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// exec runs the CLI against buffers and returns (exit, stdout, stderr).
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

var smallArgs = []string{"-n", "2000", "-warmup", "1000"}

func TestBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-nope"}, 2},
		{"non-numeric n", []string{"-n", "many"}, 2},
		{"negative n", []string{"-n", "-5"}, 1},
		{"unknown benchmark", append([]string{"-bench", "nosuch"}, smallArgs...), 1},
		{"unknown focus", append([]string{"-focus", "zap"}, smallArgs...), 1},
		{"unknown full category", append([]string{"-full", "dmiss,zap"}, smallArgs...), 1},
		{"bad dot range", append([]string{"-dot", "xyz"}, smallArgs...), 1},
		{"missing load file", []string{"-load", "/nonexistent/trace.bin"}, 1},
		{"engine with save", append([]string{"-engine", "-save", "/tmp/x"}, smallArgs...), 1},
		{"engine unknown bench", append([]string{"-engine", "-bench", "nosuch"}, smallArgs...), 1},
		{"non-power-of-two lanes", append([]string{"-lanes", "3"}, smallArgs...), 1},
		{"oversized lanes", append([]string{"-lanes", "128"}, smallArgs...), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := exec(t, tc.args...)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr %q)", code, tc.code, stderr)
			}
			if stderr == "" {
				t.Fatal("no diagnostic on stderr")
			}
		})
	}
}

func TestBreakdownRun(t *testing.T) {
	code, stdout, stderr := exec(t, append([]string{"-bench", "mcf"}, smallArgs...)...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "mcf:") || !strings.Contains(stdout, "cycles") {
		t.Fatalf("unexpected output: %q", stdout)
	}
}

// TestLanesFlagIsPureThroughputKnob: -lanes changes how many lanes
// each batched graph walk evaluates, never the analysis — the
// breakdown output must be identical across widths.
func TestLanesFlagIsPureThroughputKnob(t *testing.T) {
	args := append([]string{"-bench", "vpr"}, smallArgs...)
	code, want, stderr := exec(t, args...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, lanes := range []string{"1", "4", "64"} {
		code, got, stderr := exec(t, append([]string{"-lanes", lanes}, args...)...)
		if code != 0 {
			t.Fatalf("-lanes %s: exit %d: %s", lanes, code, stderr)
		}
		if got != want {
			t.Fatalf("-lanes %s changed the analysis:\n%s\nvs\n%s", lanes, got, want)
		}
	}
}

func TestEngineModeMatchesDirect(t *testing.T) {
	args := append([]string{"-bench", "mcf", "-slack"}, smallArgs...)
	code, direct, stderr := exec(t, args...)
	if code != 0 {
		t.Fatalf("direct run exit %d: %s", code, stderr)
	}
	code, engineOut, stderr := exec(t, append(args, "-engine")...)
	if code != 0 {
		t.Fatalf("engine run exit %d: %s", code, stderr)
	}
	var resp struct {
		Op    string `json:"op"`
		Bench string `json:"bench"`
		Slack struct {
			Insts    int `json:"insts"`
			Critical int `json:"critical"`
		} `json:"slack"`
	}
	if err := json.Unmarshal([]byte(engineOut), &resp); err != nil {
		t.Fatalf("engine output is not JSON: %v\n%s", err, engineOut)
	}
	if resp.Op != "slack" || resp.Bench != "mcf" {
		t.Fatalf("wrong response: %+v", resp)
	}
	// The direct -slack view prints the same critical count; check the
	// two code paths agree on it.
	want := criticalCount(t, direct)
	if resp.Slack.Critical != want {
		t.Fatalf("engine critical=%d, direct critical=%d", resp.Slack.Critical, want)
	}
	if resp.Slack.Insts == 0 {
		t.Fatal("engine slack summary empty")
	}
}

// criticalCount extracts the "critical (slack = 0)" count from the
// direct -slack text output.
func criticalCount(t *testing.T, out string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "critical (slack = 0):") {
			fields := strings.Fields(strings.SplitAfter(line, ":")[1])
			v, err := strconv.Atoi(fields[0])
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no critical line in %q", out)
	return 0
}
