package main

// Daemon-level chaos: injected faults must come out of the HTTP
// surface with the right status codes — server-side failures as 5xx,
// never dressed up as the client's 400. Run via `make chaos`.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"icost/internal/engine"
	"icost/internal/faultinject"
	"icost/internal/fleet"
	"icost/internal/leakcheck"
)

const chaosBody = `{"session":{"bench":"mcf","seed":7,"trace_len":2000,"warmup":1000},
                   "op":"cost","cats":["dmiss"]}`

// TestChaosDaemonQueryFault: a fault at the handler's own injection
// point surfaces as 500 and disarming it restores service without a
// restart.
func TestChaosDaemonQueryFault(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t)
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.DaemonQuery, Err: errInjected(t)})
	defer faultinject.Disable()

	resp, out := postQuery(t, srv, chaosBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted handler: status %d (%v), want 500", resp.StatusCode, out)
	}
	faultinject.Disable()
	resp, out = postQuery(t, srv, chaosBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery: status %d (%v), want 200", resp.StatusCode, out)
	}
}

// TestChaosBuildFaultMapsTo500 is the regression for the old
// catch-all 400: a session build that fails server-side must report
// as 500, not blame the client.
func TestChaosBuildFaultMapsTo500(t *testing.T) {
	leakcheck.Check(t)
	e := engine.New(engine.Config{Workers: 1, BuildRetries: -1, BuildFailTTL: -1})
	srv := httptest.NewServer(newHandler(e, fleet.NewAggregator(fleet.Config{}), false, nil))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.EngineBuild, Err: errInjected(t)})
	defer faultinject.Disable()

	resp, out := postQuery(t, srv, chaosBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("build fault: status %d (%v), want 500", resp.StatusCode, out)
	}
	// Client mistakes still map to 400 while the fault is armed.
	resp, _ = postQuery(t, srv, `{"session":{"bench":"mcf"},"op":"cost","cats":["zap"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation error: status %d, want 400", resp.StatusCode)
	}
}

// TestChaosStallMapsTo504: an injected graph-walk stall trips the
// server-side query deadline and reports as a gateway timeout.
func TestChaosStallMapsTo504(t *testing.T) {
	leakcheck.Check(t)
	e := engine.New(engine.Config{Workers: 1, QueryTimeout: 200 * time.Millisecond})
	srv := httptest.NewServer(newHandler(e, fleet.NewAggregator(fleet.Config{}), false, nil))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	// Build the session before arming the stall so only the query's
	// walk is affected.
	if resp, out := postQuery(t, srv, chaosBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: status %d (%v)", resp.StatusCode, out)
	}
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.GraphWalk, Latency: 10 * time.Second})
	defer faultinject.Disable()

	// A different category so neither result cache nor flight dedup
	// short-circuits the stalled walk.
	body := `{"session":{"bench":"mcf","seed":7,"trace_len":2000,"warmup":1000},
	          "op":"cost","cats":["win"]}`
	resp, out := postQuery(t, srv, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled query: status %d (%v), want 504", resp.StatusCode, out)
	}
}

// errInjected builds a distinct error value per test for log clarity.
func errInjected(t *testing.T) error {
	return &injectedErr{name: t.Name()}
}

type injectedErr struct{ name string }

func (e *injectedErr) Error() string { return "injected fault (" + e.name + ")" }
