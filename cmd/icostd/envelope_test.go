package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"icost/internal/engine"
	"icost/internal/fleet"
)

// TestLoadEnvelope pins the -envelope file contract: the refutation
// harness's BENCH_sens.json parses down to its envelope member, and
// malformed files are rejected at startup rather than silently
// advertised as empty.
func TestLoadEnvelope(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"note":"x","envelope":{"dl1":0.001,"mem":0.002}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	acc, err := loadEnvelope(good)
	if err != nil {
		t.Fatal(err)
	}
	if acc["dl1"] != 0.001 || acc["mem"] != 0.002 {
		t.Fatalf("parsed %v", acc)
	}

	for name, body := range map[string]string{
		"empty":    `{"note":"x"}`,
		"negative": `{"envelope":{"dl1":-1}}`,
		"garbage":  `not json`,
	} {
		p := filepath.Join(dir, name+".json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadEnvelope(p); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if _, err := loadEnvelope(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}

// TestSensitivityEndpointAdvertisesEnvelope: a daemon configured with
// an accuracy envelope attaches it to sensitivity responses, so
// clients see the measured model-vs-simulator bound next to every
// curve.
func TestSensitivityEndpointAdvertisesEnvelope(t *testing.T) {
	e := engine.New(engine.Config{
		Workers:  2,
		Accuracy: map[string]float64{"dl1": 0.0005, "win": 0.001},
	})
	srv := httptest.NewServer(newHandler(e, fleet.NewAggregator(fleet.Config{}), false, nil))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})

	body := `{"session":{"bench":"gzip","seed":3,"trace_len":2000,"warmup":500},
	          "op":"sensitivity","cats":["dl1","win"],"alphas":[0,0.5,1]}`
	resp, out := postQuery(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	sens, ok := out["sensitivity"].(map[string]any)
	if !ok {
		t.Fatalf("no sensitivity payload in %v", out)
	}
	curves, ok := sens["curves"].([]any)
	if !ok || len(curves) != 2 {
		t.Fatalf("bad curves: %v", sens["curves"])
	}
	acc, ok := sens["accuracy"].(map[string]any)
	if !ok || acc["dl1"] != 0.0005 || acc["win"] != 0.001 {
		t.Fatalf("accuracy envelope not advertised: %v", sens["accuracy"])
	}
	alphas, ok := sens["alphas"].([]any)
	if !ok || len(alphas) != 3 {
		t.Fatalf("bad alphas: %v", sens["alphas"])
	}
}
