package main

// Fault-spec parsing for the -faults flag. The grammar and parser
// live in internal/faultinject (ParseSpec) so that icostload's
// -perturb flag arms plans through exactly the same code; this file
// keeps the daemon's historical entry point.

import (
	"icost/internal/faultinject"
)

// parseFaultSpec parses a -faults value into injection rules.
func parseFaultSpec(spec string) ([]faultinject.Rule, error) {
	return faultinject.ParseSpec(spec)
}
