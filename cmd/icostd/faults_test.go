package main

import (
	"strings"
	"testing"
	"time"

	"icost/internal/faultinject"
)

func TestParseFaultSpec(t *testing.T) {
	rules, err := parseFaultSpec("engine.build:err*1, icostd.query:lat=50ms%0.1, depgraph.walk:cancel@100")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}

	r := rules[0]
	if r.Point != faultinject.EngineBuild || r.Err == nil || r.Count != 1 || r.After != 0 || r.Prob != 0 {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Point != faultinject.DaemonQuery || r.Latency != 50*time.Millisecond || r.Prob != 0.1 || r.Err != nil {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = rules[2]
	if r.Point != faultinject.GraphWalk || !r.Cancel || r.After != 100 || r.Count != 0 {
		t.Fatalf("rule 2 = %+v", r)
	}
}

func TestParseFaultSpecModifierOrder(t *testing.T) {
	// Modifiers may appear in any order after the action.
	for _, spec := range []string{
		"workload.gen:err*3@2%0.25",
		"workload.gen:err%0.25@2*3",
		"workload.gen:err@2%0.25*3",
	} {
		rules, err := parseFaultSpec(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		r := rules[0]
		if r.Count != 3 || r.After != 2 || r.Prob != 0.25 || r.Err == nil {
			t.Fatalf("%q parsed to %+v", spec, r)
		}
	}
}

func TestParseFaultSpecRejects(t *testing.T) {
	cases := map[string]string{
		"":                        "empty",
		"   , ,  ":                "empty",
		"engine.build":            "missing ':'",
		"nosuch.point:err":        "unknown point",
		"engine.build:zap":        "unknown action",
		"engine.build:err%0":      "probability",
		"engine.build:err%1.5":    "probability",
		"engine.build:err%zap":    "probability",
		"engine.build:err@-1":     "@after",
		"engine.build:err*0":      "count",
		"engine.build:lat=zap":    "latency",
		"engine.build:lat=-5ms":   "latency",
		"icostd.query:lat=":       "latency",
		"engine.build:err,bad":    "missing ':'",
		"engine.build:cancel@zap": "@after",
	}
	for spec, wantSub := range cases {
		if _, err := parseFaultSpec(spec); err == nil {
			t.Errorf("%q accepted", spec)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%q: error %q does not mention %q", spec, err, wantSub)
		}
	}
}

// TestParseFaultSpecUnknownPointListsKnown: the error for a typo'd
// point must name the valid ones, so the operator is one read away
// from the fix.
func TestParseFaultSpecUnknownPointListsKnown(t *testing.T) {
	_, err := parseFaultSpec("engine.biuld:err")
	if err == nil {
		t.Fatal("typo accepted")
	}
	for _, pt := range faultinject.Points() {
		if !strings.Contains(err.Error(), string(pt)) {
			t.Fatalf("error %q does not list point %s", err, pt)
		}
	}
}
