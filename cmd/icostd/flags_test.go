package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"icost/internal/engine"
	"icost/internal/fleet"
)

// TestFlagAudit pins the daemon's flag surface: every expected flag
// exists with the documented default and usage text, and nothing
// undocumented sneaks in. In particular -workers must default to the
// actual GOMAXPROCS value and say so in -h output, rather than hiding
// the resolution behind a zero sentinel.
func TestFlagAudit(t *testing.T) {
	fs := flag.NewFlagSet("icostd", flag.ContinueOnError)
	defineFlags(fs)
	want := map[string]struct {
		def   string
		usage string // substring the help text must contain
	}{
		"addr":          {":8090", "listen address"},
		"workers":       {fmt.Sprint(runtime.GOMAXPROCS(0)), "GOMAXPROCS"},
		"queue":         {"0", "queue depth"},
		"cache-mb":      {"64", "MiB"},
		"sessions":      {"8", "sessions"},
		"lanes":         {"0", "lane width"},
		"preload":       {"", "benchmarks"},
		"pprof":         {"false", "/debug/pprof/"},
		"query-timeout": {"30s", "deadline"},
		"fleet-mb":      {"64", "aggregate"},
		"snapshot-dir":  {"", "snapshots"},
		"envelope":      {"", "BENCH_sens.json"},
		"faults":        {"", "fault-injection"},
		"fault-seed":    {"1", "seed"},

		"route":         {"", "backend URLs"},
		"replicas":      {"2", "hot session"},
		"hedge-after":   {"50ms", "hedge"},
		"hot-threshold": {"3", "replicates"},
		"load-factor":   {"1.25", "bounded-load"},
		"tenant-qps":    {"0", "X-Icost-Tenant"},
		"tenant-burst":  {"10", "burst"},
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		w, ok := want[f.Name]
		if !ok {
			t.Errorf("undocumented flag -%s (usage %q)", f.Name, f.Usage)
			return
		}
		if f.DefValue != w.def {
			t.Errorf("-%s default = %q, want %q", f.Name, f.DefValue, w.def)
		}
		if !strings.Contains(f.Usage, w.usage) {
			t.Errorf("-%s usage %q does not mention %q", f.Name, f.Usage, w.usage)
		}
	})
	for name := range want {
		if !got[name] {
			t.Errorf("expected flag -%s is not defined", name)
		}
	}
}

// TestWorkersFlagRejectsZero covers the validation that replaced the
// old zero-means-default sentinel.
func TestWorkersFlagRejectsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-workers", "0"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("-workers 0 exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "workers") {
		t.Fatalf("unhelpful error: %q", stderr.String())
	}
}

// TestPprofEndpoints checks the -pprof gate: the profile index serves
// when enabled and 404s when disabled (the default).
func TestPprofEndpoints(t *testing.T) {
	e := engine.New(engine.Config{Workers: 1})
	defer e.Close()

	on := httptest.NewServer(newHandler(e, fleet.NewAggregator(fleet.Config{}), true, nil))
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: index returned %d", resp.StatusCode)
	}

	off := httptest.NewServer(newHandler(e, fleet.NewAggregator(fleet.Config{}), false, nil))
	defer off.Close()
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: index returned %d, want 404", resp.StatusCode)
	}
}
