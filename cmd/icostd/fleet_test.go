package main

// Daemon-level fleet data-plane tests: hosts POST binary sample
// streams to /ingest, /query with a "fleet" target answers from the
// merged aggregate, and /metrics carries both metric sets.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"icost/internal/engine"
	"icost/internal/faultinject"
	"icost/internal/fleet"
	"icost/internal/leakcheck"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/workload"
)

// hostProfCfg keeps the simulated hosts cheap: short signatures,
// dense sampling, few fragments.
func hostProfCfg(traceSeed uint64) profiler.Config {
	return profiler.Config{
		SigLen:         200,
		SigInterval:    97,
		DetailInterval: 3,
		Context:        10,
		Fragments:      8,
		SignatureBits:  2,
		Seed:           traceSeed,
	}
}

// batchCache memoizes collected host batches — the simulation is the
// expensive part, and every test wants the same one or two batches.
var batchCache = struct {
	sync.Mutex
	m map[uint64]*profiler.Samples
}{m: map[uint64]*profiler.Samples{}}

// hostBatch simulates one gzip@42 host run and collects its samples.
func hostBatch(tb testing.TB, traceSeed uint64) *profiler.Samples {
	tb.Helper()
	const n, warmup = 6000, 2000
	batchCache.Lock()
	defer batchCache.Unlock()
	if s, ok := batchCache.m[traceSeed]; ok {
		return s
	}
	w, err := workload.Cached("gzip", 42)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := w.Execute(warmup+n, traceSeed)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{KeepGraph: true, Warmup: warmup})
	if err != nil {
		tb.Fatal(err)
	}
	s, err := profiler.Collect(tr, res.Graph, warmup, hostProfCfg(traceSeed))
	if err != nil {
		tb.Fatal(err)
	}
	batchCache.m[traceSeed] = s
	return s
}

// encodeStream frames batches as one host's ingestion upload.
func encodeStream(tb testing.TB, h fleet.Header, batches ...*profiler.Samples) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := fleet.WriteStream(&buf, h, batches); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func postIngest(t *testing.T, srv *httptest.Server, raw []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func newFleetServer(t *testing.T, cfg fleet.Config) (*fleet.Aggregator, *httptest.Server) {
	t.Helper()
	e := engine.New(engine.Config{Workers: 2})
	agg := fleet.NewAggregator(cfg)
	srv := httptest.NewServer(newHandler(e, agg, false, nil))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return agg, srv
}

// TestIngestAndFleetQuery is the end-to-end data plane: two hosts
// stream batches in, the aggregate answers cost/icost/breakdown, the
// second identical query is memoized, and misses map to 404.
func TestIngestAndFleetQuery(t *testing.T) {
	agg, srv := newFleetServer(t, fleet.Config{Profiler: hostProfCfg(1)})

	for i, seed := range []uint64{7, 8} {
		h := fleet.Header{Binary: "gzip", Seed: 42, Group: "prod", Host: fmt.Sprintf("host-%02d", i)}
		resp, out := postIngest(t, srv, encodeStream(t, h, hostBatch(t, seed)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d (%v)", i, resp.StatusCode, out)
		}
		if out["batches"] != float64(1) || out["key"] != "gzip@42/prod" {
			t.Fatalf("ingest %d summary: %v", i, out)
		}
	}

	costBody := `{"fleet":{"binary":"gzip","group":"prod","op":"cost","cats":["dl1"]}}`
	resp, out := postQuery(t, srv, costBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet cost: status %d (%v)", resp.StatusCode, out)
	}
	if out["hosts"] != float64(2) || out["batches"] != float64(2) {
		t.Fatalf("aggregate shape: %v", out)
	}
	if _, ok := out["value"].(float64); !ok {
		t.Fatalf("no numeric value: %v", out)
	}
	if out["memoized"] != false {
		t.Fatal("first fleet query claimed memoized")
	}
	resp, out = postQuery(t, srv, costBody)
	if resp.StatusCode != http.StatusOK || out["memoized"] != true {
		t.Fatalf("repeat not memoized: %d %v", resp.StatusCode, out)
	}

	resp, out = postQuery(t, srv,
		`{"fleet":{"binary":"gzip","group":"prod","op":"icost","cats":["dl1","win"]}}`)
	if resp.StatusCode != http.StatusOK || out["interaction"] == "" {
		t.Fatalf("fleet icost: %d %v", resp.StatusCode, out)
	}
	resp, out = postQuery(t, srv,
		`{"fleet":{"binary":"gzip","group":"prod","op":"breakdown"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet breakdown: %d %v", resp.StatusCode, out)
	}
	if pct, ok := out["pct"].(map[string]any); !ok || len(pct) == 0 {
		t.Fatalf("breakdown has no pct map: %v", out)
	}

	// Misses and mistakes: absent aggregate 404, malformed query 400.
	resp, _ = postQuery(t, srv, `{"fleet":{"binary":"gzip","group":"nosuch","op":"cost","cats":["dl1"]}}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent aggregate: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postQuery(t, srv, `{"fleet":{"binary":"gzip","group":"prod","op":"zap"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad fleet op: status %d, want 400", resp.StatusCode)
	}

	// /metrics carries both metric sets in one flat object.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m metricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m.IngestBatchesTotal != 2 || m.HostsSeen != 2 || m.AggregatesLive != 1 {
		t.Fatalf("fleet metrics: %+v", m.fleetMetrics)
	}
	if m.Workers != 2 {
		t.Fatalf("engine metrics lost in combined snapshot: %+v", m.engineMetrics)
	}
	_ = agg
}

// TestIngestErrors pins the /ingest error surface: wrong method 405,
// garbage and truncated streams 400, unknown binaries 400.
func TestIngestErrors(t *testing.T) {
	_, srv := newFleetServer(t, fleet.Config{Profiler: hostProfCfg(1)})

	resp, err := http.Get(srv.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: status %d", resp.StatusCode)
	}

	if resp, out := postIngest(t, srv, []byte("this is not a stream")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage stream: status %d (%v)", resp.StatusCode, out)
	}
	full := encodeStream(t, fleet.Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h"},
		hostBatch(t, 7))
	if resp, out := postIngest(t, srv, full[:len(full)/2]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated stream: status %d (%v)", resp.StatusCode, out)
	}
	bad := encodeStream(t, fleet.Header{Binary: "nosuchbinary", Seed: 42, Group: "prod"},
		hostBatch(t, 7))
	if resp, out := postIngest(t, srv, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown binary: status %d (%v)", resp.StatusCode, out)
	}
}

// TestIngestConcurrentHosts drives 50 concurrent hosts through the
// HTTP ingest path (the ISSUE's acceptance bar, meant to run under
// -race) and checks the aggregator held its byte budget throughout.
func TestIngestConcurrentHosts(t *testing.T) {
	batch := hostBatch(t, 7)

	// Size the budget off one batch's real retained footprint so
	// eviction pressure is guaranteed: 4 groups x 3 batches/host x 50
	// hosts land in a budget that fits 6 batches.
	const hosts, batchesPerHost = 50, 3
	probe := fleet.NewAggregator(fleet.Config{Profiler: hostProfCfg(1)})
	ph := fleet.Header{Binary: "gzip", Seed: 42, Group: "probe", Host: "p"}
	if err := probe.Ingest(t.Context(), ph, batch); err != nil {
		t.Fatal(err)
	}
	one := probe.Bytes()
	if one == 0 {
		t.Fatal("probe aggregate is empty")
	}
	budget := int64(batchesPerHost) * 2 * one
	agg, srv := newFleetServer(t, fleet.Config{MaxBytes: budget, Profiler: hostProfCfg(1)})

	var wg sync.WaitGroup
	errs := make(chan error, hosts)
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := fleet.Header{
				Binary: "gzip", Seed: 42,
				Group: fmt.Sprintf("ring-%d", i%4),
				Host:  fmt.Sprintf("host-%02d", i),
			}
			for b := 0; b < batchesPerHost; b++ {
				resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream",
					bytes.NewReader(encodeStream(t, h, batch)))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("host %d batch %d: status %d", i, b, resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := agg.Metrics()
	if m.IngestBatchesTotal != hosts*batchesPerHost {
		t.Fatalf("ingested %d batches, want %d", m.IngestBatchesTotal, hosts*batchesPerHost)
	}
	if got := agg.Bytes(); got > budget {
		t.Fatalf("retained %d bytes, budget %d", got, budget)
	}
	if m.EvictionsTotal == 0 {
		t.Fatal("budget pressure produced no evictions")
	}
}

// TestChaosFleetIngestFault: a fleet.ingest fault surfaces as 500
// through /ingest and the endpoint recovers once disarmed.
func TestChaosFleetIngestFault(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newFleetServer(t, fleet.Config{Profiler: hostProfCfg(1)})
	raw := encodeStream(t, fleet.Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h"},
		hostBatch(t, 7))

	faultinject.Enable(1, faultinject.Rule{Point: faultinject.FleetIngest, Err: errInjected(t)})
	defer faultinject.Disable()
	if resp, out := postIngest(t, srv, raw); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted ingest: status %d (%v), want 500", resp.StatusCode, out)
	}
	faultinject.Disable()
	if resp, out := postIngest(t, srv, raw); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery: status %d (%v), want 200", resp.StatusCode, out)
	}
}

// TestRunSnapshotLifecycle drives -snapshot-dir through run(): the
// first daemon builds a session and snapshots it at drain; the second
// restores it at startup and answers without a cold build.
func TestRunSnapshotLifecycle(t *testing.T) {
	dir := t.TempDir()
	const body = `{"session":{"bench":"gzip","seed":7,"trace_len":2000,"warmup":1000},
	               "op":"cost","cats":["dl1"]}`

	launch := func() (chan os.Signal, *syncBuf, *syncBuf, chan int, string) {
		sig := make(chan os.Signal, 1)
		stdout, stderr := &syncBuf{}, &syncBuf{}
		done := make(chan int, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-snapshot-dir", dir}, stdout, stderr, sig)
		}()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if m := servingRe.FindStringSubmatch(stdout.String()); m != nil {
				return sig, stdout, stderr, done, m[1]
			}
			if time.Now().After(deadline) {
				t.Fatalf("no serving log: %q / %q", stdout.String(), stderr.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	shutdown := func(sig chan os.Signal, stderr *syncBuf, done chan int) {
		t.Helper()
		sig <- os.Interrupt
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}

	sig, stdout, stderr, done, addr := launch()
	resp, err := http.Post("http://"+addr+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	shutdown(sig, stderr, done)
	if !strings.Contains(stdout.String(), "saved 1 session snapshot(s)") {
		t.Fatalf("missing save log: %q", stdout.String())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.icss"))
	if len(files) != 1 {
		t.Fatalf("snapshot dir holds %v", files)
	}

	sig, stdout, stderr, done, addr = launch()
	if !strings.Contains(stdout.String(), "restored 1 session(s)") {
		t.Fatalf("missing restore log: %q", stdout.String())
	}
	resp, err = http.Post("http://"+addr+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored query: status %d (%v)", resp.StatusCode, out)
	}
	// The restored daemon answered off the snapshot, not a rebuild.
	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m engine.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m.SnapshotsLoadedTotal != 1 || m.SessionBuildP50us != 0 {
		t.Fatalf("restored daemon rebuilt: %+v", m)
	}
	shutdown(sig, stderr, done)
}
