// Command icostd is the interaction-cost analysis daemon: a thin
// HTTP front end over internal/engine that keeps built dependence
// graphs resident and answers cost/icost/breakdown/slack/matrix
// queries concurrently. One expensive build (workload generation +
// cycle-level simulation + graph construction) amortizes across every
// subsequent query — the paper's O(|graph|)-per-query efficiency
// argument, served over a socket.
//
// The daemon also carries the fleet data plane (internal/fleet):
// many hosts POST binary sample streams to /ingest, an in-process
// aggregator merges them per (binary, seed, host-group) under a byte
// budget, and /query answers against the merged profile when the
// request carries a "fleet" target instead of a session spec.
//
// With -route the same binary runs as a routing tier instead of a
// shard: it consistent-hashes session and fleet keys across the
// listed backend daemons, replicates hot sessions between them by
// shipping ICSS snapshots, hedges replicated reads against slow
// shards, and admits tenants under a per-tenant quota. The routed
// surface is byte-compatible with the single-daemon surface, so
// clients need not know whether they talk to one shard or thirty.
//
// Usage:
//
//	icostd [-addr :8090] [-workers n] [-queue depth] [-cache-mb mb]
//	       [-sessions n] [-preload bench1,bench2,...] [-pprof]
//	       [-query-timeout 30s] [-fleet-mb mb] [-snapshot-dir dir]
//	       [-faults spec] [-fault-seed n]
//	icostd -route http://b1:8090,http://b2:8090 [-addr :8089]
//	       [-replicas n] [-hedge-after d] [-hot-threshold n]
//	       [-load-factor f] [-tenant-qps n] [-tenant-burst n]
//
// Endpoints (shard and router):
//
//	POST /query         JSON engine.Query -> JSON engine.Response, or
//	                    {"fleet": {...}} -> JSON fleet.Response
//	POST /ingest        binary fleet sample stream (fleet.WriteStream)
//	GET  /metrics       engine + fleet counters, gauges and quantiles
//	                    (router: routing counters instead)
//	GET  /healthz       liveness + uptime
//	GET  /readyz        readiness (503 while draining at shutdown)
//	GET  /debug/pprof/  Go runtime profiles (only with -pprof)
//
// Shard-only replication plane (used by the router):
//
//	GET  /sessions      resident sessions with install generations
//	GET  /snapshot      one session's ICSS snapshot bytes
//	POST /restore       install a pushed ICSS snapshot
//
// A full queue returns 429 with a Retry-After header (backpressure,
// never unbounded buffering). SIGINT/SIGTERM drain in-flight queries
// before exit; a second signal during the drain forces immediate
// shutdown. With -snapshot-dir the daemon restores built sessions
// from the directory at startup and snapshots the resident sessions
// back to it after the drain, so a restart skips the cold builds.
// See README.md "Analysis service" and "Horizontal scaling" for curl
// sessions.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"icost/internal/daemon"
	"icost/internal/depgraph"
	"icost/internal/engine"
	"icost/internal/faultinject"
	"icost/internal/fleet"
	"icost/internal/router"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// options holds the daemon's parsed flags.
type options struct {
	addr         string
	workers      int
	queue        int
	cacheMB      int
	sessions     int
	lanes        int
	preload      string
	pprof        bool
	queryTimeout time.Duration
	fleetMB      int
	snapshotDir  string
	envelope     string
	faults       string
	faultSeed    uint64

	// router mode
	route        string
	replicas     int
	hedgeAfter   time.Duration
	hotThreshold int
	loadFactor   float64
	tenantQPS    float64
	tenantBurst  int
}

// defineFlags registers every daemon flag on fs. Separated from run
// so the flag-audit test can inspect names, defaults and usage text
// without executing the daemon.
func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8090", "listen address")
	fs.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0),
		"worker pool size (defaults to GOMAXPROCS)")
	fs.IntVar(&o.queue, "queue", 0, "job queue depth (0 = 4x workers)")
	fs.IntVar(&o.cacheMB, "cache-mb", 64, "result cache budget in MiB")
	fs.IntVar(&o.sessions, "sessions", 8, "max resident sessions")
	fs.IntVar(&o.lanes, "lanes", 0,
		"batched-evaluation lane width per graph walk (power of two, up to 64; 0 = auto from GOMAXPROCS)")
	fs.StringVar(&o.preload, "preload", "", "comma-separated benchmarks to build at startup")
	fs.BoolVar(&o.pprof, "pprof", false,
		"serve Go runtime profiles under /debug/pprof/ (off by default)")
	fs.DurationVar(&o.queryTimeout, "query-timeout", 30*time.Second,
		"server-side deadline per query once dequeued (0 = unlimited)")
	fs.IntVar(&o.fleetMB, "fleet-mb", 64,
		"fleet aggregate sample pool budget in MiB (coldest aggregates evicted past it)")
	fs.StringVar(&o.snapshotDir, "snapshot-dir", "",
		"directory for durable session snapshots: restored at startup, saved at drain (empty = off)")
	fs.StringVar(&o.envelope, "envelope", "",
		"path to a BENCH_sens.json accuracy envelope to advertise on sensitivity responses (empty = none)")
	fs.StringVar(&o.faults, "faults", "",
		"fault-injection spec, e.g. engine.build:err%0.5,icostd.query:lat=50ms (testing only)")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1,
		"seed for probabilistic fault injection (replayable)")

	fs.StringVar(&o.route, "route", "",
		"run as a router over these comma-separated backend URLs instead of as a shard")
	fs.IntVar(&o.replicas, "replicas", 2,
		"router: target shard count holding each hot session (primary included)")
	fs.DurationVar(&o.hedgeAfter, "hedge-after", 50*time.Millisecond,
		"router: hedge a replicated read at a replica after this long on the primary (0 = no hedging)")
	fs.IntVar(&o.hotThreshold, "hot-threshold", 3,
		"router: routed-query count at which a session replicates")
	fs.Float64Var(&o.loadFactor, "load-factor", 1.25,
		"router: bounded-load factor (no shard takes more than this times the mean in-flight load)")
	fs.Float64Var(&o.tenantQPS, "tenant-qps", 0,
		"router: per-tenant admitted requests/s, X-Icost-Tenant header keyed (0 = quota off)")
	fs.IntVar(&o.tenantBurst, "tenant-burst", 10,
		"router: per-tenant admission burst size")
	return o
}

// run is the testable entry point: it parses flags, starts the
// engine (or the router, with -route), serves until a signal arrives
// on sig (nil = install the real SIGINT/SIGTERM handler), then drains
// and exits.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("icostd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := defineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.faults != "" {
		rules, err := parseFaultSpec(o.faults)
		if err != nil {
			fmt.Fprintln(stderr, "icostd: -faults:", err)
			return 2
		}
		faultinject.Enable(o.faultSeed, rules...)
		defer faultinject.Disable()
		fmt.Fprintf(stdout, "icostd: fault injection ENABLED (seed %d): %s\n", o.faultSeed, o.faults)
	}
	if o.route != "" {
		return runRouter(o, stdout, stderr, sig)
	}
	if o.cacheMB < 1 || o.sessions < 1 {
		fmt.Fprintln(stderr, "icostd: -cache-mb and -sessions must be >= 1")
		return 2
	}
	if o.workers < 1 {
		fmt.Fprintln(stderr, "icostd: -workers must be >= 1")
		return 2
	}
	if o.queryTimeout < 0 {
		fmt.Fprintln(stderr, "icostd: -query-timeout must be >= 0")
		return 2
	}
	if o.fleetMB < 1 {
		fmt.Fprintln(stderr, "icostd: -fleet-mb must be >= 1")
		return 2
	}
	{
		probe := depgraph.DefaultConfig()
		probe.Lanes = o.lanes
		if err := probe.Validate(); err != nil {
			fmt.Fprintln(stderr, "icostd: -lanes:", err)
			return 2
		}
	}

	var accuracy map[string]float64
	if o.envelope != "" {
		acc, err := loadEnvelope(o.envelope)
		if err != nil {
			fmt.Fprintln(stderr, "icostd: -envelope:", err)
			return 2
		}
		accuracy = acc
		fmt.Fprintf(stdout, "icostd: advertising accuracy envelope from %s (%d knobs)\n", o.envelope, len(acc))
	}

	e := engine.New(engine.Config{
		Workers:      o.workers,
		QueueDepth:   o.queue,
		CacheBytes:   int64(o.cacheMB) << 20,
		MaxSessions:  o.sessions,
		QueryTimeout: o.queryTimeout,
		Lanes:        o.lanes,
		Accuracy:     accuracy,
	})
	agg := fleet.NewAggregator(fleet.Config{MaxBytes: int64(o.fleetMB) << 20})

	if o.snapshotDir != "" {
		n, err := e.LoadSnapshots(context.Background(), o.snapshotDir)
		if err != nil {
			fmt.Fprintln(stderr, "icostd: load snapshots:", err)
			e.Close()
			return 1
		}
		fmt.Fprintf(stdout, "icostd: restored %d session(s) from %s\n", n, o.snapshotDir)
	}

	if o.preload != "" {
		for _, b := range strings.Split(o.preload, ",") {
			b = strings.TrimSpace(b)
			key, err := e.Warm(context.Background(), engine.SessionSpec{Bench: b})
			if err != nil {
				fmt.Fprintln(stderr, "icostd: preload:", err)
				e.Close()
				return 1
			}
			fmt.Fprintf(stdout, "icostd: preloaded %s (session %s)\n", b, key)
		}
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(stderr, "icostd:", err)
		e.Close()
		return 1
	}
	ready := &atomic.Bool{}
	ready.Store(true)
	srv := &http.Server{
		Handler:           newHandler(e, agg, o.pprof, ready),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "icostd: serving on %s (%d workers)\n", ln.Addr(), e.Metrics().Workers)

	if sig == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sig = ch
	}
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "icostd:", err)
		e.Close()
		return 1
	case <-sig:
	}

	// Graceful drain: flip readiness so load balancers stop routing
	// here, then give in-flight queries up to 30s. A second signal
	// during the drain skips the wait and severs connections.
	ready.Store(false)
	fmt.Fprintln(stdout, "icostd: shutting down, draining in-flight queries")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(stderr, "icostd: shutdown:", err)
		}
	case <-sig:
		fmt.Fprintln(stdout, "icostd: second signal, forcing immediate shutdown")
		if err := srv.Close(); err != nil {
			fmt.Fprintln(stderr, "icostd: close:", err)
		}
		<-done
	}
	// Snapshot resident sessions after the drain (queries are done
	// mutating the LRU) but before Close releases the pooled graph
	// arenas the sessions point into.
	if o.snapshotDir != "" {
		if n, err := e.SaveSnapshots(context.Background(), o.snapshotDir); err != nil {
			fmt.Fprintln(stderr, "icostd: save snapshots:", err)
		} else {
			fmt.Fprintf(stdout, "icostd: saved %d session snapshot(s) to %s\n", n, o.snapshotDir)
		}
	}
	e.Close()
	return 0
}

// runRouter serves the routing tier: same listen/drain lifecycle as a
// shard, but the handler proxies to the -route backends instead of
// owning an engine.
func runRouter(o *options, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	var backends []string
	for _, b := range strings.Split(o.route, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	if len(backends) == 0 {
		fmt.Fprintln(stderr, "icostd: -route needs at least one backend URL")
		return 2
	}
	if o.replicas < 1 {
		fmt.Fprintln(stderr, "icostd: -replicas must be >= 1")
		return 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt, err := router.New(ctx, router.Config{
		Backends:     backends,
		Replicas:     o.replicas,
		HedgeAfter:   o.hedgeAfter,
		HotThreshold: o.hotThreshold,
		LoadFactor:   o.loadFactor,
		TenantRate:   o.tenantQPS,
		TenantBurst:  o.tenantBurst,
	})
	if err != nil {
		fmt.Fprintln(stderr, "icostd:", err)
		return 1
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(stderr, "icostd:", err)
		return 1
	}
	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "icostd: routing on %s over %d backend(s)\n", ln.Addr(), len(backends))

	if sig == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sig = ch
	}
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "icostd:", err)
		return 1
	case <-sig:
	}
	fmt.Fprintln(stdout, "icostd: router shutting down")
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "icostd: shutdown:", err)
	}
	return 0
}

// metricsSnapshot flattens the engine and fleet metric sets into one
// JSON object (the aliases sidestep the embedded-name clash between
// the two Snapshot types). Kept here for the daemon's tests; the
// serving copy lives in internal/daemon.
type (
	engineMetrics = engine.Snapshot
	fleetMetrics  = fleet.Snapshot
)

type metricsSnapshot struct {
	engineMetrics
	fleetMetrics
}

// newHandler builds the daemon's routing table. The implementation
// moved to internal/daemon so the sharding router can spawn in-process
// shards; this wrapper keeps the daemon's historical constructor.
func newHandler(e *engine.Engine, agg *fleet.Aggregator, pprofOn bool, ready *atomic.Bool) http.Handler {
	return daemon.NewHandler(e, agg, daemon.Options{Pprof: pprofOn, Ready: ready})
}

// writeQueryError maps engine and fleet errors onto HTTP semantics
// (see daemon.WriteQueryError).
func writeQueryError(w http.ResponseWriter, err error) {
	daemon.WriteQueryError(w, err)
}

// loadEnvelope reads the accuracy envelope out of a BENCH_sens.json
// file (written by internal/refute's REFUTE_WRITE mode). Only the
// "envelope" member matters here; the rest of the file is the
// refutation harness's record keeping.
func loadEnvelope(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f struct {
		Envelope map[string]float64 `json:"envelope"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(f.Envelope) == 0 {
		return nil, fmt.Errorf("%s has no envelope member", path)
	}
	for knob, v := range f.Envelope {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%s: knob %q has invalid bound %v", path, knob, v)
		}
	}
	return f.Envelope, nil
}
