// Command icostd is the interaction-cost analysis daemon: a thin
// HTTP front end over internal/engine that keeps built dependence
// graphs resident and answers cost/icost/breakdown/slack/matrix
// queries concurrently. One expensive build (workload generation +
// cycle-level simulation + graph construction) amortizes across every
// subsequent query — the paper's O(|graph|)-per-query efficiency
// argument, served over a socket.
//
// Usage:
//
//	icostd [-addr :8090] [-workers n] [-queue depth] [-cache-mb mb]
//	       [-sessions n] [-preload bench1,bench2,...] [-pprof]
//
// Endpoints:
//
//	POST /query         JSON engine.Query -> JSON engine.Response
//	GET  /metrics       engine counters, gauges and latency quantiles
//	GET  /healthz       liveness + uptime
//	GET  /debug/pprof/  Go runtime profiles (only with -pprof)
//
// A full queue returns 429 with a Retry-After header (backpressure,
// never unbounded buffering). SIGINT/SIGTERM drain in-flight queries
// before exit. See README.md "Analysis service" for a curl session.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"icost/internal/engine"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// options holds the daemon's parsed flags.
type options struct {
	addr     string
	workers  int
	queue    int
	cacheMB  int
	sessions int
	preload  string
	pprof    bool
}

// defineFlags registers every daemon flag on fs. Separated from run
// so the flag-audit test can inspect names, defaults and usage text
// without executing the daemon.
func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8090", "listen address")
	fs.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0),
		"worker pool size (defaults to GOMAXPROCS)")
	fs.IntVar(&o.queue, "queue", 0, "job queue depth (0 = 4x workers)")
	fs.IntVar(&o.cacheMB, "cache-mb", 64, "result cache budget in MiB")
	fs.IntVar(&o.sessions, "sessions", 8, "max resident sessions")
	fs.StringVar(&o.preload, "preload", "", "comma-separated benchmarks to build at startup")
	fs.BoolVar(&o.pprof, "pprof", false,
		"serve Go runtime profiles under /debug/pprof/ (off by default)")
	return o
}

// run is the testable entry point: it parses flags, starts the
// engine, serves until a signal arrives on sig (nil = install the
// real SIGINT/SIGTERM handler), then drains and exits.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("icostd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := defineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.cacheMB < 1 || o.sessions < 1 {
		fmt.Fprintln(stderr, "icostd: -cache-mb and -sessions must be >= 1")
		return 2
	}
	if o.workers < 1 {
		fmt.Fprintln(stderr, "icostd: -workers must be >= 1")
		return 2
	}

	e := engine.New(engine.Config{
		Workers:     o.workers,
		QueueDepth:  o.queue,
		CacheBytes:  int64(o.cacheMB) << 20,
		MaxSessions: o.sessions,
	})

	if o.preload != "" {
		for _, b := range strings.Split(o.preload, ",") {
			b = strings.TrimSpace(b)
			key, err := e.Warm(context.Background(), engine.SessionSpec{Bench: b})
			if err != nil {
				fmt.Fprintln(stderr, "icostd: preload:", err)
				e.Close()
				return 1
			}
			fmt.Fprintf(stdout, "icostd: preloaded %s (session %s)\n", b, key)
		}
	}

	srv := &http.Server{
		Addr:              o.addr,
		Handler:           newHandler(e, o.pprof),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(stdout, "icostd: serving on %s (%d workers)\n", o.addr, e.Metrics().Workers)

	if sig == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sig = ch
	}
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "icostd:", err)
		e.Close()
		return 1
	case <-sig:
	}

	fmt.Fprintln(stdout, "icostd: shutting down, draining in-flight queries")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "icostd: shutdown:", err)
	}
	e.Close()
	return 0
}

// newHandler builds the daemon's routing table over an engine. With
// pprofOn the Go runtime's profiling handlers are mounted under
// /debug/pprof/ — off by default, since profiles expose internals no
// production query endpoint should.
func newHandler(e *engine.Engine, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var q engine.Query
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			httpError(w, http.StatusBadRequest, "bad query JSON: "+err.Error())
			return
		}
		resp, err := e.Query(r.Context(), q)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m := e.Metrics()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"uptime_seconds": m.UptimeSeconds,
			"sessions_live":  m.SessionsLive,
			"in_flight":      m.InFlight,
		})
	})
	return mux
}

// writeQueryError maps engine errors onto HTTP semantics: typed
// backpressure becomes 429 + Retry-After, deadline expiry 504,
// client disconnect 499 (nginx convention), closed engine 503, and
// anything else — overwhelmingly validation — 400.
func writeQueryError(w http.ResponseWriter, err error) {
	var full *engine.QueueFullError
	switch {
	case errors.As(err, &full):
		secs := int(full.RetryAfter.Seconds() + 0.5)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		httpError(w, 499, err.Error())
	case errors.Is(err, engine.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
