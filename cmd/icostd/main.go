// Command icostd is the interaction-cost analysis daemon: a thin
// HTTP front end over internal/engine that keeps built dependence
// graphs resident and answers cost/icost/breakdown/slack/matrix
// queries concurrently. One expensive build (workload generation +
// cycle-level simulation + graph construction) amortizes across every
// subsequent query — the paper's O(|graph|)-per-query efficiency
// argument, served over a socket.
//
// The daemon also carries the fleet data plane (internal/fleet):
// many hosts POST binary sample streams to /ingest, an in-process
// aggregator merges them per (binary, seed, host-group) under a byte
// budget, and /query answers against the merged profile when the
// request carries a "fleet" target instead of a session spec.
//
// Usage:
//
//	icostd [-addr :8090] [-workers n] [-queue depth] [-cache-mb mb]
//	       [-sessions n] [-preload bench1,bench2,...] [-pprof]
//	       [-query-timeout 30s] [-fleet-mb mb] [-snapshot-dir dir]
//	       [-faults spec] [-fault-seed n]
//
// Endpoints:
//
//	POST /query         JSON engine.Query -> JSON engine.Response, or
//	                    {"fleet": {...}} -> JSON fleet.Response
//	POST /ingest        binary fleet sample stream (fleet.WriteStream)
//	GET  /metrics       engine + fleet counters, gauges and quantiles
//	GET  /healthz       liveness + uptime
//	GET  /readyz        readiness (503 while draining at shutdown)
//	GET  /debug/pprof/  Go runtime profiles (only with -pprof)
//
// A full queue returns 429 with a Retry-After header (backpressure,
// never unbounded buffering). SIGINT/SIGTERM drain in-flight queries
// before exit; a second signal during the drain forces immediate
// shutdown. With -snapshot-dir the daemon restores built sessions
// from the directory at startup and snapshots the resident sessions
// back to it after the drain, so a restart skips the cold builds.
// See README.md "Analysis service" for a curl session.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"icost/internal/depgraph"
	"icost/internal/engine"
	"icost/internal/faultinject"
	"icost/internal/fleet"
	"icost/internal/profiler"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// options holds the daemon's parsed flags.
type options struct {
	addr         string
	workers      int
	queue        int
	cacheMB      int
	sessions     int
	lanes        int
	preload      string
	pprof        bool
	queryTimeout time.Duration
	fleetMB      int
	snapshotDir  string
	faults       string
	faultSeed    uint64
}

// defineFlags registers every daemon flag on fs. Separated from run
// so the flag-audit test can inspect names, defaults and usage text
// without executing the daemon.
func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8090", "listen address")
	fs.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0),
		"worker pool size (defaults to GOMAXPROCS)")
	fs.IntVar(&o.queue, "queue", 0, "job queue depth (0 = 4x workers)")
	fs.IntVar(&o.cacheMB, "cache-mb", 64, "result cache budget in MiB")
	fs.IntVar(&o.sessions, "sessions", 8, "max resident sessions")
	fs.IntVar(&o.lanes, "lanes", 0,
		"batched-evaluation lane width per graph walk (power of two, up to 64; 0 = auto from GOMAXPROCS)")
	fs.StringVar(&o.preload, "preload", "", "comma-separated benchmarks to build at startup")
	fs.BoolVar(&o.pprof, "pprof", false,
		"serve Go runtime profiles under /debug/pprof/ (off by default)")
	fs.DurationVar(&o.queryTimeout, "query-timeout", 30*time.Second,
		"server-side deadline per query once dequeued (0 = unlimited)")
	fs.IntVar(&o.fleetMB, "fleet-mb", 64,
		"fleet aggregate sample pool budget in MiB (coldest aggregates evicted past it)")
	fs.StringVar(&o.snapshotDir, "snapshot-dir", "",
		"directory for durable session snapshots: restored at startup, saved at drain (empty = off)")
	fs.StringVar(&o.faults, "faults", "",
		"fault-injection spec, e.g. engine.build:err%0.5,icostd.query:lat=50ms (testing only)")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1,
		"seed for probabilistic fault injection (replayable)")
	return o
}

// run is the testable entry point: it parses flags, starts the
// engine, serves until a signal arrives on sig (nil = install the
// real SIGINT/SIGTERM handler), then drains and exits.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("icostd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := defineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.cacheMB < 1 || o.sessions < 1 {
		fmt.Fprintln(stderr, "icostd: -cache-mb and -sessions must be >= 1")
		return 2
	}
	if o.workers < 1 {
		fmt.Fprintln(stderr, "icostd: -workers must be >= 1")
		return 2
	}
	if o.queryTimeout < 0 {
		fmt.Fprintln(stderr, "icostd: -query-timeout must be >= 0")
		return 2
	}
	if o.fleetMB < 1 {
		fmt.Fprintln(stderr, "icostd: -fleet-mb must be >= 1")
		return 2
	}
	{
		probe := depgraph.DefaultConfig()
		probe.Lanes = o.lanes
		if err := probe.Validate(); err != nil {
			fmt.Fprintln(stderr, "icostd: -lanes:", err)
			return 2
		}
	}
	if o.faults != "" {
		rules, err := parseFaultSpec(o.faults)
		if err != nil {
			fmt.Fprintln(stderr, "icostd: -faults:", err)
			return 2
		}
		faultinject.Enable(o.faultSeed, rules...)
		defer faultinject.Disable()
		fmt.Fprintf(stdout, "icostd: fault injection ENABLED (seed %d): %s\n", o.faultSeed, o.faults)
	}

	e := engine.New(engine.Config{
		Workers:      o.workers,
		QueueDepth:   o.queue,
		CacheBytes:   int64(o.cacheMB) << 20,
		MaxSessions:  o.sessions,
		QueryTimeout: o.queryTimeout,
		Lanes:        o.lanes,
	})
	agg := fleet.NewAggregator(fleet.Config{MaxBytes: int64(o.fleetMB) << 20})

	if o.snapshotDir != "" {
		n, err := e.LoadSnapshots(context.Background(), o.snapshotDir)
		if err != nil {
			fmt.Fprintln(stderr, "icostd: load snapshots:", err)
			e.Close()
			return 1
		}
		fmt.Fprintf(stdout, "icostd: restored %d session(s) from %s\n", n, o.snapshotDir)
	}

	if o.preload != "" {
		for _, b := range strings.Split(o.preload, ",") {
			b = strings.TrimSpace(b)
			key, err := e.Warm(context.Background(), engine.SessionSpec{Bench: b})
			if err != nil {
				fmt.Fprintln(stderr, "icostd: preload:", err)
				e.Close()
				return 1
			}
			fmt.Fprintf(stdout, "icostd: preloaded %s (session %s)\n", b, key)
		}
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(stderr, "icostd:", err)
		e.Close()
		return 1
	}
	ready := &atomic.Bool{}
	ready.Store(true)
	srv := &http.Server{
		Handler:           newHandler(e, agg, o.pprof, ready),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "icostd: serving on %s (%d workers)\n", ln.Addr(), e.Metrics().Workers)

	if sig == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sig = ch
	}
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "icostd:", err)
		e.Close()
		return 1
	case <-sig:
	}

	// Graceful drain: flip readiness so load balancers stop routing
	// here, then give in-flight queries up to 30s. A second signal
	// during the drain skips the wait and severs connections.
	ready.Store(false)
	fmt.Fprintln(stdout, "icostd: shutting down, draining in-flight queries")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(stderr, "icostd: shutdown:", err)
		}
	case <-sig:
		fmt.Fprintln(stdout, "icostd: second signal, forcing immediate shutdown")
		if err := srv.Close(); err != nil {
			fmt.Fprintln(stderr, "icostd: close:", err)
		}
		<-done
	}
	// Snapshot resident sessions after the drain (queries are done
	// mutating the LRU) but before Close releases the pooled graph
	// arenas the sessions point into.
	if o.snapshotDir != "" {
		if n, err := e.SaveSnapshots(context.Background(), o.snapshotDir); err != nil {
			fmt.Fprintln(stderr, "icostd: save snapshots:", err)
		} else {
			fmt.Fprintf(stdout, "icostd: saved %d session snapshot(s) to %s\n", n, o.snapshotDir)
		}
	}
	e.Close()
	return 0
}

// queryRequest is the /query wire shape: the engine query fields
// promoted at the top level (unchanged for existing clients) plus an
// optional fleet target. A request carrying "fleet" is answered from
// the aggregate profile; everything else goes to the session engine.
type queryRequest struct {
	engine.Query
	Fleet *fleet.Query `json:"fleet,omitempty"`
}

// metricsSnapshot flattens the engine and fleet metric sets into one
// JSON object (the aliases sidestep the embedded-name clash between
// the two Snapshot types).
type (
	engineMetrics = engine.Snapshot
	fleetMetrics  = fleet.Snapshot
)

type metricsSnapshot struct {
	engineMetrics
	fleetMetrics
}

// maxIngestBytes bounds one /ingest request body. A stream carries at
// most a few MiB per PMU drain batch; 256 MiB leaves generous room
// for a host replaying a backlog without letting one connection
// exhaust the process.
const maxIngestBytes = 1 << 28

// newHandler builds the daemon's routing table over the session
// engine and the fleet aggregator. With pprofOn the Go runtime's
// profiling handlers are mounted under /debug/pprof/ — off by
// default, since profiles expose internals no production query
// endpoint should. ready gates /readyz (nil means always ready, for
// tests that only exercise routing).
func newHandler(e *engine.Engine, agg *fleet.Aggregator, pprofOn bool, ready *atomic.Bool) http.Handler {
	mux := http.NewServeMux()
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var q queryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			httpError(w, http.StatusBadRequest, "bad query JSON: "+err.Error())
			return
		}
		// Fault hook: handler-level failure after decode, before the
		// engine — models a dying front end rather than a bad engine.
		if err := faultinject.Hit(r.Context(), faultinject.DaemonQuery); err != nil {
			writeQueryError(w, err)
			return
		}
		if q.Fleet != nil {
			resp, err := agg.Query(r.Context(), *q.Fleet)
			if err != nil {
				writeQueryError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		resp, err := e.Query(r.Context(), q.Query)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		h, n, err := fleet.ReadStream(http.MaxBytesReader(w, r.Body, maxIngestBytes),
			func(h fleet.Header, s *profiler.Samples) error {
				return agg.Ingest(r.Context(), h, s)
			})
		if err != nil {
			// Batches merged before the failure stay merged — lossy
			// collection is the fleet contract — but the response is an
			// error so the host knows its stream did not land whole. A
			// truncated upload is the sender's problem, not the server's.
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			writeQueryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"key":     h.Key().String(),
			"host":    h.Host,
			"batches": n,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// One flat JSON object: engine and fleet key sets are disjoint
		// (fleet counters carry a fleet_ prefix), so embedding keeps
		// existing /metrics consumers decoding engine.Snapshot intact.
		writeJSON(w, http.StatusOK, metricsSnapshot{e.Metrics(), agg.Metrics()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m := e.Metrics()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"uptime_seconds": m.UptimeSeconds,
			"sessions_live":  m.SessionsLive,
			"in_flight":      m.InFlight,
		})
	})
	// Liveness (/healthz, above) and readiness are deliberately
	// separate: during the shutdown drain the process is still alive —
	// restarting it would kill the very queries it is draining — but
	// it must stop receiving new traffic.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil && !ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	return mux
}

// writeQueryError maps engine and fleet errors onto HTTP semantics:
// typed backpressure becomes 429 + Retry-After, deadline expiry 504,
// client disconnect 499 (nginx convention), closed engine 503,
// malformed queries and ingest streams (the typed validation errors)
// 400, a fleet query against an absent aggregate 404, and any
// unclassified failure — a broken build, an internal fault — 500, so
// server-side trouble is never misreported as the client's.
func writeQueryError(w http.ResponseWriter, err error) {
	var full *engine.QueueFullError
	var bad *engine.ValidationError
	var fbad *fleet.ValidationError
	var fmiss *fleet.NotFoundError
	switch {
	case errors.As(err, &full):
		secs := int(full.RetryAfter.Seconds() + 0.5)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		httpError(w, 499, err.Error())
	case errors.Is(err, engine.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, &bad), errors.As(err, &fbad):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.As(err, &fmiss):
		httpError(w, http.StatusNotFound, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
