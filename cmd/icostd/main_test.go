package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"icost/internal/engine"
	"icost/internal/fleet"
)

func newTestServer(t *testing.T) (*engine.Engine, *httptest.Server) {
	t.Helper()
	e := engine.New(engine.Config{Workers: 2})
	srv := httptest.NewServer(newHandler(e, fleet.NewAggregator(fleet.Config{}), false, nil))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

func postQuery(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestQueryEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	body := `{"session":{"bench":"mcf","seed":7,"trace_len":2000,"warmup":1000},
	          "op":"cost","cats":["dmiss"]}`
	resp, out := postQuery(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["op"] != "cost" || out["bench"] != "mcf" {
		t.Fatalf("bad response: %v", out)
	}
	if _, ok := out["value"].(float64); !ok {
		t.Fatalf("no numeric value in %v", out)
	}
	if out["cached"] != false {
		t.Fatal("first query claimed cached")
	}
	// Same query again: served from cache.
	resp, out = postQuery(t, srv, body)
	if resp.StatusCode != http.StatusOK || out["cached"] != true {
		t.Fatalf("repeat not cached: %d %v", resp.StatusCode, out)
	}
}

// TestQueryWindowedSession: window_insts in the session spec routes
// the build through the bounded-memory windowed pipeline, answers
// identically to the whole-graph session, and reports the windowed
// shape in the response.
func TestQueryWindowedSession(t *testing.T) {
	_, srv := newTestServer(t)
	whole := `{"session":{"bench":"mcf","seed":7,"trace_len":2000,"warmup":1000},
	           "op":"cost","cats":["dmiss"]}`
	windowed := `{"session":{"bench":"mcf","seed":7,"trace_len":2000,"warmup":1000,"window_insts":256},
	              "op":"cost","cats":["dmiss"]}`
	resp, want := postQuery(t, srv, whole)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whole-graph status %d: %v", resp.StatusCode, want)
	}
	resp, got := postQuery(t, srv, windowed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("windowed status %d: %v", resp.StatusCode, got)
	}
	if got["windowed"] != true || got["windows"] != float64(8) {
		t.Fatalf("windowed shape missing: %v", got)
	}
	if got["value"] != want["value"] || got["base_cycles"] != want["base_cycles"] {
		t.Fatalf("windowed answer diverged: %v vs %v", got, want)
	}
	// Slack has no resident graph to walk on a windowed session.
	resp, out := postQuery(t, srv, `{"session":{"bench":"mcf","seed":7,"trace_len":2000,"warmup":1000,"window_insts":256},"op":"slack"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("slack on windowed session: status %d: %v", resp.StatusCode, out)
	}
}

func TestQueryValidationErrors(t *testing.T) {
	_, srv := newTestServer(t)
	cases := []string{
		`{"session":{"bench":"nosuch"},"op":"cost","cats":["dmiss"]}`,
		`{"session":{"bench":"mcf"},"op":"bogus"}`,
		`{"session":{"bench":"mcf"},"op":"cost","cats":["zap"]}`,
		`not json at all`,
		`{"session":{"bench":"mcf"},"op":"cost","unknown_field":1}`,
	}
	for _, body := range cases {
		resp, out := postQuery(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		if out["error"] == "" {
			t.Errorf("body %q: no error message", body)
		}
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d", resp.StatusCode)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, srv := newTestServer(t)
	postQuery(t, srv, `{"session":{"bench":"gzip","seed":7,"trace_len":2000,"warmup":1000},"op":"slack"}`)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m engine.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.QueriesTotal < 1 || m.SessionsBuiltTotal < 1 || m.Workers != 2 {
		t.Fatalf("implausible metrics: %+v", m)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h["status"] != "ok" {
		t.Fatalf("healthz: %v", h)
	}
}

func TestClosedEngineUnavailable(t *testing.T) {
	e := engine.New(engine.Config{Workers: 1})
	srv := httptest.NewServer(newHandler(e, fleet.NewAggregator(fleet.Config{}), false, nil))
	defer srv.Close()
	e.Close()
	resp, out := postQueryRaw(t, srv, `{"session":{"bench":"mcf"},"op":"slack"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed engine: status %d, body %v", resp.StatusCode, out)
	}
}

func postQueryRaw(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// TestRunLifecycle exercises the daemon end to end: flag parsing,
// preload, serving, and graceful signal shutdown.
func TestRunLifecycle(t *testing.T) {
	sig := make(chan os.Signal, 1)
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0"}, &stdout, &stderr, sig)
	}()
	// The daemon binds asynchronously; give it a beat, then signal.
	time.Sleep(200 * time.Millisecond)
	sig <- os.Interrupt
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "serving on") {
		t.Fatalf("missing startup log: %q", stdout.String())
	}
	if !strings.Contains(stdout.String(), "draining") {
		t.Fatalf("missing drain log: %q", stdout.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workers", "zap"}, &stdout, &stderr, nil); code == 0 {
		t.Fatal("bad -workers accepted")
	}
	if stderr.Len() == 0 {
		t.Fatal("no error printed to stderr")
	}
	stderr.Reset()
	if code := run([]string{"-cache-mb", "0"}, &stdout, &stderr, nil); code == 0 {
		t.Fatal("zero cache accepted")
	}
	if !strings.Contains(stderr.String(), "cache-mb") {
		t.Fatalf("unhelpful error: %q", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-lanes", "3"}, &stdout, &stderr, nil); code != 2 {
		t.Fatal("non-power-of-two -lanes accepted")
	}
	if !strings.Contains(stderr.String(), "lanes") {
		t.Fatalf("unhelpful error: %q", stderr.String())
	}
	stderr.Reset()
	sig := make(chan os.Signal, 1)
	close(sig)
	if code := run([]string{"-preload", "nosuchbench", "-addr", "127.0.0.1:0"}, &stdout, &stderr, sig); code != 1 {
		t.Fatalf("bad preload exited %d", code)
	}
	if !strings.Contains(stderr.String(), "nosuchbench") {
		t.Fatalf("preload error not mentioned: %q", stderr.String())
	}
}
