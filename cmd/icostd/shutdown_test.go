package main

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icost/internal/engine"
	"icost/internal/fleet"
)

// TestReadyzEndpoint: readiness is a separate signal from liveness —
// flipping the ready bit turns /readyz into 503 "draining" while
// /healthz keeps reporting the process alive.
func TestReadyzEndpoint(t *testing.T) {
	e := engine.New(engine.Config{Workers: 1})
	defer e.Close()
	ready := &atomic.Bool{}
	ready.Store(true)
	srv := httptest.NewServer(newHandler(e, fleet.NewAggregator(fleet.Config{}), false, ready))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("ready: %d %q", code, body)
	}
	ready.Store(false)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz must stay 200 while draining, got %d", code)
	}
}

// TestWriteQueryErrorMapping pins the full error -> status table,
// including the regression that unclassified (server-side) errors are
// 500, not the old catch-all 400.
func TestWriteQueryErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&engine.QueueFullError{RetryAfter: 2 * time.Second}, http.StatusTooManyRequests},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, 499},
		{engine.ErrClosed, http.StatusServiceUnavailable},
		{&engine.ValidationError{Msg: "engine: unknown category"}, http.StatusBadRequest},
		{errors.New("simulating mcf: disk on fire"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeQueryError(rec, c.err)
		if rec.Code != c.want {
			t.Errorf("%v -> %d, want %d", c.err, rec.Code, c.want)
		}
	}
	rec := httptest.NewRecorder()
	writeQueryError(rec, &engine.QueueFullError{RetryAfter: 2 * time.Second})
	if rec.Header().Get("Retry-After") != "2" {
		t.Errorf("429 without Retry-After header")
	}
}

// syncBuf is an io.Writer safe for the run() goroutine to write while
// the test polls its contents.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var servingRe = regexp.MustCompile(`serving on ([\d.:\[\]]+)`)

// TestRunForcedShutdown: during the graceful drain a second signal
// must not be swallowed — it severs the open connection that is
// holding the drain and exits immediately.
func TestRunForcedShutdown(t *testing.T) {
	sig := make(chan os.Signal, 2)
	stdout, stderr := &syncBuf{}, &syncBuf{}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0"}, stdout, stderr, sig)
	}()

	// The daemon logs the real bound address once the listener is up.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := servingRe.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no serving log: %q / %q", stdout.String(), stderr.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// An in-flight connection (headers never finished) keeps the
	// graceful drain waiting out its full 30s budget.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /query HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}

	sig <- os.Interrupt
	deadline = time.Now().Add(5 * time.Second)
	for !strings.Contains(stdout.String(), "draining") {
		if time.Now().After(deadline) {
			t.Fatalf("no drain log: %q", stdout.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	sig <- os.Interrupt
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("forced shutdown exited %d, stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second signal did not force shutdown")
	}
	if !strings.Contains(stdout.String(), "forcing immediate shutdown") {
		t.Fatalf("missing force log: %q", stdout.String())
	}
}
