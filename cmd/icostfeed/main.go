// Command icostfeed is the fleet load generator: it simulates N
// hosts' collection agents, replays their sample streams against an
// icostd /ingest endpoint with open-loop arrivals (exponential
// inter-arrival times, dispatch decoupled from completion — the
// arrival process never slows down because the service did), then
// drives aggregate queries and reports ingestion QPS plus
// client-observed latency percentiles. With -json the report is a
// machine-readable document (the BENCH_fleet.json shape).
//
// A 429 + Retry-After answer is backpressure, not failure: the daemon
// is asking the feed to slow down. Such batches are retried after the
// hinted delay and counted separately (backpressure_429 / retries in
// the report); only exhausted retries count as errors.
//
// Usage:
//
//	icostfeed [-addr http://127.0.0.1:8090] [-hosts n] [-batches n]
//	          [-rate arrivals/s] [-groups n] [-distinct n]
//	          [-bench name] [-seed s] [-n insts] [-warmup insts]
//	          [-queries n] [-seed-arrival s] [-json]
//
// Each arrival is one POST /ingest carrying one sample batch from one
// host. Hosts are spread across -groups host groups, so the daemon
// maintains several aggregates under its byte budget while the feed
// runs. After the ingest wave, -queries aggregate queries (a
// cost/icost/breakdown mix across the groups) measure the read path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"icost/internal/fleet"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/retryafter"
	"icost/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options holds the generator's parsed flags.
type options struct {
	addr        string
	hosts       int
	batches     int
	rate        float64
	groups      int
	distinct    int
	bench       string
	seed        uint64
	n           int
	warmup      int
	queries     int
	arrivalSeed int64
	jsonOut     bool
}

// defineFlags registers every flag on fs, separated from run so the
// flag-audit test can inspect the surface without executing the feed.
func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", "http://127.0.0.1:8090", "icostd base URL")
	fs.IntVar(&o.hosts, "hosts", 50, "simulated hosts")
	fs.IntVar(&o.batches, "batches", 4, "sample batches per host")
	fs.Float64Var(&o.rate, "rate", 400, "open-loop arrival rate, batches/s across the fleet")
	fs.IntVar(&o.groups, "groups", 4, "host groups (aggregates) to spread hosts across")
	fs.IntVar(&o.distinct, "distinct", 4,
		"distinct host traces to simulate (hosts cycle through them)")
	fs.StringVar(&o.bench, "bench", "gzip", "benchmark binary the fleet runs")
	fs.Uint64Var(&o.seed, "seed", 42, "workload generation seed")
	fs.IntVar(&o.n, "n", 6000, "measured instructions per host trace")
	fs.IntVar(&o.warmup, "warmup", 2000, "warmup instructions per host trace")
	fs.IntVar(&o.queries, "queries", 60, "aggregate queries after the ingest wave")
	fs.Int64Var(&o.arrivalSeed, "seed-arrival", 1, "seed for the arrival process (replayable)")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the report as JSON (BENCH_fleet.json shape)")
	return o
}

// sample is one pre-encoded arrival: a host's framed ingest upload.
type sample struct {
	host  string
	group string
	raw   []byte
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icostfeed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := defineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "icostfeed:", err)
		return 1
	}
	if o.hosts < 1 || o.batches < 1 || o.groups < 1 || o.distinct < 1 || o.queries < 0 {
		return fail(fmt.Errorf("-hosts, -batches, -groups and -distinct must be >= 1, -queries >= 0"))
	}
	if o.rate <= 0 {
		return fail(fmt.Errorf("-rate must be > 0"))
	}
	if o.distinct > o.hosts {
		o.distinct = o.hosts
	}

	// Simulate the distinct host traces once; hosts cycle through them.
	// Collection is the expensive part of a real host agent and is not
	// what this tool measures, so it happens before the clock starts.
	fmt.Fprintf(stderr, "icostfeed: simulating %d distinct host trace(s) of %s@%d\n",
		o.distinct, o.bench, o.seed)
	pool := make([]*profiler.Samples, o.distinct)
	for i := range pool {
		s, err := collectHost(o, uint64(i)+7)
		if err != nil {
			return fail(err)
		}
		pool[i] = s
	}
	arrivals, err := encodeArrivals(o, pool)
	if err != nil {
		return fail(err)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	ing, err := ingestWave(o, client, arrivals)
	if err != nil {
		return fail(err)
	}
	qry, err := queryWave(o, client)
	if err != nil {
		return fail(err)
	}

	if o.jsonOut {
		return report(stdout, stderr, o, ing, qry)
	}
	fmt.Fprintf(stdout, "ingest: %d batches (%d errors) in %.2fs = %.1f batches/s\n",
		ing.Batches, ing.Errors, ing.WallS, ing.QPS)
	if ing.Backpressure429 > 0 {
		fmt.Fprintf(stdout, "        backpressure: %d 429s absorbed, %d retries\n",
			ing.Backpressure429, ing.Retries)
	}
	fmt.Fprintf(stdout, "        latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
		ing.P50ms, ing.P95ms, ing.P99ms)
	if o.queries > 0 {
		fmt.Fprintf(stdout, "query:  %d queries (%d errors, %d memoized) = %.1f queries/s\n",
			qry.Batches, qry.Errors, qry.Memoized, qry.QPS)
		fmt.Fprintf(stdout, "        latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
			qry.P50ms, qry.P95ms, qry.P99ms)
	}
	return 0
}

// collectHost simulates one host running the binary and collects its
// sample batch, exactly as internal/fleet's tests stand in for hosts.
func collectHost(o *options, traceSeed uint64) (*profiler.Samples, error) {
	w, err := workload.Cached(o.bench, o.seed)
	if err != nil {
		return nil, err
	}
	tr, err := w.Execute(o.warmup+o.n, traceSeed)
	if err != nil {
		return nil, err
	}
	res, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{KeepGraph: true, Warmup: o.warmup})
	if err != nil {
		return nil, err
	}
	// Collection must use the same signature shape the aggregator's
	// reconstruction expects; both sides default to
	// profiler.DefaultConfig(), only the sampling seed varies per host.
	cfg := profiler.DefaultConfig()
	cfg.Seed = traceSeed
	return profiler.Collect(tr, res.Graph, o.warmup, cfg)
}

// encodeArrivals frames every (host, batch) upload ahead of the wave,
// so the measured path is the service, not the encoder.
func encodeArrivals(o *options, pool []*profiler.Samples) ([]sample, error) {
	arrivals := make([]sample, 0, o.hosts*o.batches)
	for hi := 0; hi < o.hosts; hi++ {
		h := fleet.Header{
			Binary: o.bench,
			Seed:   o.seed,
			Group:  fmt.Sprintf("ring-%d", hi%o.groups),
			Host:   fmt.Sprintf("host-%03d", hi),
		}
		for b := 0; b < o.batches; b++ {
			var buf bytes.Buffer
			if err := fleet.WriteStream(&buf, h, []*profiler.Samples{pool[(hi+b)%len(pool)]}); err != nil {
				return nil, err
			}
			arrivals = append(arrivals, sample{host: h.Host, group: h.Group, raw: buf.Bytes()})
		}
	}
	return arrivals, nil
}

// waveStats is one wave's client-observed outcome.
type waveStats struct {
	Batches  int `json:"count"`
	Errors   int `json:"errors"`
	Memoized int `json:"memoized,omitempty"`
	// Backpressure429 counts 429+Retry-After responses. Backpressure is
	// the admission protocol working — the daemon asking the feed to
	// slow down — so it is not an error: each such batch was retried
	// (Retries counts the re-sends) and only exhausted retries land in
	// Errors.
	Backpressure429 int     `json:"backpressure_429,omitempty"`
	Retries         int     `json:"retries,omitempty"`
	WallS           float64 `json:"wall_s"`
	QPS             float64 `json:"per_s"`
	P50ms           float64 `json:"p50_ms"`
	P95ms           float64 `json:"p95_ms"`
	P99ms           float64 `json:"p99_ms"`
}

// postRetry issues one POST, retrying up to two more times when the
// service answers 429 backpressure, honoring its Retry-After hint
// (capped so a long hint cannot stall the wave). The returned counts
// let the caller report backpressure separately from errors.
func postRetry(client *http.Client, url, contentType string, body []byte) (resp *http.Response, backpressure, retries int, err error) {
	for attempt := 0; ; attempt++ {
		resp, err = client.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			return nil, backpressure, retries, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp, backpressure, retries, nil
		}
		backpressure++
		if attempt >= 2 {
			return resp, backpressure, retries, nil
		}
		wait := time.Second
		if d, ok := retryafter.Parse(resp.Header.Get("Retry-After"), time.Now(), 2*time.Second); ok {
			wait = d
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		retries++
		time.Sleep(wait)
	}
}

// ingestWave replays every arrival open-loop: dispatch times come
// from an exponential inter-arrival process seeded by -seed-arrival,
// and a slow service only grows the in-flight set, never the
// schedule.
func ingestWave(o *options, client *http.Client, arrivals []sample) (waveStats, error) {
	rng := rand.New(rand.NewSource(o.arrivalSeed))
	lat := make([]time.Duration, len(arrivals))
	var errCount, bpCount, retryCount atomic.Int64
	var wg sync.WaitGroup

	start := time.Now()
	next := start
	for i := range arrivals {
		next = next.Add(time.Duration(rng.ExpFloat64() / o.rate * float64(time.Second)))
		time.Sleep(time.Until(next))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			resp, bp, retries, err := postRetry(client, o.addr+"/ingest",
				"application/octet-stream", arrivals[i].raw)
			lat[i] = time.Since(t0)
			bpCount.Add(int64(bp))
			retryCount.Add(int64(retries))
			if err != nil {
				errCount.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCount.Add(1)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	st := stats(lat, wall)
	st.Batches = len(arrivals)
	st.Errors = int(errCount.Load())
	st.Backpressure429 = int(bpCount.Load())
	st.Retries = int(retryCount.Load())
	if st.Errors == len(arrivals) {
		return st, fmt.Errorf("every ingest failed — is icostd running at %s?", o.addr)
	}
	return st, nil
}

// queryWave issues the aggregate-query mix serially (dashboards poll,
// they do not flood) and records client-observed latency.
func queryWave(o *options, client *http.Client) (waveStats, error) {
	mix := []string{
		`{"fleet":{"binary":%q,"seed":%d,"group":%q,"op":"cost","cats":["dl1"]}}`,
		`{"fleet":{"binary":%q,"seed":%d,"group":%q,"op":"icost","cats":["dl1","win"]}}`,
		`{"fleet":{"binary":%q,"seed":%d,"group":%q,"op":"breakdown"}}`,
	}
	lat := make([]time.Duration, 0, o.queries)
	st := waveStats{}
	start := time.Now()
	for i := 0; i < o.queries; i++ {
		group := fmt.Sprintf("ring-%d", i%o.groups)
		body := fmt.Sprintf(mix[i%len(mix)], o.bench, o.seed, group)
		t0 := time.Now()
		resp, err := client.Post(o.addr+"/query", "application/json", strings.NewReader(body))
		lat = append(lat, time.Since(t0))
		if err != nil {
			st.Errors++
			continue
		}
		var out struct {
			Memoized bool `json:"memoized"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			st.Errors++
			continue
		}
		if out.Memoized {
			st.Memoized++
		}
	}
	wall := time.Since(start)
	s := stats(lat, wall)
	s.Batches = o.queries
	s.Errors = st.Errors
	s.Memoized = st.Memoized
	if o.queries > 0 && s.Errors == o.queries {
		return s, fmt.Errorf("every query failed — is icostd running at %s?", o.addr)
	}
	return s, nil
}

// stats reduces a latency sample to the wave summary.
func stats(lat []time.Duration, wall time.Duration) waveStats {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(q float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i].Microseconds()) / 1e3
	}
	qps := 0.0
	if wall > 0 {
		qps = float64(len(lat)) / wall.Seconds()
	}
	return waveStats{
		WallS: wall.Seconds(),
		QPS:   qps,
		P50ms: pct(0.50),
		P95ms: pct(0.95),
		P99ms: pct(0.99),
	}
}

// report emits the machine-readable document (the BENCH_fleet.json
// shape: benchmark identity, environment, and the two waves).
func report(stdout, stderr io.Writer, o *options, ing, qry waveStats) int {
	doc := map[string]any{
		"benchmark": "icostfeed",
		"package":   "icost/cmd/icostfeed",
		"date":      time.Now().Format("2006-01-02"),
		"command": fmt.Sprintf(
			"icostfeed -hosts %d -batches %d -rate %g -groups %d -distinct %d -queries %d -json",
			o.hosts, o.batches, o.rate, o.groups, o.distinct, o.queries),
		"environment": map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		"workload": map[string]any{
			"binary":        fmt.Sprintf("%s@%d", o.bench, o.seed),
			"hosts":         o.hosts,
			"batches_total": o.hosts * o.batches,
			"groups":        o.groups,
			"arrival":       "open-loop, exponential inter-arrival",
			"rate_per_s":    o.rate,
			"trace_len":     o.n,
			"warmup":        o.warmup,
			"queries":       o.queries,
			"query_mix":     "cost(dl1) / icost(dl1,win) / breakdown, round-robin over groups",
		},
		"results": map[string]any{
			"ingest": ing,
			"query":  qry,
		},
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(stderr, "icostfeed:", err)
		return 1
	}
	return 0
}
