package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"icost/internal/fleet"
	"icost/internal/profiler"
)

// TestFlagAudit pins the generator's flag surface, mirroring icostd's
// audit: every flag exists with the documented default and usage, and
// nothing undocumented sneaks in.
func TestFlagAudit(t *testing.T) {
	fs := flag.NewFlagSet("icostfeed", flag.ContinueOnError)
	defineFlags(fs)
	want := map[string]struct {
		def   string
		usage string
	}{
		"addr":         {"http://127.0.0.1:8090", "icostd"},
		"hosts":        {"50", "hosts"},
		"batches":      {"4", "batches"},
		"rate":         {"400", "open-loop"},
		"groups":       {"4", "groups"},
		"distinct":     {"4", "distinct"},
		"bench":        {"gzip", "benchmark"},
		"seed":         {"42", "seed"},
		"n":            {"6000", "instructions"},
		"warmup":       {"2000", "warmup"},
		"queries":      {"60", "queries"},
		"seed-arrival": {"1", "arrival"},
		"json":         {"false", "JSON"},
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		w, ok := want[f.Name]
		if !ok {
			t.Errorf("undocumented flag -%s (usage %q)", f.Name, f.Usage)
			return
		}
		if f.DefValue != w.def {
			t.Errorf("-%s default = %q, want %q", f.Name, f.DefValue, w.def)
		}
		if !strings.Contains(f.Usage, w.usage) {
			t.Errorf("-%s usage %q does not mention %q", f.Name, f.Usage, w.usage)
		}
	})
	for name := range want {
		if !got[name] {
			t.Errorf("expected flag -%s is not defined", name)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-hosts", "0"},
		{"-batches", "0"},
		{"-rate", "0"},
		{"-groups", "-1"},
		{"-hosts", "zap"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("args %v accepted", args)
		}
		if stderr.Len() == 0 {
			t.Errorf("args %v: no error printed", args)
		}
	}
}

// testDaemon is a minimal stand-in for icostd's fleet surface: the
// same /ingest stream decode and /query fleet routing over a real
// aggregator, without depending on the icostd package.
func testDaemon(t *testing.T) (*fleet.Aggregator, *httptest.Server) {
	t.Helper()
	agg := fleet.NewAggregator(fleet.Config{})
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		_, n, err := fleet.ReadStream(r.Body, func(h fleet.Header, s *profiler.Samples) error {
			return agg.Ingest(r.Context(), h, s)
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, `{"batches":%d}`, n)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		var q struct {
			Fleet *fleet.Query `json:"fleet"`
		}
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil || q.Fleet == nil {
			http.Error(w, "bad query", http.StatusBadRequest)
			return
		}
		resp, err := agg.Query(r.Context(), *q.Fleet)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return agg, srv
}

// TestFeedEndToEnd replays a small fleet through the stand-in daemon
// and checks the JSON report: every batch landed, queries answered,
// and the memo caught the repeats.
func TestFeedEndToEnd(t *testing.T) {
	agg, srv := testDaemon(t)
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", srv.URL,
		"-hosts", "4", "-batches", "2", "-groups", "1", "-distinct", "1",
		"-rate", "5000", "-queries", "6",
		"-n", "3000", "-warmup", "1000",
		"-json",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	var doc struct {
		Results struct {
			Ingest waveStats `json:"ingest"`
			Query  waveStats `json:"query"`
		} `json:"results"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, stdout.String())
	}
	ing, qry := doc.Results.Ingest, doc.Results.Query
	if ing.Batches != 8 || ing.Errors != 0 || ing.QPS <= 0 {
		t.Fatalf("ingest wave: %+v", ing)
	}
	if qry.Batches != 6 || qry.Errors != 0 {
		t.Fatalf("query wave: %+v", qry)
	}
	// The mix repeats each op against the single group, so the second
	// round must hit the per-generation memo.
	if qry.Memoized == 0 {
		t.Fatalf("no memoized queries in %+v", qry)
	}
	m := agg.Metrics()
	if m.IngestBatchesTotal != 8 || m.HostsSeen != 4 {
		t.Fatalf("aggregator metrics: %+v", m)
	}
}

// TestFeedBackpressureRetried: a 429 + Retry-After answer is the
// admission protocol working, not a failure — the batch is retried
// after the hint and the backpressure is reported separately from
// errors.
func TestFeedBackpressureRetried(t *testing.T) {
	agg, srv := testDaemon(t)
	// Wrap the stand-in daemon: the first POST of each batch is shed
	// with 429 + Retry-After, the retry goes through.
	var rejected atomic.Int64
	seen := make(map[string]bool)
	var mu sync.Mutex
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ingest" {
			body, _ := io.ReadAll(r.Body)
			sum := fmt.Sprintf("%x", sha256.Sum256(body))
			mu.Lock()
			first := !seen[sum]
			seen[sum] = true
			mu.Unlock()
			if first {
				rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "queue full", http.StatusTooManyRequests)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		u, _ := url.Parse(srv.URL)
		httputil.NewSingleHostReverseProxy(u).ServeHTTP(w, r)
	}))
	t.Cleanup(front.Close)

	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", front.URL,
		"-hosts", "2", "-batches", "2", "-groups", "1", "-distinct", "1",
		"-rate", "5000", "-queries", "0",
		"-n", "3000", "-warmup", "1000",
		"-json",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	var doc struct {
		Results struct {
			Ingest waveStats `json:"ingest"`
		} `json:"results"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, stdout.String())
	}
	ing := doc.Results.Ingest
	if ing.Errors != 0 {
		t.Fatalf("backpressure counted as errors: %+v", ing)
	}
	if got, want := ing.Backpressure429, int(rejected.Load()); got != want {
		t.Fatalf("backpressure_429 = %d, want %d (every shed batch)", got, want)
	}
	if ing.Retries != ing.Backpressure429 {
		t.Fatalf("retries = %d, want %d (every 429 retried once)", ing.Retries, ing.Backpressure429)
	}
	if m := agg.Metrics(); m.IngestBatchesTotal != 4 {
		t.Fatalf("retried batches did not all land: %+v", m)
	}
}

// TestFeedUnreachableDaemon: a dead endpoint is a hard error, not a
// report full of zeros.
func TestFeedUnreachableDaemon(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", "http://127.0.0.1:1", // reserved port, nothing listens
		"-hosts", "1", "-batches", "1", "-distinct", "1",
		"-rate", "5000", "-queries", "0",
		"-n", "3000", "-warmup", "1000",
	}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("unreachable daemon exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "is icostd running") {
		t.Fatalf("unhelpful error: %q", stderr.String())
	}
}
