// Command icostload is the open-loop load harness for icostd and its
// sharding router. It offers queries at a fixed rate with exponential
// inter-arrival gaps (open loop: arrivals never wait for completions,
// so saturation shows up as latency growth and backpressure instead
// of silently throttled offered load), reports latency percentiles,
// and distinguishes real failures from 429 backpressure — a 429 with
// Retry-After is the protocol working, so it is retried and counted
// separately, never lumped into the error column.
//
// Two modes:
//
//   - -target URL: load an already-running daemon or router at -rate
//     for -duration and print one result.
//   - benchmark mode (default): spawn an in-process single shard and
//     an in-process 1-router/N-backend cluster (internal/router's
//     Cluster — real HTTP over loopback sockets), sweep offered rates
//     over both to find their saturation throughput, compare hedged
//     vs unhedged tail latency under an injected slow-forward
//     perturbation, and write the whole report to -json
//     (BENCH_shard.json in this repo).
//
// The warm-query mix deliberately defeats the result cache (distinct
// category subsets per request, a near-zero cache budget on the
// shards) so each query performs a real O(|graph|) analysis on an
// already-built session: that is the regime where shard count buys
// throughput.
//
// Usage:
//
//	icostload [-rate 300] [-duration 2s] [-backends 3] [-sessions 2]
//	          [-bench bzip] [-trace-len 12000] [-shard-workers 1]
//	          [-sweep 100,200,400] [-hedge-after 15ms]
//	          [-perturb spec] [-perturb-seed n] [-json out.json]
//	icostload -target http://host:8090 [-rate 300] [-duration 2s]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"icost/internal/engine"
	"icost/internal/faultinject"
	"icost/internal/retryafter"
	"icost/internal/router"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options holds the harness's parsed flags.
type options struct {
	target       string
	rate         float64
	duration     time.Duration
	bench        string
	traceLen     int
	sessions     int
	backends     int
	shardWorkers int
	sweep        string
	service      time.Duration
	hedgeAfter   time.Duration
	perturb      string
	perturbSeed  uint64
	maxOut       int
	jsonPath     string
}

// defineFlags registers every harness flag on fs, separated from run
// so the flag-audit test can inspect names, defaults and usage text.
func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.target, "target", "",
		"base URL of a running icostd or router (empty = in-process benchmark mode)")
	fs.Float64Var(&o.rate, "rate", 300,
		"offered request rate per second (open loop, exponential arrivals); must be > 0")
	fs.DurationVar(&o.duration, "duration", 2*time.Second,
		"measurement window per load run")
	fs.StringVar(&o.bench, "bench", "bzip",
		"benchmark profile for the generated sessions")
	fs.IntVar(&o.traceLen, "trace-len", 12000,
		"session trace length (smaller = cheaper warm queries)")
	fs.IntVar(&o.sessions, "sessions", 4,
		"distinct warm sessions in the query mix (more sessions spread further across shards)")
	fs.IntVar(&o.backends, "backends", 3,
		"in-process cluster shard count (benchmark mode)")
	fs.IntVar(&o.shardWorkers, "shard-workers", 1,
		"engine workers per in-process shard")
	fs.StringVar(&o.sweep, "sweep", "",
		"comma-separated offered rates for the saturation sweep (empty = 0.5x,1x,2x,4x of -rate)")
	fs.DurationVar(&o.service, "service", 4*time.Millisecond,
		"simulated per-query shard service time, injected at engine.exec and held by a shard worker — makes worker capacity (not the shared CPU) the saturation bound, so shard count is measurable on a single-core box (0 = off)")
	fs.DurationVar(&o.hedgeAfter, "hedge-after", 15*time.Millisecond,
		"hedge delay for the tail-latency comparison (0 skips the hedging phase)")
	fs.StringVar(&o.perturb, "perturb", "router.forward:lat=30ms%0.05",
		"fault-injection spec making some forwards slow for the hedging comparison")
	fs.Uint64Var(&o.perturbSeed, "perturb-seed", 42,
		"seed for the perturbation plan (replayable)")
	fs.IntVar(&o.maxOut, "max-outstanding", 512,
		"open-loop cap on in-flight requests; arrivals past it are shed and counted")
	fs.StringVar(&o.jsonPath, "json", "",
		"write the benchmark report JSON here (e.g. BENCH_shard.json)")
	return o
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icostload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := defineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.rate <= 0 {
		fmt.Fprintln(stderr, "icostload: -rate must be > 0")
		return 2
	}
	if o.duration <= 0 {
		fmt.Fprintln(stderr, "icostload: -duration must be > 0")
		return 2
	}
	if o.sessions < 1 || o.backends < 1 || o.shardWorkers < 1 {
		fmt.Fprintln(stderr, "icostload: -sessions, -backends and -shard-workers must be >= 1")
		return 2
	}
	if o.maxOut < 1 {
		fmt.Fprintln(stderr, "icostload: -max-outstanding must be >= 1")
		return 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if o.target != "" {
		client := loadClient()
		res := runLoad(ctx, client, o.target+"/query", queryBodies(o, 256), o.rate, o.duration, o.maxOut)
		printResult(stdout, "target", res)
		if o.jsonPath != "" {
			return writeJSONFile(stderr, o.jsonPath, res)
		}
		return 0
	}
	rep, err := runBenchmark(ctx, o, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "icostload:", err)
		return 1
	}
	if o.jsonPath != "" {
		if code := writeJSONFile(stderr, o.jsonPath, rep); code != 0 {
			return code
		}
		fmt.Fprintf(stdout, "icostload: wrote %s\n", o.jsonPath)
	}
	return 0
}

func writeJSONFile(stderr io.Writer, path string, v any) int {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "icostload:", err)
		return 1
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "icostload:", err)
		return 1
	}
	return 0
}

// catNames is the paper's eight idealization categories.
var catNames = []string{"dl1", "dmiss", "imiss", "bmisp", "win", "bw", "shalu", "lgalu"}

// sessionSpecs returns the distinct session specs in the mix: same
// benchmark, distinct workload seeds, so every spec builds its own
// graph but all builds cost the same.
func sessionSpecs(o *options) []engine.SessionSpec {
	specs := make([]engine.SessionSpec, o.sessions)
	for i := range specs {
		specs[i] = engine.SessionSpec{Bench: o.bench, Seed: uint64(i + 1), TraceLen: o.traceLen}
	}
	return specs
}

// queryBodies builds n distinct warm-query bodies over the session
// mix: cost and icost ops over random 2–3 category subsets. Distinct
// subsets mean distinct cache keys, so the shards do real graph work
// per query. Deterministic (fixed seed) so repeated runs offer the
// same mix.
func queryBodies(o *options, n int) [][]byte {
	rng := rand.New(rand.NewSource(7))
	specs := sessionSpecs(o)
	bodies := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(2)
		perm := rng.Perm(len(catNames))
		cats := make([]string, k)
		for j := 0; j < k; j++ {
			cats[j] = catNames[perm[j]]
		}
		op := "cost"
		if i%2 == 1 {
			op = "icost"
		}
		body, err := json.Marshal(map[string]any{
			"session": specs[i%len(specs)],
			"op":      op,
			"cats":    cats,
		})
		if err != nil {
			panic(err) // static shape; cannot fail
		}
		bodies = append(bodies, body)
	}
	return bodies
}

// result is one load run's outcome.
type result struct {
	OfferedRate float64 `json:"offered_rate"`
	DurationSec float64 `json:"duration_sec"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Errors      int     `json:"errors"`
	// Backpressure429 counts 429+Retry-After responses: the admission
	// protocol working, not failures. Each was retried (Retries) up to
	// the attempt cap; only exhausted retries land in Errors.
	Backpressure429 int     `json:"backpressure_429"`
	Retries         int     `json:"retries"`
	Shed            int     `json:"shed"`
	AchievedQPS     float64 `json:"achieved_qps"`
	P50us           int64   `json:"p50_us"`
	P95us           int64   `json:"p95_us"`
	P99us           int64   `json:"p99_us"`
}

// runLoad offers bodies at rate for dur against url and collects the
// outcome. Open loop: arrivals are scheduled by an exponential clock
// and never wait for completions; the -max-outstanding cap sheds (and
// counts) arrivals that would exceed it, so a dead target cannot
// accumulate unbounded goroutines.
func runLoad(ctx context.Context, client *http.Client, url string, bodies [][]byte, rate float64, dur time.Duration, maxOut int) result {
	var (
		mu   sync.Mutex
		lats []time.Duration
		res  result
	)
	res.OfferedRate = rate
	sem := make(chan struct{}, maxOut)
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(11))
	start := time.Now()
	deadline := start.Add(dur)
	// Arrivals follow an absolute exponential schedule: each sleep
	// targets the next arrival instant, not a relative gap, so sleep
	// overshoot never silently deflates the offered rate.
	next := start
	for i := 0; ; i++ {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if next.After(deadline) || ctx.Err() != nil {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		res.Sent++
		select {
		case sem <- struct{}{}:
		default:
			res.Shed++
			continue
		}
		body := bodies[i%len(bodies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			ok, bp, retries := issue(ctx, client, url, body)
			lat := time.Since(t0)
			mu.Lock()
			res.Backpressure429 += bp
			res.Retries += retries
			if ok {
				res.OK++
				lats = append(lats, lat)
			} else {
				res.Errors++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	res.DurationSec = elapsed.Seconds()
	res.AchievedQPS = float64(res.OK) / elapsed.Seconds()
	res.P50us, res.P95us, res.P99us = percentiles(lats)
	return res
}

// issue sends one query, retrying 429 backpressure (honoring
// Retry-After, capped so a long hint cannot stall the run) up to
// three attempts. Reports success, how many 429s were seen, and how
// many retries were spent.
func issue(ctx context.Context, client *http.Client, url string, body []byte) (ok bool, backpressure, retries int) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return false, backpressure, retries
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return false, backpressure, retries
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			backpressure++
			if attempt >= 2 {
				return false, backpressure, retries
			}
			retries++
			wait := time.Second
			if d, ok := retryafter.Parse(resp.Header.Get("Retry-After"), time.Now(), 2*time.Second); ok {
				wait = d
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return false, backpressure, retries
			}
			continue
		}
		return resp.StatusCode == http.StatusOK, backpressure, retries
	}
}

// percentiles returns p50/p95/p99 in microseconds (0s when empty).
func percentiles(lats []time.Duration) (p50, p95, p99 int64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(lats)-1))
		return lats[i].Microseconds()
	}
	return at(0.50), at(0.95), at(0.99)
}

// report is the benchmark-mode output (BENCH_shard.json).
type report struct {
	Bench        string `json:"bench"`
	TraceLen     int    `json:"trace_len"`
	Sessions     int    `json:"sessions"`
	Backends     int    `json:"backends"`
	ShardWorkers int    `json:"shard_workers"`
	// Repro is the exact command that regenerates this file.
	Repro string `json:"repro"`

	// SingleNode sweeps a direct (router-free) one-shard daemon;
	// Cluster sweeps the routed N-shard cluster over the same rates.
	SingleNode []result `json:"single_node_sweep"`
	Cluster    []result `json:"cluster_sweep"`

	// SustainedQPS is the best achieved throughput seen anywhere in
	// each sweep (open-loop achieved rate plateaus at capacity).
	SingleSustainedQPS  float64 `json:"single_sustained_qps"`
	ClusterSustainedQPS float64 `json:"cluster_sustained_qps"`
	Speedup             float64 `json:"cluster_speedup"`

	// Hedging compares routed tail latency under the -perturb
	// slow-forward injection with hedging off vs on, at -rate.
	Hedging *hedgeReport `json:"hedging,omitempty"`
}

type hedgeReport struct {
	Perturb     string  `json:"perturb"`
	PerturbSeed uint64  `json:"perturb_seed"`
	Rate        float64 `json:"rate"`
	HedgeAfter  string  `json:"hedge_after"`
	Off         result  `json:"off"`
	On          result  `json:"on"`
}

// clusterConfig shapes the in-process shards for warm-query
// benchmarking: single-digit workers so shard count is the capacity
// knob, and a near-zero result cache so every query does real graph
// work instead of a map lookup.
func clusterConfig(o *options, backends int, hedge time.Duration, hot int) router.ClusterConfig {
	return router.ClusterConfig{
		Backends: backends,
		Engine: engine.Config{
			Workers:     o.shardWorkers,
			QueueDepth:  64, // buffer saturation bursts instead of 429-stalling them
			CacheBytes:  1,  // effectively disable result caching
			MaxSessions: o.sessions + 1,
		},
		Router: router.Config{
			HedgeAfter:   hedge,
			HotThreshold: hot,
			Client:       loadClient(),
		},
	}
}

// loadClient returns an HTTP client fit for thousands of concurrent
// requests against a handful of hosts — the default transport keeps
// only two idle connections per host, which turns a load test into a
// connection-churn test.
func loadClient() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 512,
		},
	}
}

// warm builds every session in the mix through url and fails if any
// build fails — measurement must start from an all-warm state.
func warm(ctx context.Context, client *http.Client, url string, o *options) error {
	for _, spec := range sessionSpecs(o) {
		body, err := json.Marshal(map[string]any{"session": spec, "op": "exectime"})
		if err != nil {
			return err
		}
		// A few attempts ride out transient 429s from parallel builds.
		var last string
		for attempt := 0; attempt < 5; attempt++ {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				last = ""
				break
			}
			last = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, msg)
			time.Sleep(200 * time.Millisecond)
		}
		if last != "" {
			return fmt.Errorf("warming session (bench %s seed %d): %s", spec.Bench, spec.Seed, last)
		}
	}
	return nil
}

// sweepRates parses -sweep, defaulting to a geometric ladder around
// -rate.
func sweepRates(o *options) ([]float64, error) {
	if o.sweep == "" {
		return []float64{o.rate / 2, o.rate, o.rate * 2, o.rate * 4}, nil
	}
	var rates []float64
	for _, f := range strings.Split(o.sweep, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -sweep rate %q", f)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// runBenchmark runs the full benchmark-mode protocol: single-node
// sweep, routed-cluster sweep, hedging comparison.
func runBenchmark(ctx context.Context, o *options, stdout io.Writer) (*report, error) {
	rates, err := sweepRates(o)
	if err != nil {
		return nil, err
	}
	bodies := queryBodies(o, 256)
	client := loadClient()
	rep := &report{
		Bench: o.bench, TraceLen: o.traceLen, Sessions: o.sessions,
		Backends: o.backends, ShardWorkers: o.shardWorkers,
		Repro: fmt.Sprintf(
			"go run ./cmd/icostload -backends %d -shard-workers %d -bench %s -trace-len %d -sessions %d -rate %g -duration %s -sweep %s -service %s -hedge-after %s -perturb %q -perturb-seed %d -json BENCH_shard.json",
			o.backends, o.shardWorkers, o.bench, o.traceLen, o.sessions,
			o.rate, o.duration, joinRates(rates), o.service, o.hedgeAfter, o.perturb, o.perturbSeed),
	}

	svc, err := serviceRules(o)
	if err != nil {
		return nil, err
	}

	// Phase 1: direct single shard — no router in the path. The
	// per-walk service injection arms after warmup (builds are many
	// walks; slowing them buys nothing) and applies identically to
	// both sweeps, so the comparison is pure topology.
	fmt.Fprintf(stdout, "icostload: single-node sweep (direct, 1 shard x %d worker(s), service %s/query)\n",
		o.shardWorkers, o.service)
	single, err := router.StartCluster(ctx, clusterConfig(o, 1, 0, 1<<30))
	if err != nil {
		return nil, err
	}
	direct := single.BackendURLs()[0]
	if err := warm(ctx, client, direct+"/query", o); err != nil {
		single.Close()
		return nil, err
	}
	arm(o, svc)
	for _, rate := range rates {
		res := runLoad(ctx, client, direct+"/query", bodies, rate, o.duration, o.maxOut)
		printResult(stdout, "single", res)
		rep.SingleNode = append(rep.SingleNode, res)
	}
	faultinject.Disable()
	single.Close()

	// Phase 2: routed cluster, same rates. Replication is irrelevant
	// to the throughput story, so the hot threshold is parked high.
	fmt.Fprintf(stdout, "icostload: cluster sweep (1 router, %d shards x %d worker(s))\n", o.backends, o.shardWorkers)
	cl, err := router.StartCluster(ctx, clusterConfig(o, o.backends, 0, 1<<30))
	if err != nil {
		return nil, err
	}
	if err := warm(ctx, client, cl.RouterURL+"/query", o); err != nil {
		cl.Close()
		return nil, err
	}
	arm(o, svc)
	for _, rate := range rates {
		res := runLoad(ctx, client, cl.RouterURL+"/query", bodies, rate, o.duration, o.maxOut)
		printResult(stdout, "cluster", res)
		rep.Cluster = append(rep.Cluster, res)
	}
	faultinject.Disable()
	cl.Close()

	for _, r := range rep.SingleNode {
		if r.AchievedQPS > rep.SingleSustainedQPS {
			rep.SingleSustainedQPS = r.AchievedQPS
		}
	}
	for _, r := range rep.Cluster {
		if r.AchievedQPS > rep.ClusterSustainedQPS {
			rep.ClusterSustainedQPS = r.AchievedQPS
		}
	}
	if rep.SingleSustainedQPS > 0 {
		rep.Speedup = rep.ClusterSustainedQPS / rep.SingleSustainedQPS
	}
	fmt.Fprintf(stdout, "icostload: sustained qps single=%.0f cluster=%.0f speedup=%.2fx\n",
		rep.SingleSustainedQPS, rep.ClusterSustainedQPS, rep.Speedup)

	// Phase 3: hedged vs unhedged tail under the slow-forward
	// perturbation.
	if o.hedgeAfter > 0 && o.perturb != "" {
		h, err := hedgeCompare(ctx, o, bodies, client, stdout)
		if err != nil {
			return nil, err
		}
		rep.Hedging = h
	}
	return rep, nil
}

func joinRates(rates []float64) string {
	parts := make([]string, len(rates))
	for i, r := range rates {
		parts[i] = strconv.FormatFloat(r, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// serviceRules builds the per-query service-time injection (empty
// when -service is 0).
func serviceRules(o *options) ([]faultinject.Rule, error) {
	if o.service <= 0 {
		return nil, nil
	}
	return faultinject.ParseSpec(fmt.Sprintf("engine.exec:lat=%s", o.service))
}

// arm enables the given rules (no-op when empty; any previous plan is
// replaced).
func arm(o *options, rules []faultinject.Rule) {
	if len(rules) > 0 {
		faultinject.Enable(o.perturbSeed, rules...)
	}
}

// hedgeCompare runs the same perturbed load twice — hedging off, then
// on — against fresh clusters with hot-session replication forced
// (threshold 1), so the hedged run actually has replicas to race.
func hedgeCompare(ctx context.Context, o *options, bodies [][]byte, client *http.Client, stdout io.Writer) (*hedgeReport, error) {
	rules, err := faultinject.ParseSpec(o.perturb)
	if err != nil {
		return nil, fmt.Errorf("-perturb: %w", err)
	}
	svc, err := serviceRules(o)
	if err != nil {
		return nil, err
	}
	rules = append(rules, svc...)
	h := &hedgeReport{
		Perturb: o.perturb, PerturbSeed: o.perturbSeed,
		Rate: o.rate, HedgeAfter: o.hedgeAfter.String(),
	}
	for _, hedge := range []time.Duration{0, o.hedgeAfter} {
		cl, err := router.StartCluster(ctx, clusterConfig(o, o.backends, hedge, 1))
		if err != nil {
			return nil, err
		}
		if err := warm(ctx, client, cl.RouterURL+"/query", o); err != nil {
			cl.Close()
			return nil, err
		}
		// Replication is async: query each session past the hot
		// threshold, then wait until the router reports every session
		// replicated before measuring.
		if err := awaitReplication(ctx, client, cl.RouterURL, bodies, o.sessions); err != nil {
			cl.Close()
			return nil, err
		}
		arm(o, rules)
		res := runLoad(ctx, client, cl.RouterURL+"/query", bodies, o.rate, o.duration, o.maxOut)
		faultinject.Disable()
		cl.Close()
		if hedge == 0 {
			printResult(stdout, "hedge-off", res)
			h.Off = res
		} else {
			printResult(stdout, "hedge-on", res)
			h.On = res
		}
	}
	return h, nil
}

// awaitReplication drives enough queries to mark every session hot,
// then polls the router's metrics until they all report replicated.
func awaitReplication(ctx context.Context, client *http.Client, routerURL string, bodies [][]byte, sessions int) error {
	for _, body := range bodies[:min(8, len(bodies))] {
		_, _, _ = issue(ctx, client, routerURL+"/query", body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(routerURL + "/metrics")
		if err != nil {
			return err
		}
		var snap router.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if snap.ReplicatedSessions >= sessions {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("sessions did not replicate within 10s (is the hot threshold wired?)")
}

func printResult(w io.Writer, label string, r result) {
	fmt.Fprintf(w,
		"icostload: %-9s rate=%-6.0f achieved=%-7.1f ok=%-6d err=%-4d 429=%-4d shed=%-4d p50=%s p95=%s p99=%s\n",
		label, r.OfferedRate, r.AchievedQPS, r.OK, r.Errors, r.Backpressure429, r.Shed,
		time.Duration(r.P50us)*time.Microsecond,
		time.Duration(r.P95us)*time.Microsecond,
		time.Duration(r.P99us)*time.Microsecond)
}
