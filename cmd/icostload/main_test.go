package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlagAudit pins the harness's flag surface, mirroring the icostd
// and icostfeed audits: every flag exists with the documented default
// and usage text, and nothing undocumented sneaks in.
func TestFlagAudit(t *testing.T) {
	fs := flag.NewFlagSet("icostload", flag.ContinueOnError)
	defineFlags(fs)
	want := map[string]struct {
		def   string
		usage string
	}{
		"target":          {"", "running icostd or router"},
		"rate":            {"300", "must be > 0"},
		"duration":        {"2s", "measurement window"},
		"bench":           {"bzip", "benchmark"},
		"trace-len":       {"12000", "trace length"},
		"sessions":        {"4", "shards"},
		"backends":        {"3", "shard count"},
		"shard-workers":   {"1", "workers"},
		"sweep":           {"", "saturation sweep"},
		"service":         {"4ms", "engine.exec"},
		"hedge-after":     {"15ms", "hedge"},
		"perturb":         {"router.forward:lat=30ms%0.05", "fault-injection"},
		"perturb-seed":    {"42", "seed"},
		"max-outstanding": {"512", "in-flight"},
		"json":            {"", "BENCH_shard.json"},
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		w, ok := want[f.Name]
		if !ok {
			t.Errorf("undocumented flag -%s (usage %q)", f.Name, f.Usage)
			return
		}
		if f.DefValue != w.def {
			t.Errorf("-%s default = %q, want %q", f.Name, f.DefValue, w.def)
		}
		if !strings.Contains(f.Usage, w.usage) {
			t.Errorf("-%s usage %q does not mention %q", f.Name, f.Usage, w.usage)
		}
	})
	for name := range want {
		if !got[name] {
			t.Errorf("expected flag -%s is not defined", name)
		}
	}
}

// TestRunBadFlags: invalid rates and sizes exit 2 with a message —
// in particular -rate must be strictly positive (a zero rate would
// hang the open loop forever, not "load gently").
func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-rate", "0"},
		{"-rate", "-50"},
		{"-duration", "0s"},
		{"-sessions", "0"},
		{"-backends", "0"},
		{"-shard-workers", "0"},
		{"-max-outstanding", "0"},
		{"-rate", "zap"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v exited %d, want 2", args, code)
		}
		if stderr.Len() == 0 {
			t.Errorf("args %v: no error printed", args)
		}
	}
}

// TestShardBenchGuard is the bench-shard no-regression guard wired
// into `make bench-shard` and CI: a short in-process run of the real
// benchmark protocol must show the routed cluster sustaining more
// warm-query throughput than the single shard, at a comparable p50.
// Everything is relative within one process, so machine speed never
// matters; the injected per-query service time makes worker capacity
// the saturation bound even on a single-core runner.
func TestShardBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}
	if raceEnabled {
		// Race-detector overhead swamps the injected service time on a
		// small runner, turning the topology comparison into a CPU
		// benchmark. CI runs this guard in its own non-race step.
		t.Skip("shard guard needs un-instrumented timing; run without -race")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	args := []string{
		"-bench", "bzip", "-trace-len", "4000", "-sessions", "4",
		"-backends", "3", "-shard-workers", "1",
		"-duration", "700ms",
		// 120 req/s sits at ~50% of one shard's 4ms-service capacity;
		// 420 req/s saturates the single shard (~250/s) but not the
		// 3-shard cluster (~750/s).
		"-rate", "120", "-sweep", "120,420", "-service", "4ms",
		"-hedge-after", "0", // skip the hedging phase; it has its own demo
		"-json", jsonPath,
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("benchmark run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, raw)
	}
	if len(rep.SingleNode) != 2 || len(rep.Cluster) != 2 {
		t.Fatalf("sweep shape: %d single, %d cluster runs", len(rep.SingleNode), len(rep.Cluster))
	}
	if rep.Repro == "" || !strings.Contains(rep.Repro, "-sweep 120,420") {
		t.Fatalf("report lacks a usable repro command: %q", rep.Repro)
	}

	// The regression bar: sharding must buy real throughput at the
	// saturating rate. The full benchmark shows >= 2x; this short run
	// keeps a deliberate margin below that so scheduler noise on a
	// loaded CI box cannot flake the guard while a genuine routing
	// regression (cluster <= single) still fails loudly.
	if rep.Speedup < 1.25 {
		t.Fatalf("cluster speedup %.2fx < 1.25x floor\nsingle: %+v\ncluster: %+v",
			rep.Speedup, rep.SingleNode, rep.Cluster)
	}
	// At the comfortable rate the router's extra hop must not distort
	// median latency beyond small change: p50 within 3x + 2ms of the
	// direct path (both are dominated by the injected 4ms service).
	sp50, cp50 := rep.SingleNode[0].P50us, rep.Cluster[0].P50us
	if cp50 > 3*sp50+2000 {
		t.Fatalf("routed p50 %dus vs direct %dus — router hop out of bounds", cp50, sp50)
	}
	// The unsaturated run must actually achieve its offered rate on
	// both topologies (open loop sanity).
	for _, r := range []result{rep.SingleNode[0], rep.Cluster[0]} {
		if r.AchievedQPS < 0.7*r.OfferedRate {
			t.Fatalf("unsaturated run fell short of offered rate: %+v", r)
		}
	}
}
