//go:build race

package main

// raceEnabled reports whether this test binary was built with the race
// detector. The shard bench guard skips under -race: detector overhead
// on a small runner swamps the injected per-query service time, so the
// sweep would measure instrumentation cost instead of topology. The
// guard has its own dedicated non-race step in `make ci` and CI.
const raceEnabled = true
