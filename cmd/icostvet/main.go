// Command icostvet is the repo's static-analysis driver: a
// multichecker over the internal/lint suite, enforcing the invariants
// the concurrent engine and the dependence-graph kernels rely on but
// `go vet` cannot see — context propagation into the graph walks
// (ctxflow), sync.Pool Get/Put balance (poolbalance), exhaustiveness
// over the Table 2/3 node- and edge-kind enums (edgeswitch),
// metrics-struct vs /metrics agreement (metricreg), and goroutine
// cancellability (gocheck).
//
// Usage:
//
//	icostvet [-list] [-only a,b] [-skip a,b] [-dir path] [packages...]
//
// Packages default to ./... relative to -dir (default "."). Each
// finding prints as file:line:col: analyzer: message, and any finding
// makes the exit status 1 — `make lint` wires this into CI.
// Deliberate exceptions are annotated in the source with
// `//lint:ignore <analyzer> <reason>` (see package lint).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"icost/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icostvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list  = fs.Bool("list", false, "list the analyzers and exit")
		only  = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip  = fs.String("skip", "", "comma-separated analyzers to skip")
		dir   = fs.String("dir", ".", "module directory to analyze from")
		plain = fs.Bool("plain", false, "treat each argument as a bare directory of Go files instead of a package pattern")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "icostvet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var pkgs []*lint.Package
	if *plain {
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "icostvet: -plain needs at least one directory")
			return 2
		}
		for _, d := range fs.Args() {
			pkg, err := lint.LoadDir(d)
			if err != nil {
				fmt.Fprintln(stderr, "icostvet:", err)
				return 3
			}
			pkgs = append(pkgs, pkg)
		}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = lint.Load(*dir, patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "icostvet:", err)
			return 3
		}
	}

	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "icostvet:", err)
		return 3
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "icostvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers applies the -only/-skip filters.
func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	analyzers := lint.All()
	if only != "" {
		var picked []*lint.Analyzer
		for _, name := range strings.Split(only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}
	if skip != "" {
		drop := map[string]bool{}
		for _, name := range strings.Split(skip, ",") {
			name = strings.TrimSpace(name)
			if lint.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			drop[name] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return analyzers, nil
}
