// Command icostvet is the repo's static-analysis driver: a
// multichecker over the internal/lint suite, enforcing the invariants
// the concurrent engine and the dependence-graph kernels rely on but
// `go vet` cannot see — context propagation into the graph walks
// (ctxflow), sync.Pool Get/Put balance (poolbalance), exhaustiveness
// over the Table 2/3 node- and edge-kind enums (edgeswitch),
// metrics-struct vs /metrics agreement (metricreg), goroutine
// cancellability (gocheck), mutex acquisition order (lockorder),
// sync/atomic field hygiene (atomichygiene), lockstep CSR column
// updates (colsync), codec version coverage (codecver), and
// heap-allocation budgets on //lint:hotpath functions (hotalloc).
//
// Usage:
//
//	icostvet [-list] [-only a,b] [-skip a,b] [-dir path] [-json] [-gha] [packages...]
//
// Packages default to ./... relative to -dir (default "."). Each
// finding prints as file:line:col: analyzer: message, and any
// unsuppressed finding makes the exit status 1 — `make lint` wires
// this into CI. -json replaces the plain lines with a stable
// machine-readable report that also includes suppressed findings
// (suppression state is part of the schema); -gha additionally emits
// GitHub Actions `::error file=...` workflow annotations. Deliberate
// exceptions are annotated in the source with
// `//lint:ignore <analyzer> <reason>` (see package lint).
//
// hotalloc shells out to `go build -gcflags=-m`; when the toolchain
// does not produce parseable escape output the analyzer is skipped
// with a notice instead of silently passing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"icost/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the stable -json schema for one finding.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// jsonReport is the stable -json top-level schema.
type jsonReport struct {
	// Count is the number of unsuppressed findings — the number that
	// decides the exit status.
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icostvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list   = fs.Bool("list", false, "list the analyzers and exit")
		only   = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip   = fs.String("skip", "", "comma-separated analyzers to skip")
		dir    = fs.String("dir", ".", "module directory to analyze from")
		plain  = fs.Bool("plain", false, "treat each argument as a bare directory of Go files instead of a package pattern")
		asJSON = fs.Bool("json", false, "emit findings as a JSON report (includes suppressed findings)")
		gha    = fs.Bool("gha", false, "emit GitHub Actions ::error annotations for unsuppressed findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "icostvet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers = gateHotAlloc(analyzers, stderr)

	var pkgs []*lint.Package
	if *plain {
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "icostvet: -plain needs at least one directory")
			return 2
		}
		for _, d := range fs.Args() {
			pkg, err := lint.LoadDir(d)
			if err != nil {
				fmt.Fprintln(stderr, "icostvet:", err)
				return 3
			}
			pkgs = append(pkgs, pkg)
		}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = lint.Load(*dir, patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "icostvet:", err)
			return 3
		}
	}

	all, err := lint.RunAll(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "icostvet:", err)
		return 3
	}
	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}

	count := 0
	for _, f := range all {
		if !f.Suppressed {
			count++
		}
	}

	if *asJSON {
		report := jsonReport{Count: count, Findings: []jsonFinding{}}
		for _, f := range all {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer:   f.Analyzer,
				File:       relName(f.Pos.Filename),
				Line:       f.Pos.Line,
				Col:        f.Pos.Column,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "icostvet:", err)
			return 3
		}
	} else {
		for _, f := range all {
			if f.Suppressed {
				continue
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relName(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if *gha {
		// With -json on stdout the annotations go to stderr; the
		// Actions runner scans both streams for workflow commands.
		out := stdout
		if *asJSON {
			out = stderr
		}
		for _, f := range all {
			if f.Suppressed {
				continue
			}
			fmt.Fprintf(out, "::error file=%s,line=%d,col=%d::%s: %s\n",
				relName(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, ghaEscape(f.Message))
		}
	}
	if count > 0 {
		fmt.Fprintf(stderr, "icostvet: %d finding(s)\n", count)
		return 1
	}
	return 0
}

// ghaEscape encodes the characters the Actions command parser treats
// specially in command data.
func ghaEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// gateHotAlloc drops hotalloc from the selection when the toolchain
// cannot back it, printing a notice so the skip is never silent.
func gateHotAlloc(analyzers []*lint.Analyzer, stderr io.Writer) []*lint.Analyzer {
	for i, a := range analyzers {
		if a != lint.HotAlloc {
			continue
		}
		if lint.HotAllocSupported() {
			return analyzers
		}
		fmt.Fprintln(stderr, "icostvet: notice: skipping hotalloc (toolchain does not expose parseable -gcflags=-m escape output)")
		return append(append([]*lint.Analyzer{}, analyzers[:i]...), analyzers[i+1:]...)
	}
	return analyzers
}

// selectAnalyzers applies the -only/-skip filters.
func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	analyzers := lint.All()
	if only != "" {
		var picked []*lint.Analyzer
		for _, name := range strings.Split(only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}
	if skip != "" {
		drop := map[string]bool{}
		for _, name := range strings.Split(skip, ",") {
			name = strings.TrimSpace(name)
			if lint.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			drop[name] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return analyzers, nil
}
