package main

import (
	"encoding/json"
	"strings"
	"testing"

	"icost/internal/lint"
)

// The gate CI relies on: the repo's own tree must be clean under the
// full suite. Any unsuppressed finding in the real packages makes
// this test (and `make lint`) fail.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var out, errs strings.Builder
	if code := run([]string{"-dir", "../..", "./..."}, &out, &errs); code != 0 {
		t.Fatalf("icostvet on the repo exited %d:\n%s%s", code, out.String(), errs.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected findings:\n%s", out.String())
	}
}

// The opposite gate: on a tree seeded with violations (the analyzer
// testdata), the driver must exit non-zero and print findings — this
// is what proves CI would catch a regression.
func TestSeededViolationsFail(t *testing.T) {
	var out, errs strings.Builder
	code := run([]string{"-plain",
		"../../internal/lint/testdata/src/poolbalance",
		"../../internal/lint/testdata/src/edgeswitch",
	}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s%s", code, out.String(), errs.String())
	}
	for _, want := range []string{"poolbalance:", "edgeswitch:", "never released", "not exhaustive"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errs.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary: %s", errs.String())
	}
}

func TestListAndFilters(t *testing.T) {
	var out, errs strings.Builder
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"ctxflow", "edgeswitch", "gocheck", "metricreg", "poolbalance",
		"atomichygiene", "codecver", "colsync", "hotalloc", "lockorder",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"-only", "gocheck", "-list"}, &out, &errs); code != 0 {
		t.Fatal("filtered -list failed")
	}
	if strings.Contains(out.String(), "poolbalance") || !strings.Contains(out.String(), "gocheck") {
		t.Errorf("-only gocheck listed: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-skip", "gocheck", "-list"}, &out, &errs); code != 0 {
		t.Fatal("filtered -list failed")
	}
	if strings.Contains(out.String(), "gocheck") {
		t.Errorf("-skip gocheck still listed: %s", out.String())
	}

	if code := run([]string{"-only", "nosuch"}, &out, &errs); code != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", code)
	}
	if code := run([]string{"-plain"}, &out, &errs); code != 2 {
		t.Errorf("-plain without dirs exited %d, want 2", code)
	}
}

// One driver test per second-wave analyzer: a seeded violation of
// each must make the driver (and therefore `make lint`) exit
// non-zero. The hotalloc case is the acceptance check that a
// deliberately introduced heap allocation in a //lint:hotpath
// function fails the lint gate.
func TestSeededSecondWaveViolationsFail(t *testing.T) {
	cases := []struct{ analyzer, dir, want string }{
		{"lockorder", "../../internal/lint/testdata/src/lockorder", "inconsistent lock order"},
		{"atomichygiene", "../../internal/lint/testdata/src/atomichygiene", "races with it"},
		{"colsync", "../../internal/lint/testdata/src/colsync", "lockstep column"},
		{"codecver", "../../internal/lint/testdata/src/codecver", "does not dispatch version"},
		{"hotalloc", "../../internal/lint/testdata/src/hotalloc", "heap-allocation site"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			if tc.analyzer == "hotalloc" && !lint.HotAllocSupported() {
				t.Skip("toolchain does not expose parseable -gcflags=-m escape output")
			}
			var out, errs strings.Builder
			code := run([]string{"-plain", "-only", tc.analyzer, tc.dir}, &out, &errs)
			if code != 1 {
				t.Fatalf("exit = %d, want 1:\n%s%s", code, out.String(), errs.String())
			}
			for _, want := range []string{tc.analyzer + ":", tc.want} {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

// The -json report: stable schema, suppressed findings included with
// their state, count restricted to the unsuppressed ones.
func TestJSONReport(t *testing.T) {
	var out, errs strings.Builder
	code := run([]string{"-json", "-plain", "-only", "codecver",
		"../../internal/lint/testdata/src/codecver",
	}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s%s", code, out.String(), errs.String())
	}
	var report struct {
		Count    int `json:"count"`
		Findings []struct {
			Analyzer   string `json:"analyzer"`
			File       string `json:"file"`
			Line       int    `json:"line"`
			Col        int    `json:"col"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if report.Count == 0 {
		t.Fatal("count = 0, want seeded findings")
	}
	unsuppressed, suppressed := 0, 0
	for _, f := range report.Findings {
		if f.Analyzer != "codecver" || f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Errorf("malformed finding: %+v", f)
		}
		if f.Suppressed {
			suppressed++
		} else {
			unsuppressed++
		}
	}
	if unsuppressed != report.Count {
		t.Errorf("count = %d but %d unsuppressed findings", report.Count, unsuppressed)
	}
	if suppressed == 0 {
		t.Error("no suppressed findings in report; the testdata seeds one")
	}
}

// -gha emits workflow annotations for unsuppressed findings; with
// -json they move to stderr so stdout stays pure JSON.
func TestGHAAnnotations(t *testing.T) {
	var out, errs strings.Builder
	code := run([]string{"-gha", "-plain", "-only", "lockorder",
		"../../internal/lint/testdata/src/lockorder",
	}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s%s", code, out.String(), errs.String())
	}
	if !strings.Contains(out.String(), "::error file=") || !strings.Contains(out.String(), "lockorder:") {
		t.Errorf("missing ::error annotation:\n%s", out.String())
	}

	out.Reset()
	errs.Reset()
	code = run([]string{"-json", "-gha", "-plain", "-only", "lockorder",
		"../../internal/lint/testdata/src/lockorder",
	}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s%s", code, out.String(), errs.String())
	}
	if strings.Contains(out.String(), "::error") {
		t.Errorf("::error leaked into the JSON stream:\n%s", out.String())
	}
	if !strings.Contains(errs.String(), "::error file=") {
		t.Errorf("stderr missing ::error annotations:\n%s", errs.String())
	}
}

// A filtered run over a seeded directory only applies the selected
// analyzers.
func TestOnlyFilterScopesFindings(t *testing.T) {
	var out, errs strings.Builder
	code := run([]string{"-plain", "-only", "edgeswitch",
		"../../internal/lint/testdata/src/poolbalance",
	}, &out, &errs)
	if code != 0 {
		t.Fatalf("edgeswitch-only run over poolbalance testdata exited %d:\n%s", code, out.String())
	}
}
