package main

import (
	"strings"
	"testing"
)

// The gate CI relies on: the repo's own tree must be clean under the
// full suite. Any unsuppressed finding in the real packages makes
// this test (and `make lint`) fail.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var out, errs strings.Builder
	if code := run([]string{"-dir", "../..", "./..."}, &out, &errs); code != 0 {
		t.Fatalf("icostvet on the repo exited %d:\n%s%s", code, out.String(), errs.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected findings:\n%s", out.String())
	}
}

// The opposite gate: on a tree seeded with violations (the analyzer
// testdata), the driver must exit non-zero and print findings — this
// is what proves CI would catch a regression.
func TestSeededViolationsFail(t *testing.T) {
	var out, errs strings.Builder
	code := run([]string{"-plain",
		"../../internal/lint/testdata/src/poolbalance",
		"../../internal/lint/testdata/src/edgeswitch",
	}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s%s", code, out.String(), errs.String())
	}
	for _, want := range []string{"poolbalance:", "edgeswitch:", "never released", "not exhaustive"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errs.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary: %s", errs.String())
	}
}

func TestListAndFilters(t *testing.T) {
	var out, errs strings.Builder
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"ctxflow", "edgeswitch", "gocheck", "metricreg", "poolbalance"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"-only", "gocheck", "-list"}, &out, &errs); code != 0 {
		t.Fatal("filtered -list failed")
	}
	if strings.Contains(out.String(), "poolbalance") || !strings.Contains(out.String(), "gocheck") {
		t.Errorf("-only gocheck listed: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-skip", "gocheck", "-list"}, &out, &errs); code != 0 {
		t.Fatal("filtered -list failed")
	}
	if strings.Contains(out.String(), "gocheck") {
		t.Errorf("-skip gocheck still listed: %s", out.String())
	}

	if code := run([]string{"-only", "nosuch"}, &out, &errs); code != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", code)
	}
	if code := run([]string{"-plain"}, &out, &errs); code != 2 {
		t.Errorf("-plain without dirs exited %d, want 2", code)
	}
}

// A filtered run over a seeded directory only applies the selected
// analyzers.
func TestOnlyFilterScopesFindings(t *testing.T) {
	var out, errs strings.Builder
	code := run([]string{"-plain", "-only", "edgeswitch",
		"../../internal/lint/testdata/src/poolbalance",
	}, &out, &errs)
	if code != 0 {
		t.Fatalf("edgeswitch-only run over poolbalance testdata exited %d:\n%s", code, out.String())
	}
}
