// Command paper regenerates the tables and figures of "Using
// Interaction Costs for Microarchitectural Bottleneck Analysis"
// (Fields, Bodík, Hill, Newburn; MICRO-36 2003) on the synthetic
// workload suite.
//
// Usage:
//
//	paper [-n insts] [-seed s] [-bench list] (-all | -table4a -fig3 ...)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"icost/internal/breakdown"
	"icost/internal/depgraph"
	"icost/internal/experiments"
	"icost/internal/isa"
	"icost/internal/ooo"
	"icost/internal/program"
	"icost/internal/report"
	"icost/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse flags, regenerate the
// requested experiments, and return the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paper", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int("n", 30000, "dynamic instructions per benchmark")
		seed    = fs.Uint64("seed", 42, "workload seed")
		benches = fs.String("bench", "", "comma-separated benchmark subset (default: per-experiment)")
		all     = fs.Bool("all", false, "run everything")
		t4a     = fs.Bool("table4a", false, "Table 4a: breakdown, 4-cycle dl1")
		t4b     = fs.Bool("table4b", false, "Table 4b: breakdown, 2-cycle issue-wakeup")
		t4c     = fs.Bool("table4c", false, "Table 4c: breakdown, 15-cycle mispredict loop")
		t7      = fs.Bool("table7", false, "Table 7: profiler accuracy validation")
		f1      = fs.Bool("fig1", false, "Figure 1: power-set breakdown + stacked bar")
		f2      = fs.Bool("fig2", false, "Figure 2: dependence-graph instance")
		f3      = fs.Bool("fig3", false, "Figure 3: window-size sensitivity")
		s42     = fs.Bool("sec42", false, "Section 4.2: wakeup-loop validation")
		sweep   = fs.Bool("seeds", false, "cross-seed robustness sweep of the Table 4a shapes")
		chars   = fs.Bool("workloads", false, "workload characterization table (functional rates)")
		asJSON  = fs.Bool("json", false, "emit results as one JSON document instead of text")
		htmlOut = fs.String("html", "", "write a self-contained HTML report to a file (implies the main tables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := experiments.DefaultConfig()
	cfg.TraceLen = *n
	cfg.Seed = *seed
	cfg.Benches = nil // per-experiment defaults unless -bench is given
	if *benches != "" {
		cfg.Benches = strings.Split(*benches, ",")
	}

	ran := false
	failed := false
	jsonOut := map[string]any{}
	exp := func(enabled bool, name string, f func() error) {
		if failed || (!enabled && !*all) {
			return
		}
		ran = true
		if !*asJSON {
			fmt.Fprintf(stdout, "== %s ==\n", name)
		}
		if err := f(); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			failed = true
			return
		}
		if !*asJSON {
			fmt.Fprintln(stdout)
		}
	}
	// collect stores an experiment's data for -json mode and reports
	// whether the caller should skip its text rendering.
	collect := func(key string, v any) bool {
		if *asJSON {
			jsonOut[key] = v
		}
		return *asJSON
	}

	jsonSink = collect
	exp(*f1, "Figure 1: parallelism-aware breakdown", func() error { return figure1(stdout, cfg) })
	exp(*f2, "Figure 2: dependence graph instance", func() error { return figure2(stdout) })
	exp(*t4a, "Table 4a: CPI breakdown, 4-cycle dl1 (focus dl1)", func() error {
		bds, err := experiments.Table4a(cfg)
		if err != nil {
			return err
		}
		if collect("table4a", bds) {
			return nil
		}
		fmt.Fprint(stdout, breakdown.Table(bds))
		return nil
	})
	exp(*t4b, "Table 4b: 2-cycle issue-wakeup loop (focus shalu)", func() error {
		bds, err := experiments.Table4b(cfg)
		if err != nil {
			return err
		}
		if collect("table4b", bds) {
			return nil
		}
		fmt.Fprint(stdout, breakdown.Table(bds))
		return nil
	})
	exp(*t4c, "Table 4c: 15-cycle mispredict loop (focus bmisp)", func() error {
		bds, err := experiments.Table4c(cfg)
		if err != nil {
			return err
		}
		if collect("table4c", bds) {
			return nil
		}
		fmt.Fprint(stdout, breakdown.Table(bds))
		return nil
	})
	exp(*f3, "Figure 3: window speedup vs dl1 latency", func() error { return figure3(stdout, cfg) })
	exp(*s42, "Section 4.2: window speedup vs wakeup loop", func() error { return sec42(stdout, cfg) })
	exp(*t7, "Table 7: profiler accuracy", func() error { return table7(stdout, cfg) })
	exp(*sweep, "Cross-seed robustness", func() error { return seedSweep(stdout, cfg) })
	exp(*chars, "Workload characterization", func() error {
		rows, err := experiments.Characterize(cfg)
		if err != nil {
			return err
		}
		if collect("workloads", rows) {
			return nil
		}
		fmt.Fprint(stdout, experiments.FormatCharacterization(rows))
		return nil
	})
	if failed {
		return 1
	}

	if *htmlOut != "" {
		ran = true
		if err := writeHTML(cfg, *htmlOut); err != nil {
			fmt.Fprintln(stderr, "html report:", err)
			return 1
		}
		fmt.Fprintf(stdout, "report written to %s\n", *htmlOut)
	}

	if !ran {
		fs.Usage()
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	return 0
}

// jsonSink carries the -json collector into the experiment helpers.
var jsonSink func(key string, v any) bool

// writeHTML regenerates the main tables and renders them as one HTML
// document.
func writeHTML(cfg experiments.Config, path string) error {
	chars, err := experiments.Characterize(cfg)
	if err != nil {
		return err
	}
	var tables []report.BreakdownTable
	for _, tb := range []struct {
		caption string
		f       func(experiments.Config) ([]*breakdown.Focused, error)
	}{
		{"Table 4a — 4-cycle level-one data cache (focus dl1)", experiments.Table4a},
		{"Table 4b — 2-cycle issue-wakeup loop (focus shalu)", experiments.Table4b},
		{"Table 4c — 15-cycle branch-misprediction loop (focus bmisp)", experiments.Table4c},
	} {
		bds, err := tb.f(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, report.BreakdownTable{Caption: tb.caption, Columns: bds})
	}
	f3, err := experiments.Figure3(cfg, "gap")
	if err != nil {
		return err
	}
	t7, err := experiments.Table7(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return report.Write(f, &report.Data{
		Generated:        time.Now(),
		Config:           cfg,
		Characterization: chars,
		Tables:           tables,
		Figure3:          f3,
		Table7:           t7,
	})
}

func figure1(w io.Writer, cfg experiments.Config) error {
	bench := "gcc"
	if len(cfg.Benches) > 0 {
		bench = cfg.Benches[0]
	}
	// Figure 1a: the traditional breakdown, which cannot account for
	// all cycles on an out-of-order machine.
	a, err := experiments.GraphAnalyzer(cfg, bench, experiments.Machine4a())
	if err != nil {
		return err
	}
	nv, err := breakdown.ComputeNaive(a, breakdown.BaseCategories(), bench)
	if err != nil {
		return err
	}
	// Figure 1b: the interaction-cost breakdown, which does account
	// for every cycle.
	full, err := experiments.Figure1(cfg, bench)
	if err != nil {
		return err
	}
	if err := full.CheckIdentity(); err != nil {
		return err
	}
	if jsonSink != nil && jsonSink("figure1", map[string]any{"naive": nv, "icost": full}) {
		return nil
	}
	fmt.Fprintln(w, "(a) traditional method:")
	fmt.Fprint(w, nv)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "(b) interaction-cost method:")
	fmt.Fprint(w, breakdown.StackedBar(full, 50))
	fmt.Fprintf(w, "identity: rows + ideal residual = %d cycles (total) ✓\n", full.TotalCycles)
	return nil
}

// figure2 renders an instance of the dependence-graph model on the
// paper's Figure 2 machine (4-entry ROB, 2-wide) over a short
// hand-written snippet containing a cache-missing load.
func figure2(w io.Writer) error {
	b := program.NewBuilder()
	b.Label("top")
	b.Emit(isa.Inst{Op: isa.OpIntShort, Dst: 1, Src1: 16, Src2: 17}) // i0: r1 = r16+r17
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: 2, Src1: 1})                // i1: r2 = [r1]  (misses)
	b.Emit(isa.Inst{Op: isa.OpIntShort, Dst: 3, Src1: 2, Src2: 2})   // i2: r3 = r2+r2
	b.Emit(isa.Inst{Op: isa.OpIntShort, Dst: 4, Src1: 16, Src2: 18}) // i3: independent
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: 3, Src2: 1})              // i4: [r1] = r3
	b.Emit(isa.Inst{Op: isa.OpIntShort, Dst: 5, Src1: 4, Src2: 16})  // i5
	b.Emit(isa.Inst{Op: isa.OpIntShort, Dst: 6, Src1: 5, Src2: 16})  // i6
	b.BranchToLabel(isa.OpJump, isa.NoReg, isa.NoReg, "top")         // loop for warmup
	prog, err := b.Build()
	if err != nil {
		return err
	}
	// Two iterations of the snippet; the first warms the icache so
	// the displayed instance shows steady-state edges. The load's
	// address changes between iterations so it misses both times.
	var insts []trace.DynInst
	for iter := 0; iter < 2; iter++ {
		for i := 0; i < prog.Len(); i++ {
			d := trace.DynInst{SIdx: int32(i), Target: prog.PCOf(i) + isa.InstBytes}
			if prog.At(i).Op == isa.OpJump {
				d.Taken = true
				d.Target = prog.PCOf(0)
			}
			if prog.At(i).Op.IsMem() {
				// Cold addresses: the load misses to memory.
				d.Addr = 0x10000000 + isa.Addr(iter)<<20 + isa.Addr(i*8)
			}
			insts = append(insts, d)
		}
	}
	tr := &trace.Trace{Prog: prog, Insts: insts[:2*prog.Len()-1], Name: "figure2"}

	mc := ooo.DefaultConfig()
	mc.Graph.Window = 4
	mc.Graph.FetchBW = 2
	mc.Graph.CommitBW = 2
	res, err := ooo.Simulate(tr, mc, ooo.Options{KeepGraph: true, Warmup: prog.Len()})
	if err != nil {
		return err
	}
	g := res.Graph
	ts := res.Times
	fmt.Fprintln(w, "machine: 4-entry ROB, 2-wide fetch/commit (paper Figure 2)")
	for i := 0; i < g.Len(); i++ {
		fmt.Fprintf(w, "i%d %-22v D=%-3d R=%-3d E=%-3d P=%-4d C=%-4d\n",
			i, prog.At(int(g.Info[i].SIdx)), ts.D[i], ts.R[i], ts.E[i], ts.P[i], ts.C[i])
		for _, e := range g.InEdges(i, depgraph.Ideal{}) {
			fmt.Fprintf(w, "    %v\n", e)
		}
	}
	fmt.Fprintln(w, "\ncritical path:")
	for _, e := range g.CriticalPath(depgraph.Ideal{}) {
		fmt.Fprintf(w, "  %v\n", e)
	}
	return nil
}

func figure3(w io.Writer, cfg experiments.Config) error {
	bench := "gap"
	if len(cfg.Benches) > 0 {
		bench = cfg.Benches[0]
	}
	pts, err := experiments.Figure3(cfg, bench)
	if err != nil {
		return err
	}
	if jsonSink != nil && jsonSink("figure3", pts) {
		return nil
	}
	fmt.Fprintf(w, "benchmark %s: speedup over 64-entry window\n", bench)
	for _, p := range pts {
		fmt.Fprintf(w, "  dl1=%d window=%-4d cycles=%-9d speedup=%5.1f%%\n",
			p.DL1, p.Window, p.Cycles, p.SpeedupPct)
	}
	return nil
}

func sec42(w io.Writer, cfg experiments.Config) error {
	bench := "gap"
	if len(cfg.Benches) > 0 {
		bench = cfg.Benches[0]
	}
	rows, err := experiments.Sec42(cfg, bench)
	if err != nil {
		return err
	}
	if jsonSink != nil && jsonSink("sec42", rows) {
		return nil
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %s: wakeup=%d cycles: window 64->128 speedup %5.1f%%\n",
			bench, r.WakeupCycles, r.SpeedupPct)
	}
	return nil
}

func seedSweep(w io.Writer, cfg experiments.Config) error {
	bench := "gzip"
	if len(cfg.Benches) > 0 {
		bench = cfg.Benches[0]
	}
	sw, err := experiments.RunSeedSweep(cfg, bench, experiments.Machine4a(),
		[]uint64{1, 2, 3, 4, 5})
	if err != nil {
		return err
	}
	if jsonSink != nil && jsonSink("seeds", sw) {
		return nil
	}
	fmt.Fprint(w, sw)
	stable, flipped := sw.StableSigns()
	fmt.Fprintf(w, "sign-stable interactions: %d of %d", len(stable), len(stable)+len(flipped))
	if len(flipped) > 0 {
		fmt.Fprintf(w, " (flipping: %v)", flipped)
	}
	fmt.Fprintln(w)
	return nil
}

func table7(w io.Writer, cfg experiments.Config) error {
	rows, err := experiments.Table7(cfg)
	if err != nil {
		return err
	}
	if jsonSink != nil && jsonSink("table7", rows) {
		return nil
	}
	fmt.Fprint(w, experiments.FormatTable7(rows))
	return nil
}
