package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-nope"}},
		{"non-numeric n", []string{"-n", "lots", "-fig2"}},
		{"no experiment selected", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2", code)
			}
			if stderr.Len() == 0 {
				t.Fatal("no usage/diagnostic on stderr")
			}
		})
	}
}

func TestUnknownBenchmarkFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "nosuch", "-n", "1500", "-table4a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "nosuch") {
		t.Fatalf("benchmark not named in error: %q", stderr.String())
	}
}

func TestFigure2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fig2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "critical path:") || !strings.Contains(out, "4-entry ROB") {
		t.Fatalf("unexpected output: %q", out)
	}
}

func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig3", "-bench", "gap", "-n", "1500", "-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, stdout.String())
	}
	if _, ok := doc["figure3"]; !ok {
		t.Fatalf("figure3 key missing: %v", doc)
	}
}
