// Command shotgun profiles a benchmark with the paper's shotgun
// profiler (Section 5) and, with -validate, compares the estimate
// against full-graph analysis and idealized re-simulation (the
// Table 7 methodology).
//
// Usage:
//
//	shotgun [-bench name] [-n insts] [-warmup insts] [-seed s]
//	        [-fragments k] [-siglen l] [-detail d] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/experiments"
	"icost/internal/multisim"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "gcc", "benchmark name")
		n         = flag.Int("n", 40000, "measured instructions")
		warmup    = flag.Int("warmup", 30000, "warmup instructions")
		seed      = flag.Uint64("seed", 42, "workload seed")
		fragments = flag.Int("fragments", 40, "fragments to reconstruct")
		siglen    = flag.Int("siglen", 1000, "signature sample length")
		detail    = flag.Int("detail", 3, "instructions between detailed samples")
		validate  = flag.Bool("validate", false, "compare against fullgraph and multisim")
		saveS     = flag.String("savesamples", "", "write the collected samples to a file (a PMU dump)")
		loadS     = flag.String("loadsamples", "", "analyze samples from a file instead of collecting")
	)
	flag.Parse()

	w, err := workload.New(*bench, *seed)
	if err != nil {
		fail(err)
	}
	tr, err := w.Execute(*warmup+*n, *seed+1)
	if err != nil {
		fail(err)
	}
	mc := experiments.Machine4a()
	res, err := ooo.Simulate(tr, mc, ooo.Options{KeepGraph: true, Warmup: *warmup})
	if err != nil {
		fail(err)
	}

	pcfg := profiler.DefaultConfig()
	pcfg.Fragments = *fragments
	pcfg.SigLen = *siglen
	pcfg.DetailInterval = *detail
	cats := breakdown.BaseCategories()

	var samples *profiler.Samples
	if *loadS != "" {
		f, err := os.Open(*loadS)
		if err != nil {
			fail(err)
		}
		samples, err = profiler.ReadSamples(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		var err error
		samples, err = profiler.Collect(tr, res.Graph, *warmup, pcfg)
		if err != nil {
			fail(err)
		}
	}
	if *saveS != "" {
		f, err := os.Create(*saveS)
		if err != nil {
			fail(err)
		}
		if err := profiler.WriteSamples(f, samples); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("samples written to %s\n", *saveS)
	}
	p, err := profiler.New(w.Prog, mc.Graph, samples, pcfg)
	if err != nil {
		fail(err)
	}
	est, err := p.Analyze(cats[0], cats)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d fragments (%d attempts, %d aborted), %.1f%% instructions matched\n",
		*bench, est.Fragments, est.Attempts, p.Aborted, est.MatchedFrac*100)

	if !*validate {
		fmt.Println("category   profiler%  ±stderr")
		for _, c := range cats {
			fmt.Printf("%9s  %8.1f  %7.2f\n", c.Name, est.Pct[c.Name], est.StdErr[c.Name])
		}
		for _, c := range cats[1:] {
			k := "dl1+" + c.Name
			fmt.Printf("%9s  %8.1f  %7.2f\n", k, est.Pct[k], est.StdErr[k])
		}
		return
	}

	// Validation columns: fullgraph and multisim on the same trace.
	ga := cost.New(res.Graph)
	ms, err := multisim.New(tr, mc, *warmup)
	if err != nil {
		fail(err)
	}
	pct := func(a *cost.Analyzer, cy int64) float64 {
		return 100 * float64(cy) / float64(a.BaseTime())
	}
	fmt.Println("category    multisim  fullgraph   profiler")
	row := func(label string, msV, gaV float64) {
		fmt.Printf("%-11s %8.1f  %9.1f  %9.1f\n", label, msV, gaV, est.Pct[label])
	}
	for _, c := range cats {
		row(c.Name, pct(ms, ms.Cost(c.Flags)), pct(ga, ga.Cost(c.Flags)))
	}
	for _, c := range cats[1:] {
		row("dl1+"+c.Name,
			pct(ms, ms.MustICost(cats[0].Flags, c.Flags)),
			pct(ga, ga.MustICost(cats[0].Flags, c.Flags)))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "shotgun:", err)
	os.Exit(1)
}
