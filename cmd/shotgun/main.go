// Command shotgun profiles a benchmark with the paper's shotgun
// profiler (Section 5) and, with -validate, compares the estimate
// against full-graph analysis and idealized re-simulation (the
// Table 7 methodology).
//
// Usage:
//
//	shotgun [-bench name] [-n insts] [-warmup insts] [-seed s]
//	        [-fragments k] [-siglen l] [-detail d] [-validate]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/experiments"
	"icost/internal/multisim"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse flags, profile, print, and
// return the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shotgun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", "gcc", "benchmark name")
		n         = fs.Int("n", 40000, "measured instructions")
		warmup    = fs.Int("warmup", 30000, "warmup instructions")
		seed      = fs.Uint64("seed", 42, "workload seed")
		fragments = fs.Int("fragments", 40, "fragments to reconstruct")
		siglen    = fs.Int("siglen", 1000, "signature sample length")
		detail    = fs.Int("detail", 3, "instructions between detailed samples")
		validate  = fs.Bool("validate", false, "compare against fullgraph and multisim")
		saveS     = fs.String("savesamples", "", "write the collected samples to a file (a PMU dump)")
		loadS     = fs.String("loadsamples", "", "analyze samples from a file instead of collecting")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "shotgun:", err)
		return 1
	}
	if *fragments < 1 || *siglen < 1 || *detail < 1 {
		return fail(fmt.Errorf("-fragments, -siglen and -detail must be >= 1"))
	}

	w, err := workload.New(*bench, *seed)
	if err != nil {
		return fail(err)
	}
	tr, err := w.Execute(*warmup+*n, *seed+1)
	if err != nil {
		return fail(err)
	}
	mc := experiments.Machine4a()
	res, err := ooo.Simulate(tr, mc, ooo.Options{KeepGraph: true, Warmup: *warmup})
	if err != nil {
		return fail(err)
	}

	pcfg := profiler.DefaultConfig()
	pcfg.Fragments = *fragments
	pcfg.SigLen = *siglen
	pcfg.DetailInterval = *detail
	cats := breakdown.BaseCategories()

	var samples *profiler.Samples
	if *loadS != "" {
		f, err := os.Open(*loadS)
		if err != nil {
			return fail(err)
		}
		samples, err = profiler.ReadSamples(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	} else {
		var err error
		samples, err = profiler.Collect(tr, res.Graph, *warmup, pcfg)
		if err != nil {
			return fail(err)
		}
	}
	if *saveS != "" {
		f, err := os.Create(*saveS)
		if err != nil {
			return fail(err)
		}
		if err := profiler.WriteSamples(f, samples); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "samples written to %s\n", *saveS)
	}
	p, err := profiler.New(w.Prog, mc.Graph, samples, pcfg)
	if err != nil {
		return fail(err)
	}
	est, err := p.Analyze(cats[0], cats)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "%s: %d fragments (%d attempts, %d aborted), %.1f%% instructions matched\n",
		*bench, est.Fragments, est.Attempts, p.Aborted, est.MatchedFrac*100)

	if !*validate {
		fmt.Fprintln(stdout, "category   profiler%  ±stderr")
		for _, c := range cats {
			fmt.Fprintf(stdout, "%9s  %8.1f  %7.2f\n", c.Name, est.Pct[c.Name], est.StdErr[c.Name])
		}
		for _, c := range cats[1:] {
			k := "dl1+" + c.Name
			fmt.Fprintf(stdout, "%9s  %8.1f  %7.2f\n", k, est.Pct[k], est.StdErr[k])
		}
		return 0
	}

	// Validation columns: fullgraph and multisim on the same trace.
	ga := cost.New(res.Graph)
	ms, err := multisim.New(tr, mc, *warmup)
	if err != nil {
		return fail(err)
	}
	pct := func(a *cost.Analyzer, cy int64) float64 {
		return 100 * float64(cy) / float64(a.BaseTime())
	}
	fmt.Fprintln(stdout, "category    multisim  fullgraph   profiler")
	row := func(label string, msV, gaV float64) {
		fmt.Fprintf(stdout, "%-11s %8.1f  %9.1f  %9.1f\n", label, msV, gaV, est.Pct[label])
	}
	for _, c := range cats {
		row(c.Name, pct(ms, ms.Cost(c.Flags)), pct(ga, ga.Cost(c.Flags)))
	}
	for _, c := range cats[1:] {
		row("dl1+"+c.Name,
			pct(ms, ms.MustICost(cats[0].Flags, c.Flags)),
			pct(ga, ga.MustICost(cats[0].Flags, c.Flags)))
	}
	return 0
}
