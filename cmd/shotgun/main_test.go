package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-nope"}, 2},
		{"non-numeric fragments", []string{"-fragments", "lots"}, 2},
		{"zero fragments", []string{"-fragments", "0"}, 1},
		{"zero siglen", []string{"-siglen", "0"}, 1},
		{"unknown benchmark", []string{"-bench", "nosuch"}, 1},
		{"missing samples file", []string{"-loadsamples", "/nonexistent/s.bin",
			"-bench", "gcc", "-n", "2000", "-warmup", "1000"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr %q)", code, tc.code, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Fatal("no diagnostic on stderr")
			}
		})
	}
}

func TestSmallProfile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "gcc", "-n", "3000", "-warmup", "2000",
		"-fragments", "5", "-siglen", "200", "-detail", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "gcc:") || !strings.Contains(out, "profiler%") {
		t.Fatalf("unexpected output: %q", out)
	}
}
