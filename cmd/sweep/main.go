// Command sweep runs conventional sensitivity studies (paper
// Section 4.3) so their conclusions can be compared against
// interaction-cost analysis: it varies one or two machine parameters
// over ranges and reports execution time and speedup per point.
//
// Usage:
//
//	sweep [-bench name] [-n insts] [-warmup insts] [-seed s]
//	      [-windows 64,128,256] [-dl1s 1,2,4] [-wakeups 0,1] [-costs]
//	sweep -sensitivity [-cats dl1,dmiss,...] [-alphas 0,0.25,0.5,0.75,1]
//
// The default reproduces Figure 3: window sizes crossed with dl1
// latencies. With -costs, each point also keeps its dependence graph
// and prints the top per-category costs (one batched graph walk per
// point), showing how the bottleneck mix shifts across the sweep.
//
// With -sensitivity the machine sweep is replaced by a parametric one
// that needs no re-simulation: the baseline machine is simulated once,
// and per-category response curves (execution time vs the latency
// scale factor α) are evaluated on its dependence graph in one batched
// walk per category set — the graph-model counterpart of rebuilding
// the machine at every point.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/experiments"
	"icost/internal/ooo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse flags, sweep, print, and
// return the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench   = fs.String("bench", "gap", "benchmark name")
		n       = fs.Int("n", 30000, "measured instructions")
		warmup  = fs.Int("warmup", 30000, "warmup instructions")
		seed    = fs.Uint64("seed", 42, "workload seed")
		windows = fs.String("windows", "64,128,256", "window sizes")
		dl1s    = fs.String("dl1s", "1,4", "dl1 latencies")
		wakeups = fs.String("wakeups", "0", "extra issue-wakeup latencies")
		costs   = fs.Bool("costs", false, "print top per-category costs at each point (keeps the graph, batched evaluation)")
		sens    = fs.Bool("sensitivity", false, "print per-category sensitivity curves from one baseline graph instead of sweeping machines")
		catsArg = fs.String("cats", "", "sensitivity categories, comma-separated (default: all eight)")
		alphas  = fs.String("alphas", "0,0.25,0.5,0.75,1", "sensitivity α grid in [0,1]")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}

	if *sens {
		if err := runSensitivity(stdout, *bench, *n, *warmup, *seed, *catsArg, *alphas); err != nil {
			return fail(err)
		}
		return 0
	}

	ws, err := parseInts(*windows)
	if err != nil {
		return fail(err)
	}
	ds, err := parseInts(*dl1s)
	if err != nil {
		return fail(err)
	}
	ks, err := parseInts(*wakeups)
	if err != nil {
		return fail(err)
	}

	cfg := experiments.Config{TraceLen: *n, Warmup: *warmup, Seed: *seed}
	tr, err := experiments.LoadTrace(cfg, *bench)
	if err != nil {
		return fail(err)
	}

	cats := breakdown.BaseCategories()
	masks := make([]depgraph.Flags, 0, len(cats))
	for _, c := range cats {
		masks = append(masks, c.Flags)
	}

	fmt.Fprintf(stdout, "benchmark %s (%d instructions after %d warmup)\n", *bench, *n, *warmup)
	header := "dl1  wakeup  window  cycles     IPC    speedup-vs-first-window"
	if *costs {
		header += "  top costs"
	}
	fmt.Fprintln(stdout, header)
	for _, d := range ds {
		for _, k := range ks {
			var base int64
			for wi, w := range ws {
				mc := ooo.DefaultConfig().WithDL1Latency(d).WithWindow(w).WithWakeupExtra(k)
				res, err := ooo.Simulate(tr, mc, ooo.Options{Warmup: *warmup, KeepGraph: *costs})
				if err != nil {
					return fail(err)
				}
				if wi == 0 {
					base = res.Cycles
				}
				line := fmt.Sprintf("%3d  %6d  %6d  %-9d  %4.2f  %6.1f%%",
					d, k, w, res.Cycles, res.IPC(),
					100*(float64(base)/float64(res.Cycles)-1))
				if *costs {
					top, err := topCosts(res, cats, masks, 3)
					if err != nil {
						return fail(err)
					}
					line += "  " + top
				}
				fmt.Fprintln(stdout, line)
			}
		}
	}
	return 0
}

// topCosts analyzes a kept graph and renders the k largest
// per-category costs as "name pct%" pairs. All category masks are
// evaluated in one batched graph walk.
func topCosts(res *ooo.Result, cats []breakdown.Category, masks []depgraph.Flags, k int) (string, error) {
	a := cost.New(res.Graph)
	if err := a.PrewarmCtx(context.Background(), masks); err != nil {
		return "", err
	}
	type cv struct {
		name string
		pct  float64
	}
	rows := make([]cv, 0, len(cats))
	for _, c := range cats {
		rows = append(rows, cv{c.Name, 100 * float64(a.Cost(c.Flags)) / float64(a.BaseTime())})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pct > rows[j].pct })
	if k > len(rows) {
		k = len(rows)
	}
	var parts []string
	for _, r := range rows[:k] {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", r.name, r.pct))
	}
	return strings.Join(parts, ", "), nil
}

// runSensitivity simulates the baseline machine once and prints one
// response curve per category: execution time and recovered cost at
// every grid α, all evaluated on the baseline dependence graph.
func runSensitivity(stdout io.Writer, bench string, n, warmup int, seed uint64, catsArg, alphasArg string) error {
	names := depgraph.FlagNames()
	if catsArg != "" {
		names = nil
		for _, c := range strings.Split(catsArg, ",") {
			c = strings.TrimSpace(c)
			if _, ok := depgraph.FlagByName(c); !ok {
				return fmt.Errorf("unknown category %q (have %s)", c, strings.Join(depgraph.FlagNames(), ","))
			}
			names = append(names, c)
		}
	}
	var grid []depgraph.Alpha
	for _, f := range strings.Split(alphasArg, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("bad alpha list %q: %w", alphasArg, err)
		}
		if x < 0 || x > 1 {
			return fmt.Errorf("alpha %v outside [0,1]", x)
		}
		grid = append(grid, depgraph.AlphaOf(x))
	}

	cfg := experiments.Config{TraceLen: n, Warmup: warmup, Seed: seed}
	tr, err := experiments.LoadTrace(cfg, bench)
	if err != nil {
		return err
	}
	res, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{Warmup: warmup, KeepGraph: true})
	if err != nil {
		return err
	}
	a := cost.New(res.Graph)
	cats := make([]depgraph.Flags, len(names))
	for i, c := range names {
		cats[i], _ = depgraph.FlagByName(c)
	}
	curves, err := a.SensitivityCtx(context.Background(), cats, grid)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "benchmark %s (%d instructions after %d warmup), base %d cycles\n",
		bench, n, warmup, a.BaseTime())
	fmt.Fprintln(stdout, "category  alpha  cycles     cost     cost%")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Fprintf(stdout, "%-8s  %5.2f  %-9d  %-7d  %5.1f%%\n",
				c.Name, p.Alpha, p.Time, p.Cost, 100*float64(p.Cost)/float64(a.BaseTime()))
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
