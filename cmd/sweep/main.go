// Command sweep runs conventional sensitivity studies (paper
// Section 4.3) so their conclusions can be compared against
// interaction-cost analysis: it varies one or two machine parameters
// over ranges and reports execution time and speedup per point.
//
// Usage:
//
//	sweep [-bench name] [-n insts] [-warmup insts] [-seed s]
//	      [-windows 64,128,256] [-dl1s 1,2,4] [-wakeups 0,1]
//
// The default reproduces Figure 3: window sizes crossed with dl1
// latencies.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"icost/internal/experiments"
	"icost/internal/ooo"
)

func main() {
	var (
		bench   = flag.String("bench", "gap", "benchmark name")
		n       = flag.Int("n", 30000, "measured instructions")
		warmup  = flag.Int("warmup", 30000, "warmup instructions")
		seed    = flag.Uint64("seed", 42, "workload seed")
		windows = flag.String("windows", "64,128,256", "window sizes")
		dl1s    = flag.String("dl1s", "1,4", "dl1 latencies")
		wakeups = flag.String("wakeups", "0", "extra issue-wakeup latencies")
	)
	flag.Parse()

	cfg := experiments.Config{TraceLen: *n, Warmup: *warmup, Seed: *seed}
	tr, err := experiments.LoadTrace(cfg, *bench)
	if err != nil {
		fail(err)
	}

	ws := parseInts(*windows)
	ds := parseInts(*dl1s)
	ks := parseInts(*wakeups)
	fmt.Printf("benchmark %s (%d instructions after %d warmup)\n", *bench, *n, *warmup)
	fmt.Println("dl1  wakeup  window  cycles     IPC    speedup-vs-first-window")
	for _, d := range ds {
		for _, k := range ks {
			var base int64
			for wi, w := range ws {
				mc := ooo.DefaultConfig().WithDL1Latency(d).WithWindow(w).WithWakeupExtra(k)
				res, err := ooo.Simulate(tr, mc, ooo.Options{Warmup: *warmup})
				if err != nil {
					fail(err)
				}
				if wi == 0 {
					base = res.Cycles
				}
				fmt.Printf("%3d  %6d  %6d  %-9d  %4.2f  %6.1f%%\n",
					d, k, w, res.Cycles, res.IPC(),
					100*(float64(base)/float64(res.Cycles)-1))
			}
		}
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fail(fmt.Errorf("bad integer list %q: %w", s, err))
		}
		out = append(out, v)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
