// Command sweep runs conventional sensitivity studies (paper
// Section 4.3) so their conclusions can be compared against
// interaction-cost analysis: it varies one or two machine parameters
// over ranges and reports execution time and speedup per point.
//
// Usage:
//
//	sweep [-bench name] [-n insts] [-warmup insts] [-seed s]
//	      [-windows 64,128,256] [-dl1s 1,2,4] [-wakeups 0,1] [-costs]
//
// The default reproduces Figure 3: window sizes crossed with dl1
// latencies. With -costs, each point also keeps its dependence graph
// and prints the top per-category costs (one batched graph walk per
// point), showing how the bottleneck mix shifts across the sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/experiments"
	"icost/internal/ooo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse flags, sweep, print, and
// return the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench   = fs.String("bench", "gap", "benchmark name")
		n       = fs.Int("n", 30000, "measured instructions")
		warmup  = fs.Int("warmup", 30000, "warmup instructions")
		seed    = fs.Uint64("seed", 42, "workload seed")
		windows = fs.String("windows", "64,128,256", "window sizes")
		dl1s    = fs.String("dl1s", "1,4", "dl1 latencies")
		wakeups = fs.String("wakeups", "0", "extra issue-wakeup latencies")
		costs   = fs.Bool("costs", false, "print top per-category costs at each point (keeps the graph, batched evaluation)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}

	ws, err := parseInts(*windows)
	if err != nil {
		return fail(err)
	}
	ds, err := parseInts(*dl1s)
	if err != nil {
		return fail(err)
	}
	ks, err := parseInts(*wakeups)
	if err != nil {
		return fail(err)
	}

	cfg := experiments.Config{TraceLen: *n, Warmup: *warmup, Seed: *seed}
	tr, err := experiments.LoadTrace(cfg, *bench)
	if err != nil {
		return fail(err)
	}

	cats := breakdown.BaseCategories()
	masks := make([]depgraph.Flags, 0, len(cats))
	for _, c := range cats {
		masks = append(masks, c.Flags)
	}

	fmt.Fprintf(stdout, "benchmark %s (%d instructions after %d warmup)\n", *bench, *n, *warmup)
	header := "dl1  wakeup  window  cycles     IPC    speedup-vs-first-window"
	if *costs {
		header += "  top costs"
	}
	fmt.Fprintln(stdout, header)
	for _, d := range ds {
		for _, k := range ks {
			var base int64
			for wi, w := range ws {
				mc := ooo.DefaultConfig().WithDL1Latency(d).WithWindow(w).WithWakeupExtra(k)
				res, err := ooo.Simulate(tr, mc, ooo.Options{Warmup: *warmup, KeepGraph: *costs})
				if err != nil {
					return fail(err)
				}
				if wi == 0 {
					base = res.Cycles
				}
				line := fmt.Sprintf("%3d  %6d  %6d  %-9d  %4.2f  %6.1f%%",
					d, k, w, res.Cycles, res.IPC(),
					100*(float64(base)/float64(res.Cycles)-1))
				if *costs {
					top, err := topCosts(res, cats, masks, 3)
					if err != nil {
						return fail(err)
					}
					line += "  " + top
				}
				fmt.Fprintln(stdout, line)
			}
		}
	}
	return 0
}

// topCosts analyzes a kept graph and renders the k largest
// per-category costs as "name pct%" pairs. All category masks are
// evaluated in one batched graph walk.
func topCosts(res *ooo.Result, cats []breakdown.Category, masks []depgraph.Flags, k int) (string, error) {
	a := cost.New(res.Graph)
	if err := a.PrewarmCtx(context.Background(), masks); err != nil {
		return "", err
	}
	type cv struct {
		name string
		pct  float64
	}
	rows := make([]cv, 0, len(cats))
	for _, c := range cats {
		rows = append(rows, cv{c.Name, 100 * float64(a.Cost(c.Flags)) / float64(a.BaseTime())})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pct > rows[j].pct })
	if k > len(rows) {
		k = len(rows)
	}
	var parts []string
	for _, r := range rows[:k] {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", r.name, r.pct))
	}
	return strings.Join(parts, ", "), nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
