package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-nope"}, 2},
		{"non-numeric seed", []string{"-seed", "abc"}, 2},
		{"bad window list", []string{"-windows", "64,big"}, 1},
		{"bad dl1 list", []string{"-dl1s", ""}, 1},
		{"unknown benchmark", []string{"-bench", "nosuch", "-n", "1500", "-warmup", "800"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr %q)", code, tc.code, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Fatal("no diagnostic on stderr")
			}
		})
	}
}

func TestSmallSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "gzip", "-n", "1500", "-warmup", "800",
		"-windows", "32,64", "-dl1s", "2", "-wakeups", "0"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "benchmark gzip") {
		t.Fatalf("missing header: %q", out)
	}
	// One row per (dl1, wakeup, window) point plus two header lines.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 3 {
		t.Fatalf("want 4 lines (2 headers + 2 rows), got %d:\n%s", lines+1, out)
	}
}

func TestSensitivitySweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "gzip", "-n", "1500", "-warmup", "800",
		"-sensitivity", "-cats", "dmiss,bmisp", "-alphas", "0,0.5,1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "category") || !strings.Contains(out, "alpha") {
		t.Fatalf("missing curve header:\n%s", out)
	}
	// 2 categories x 3 grid points plus two header lines.
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 8 {
		t.Fatalf("want 8 lines, got %d:\n%s", lines, out)
	}
	// α=1 rows recover nothing by construction.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "1.00") && !strings.Contains(line, "  0.0%") {
			t.Fatalf("α=1 row with nonzero cost: %q", line)
		}
	}

	// Bad inputs surface as errors, not silent defaults.
	for _, args := range [][]string{
		{"-sensitivity", "-cats", "nosuch"},
		{"-sensitivity", "-alphas", "0,2"},
		{"-sensitivity", "-alphas", "0,x"},
	} {
		var so, se bytes.Buffer
		if code := run(append([]string{"-bench", "gzip", "-n", "1500", "-warmup", "800"}, args...), &so, &se); code != 1 {
			t.Fatalf("%v: exit %d, want 1", args, code)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 1, 2,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts("4,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestSweepCosts(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "gzip", "-n", "1500", "-warmup", "800",
		"-windows", "32,64", "-dl1s", "2", "-costs"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "top costs") {
		t.Fatalf("missing top-costs column header:\n%s", out)
	}
	// Every data row must carry three "name pct%" entries.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "%, ") {
			rows++
		}
	}
	if rows != 2 {
		t.Fatalf("%d rows with cost annotations, want 2:\n%s", rows, out)
	}
}
