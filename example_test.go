package icost_test

import (
	"fmt"

	"icost"
	"icost/internal/cache"
	"icost/internal/depgraph"
	"icost/internal/isa"
)

// The paper's headline example: two completely parallel cache misses
// each have zero cost, but a large positive interaction cost — only
// optimizing both recovers the cycles.
func Example() {
	// A wide machine so only dataflow constrains the two loads.
	cfg := depgraph.DefaultConfig()
	cfg.FetchBW, cfg.CommitBW, cfg.Window = 64, 64, 1024
	cfg.DispatchToReady, cfg.CompleteToCommit = 0, 0

	g := depgraph.New(cfg, 2)
	g.Info[0] = depgraph.InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem}
	g.Info[1] = depgraph.InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem}

	a := icost.NewAnalyzer(g)
	miss := func(i int) icost.Ideal {
		per := make([]icost.Flags, 2)
		per[i] = icost.IdealDMiss
		return icost.Ideal{PerInst: per}
	}
	fmt.Println("cost(miss 0):", a.CostSet(miss(0)))
	fmt.Println("cost(miss 1):", a.CostSet(miss(1)))
	ic := a.ICostSets(miss(0), miss(1))
	fmt.Println("icost:", ic, icost.Classify(ic, 0))
	// Output:
	// cost(miss 0): 0
	// cost(miss 1): 0
	// icost: 112 parallel
}

// Classify maps an interaction cost to the paper's three regimes.
func ExampleClassify() {
	fmt.Println(icost.Classify(-50, 10))
	fmt.Println(icost.Classify(3, 10))
	fmt.Println(icost.Classify(+50, 10))
	// Output:
	// serial
	// independent
	// parallel
}

// A whole-benchmark analysis: simulate, then ask for the cost of a
// perfect data cache and its interaction with the instruction window.
func ExampleNewAnalyzer() {
	tr, err := icost.LoadWorkload("mcf", 42, 20000)
	if err != nil {
		panic(err)
	}
	res, err := icost.Simulate(tr, icost.DefaultMachine(),
		icost.Options{KeepGraph: true, Warmup: 10000})
	if err != nil {
		panic(err)
	}
	a := icost.NewAnalyzer(res.Graph)
	ic, err := a.ICost(icost.IdealDMiss, icost.IdealWindow)
	if err != nil {
		panic(err)
	}
	// mcf's dependent misses leave little for the window to overlap:
	// the interaction is not parallel.
	fmt.Println(a.Cost(icost.IdealDMiss) > 0, icost.Classify(ic, a.BaseTime()/100) != icost.Parallel)
	// Output:
	// true true
}
