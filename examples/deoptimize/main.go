// De-optimization: the flip side of bottleneck analysis (paper
// Section 1: "events with cost zero may be good targets for
// de-optimization, e.g. making a queue smaller without affecting
// performance"). Two analyses:
//
//  1. Resource de-optimization by cost: a resource with ~zero cost is
//     a shrink candidate; the shrink is then *verified* by
//     re-simulation, because cost is asymmetric — it measures the
//     benefit of growing a resource, not the penalty of shrinking it,
//     so the check can (and sometimes does) veto the candidate.
//  2. Instruction de-optimization by slack: count instructions that
//     could run on slower (low-power) units without stretching the
//     critical path.
//
// Run with: go run ./examples/deoptimize [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/workload"
)

func main() {
	bench := "perl"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const (
		seed   = 42
		warmup = 20000
		n      = 30000
	)
	w, err := workload.New(bench, seed)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := w.Execute(warmup+n, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	mc := ooo.DefaultConfig()
	res, err := ooo.Simulate(tr, mc, ooo.Options{KeepGraph: true, Warmup: warmup})
	if err != nil {
		log.Fatal(err)
	}
	a := cost.New(res.Graph)
	fmt.Printf("%s: %d cycles (IPC %.2f) on the full-size machine\n\n",
		bench, res.Cycles, res.IPC())

	// --- 1. resource de-optimization by cost ---
	fmt.Println("resource costs (cheap resources are shrink candidates):")
	type probe struct {
		label  string
		flags  depgraph.Flags
		shrink func(ooo.Config) ooo.Config
		what   string
	}
	probes := []probe{
		{"win", depgraph.IdealWindow,
			func(c ooo.Config) ooo.Config { return c.WithWindow(c.Graph.Window / 2) },
			"halve the instruction window"},
		{"bw", depgraph.IdealBW,
			func(c ooo.Config) ooo.Config {
				c.Graph.FetchBW /= 2
				c.Graph.CommitBW /= 2
				return c
			},
			"halve fetch/commit width"},
	}
	for _, p := range probes {
		c := a.Cost(p.flags)
		pct := 100 * float64(c) / float64(a.BaseTime())
		fmt.Printf("  cost(%s) = %d cycles (%.1f%%)", p.label, c, pct)
		if pct >= 5 {
			fmt.Println("  -> load-bearing, keep it")
			continue
		}
		// Verify the shrink by re-simulation.
		small, err := ooo.Simulate(tr, p.shrink(mc), ooo.Options{Warmup: warmup})
		if err != nil {
			log.Fatal(err)
		}
		slow := 100 * (float64(small.Cycles)/float64(res.Cycles) - 1)
		fmt.Printf("  -> %s: %+.1f%% cycles\n", p.what, slow)
	}

	// --- 2. instruction de-optimization by slack ---
	slacks := res.Graph.Slacks(depgraph.Ideal{})
	const slowPenalty = 3 // extra cycles a low-power unit would add
	candidates := 0
	shortALU := 0
	for i, s := range slacks {
		if !res.Graph.Info[i].Op.IsShortALU() {
			continue
		}
		shortALU++
		if s >= slowPenalty {
			candidates++
		}
	}
	fmt.Printf("\nslack analysis: %d of %d one-cycle ALU ops (%.0f%%) have >= %d cycles\n",
		candidates, shortALU, 100*float64(candidates)/float64(shortALU), slowPenalty)
	fmt.Println("of slack — they could run on a slow, low-power ALU without costing a cycle")
}
