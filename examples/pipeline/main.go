// Pipeline tuning: the paper's Section 4 tutorial. A long pipeline
// stretches three critical loops — level-one data-cache access,
// issue-wakeup, and branch misprediction — and interaction costs tell
// the architect how to mitigate each one.
//
// For each stretched loop, the program prints the focused breakdown
// and reads off the mitigation: a *serial* (negative) interaction with
// a resource means improving that resource also hides the loop's
// latency; a *parallel* (positive) interaction means the loop must be
// attacked directly.
//
// Run with: go run ./examples/pipeline [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"icost/internal/breakdown"
	"icost/internal/experiments"
	"icost/internal/ooo"
)

func main() {
	bench := "gzip"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	cfg := experiments.DefaultConfig()
	cfg.TraceLen = 30000

	scenario(cfg, bench, "four-cycle level-one data cache (Section 4.1)",
		experiments.Machine4a(), "dl1")
	scenario(cfg, bench, "two-cycle issue-wakeup loop (Section 4.2)",
		experiments.Machine4b(), "shalu")
	scenario(cfg, bench, "15-cycle branch-misprediction loop (Section 4.2)",
		experiments.Machine4c(), "bmisp")
}

func scenario(cfg experiments.Config, bench, title string, mc ooo.Config, focusName string) {
	fmt.Printf("=== %s, benchmark %s ===\n", title, bench)
	a, err := experiments.GraphAnalyzer(cfg, bench, mc)
	if err != nil {
		log.Fatal(err)
	}
	cats := breakdown.BaseCategories()
	var focus breakdown.Category
	for _, c := range cats {
		if c.Name == focusName {
			focus = c
		}
	}
	bd, err := breakdown.Focus(a, focus, cats, bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(breakdown.Table([]*breakdown.Focused{bd}))

	// Interpret: the strongest serial partner is the mitigation.
	var bestLabel string
	var best float64
	for _, r := range bd.Pairs {
		if r.Percent < best {
			best = r.Percent
			bestLabel = r.Label
		}
	}
	if bestLabel != "" && best < -0.5 {
		fmt.Printf("-> strongest serial interaction: %s (%.1f%%): improving the partner\n",
			bestLabel, best)
		fmt.Printf("   resource also hides the %s loop's latency\n", focusName)
	} else {
		fmt.Printf("-> no significant serial partner: the %s loop must be attacked directly\n",
			focusName)
	}
	var worstLabel string
	var worst float64
	for _, r := range bd.Pairs {
		if r.Percent > worst {
			worst = r.Percent
			worstLabel = r.Label
		}
	}
	if worstLabel != "" && worst > 0.5 {
		fmt.Printf("-> strongest parallel interaction: %s (+%.1f%%): those cycles fall only\n",
			worstLabel, worst)
		fmt.Println("   to optimizing both together")
	}
	fmt.Println()
}
