// Prefetch advisor: use per-static-load costs and interaction costs
// to decide which loads a software prefetcher should target — the
// paper's canonical event-set grouping ("all cache misses from a
// single static load", Sections 1-2).
//
// The example simulates mcf (the memory-bound extreme of the suite),
// ranks static loads by the cost of their dynamic misses, then checks
// the pairwise interaction of the top loads: a serial interaction
// (negative icost) between two loads means prefetching both gains
// little over prefetching one, while a parallel interaction means the
// pair must be attacked together.
//
// Run with: go run ./examples/prefetch
package main

import (
	"fmt"
	"log"

	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/isa"
	"icost/internal/ooo"
	"icost/internal/workload"
)

func main() {
	const (
		seed   = 42
		warmup = 20000
		n      = 40000
	)
	w, err := workload.New("mcf", seed)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := w.Execute(warmup+n, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{KeepGraph: true, Warmup: warmup})
	if err != nil {
		log.Fatal(err)
	}
	g := res.Graph
	a := cost.New(g)
	fmt.Printf("mcf: %d instructions, %d cycles (IPC %.2f)\n", n, res.Cycles, res.IPC())
	fmt.Printf("cost of ALL data-cache misses: %d cycles (%.1f%%)\n\n",
		a.Cost(depgraph.IdealDMiss),
		100*float64(a.Cost(depgraph.IdealDMiss))/float64(a.BaseTime()))

	// Rank static loads by the cost of their dynamic misses.
	loads := cost.RankStaticLoadMisses(a, 5)
	if len(loads) > 6 {
		loads = loads[:6]
	}
	fmt.Println("top static loads by miss cost (prefetch candidates):")
	fmt.Println("  static PC   misses   cost(cycles)   cost(%)")
	for _, l := range loads {
		fmt.Printf("  %#08x   %6d   %12d   %6.2f%%\n",
			uint64(w.Prog.PCOf(int(l.SIdx))), l.Events, l.Cost,
			100*float64(l.Cost)/float64(a.BaseTime()))
	}

	// The paper's warning about zero costs: a load with many misses
	// and zero cost is NOT unimportant — its misses may be fully
	// parallel with another load's. Check the busiest zero-cost load
	// against the top-cost load.
	for _, l := range loads {
		if l.Cost != 0 || l.Events < 20 {
			continue
		}
		top := loads[0]
		icTop := a.ICostSets(cost.StaticLoadMisses(g, top.SIdx), cost.StaticLoadMisses(g, l.SIdx))
		// And against every *other* miss in the program: a strong
		// negative icost says its misses hide behind the rest.
		sIdx := l.SIdx
		others := cost.EventSet(g, depgraph.IdealDMiss, func(i int) bool {
			return g.Info[i].Op == isa.OpLoad && g.Info[i].SIdx != sIdx
		})
		icRest := a.ICostSets(cost.StaticLoadMisses(g, sIdx), others)
		fmt.Printf("\nload %#x: %d misses but ZERO cost\n", uint64(w.Prog.PCOf(int(sIdx))), l.Events)
		fmt.Printf("  icost with top load:        %+d (%v)\n", icTop, cost.Classify(icTop, a.BaseTime()/1000))
		fmt.Printf("  icost with all other misses: %+d (%v)\n", icRest, cost.Classify(icRest, a.BaseTime()/1000))
		break
	}

	if len(loads) < 2 {
		return
	}
	fmt.Println("\npairwise interactions among the top loads:")
	for i := 0; i < len(loads) && i < 3; i++ {
		for j := i + 1; j < len(loads) && j < 3; j++ {
			si, sj := loads[i].SIdx, loads[j].SIdx
			ic := a.ICostSets(cost.StaticLoadMisses(g, si), cost.StaticLoadMisses(g, sj))
			kind := cost.Classify(ic, a.BaseTime()/1000)
			fmt.Printf("  icost(%#x, %#x) = %+d cycles (%v)",
				uint64(w.Prog.PCOf(int(si))), uint64(w.Prog.PCOf(int(sj))), ic, kind)
			switch kind {
			case cost.Serial:
				fmt.Print("  -> prefetch one; the other rides along")
			case cost.Parallel:
				fmt.Print("  -> must prefetch both to win")
			default:
				fmt.Print("  -> independent; optimize separately")
			}
			fmt.Println()
		}
	}
}
