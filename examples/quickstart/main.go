// Quickstart: the paper's Section 2.2 motivating examples, built by
// hand on the dependence-graph model.
//
// Two *parallel* cache misses each have cost zero — idealizing either
// one alone leaves the critical path unchanged — yet idealizing both
// together removes the whole miss latency. Their interaction cost is
// large and positive. Two *dependent* misses running alongside ALU
// work show the opposite: each alone has a large cost, but the icost
// is negative (serial interaction), so optimizing both is not
// worthwhile.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"icost/internal/cache"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/isa"
)

// wideMachine: a machine so wide that only dataflow constrains the
// examples (pipeline constants zeroed for readability).
func wideMachine() depgraph.Config {
	cfg := depgraph.DefaultConfig()
	cfg.FetchBW = 64
	cfg.CommitBW = 64
	cfg.Window = 1024
	cfg.DispatchToReady = 0
	cfg.CompleteToCommit = 0
	return cfg
}

func main() {
	parallelMisses()
	serialMisses()
}

func parallelMisses() {
	fmt.Println("=== two parallel cache misses (Section 2.2) ===")
	g := depgraph.New(wideMachine(), 2)
	g.Info[0] = depgraph.InstInfo{Op: isa.OpLoad, SIdx: 0, DataLevel: cache.LevelMem}
	g.Info[1] = depgraph.InstInfo{Op: isa.OpLoad, SIdx: 1, DataLevel: cache.LevelMem}

	a := cost.New(g)
	miss := func(i int) depgraph.Ideal {
		return cost.EventSet(g, depgraph.IdealDMiss, func(j int) bool { return j == i })
	}
	c0 := a.CostSet(miss(0))
	c1 := a.CostSet(miss(1))
	ic := a.ICostSets(miss(0), miss(1))

	fmt.Printf("execution time:        %d cycles\n", a.BaseTime())
	fmt.Printf("cost(miss #1):         %d cycles   <- prefetching only this load gains nothing\n", c0)
	fmt.Printf("cost(miss #2):         %d cycles\n", c1)
	fmt.Printf("icost(miss1, miss2):   %+d cycles  -> %v interaction\n",
		ic, cost.Classify(ic, 0))
	fmt.Println("conclusion: only prefetching BOTH loads recovers the miss latency")
	fmt.Println()
}

func serialMisses() {
	fmt.Println("=== two dependent misses in parallel with ALU work ===")
	// Miss #2 depends on miss #1 (pointer chase); an independent
	// chain of FP divides runs alongside, long enough to hide one
	// miss but not two.
	const chain = 10
	g := depgraph.New(wideMachine(), 2+chain)
	g.Info[0] = depgraph.InstInfo{Op: isa.OpLoad, SIdx: 0, DataLevel: cache.LevelMem}
	g.Info[1] = depgraph.InstInfo{Op: isa.OpLoad, SIdx: 1, DataLevel: cache.LevelMem}
	g.Prod1[1] = 0
	for i := 0; i < chain; i++ {
		g.Info[2+i] = depgraph.InstInfo{Op: isa.OpFloatDiv, SIdx: int32(2 + i)}
		if i > 0 {
			g.Prod1[2+i] = int32(1 + i)
		}
	}

	a := cost.New(g)
	miss := func(i int) depgraph.Ideal {
		return cost.EventSet(g, depgraph.IdealDMiss, func(j int) bool { return j == i })
	}
	c0 := a.CostSet(miss(0))
	c1 := a.CostSet(miss(1))
	both := a.CostSet(depgraph.Ideal{PerInst: mergeMasks(g.Len(), 0, 1)})
	ic := a.ICostSets(miss(0), miss(1))

	fmt.Printf("execution time:        %d cycles\n", a.BaseTime())
	fmt.Printf("cost(miss #1):         %d cycles\n", c0)
	fmt.Printf("cost(miss #2):         %d cycles\n", c1)
	fmt.Printf("cost(both):            %d cycles  <- no more than either alone\n", both)
	fmt.Printf("icost(miss1, miss2):   %+d cycles -> %v interaction\n",
		ic, cost.Classify(ic, 0))
	fmt.Println("conclusion: prefetch EITHER load; doing both wastes overhead")
}

func mergeMasks(n int, idx ...int) []depgraph.Flags {
	per := make([]depgraph.Flags, n)
	for _, i := range idx {
		per[i] = depgraph.IdealDMiss
	}
	return per
}
