// Shotgun profiling a "live" workload (paper Section 5): collect
// signature and detailed samples from an execution with the proposed
// performance-monitoring hardware, reconstruct dependence-graph
// fragments post-mortem, and compute the same interaction-cost
// breakdown a simulator would — then compare against the full-graph
// ground truth that a real system would not have.
//
// Run with: go run ./examples/shotgunprof [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/workload"
)

func main() {
	bench := "twolf"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const (
		seed   = 42
		warmup = 20000
		n      = 40000
	)
	w, err := workload.New(bench, seed)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := w.Execute(warmup+n, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	mc := ooo.DefaultConfig()
	res, err := ooo.Simulate(tr, mc, ooo.Options{KeepGraph: true, Warmup: warmup})
	if err != nil {
		log.Fatal(err)
	}

	// --- the part a real system runs: sample, stitch, analyze ---
	pcfg := profiler.DefaultConfig()
	cats := breakdown.BaseCategories()
	est, p, err := profiler.Profile(w.Prog, mc.Graph, tr, res.Graph, warmup, pcfg, cats[0], cats)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d instructions profiled\n", bench, n)
	fmt.Printf("fragments: %d built, %d attempted, %d aborted by the inconsistency check\n",
		est.Fragments, est.Attempts, p.Aborted)
	fmt.Printf("instructions filled from detailed samples: %.1f%%\n\n", est.MatchedFrac*100)

	// --- ground truth, available here because the "hardware" is a
	// simulator ---
	ga := cost.New(res.Graph)
	truth := func(label string, f func() float64) {
		fmt.Printf("  %-12s profiler %6.1f%%   fullgraph %6.1f%%\n", label, est.Pct[label], f())
	}
	fmt.Println("breakdown (percent of execution time):")
	for _, c := range cats {
		c := c
		truth(c.Name, func() float64 {
			return 100 * float64(ga.Cost(c.Flags)) / float64(ga.BaseTime())
		})
	}
	fmt.Println("\ndl1 interaction costs:")
	for _, c := range cats[1:] {
		c := c
		truth("dl1+"+c.Name, func() float64 {
			return 100 * float64(ga.MustICost(cats[0].Flags, c.Flags)) / float64(ga.BaseTime())
		})
	}
}
