module icost

go 1.22
