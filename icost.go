// Package icost is a library for microarchitectural bottleneck
// analysis with interaction costs, reproducing
//
//	B. Fields, R. Bodík, M. D. Hill, C. J. Newburn,
//	"Using Interaction Costs for Microarchitectural Bottleneck
//	Analysis", MICRO-36, 2003.
//
// The cost of a set of events is the speedup from idealizing them;
// the interaction cost (icost) of several sets quantifies how they
// overlap: zero means independent, positive means parallel (cycles
// recoverable only by optimizing all the sets together), negative
// means serial (either set alone recovers the shared cycles). On top
// of a cycle-level out-of-order processor simulator and a synthetic
// SPECint2000-like workload suite, the library computes costs three
// ways — idealized re-simulation, dependence-graph analysis, and the
// paper's "shotgun" hardware profiler — and builds parallelism-aware
// performance breakdowns from them.
//
// This package is a façade over the implementation packages; see
// DESIGN.md for the architecture and the doc comments on the aliased
// types for details. A minimal session:
//
//	tr, _ := icost.LoadWorkload("mcf", 42, 60000)
//	res, _ := icost.Simulate(tr, icost.DefaultMachine(),
//		icost.Options{KeepGraph: true, Warmup: 30000})
//	a := icost.NewAnalyzer(res.Graph)
//	fmt.Println(a.Cost(icost.IdealDMiss)) // cycles saved by a perfect dcache
//	ic, _ := a.ICost(icost.IdealDMiss, icost.IdealWindow)
//	fmt.Println(icost.Classify(ic, 0))    // serial / independent / parallel
package icost

import (
	"io"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/experiments"
	"icost/internal/multisim"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/trace"
	"icost/internal/workload"
)

// Core analysis types.
type (
	// Graph is the dependence-graph model of a microexecution
	// (paper Tables 2-3).
	Graph = depgraph.Graph
	// Ideal selects events to idealize, globally or per instruction.
	Ideal = depgraph.Ideal
	// Flags names the eight base event categories.
	Flags = depgraph.Flags
	// Analyzer computes costs and interaction costs.
	Analyzer = cost.Analyzer
	// Interaction classifies an icost as serial/independent/parallel.
	Interaction = cost.Interaction
)

// Machine and workload types.
type (
	// Machine configures the simulated out-of-order processor
	// (paper Table 6).
	Machine = ooo.Config
	// Options selects per-simulation behaviour (idealization,
	// warmup, graph retention).
	Options = ooo.Options
	// Result is a simulation outcome.
	Result = ooo.Result
	// Trace is an executed instruction stream.
	Trace = trace.Trace
	// Workload is a generated synthetic benchmark.
	Workload = workload.Workload
)

// Breakdown and profiler types.
type (
	// Category pairs a breakdown label with its idealization flags.
	Category = breakdown.Category
	// FocusedBreakdown is the paper's Table 4 shape.
	FocusedBreakdown = breakdown.Focused
	// FullBreakdown is the paper's Figure 1 power-set shape.
	FullBreakdown = breakdown.Full
	// ProfilerConfig sizes the shotgun profiler.
	ProfilerConfig = profiler.Config
	// ProfilerEstimate is a shotgun-profiled breakdown.
	ProfilerEstimate = profiler.Estimate
)

// Idealization flags (paper Table 1 / Table 4 categories).
const (
	IdealDL1      = depgraph.IdealDL1
	IdealDMiss    = depgraph.IdealDMiss
	IdealICache   = depgraph.IdealICache
	IdealBMisp    = depgraph.IdealBMisp
	IdealWindow   = depgraph.IdealWindow
	IdealBW       = depgraph.IdealBW
	IdealShortALU = depgraph.IdealShortALU
	IdealLongALU  = depgraph.IdealLongALU
	AllIdeal      = depgraph.AllFlags
)

// Interaction kinds.
const (
	Serial      = cost.Serial
	Independent = cost.Independent
	Parallel    = cost.Parallel
)

// Benchmarks returns the names of the twelve SPECint2000-like
// synthetic workloads.
func Benchmarks() []string { return workload.Names() }

// LoadWorkload generates a benchmark and executes n instructions.
func LoadWorkload(name string, seed uint64, n int) (*Trace, error) {
	return workload.Load(name, seed, n)
}

// NewWorkload generates a benchmark's program without executing it.
func NewWorkload(name string, seed uint64) (*Workload, error) {
	return workload.New(name, seed)
}

// DefaultMachine returns the paper's Table 6 processor.
func DefaultMachine() Machine { return ooo.DefaultConfig() }

// Simulate runs the machine over a trace.
func Simulate(tr *Trace, m Machine, opt Options) (*Result, error) {
	return ooo.Simulate(tr, m, opt)
}

// NewAnalyzer analyzes a dependence graph (the paper's efficient
// alternative to re-simulation).
func NewAnalyzer(g *Graph) *Analyzer { return cost.New(g) }

// NewResimAnalyzer measures costs via idealized re-simulation (the
// paper's expensive baseline).
func NewResimAnalyzer(tr *Trace, m Machine, warmup int) (*Analyzer, error) {
	return multisim.New(tr, m, warmup)
}

// Classify maps an icost to its interaction kind using tolerance
// cycles as the independence band.
func Classify(ic, tolerance int64) Interaction { return cost.Classify(ic, tolerance) }

// BaseCategories returns the paper's eight breakdown categories.
func BaseCategories() []Category { return breakdown.BaseCategories() }

// FocusBreakdown builds a Table 4-style breakdown.
func FocusBreakdown(a *Analyzer, focus Category, cats []Category, name string) (*FocusedBreakdown, error) {
	return breakdown.Focus(a, focus, cats, name)
}

// FullPowerSetBreakdown builds a Figure 1-style breakdown that
// accounts for every cycle.
func FullPowerSetBreakdown(a *Analyzer, cats []Category, name string) (*FullBreakdown, error) {
	return breakdown.ComputeFull(a, cats, name)
}

// ShotgunProfile samples a simulated execution with the paper's
// performance-monitor design, reconstructs graph fragments, and
// estimates the breakdown — the analysis a real system would run.
func ShotgunProfile(w *Workload, m Machine, tr *Trace, g *Graph, warmup int,
	cfg ProfilerConfig, focus Category, cats []Category) (*ProfilerEstimate, error) {
	est, _, err := profiler.Profile(w.Prog, m.Graph, tr, g, warmup, cfg, focus, cats)
	return est, err
}

// DefaultProfiler returns the paper's monitor design points.
func DefaultProfiler() ProfilerConfig { return profiler.DefaultConfig() }

// Experiments exposes the per-table/figure harnesses (DESIGN.md §4).
type Experiments = experiments.Config

// DefaultExperiments runs the full suite at the default scale.
func DefaultExperiments() Experiments { return experiments.DefaultConfig() }

// InteractionMatrix builds the all-pairs icost table over categories.
func InteractionMatrix(a *Analyzer, cats []Category, name string) (*breakdown.Matrix, error) {
	return breakdown.ComputeMatrix(a, cats, name)
}

// NaiveBreakdown builds the traditional count-x-latency breakdown the
// paper's Figure 1a critiques; its rows do not sum to 100%.
func NaiveBreakdown(a *Analyzer, cats []Category, name string) (*breakdown.Naive, error) {
	return breakdown.ComputeNaive(a, cats, name)
}

// Slacks returns per-instruction slack (cycles each instruction can
// slip without lengthening execution) — the de-optimization view.
func Slacks(g *Graph) []int64 { return g.Slacks(depgraph.Ideal{}) }

// RankStaticLoadMisses ranks static loads by the cost of their
// dynamic cache misses (software-prefetch planning).
func RankStaticLoadMisses(a *Analyzer, minEvents int) []cost.StaticCost {
	return cost.RankStaticLoadMisses(a, minEvents)
}

// RankStaticMispredicts ranks static branches by the cost of their
// dynamic mispredictions.
func RankStaticMispredicts(a *Analyzer, minEvents int) []cost.StaticCost {
	return cost.RankStaticMispredicts(a, minEvents)
}

// SaveTrace serializes a trace to w in the binary trace format.
func SaveTrace(w io.Writer, t *Trace) error { return trace.Write(w, t) }

// ReadTrace deserializes and validates a trace written by SaveTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }
