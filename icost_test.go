package icost_test

import (
	"bytes"
	"testing"

	"icost"
)

func TestFacadeEndToEnd(t *testing.T) {
	tr, err := icost.LoadWorkload("gzip", 42, 12000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := icost.Simulate(tr, icost.DefaultMachine(),
		icost.Options{KeepGraph: true, Warmup: 6000})
	if err != nil {
		t.Fatal(err)
	}
	a := icost.NewAnalyzer(res.Graph)
	if a.BaseTime() != res.Cycles {
		t.Fatalf("analyzer base %d != sim %d", a.BaseTime(), res.Cycles)
	}
	if c := a.Cost(icost.IdealDMiss); c < 0 {
		t.Fatalf("negative cost %d", c)
	}
	ic, err := a.ICost(icost.IdealDMiss, icost.IdealWindow)
	if err != nil {
		t.Fatal(err)
	}
	switch icost.Classify(ic, 0) {
	case icost.Serial, icost.Independent, icost.Parallel:
	default:
		t.Fatal("unknown classification")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	names := icost.Benchmarks()
	if len(names) != 12 {
		t.Fatalf("%d benchmarks", len(names))
	}
	for _, n := range names {
		if _, err := icost.NewWorkload(n, 1); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestFacadeBreakdowns(t *testing.T) {
	tr, err := icost.LoadWorkload("twolf", 42, 12000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := icost.Simulate(tr, icost.DefaultMachine(),
		icost.Options{KeepGraph: true, Warmup: 6000})
	if err != nil {
		t.Fatal(err)
	}
	a := icost.NewAnalyzer(res.Graph)
	cats := icost.BaseCategories()
	fb, err := icost.FocusBreakdown(a, cats[0], cats, "twolf")
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Base) != 8 || len(fb.Pairs) != 7 {
		t.Fatalf("breakdown shape %d/%d", len(fb.Base), len(fb.Pairs))
	}
	full, err := icost.FullPowerSetBreakdown(a, cats[:3], "twolf")
	if err != nil {
		t.Fatal(err)
	}
	if err := full.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeResimAnalyzer(t *testing.T) {
	tr, err := icost.LoadWorkload("gzip", 42, 8000)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := icost.NewResimAnalyzer(tr, icost.DefaultMachine(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := icost.Simulate(tr, icost.DefaultMachine(),
		icost.Options{KeepGraph: true, Warmup: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if ms.BaseTime() != res.Cycles {
		t.Fatalf("resim base %d != sim %d", ms.BaseTime(), res.Cycles)
	}
}

func TestFacadeShotgunProfile(t *testing.T) {
	w, err := icost.NewWorkload("gzip", 42)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Execute(22000, 43)
	if err != nil {
		t.Fatal(err)
	}
	res, err := icost.Simulate(tr, icost.DefaultMachine(),
		icost.Options{KeepGraph: true, Warmup: 10000})
	if err != nil {
		t.Fatal(err)
	}
	cats := icost.BaseCategories()
	pcfg := icost.DefaultProfiler()
	pcfg.Fragments = 5
	est, err := icost.ShotgunProfile(w, icost.DefaultMachine(), tr, res.Graph,
		10000, pcfg, cats[0], cats)
	if err != nil {
		t.Fatal(err)
	}
	if est.Fragments == 0 {
		t.Fatal("no fragments")
	}
	if _, ok := est.Pct["dmiss"]; !ok {
		t.Fatal("missing category")
	}
}

func TestFacadeExperiments(t *testing.T) {
	e := icost.DefaultExperiments()
	if e.TraceLen <= 0 || e.Warmup <= 0 {
		t.Fatal("bad defaults")
	}
}

func TestFacadeExtensions(t *testing.T) {
	tr, err := icost.LoadWorkload("twolf", 42, 16000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := icost.Simulate(tr, icost.DefaultMachine(),
		icost.Options{KeepGraph: true, Warmup: 8000})
	if err != nil {
		t.Fatal(err)
	}
	a := icost.NewAnalyzer(res.Graph)
	cats := icost.BaseCategories()

	m, err := icost.InteractionMatrix(a, cats, "twolf")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pct) != len(cats) {
		t.Fatal("matrix shape")
	}

	nv, err := icost.NaiveBreakdown(a, cats, "twolf")
	if err != nil {
		t.Fatal(err)
	}
	if len(nv.Rows) != len(cats) {
		t.Fatal("naive shape")
	}

	slacks := icost.Slacks(res.Graph)
	if len(slacks) != res.Graph.Len() {
		t.Fatal("slack length")
	}

	if ranked := icost.RankStaticLoadMisses(a, 1); len(ranked) == 0 {
		t.Fatal("no ranked loads on twolf")
	}
	if ranked := icost.RankStaticMispredicts(a, 1); len(ranked) == 0 {
		t.Fatal("no ranked branches on twolf")
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr, err := icost.LoadWorkload("gzip", 42, 3000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := icost.SaveTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := icost.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Name != tr.Name {
		t.Fatal("round trip changed trace")
	}
}
