// Package bpred implements the branch prediction hardware of the
// simulated machine (paper Table 6): a combined predictor with an
// 8K-entry bimodal table, an 8K-entry gshare table and an 8K-entry
// meta chooser, a 4K-entry 2-way associative branch target buffer,
// and a 64-entry return-address stack.
package bpred

import "icost/internal/isa"

// Config sizes the predictor. The zero value is invalid; use
// DefaultConfig for the paper's machine.
type Config struct {
	// BimodalEntries, GshareEntries, MetaEntries are two-bit-counter
	// table sizes (powers of two).
	BimodalEntries int
	GshareEntries  int
	MetaEntries    int
	// HistoryBits is the global-history length used by gshare.
	HistoryBits int
	// BTBEntries and BTBWays size the branch target buffer.
	BTBEntries int
	BTBWays    int
	// RASEntries sizes the return-address stack.
	RASEntries int
}

// DefaultConfig is the Table 6 configuration.
func DefaultConfig() Config {
	return Config{
		BimodalEntries: 8192,
		GshareEntries:  8192,
		MetaEntries:    8192,
		HistoryBits:    13,
		BTBEntries:     4096,
		BTBWays:        2,
		RASEntries:     64,
	}
}

// Predictor is a combined direction predictor plus BTB and RAS.
// Methods are not safe for concurrent use (the simulator is
// single-threaded by design; see DESIGN.md).
type Predictor struct {
	cfg      Config
	bimodal  []uint8
	gshare   []uint8
	meta     []uint8
	history  uint64
	histMask uint64

	btb *btb
	ras *ras
}

// New builds a predictor; all counters start weakly taken (2), the
// conventional initialization.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]uint8, cfg.BimodalEntries),
		gshare:   make([]uint8, cfg.GshareEntries),
		meta:     make([]uint8, cfg.MetaEntries),
		histMask: (1 << uint(cfg.HistoryBits)) - 1,
		btb:      newBTB(cfg.BTBEntries, cfg.BTBWays),
		ras:      newRAS(cfg.RASEntries),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.meta {
		p.meta[i] = 2 // weakly prefer gshare
	}
	return p
}

// Prediction is the outcome of one lookup.
type Prediction struct {
	// Taken is the predicted direction (always true for
	// unconditional transfers).
	Taken bool
	// Target is the predicted next PC (fall-through if not taken or
	// no BTB/RAS target known).
	Target isa.Addr
	// TargetKnown reports whether Target came from the BTB/RAS rather
	// than fall-through default.
	TargetKnown bool
}

// Predict performs a lookup for the control-transfer instruction in
// and speculatively updates the global history with the predicted
// direction (as real front ends do; Update repairs it on resolve).
func (p *Predictor) Predict(in *isa.Inst) Prediction {
	switch in.Op {
	case isa.OpJump, isa.OpCall:
		if in.Op == isa.OpCall {
			p.ras.push(in.NextPC())
		}
		return Prediction{Taken: true, Target: in.Target, TargetKnown: true}
	case isa.OpReturn:
		if t, ok := p.ras.pop(); ok {
			return Prediction{Taken: true, Target: t, TargetKnown: true}
		}
		return Prediction{Taken: true, Target: in.NextPC()}
	case isa.OpJumpIndirect:
		if t, ok := p.btb.lookup(in.PC); ok {
			return Prediction{Taken: true, Target: t, TargetKnown: true}
		}
		return Prediction{Taken: true, Target: in.NextPC()}
	case isa.OpBranch:
		taken := p.direction(in.PC)
		pr := Prediction{Taken: taken, Target: in.NextPC()}
		if taken {
			// A direct branch's target comes from the decoded
			// instruction; model BTB hit for simplicity of the
			// front end (target mispredicts come from indirects).
			pr.Target = in.Target
			pr.TargetKnown = true
		}
		p.pushHistory(taken)
		return pr
	default:
		return Prediction{Taken: false, Target: in.NextPC()}
	}
}

// direction consults the combined predictor.
func (p *Predictor) direction(pc isa.Addr) bool {
	bi := p.bimodal[p.bimodalIdx(pc)] >= 2
	gs := p.gshare[p.gshareIdx(pc)] >= 2
	if p.meta[p.metaIdx(pc)] >= 2 {
		return gs
	}
	return bi
}

// Update trains the predictor with the resolved outcome of a
// control-transfer instruction. For conditional branches it repairs
// the speculative history if the prediction was wrong.
func (p *Predictor) Update(in *isa.Inst, taken bool, target isa.Addr, predicted Prediction) {
	switch in.Op {
	case isa.OpBranch:
		biIdx, gsIdx, mIdx := p.bimodalIdx(in.PC), p.gshareIdxResolved(in.PC), p.metaIdx(in.PC)
		biCorrect := (p.bimodal[biIdx] >= 2) == taken
		gsCorrect := (p.gshare[gsIdx] >= 2) == taken
		saturate(&p.bimodal[biIdx], taken)
		saturate(&p.gshare[gsIdx], taken)
		if biCorrect != gsCorrect {
			saturate(&p.meta[mIdx], gsCorrect)
		}
		if predicted.Taken != taken {
			// Repair: pop the wrong speculative bit, push the truth.
			p.history >>= 1
			p.pushHistory(taken)
		}
	case isa.OpJumpIndirect:
		p.btb.insert(in.PC, target)
	}
}

// gshareIdxResolved recomputes the gshare index as it was at predict
// time: Predict already pushed the (possibly wrong) speculative bit,
// so strip the newest bit before hashing. This is exact because the
// simulator trains each branch immediately after predicting it (the
// front end runs in program order; see package ooo).
func (p *Predictor) gshareIdxResolved(pc isa.Addr) int {
	h := (p.history >> 1) & p.histMask
	return int((uint64(pc>>2) ^ h) % uint64(len(p.gshare)))
}

func (p *Predictor) pushHistory(taken bool) {
	p.history <<= 1
	if taken {
		p.history |= 1
	}
}

func (p *Predictor) bimodalIdx(pc isa.Addr) int {
	return int(uint64(pc>>2) % uint64(len(p.bimodal)))
}

func (p *Predictor) gshareIdx(pc isa.Addr) int {
	return int((uint64(pc>>2) ^ (p.history & p.histMask)) % uint64(len(p.gshare)))
}

func (p *Predictor) metaIdx(pc isa.Addr) int {
	return int(uint64(pc>>2) % uint64(len(p.meta)))
}

func saturate(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// btb is a set-associative branch target buffer with LRU replacement.
type btb struct {
	sets int
	ways int
	tags []isa.Addr // 0 = invalid
	tgts []isa.Addr
	lru  []uint32
	tick uint32
}

func newBTB(entries, ways int) *btb {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	n := sets * ways
	return &btb{sets: sets, ways: ways,
		tags: make([]isa.Addr, n), tgts: make([]isa.Addr, n), lru: make([]uint32, n)}
}

func (b *btb) set(pc isa.Addr) int { return int(uint64(pc>>2) % uint64(b.sets)) }

func (b *btb) lookup(pc isa.Addr) (isa.Addr, bool) {
	s := b.set(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tags[s+w] == pc {
			b.tick++
			b.lru[s+w] = b.tick
			return b.tgts[s+w], true
		}
	}
	return 0, false
}

func (b *btb) insert(pc, target isa.Addr) {
	s := b.set(pc) * b.ways
	victim := s
	for w := 0; w < b.ways; w++ {
		if b.tags[s+w] == pc || b.tags[s+w] == 0 {
			victim = s + w
			break
		}
		if b.lru[s+w] < b.lru[victim] {
			victim = s + w
		}
	}
	b.tick++
	b.tags[victim] = pc
	b.tgts[victim] = target
	b.lru[victim] = b.tick
}

// ras is a circular return-address stack; overflow overwrites the
// oldest entry, underflow fails the pop (as in real hardware).
type ras struct {
	buf  []isa.Addr
	top  int // next push slot
	size int // live entries, <= len(buf)
}

func newRAS(entries int) *ras {
	return &ras{buf: make([]isa.Addr, entries)}
}

func (r *ras) push(a isa.Addr) {
	r.buf[r.top] = a
	r.top = (r.top + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
}

func (r *ras) pop() (isa.Addr, bool) {
	if r.size == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.size--
	return r.buf[r.top], true
}
