package bpred

import (
	"testing"

	"icost/internal/isa"
	"icost/internal/rng"
)

func newDefault() *Predictor { return New(DefaultConfig()) }

func condBr(pc isa.Addr, target isa.Addr) *isa.Inst {
	return &isa.Inst{PC: pc, Op: isa.OpBranch, Src1: 1, Src2: 0, Target: target}
}

// train runs predict+update for one branch outcome and returns whether
// the prediction was correct.
func train(p *Predictor, in *isa.Inst, taken bool) bool {
	pr := p.Predict(in)
	tgt := in.NextPC()
	if taken {
		tgt = in.Target
	}
	p.Update(in, taken, tgt, pr)
	return pr.Taken == taken
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := newDefault()
	in := condBr(0x1000, 0x2000)
	wrong := 0
	for i := 0; i < 100; i++ {
		if !train(p, in, true) && i > 4 {
			wrong++
		}
	}
	if wrong != 0 {
		t.Fatalf("%d mispredicts on always-taken branch after warmup", wrong)
	}
}

func TestLearnsAlwaysNotTaken(t *testing.T) {
	p := newDefault()
	in := condBr(0x1000, 0x2000)
	wrong := 0
	for i := 0; i < 100; i++ {
		if !train(p, in, false) && i > 4 {
			wrong++
		}
	}
	if wrong != 0 {
		t.Fatalf("%d mispredicts on never-taken branch after warmup", wrong)
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	// A strictly alternating branch is mispredicted ~50% by bimodal
	// but learned perfectly by gshare; the meta predictor must find
	// this out. Expect high accuracy after warmup.
	p := newDefault()
	in := condBr(0x1000, 0x2000)
	wrong := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		if !train(p, in, taken) && i >= 100 {
			wrong++
		}
	}
	if wrong > 15 {
		t.Fatalf("%d/300 mispredicts on alternating branch", wrong)
	}
}

func TestRandomBranchNearFiftyPercent(t *testing.T) {
	p := newDefault()
	in := condBr(0x1000, 0x2000)
	r := rng.New(1)
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if !train(p, in, r.Bool(0.5)) {
			wrong++
		}
	}
	frac := float64(wrong) / n
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("mispredict rate %.2f on random branch", frac)
	}
}

func TestBiasedBranchBeatsCoin(t *testing.T) {
	p := newDefault()
	in := condBr(0x1000, 0x2000)
	r := rng.New(2)
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if !train(p, in, r.Bool(0.9)) {
			wrong++
		}
	}
	frac := float64(wrong) / n
	if frac > 0.2 {
		t.Fatalf("mispredict rate %.2f on 90%% biased branch", frac)
	}
}

func TestUnconditionalAlwaysPredictedTaken(t *testing.T) {
	p := newDefault()
	j := &isa.Inst{PC: 0x1000, Op: isa.OpJump, Target: 0x3000}
	pr := p.Predict(j)
	if !pr.Taken || pr.Target != 0x3000 || !pr.TargetKnown {
		t.Fatalf("jump prediction %+v", pr)
	}
}

func TestRASCallReturn(t *testing.T) {
	p := newDefault()
	call := &isa.Inst{PC: 0x1000, Op: isa.OpCall, Target: 0x5000}
	ret := &isa.Inst{PC: 0x5004, Op: isa.OpReturn}
	pr := p.Predict(call)
	if pr.Target != 0x5000 {
		t.Fatalf("call target %#x", uint64(pr.Target))
	}
	pr = p.Predict(ret)
	if !pr.TargetKnown || pr.Target != call.NextPC() {
		t.Fatalf("return predicted %+v, want %#x", pr, uint64(call.NextPC()))
	}
}

func TestRASNested(t *testing.T) {
	p := newDefault()
	ret := &isa.Inst{PC: 0x9000, Op: isa.OpReturn}
	var calls []*isa.Inst
	for i := 0; i < 10; i++ {
		c := &isa.Inst{PC: isa.Addr(0x1000 + i*8), Op: isa.OpCall, Target: 0x5000}
		calls = append(calls, c)
		p.Predict(c)
	}
	for i := 9; i >= 0; i-- {
		pr := p.Predict(ret)
		if pr.Target != calls[i].NextPC() {
			t.Fatalf("nested return %d predicted %#x, want %#x",
				i, uint64(pr.Target), uint64(calls[i].NextPC()))
		}
	}
}

func TestRASUnderflow(t *testing.T) {
	p := newDefault()
	ret := &isa.Inst{PC: 0x9000, Op: isa.OpReturn}
	pr := p.Predict(ret)
	if pr.TargetKnown {
		t.Fatal("empty RAS claimed a known target")
	}
	if !pr.Taken {
		t.Fatal("return predicted not-taken")
	}
}

func TestRASOverflowWrapsAround(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 4
	p := New(cfg)
	ret := &isa.Inst{PC: 0x9000, Op: isa.OpReturn}
	for i := 0; i < 6; i++ {
		p.Predict(&isa.Inst{PC: isa.Addr(0x1000 + i*8), Op: isa.OpCall, Target: 0x5000})
	}
	// Only the newest 4 survive: returns should give calls 5,4,3,2.
	for i := 5; i >= 2; i-- {
		want := isa.Addr(0x1000 + i*8 + 4)
		pr := p.Predict(ret)
		if pr.Target != want {
			t.Fatalf("after overflow, return predicted %#x, want %#x",
				uint64(pr.Target), uint64(want))
		}
	}
	if pr := p.Predict(ret); pr.TargetKnown {
		t.Fatal("RAS did not empty after draining")
	}
}

func TestIndirectJumpLearnsTarget(t *testing.T) {
	p := newDefault()
	jr := &isa.Inst{PC: 0x1000, Op: isa.OpJumpIndirect, Src1: 5}
	pr := p.Predict(jr)
	if pr.TargetKnown {
		t.Fatal("cold BTB claimed a target")
	}
	p.Update(jr, true, 0x4000, pr)
	pr = p.Predict(jr)
	if !pr.TargetKnown || pr.Target != 0x4000 {
		t.Fatalf("BTB did not learn: %+v", pr)
	}
	// Target changes are re-learned.
	p.Update(jr, true, 0x6000, pr)
	pr = p.Predict(jr)
	if pr.Target != 0x6000 {
		t.Fatalf("BTB did not relearn: %+v", pr)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 4
	cfg.BTBWays = 2
	p := New(cfg)
	// Three PCs mapping to the same set (sets=2, so stride 2*4 bytes
	// in pc>>2 space): pc>>2 even → set 0.
	pcs := []isa.Addr{0x1000, 0x1010, 0x1020}
	for i, pc := range pcs {
		jr := &isa.Inst{PC: pc, Op: isa.OpJumpIndirect, Src1: 1}
		p.Update(jr, true, isa.Addr(0x4000+i*16), Prediction{})
	}
	// The first should be evicted (LRU), the last two present.
	if _, ok := p.btb.lookup(pcs[0]); ok {
		t.Fatal("LRU entry not evicted")
	}
	for i := 1; i < 3; i++ {
		tgt, ok := p.btb.lookup(pcs[i])
		if !ok || tgt != isa.Addr(0x4000+i*16) {
			t.Fatalf("entry %d lost: ok=%v tgt=%#x", i, ok, uint64(tgt))
		}
	}
}

func TestNonBranchPredictsFallThrough(t *testing.T) {
	p := newDefault()
	in := &isa.Inst{PC: 0x1000, Op: isa.OpIntShort, Dst: 1, Src1: 2, Src2: 3}
	pr := p.Predict(in)
	if pr.Taken || pr.Target != in.NextPC() {
		t.Fatalf("non-branch prediction %+v", pr)
	}
}

func TestManyBranchesIsolated(t *testing.T) {
	// Two heavily biased branches at different PCs must not destroy
	// each other's bimodal state.
	p := newDefault()
	a := condBr(0x1000, 0x2000)
	b := condBr(0x1A04, 0x3000)
	wrong := 0
	for i := 0; i < 300; i++ {
		if !train(p, a, true) && i > 10 {
			wrong++
		}
		if !train(p, b, false) && i > 10 {
			wrong++
		}
	}
	if wrong > 30 {
		t.Fatalf("%d mispredicts across two biased branches", wrong)
	}
}

func TestHistoryRepairOnMispredict(t *testing.T) {
	// After a mispredict, the history must contain the resolved
	// outcome, not the predicted one: feed a pattern where this
	// matters and just assert the predictor still converges.
	p := newDefault()
	in := condBr(0x1000, 0x2000)
	pattern := []bool{true, true, false, true, true, false}
	wrong := 0
	for i := 0; i < 600; i++ {
		taken := pattern[i%len(pattern)]
		if !train(p, in, taken) && i >= 300 {
			wrong++
		}
	}
	if wrong > 30 {
		t.Fatalf("%d/300 mispredicts on periodic pattern", wrong)
	}
}
