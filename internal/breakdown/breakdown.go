// Package breakdown builds the paper's parallelism-aware performance
// breakdowns (Section 2.3): instead of blaming each cycle on exactly
// one cause — impossible in an out-of-order processor — a breakdown
// has one category per base event class plus an explicit interaction
// category per overlap, so execution time is fully accounted for.
//
// Two shapes are provided:
//
//   - Focused: the Table 4 shape — every base category's cost, the
//     pairwise interaction costs against one focus category, and an
//     "Other" row absorbing the undisplayed interactions (which can
//     be negative, as in the paper).
//   - Full: the Figure 1 shape — the complete power set of a small
//     category list, which sums exactly to total execution time.
package breakdown

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"icost/internal/cost"
	"icost/internal/depgraph"
)

// Category pairs a display name with the flags idealizing it.
type Category struct {
	Name  string
	Flags depgraph.Flags
}

// BaseCategories returns the paper's eight Table 4 categories in
// display order.
func BaseCategories() []Category {
	order := []string{"dl1", "win", "bw", "bmisp", "dmiss", "shalu", "lgalu", "imiss"}
	out := make([]Category, len(order))
	for i, n := range order {
		f, ok := depgraph.FlagByName(n)
		if !ok {
			panic("breakdown: unknown base category " + n)
		}
		out[i] = Category{Name: n, Flags: f}
	}
	return out
}

// Row is one breakdown entry.
type Row struct {
	// Label is the category ("dl1") or interaction ("dl1+win").
	Label string
	// Cycles is the cost or interaction cost in cycles.
	Cycles int64
	// Percent is Cycles as a percentage of total execution time.
	Percent float64
}

// Focused is a Table 4-style breakdown for one microexecution.
type Focused struct {
	// Name labels the workload.
	Name string
	// Focus is the category whose interactions are displayed.
	Focus Category
	// Base holds each base category's individual cost.
	Base []Row
	// Pairs holds icost(Focus, c) for every other base category c.
	Pairs []Row
	// Other absorbs everything not displayed: higher-order
	// interactions, undisplayed pairs, and the residual ideal time.
	// It can be negative.
	Other Row
	// TotalCycles is the base execution time.
	TotalCycles int64
}

// Focus computes a focused breakdown from an analyzer. It is the
// uncancellable form of FocusCtx for CLI and test callers.
//
//lint:ignore ctxflow infallible wrapper over FocusCtx; a background ctx cannot cancel
func Focus(a *cost.Analyzer, focus Category, cats []Category, name string) (*Focused, error) {
	return FocusCtx(context.Background(), a, focus, cats, name)
}

// FocusCtx is Focus with cancellation: each underlying cost query
// aborts when ctx is done. The base-category and focus-pair unions
// are batch-evaluated up front.
func FocusCtx(ctx context.Context, a *cost.Analyzer, focus Category, cats []Category, name string) (*Focused, error) {
	total := a.BaseTime()
	if total <= 0 {
		return nil, fmt.Errorf("breakdown: empty execution")
	}
	masks := make([]depgraph.Flags, 0, 2*len(cats))
	for _, c := range cats {
		masks = append(masks, c.Flags)
		if c.Flags != focus.Flags {
			masks = append(masks, focus.Flags|c.Flags)
		}
	}
	if err := a.PrewarmCtx(ctx, masks); err != nil {
		return nil, err
	}
	pct := func(cy int64) float64 { return 100 * float64(cy) / float64(total) }
	f := &Focused{Name: name, Focus: focus, TotalCycles: total}
	var shown int64
	for _, c := range cats {
		cy, err := a.CostCtx(ctx, c.Flags)
		if err != nil {
			return nil, err
		}
		f.Base = append(f.Base, Row{Label: c.Name, Cycles: cy, Percent: pct(cy)})
		shown += cy
	}
	for _, c := range cats {
		if c.Flags == focus.Flags {
			continue
		}
		ic, err := a.ICostCtx(ctx, focus.Flags, c.Flags)
		if err != nil {
			return nil, err
		}
		f.Pairs = append(f.Pairs, Row{
			Label:   focus.Name + "+" + c.Name,
			Cycles:  ic,
			Percent: pct(ic),
		})
		shown += ic
	}
	f.Other = Row{Label: "Other", Cycles: total - shown, Percent: pct(total - shown)}
	return f, nil
}

// Full is a complete power-set breakdown over a small category list
// (Figure 1): one row per non-empty subset plus the residual ideal
// time, summing exactly to 100%.
type Full struct {
	Name string
	// Rows are ordered by subset size then category order; labels
	// join member names with "+".
	Rows []Row
	// Residual is the execution time remaining with every listed
	// category idealized ("ideal machine" time).
	Residual Row
	// TotalCycles is the base execution time.
	TotalCycles int64
}

// ComputeFull builds the full power-set breakdown. len(cats) should
// be small (the cost is 2^k graph evaluations). It is the
// uncancellable form of ComputeFullCtx for CLI and test callers.
//
//lint:ignore ctxflow infallible wrapper over ComputeFullCtx; a background ctx cannot cancel
func ComputeFull(a *cost.Analyzer, cats []Category, name string) (*Full, error) {
	return ComputeFullCtx(context.Background(), a, cats, name)
}

// ComputeFullCtx is ComputeFull with cancellation; the 2^k subset
// queries abort as soon as ctx is done.
func ComputeFullCtx(ctx context.Context, a *cost.Analyzer, cats []Category, name string) (*Full, error) {
	k := len(cats)
	if k == 0 || k > 12 {
		return nil, fmt.Errorf("breakdown: full breakdown needs 1..12 categories, got %d", k)
	}
	total := a.BaseTime()
	if total <= 0 {
		return nil, fmt.Errorf("breakdown: empty execution")
	}
	pct := func(cy int64) float64 { return 100 * float64(cy) / float64(total) }
	out := &Full{Name: name, TotalCycles: total}

	type subset struct {
		mask  int
		label string
	}
	var subsets []subset
	for m := 1; m < 1<<k; m++ {
		var names []string
		for j := 0; j < k; j++ {
			if m&(1<<j) != 0 {
				names = append(names, cats[j].Name)
			}
		}
		subsets = append(subsets, subset{mask: m, label: strings.Join(names, "+")})
	}
	sort.SliceStable(subsets, func(i, j int) bool {
		bi, bj := popcount(subsets[i].mask), popcount(subsets[j].mask)
		if bi != bj {
			return bi < bj
		}
		return subsets[i].mask < subsets[j].mask
	})
	var all depgraph.Flags
	for _, c := range cats {
		all |= c.Flags
	}
	// Evaluate the whole power set in one batched walk up front; the
	// per-row icost queries below are then pure memo arithmetic.
	masks := make([]depgraph.Flags, 0, 1<<k)
	for m := 1; m < 1<<k; m++ {
		var u depgraph.Flags
		for j := 0; j < k; j++ {
			if m&(1<<j) != 0 {
				u |= cats[j].Flags
			}
		}
		masks = append(masks, u)
	}
	if err := a.PrewarmCtx(ctx, masks); err != nil {
		return nil, err
	}
	for _, s := range subsets {
		var sets []depgraph.Flags
		for j := 0; j < k; j++ {
			if s.mask&(1<<j) != 0 {
				sets = append(sets, cats[j].Flags)
			}
		}
		ic, err := a.ICostCtx(ctx, sets...)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Row{Label: s.label, Cycles: ic, Percent: pct(ic)})
	}
	resid, err := a.ExecTimeCtx(ctx, all)
	if err != nil {
		return nil, err
	}
	out.Residual = Row{Label: "ideal", Cycles: resid, Percent: pct(resid)}
	return out, nil
}

func popcount(m int) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// CheckIdentity verifies the accounting identity of a Full breakdown:
// the rows plus the residual must sum exactly to the total time.
func (f *Full) CheckIdentity() error {
	var sum int64
	for _, r := range f.Rows {
		sum += r.Cycles
	}
	sum += f.Residual.Cycles
	if sum != f.TotalCycles {
		return fmt.Errorf("breakdown: identity violated: rows sum to %d, total %d",
			sum, f.TotalCycles)
	}
	return nil
}

// Table formats multiple Focused breakdowns (one per benchmark) in
// the paper's Table 4 layout: categories as rows, benchmarks as
// columns, percentages as cells.
func Table(bds []*Focused) string {
	if len(bds) == 0 {
		return ""
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "Category")
	for _, bd := range bds {
		fmt.Fprintf(w, "\t%s", bd.Name)
	}
	fmt.Fprintln(w, "\t")
	writeRow := func(label string, get func(*Focused) float64) {
		fmt.Fprint(w, label)
		for _, bd := range bds {
			fmt.Fprintf(w, "\t%.1f", get(bd))
		}
		fmt.Fprintln(w, "\t")
	}
	for ri := range bds[0].Base {
		ri := ri
		writeRow(bds[0].Base[ri].Label, func(bd *Focused) float64 { return bd.Base[ri].Percent })
	}
	for ri := range bds[0].Pairs {
		ri := ri
		writeRow(bds[0].Pairs[ri].Label, func(bd *Focused) float64 { return bd.Pairs[ri].Percent })
	}
	writeRow("Other", func(bd *Focused) float64 { return bd.Other.Percent })
	writeRow("Total", func(bd *Focused) float64 {
		s := bd.Other.Percent
		for _, r := range bd.Base {
			s += r.Percent
		}
		for _, r := range bd.Pairs {
			s += r.Percent
		}
		return s
	})
	w.Flush()
	return b.String()
}

// StackedBar renders a Full breakdown as the Figure 1b visualization:
// an ASCII stacked bar where positive categories stack above the axis
// (possibly past 100%) and negative interactions hang below it. One
// column per character, scaled to width chars per 100%.
func StackedBar(f *Full, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d cycles\n", f.Name, f.TotalCycles)
	scale := float64(width) / 100
	bar := func(pct float64) string {
		n := int(pct*scale + 0.5)
		if n < 0 {
			n = -n
		}
		if n > 4*width {
			n = 4 * width
		}
		return strings.Repeat("#", n)
	}
	rows := append([]Row{}, f.Rows...)
	rows = append(rows, f.Residual)
	for _, r := range rows {
		mark := "+"
		if r.Cycles < 0 {
			mark = "-"
		}
		fmt.Fprintf(&b, "%16s %s%7.1f%% |%s\n", r.Label, mark, abs(r.Percent), bar(r.Percent))
	}
	return b.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
