package breakdown

import (
	"strings"
	"testing"

	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/workload"
)

func analyzer(t *testing.T, name string, n int) *cost.Analyzer {
	t.Helper()
	tr, err := workload.Load(name, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cost.New(res.Graph)
}

func TestBaseCategoriesComplete(t *testing.T) {
	cats := BaseCategories()
	if len(cats) != depgraph.NumFlags {
		t.Fatalf("%d categories", len(cats))
	}
	var all depgraph.Flags
	for _, c := range cats {
		if c.Flags == 0 {
			t.Fatalf("category %s has no flags", c.Name)
		}
		if all&c.Flags != 0 {
			t.Fatalf("category %s overlaps", c.Name)
		}
		all |= c.Flags
	}
	if all != depgraph.AllFlags {
		t.Fatal("categories do not cover all flags")
	}
}

func TestFocusedStructure(t *testing.T) {
	a := analyzer(t, "gzip", 8000)
	cats := BaseCategories()
	f, err := Focus(a, cats[0], cats, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Base) != 8 {
		t.Fatalf("%d base rows", len(f.Base))
	}
	if len(f.Pairs) != 7 {
		t.Fatalf("%d pair rows", len(f.Pairs))
	}
	if f.Pairs[0].Label != "dl1+win" {
		t.Fatalf("first pair %q", f.Pairs[0].Label)
	}
	// Percentages sum (with Other) to exactly 100.
	sum := f.Other.Percent
	for _, r := range f.Base {
		sum += r.Percent
	}
	for _, r := range f.Pairs {
		sum += r.Percent
	}
	if sum < 99.999 || sum > 100.001 {
		t.Fatalf("rows sum to %.4f%%", sum)
	}
}

func TestFocusedCyclesMatchAnalyzer(t *testing.T) {
	a := analyzer(t, "parser", 8000)
	cats := BaseCategories()
	f, err := Focus(a, cats[0], cats, "parser")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cats {
		if f.Base[i].Cycles != a.Cost(c.Flags) {
			t.Fatalf("base row %s cycles mismatch", c.Name)
		}
	}
	ic := a.MustICost(cats[0].Flags, cats[1].Flags)
	if f.Pairs[0].Cycles != ic {
		t.Fatalf("pair row cycles %d != %d", f.Pairs[0].Cycles, ic)
	}
}

func TestFullIdentity(t *testing.T) {
	a := analyzer(t, "gcc", 8000)
	cats := []Category{
		{Name: "dmiss", Flags: depgraph.IdealDMiss},
		{Name: "bmisp", Flags: depgraph.IdealBMisp},
		{Name: "win", Flags: depgraph.IdealWindow},
	}
	f, err := ComputeFull(a, cats, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 7 {
		t.Fatalf("%d rows for 3 categories", len(f.Rows))
	}
	if err := f.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
	// Ordered by subset size.
	if strings.Contains(f.Rows[0].Label, "+") {
		t.Fatalf("first row %q is not a singleton", f.Rows[0].Label)
	}
	if !strings.Contains(f.Rows[6].Label, "dmiss+bmisp+win") {
		t.Fatalf("last row %q is not the triple", f.Rows[6].Label)
	}
}

func TestFullRejectsBadInput(t *testing.T) {
	a := analyzer(t, "gzip", 2000)
	if _, err := ComputeFull(a, nil, "x"); err == nil {
		t.Fatal("accepted empty categories")
	}
	many := make([]Category, 13)
	for i := range many {
		many[i] = Category{Name: "c", Flags: depgraph.IdealDL1}
	}
	if _, err := ComputeFull(a, many, "x"); err == nil {
		t.Fatal("accepted 13 categories")
	}
}

func TestTableRendering(t *testing.T) {
	cats := BaseCategories()
	var bds []*Focused
	for _, name := range []string{"gzip", "mcf"} {
		a := analyzer(t, name, 6000)
		f, err := Focus(a, cats[0], cats, name)
		if err != nil {
			t.Fatal(err)
		}
		bds = append(bds, f)
	}
	s := Table(bds)
	for _, want := range []string{"gzip", "mcf", "dl1+win", "Other", "Total", "dmiss"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	// Total row ends near 100 for both columns.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "100.0") {
		t.Fatalf("total row: %q", last)
	}
}

func TestTableEmpty(t *testing.T) {
	if Table(nil) != "" {
		t.Fatal("empty table not empty")
	}
}

func TestStackedBar(t *testing.T) {
	a := analyzer(t, "twolf", 6000)
	cats := []Category{
		{Name: "dmiss", Flags: depgraph.IdealDMiss},
		{Name: "bmisp", Flags: depgraph.IdealBMisp},
	}
	f, err := ComputeFull(a, cats, "twolf")
	if err != nil {
		t.Fatal(err)
	}
	s := StackedBar(f, 40)
	if !strings.Contains(s, "twolf") || !strings.Contains(s, "ideal") {
		t.Fatalf("bar output:\n%s", s)
	}
	if !strings.Contains(s, "#") {
		t.Fatal("no bars rendered")
	}
}
