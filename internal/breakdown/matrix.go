package breakdown

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"icost/internal/cost"
	"icost/internal/depgraph"
)

// Matrix is the all-pairs interaction-cost table over the base
// categories: diagonal entries are individual costs, off-diagonal
// entries pairwise icosts. It generalizes the single focus row of a
// Table 4 breakdown to every pair at once — the "which resources
// interact with which" overview an architect scans first.
type Matrix struct {
	Name string
	Cats []Category
	// Pct[i][j] is icost(cat i, cat j) for i != j and cost(cat i) on
	// the diagonal, as percent of execution time.
	Pct [][]float64
	// TotalCycles is the base execution time.
	TotalCycles int64
}

// ComputeMatrix builds the all-pairs table (k^2/2 + k cost queries,
// all memoized by the analyzer). It is the uncancellable form of
// ComputeMatrixCtx for CLI and test callers.
//
//lint:ignore ctxflow infallible wrapper over ComputeMatrixCtx; a background ctx cannot cancel
func ComputeMatrix(a *cost.Analyzer, cats []Category, name string) (*Matrix, error) {
	return ComputeMatrixCtx(context.Background(), a, cats, name)
}

// ComputeMatrixCtx is ComputeMatrix with cancellation. The subset
// unions every cell needs — each category and each pairwise OR — are
// gathered up front, deduplicated, and evaluated through the
// analyzer's batched graph walk (which fans out across GOMAXPROCS
// and aborts mid-batch when ctx is done); the cell loop below then
// assembles percentages from memoized values.
func ComputeMatrixCtx(ctx context.Context, a *cost.Analyzer, cats []Category, name string) (*Matrix, error) {
	total := a.BaseTime()
	if total <= 0 {
		return nil, fmt.Errorf("breakdown: empty execution")
	}
	k := len(cats)
	masks := make([]depgraph.Flags, 0, k+k*(k-1)/2)
	for i := 0; i < k; i++ {
		masks = append(masks, cats[i].Flags)
		for j := 0; j < i; j++ {
			masks = append(masks, cats[i].Flags|cats[j].Flags)
		}
	}
	if err := a.PrewarmCtx(ctx, masks); err != nil {
		return nil, err
	}
	m := &Matrix{Name: name, Cats: cats, TotalCycles: total}
	m.Pct = make([][]float64, k)
	pct := func(cy int64) float64 { return 100 * float64(cy) / float64(total) }
	for i := 0; i < k; i++ {
		m.Pct[i] = make([]float64, k)
		cy, err := a.CostCtx(ctx, cats[i].Flags)
		if err != nil {
			return nil, err
		}
		m.Pct[i][i] = pct(cy)
		for j := 0; j < i; j++ {
			ic, err := a.ICostCtx(ctx, cats[i].Flags, cats[j].Flags)
			if err != nil {
				return nil, err
			}
			m.Pct[i][j] = pct(ic)
			m.Pct[j][i] = m.Pct[i][j]
		}
	}
	return m, nil
}

// StrongestSerial returns the most negative off-diagonal pair, the
// "best mitigation lever" (see paper Section 4.1).
func (m *Matrix) StrongestSerial() (a, b Category, pct float64) {
	for i := range m.Cats {
		for j := 0; j < i; j++ {
			if m.Pct[i][j] < pct {
				pct = m.Pct[i][j]
				a, b = m.Cats[i], m.Cats[j]
			}
		}
	}
	return a, b, pct
}

// StrongestParallel returns the most positive off-diagonal pair —
// cycles recoverable only by a combined optimization.
func (m *Matrix) StrongestParallel() (a, b Category, pct float64) {
	for i := range m.Cats {
		for j := 0; j < i; j++ {
			if m.Pct[i][j] > pct {
				pct = m.Pct[i][j]
				a, b = m.Cats[i], m.Cats[j]
			}
		}
	}
	return a, b, pct
}

// String renders the matrix with categories on both axes; the
// diagonal (individual costs) is bracketed.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: interaction-cost matrix (%% of %d cycles; [diagonal] = individual cost)\n",
		m.Name, m.TotalCycles)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "")
	for _, c := range m.Cats {
		fmt.Fprintf(w, "\t%s", c.Name)
	}
	fmt.Fprintln(w, "\t")
	for i, c := range m.Cats {
		fmt.Fprint(w, c.Name)
		for j := range m.Cats {
			if i == j {
				fmt.Fprintf(w, "\t[%.1f]", m.Pct[i][j])
			} else {
				fmt.Fprintf(w, "\t%.1f", m.Pct[i][j])
			}
		}
		fmt.Fprintln(w, "\t")
	}
	w.Flush()
	return b.String()
}

// Naive is the traditional CPI breakdown the paper's Figure 1a
// critiques: blame each event class for (event count x event
// latency) cycles, independently, with no notion of overlap. Its
// rows generally do NOT sum to total execution time — the overlap
// dilemma the interaction-cost method resolves.
type Naive struct {
	Name string
	// Rows are per-category cycle charges.
	Rows []Row
	// TotalCycles is the real execution time; AccountedPct is the sum
	// of row percentages (over or under 100%).
	TotalCycles  int64
	AccountedPct float64
}

// ComputeNaive reproduces the counter math: for every category, sum
// over instructions the latency that category contributes (the EP/DD
// latency that vanishes when the category is idealized, plus the
// recovery latency per mispredict for the bmisp category). No
// overlap is considered, so the rows over- or under-account.
func ComputeNaive(a *cost.Analyzer, cats []Category, name string) (*Naive, error) {
	g := a.Graph()
	if g == nil {
		return nil, fmt.Errorf("breakdown: naive breakdown requires a graph-backed analyzer")
	}
	total := a.BaseTime()
	if total <= 0 {
		return nil, fmt.Errorf("breakdown: empty execution")
	}
	n := &Naive{Name: name, TotalCycles: total}
	for _, c := range cats {
		var cy int64
		for i := 0; i < g.Len(); i++ {
			// The category's latency contribution at instruction i is
			// the EP/DD latency that disappears when the category is
			// idealized — exactly what a counter-based "events x
			// latency" estimate charges.
			cy += g.EPLat(i, 0) - g.EPLat(i, c.Flags)
			cy += g.DDLat(i, 0) - g.DDLat(i, c.Flags)
			if g.Info[i].Mispredict && c.Flags&depgraph.IdealBMisp != 0 {
				// Charge the recovery latency to the bmisp category.
				cy += int64(g.Cfg.BranchRecovery)
			}
		}
		pctV := 100 * float64(cy) / float64(total)
		n.Rows = append(n.Rows, Row{Label: c.Name, Cycles: cy, Percent: pctV})
		n.AccountedPct += pctV
	}
	return n, nil
}

// String renders the naive breakdown with its accounting error.
func (n *Naive) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: traditional count-x-latency breakdown (%d cycles)\n", n.Name, n.TotalCycles)
	for _, r := range n.Rows {
		fmt.Fprintf(&b, "  %8s %8d cycles %6.1f%%\n", r.Label, r.Cycles, r.Percent)
	}
	fmt.Fprintf(&b, "  accounted: %.1f%% of execution time (the overlap dilemma: not 100%%)\n",
		n.AccountedPct)
	return b.String()
}
