package breakdown

import (
	"context"
	"errors"
	"strings"
	"testing"

	"icost/internal/cost"
	"icost/internal/depgraph"
)

func TestMatrixSymmetricAndConsistent(t *testing.T) {
	a := analyzer(t, "gzip", 8000)
	cats := BaseCategories()
	m, err := ComputeMatrix(a, cats, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	k := len(cats)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if m.Pct[i][j] != m.Pct[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
		// Diagonal equals the analyzer's individual cost.
		want := 100 * float64(a.Cost(cats[i].Flags)) / float64(a.BaseTime())
		if m.Pct[i][i] != want {
			t.Fatalf("diagonal %d = %v, want %v", i, m.Pct[i][i], want)
		}
	}
	// Off-diagonal equals the pairwise icost.
	ic := a.MustICost(cats[0].Flags, cats[1].Flags)
	want := 100 * float64(ic) / float64(a.BaseTime())
	if m.Pct[0][1] != want {
		t.Fatalf("pair (0,1) = %v, want %v", m.Pct[0][1], want)
	}
}

func TestMatrixExtremes(t *testing.T) {
	a := analyzer(t, "gzip", 8000)
	m, err := ComputeMatrix(a, BaseCategories(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	sa, sb, sp := m.StrongestSerial()
	if sp >= 0 {
		t.Skip("no serial pair on this configuration")
	}
	if sa.Name == "" || sb.Name == "" {
		t.Fatal("serial pair categories empty")
	}
	pa, pb, pp := m.StrongestParallel()
	if pp > 0 && (pa.Name == "" || pb.Name == "") {
		t.Fatal("parallel pair categories empty")
	}
	// dl1+win is expected to be the strongest serial pair on gzip.
	names := sa.Name + "+" + sb.Name
	if !strings.Contains(names, "win") && !strings.Contains(names, "shalu") {
		t.Logf("strongest serial pair %s (%.1f%%)", names, sp)
	}
}

func TestMatrixRendering(t *testing.T) {
	a := analyzer(t, "mcf", 6000)
	m, err := ComputeMatrix(a, BaseCategories()[:4], "mcf")
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	for _, want := range []string{"mcf", "dl1", "bmisp", "["} {
		if !strings.Contains(s, want) {
			t.Fatalf("matrix output missing %q:\n%s", want, s)
		}
	}
}

func TestNaiveMisaccounts(t *testing.T) {
	// The traditional breakdown must fail to account for exactly
	// 100% on an out-of-order machine with overlap: for mcf (heavy
	// overlap of misses with everything) it should over-account
	// massively.
	a := analyzer(t, "mcf", 10000)
	nv, err := ComputeNaive(a, BaseCategories(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if nv.AccountedPct > 95 && nv.AccountedPct < 105 {
		t.Fatalf("naive breakdown accounted %.1f%%, expected far from 100%%", nv.AccountedPct)
	}
	s := nv.String()
	if !strings.Contains(s, "overlap dilemma") {
		t.Fatal("missing explanation line")
	}
}

func TestNaiveChargesLatencies(t *testing.T) {
	a := analyzer(t, "gzip", 6000)
	nv, err := ComputeNaive(a, BaseCategories(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, r := range nv.Rows {
		byName[r.Label] = r.Cycles
	}
	// dl1 charge = DL1Latency per memory access; gzip does thousands.
	if byName["dl1"] <= 0 {
		t.Fatal("naive dl1 charge not positive")
	}
	// bmisp charge = recovery per mispredict.
	if byName["bmisp"] <= 0 {
		t.Fatal("naive bmisp charge not positive")
	}
	// win/bw have no per-instruction latency in the naive model.
	if byName["win"] != 0 || byName["bw"] != 0 {
		t.Fatalf("naive charged structural categories: win=%d bw=%d",
			byName["win"], byName["bw"])
	}
}

func TestNaiveRequiresGraph(t *testing.T) {
	a := cost.NewFromFunc(func(depgraph.Flags) int64 { return 100 })
	if _, err := ComputeNaive(a, BaseCategories(), "x"); err == nil {
		t.Fatal("naive accepted function-backed analyzer")
	}
}

func TestMatrixEmptyExecution(t *testing.T) {
	a := cost.NewFromFunc(func(depgraph.Flags) int64 { return 0 })
	if _, err := ComputeMatrix(a, BaseCategories(), "x"); err == nil {
		t.Fatal("matrix accepted empty execution")
	}
}

// TestMatrixCancellation: a cancelled context must abort the matrix's
// batched power-set evaluation mid-walk instead of computing all k^2
// cells.
func TestMatrixCancellation(t *testing.T) {
	a := analyzer(t, "gcc", 20000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeMatrixCtx(ctx, a, BaseCategories(), "gcc"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// And the same analyzer still answers once the pressure is off.
	if _, err := ComputeMatrix(a, BaseCategories(), "gcc"); err != nil {
		t.Fatal(err)
	}
}
