// Package cache implements the memory system of the simulated machine
// (paper Table 6): 32KB 2-way L1 instruction and data caches, a shared
// 1MB 4-way L2, a 100-cycle memory, and 64/128-entry instruction/data
// TLBs with a 30-cycle miss-handling latency.
package cache

import (
	"fmt"

	"icost/internal/isa"
)

// Level classifies where an access was satisfied.
type Level uint8

const (
	// LevelL1 is a first-level hit.
	LevelL1 Level = iota
	// LevelL2 is an L1 miss satisfied by the L2.
	LevelL2
	// LevelMem is an L2 miss satisfied by memory.
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "mem"
	default:
		return fmt.Sprintf("level?%d", uint8(l))
	}
}

// Cache is one set-associative cache with true-LRU replacement. Tags
// are line addresses; line 0 is reserved as the invalid marker, which
// is safe because no generated address maps to line 0.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	tags      []isa.Addr
	lru       []uint64
	tick      uint64

	// Accesses and Misses count since construction.
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of sizeBytes with the given associativity
// and line size (both powers of two).
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("cache: non-positive geometry")
	}
	if sizeBytes%(ways*lineBytes) != 0 {
		panic("cache: size not divisible by ways*line")
	}
	sets := sizeBytes / (ways * lineBytes)
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	if 1<<shift != lineBytes {
		panic("cache: line size not a power of two")
	}
	n := sets * ways
	return &Cache{sets: sets, ways: ways, lineShift: shift,
		tags: make([]isa.Addr, n), lru: make([]uint64, n)}
}

// Line returns the line address (tag) for addr.
func (c *Cache) Line(addr isa.Addr) isa.Addr { return addr >> c.lineShift }

func (c *Cache) setOf(line isa.Addr) int { return int(uint64(line) % uint64(c.sets)) }

// Access looks up addr, updates LRU state, and fills on miss.
// It reports whether the access hit.
func (c *Cache) Access(addr isa.Addr) bool {
	c.Accesses++
	line := c.Line(addr)
	s := c.setOf(line) * c.ways
	victim := s
	for w := 0; w < c.ways; w++ {
		if c.tags[s+w] == line {
			c.tick++
			c.lru[s+w] = c.tick
			return true
		}
		if c.tags[s+w] == 0 {
			victim = s + w
		} else if c.tags[victim] != 0 && c.lru[s+w] < c.lru[victim] {
			victim = s + w
		}
	}
	c.Misses++
	c.tick++
	c.tags[victim] = line
	c.lru[victim] = c.tick
	return false
}

// Probe reports whether addr is resident without changing any state.
func (c *Cache) Probe(addr isa.Addr) bool {
	line := c.Line(addr)
	s := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[s+w] == line {
			return true
		}
	}
	return false
}

// TLB is a fully associative translation buffer with LRU replacement.
type TLB struct {
	pageShift uint
	tags      map[isa.Addr]uint64 // page -> last-use tick
	entries   int
	tick      uint64

	// Accesses and Misses count since construction.
	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 {
		panic("tlb: non-positive geometry")
	}
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	if 1<<shift != pageBytes {
		panic("tlb: page size not a power of two")
	}
	return &TLB{pageShift: shift, tags: make(map[isa.Addr]uint64, entries), entries: entries}
}

// Access looks up the page of addr, filling (with LRU eviction) on
// miss; it reports whether the access hit.
func (t *TLB) Access(addr isa.Addr) bool {
	t.Accesses++
	page := addr >> t.pageShift
	t.tick++
	if _, ok := t.tags[page]; ok {
		t.tags[page] = t.tick
		return true
	}
	t.Misses++
	if len(t.tags) >= t.entries {
		var oldest isa.Addr
		oldestTick := ^uint64(0)
		for p, tk := range t.tags {
			if tk < oldestTick {
				oldestTick = tk
				oldest = p
			}
		}
		delete(t.tags, oldest)
	}
	t.tags[page] = t.tick
	return false
}

// Config sets the hierarchy's geometry and latencies. All latencies
// are in cycles. The zero value is invalid; use DefaultConfig.
type Config struct {
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	LineBytes        int

	// DL1Latency is the load-to-use latency of an L1 data hit. The
	// paper's baseline is 2; the Section 4.1 experiments raise it
	// to 4.
	DL1Latency int
	// L2Latency is the additional latency of an L2 hit.
	L2Latency int
	// MemLatency is the additional latency of an L2 miss.
	MemLatency int

	ITLBEntries, DTLBEntries int
	PageBytes                int
	// TLBMissLatency is added when a translation misses.
	TLBMissLatency int
}

// DefaultConfig is the Table 6 memory system.
func DefaultConfig() Config {
	return Config{
		L1ISize: 32 << 10, L1IWays: 2,
		L1DSize: 32 << 10, L1DWays: 2,
		L2Size: 1 << 20, L2Ways: 4,
		LineBytes:  64,
		DL1Latency: 2, L2Latency: 12, MemLatency: 100,
		ITLBEntries: 64, DTLBEntries: 128,
		PageBytes: 8 << 10, TLBMissLatency: 30,
	}
}

// Hierarchy is the full memory system.
type Hierarchy struct {
	cfg  Config
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		L1I:  NewCache(cfg.L1ISize, cfg.L1IWays, cfg.LineBytes),
		L1D:  NewCache(cfg.L1DSize, cfg.L1DWays, cfg.LineBytes),
		L2:   NewCache(cfg.L2Size, cfg.L2Ways, cfg.LineBytes),
		ITLB: NewTLB(cfg.ITLBEntries, cfg.PageBytes),
		DTLB: NewTLB(cfg.DTLBEntries, cfg.PageBytes),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// DataResult describes one data access.
type DataResult struct {
	// Level is where the access was satisfied.
	Level Level
	// Latency is the total access latency in cycles, including the
	// L1 access and any TLB-miss penalty.
	Latency int
	// TLBMiss reports whether the translation missed.
	TLBMiss bool
	// Line is the 64-byte line address, for cache-block-sharing (PP
	// edge) tracking in the graph builder.
	Line isa.Addr
}

// DataAccess performs a load or store lookup.
func (h *Hierarchy) DataAccess(addr isa.Addr) DataResult {
	r := DataResult{Line: h.L1D.Line(addr), Latency: h.cfg.DL1Latency, Level: LevelL1}
	if !h.DTLB.Access(addr) {
		r.TLBMiss = true
		r.Latency += h.cfg.TLBMissLatency
	}
	if h.L1D.Access(addr) {
		return r
	}
	r.Level = LevelL2
	r.Latency += h.cfg.L2Latency
	if h.L2.Access(addr) {
		return r
	}
	r.Level = LevelMem
	r.Latency += h.cfg.MemLatency
	return r
}

// InstResult describes one instruction fetch.
type InstResult struct {
	// Level is where the fetch was satisfied.
	Level Level
	// Penalty is the extra fetch latency beyond a pipelined L1 hit
	// (zero for an L1 hit), including any ITLB-miss penalty.
	Penalty int
	// TLBMiss reports whether the translation missed.
	TLBMiss bool
}

// InstAccess performs an instruction fetch lookup.
func (h *Hierarchy) InstAccess(pc isa.Addr) InstResult {
	var r InstResult
	if !h.ITLB.Access(pc) {
		r.TLBMiss = true
		r.Penalty += h.cfg.TLBMissLatency
	}
	if h.L1I.Access(pc) {
		return r
	}
	r.Level = LevelL2
	r.Penalty += h.cfg.L2Latency
	if h.L2.Access(pc) {
		return r
	}
	r.Level = LevelMem
	r.Penalty += h.cfg.MemLatency
	return r
}
