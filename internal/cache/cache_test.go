package cache

import (
	"testing"
	"testing/quick"

	"icost/internal/isa"
	"icost/internal/rng"
)

func TestHitAfterFill(t *testing.T) {
	c := NewCache(1024, 2, 64)
	a := isa.Addr(0x10000)
	if c.Access(a) {
		t.Fatal("cold access hit")
	}
	if !c.Access(a) {
		t.Fatal("second access missed")
	}
	if !c.Access(a + 63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(a + 64) {
		t.Fatal("next-line access hit")
	}
}

func TestProbeDoesNotFill(t *testing.T) {
	c := NewCache(1024, 2, 64)
	a := isa.Addr(0x10000)
	if c.Probe(a) {
		t.Fatal("probe of empty cache hit")
	}
	if c.Access(a) {
		t.Fatal("probe filled the cache")
	}
	if !c.Probe(a) {
		t.Fatal("probe after fill missed")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 1 set (128B cache, 64B lines).
	c := NewCache(128, 2, 64)
	a, b, d := isa.Addr(0x10000), isa.Addr(0x20000), isa.Addr(0x30000)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(d) {
		t.Fatal("filled line absent")
	}
}

func TestSetIndexing(t *testing.T) {
	// 2 sets, 1 way: lines alternate sets by line-address parity.
	c := NewCache(128, 1, 64)
	even, odd := isa.Addr(0x10000), isa.Addr(0x10040)
	c.Access(even)
	c.Access(odd)
	if !c.Probe(even) || !c.Probe(odd) {
		t.Fatal("different sets interfered")
	}
}

func TestCounters(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Access(0x1000)
	c.Access(0x1000)
	c.Access(0x2000)
	if c.Accesses != 3 || c.Misses != 2 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { NewCache(0, 2, 64) },
		func() { NewCache(1000, 2, 64) }, // not divisible
		func() { NewCache(1024, 2, 48) }, // non-power-of-two line
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWorkingSetFitsNeverMisses(t *testing.T) {
	c := NewCache(32<<10, 2, 64)
	r := rng.New(1)
	// Touch every line once, then random accesses must all hit.
	// Use a 16KB region (half capacity) to avoid conflict misses
	// dominating in a 2-way cache.
	const region = 16 << 10
	for off := 0; off < region; off += 64 {
		c.Access(isa.Addr(0x100000 + off))
	}
	missBefore := c.Misses
	for i := 0; i < 10000; i++ {
		c.Access(isa.Addr(0x100000 + r.Intn(region)))
	}
	extra := c.Misses - missBefore
	if extra > 50 { // allow a handful of conflict misses
		t.Fatalf("%d misses on resident working set", extra)
	}
}

func TestHugeWorkingSetMissesOften(t *testing.T) {
	c := NewCache(32<<10, 2, 64)
	r := rng.New(2)
	const region = 16 << 20
	for i := 0; i < 20000; i++ {
		c.Access(isa.Addr(0x100000 + r.Intn(region)))
	}
	rate := float64(c.Misses) / float64(c.Accesses)
	if rate < 0.9 {
		t.Fatalf("miss rate %.2f on 16MB random working set", rate)
	}
}

func TestTLBHitAfterFill(t *testing.T) {
	tl := NewTLB(4, 8<<10)
	if tl.Access(0x10000) {
		t.Fatal("cold TLB hit")
	}
	if !tl.Access(0x10000 + 8191) {
		t.Fatal("same-page access missed")
	}
	if tl.Access(0x10000 + 8192) {
		t.Fatal("next-page access hit")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tl := NewTLB(2, 8<<10)
	p := func(i int) isa.Addr { return isa.Addr(i * 8 << 10) }
	tl.Access(p(1))
	tl.Access(p(2))
	tl.Access(p(1)) // 1 is MRU
	tl.Access(p(3)) // evicts 2
	if tl.Access(p(1)) != true {
		t.Fatal("MRU page evicted")
	}
	if tl.Access(p(2)) {
		t.Fatal("LRU page survived")
	}
}

func TestHierarchyDataLevels(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	cfg := h.Config()
	a := isa.Addr(0x10000000)

	r := h.DataAccess(a)
	if r.Level != LevelMem {
		t.Fatalf("cold access level %v", r.Level)
	}
	wantCold := cfg.DL1Latency + cfg.L2Latency + cfg.MemLatency + cfg.TLBMissLatency
	if r.Latency != wantCold {
		t.Fatalf("cold latency %d, want %d", r.Latency, wantCold)
	}
	if !r.TLBMiss {
		t.Fatal("cold access did not miss TLB")
	}

	r = h.DataAccess(a)
	if r.Level != LevelL1 || r.Latency != cfg.DL1Latency || r.TLBMiss {
		t.Fatalf("warm access %+v", r)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	cfg := h.Config()
	a := isa.Addr(0x10000000)
	h.DataAccess(a) // fill L1+L2
	// Evict from L1 (2-way, 256 sets): two more lines in the same set.
	set := h.L1D.setOf(h.L1D.Line(a))
	filled := 0
	for i := 1; filled < 2; i++ {
		b := a + isa.Addr(i*cfg.L1DSize/cfg.L1DWays)
		if h.L1D.setOf(h.L1D.Line(b)) == set {
			h.DataAccess(b)
			filled++
		}
	}
	r := h.DataAccess(a)
	if r.Level != LevelL2 {
		t.Fatalf("expected L2 hit, got %v (latency %d)", r.Level, r.Latency)
	}
	if r.Latency != cfg.DL1Latency+cfg.L2Latency {
		t.Fatalf("L2 hit latency %d", r.Latency)
	}
}

func TestHierarchyInstAccess(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	cfg := h.Config()
	pc := isa.Addr(0x1000)
	r := h.InstAccess(pc)
	if r.Level != LevelMem || !r.TLBMiss {
		t.Fatalf("cold fetch %+v", r)
	}
	if r.Penalty != cfg.L2Latency+cfg.MemLatency+cfg.TLBMissLatency {
		t.Fatalf("cold fetch penalty %d", r.Penalty)
	}
	r = h.InstAccess(pc)
	if r.Level != LevelL1 || r.Penalty != 0 {
		t.Fatalf("warm fetch %+v", r)
	}
}

func TestLineIsStable(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	a := isa.Addr(0x10000000)
	r1 := h.DataAccess(a)
	r2 := h.DataAccess(a + 32)
	if r1.Line != r2.Line {
		t.Fatal("same-line accesses got different line ids")
	}
	r3 := h.DataAccess(a + 64)
	if r3.Line == r1.Line {
		t.Fatal("different lines share an id")
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "mem" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level empty")
	}
}

func TestQuickProbeNeverChangesState(t *testing.T) {
	c := NewCache(4096, 4, 64)
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		c.Access(isa.Addr(0x1000 + r.Intn(1<<16)))
	}
	f := func(raw uint32) bool {
		a := isa.Addr(raw)
		before := c.Probe(a)
		after := c.Probe(a)
		return before == after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAccessThenProbeHits(t *testing.T) {
	f := func(raws []uint32) bool {
		c := NewCache(8192, 2, 64)
		for _, raw := range raws {
			a := isa.Addr(raw) + 64 // avoid line 0 (reserved invalid)
			c.Access(a)
			if !c.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
