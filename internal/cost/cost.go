// Package cost implements the paper's cost and interaction-cost
// (icost) analysis (Section 2) on top of the dependence-graph model.
//
// The cost of a set of events S is the speedup from idealizing S:
//
//	cost(S) = t - t(S)
//
// where t is the base execution time and t(S) the time with S
// idealized. The interaction cost of event sets S1..Sk generalizes
//
//	icost({a,b}) = cost({a,b}) - cost(a) - cost(b)
//
// recursively: icost(U) = cost(U) - Σ icost(V) over proper subsets V,
// which by Möbius inversion equals
//
//	icost(U) = Σ_{V ⊆ U} (-1)^{|U|-|V|} cost(V).
//
// A positive icost is a parallel interaction (speedup available only
// by optimizing the sets together), a negative icost a serial
// interaction (optimizing either one alone captures shared cycles),
// and zero means the sets are independent.
//
// Event sets are expressed as depgraph idealizations: a whole
// category (e.g. all data-cache misses) is a depgraph.Flags value; an
// arbitrary dynamic subset (e.g. the misses of one static load) is a
// per-instruction mask. Costs come from graph re-evaluation — the
// paper's efficient alternative to 2^n simulations.
package cost

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"icost/internal/depgraph"
	"icost/internal/isa"
)

// Analyzer computes costs over one microexecution, memoizing
// whole-category queries (the working set of a breakdown is the
// power set of eight flags, so memoization turns the 2^n cost
// queries of a full accounting into at most 256 evaluations).
//
// The evaluation backend is pluggable: New evaluates idealizations on
// a dependence graph (the paper's efficient method); NewFromFunc lets
// package multisim evaluate them by re-running idealized simulations
// (the paper's expensive baseline). Everything downstream — icosts,
// breakdowns, experiments — is agnostic to the backend.
type Analyzer struct {
	g    *depgraph.Graph // nil for function-backed analyzers
	eval func(context.Context, depgraph.Flags) (int64, error)
	base int64

	mu   sync.Mutex
	memo map[depgraph.Flags]int64
}

// New builds a graph-backed analyzer; the base (unidealized) time is
// computed immediately.
func New(g *depgraph.Graph) *Analyzer {
	return newAnalyzer(g, func(ctx context.Context, f depgraph.Flags) (int64, error) {
		return g.ExecTimeCtx(ctx, depgraph.Ideal{Global: f})
	})
}

// NewFromFunc builds an analyzer whose execution times come from
// eval — e.g. idealized re-simulation. Event-set methods that need a
// graph (CostSet, ICostSets) panic on such an analyzer. Cancellation
// is checked between evaluations but cannot interrupt eval itself.
func NewFromFunc(eval func(depgraph.Flags) int64) *Analyzer {
	return newAnalyzer(nil, func(ctx context.Context, f depgraph.Flags) (int64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return eval(f), nil
	})
}

func newAnalyzer(g *depgraph.Graph, eval func(context.Context, depgraph.Flags) (int64, error)) *Analyzer {
	a := &Analyzer{g: g, eval: eval, memo: map[depgraph.Flags]int64{}}
	a.base, _ = eval(context.Background(), 0)
	a.memo[0] = a.base
	return a
}

// Graph returns the underlying graph, or nil for a function-backed
// analyzer.
func (a *Analyzer) Graph() *depgraph.Graph { return a.g }

// BaseTime returns the unidealized execution time in cycles.
func (a *Analyzer) BaseTime() int64 { return a.base }

// ExecTime returns the execution time with the given categories
// idealized (memoized).
// ExecTime is safe for concurrent use; the underlying evaluation may
// run more than once on a race, which is harmless (it is pure).
func (a *Analyzer) ExecTime(f depgraph.Flags) int64 {
	t, _ := a.ExecTimeCtx(context.Background(), f)
	return t
}

// ExecTimeCtx is ExecTime with cancellation: a graph-backed
// evaluation aborts mid-walk when ctx is done. Only successful
// evaluations are memoized, so a cancelled query never poisons the
// cache for later callers.
func (a *Analyzer) ExecTimeCtx(ctx context.Context, f depgraph.Flags) (int64, error) {
	a.mu.Lock()
	t, ok := a.memo[f]
	a.mu.Unlock()
	if ok {
		return t, nil
	}
	t, err := a.eval(ctx, f)
	if err != nil {
		return 0, err
	}
	a.mu.Lock()
	a.memo[f] = t
	a.mu.Unlock()
	return t, nil
}

// Cost returns cost(f) = t - t(f) for a union of whole categories.
func (a *Analyzer) Cost(f depgraph.Flags) int64 {
	return a.base - a.ExecTime(f)
}

// CostCtx is Cost with cancellation.
func (a *Analyzer) CostCtx(ctx context.Context, f depgraph.Flags) (int64, error) {
	t, err := a.ExecTimeCtx(ctx, f)
	if err != nil {
		return 0, err
	}
	return a.base - t, nil
}

// ICost returns the interaction cost of the given category sets.
// Each argument is one event set; sets must be disjoint (no shared
// flag bits), since overlapping sets make the power-set accounting
// ill-defined. With one argument it degenerates to Cost.
func (a *Analyzer) ICost(sets ...depgraph.Flags) (int64, error) {
	return a.ICostCtx(context.Background(), sets...)
}

// ICostCtx is ICost with cancellation; the 2^k cost evaluations abort
// as soon as ctx is done.
func (a *Analyzer) ICostCtx(ctx context.Context, sets ...depgraph.Flags) (int64, error) {
	k := len(sets)
	if k == 0 {
		return 0, nil
	}
	var seen depgraph.Flags
	for _, s := range sets {
		if s == 0 {
			return 0, fmt.Errorf("cost: empty event set")
		}
		if seen&s != 0 {
			return 0, fmt.Errorf("cost: overlapping event sets %v", sets)
		}
		seen |= s
	}
	// Möbius sum over subsets of {1..k}.
	var total int64
	for m := 0; m < 1<<k; m++ {
		var union depgraph.Flags
		for j := 0; j < k; j++ {
			if m&(1<<j) != 0 {
				union |= sets[j]
			}
		}
		term, err := a.CostCtx(ctx, union)
		if err != nil {
			return 0, err
		}
		if (k-bits.OnesCount(uint(m)))%2 == 1 {
			term = -term
		}
		total += term
	}
	return total, nil
}

// MustICost is ICost that panics on misuse (for internal callers that
// construct sets programmatically).
func (a *Analyzer) MustICost(sets ...depgraph.Flags) int64 {
	v, err := a.ICost(sets...)
	if err != nil {
		panic(err)
	}
	return v
}

// CostSet returns the cost of an arbitrary event set expressed as an
// idealization (possibly per-instruction). Not memoized. Panics on a
// function-backed analyzer, which has no graph to evaluate.
func (a *Analyzer) CostSet(id depgraph.Ideal) int64 {
	if a.g == nil {
		panic("cost: CostSet requires a graph-backed analyzer")
	}
	return a.base - a.g.ExecTime(id)
}

// ICostSets returns the interaction cost of arbitrary event sets.
// The union of sets is the OR of their masks. Cost grows as 2^k graph
// evaluations; intended for small k (pairs and triples).
func (a *Analyzer) ICostSets(sets ...depgraph.Ideal) int64 {
	if a.g == nil {
		panic("cost: ICostSets requires a graph-backed analyzer")
	}
	k := len(sets)
	if k == 0 {
		return 0
	}
	n := a.g.Len()
	var total int64
	for m := 0; m < 1<<k; m++ {
		var id depgraph.Ideal
		for j := 0; j < k; j++ {
			if m&(1<<j) == 0 {
				continue
			}
			s := sets[j]
			id.Global |= s.Global
			if s.PerInst != nil {
				if id.PerInst == nil {
					id.PerInst = make([]depgraph.Flags, n)
				}
				for i, f := range s.PerInst {
					id.PerInst[i] |= f
				}
			}
		}
		term := a.CostSet(id)
		if (k-bits.OnesCount(uint(m)))%2 == 1 {
			term = -term
		}
		total += term
	}
	return total
}

// Interaction classifies an icost value per Section 2.2.
type Interaction int

const (
	// Serial: negative interaction — events are in series with each
	// other and parallel with something else.
	Serial Interaction = -1
	// Independent: zero interaction.
	Independent Interaction = 0
	// Parallel: positive interaction — speedup available only by
	// optimizing the sets together.
	Parallel Interaction = 1
)

// String names the interaction kind.
func (x Interaction) String() string {
	switch {
	case x < 0:
		return "serial"
	case x > 0:
		return "parallel"
	default:
		return "independent"
	}
}

// Classify maps an icost (in cycles) to its interaction kind, using
// tolerance cycles as the independence band.
func Classify(icost, tolerance int64) Interaction {
	switch {
	case icost > tolerance:
		return Parallel
	case icost < -tolerance:
		return Serial
	default:
		return Independent
	}
}

// EventSet builds a per-instruction event set: flags applied to every
// instruction i for which pred(i) is true. Use it for event groupings
// such as "all dynamic misses of one static load".
func EventSet(g *depgraph.Graph, flags depgraph.Flags, pred func(i int) bool) depgraph.Ideal {
	per := make([]depgraph.Flags, g.Len())
	for i := range per {
		if pred(i) {
			per[i] = flags
		}
	}
	return depgraph.Ideal{PerInst: per}
}

// StaticLoadMisses builds the event set "idealize the data-cache
// misses of static instruction sIdx" — the unit a software-prefetching
// optimizer reasons about (paper Sections 1-2).
func StaticLoadMisses(g *depgraph.Graph, sIdx int32) depgraph.Ideal {
	return EventSet(g, depgraph.IdealDMiss, func(i int) bool {
		return g.Info[i].SIdx == sIdx && g.Info[i].Op == isa.OpLoad
	})
}
