// Package cost implements the paper's cost and interaction-cost
// (icost) analysis (Section 2) on top of the dependence-graph model.
//
// The cost of a set of events S is the speedup from idealizing S:
//
//	cost(S) = t - t(S)
//
// where t is the base execution time and t(S) the time with S
// idealized. The interaction cost of event sets S1..Sk generalizes
//
//	icost({a,b}) = cost({a,b}) - cost(a) - cost(b)
//
// recursively: icost(U) = cost(U) - Σ icost(V) over proper subsets V,
// which by Möbius inversion equals
//
//	icost(U) = Σ_{V ⊆ U} (-1)^{|U|-|V|} cost(V).
//
// A positive icost is a parallel interaction (speedup available only
// by optimizing the sets together), a negative icost a serial
// interaction (optimizing either one alone captures shared cycles),
// and zero means the sets are independent.
//
// Event sets are expressed as depgraph idealizations: a whole
// category (e.g. all data-cache misses) is a depgraph.Flags value; an
// arbitrary dynamic subset (e.g. the misses of one static load) is a
// per-instruction mask. Costs come from graph re-evaluation — the
// paper's efficient alternative to 2^n simulations.
package cost

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"icost/internal/depgraph"
	"icost/internal/isa"
)

// Analyzer computes costs over one microexecution, memoizing
// whole-category queries (the working set of a breakdown is the
// power set of eight flags, so memoization turns the 2^n cost
// queries of a full accounting into at most 256 evaluations).
// Concurrent misses for the same flags are single-flighted: one
// goroutine evaluates, the rest wait on its result. Power-set
// workloads (ICostCtx, breakdowns, matrices) collect their uncached
// terms and evaluate them through the graph's batched multi-lane
// walk instead of one scalar walk per term.
//
// The evaluation backend is pluggable: New evaluates idealizations on
// a dependence graph (the paper's efficient method); NewFromFunc lets
// package multisim evaluate them by re-running idealized simulations
// (the paper's expensive baseline). Everything downstream — icosts,
// breakdowns, experiments — is agnostic to the backend; batching
// degrades to sequential evaluation on a function backend.
type Analyzer struct {
	g    *depgraph.Graph // nil for function-backed analyzers
	eval func(context.Context, depgraph.Flags) (int64, error)
	// evalBatch evaluates many flag sets in one call; PrewarmCtx
	// routes through it when set. Graph-backed analyzers use the
	// multi-lane graph walk; function-backed ones may supply their
	// own (multisim fans re-simulations over a worker pool).
	evalBatch func(context.Context, []depgraph.Flags) ([]int64, error)

	mu      sync.Mutex
	memo    map[depgraph.Flags]int64
	flight  map[depgraph.Flags]*evalFlight
	setMemo map[[sha256.Size]byte]int64
	// scaledMemo memoizes global parametric idealizations by flags
	// plus canonical scale vector — the α-aware sibling of memo.
	// Misses are batch-evaluated (SensitivityCtx) or evaluated inline
	// (execTimeSet); concurrent misses may duplicate a walk but always
	// store identical values, so no flight tracking is needed.
	scaledMemo map[scaledKey]int64
	onBatch    func(lanes int)
}

// scaledKey is the memo identity of a global parametric idealization:
// the selected categories plus the canonical scale vector (entries of
// unselected categories zeroed, values clamped), so two idealizations
// differing only in scale never collide and two differing only on
// ignored entries always coincide.
type scaledKey struct {
	f depgraph.Flags
	s depgraph.ScaleVec
}

// evalFlight is one in-progress evaluation shared by every goroutine
// that missed the memo for the same flags.
type evalFlight struct {
	done chan struct{}
	t    int64
	err  error
}

// New builds a graph-backed analyzer. The base (unidealized) time is
// evaluated lazily — flags 0 is an ordinary memo entry, so when the
// first query is a power-set prewarm the base rides the same batched
// walk as the other subset unions instead of costing a scalar walk
// up front.
func New(g *depgraph.Graph) *Analyzer {
	a := newAnalyzer(g, func(ctx context.Context, f depgraph.Flags) (int64, error) {
		return g.ExecTimeCtx(ctx, depgraph.Ideal{Global: f})
	})
	a.evalBatch = func(ctx context.Context, flags []depgraph.Flags) ([]int64, error) {
		ids := make([]depgraph.Ideal, len(flags))
		for i, f := range flags {
			ids[i] = depgraph.Ideal{Global: f}
		}
		return g.EvalBatch(ctx, ids)
	}
	return a
}

// NewFromFunc builds an analyzer whose execution times come from
// eval — e.g. idealized re-simulation. Event-set methods that need a
// graph (CostSet, ICostSets) panic on such an analyzer. Cancellation
// is checked between evaluations but cannot interrupt eval itself.
func NewFromFunc(eval func(depgraph.Flags) int64) *Analyzer {
	return newAnalyzer(nil, func(ctx context.Context, f depgraph.Flags) (int64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return eval(f), nil
	})
}

// NewFromBatchFunc is NewFromFunc plus a batch evaluator: PrewarmCtx
// hands evalBatch the full list of missing flag sets in one call, so
// a backend with internal parallelism (multisim's re-simulation
// worker pool) can fan the evaluations out. evalBatch must return one
// time per flag set, in order; the scalar eval remains the fallback
// for one-off queries.
func NewFromBatchFunc(eval func(depgraph.Flags) int64,
	evalBatch func(context.Context, []depgraph.Flags) ([]int64, error)) *Analyzer {
	a := newAnalyzer(nil, func(ctx context.Context, f depgraph.Flags) (int64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return eval(f), nil
	})
	a.evalBatch = evalBatch
	return a
}

func newAnalyzer(g *depgraph.Graph, eval func(context.Context, depgraph.Flags) (int64, error)) *Analyzer {
	return &Analyzer{
		g: g, eval: eval,
		memo:       map[depgraph.Flags]int64{},
		flight:     map[depgraph.Flags]*evalFlight{},
		setMemo:    map[[sha256.Size]byte]int64{},
		scaledMemo: map[scaledKey]int64{},
	}
}

// SetBatchObserver installs a hook invoked with the lane count of
// every batched graph evaluation the analyzer issues — the engine
// uses it to export a batch-size distribution. Install it before the
// analyzer is shared between goroutines.
func (a *Analyzer) SetBatchObserver(fn func(lanes int)) {
	a.mu.Lock()
	a.onBatch = fn
	a.mu.Unlock()
}

// Graph returns the underlying graph, or nil for a function-backed
// analyzer.
func (a *Analyzer) Graph() *depgraph.Graph { return a.g }

// BaseTime returns the unidealized execution time in cycles
// (memoized after the first call).
func (a *Analyzer) BaseTime() int64 { return a.ExecTime(0) }

// ExecTime returns the execution time with the given categories
// idealized (memoized). Safe for concurrent use.
//
//lint:ignore ctxflow infallible wrapper over ExecTimeCtx; a background ctx cannot cancel
func (a *Analyzer) ExecTime(f depgraph.Flags) int64 {
	t, _ := a.ExecTimeCtx(context.Background(), f)
	return t
}

// ExecTimeCtx is ExecTime with cancellation: a graph-backed
// evaluation aborts mid-walk when ctx is done. Only successful
// evaluations are memoized, so a cancelled query never poisons the
// cache for later callers. Concurrent misses for the same flags are
// single-flighted: one goroutine runs the evaluation, the others
// wait on it (a waiter whose own ctx expires first returns its
// ctx.Err(); if the leader fails, each live waiter retries).
func (a *Analyzer) ExecTimeCtx(ctx context.Context, f depgraph.Flags) (int64, error) {
	for {
		a.mu.Lock()
		if t, ok := a.memo[f]; ok {
			a.mu.Unlock()
			return t, nil
		}
		if fl, ok := a.flight[f]; ok {
			a.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			if fl.err == nil {
				return fl.t, nil
			}
			// The leader failed — typically its own cancellation.
			// Retry with our ctx rather than inheriting the error.
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			continue
		}
		fl := &evalFlight{done: make(chan struct{})}
		a.flight[f] = fl
		a.mu.Unlock()

		t, err := a.eval(ctx, f)
		a.mu.Lock()
		delete(a.flight, f)
		if err == nil {
			a.memo[f] = t
		}
		a.mu.Unlock()
		fl.t, fl.err = t, err
		close(fl.done)
		return t, err
	}
}

// PrewarmCtx memoizes every listed mask, evaluating the not-yet-known
// ones in one batched multi-lane graph walk (2-8x fewer passes over
// the graph metadata than mask-by-mask scalar walks). Duplicates are
// collapsed; masks already memoized or in flight elsewhere are not
// re-evaluated. On a function-backed analyzer without a batch
// evaluator it degrades to sequential evaluation.
func (a *Analyzer) PrewarmCtx(ctx context.Context, masks []depgraph.Flags) error {
	if a.evalBatch == nil {
		for _, f := range masks {
			if _, err := a.ExecTimeCtx(ctx, f); err != nil {
				return err
			}
		}
		return nil
	}
	a.mu.Lock()
	onBatch := a.onBatch
	seen := make(map[depgraph.Flags]bool, len(masks))
	var lead []depgraph.Flags // masks this call evaluates
	var flights []*evalFlight // their flight entries, same order
	var wait []depgraph.Flags // masks some other goroutine is evaluating
	for _, f := range masks {
		if seen[f] {
			continue
		}
		seen[f] = true
		if _, ok := a.memo[f]; ok {
			continue
		}
		if _, ok := a.flight[f]; ok {
			wait = append(wait, f)
			continue
		}
		fl := &evalFlight{done: make(chan struct{})}
		a.flight[f] = fl
		lead = append(lead, f)
		flights = append(flights, fl)
	}
	a.mu.Unlock()

	if len(lead) > 0 {
		times, err := a.evalBatch(ctx, lead)
		if onBatch != nil {
			onBatch(len(lead))
		}
		a.mu.Lock()
		for i, f := range lead {
			delete(a.flight, f)
			if err == nil {
				a.memo[f] = times[i]
			}
		}
		a.mu.Unlock()
		for i, fl := range flights {
			if err == nil {
				fl.t = times[i]
			}
			fl.err = err
			close(fl.done)
		}
		if err != nil {
			return err
		}
	}
	for _, f := range wait {
		if _, err := a.ExecTimeCtx(ctx, f); err != nil {
			return err
		}
	}
	return nil
}

// Cost returns cost(f) = t - t(f) for a union of whole categories.
func (a *Analyzer) Cost(f depgraph.Flags) int64 {
	return a.BaseTime() - a.ExecTime(f)
}

// CostCtx is Cost with cancellation.
func (a *Analyzer) CostCtx(ctx context.Context, f depgraph.Flags) (int64, error) {
	base, err := a.ExecTimeCtx(ctx, 0)
	if err != nil {
		return 0, err
	}
	t, err := a.ExecTimeCtx(ctx, f)
	if err != nil {
		return 0, err
	}
	return base - t, nil
}

// ICost returns the interaction cost of the given category sets.
// Each argument is one event set; sets must be disjoint (no shared
// flag bits), since overlapping sets make the power-set accounting
// ill-defined. With one argument it degenerates to Cost.
//
//lint:ignore ctxflow infallible wrapper over ICostCtx; a background ctx cannot cancel
func (a *Analyzer) ICost(sets ...depgraph.Flags) (int64, error) {
	return a.ICostCtx(context.Background(), sets...)
}

// ICostCtx is ICost with cancellation; the 2^k cost evaluations abort
// as soon as ctx is done. All uncached subset unions of the Möbius
// sum are collected first and evaluated in one batched graph walk,
// then the sum is assembled from the memo.
func (a *Analyzer) ICostCtx(ctx context.Context, sets ...depgraph.Flags) (int64, error) {
	k := len(sets)
	if k == 0 {
		return 0, nil
	}
	var seen depgraph.Flags
	for _, s := range sets {
		if s == 0 {
			return 0, fmt.Errorf("cost: empty event set")
		}
		if seen&s != 0 {
			return 0, fmt.Errorf("cost: overlapping event sets %v", sets)
		}
		seen |= s
	}
	unions := make([]depgraph.Flags, 1<<k)
	for m := 1; m < 1<<k; m++ {
		var union depgraph.Flags
		for j := 0; j < k; j++ {
			if m&(1<<j) != 0 {
				union |= sets[j]
			}
		}
		unions[m] = union
	}
	if err := a.PrewarmCtx(ctx, unions); err != nil {
		return 0, err
	}
	// Möbius sum over subsets of {1..k}; every term is a memo hit.
	var total int64
	for m := 0; m < 1<<k; m++ {
		term, err := a.CostCtx(ctx, unions[m])
		if err != nil {
			return 0, err
		}
		if (k-bits.OnesCount(uint(m)))%2 == 1 {
			term = -term
		}
		total += term
	}
	return total, nil
}

// MustICost is ICost that panics on misuse (for internal callers that
// construct sets programmatically).
func (a *Analyzer) MustICost(sets ...depgraph.Flags) int64 {
	v, err := a.ICost(sets...)
	if err != nil {
		panic(err)
	}
	return v
}

// setKey is the memo identity of a per-instruction event set: a
// SHA-256 digest of the effective flag vector (Of(i) for every i)
// followed by the canonical scale entries of the categories the set
// touches. Two Ideals that idealize the same events at the same scale
// — regardless of how the flags are split between Global and PerInst,
// or what the scale vector says about untouched categories — share
// one entry; two differing only in α never collide.
func (a *Analyzer) setKey(id depgraph.Ideal) [sha256.Size]byte {
	n := a.g.Len()
	buf := make([]byte, 2*n+2*depgraph.NumFlags)
	var used depgraph.Flags
	for i := 0; i < n; i++ {
		f := id.Of(i)
		used |= f
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(f))
	}
	canon := depgraph.CanonScale(used, id.Scale)
	for b := 0; b < depgraph.NumFlags; b++ {
		binary.LittleEndian.PutUint16(buf[2*n+2*b:], uint16(canon[b]))
	}
	return sha256.Sum256(buf)
}

// execTimeSet returns the memoized execution time of an arbitrary
// event set. Global binary sets share the whole-category memo, global
// parametric sets the scaled memo; per-instruction sets are memoized
// by their effective-vector hash (which covers the scale).
func (a *Analyzer) execTimeSet(id depgraph.Ideal) int64 {
	if id.PerInst == nil {
		canon := depgraph.CanonScale(id.Global, id.Scale)
		if canon.IsZero() {
			return a.ExecTime(id.Global)
		}
		key := scaledKey{f: id.Global, s: canon}
		a.mu.Lock()
		t, ok := a.scaledMemo[key]
		a.mu.Unlock()
		if ok {
			return t
		}
		t = a.g.ExecTime(depgraph.Ideal{Global: id.Global, Scale: canon})
		a.mu.Lock()
		a.scaledMemo[key] = t
		a.mu.Unlock()
		return t
	}
	key := a.setKey(id)
	a.mu.Lock()
	t, ok := a.setMemo[key]
	a.mu.Unlock()
	if ok {
		return t
	}
	t = a.g.ExecTime(id)
	a.mu.Lock()
	a.setMemo[key] = t
	a.mu.Unlock()
	return t
}

// CostSet returns the cost of an arbitrary event set expressed as an
// idealization (possibly per-instruction), memoized by the set's
// effective flag vector. Panics on a function-backed analyzer, which
// has no graph to evaluate.
func (a *Analyzer) CostSet(id depgraph.Ideal) int64 {
	if a.g == nil {
		panic("cost: CostSet requires a graph-backed analyzer")
	}
	return a.BaseTime() - a.execTimeSet(id)
}

// ICostSets returns the interaction cost of arbitrary event sets.
// The union of sets is the OR of their masks. The 2^k subset unions
// are built up front, the uncached ones evaluated in one batched
// graph walk, and every term memoized by its effective-vector hash;
// intended for small k (pairs and triples).
func (a *Analyzer) ICostSets(sets ...depgraph.Ideal) int64 {
	if a.g == nil {
		panic("cost: ICostSets requires a graph-backed analyzer")
	}
	k := len(sets)
	if k == 0 {
		return 0
	}
	n := a.g.Len()
	unions := make([]depgraph.Ideal, 1<<k)
	for m := 1; m < 1<<k; m++ {
		var id depgraph.Ideal
		for j := 0; j < k; j++ {
			if m&(1<<j) == 0 {
				continue
			}
			s := sets[j]
			id.Global |= s.Global
			// Scales merge entry-wise by max: disjoint sets own
			// disjoint categories, so each entry comes from the one
			// set that selects it. Callers mixing scaled and binary
			// sets over the same category get the larger α.
			for b := 0; b < depgraph.NumFlags; b++ {
				if s.Scale[b] > id.Scale[b] {
					id.Scale[b] = s.Scale[b]
				}
			}
			if s.PerInst != nil {
				if id.PerInst == nil {
					id.PerInst = make([]depgraph.Flags, n)
				}
				for i, f := range s.PerInst {
					id.PerInst[i] |= f
				}
			}
		}
		unions[m] = id
	}
	a.prewarmSets(unions)
	base := a.BaseTime()
	var total int64
	for m := 0; m < 1<<k; m++ {
		term := base - a.execTimeSet(unions[m])
		if (k-bits.OnesCount(uint(m)))%2 == 1 {
			term = -term
		}
		total += term
	}
	return total
}

// prewarmSets batch-evaluates the per-instruction unions whose
// effective-vector hash is not yet memoized (global-only unions ride
// the whole-category memo via PrewarmCtx instead).
func (a *Analyzer) prewarmSets(unions []depgraph.Ideal) {
	var globals []depgraph.Flags
	var miss []depgraph.Ideal
	var keys [][sha256.Size]byte
	seen := make(map[[sha256.Size]byte]bool, len(unions))
	a.mu.Lock()
	onBatch := a.onBatch
	for _, id := range unions {
		if id.PerInst == nil {
			globals = append(globals, id.Global)
			continue
		}
		key := a.setKey(id)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := a.setMemo[key]; ok {
			continue
		}
		miss = append(miss, id)
		keys = append(keys, key)
	}
	a.mu.Unlock()
	if len(miss) > 0 {
		// Background context: ICostSets is infallible by contract, and
		// an uncancellable batch cannot fail.
		//lint:ignore ctxflow uncancellable-by-contract batch; a failure panics below
		times, err := a.g.EvalBatch(context.Background(), miss)
		if err != nil {
			panic("cost: uncancellable batch failed: " + err.Error())
		}
		if onBatch != nil {
			onBatch(len(miss))
		}
		a.mu.Lock()
		for i, key := range keys {
			a.setMemo[key] = times[i]
		}
		a.mu.Unlock()
	}
	if len(globals) > 0 {
		//lint:ignore ctxflow uncancellable-by-contract prewarm; a failure panics below
		if err := a.PrewarmCtx(context.Background(), globals); err != nil {
			panic("cost: uncancellable batch failed: " + err.Error())
		}
	}
}

// Interaction classifies an icost value per Section 2.2.
type Interaction int

const (
	// Serial: negative interaction — events are in series with each
	// other and parallel with something else.
	Serial Interaction = -1
	// Independent: zero interaction.
	Independent Interaction = 0
	// Parallel: positive interaction — speedup available only by
	// optimizing the sets together.
	Parallel Interaction = 1
)

// String names the interaction kind.
func (x Interaction) String() string {
	switch {
	case x < 0:
		return "serial"
	case x > 0:
		return "parallel"
	default:
		return "independent"
	}
}

// Classify maps an icost (in cycles) to its interaction kind, using
// tolerance cycles as the independence band.
func Classify(icost, tolerance int64) Interaction {
	switch {
	case icost > tolerance:
		return Parallel
	case icost < -tolerance:
		return Serial
	default:
		return Independent
	}
}

// EventSet builds a per-instruction event set: flags applied to every
// instruction i for which pred(i) is true. Use it for event groupings
// such as "all dynamic misses of one static load".
func EventSet(g *depgraph.Graph, flags depgraph.Flags, pred func(i int) bool) depgraph.Ideal {
	per := make([]depgraph.Flags, g.Len())
	for i := range per {
		if pred(i) {
			per[i] = flags
		}
	}
	return depgraph.Ideal{PerInst: per}
}

// StaticLoadMisses builds the event set "idealize the data-cache
// misses of static instruction sIdx" — the unit a software-prefetching
// optimizer reasons about (paper Sections 1-2).
func StaticLoadMisses(g *depgraph.Graph, sIdx int32) depgraph.Ideal {
	return EventSet(g, depgraph.IdealDMiss, func(i int) bool {
		return g.Info[i].SIdx == sIdx && g.Info[i].Op == isa.OpLoad
	})
}
