package cost

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"icost/internal/cache"
	"icost/internal/depgraph"
	"icost/internal/isa"
	"icost/internal/ooo"
	"icost/internal/rng"
	"icost/internal/workload"
)

// tinyCfg: no pipeline constants, wide machine, big window — so
// hand-built examples behave like pure dataflow.
func tinyCfg() depgraph.Config {
	return depgraph.Config{
		FetchBW: 64, CommitBW: 64,
		Window: 256, WindowIdealFactor: 20,
		DispatchToReady: 0, CompleteToCommit: 0,
		BranchRecovery: 8, WakeupExtra: 0,
		DL1Latency: 2, L2Latency: 12, MemLatency: 100, TLBMissLatency: 30,
	}
}

// parallelMisses builds the paper's Section 2.2 motivating example:
// two completely parallel cache misses. Each alone has cost zero;
// together they have large cost; the icost is large and positive.
func parallelMisses() *depgraph.Graph {
	g := depgraph.New(tinyCfg(), 2)
	g.Info[0] = depgraph.InstInfo{Op: isa.OpLoad, SIdx: 0, DataLevel: cache.LevelMem}
	g.Info[1] = depgraph.InstInfo{Op: isa.OpLoad, SIdx: 1, DataLevel: cache.LevelMem}
	return g
}

func TestParallelInteraction(t *testing.T) {
	a := New(parallelMisses())
	m0 := EventSet(a.Graph(), depgraph.IdealDMiss, func(i int) bool { return i == 0 })
	m1 := EventSet(a.Graph(), depgraph.IdealDMiss, func(i int) bool { return i == 1 })

	if c := a.CostSet(m0); c != 0 {
		t.Fatalf("cost(miss0) = %d, want 0 (fully parallel)", c)
	}
	if c := a.CostSet(m1); c != 0 {
		t.Fatalf("cost(miss1) = %d, want 0", c)
	}
	ic := a.ICostSets(m0, m1)
	if ic != 112 { // L2(12)+Mem(100) removed only when both idealized
		t.Fatalf("icost = %d, want 112", ic)
	}
	if Classify(ic, 0) != Parallel {
		t.Fatal("not classified parallel")
	}
}

// serialMisses builds the paper's serial-interaction example: two
// *dependent* cache misses in parallel with a long chain of ALU work.
// Optimizing either miss alone captures the shared slack; optimizing
// both gains no more, so the icost is negative.
func serialMisses() *depgraph.Graph {
	// 2 dependent mem-missing loads (114 cycles each, 228 serial)
	// alongside an independent 120-cycle FP-divide chain (10 divides
	// x 12 cycles) — the paper's "two dependent misses in parallel
	// with ALU work" proportions: either miss alone covers the chain.
	const chain = 10
	g := depgraph.New(tinyCfg(), 2+chain)
	g.Info[0] = depgraph.InstInfo{Op: isa.OpLoad, SIdx: 0, DataLevel: cache.LevelMem}
	g.Info[1] = depgraph.InstInfo{Op: isa.OpLoad, SIdx: 1, DataLevel: cache.LevelMem}
	g.Prod1[1] = 0 // second miss depends on the first
	for i := 0; i < chain; i++ {
		g.Info[2+i] = depgraph.InstInfo{Op: isa.OpFloatDiv, SIdx: int32(2 + i)}
		if i > 0 {
			g.Prod1[2+i] = int32(2 + i - 1)
		}
	}
	return g
}

func TestSerialInteraction(t *testing.T) {
	g := serialMisses()
	a := New(g)
	m0 := EventSet(g, depgraph.IdealDMiss, func(i int) bool { return i == 0 })
	m1 := EventSet(g, depgraph.IdealDMiss, func(i int) bool { return i == 1 })

	c0, c1 := a.CostSet(m0), a.CostSet(m1)
	both := a.ICostSets(m0, m1)
	if c0 <= 0 || c1 <= 0 {
		t.Fatalf("individual costs %d, %d should be positive", c0, c1)
	}
	if both >= 0 {
		t.Fatalf("icost = %d, want negative (serial interaction)", both)
	}
	if Classify(both, 0) != Serial {
		t.Fatal("not classified serial")
	}
}

func TestIndependentEvents(t *testing.T) {
	// Two misses separated by an enormous serial ALU chain are
	// independent: each is fully exposed, no shared or parallel work.
	const chain = 50
	g := depgraph.New(tinyCfg(), 2*chain+2)
	mk := func(i int, info depgraph.InstInfo) { g.Info[i] = info }
	mk(0, depgraph.InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem})
	for i := 1; i <= chain; i++ {
		mk(i, depgraph.InstInfo{Op: isa.OpIntShort})
		g.Prod1[i] = int32(i - 1)
	}
	mk(chain+1, depgraph.InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem})
	g.Prod1[chain+1] = int32(chain)
	for i := chain + 2; i < 2*chain+2; i++ {
		mk(i, depgraph.InstInfo{Op: isa.OpIntShort})
		g.Prod1[i] = int32(i - 1)
	}
	a := New(g)
	m0 := EventSet(g, depgraph.IdealDMiss, func(i int) bool { return i == 0 })
	m1 := EventSet(g, depgraph.IdealDMiss, func(i int) bool { return i == chain+1 })
	ic := a.ICostSets(m0, m1)
	if ic != 0 {
		t.Fatalf("icost = %d, want 0 (independent)", ic)
	}
	if Classify(ic, 0) != Independent {
		t.Fatal("not classified independent")
	}
}

func TestICostPairwiseDefinition(t *testing.T) {
	// icost(a,b) must equal cost(a|b) - cost(a) - cost(b) exactly.
	g := benchGraph(t, "gcc", 8000)
	a := New(g)
	x, y := depgraph.IdealDL1, depgraph.IdealWindow
	ic := a.MustICost(x, y)
	want := a.Cost(x|y) - a.Cost(x) - a.Cost(y)
	if ic != want {
		t.Fatalf("icost %d != definition %d", ic, want)
	}
}

func TestICostRecursiveDefinition(t *testing.T) {
	// For three sets: cost(U) = sum of icosts of all non-empty
	// subsets of U (the recursive definition re-arranged).
	g := benchGraph(t, "parser", 8000)
	a := New(g)
	s := []depgraph.Flags{depgraph.IdealDL1, depgraph.IdealBMisp, depgraph.IdealDMiss}
	var sum int64
	for m := 1; m < 8; m++ {
		var sub []depgraph.Flags
		for j := 0; j < 3; j++ {
			if m&(1<<j) != 0 {
				sub = append(sub, s[j])
			}
		}
		sum += a.MustICost(sub...)
	}
	if got := a.Cost(s[0] | s[1] | s[2]); got != sum {
		t.Fatalf("cost(U)=%d != sum of subset icosts %d", got, sum)
	}
}

func TestPowerSetAccountsForAllTime(t *testing.T) {
	// With U = all eight categories: sum over every non-empty subset
	// of icost equals cost(U); and t(U) + cost(U) = t. This is the
	// paper's "completely accounting for execution time" identity.
	g := benchGraph(t, "gzip", 6000)
	a := New(g)
	flags := make([]depgraph.Flags, depgraph.NumFlags)
	for b := range flags {
		flags[b] = 1 << b
	}
	var sum int64
	for m := 1; m < 1<<depgraph.NumFlags; m++ {
		var sub []depgraph.Flags
		for j := 0; j < depgraph.NumFlags; j++ {
			if m&(1<<j) != 0 {
				sub = append(sub, flags[j])
			}
		}
		ic, err := a.ICost(sub...)
		if err != nil {
			t.Fatal(err)
		}
		sum += ic
	}
	if got := a.Cost(depgraph.AllFlags); got != sum {
		t.Fatalf("power-set identity violated: cost(all)=%d, sum=%d", got, sum)
	}
}

func TestICostRejectsOverlap(t *testing.T) {
	g := benchGraph(t, "gzip", 2000)
	a := New(g)
	if _, err := a.ICost(depgraph.IdealDL1, depgraph.IdealDL1|depgraph.IdealWindow); err == nil {
		t.Fatal("overlapping sets accepted")
	}
	if _, err := a.ICost(depgraph.Flags(0)); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestICostEmptyAndSingle(t *testing.T) {
	g := benchGraph(t, "gzip", 2000)
	a := New(g)
	if v, err := a.ICost(); err != nil || v != 0 {
		t.Fatalf("icost() = %d, %v", v, err)
	}
	single, err := a.ICost(depgraph.IdealDMiss)
	if err != nil {
		t.Fatal(err)
	}
	if single != a.Cost(depgraph.IdealDMiss) {
		t.Fatal("single-set icost != cost")
	}
}

func TestStaticLoadMissesSet(t *testing.T) {
	g := benchGraph(t, "mcf", 20000)
	a := New(g)
	// Find the static load with the most dynamic misses.
	counts := map[int32]int{}
	for i := 0; i < g.Len(); i++ {
		if g.Info[i].Op == isa.OpLoad && g.Info[i].DataLevel != cache.LevelL1 {
			counts[g.Info[i].SIdx]++
		}
	}
	var best int32 = -1
	bestN := 0
	for s, c := range counts {
		if c > bestN {
			best, bestN = s, c
		}
	}
	if best < 0 {
		t.Fatal("no missing loads in mcf")
	}
	set := StaticLoadMisses(g, best)
	c := a.CostSet(set)
	if c < 0 {
		t.Fatalf("negative cost %d for static load misses", c)
	}
	all := a.Cost(depgraph.IdealDMiss)
	if c > all {
		t.Fatalf("one static load's cost %d exceeds all-miss cost %d", c, all)
	}
	if bestN > 50 && c == 0 {
		t.Fatalf("hottest missing load (%d misses) has zero cost", bestN)
	}
}

func TestClassify(t *testing.T) {
	if Classify(5, 10) != Independent || Classify(-5, 10) != Independent {
		t.Fatal("tolerance band")
	}
	if Classify(11, 10) != Parallel || Classify(-11, 10) != Serial {
		t.Fatal("sign classification")
	}
	if Serial.String() != "serial" || Parallel.String() != "parallel" ||
		Independent.String() != "independent" {
		t.Fatal("names")
	}
}

func TestQuickMobiusMatchesPairDefinition(t *testing.T) {
	g := benchGraph(t, "twolf", 4000)
	a := New(g)
	f := func(x, y uint8) bool {
		fx := depgraph.Flags(1) << (x % depgraph.NumFlags)
		fy := depgraph.Flags(1) << (y % depgraph.NumFlags)
		if fx == fy {
			return true
		}
		ic, err := a.ICost(fx, fy)
		if err != nil {
			return false
		}
		return ic == a.Cost(fx|fy)-a.Cost(fx)-a.Cost(fy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCostNonNegativeAndBounded(t *testing.T) {
	g := benchGraph(t, "vpr", 4000)
	a := New(g)
	f := func(raw uint16) bool {
		fl := depgraph.Flags(raw) & depgraph.AllFlags
		c := a.Cost(fl)
		return c >= 0 && c <= a.BaseTime()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoization(t *testing.T) {
	g := benchGraph(t, "gzip", 3000)
	a := New(g)
	t1 := a.ExecTime(depgraph.IdealDMiss)
	t2 := a.ExecTime(depgraph.IdealDMiss)
	if t1 != t2 {
		t.Fatal("memoized value differs")
	}
	if len(a.memo) != 1 { // dmiss only: base is lazy
		t.Fatalf("memo size %d", len(a.memo))
	}
	if a.BaseTime() != a.BaseTime() {
		t.Fatal("base time not stable")
	}
	if len(a.memo) != 2 { // base + dmiss
		t.Fatalf("memo size %d after BaseTime", len(a.memo))
	}
}

// benchGraph simulates a benchmark and returns its graph.
func benchGraph(t testing.TB, name string, n int) *depgraph.Graph {
	t.Helper()
	tr, err := workload.Load(name, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

// Guard against accidental dependence of Möbius parity helper on
// platform: quick sanity of bits.OnesCount usage.
func TestMobiusParity(t *testing.T) {
	if bits.OnesCount(uint(0b1011)) != 3 {
		t.Fatal("OnesCount broken?")
	}
	_ = rng.New(1) // keep rng import for future tests
}

func TestAnalyzerConcurrentUse(t *testing.T) {
	g := benchGraph(t, "gzip", 4000)
	a := New(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := depgraph.Flags(1); f < 64; f++ {
				if a.Cost(f) < 0 {
					t.Error("negative cost")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSingleFlight: concurrent memo misses for the same flags must
// share one evaluation — the leader runs eval, everyone else waits on
// its flight and returns the same value.
func TestSingleFlight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	a := NewFromFunc(func(f depgraph.Flags) int64 {
		if f == depgraph.IdealDMiss {
			calls.Add(1)
			<-release // hold the leader so waiters pile onto the flight
		}
		return int64(f) * 10
	})
	const G = 8
	var wg sync.WaitGroup
	results := make([]int64, G)
	wg.Add(G)
	for i := 0; i < G; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = a.ExecTime(depgraph.IdealDMiss)
		}(i)
	}
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond) // leader entered eval
	}
	time.Sleep(10 * time.Millisecond) // let the rest reach the flight
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("eval ran %d times for one flag", n)
	}
	want := int64(depgraph.IdealDMiss) * 10
	for i, r := range results {
		if r != want {
			t.Fatalf("goroutine %d got %d, want %d", i, r, want)
		}
	}
}

// TestICostSetsMatchesBruteForce: the batched per-instruction path of
// ICostSets must agree with a hand-rolled Möbius sum over direct
// scalar graph evaluations.
func TestICostSetsMatchesBruteForce(t *testing.T) {
	g := benchGraph(t, "gzip", 2500)
	a := New(g)
	sets := []depgraph.Ideal{
		EventSet(g, depgraph.IdealDMiss, func(i int) bool { return g.Info[i].Op == isa.OpLoad && i%2 == 0 }),
		{Global: depgraph.IdealWindow},
		EventSet(g, depgraph.IdealBMisp, func(i int) bool { return i%3 == 0 }),
	}
	got := a.ICostSets(sets...)

	n := g.Len()
	base := g.ExecTime(depgraph.Ideal{})
	var want int64
	for m := 0; m < 1<<len(sets); m++ {
		var u depgraph.Ideal
		u.PerInst = make([]depgraph.Flags, n)
		for j, s := range sets {
			if m&(1<<j) == 0 {
				continue
			}
			u.Global |= s.Global
			for i, f := range s.PerInst {
				u.PerInst[i] |= f
			}
		}
		term := base - g.ExecTime(u)
		if (len(sets)-bits.OnesCount(uint(m)))%2 == 1 {
			term = -term
		}
		want += term
	}
	if got != want {
		t.Fatalf("ICostSets = %d, brute force = %d", got, want)
	}
}

// TestPrewarmDedup: PrewarmCtx collapses duplicates and re-listing
// memoized masks issues no further evaluations.
func TestPrewarmDedup(t *testing.T) {
	var calls atomic.Int64
	a := NewFromFunc(func(f depgraph.Flags) int64 {
		calls.Add(1)
		return 1000 - int64(f)
	})
	masks := []depgraph.Flags{
		depgraph.IdealDL1, depgraph.IdealDMiss,
		depgraph.IdealDL1, depgraph.IdealDL1 | depgraph.IdealDMiss,
	}
	if err := a.PrewarmCtx(context.Background(), masks); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("prewarm ran %d evals, want 3", n)
	}
	if err := a.PrewarmCtx(context.Background(), masks); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("re-prewarm ran %d extra evals", n-3)
	}
}
