package cost

import (
	"sort"

	"icost/internal/cache"
	"icost/internal/depgraph"
	"icost/internal/isa"
)

// StaticCost ranks static instructions by the cost of one event class
// across their dynamic instances — the per-static-instruction view a
// compiler or software optimizer needs (paper Sections 1-2: "all
// cache misses from a single static load").
type StaticCost struct {
	// SIdx is the static instruction index.
	SIdx int32
	// Events is the number of dynamic instances carrying the event.
	Events int
	// Cost is the cycles saved by idealizing this static
	// instruction's events.
	Cost int64
}

// RankStaticLoadMisses returns the static loads with at least
// minEvents dynamic cache misses, ordered by descending cost. Costing
// is one graph evaluation per candidate, so minEvents also bounds the
// work.
func RankStaticLoadMisses(a *Analyzer, minEvents int) []StaticCost {
	g := a.Graph()
	if g == nil {
		panic("cost: RankStaticLoadMisses requires a graph-backed analyzer")
	}
	counts := map[int32]int{}
	for i := 0; i < g.Len(); i++ {
		if g.Info[i].Op == isa.OpLoad && g.Info[i].DataLevel != cache.LevelL1 {
			counts[g.Info[i].SIdx]++
		}
	}
	var out []StaticCost
	for s, c := range counts {
		if c < minEvents {
			continue
		}
		out = append(out, StaticCost{
			SIdx:   s,
			Events: c,
			Cost:   a.CostSet(StaticLoadMisses(g, s)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].SIdx < out[j].SIdx
	})
	return out
}

// RankStaticMispredicts returns the static branches with at least
// minEvents dynamic mispredictions, ordered by descending cost of
// idealizing them — the per-branch view a predictor designer or
// feedback-directed compiler needs (paper Section 8: "favor
// prefetching cache misses that serially interact with branch
// mispredicts").
func RankStaticMispredicts(a *Analyzer, minEvents int) []StaticCost {
	g := a.Graph()
	if g == nil {
		panic("cost: RankStaticMispredicts requires a graph-backed analyzer")
	}
	counts := map[int32]int{}
	for i := 0; i < g.Len(); i++ {
		if g.Info[i].Mispredict {
			counts[g.Info[i].SIdx]++
		}
	}
	var out []StaticCost
	for s, c := range counts {
		if c < minEvents {
			continue
		}
		s := s
		set := EventSet(g, depgraph.IdealBMisp, func(i int) bool {
			return g.Info[i].SIdx == s && g.Info[i].Mispredict
		})
		out = append(out, StaticCost{SIdx: s, Events: c, Cost: a.CostSet(set)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].SIdx < out[j].SIdx
	})
	return out
}
