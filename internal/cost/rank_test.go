package cost

import (
	"testing"

	"icost/internal/depgraph"
)

func TestRankStaticLoadMisses(t *testing.T) {
	g := benchGraph(t, "mcf", 20000)
	a := New(g)
	ranked := RankStaticLoadMisses(a, 5)
	if len(ranked) == 0 {
		t.Fatal("no ranked loads on mcf")
	}
	// Descending cost order.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Cost > ranked[i-1].Cost {
			t.Fatalf("rank order violated at %d", i)
		}
	}
	// Every entry meets the event threshold and has non-negative cost.
	for _, r := range ranked {
		if r.Events < 5 {
			t.Fatalf("entry below threshold: %+v", r)
		}
		if r.Cost < 0 {
			t.Fatalf("negative cost: %+v", r)
		}
	}
	// The top entry's cost can't exceed the whole-category cost.
	if all := a.Cost(depgraph.IdealDMiss); ranked[0].Cost > all {
		t.Fatalf("top load cost %d > category cost %d", ranked[0].Cost, all)
	}
}

func TestRankStaticMispredicts(t *testing.T) {
	g := benchGraph(t, "bzip", 20000)
	a := New(g)
	ranked := RankStaticMispredicts(a, 3)
	if len(ranked) == 0 {
		t.Fatal("no ranked branches on bzip")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Cost > ranked[i-1].Cost {
			t.Fatalf("rank order violated at %d", i)
		}
	}
	if all := a.Cost(depgraph.IdealBMisp); ranked[0].Cost > all {
		t.Fatalf("top branch cost %d > category cost %d", ranked[0].Cost, all)
	}
}

func TestRankRequiresGraph(t *testing.T) {
	a := NewFromFunc(func(depgraph.Flags) int64 { return 10 })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without graph")
		}
	}()
	RankStaticLoadMisses(a, 1)
}

func TestRankThresholdFilters(t *testing.T) {
	g := benchGraph(t, "mcf", 15000)
	a := New(g)
	lo := RankStaticLoadMisses(a, 1)
	hi := RankStaticLoadMisses(a, 50)
	if len(hi) > len(lo) {
		t.Fatal("higher threshold returned more entries")
	}
}
