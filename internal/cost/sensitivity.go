package cost

// Sensitivity curves: the parametric generalization of cost. Where
// cost(S) answers "how much faster with S fully idealized", a
// response curve samples execution time at intermediate scale factors
// α ∈ [0,1] of S's latency — the sensitivity/causality methodology of
// the related work (Pompougnac, Dutilleul et al.), grafted onto the
// paper's graph model. A curve whose time falls linearly in α marks a
// resource squarely on the critical path; a flat-then-cliff shape
// marks one hiding behind another bottleneck until the scale crosses
// it — exactly the distinction interaction costs quantify pairwise,
// read here along one axis.

import (
	"context"
	"fmt"

	"icost/internal/depgraph"
)

// CurvePoint is one grid sample of a response curve: the execution
// time with the curve's categories scaled to α, and the cost
// (base − time) that idealization level recovers.
type CurvePoint struct {
	Alpha float64 `json:"alpha"`
	Time  int64   `json:"time"`
	Cost  int64   `json:"cost"`
}

// Curve is the response of execution time to scaling one event
// category set's latency by α, sampled on a grid. Points are in grid
// order; Cost at α=0 equals the binary cost of Flags, Cost at α=1 is
// zero.
type Curve struct {
	Name   string         `json:"name"`
	Flags  depgraph.Flags `json:"-"`
	Points []CurvePoint   `json:"points"`
}

// SensitivityCtx returns one response curve per category set in cats,
// sampled at every α in grid. All uncached (category, α) samples are
// evaluated in one batched multi-lane graph walk; binary endpoints
// (α=0) ride the whole-category memo, so a sensitivity query after a
// breakdown reuses its evaluations, and repeated queries are pure
// memo reads. Only graph-backed analyzers can evaluate parametric
// idealizations; function backends (windowed sessions use a subset
// table) get an error, not a panic — the engine surfaces it as an
// unsupported-operation response.
func (a *Analyzer) SensitivityCtx(ctx context.Context, cats []depgraph.Flags, grid []depgraph.Alpha) ([]Curve, error) {
	if a.g == nil {
		return nil, fmt.Errorf("cost: sensitivity requires a graph-backed analyzer")
	}
	if len(cats) == 0 || len(grid) == 0 {
		return nil, fmt.Errorf("cost: sensitivity needs at least one category and one grid point")
	}
	for _, f := range cats {
		if f == 0 {
			return nil, fmt.Errorf("cost: empty category in sensitivity query")
		}
	}

	// Resolve every (category, α) sample to its memo identity. A
	// canonically zero scale means every selected category sits at
	// α=0 — the binary zero-out — and the flags memo owns the entry.
	type sample struct {
		key    scaledKey
		binary bool
	}
	samples := make([]sample, 0, len(cats)*len(grid))
	for _, f := range cats {
		for _, al := range grid {
			s := depgraph.CanonScale(f, depgraph.ScaleUniform(f, al))
			samples = append(samples, sample{key: scaledKey{f: f, s: s}, binary: s.IsZero()})
		}
	}

	// Collect scaled misses under the lock, then evaluate them in one
	// batched walk. Concurrent callers may race to evaluate the same
	// key; both walks are deterministic, so the double write is
	// harmless.
	binFlags := []depgraph.Flags{0}
	a.mu.Lock()
	onBatch := a.onBatch
	var miss []scaledKey
	missSeen := make(map[scaledKey]bool)
	for _, sm := range samples {
		if sm.binary {
			binFlags = append(binFlags, sm.key.f)
			continue
		}
		if _, ok := a.scaledMemo[sm.key]; ok || missSeen[sm.key] {
			continue
		}
		missSeen[sm.key] = true
		miss = append(miss, sm.key)
	}
	a.mu.Unlock()
	if len(miss) > 0 {
		ids := make([]depgraph.Ideal, len(miss))
		for i, k := range miss {
			ids[i] = depgraph.Ideal{Global: k.f, Scale: k.s}
		}
		times, err := a.g.EvalBatch(ctx, ids)
		if err != nil {
			return nil, err
		}
		if onBatch != nil {
			onBatch(len(ids))
		}
		a.mu.Lock()
		for i, k := range miss {
			a.scaledMemo[k] = times[i]
		}
		a.mu.Unlock()
	}
	if err := a.PrewarmCtx(ctx, binFlags); err != nil {
		return nil, err
	}
	base, err := a.ExecTimeCtx(ctx, 0)
	if err != nil {
		return nil, err
	}

	curves := make([]Curve, len(cats))
	si := 0
	for ci, f := range cats {
		c := Curve{Name: f.String(), Flags: f, Points: make([]CurvePoint, len(grid))}
		for gi, al := range grid {
			sm := samples[si]
			si++
			var t int64
			if sm.binary {
				if t, err = a.ExecTimeCtx(ctx, f); err != nil {
					return nil, err
				}
			} else {
				a.mu.Lock()
				t = a.scaledMemo[sm.key]
				a.mu.Unlock()
			}
			c.Points[gi] = CurvePoint{Alpha: al.Float(), Time: t, Cost: base - t}
		}
		curves[ci] = c
	}
	return curves, nil
}

// DefaultGrid is the standard five-point sensitivity grid.
func DefaultGrid() []depgraph.Alpha {
	return []depgraph.Alpha{0, depgraph.AlphaOf(0.25), depgraph.AlphaOf(0.5), depgraph.AlphaOf(0.75), depgraph.AlphaOne}
}
