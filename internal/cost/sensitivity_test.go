package cost

import (
	"context"
	"strings"
	"testing"

	"icost/internal/depgraph"
	"icost/internal/rng"
)

func TestSensitivityCurves(t *testing.T) {
	g := benchGraph(t, "gzip", 4000)
	a := New(g)
	ctx := context.Background()
	cats := []depgraph.Flags{depgraph.IdealDMiss, depgraph.IdealBMisp, depgraph.IdealDL1 | depgraph.IdealShortALU}
	grid := DefaultGrid()
	curves, err := a.SensitivityCtx(ctx, cats, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != len(cats) {
		t.Fatalf("%d curves for %d categories", len(curves), len(cats))
	}
	base := a.BaseTime()
	for ci, c := range curves {
		if c.Flags != cats[ci] || c.Name != cats[ci].String() {
			t.Fatalf("curve %d mislabelled: %+v", ci, c)
		}
		if len(c.Points) != len(grid) {
			t.Fatalf("curve %q has %d points, want %d", c.Name, len(c.Points), len(grid))
		}
		// Every point must match a direct scalar evaluation.
		for gi, p := range c.Points {
			id := depgraph.Ideal{Global: c.Flags, Scale: depgraph.ScaleUniform(c.Flags, grid[gi])}
			if want := g.ExecTime(id); p.Time != want {
				t.Fatalf("curve %q α=%v: time %d, direct %d", c.Name, p.Alpha, p.Time, want)
			}
			if p.Cost != base-p.Time {
				t.Fatalf("curve %q α=%v: cost %d != base-time %d", c.Name, p.Alpha, p.Cost, base-p.Time)
			}
			if gi > 0 && p.Time < c.Points[gi-1].Time {
				t.Fatalf("curve %q not monotone at α=%v", c.Name, p.Alpha)
			}
		}
		// Endpoints: α=0 is the binary cost, α=1 recovers nothing.
		if got, want := c.Points[0].Cost, a.Cost(c.Flags); got != want {
			t.Fatalf("curve %q α=0 cost %d, binary cost %d", c.Name, got, want)
		}
		if last := c.Points[len(c.Points)-1]; last.Cost != 0 || last.Time != base {
			t.Fatalf("curve %q α=1 point %+v, want base %d", c.Name, last, base)
		}
	}

	// Repeat query: pure memo reads, identical answers.
	again, err := a.SensitivityCtx(ctx, cats, grid)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range curves {
		for gi := range curves[ci].Points {
			if again[ci].Points[gi] != curves[ci].Points[gi] {
				t.Fatal("memoized sensitivity differs from first evaluation")
			}
		}
	}
}

func TestSensitivityErrors(t *testing.T) {
	fn := NewFromFunc(func(f depgraph.Flags) int64 { return 100 })
	if _, err := fn.SensitivityCtx(context.Background(), []depgraph.Flags{depgraph.IdealDL1}, DefaultGrid()); err == nil ||
		!strings.Contains(err.Error(), "graph-backed") {
		t.Fatalf("function-backed analyzer: err = %v", err)
	}
	g := benchGraph(t, "gzip", 500)
	a := New(g)
	if _, err := a.SensitivityCtx(context.Background(), nil, DefaultGrid()); err == nil {
		t.Fatal("want error for empty categories")
	}
	if _, err := a.SensitivityCtx(context.Background(), []depgraph.Flags{depgraph.IdealDL1}, nil); err == nil {
		t.Fatal("want error for empty grid")
	}
	if _, err := a.SensitivityCtx(context.Background(), []depgraph.Flags{0}, DefaultGrid()); err == nil {
		t.Fatal("want error for empty category")
	}
}

// TestScaledMemoKeysNoCollision is the α-blindness regression
// property: across random α grids, memoized scaled queries — global
// and per-instruction — must always return the same value as a direct
// un-memoized graph evaluation. An α-blind key would make a later
// query at a different α return the first α's cached time.
func TestScaledMemoKeysNoCollision(t *testing.T) {
	g := benchGraph(t, "gzip", 2000)
	a := New(g)
	r := rng.New(99)
	for trial := 0; trial < 60; trial++ {
		f := depgraph.Flags(r.Uint64()) & depgraph.AllFlags
		if f == 0 {
			f = depgraph.IdealDMiss
		}
		var s depgraph.ScaleVec
		for b := 0; b < depgraph.NumFlags; b++ {
			s[b] = depgraph.Alpha(r.Intn(int(depgraph.AlphaOne) + 1))
		}
		id := depgraph.Ideal{Global: f, Scale: s}
		if r.Bool(0.4) {
			per := make([]depgraph.Flags, g.Len())
			for i := range per {
				if r.Bool(0.2) {
					per[i] = depgraph.Flags(r.Uint64()) & depgraph.AllFlags
				}
			}
			id.PerInst = per
		}
		want := g.ExecTime(id)
		if got := a.CostSet(id); got != a.BaseTime()-want {
			t.Fatalf("trial %d: CostSet %d, direct %d (flags %v scale %v perInst=%v)",
				trial, got, a.BaseTime()-want, f, s, id.PerInst != nil)
		}
	}
	// Same flags, two different α's, queried back to back: the second
	// answer must be the second α's, not the first's memo entry.
	f := depgraph.IdealDMiss
	lo := depgraph.Ideal{Global: f, Scale: depgraph.ScaleUniform(f, 64)}
	hi := depgraph.Ideal{Global: f, Scale: depgraph.ScaleUniform(f, 192)}
	cLo, cHi := a.CostSet(lo), a.CostSet(hi)
	if cLo != a.BaseTime()-g.ExecTime(lo) || cHi != a.BaseTime()-g.ExecTime(hi) {
		t.Fatalf("α memo collision: cost(α=.25)=%d cost(α=.75)=%d", cLo, cHi)
	}
	if cLo < cHi {
		t.Fatalf("lower α must recover at least as much: %d < %d", cLo, cHi)
	}
}

// TestScaledKeyCanonical: ideals identical up to ignored scale entries
// share one memo entry; the split between Global and PerInst does not
// matter for the set memo either.
func TestScaledKeyCanonical(t *testing.T) {
	g := benchGraph(t, "gzip", 1000)
	a := New(g)
	f := depgraph.IdealDMiss | depgraph.IdealBMisp
	s := depgraph.ScaleUniform(f, 128)
	noisy := s
	noisy[0] = 7 // dl1 entry — unselected, must be ignored
	k1 := scaledKey{f: f, s: depgraph.CanonScale(f, s)}
	k2 := scaledKey{f: f, s: depgraph.CanonScale(f, noisy)}
	if k1 != k2 {
		t.Fatal("canonical keys differ on an ignored entry")
	}
	if a.CostSet(depgraph.Ideal{Global: f, Scale: s}) != a.CostSet(depgraph.Ideal{Global: f, Scale: noisy}) {
		t.Fatal("ignored scale entry changed the answer")
	}
	a.mu.Lock()
	entries := len(a.scaledMemo)
	a.mu.Unlock()
	if entries != 1 {
		t.Fatalf("scaled memo has %d entries, want 1", entries)
	}

	// Per-instruction: same effective vector and scale, different
	// Global/PerInst split — one setMemo entry.
	per := make([]depgraph.Flags, g.Len())
	for i := range per {
		per[i] = depgraph.IdealDL1
	}
	idA := depgraph.Ideal{Global: 0, PerInst: per, Scale: depgraph.ScaleUniform(depgraph.IdealDL1, 200)}
	kA := a.setKey(idA)
	perB := make([]depgraph.Flags, g.Len())
	idB := depgraph.Ideal{Global: depgraph.IdealDL1, PerInst: perB, Scale: depgraph.ScaleUniform(depgraph.IdealDL1, 200)}
	if kB := a.setKey(idB); kA != kB {
		t.Fatal("same effective vector hashed differently")
	}
	// Different α on the same vector: distinct keys.
	idC := idA
	idC.Scale = depgraph.ScaleUniform(depgraph.IdealDL1, 100)
	if kC := a.setKey(idC); kC == kA {
		t.Fatal("setKey is α-blind")
	}
}

func BenchmarkSensitivityCurves(b *testing.B) {
	g := benchGraph(b, "gzip", 8000)
	a := New(g)
	cats := make([]depgraph.Flags, 0, depgraph.NumFlags)
	for bnum := 0; bnum < depgraph.NumFlags; bnum++ {
		cats = append(cats, 1<<bnum)
	}
	grid := DefaultGrid()
	ctx := context.Background()
	// Cold pass to size the working set, then measure warm+cold mix:
	// each iteration re-queries the same grid (memoized) — the serving
	// pattern — on a fresh analyzer every 8th run (the build pattern).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			a = New(g)
		}
		if _, err := a.SensitivityCtx(ctx, cats, grid); err != nil {
			b.Fatal(err)
		}
	}
}
