// Package daemon is the HTTP surface of one icostd analysis shard,
// extracted from cmd/icostd so that the sharding router can spawn
// whole backend processes in-process (internal/router's Cluster) and
// serve byte-identical responses to what a real daemon would. One
// handler carries both planes:
//
//   - the session engine (internal/engine): /query answers
//     cost/icost/breakdown/slack/matrix queries against built
//     dependence graphs;
//   - the fleet data plane (internal/fleet): /ingest accepts binary
//     sample streams, and a "fleet" block in /query routes to the
//     aggregate profile;
//   - the replication plane: GET /snapshot streams one built
//     session's ICSS snapshot (the PR-7 codec) and POST /restore
//     installs one, which is how the router ships hot sessions
//     between shards; GET /sessions lists what is resident, with the
//     install generation the router uses to decide when a replica's
//     copy has gone stale.
//
// Error mapping is part of the contract: typed backpressure is 429 +
// Retry-After, client mistakes are 400, a missing aggregate 404, a
// stale-codec snapshot 426, a corrupt snapshot payload 422, deadline
// expiry 504, disconnects 499 — so the router (and any load balancer)
// can classify failures without parsing error prose.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"

	"icost/internal/engine"
	"icost/internal/faultinject"
	"icost/internal/fleet"
	"icost/internal/profiler"
)

// Options configures the optional parts of the handler surface.
type Options struct {
	// Pprof mounts the Go runtime's profiling handlers under
	// /debug/pprof/ — off by default, since profiles expose internals
	// no production query endpoint should.
	Pprof bool
	// Ready gates /readyz (nil means always ready, for tests that only
	// exercise routing). The daemon flips it false during the shutdown
	// drain.
	Ready *atomic.Bool
}

// queryRequest is the /query wire shape: the engine query fields
// promoted at the top level (unchanged for existing clients) plus an
// optional fleet target. A request carrying "fleet" is answered from
// the aggregate profile; everything else goes to the session engine.
type queryRequest struct {
	engine.Query
	Fleet *fleet.Query `json:"fleet,omitempty"`
}

// metricsSnapshot flattens the engine and fleet metric sets into one
// JSON object (the aliases sidestep the embedded-name clash between
// the two Snapshot types).
type (
	engineMetrics = engine.Snapshot
	fleetMetrics  = fleet.Snapshot
)

type metricsSnapshot struct {
	engineMetrics
	fleetMetrics
}

// maxIngestBytes bounds one /ingest request body. A stream carries at
// most a few MiB per PMU drain batch; 256 MiB leaves generous room
// for a host replaying a backlog without letting one connection
// exhaust the process.
const maxIngestBytes = 1 << 28

// maxSnapshotBytes bounds one /restore request body; comfortably
// above any real session snapshot (a 30k-instruction session encodes
// to well under 1 MiB) while keeping a hostile push from exhausting
// the shard.
const maxSnapshotBytes = 1 << 30

// GenerationHeader carries a session's install generation on
// /snapshot responses, so a router can stamp the replica state it
// tracks without a second round trip.
const GenerationHeader = "X-Icost-Generation"

// NewHandler builds the shard's routing table over the session engine
// and the fleet aggregator.
func NewHandler(e *engine.Engine, agg *fleet.Aggregator, opts Options) http.Handler {
	mux := http.NewServeMux()
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			Error(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var q queryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			Error(w, http.StatusBadRequest, "bad query JSON: "+err.Error())
			return
		}
		// Fault hook: handler-level failure after decode, before the
		// engine — models a dying front end rather than a bad engine.
		if err := faultinject.Hit(r.Context(), faultinject.DaemonQuery); err != nil {
			WriteQueryError(w, err)
			return
		}
		if q.Fleet != nil {
			resp, err := agg.Query(r.Context(), *q.Fleet)
			if err != nil {
				WriteQueryError(w, err)
				return
			}
			JSON(w, http.StatusOK, resp)
			return
		}
		resp, err := e.Query(r.Context(), q.Query)
		if err != nil {
			WriteQueryError(w, err)
			return
		}
		JSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			Error(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		h, n, err := fleet.ReadStream(http.MaxBytesReader(w, r.Body, maxIngestBytes),
			func(h fleet.Header, s *profiler.Samples) error {
				return agg.Ingest(r.Context(), h, s)
			})
		if err != nil {
			// Batches merged before the failure stay merged — lossy
			// collection is the fleet contract — but the response is an
			// error so the host knows its stream did not land whole. A
			// truncated upload is the sender's problem, not the server's.
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				Error(w, http.StatusBadRequest, err.Error())
				return
			}
			WriteQueryError(w, err)
			return
		}
		JSON(w, http.StatusOK, map[string]any{
			"key":     h.Key().String(),
			"host":    h.Host,
			"batches": n,
		})
	})
	// Replication plane: /sessions lists the resident built sessions
	// with install generations, /snapshot streams one session's ICSS
	// bytes, /restore installs a pushed snapshot. Together they are the
	// shard side of hot-session replication — the router pulls from
	// the primary and pushes to replicas.
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		JSON(w, http.StatusOK, map[string]any{"sessions": e.Sessions()})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("session")
		if key == "" {
			Error(w, http.StatusBadRequest, "missing ?session=<key>")
			return
		}
		gen, ok := e.SessionGeneration(key)
		if !ok {
			Error(w, http.StatusNotFound, "no built session "+key)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(GenerationHeader, strconv.FormatUint(gen, 10))
		if err := e.SnapshotSession(r.Context(), key, w); err != nil {
			// Headers are already out; the truncated body will fail the
			// receiver's CRC check, which is the designed failure mode.
			return
		}
	})
	mux.HandleFunc("/restore", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			Error(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		key, err := e.RestoreSession(r.Context(), http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
		if err != nil {
			WriteQueryError(w, err)
			return
		}
		gen, _ := e.SessionGeneration(key)
		JSON(w, http.StatusOK, map[string]any{
			"session":    key,
			"generation": gen,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// One flat JSON object: engine and fleet key sets are disjoint
		// (fleet counters carry a fleet_ prefix), so embedding keeps
		// existing /metrics consumers decoding engine.Snapshot intact.
		JSON(w, http.StatusOK, metricsSnapshot{e.Metrics(), agg.Metrics()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m := e.Metrics()
		JSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"uptime_seconds": m.UptimeSeconds,
			"sessions_live":  m.SessionsLive,
			"in_flight":      m.InFlight,
		})
	})
	// Liveness (/healthz, above) and readiness are deliberately
	// separate: during the shutdown drain the process is still alive —
	// restarting it would kill the very queries it is draining — but
	// it must stop receiving new traffic.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if opts.Ready != nil && !opts.Ready.Load() {
			JSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		JSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	return mux
}

// WriteQueryError maps engine and fleet errors onto HTTP semantics:
// typed backpressure becomes 429 + Retry-After, deadline expiry 504,
// client disconnect 499 (nginx convention), closed engine 503,
// malformed queries and ingest streams (the typed validation errors)
// 400, a fleet query against an absent aggregate 404, a snapshot
// pushed in a codec version this build cannot decode 426, a snapshot
// whose payload fails its checksum 422, and any unclassified failure
// — a broken build, an internal fault — 500, so server-side trouble
// is never misreported as the client's.
func WriteQueryError(w http.ResponseWriter, err error) {
	var full *engine.QueueFullError
	var bad *engine.ValidationError
	var fbad *fleet.ValidationError
	var fmiss *fleet.NotFoundError
	var sver *engine.SnapshotVersionError
	var scrc *engine.SnapshotChecksumError
	switch {
	case errors.As(err, &full):
		secs := int(full.RetryAfter.Seconds() + 0.5)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		Error(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		Error(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		Error(w, 499, err.Error())
	case errors.Is(err, engine.ErrClosed):
		Error(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, &sver):
		Error(w, http.StatusUpgradeRequired, err.Error())
	case errors.As(err, &scrc):
		Error(w, http.StatusUnprocessableEntity, err.Error())
	case errors.As(err, &bad), errors.As(err, &fbad):
		Error(w, http.StatusBadRequest, err.Error())
	case errors.As(err, &fmiss):
		Error(w, http.StatusNotFound, err.Error())
	default:
		Error(w, http.StatusInternalServerError, err.Error())
	}
}

// Error writes a JSON error body with the given status.
func Error(w http.ResponseWriter, code int, msg string) {
	JSON(w, code, map[string]string{"error": msg})
}

// JSON writes v as an indented JSON response with the given status.
func JSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
