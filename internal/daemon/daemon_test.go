package daemon

// Tests for the replication plane — the shard-side HTTP surface the
// sharding router drives. The error mapping matters as much as the
// happy path: the router distinguishes "replica runs an older codec"
// (426, stop pushing) from "bytes damaged in transit" (422, retry),
// so those statuses are contract, not decoration.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"icost/internal/engine"
	"icost/internal/fleet"
	"icost/internal/leakcheck"
)

// startShard boots one daemon handler over a real engine.
func startShard(t *testing.T) (*engine.Engine, *httptest.Server) {
	t.Helper()
	e := engine.New(engine.Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(e, fleet.NewAggregator(fleet.Config{}), Options{}))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

// TestReplicationPlaneRoundTrip: /snapshot streams a built session
// with its install generation in the header, /restore installs it on
// a second shard, and /sessions reports the copy.
func TestReplicationPlaneRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	e1, srv1 := startShard(t)
	_, srv2 := startShard(t)

	key, err := e1.Warm(t.Context(), engine.SessionSpec{Bench: "gzip", TraceLen: 3000, Warmup: 1000})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv1.URL + "/snapshot?session=" + key)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot pull: status %d, err %v", resp.StatusCode, err)
	}
	gen, err := strconv.ParseUint(resp.Header.Get(GenerationHeader), 10, 64)
	if err != nil || gen == 0 {
		t.Fatalf("generation header %q unusable: %v", resp.Header.Get(GenerationHeader), err)
	}

	resp, err = http.Post(srv2.URL+"/restore", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: status %d: %s", resp.StatusCode, out)
	}

	resp, err = http.Get(srv2.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Sessions []engine.SessionInfo `json:"sessions"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Sessions) != 1 || listing.Sessions[0].Key != key {
		t.Fatalf("replica sessions = %+v, want the restored key %s", listing.Sessions, key)
	}
	if listing.Sessions[0].Generation != gen {
		t.Fatalf("replica generation %d, want the primary's %d", listing.Sessions[0].Generation, gen)
	}

	// Pulling an unbuilt session is a clean 404.
	resp, err = http.Get(srv1.URL + "/snapshot?session=0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session snapshot: status %d, want 404", resp.StatusCode)
	}
}

// TestRestoreErrorStatuses: the typed snapshot decode errors map to
// distinct, router-distinguishable statuses — codec version to 426,
// checksum damage to 422 — and neither installs anything.
func TestRestoreErrorStatuses(t *testing.T) {
	leakcheck.Check(t)
	e1, srv1 := startShard(t)
	e2, srv2 := startShard(t)

	key, err := e1.Warm(t.Context(), engine.SessionSpec{Bench: "gzip", TraceLen: 3000, Warmup: 1000})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv1.URL + "/snapshot?session=" + key)
	if err != nil {
		t.Fatal(err)
	}
	good, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot pull: status %d, err %v", resp.StatusCode, err)
	}

	push := func(raw []byte) int {
		t.Helper()
		resp, err := http.Post(srv2.URL+"/restore", "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	future := append([]byte(nil), good...)
	future[4] = 0x7f // codec version byte
	if got := push(future); got != http.StatusUpgradeRequired {
		t.Fatalf("future codec version: status %d, want 426", got)
	}

	damaged := append([]byte(nil), good...)
	damaged[len(damaged)-1] ^= 0x01
	if got := push(damaged); got != http.StatusUnprocessableEntity {
		t.Fatalf("damaged payload: status %d, want 422", got)
	}

	if m := e2.Metrics(); m.SessionsLive != 0 {
		t.Fatalf("rejected snapshots left %d live sessions", m.SessionsLive)
	}
}
