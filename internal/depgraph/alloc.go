package depgraph

import "sync"

// Unified scratch allocator. Every pooled byte in this package — the
// graph record arena, the flat CSR tables, the scalar walks' node-time
// scratch, the backward pass's latest-time scratch and the batch
// kernels' lane scratch — is carved out of one memArena: a single
// recyclable backing allocation per typed element class. One pool, one
// acquire/release discipline, one place where capacity grows, instead
// of the four bespoke sync.Pools this file replaces.

// memArena is one recyclable backing allocation. Slices are carved
// sequentially per element class; offsets reset on acquire. Carved
// slices use full-cap three-index slicing so an append can never bleed
// into a neighbouring carve.
type memArena struct {
	i64  []int64
	i32  []int32
	u8   []uint8
	info []InstInfo

	o64, o32, o8, oInfo int
}

var arenaPool = sync.Pool{New: func() any { return new(memArena) }}

// acquireArena returns an arena with at least the given element
// capacities per class and all carve offsets reset. Contents are
// unspecified; carvers that need zeroed or sentinel-filled storage
// initialize it themselves.
func acquireArena(n64, n32, n8, nInfo int) *memArena {
	a := arenaPool.Get().(*memArena)
	if cap(a.i64) < n64 {
		a.i64 = make([]int64, n64)
	}
	if cap(a.i32) < n32 {
		a.i32 = make([]int32, n32)
	}
	if cap(a.u8) < n8 {
		a.u8 = make([]uint8, n8)
	}
	if cap(a.info) < nInfo {
		a.info = make([]InstInfo, nInfo)
	}
	a.o64, a.o32, a.o8, a.oInfo = 0, 0, 0, 0
	return a
}

// releaseArena recycles the arena. The caller must drop every slice
// carved from it first.
func releaseArena(a *memArena) { arenaPool.Put(a) }

func (a *memArena) i64s(n int) []int64 {
	s := a.i64[a.o64 : a.o64+n : a.o64+n]
	a.o64 += n
	return s
}

func (a *memArena) i32s(n int) []int32 {
	s := a.i32[a.o32 : a.o32+n : a.o32+n]
	a.o32 += n
	return s
}

func (a *memArena) u8s(n int) []uint8 {
	s := a.u8[a.o8 : a.o8+n : a.o8+n]
	a.o8 += n
	return s
}

func (a *memArena) infos(n int) []InstInfo {
	s := a.info[a.oInfo : a.oInfo+n : a.oInfo+n]
	a.oInfo += n
	return s
}

// acquireTimes returns a Times with n-length slices whose contents
// are unspecified; runInto overwrites every element.
func acquireTimes(n int) *Times {
	a := acquireArena(5*n, 0, 0, 0)
	return &Times{
		D: a.i64s(n), R: a.i64s(n), E: a.i64s(n),
		P: a.i64s(n), C: a.i64s(n),
		arena: a,
	}
}

// releaseTimes recycles pooled node-time scratch. A no-op for Times
// that own their storage (NodeTimes results); the slices of pooled
// Times are nilled so a stale reference fails fast instead of reading
// recycled data.
func releaseTimes(t *Times) {
	a := t.arena
	if a == nil {
		return
	}
	t.arena = nil
	t.D, t.R, t.E, t.P, t.C = nil, nil, nil, nil, nil
	releaseArena(a)
}

// acquireLatest returns a Latest with n-length slices whose contents
// are unspecified; the backward pass initializes every element.
func acquireLatest(n int) *Latest {
	a := acquireArena(5*n, 0, 0, 0)
	return &Latest{
		D: a.i64s(n), R: a.i64s(n), E: a.i64s(n),
		P: a.i64s(n), C: a.i64s(n),
		arena: a,
	}
}

func releaseLatest(l *Latest) {
	a := l.arena
	if a == nil {
		return
	}
	l.arena = nil
	l.D, l.R, l.E, l.P, l.C = nil, nil, nil, nil, nil
	releaseArena(a)
}

// laneScratch is the backing store of one batch-kernel pass: the D, P
// and C node-time lanes, instruction-major (index i*W+w). R and E
// times never cross instructions, so they stay in registers.
type laneScratch struct {
	d, p, c []int64
	arena   *memArena
}

// acquireLanes returns lane scratch for n instructions at width w.
func acquireLanes(n, w int) *laneScratch {
	need := n * w
	a := acquireArena(3*need, 0, 0, 0)
	return &laneScratch{d: a.i64s(need), p: a.i64s(need), c: a.i64s(need), arena: a}
}

func releaseLanes(s *laneScratch) {
	a := s.arena
	s.arena = nil
	s.d, s.p, s.c = nil, nil, nil
	releaseArena(a)
}
