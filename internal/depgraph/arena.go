package depgraph

// Arena allocation for whole graphs. A cold session build (and every
// idealized re-simulation in package multisim) constructs one graph
// of known size, uses it, and drops it; allocating the record slices
// and flat CSR tables individually each time is pure GC churn.
// NewPooled carves everything — the typed record columns AND the flat
// tables csr.go fills on first walk — out of one memArena from the
// package allocator (alloc.go); Release returns it.

// NewPooled is New with arena-backed record storage. The returned
// graph is indistinguishable from New's until Release is called;
// callers that never release simply forgo reuse. WithConfig clones of
// a pooled graph carry no arena — releasing the original invalidates
// them too, since they share its records.
func NewPooled(cfg Config, n int) *Graph {
	a := acquireArena(0, (5+flatI32PerInst)*n, (1+flatU8PerInst)*n, n)
	info := a.infos(n)
	u8 := a.u8s(n)
	reLat := a.i32s(n)
	ccLat := a.i32s(n)
	clear(info)
	clear(u8)
	clear(reLat) // RELat, CCLat start at zero
	clear(ccLat)
	g := &Graph{
		Cfg:      cfg,
		Info:     info,
		DDBreak:  u8,
		RELat:    reLat,
		CCLat:    ccLat,
		Prod1:    a.i32s(n),
		Prod2:    a.i32s(n),
		PPLeader: a.i32s(n),
		arena:    a,
	}
	// Pre-carve the flat-table columns; buildTables fills every
	// element on first walk, so no clearing is needed here.
	g.flat = flatTables{
		epBase:   a.i32s(n),
		epDL1:    a.i32s(n),
		epDMiss:  a.i32s(n),
		epShort:  a.i32s(n),
		epLong:   a.i32s(n),
		icache:   a.i32s(n),
		mispPrev: a.u8s(n),
	}
	for i := 0; i < n; i++ {
		g.Prod1[i] = -1
		g.Prod2[i] = -1
		g.PPLeader[i] = -1
	}
	return g
}

// Release returns the graph's arena to the pool. A no-op for graphs
// from New or WithConfig. The graph — and any WithConfig clone of it
// — must not be used afterwards; the record slices are nilled so a
// stale reference fails fast instead of reading recycled data.
func (g *Graph) Release() {
	a := g.arena
	if a == nil {
		return
	}
	g.arena = nil
	g.Info, g.DDBreak = nil, nil
	g.RELat, g.CCLat = nil, nil
	g.Prod1, g.Prod2, g.PPLeader = nil, nil, nil
	g.flat = flatTables{}
	releaseArena(a)
}

// AcquireTimes returns pooled node-time scratch with n-length slices
// whose contents are unspecified; the caller must overwrite every
// element (the simulator's forward pass does). Pair with
// ReleaseTimes.
func AcquireTimes(n int) *Times {
	return acquireTimes(n)
}

// ReleaseTimes returns scratch obtained from AcquireTimes (or a Times
// handed out by the simulator) to the shared pool. The Times must not
// be used afterwards.
func ReleaseTimes(t *Times) {
	if t != nil {
		releaseTimes(t)
	}
}
