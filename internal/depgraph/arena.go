package depgraph

import "sync"

// Arena allocation for whole graphs. A cold session build (and every
// idealized re-simulation in package multisim) constructs one graph
// of known size, uses it, and drops it; allocating the seven
// per-instruction slices individually each time is pure GC churn. A
// graphArena is a single backing allocation carved into the typed
// record slices; NewPooled recycles arenas through a sync.Pool and
// Release returns them.

type graphArena struct {
	info []InstInfo
	i32  []int32 // 5n: RELat, CCLat, Prod1, Prod2, PPLeader
	u8   []uint8 // n: DDBreak
}

var graphArenaPool = sync.Pool{New: func() any { return new(graphArena) }}

// NewPooled is New with arena-backed record storage. The returned
// graph is indistinguishable from New's until Release is called;
// callers that never release simply forgo reuse. WithConfig clones of
// a pooled graph carry no arena — releasing the original invalidates
// them too, since they share its records.
func NewPooled(cfg Config, n int) *Graph {
	a := graphArenaPool.Get().(*graphArena)
	if cap(a.info) < n {
		a.info = make([]InstInfo, n)
		a.i32 = make([]int32, 5*n)
		a.u8 = make([]uint8, n)
	}
	info := a.info[:n]
	i32 := a.i32[:5*n]
	u8 := a.u8[:n]
	clear(info)
	clear(u8)
	clear(i32[:2*n]) // RELat, CCLat start at zero
	g := &Graph{
		Cfg:      cfg,
		Info:     info,
		DDBreak:  u8,
		RELat:    i32[0*n : 1*n : 1*n],
		CCLat:    i32[1*n : 2*n : 2*n],
		Prod1:    i32[2*n : 3*n : 3*n],
		Prod2:    i32[3*n : 4*n : 4*n],
		PPLeader: i32[4*n : 5*n : 5*n],
		arena:    a,
	}
	for i := 0; i < n; i++ {
		g.Prod1[i] = -1
		g.Prod2[i] = -1
		g.PPLeader[i] = -1
	}
	return g
}

// Release returns the graph's arena to the pool. A no-op for graphs
// from New or WithConfig. The graph — and any WithConfig clone of it
// — must not be used afterwards; the record slices are nilled so a
// stale reference fails fast instead of reading recycled data.
func (g *Graph) Release() {
	a := g.arena
	if a == nil {
		return
	}
	g.arena = nil
	g.Info, g.DDBreak = nil, nil
	g.RELat, g.CCLat = nil, nil
	g.Prod1, g.Prod2, g.PPLeader = nil, nil, nil
	graphArenaPool.Put(a)
}

// AcquireTimes returns pooled node-time scratch with n-length slices
// whose contents are unspecified; the caller must overwrite every
// element (the simulator's forward pass does). Pair with
// ReleaseTimes.
func AcquireTimes(n int) *Times {
	return acquireTimes(n)
}

// ReleaseTimes returns scratch obtained from AcquireTimes (or a Times
// handed out by the simulator) to the shared pool. The Times must not
// be used afterwards.
func ReleaseTimes(t *Times) {
	if t != nil {
		releaseTimes(t)
	}
}
