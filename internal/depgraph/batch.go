// Batched multi-idealization evaluation. The power-set workloads of
// interaction-cost analysis — the 2^k Möbius terms of an icost query,
// the k^2 cells of an all-pairs matrix, the per-fragment queries of
// the shotgun profiler — all re-evaluate the same graph under many
// idealizations. The scalar walk (runInto) pays the per-instruction
// overhead once per idealization; EvalBatch instead walks the graph
// once per lane-width idealizations, keeping node times in
// structure-of-arrays lanes: each instruction's flat CSR columns are
// loaded a single time, then a tight fixed-width inner loop applies
// them to every lane. The lane width is configurable (Config.Lanes,
// default picked per GOMAXPROCS); scratch lanes are recycled through
// the package allocator, and batches wider than one chunk fan out
// across GOMAXPROCS goroutines (each chunk polls ctx, so a batch is
// cancellable mid-walk).
package depgraph

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"icost/internal/faultinject"
)

// maxLanes bounds Config.Lanes: beyond 64 lanes the per-instruction
// working set (3 lanes' rows around the current instruction plus the
// scattered producer reads) falls out of L1 and wider stops paying.
const maxLanes = 64

// defaultLanes is the auto-picked lane width (Config.Lanes == 0).
// 8 lanes keep the working set comfortably inside L1 while amortizing
// the column loads; a single-threaded process (GOMAXPROCS=1) cannot
// fan chunks out across cores, so it runs wider lanes instead —
// amortizing each column load over 16 idealizations is the only
// parallelism available to it.
func defaultLanes() int {
	if runtime.GOMAXPROCS(0) == 1 {
		return 16
	}
	return 8
}

// laneWidth resolves the effective batch lane width for this graph.
func (g *Graph) laneWidth() int {
	if w := g.Cfg.Lanes; w > 0 {
		return w
	}
	return defaultLanes()
}

// EvalBatch computes the execution time of the microexecution under
// every idealization in ids, walking the graph once per lane-width
// idealizations. Results are bit-exact with ExecTime on each element.
// Batches larger than one chunk fan out across min(GOMAXPROCS, chunks)
// goroutines; every chunk polls ctx each ctxCheckStride instructions,
// so cancellation lands mid-batch. An idealization with a
// per-instruction mask must have exactly Len() entries.
func (g *Graph) EvalBatch(ctx context.Context, ids []Ideal) ([]int64, error) {
	n := g.Len()
	for k := range ids {
		if ids[k].PerInst != nil && len(ids[k].PerInst) != n {
			return nil, fmt.Errorf("depgraph: batch lane %d: per-instruction mask has %d entries, graph has %d",
				k, len(ids[k].PerInst), n)
		}
	}
	out := make([]int64, len(ids))
	if len(ids) == 0 || n == 0 {
		return out, nil
	}
	// Fault hook: one per batched walk, cancellable walks only (the
	// uncancellable-by-contract prewarm paths pass a Done-less ctx).
	if ctx.Done() != nil {
		if err := faultinject.Hit(ctx, faultinject.GraphWalk); err != nil {
			return nil, err
		}
	}
	width := g.laneWidth()
	chunks := (len(ids) + width - 1) / width
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for s := 0; s < len(ids); s += width {
			e := s + width
			if e > len(ids) {
				e = len(ids)
			}
			if err := g.evalChunk(ctx, width, ids[s:e], out[s:e]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				s := c * width
				e := s + width
				if e > len(ids) {
					e = len(ids)
				}
				if err := g.evalChunk(cctx, width, ids[s:e], out[s:e]); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel() // abort the sibling chunks
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err // the caller's cancellation, not our internal one
		}
		return nil, firstErr
	}
	return out, nil
}

// evalChunk evaluates up to width lanes with one graph walk. Short
// chunks are padded with copies of the first lane so the kernels
// always run at the full width — the lane loop's trip count is
// uniform across the walk — at the price of some redundant work on
// the final chunk. The only heap allocation is the pad slice for a
// short final chunk; full chunks run entirely on pooled scratch.
//
//lint:hotpath allocs=1
func (g *Graph) evalChunk(ctx context.Context, width int, ids []Ideal, out []int64) error {
	n := g.Len()
	sc := acquireLanes(n, width)
	defer releaseLanes(sc)
	lanes := ids
	if len(ids) < width {
		pad := make([]Ideal, width)
		copy(pad, ids)
		for k := len(ids); k < width; k++ {
			pad[k] = ids[0]
		}
		lanes = pad
	}
	global, scaled := true, false
	for k := range lanes {
		if lanes[k].PerInst != nil {
			global = false
		}
		if !lanes[k].Scale.IsZero() {
			scaled = true
		}
	}
	var err error
	switch {
	case scaled:
		err = g.evalLanesScaled(ctx, lanes, sc)
	case global:
		err = g.evalLanesGlobal(ctx, lanes, sc)
	default:
		err = g.evalLanesGeneric(ctx, lanes, sc)
	}
	if err != nil {
		return err
	}
	for w := range ids {
		out[w] = sc.c[(n-1)*width+w] + 1
	}
	return nil
}

// laneConsts caches one lane's flag-derived constants for the
// global-only kernels: every condition the scalar walk re-tests per
// instruction is constant across the walk when the idealization has
// no per-instruction mask.
type laneConsts struct {
	bw, ic, dl1, dm, sh, lg bool // category NOT idealized (edge active)
	bm                      bool // branch recovery active
	win                     int  // effective window size
}

func laneOf(cfg *Config, f Flags) laneConsts {
	l := laneConsts{
		bw:  f&IdealBW == 0,
		ic:  f&IdealICache == 0,
		dl1: f&IdealDL1 == 0,
		dm:  f&IdealDMiss == 0,
		sh:  f&IdealShortALU == 0,
		lg:  f&IdealLongALU == 0,
		bm:  f&IdealBMisp == 0,
		win: cfg.Window,
	}
	if f&IdealWindow != 0 {
		l.win *= cfg.WindowIdealFactor
	}
	return l
}

// evalLanesGlobal is the fast path: every lane is a Global-only
// idealization, so all flag tests hoist out of the instruction loop.
// The lane rows are resliced to exactly W elements per instruction,
// so the inner loop's bounds are known and its trip count uniform
// (evalChunk pads short batches). Budget: the per-lane constant and
// window-offset tables, sized by chunk width, not graph length.
//
//lint:hotpath allocs=2
func (g *Graph) evalLanesGlobal(ctx context.Context, ids []Ideal, sc *laneScratch) error {
	W := len(ids)
	n := g.Len()
	D, P, C := sc.d, sc.p, sc.c
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	ft := g.tables()
	epB, epD1, epDm, epSh, epLg, icc, mp :=
		ft.epBase, ft.epDL1, ft.epDMiss, ft.epShort, ft.epLong, ft.icache, ft.mispPrev

	lanes := make([]laneConsts, W)
	winOff := make([]int, W)
	for w := range lanes {
		lanes[w] = laneOf(cfg, ids[w].Global)
		winOff[w] = lanes[w].win * W
	}

	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		ddBreak := int64(ddB[i])
		icLat := int64(icc[i])
		reLat := int64(reL[i])
		ccLat := int64(ccL[i])
		base0 := int64(epB[i])
		dl1L := int64(epD1[i])
		dmL := int64(epDm[i])
		shL := int64(epSh[i])
		lgL := int64(epLg[i])
		// Producer indices of -1 scale to negative offsets, so the
		// per-lane guards below stay a sign test.
		p1Row, p2Row, leadRow := int(pr1[i])*W, int(pr2[i])*W, int(ld[i])*W
		misp := mp[i] != 0
		base := i * W
		prev := base - W
		fbwRow, cbwRow := base-fbw*W, base-cbw*W
		dRow := D[base : base+W]
		pRow := P[base : base+W]
		cRow := C[base : base+W]
		for w := 0; w < W; w++ {
			ln := &lanes[w]
			var dd int64
			if ln.bw {
				dd = ddBreak
			}
			if ln.ic {
				dd += icLat
			}
			d := dd
			if i > 0 {
				d += D[prev+w]
				if misp && ln.bm {
					if v := P[prev+w] + rec; v > d {
						d = v
					}
				}
			}
			if ln.bw && fbwRow >= 0 {
				if v := D[fbwRow+w] + 1; v > d {
					d = v
				}
			}
			if wr := base - winOff[w]; wr >= 0 {
				if v := C[wr+w]; v > d {
					d = v
				}
			}
			dRow[w] = d

			r := d + dr
			if p1Row >= 0 {
				if v := P[p1Row+w] + wake; v > r {
					r = v
				}
			}
			if p2Row >= 0 {
				if v := P[p2Row+w] + wake; v > r {
					r = v
				}
			}

			e := r
			if ln.bw {
				e += reLat
			}

			p := e + base0
			if ln.dl1 {
				p += dl1L
			}
			if ln.dm {
				p += dmL
			}
			if ln.sh {
				p += shL
			}
			if ln.lg {
				p += lgL
			}
			if leadRow >= 0 && ln.dm {
				if v := P[leadRow+w]; v > p {
					p = v
				}
			}
			pRow[w] = p

			c := p + pc
			if i > 0 {
				cc := C[prev+w]
				if ln.bw {
					cc += ccLat
				}
				if cc > c {
					c = cc
				}
			}
			if ln.bw && cbwRow >= 0 {
				if v := C[cbwRow+w] + 1; v > c {
					c = v
				}
			}
			cRow[w] = c
		}
	}
	return nil
}

// evalLanesGeneric handles lanes with per-instruction masks: flags
// are recomposed per lane per instruction, but the column loads still
// amortize across the whole chunk. Budget: the split glob/per views
// of the lane idealizations, sized by chunk width.
//
//lint:hotpath allocs=2
func (g *Graph) evalLanesGeneric(ctx context.Context, ids []Ideal, sc *laneScratch) error {
	W := len(ids)
	n := g.Len()
	D, P, C := sc.d, sc.p, sc.c
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	ft := g.tables()
	epB, epD1, epDm, epSh, epLg, icc, mp :=
		ft.epBase, ft.epDL1, ft.epDMiss, ft.epShort, ft.epLong, ft.icache, ft.mispPrev

	glob := make([]Flags, W)
	per := make([][]Flags, W)
	for w := range ids {
		glob[w], per[w] = ids[w].Global, ids[w].PerInst
	}

	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		ddBreak := int64(ddB[i])
		icLat := int64(icc[i])
		reLat := int64(reL[i])
		ccLat := int64(ccL[i])
		base0 := int64(epB[i])
		dl1L := int64(epD1[i])
		dmL := int64(epDm[i])
		shL := int64(epSh[i])
		lgL := int64(epLg[i])
		p1Row, p2Row, leadRow := int(pr1[i])*W, int(pr2[i])*W, int(ld[i])*W
		misp := mp[i] != 0
		base := i * W
		prev := base - W
		fbwRow, cbwRow := base-fbw*W, base-cbw*W
		dRow := D[base : base+W]
		pRow := P[base : base+W]
		cRow := C[base : base+W]
		for w := 0; w < W; w++ {
			f := glob[w]
			if pv := per[w]; pv != nil {
				f |= pv[i]
			}
			ln := laneOf(cfg, f)
			var dd int64
			if ln.bw {
				dd = ddBreak
			}
			if ln.ic {
				dd += icLat
			}
			d := dd
			if i > 0 {
				d += D[prev+w]
				if misp {
					// The PD edge is gated by the *branch's* (i-1's)
					// flags, not the current instruction's.
					fp := glob[w]
					if pv := per[w]; pv != nil {
						fp |= pv[i-1]
					}
					if fp&IdealBMisp == 0 {
						if v := P[prev+w] + rec; v > d {
							d = v
						}
					}
				}
			}
			if ln.bw && fbwRow >= 0 {
				if v := D[fbwRow+w] + 1; v > d {
					d = v
				}
			}
			if wr := base - ln.win*W; wr >= 0 {
				if v := C[wr+w]; v > d {
					d = v
				}
			}
			dRow[w] = d

			r := d + dr
			if p1Row >= 0 {
				if v := P[p1Row+w] + wake; v > r {
					r = v
				}
			}
			if p2Row >= 0 {
				if v := P[p2Row+w] + wake; v > r {
					r = v
				}
			}

			e := r
			if ln.bw {
				e += reLat
			}

			p := e + base0
			if ln.dl1 {
				p += dl1L
			}
			if ln.dm {
				p += dmL
			}
			if ln.sh {
				p += shL
			}
			if ln.lg {
				p += lgL
			}
			if leadRow >= 0 && ln.dm {
				if v := P[leadRow+w]; v > p {
					p = v
				}
			}
			pRow[w] = p

			c := p + pc
			if i > 0 {
				cc := C[prev+w]
				if ln.bw {
					cc += ccLat
				}
				if cc > c {
					c = cc
				}
			}
			if ln.bw && cbwRow >= 0 {
				if v := C[cbwRow+w] + 1; v > c {
					c = v
				}
			}
			cRow[w] = c
		}
	}
	return nil
}
