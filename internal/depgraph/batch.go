// Batched multi-idealization evaluation. The power-set workloads of
// interaction-cost analysis — the 2^k Möbius terms of an icost query,
// the k^2 cells of an all-pairs matrix, the per-fragment queries of
// the shotgun profiler — all re-evaluate the same graph under many
// idealizations. The scalar walk (runInto) pays the per-instruction
// overhead once per idealization: it re-loads InstInfo and the
// producer/contention arrays, and re-derives the latency components,
// for every subset. EvalBatch instead walks the graph once per
// batchWidth idealizations, keeping node times in structure-of-arrays
// lanes: each instruction's metadata is loaded and decomposed into
// flag-selectable latency components a single time, then a tight
// inner loop applies it to every lane. Scratch lanes are recycled
// through a sync.Pool, and batches wider than one chunk fan out
// across GOMAXPROCS goroutines (each chunk polls ctx, so a batch is
// cancellable mid-walk).
package depgraph

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"icost/internal/cache"
	"icost/internal/faultinject"
)

// batchWidth is the number of idealization lanes carried by one
// kernel pass. 8 lanes keep the per-instruction working set (3 lanes
// x 8 x 8 bytes around the current instruction, plus the scattered
// producer reads) comfortably inside L1 while amortizing the
// metadata loads over the whole chunk.
const batchWidth = 8

// laneScratch is the pooled backing store of one kernel pass: the D,
// P and C node-time lanes, instruction-major (index i*W+w). R and E
// times never cross instructions, so they stay in registers.
type laneScratch struct {
	d, p, c []int64
}

var lanePool = sync.Pool{New: func() any { return new(laneScratch) }}

func acquireLanes(n int) *laneScratch {
	s := lanePool.Get().(*laneScratch)
	need := n * batchWidth
	if cap(s.d) < need {
		s.d = make([]int64, need)
		s.p = make([]int64, need)
		s.c = make([]int64, need)
	}
	s.d, s.p, s.c = s.d[:need], s.p[:need], s.c[:need]
	return s
}

func releaseLanes(s *laneScratch) { lanePool.Put(s) }

// epParts is the flag-selectable decomposition of one instruction's
// EP-edge latency plus its icache penalty: EPLat(i, f) ==
// base + dl1·[f∌IdealDL1] + dmiss·[f∌IdealDMiss] +
// short·[f∌IdealShortALU] + long·[f∌IdealLongALU], and the
// icache component of DDLat(i, f) is icache·[f∌IdealICache].
type epParts struct {
	base, dl1, dmiss, short, long, icache int64
}

// batchTables returns the idealization-independent per-instruction
// tables — the latency decomposition and the "previous instruction
// mispredicted" gate of the PD edge — built once per graph on first
// use and shared by every subsequent batch (and every chunk of it).
// Callers must not mutate the graph after the first EvalBatch.
func (g *Graph) batchTables() ([]epParts, []bool) {
	g.batchOnce.Do(func() {
		n := g.Len()
		g.partsArr = make([]epParts, n)
		g.mispPrev = make([]bool, n)
		for i := 0; i < n; i++ {
			g.partsArr[i] = g.parts(i)
			if i > 0 {
				g.mispPrev[i] = g.Info[i-1].Mispredict
			}
		}
	})
	return g.partsArr, g.mispPrev
}

// parts decomposes instruction i's latencies once, so the lane loop
// selects components by flag instead of re-deriving them per subset.
func (g *Graph) parts(i int) epParts {
	var p epParts
	info := &g.Info[i]
	cfg := &g.Cfg
	op := info.Op
	switch {
	case op.IsMem():
		p.dl1 = int64(cfg.DL1Latency)
		if info.DTLBMiss {
			p.dmiss += int64(cfg.TLBMissLatency)
		}
		switch info.DataLevel {
		case cache.LevelL2:
			p.dmiss += int64(cfg.L2Latency)
		case cache.LevelMem:
			p.dmiss += int64(cfg.L2Latency) + int64(cfg.MemLatency)
		}
	case op.IsShortALU():
		p.short = 1
	case op.IsLongALU():
		p.long = BaseExecLat(op)
	default:
		p.base = BaseExecLat(op)
	}
	if info.ITLBMiss {
		p.icache = int64(cfg.TLBMissLatency)
	}
	switch info.ILevel {
	case cache.LevelL2:
		p.icache += int64(cfg.L2Latency)
	case cache.LevelMem:
		p.icache += int64(cfg.L2Latency) + int64(cfg.MemLatency)
	}
	return p
}

// EvalBatch computes the execution time of the microexecution under
// every idealization in ids, walking the graph once per batchWidth
// lanes instead of once per idealization. Results are bit-exact with
// ExecTime on each element. Batches larger than one chunk fan out
// across min(GOMAXPROCS, chunks) goroutines; every chunk polls ctx
// each ctxCheckStride instructions, so cancellation lands mid-batch.
// An idealization with a per-instruction mask must have exactly
// Len() entries.
func (g *Graph) EvalBatch(ctx context.Context, ids []Ideal) ([]int64, error) {
	n := g.Len()
	for k := range ids {
		if ids[k].PerInst != nil && len(ids[k].PerInst) != n {
			return nil, fmt.Errorf("depgraph: batch lane %d: per-instruction mask has %d entries, graph has %d",
				k, len(ids[k].PerInst), n)
		}
	}
	out := make([]int64, len(ids))
	if len(ids) == 0 || n == 0 {
		return out, nil
	}
	// Fault hook: one per batched walk, cancellable walks only (the
	// uncancellable-by-contract prewarm paths pass a Done-less ctx).
	if ctx.Done() != nil {
		if err := faultinject.Hit(ctx, faultinject.GraphWalk); err != nil {
			return nil, err
		}
	}
	chunks := (len(ids) + batchWidth - 1) / batchWidth
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for s := 0; s < len(ids); s += batchWidth {
			e := s + batchWidth
			if e > len(ids) {
				e = len(ids)
			}
			if err := g.evalChunk(ctx, ids[s:e], out[s:e]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				s := c * batchWidth
				e := s + batchWidth
				if e > len(ids) {
					e = len(ids)
				}
				if err := g.evalChunk(cctx, ids[s:e], out[s:e]); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel() // abort the sibling chunks
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err // the caller's cancellation, not our internal one
		}
		return nil, firstErr
	}
	return out, nil
}

// evalChunk evaluates up to batchWidth lanes with one graph walk.
// Short chunks are padded with copies of the first lane so the
// kernels always run at the full constant width — the stride becomes
// a shift and the lane loop a fixed trip count the compiler can
// unroll — at the price of some redundant work on the final chunk.
func (g *Graph) evalChunk(ctx context.Context, ids []Ideal, out []int64) error {
	n := g.Len()
	sc := acquireLanes(n)
	defer releaseLanes(sc)
	lanes := ids
	if len(ids) < batchWidth {
		var pad [batchWidth]Ideal
		copy(pad[:], ids)
		for k := len(ids); k < batchWidth; k++ {
			pad[k] = ids[0]
		}
		lanes = pad[:]
	}
	global := true
	for k := range lanes {
		if lanes[k].PerInst != nil {
			global = false
			break
		}
	}
	var err error
	if global {
		err = g.evalLanesGlobal(ctx, lanes, sc)
	} else {
		err = g.evalLanesGeneric(ctx, lanes, sc)
	}
	if err != nil {
		return err
	}
	for w := range ids {
		out[w] = sc.c[(n-1)*batchWidth+w] + 1
	}
	return nil
}

// laneConsts caches one lane's flag-derived constants for the
// global-only kernel: every condition the scalar walk re-tests per
// instruction is constant across the walk when the idealization has
// no per-instruction mask.
type laneConsts struct {
	bw, ic, dl1, dm, sh, lg bool // category NOT idealized (edge active)
	bm                      bool // branch recovery active
	win                     int  // effective window size
}

func laneOf(cfg *Config, f Flags) laneConsts {
	l := laneConsts{
		bw:  f&IdealBW == 0,
		ic:  f&IdealICache == 0,
		dl1: f&IdealDL1 == 0,
		dm:  f&IdealDMiss == 0,
		sh:  f&IdealShortALU == 0,
		lg:  f&IdealLongALU == 0,
		bm:  f&IdealBMisp == 0,
		win: cfg.Window,
	}
	if f&IdealWindow != 0 {
		l.win *= cfg.WindowIdealFactor
	}
	return l
}

// evalLanesGlobal is the fast path: every lane is a Global-only
// idealization, so all flag tests hoist out of the instruction loop.
// The lane stride is the compile-time constant batchWidth (evalChunk
// pads short batches), so every row offset is a shift and the lane
// loop has a fixed trip count.
func (g *Graph) evalLanesGlobal(ctx context.Context, ids []Ideal, sc *laneScratch) error {
	const W = batchWidth
	n := g.Len()
	D, P, C := sc.d, sc.p, sc.c
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	pp, mp := g.batchTables()

	var lanes [W]laneConsts
	var winOff [W]int
	for w := range lanes {
		lanes[w] = laneOf(cfg, ids[w].Global)
		winOff[w] = lanes[w].win * W
	}

	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		ep := &pp[i]
		ddBreak := int64(ddB[i])
		reLat := int64(reL[i])
		ccLat := int64(ccL[i])
		// Producer indices of -1 scale to negative offsets, so the
		// per-lane guards below stay a sign test.
		p1Row, p2Row, leadRow := int(pr1[i])*W, int(pr2[i])*W, int(ld[i])*W
		misp := mp[i]
		base := i * W
		prev := base - W
		fbwRow, cbwRow := base-fbw*W, base-cbw*W
		for w := 0; w < W; w++ {
			ln := &lanes[w]
			var dd int64
			if ln.bw {
				dd = ddBreak
			}
			if ln.ic {
				dd += ep.icache
			}
			d := dd
			if i > 0 {
				d += D[prev+w]
				if misp && ln.bm {
					if v := P[prev+w] + rec; v > d {
						d = v
					}
				}
			}
			if ln.bw && fbwRow >= 0 {
				if v := D[fbwRow+w] + 1; v > d {
					d = v
				}
			}
			if wr := base - winOff[w]; wr >= 0 {
				if v := C[wr+w]; v > d {
					d = v
				}
			}
			D[base+w] = d

			r := d + dr
			if p1Row >= 0 {
				if v := P[p1Row+w] + wake; v > r {
					r = v
				}
			}
			if p2Row >= 0 {
				if v := P[p2Row+w] + wake; v > r {
					r = v
				}
			}

			e := r
			if ln.bw {
				e += reLat
			}

			p := e + ep.base
			if ln.dl1 {
				p += ep.dl1
			}
			if ln.dm {
				p += ep.dmiss
			}
			if ln.sh {
				p += ep.short
			}
			if ln.lg {
				p += ep.long
			}
			if leadRow >= 0 && ln.dm {
				if v := P[leadRow+w]; v > p {
					p = v
				}
			}
			P[base+w] = p

			c := p + pc
			if i > 0 {
				cc := C[prev+w]
				if ln.bw {
					cc += ccLat
				}
				if cc > c {
					c = cc
				}
			}
			if ln.bw && cbwRow >= 0 {
				if v := C[cbwRow+w] + 1; v > c {
					c = v
				}
			}
			C[base+w] = c
		}
	}
	return nil
}

// evalLanesGeneric handles lanes with per-instruction masks: flags
// are recomposed per lane per instruction, but the metadata loads and
// latency decomposition still amortize across the whole chunk.
func (g *Graph) evalLanesGeneric(ctx context.Context, ids []Ideal, sc *laneScratch) error {
	const W = batchWidth
	n := g.Len()
	D, P, C := sc.d, sc.p, sc.c
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	pp, mp := g.batchTables()

	var glob [W]Flags
	var per [W][]Flags
	for w := range ids {
		glob[w], per[w] = ids[w].Global, ids[w].PerInst
	}

	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		ep := &pp[i]
		ddBreak := int64(ddB[i])
		reLat := int64(reL[i])
		ccLat := int64(ccL[i])
		p1Row, p2Row, leadRow := int(pr1[i])*W, int(pr2[i])*W, int(ld[i])*W
		misp := mp[i]
		base := i * W
		prev := base - W
		fbwRow, cbwRow := base-fbw*W, base-cbw*W
		for w := 0; w < W; w++ {
			f := glob[w]
			if pv := per[w]; pv != nil {
				f |= pv[i]
			}
			ln := laneOf(cfg, f)
			var dd int64
			if ln.bw {
				dd = ddBreak
			}
			if ln.ic {
				dd += ep.icache
			}
			d := dd
			if i > 0 {
				d += D[prev+w]
				if misp {
					// The PD edge is gated by the *branch's* (i-1's)
					// flags, not the current instruction's.
					fp := glob[w]
					if pv := per[w]; pv != nil {
						fp |= pv[i-1]
					}
					if fp&IdealBMisp == 0 {
						if v := P[prev+w] + rec; v > d {
							d = v
						}
					}
				}
			}
			if ln.bw && fbwRow >= 0 {
				if v := D[fbwRow+w] + 1; v > d {
					d = v
				}
			}
			if wr := base - ln.win*W; wr >= 0 {
				if v := C[wr+w]; v > d {
					d = v
				}
			}
			D[base+w] = d

			r := d + dr
			if p1Row >= 0 {
				if v := P[p1Row+w] + wake; v > r {
					r = v
				}
			}
			if p2Row >= 0 {
				if v := P[p2Row+w] + wake; v > r {
					r = v
				}
			}

			e := r
			if ln.bw {
				e += reLat
			}

			p := e + ep.base
			if ln.dl1 {
				p += ep.dl1
			}
			if ln.dm {
				p += ep.dmiss
			}
			if ln.sh {
				p += ep.short
			}
			if ln.lg {
				p += ep.long
			}
			if leadRow >= 0 && ln.dm {
				if v := P[leadRow+w]; v > p {
					p = v
				}
			}
			P[base+w] = p

			c := p + pc
			if i > 0 {
				cc := C[prev+w]
				if ln.bw {
					cc += ccLat
				}
				if cc > c {
					c = cc
				}
			}
			if ln.bw && cbwRow >= 0 {
				if v := C[cbwRow+w] + 1; v > c {
					c = v
				}
			}
			C[base+w] = c
		}
	}
	return nil
}
