package depgraph

import (
	"context"
	"strings"
	"testing"

	"icost/internal/rng"
)

// randomCfg perturbs the machine parameters so the batch kernels are
// exercised across bandwidths, window sizes and pipeline constants,
// not just the default Table 6 machine.
func randomCfg(r *rng.Rand) Config {
	cfg := DefaultConfig()
	cfg.FetchBW = 1 + r.Intn(4)
	cfg.CommitBW = 1 + r.Intn(4)
	cfg.Window = 2 + r.Intn(40)
	cfg.BranchRecovery = r.Intn(12)
	cfg.WakeupExtra = r.Intn(2)
	cfg.DL1Latency = 1 + r.Intn(3)
	cfg.DispatchToReady = r.Intn(3)
	cfg.CompleteToCommit = r.Intn(3)
	return cfg
}

func randomFlags(r *rng.Rand) Flags {
	return Flags(r.Uint64()) & AllFlags
}

// randomIdeal is either a global idealization or a per-instruction
// one (each instruction gets its own mask) with a global component.
func randomIdeal(r *rng.Rand, n int) Ideal {
	id := Ideal{Global: randomFlags(r)}
	if r.Bool(0.5) {
		per := make([]Flags, n)
		for i := range per {
			if r.Bool(0.3) {
				per[i] = randomFlags(r)
			}
		}
		id.PerInst = per
	}
	return id
}

// TestBatchMatchesScalar is the bit-exactness property: EvalBatch must
// equal the scalar walk element-wise for every lane, across random
// machines, trace lengths (including the tails that stress chunk
// padding) and idealization shapes.
func TestBatchMatchesScalar(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 60; seed++ {
		r := rng.New(seed)
		n := r.Intn(300) // includes 0-length microexecutions
		g := randomGraph(r.Derive("graph"), n)
		g.Cfg = randomCfg(r.Derive("cfg"))
		width := 1 + r.Intn(2*defaultLanes()+3) // spans sub-chunk and multi-chunk
		ids := make([]Ideal, width)
		for w := range ids {
			ids[w] = randomIdeal(r, n)
		}
		got, err := g.EvalBatch(ctx, ids)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got) != width {
			t.Fatalf("seed %d: %d results for %d lanes", seed, len(got), width)
		}
		for w, id := range ids {
			if want := g.ExecTime(id); got[w] != want {
				t.Fatalf("seed %d lane %d (n=%d): batch %d, scalar %d (ideal %+v)",
					seed, w, n, got[w], want, id)
			}
		}
	}
}

func TestBatchEmptyAndSingle(t *testing.T) {
	ctx := context.Background()
	g := randomGraph(rng.New(7), 100)

	out, err := g.EvalBatch(ctx, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}

	id := Ideal{Global: IdealDMiss | IdealWindow}
	out, err = g.EvalBatch(ctx, []Ideal{id})
	if err != nil {
		t.Fatal(err)
	}
	if want := g.ExecTime(id); out[0] != want {
		t.Fatalf("batch of one: %d, scalar %d", out[0], want)
	}

	// Empty graph: every lane is 0 cycles.
	empty := New(DefaultConfig(), 0)
	out, err = empty.EvalBatch(ctx, []Ideal{{}, {Global: IdealDL1}})
	if err != nil || out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty graph batch: out=%v err=%v", out, err)
	}
}

func TestBatchLaneLengthMismatch(t *testing.T) {
	g := randomGraph(rng.New(9), 50)
	_, err := g.EvalBatch(context.Background(), []Ideal{
		{Global: IdealDL1},
		{PerInst: make([]Flags, 49)},
	})
	if err == nil || !strings.Contains(err.Error(), "lane 1") {
		t.Fatalf("want lane-length error naming lane 1, got %v", err)
	}
}

// TestBatchCancellation: a cancelled context must abort the walk
// mid-batch with the caller's error, on graphs long enough that every
// chunk crosses several ctx-check strides.
func TestBatchCancellation(t *testing.T) {
	g := randomGraph(rng.New(11), 3*ctxCheckStride)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ids := make([]Ideal, 3*defaultLanes()) // several chunks, exercises fan-out
	for w := range ids {
		ids[w] = Ideal{Global: Flags(w) & AllFlags}
	}
	if _, err := g.EvalBatch(ctx, ids); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The same batch completes once the context is live again.
	if _, err := g.EvalBatch(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
}
