package depgraph

// Flat CSR view of the graph. The builder-facing record arrays
// (DDBreak, RELat, CCLat, Prod1, Prod2, PPLeader) are already
// constant-stride columns in topological (dispatch) order — each is
// the in-edge list of one edge kind, indexed by destination
// instruction. What the walks additionally need per instruction is the
// flag-selectable latency decomposition, which the legacy layout
// re-derived from the InstInfo structs on every visit (a 16-byte
// record plus opcode/level branching per instruction per
// idealization). flatTables extends the CSR with that decomposition as
// six more int32 columns plus the PD-edge gate, so the forward walk,
// the backward walk and the batch kernels stream pure int32/int64
// columns and never touch InstInfo.
//
// The tables are built once per graph on first walk and shared by
// every subsequent walk and batch. Like the batch tables they replace,
// they cache only Info-derived values: a graph must not have its Info
// records mutated after its first walk (the recorded contention
// columns RELat/CCLat/DDBreak and the producer columns are read
// directly and stay mutable for what-if analyses).
type flatTables struct {
	// EPLat(i, f) == epBase + epDL1·[f∌IdealDL1] + epDMiss·[f∌IdealDMiss]
	// + epShort·[f∌IdealShortALU] + epLong·[f∌IdealLongALU]; the icache
	// component of DDLat(i, f) is icache·[f∌IdealICache].
	epBase, epDL1, epDMiss, epShort, epLong, icache []int32
	// mispPrev[i] != 0 marks instruction i-1 as a mispredicted branch
	// (the PD-edge gate, hoisted out of InstInfo).
	mispPrev []uint8
}

// tables returns the flat CSR tables, building them on first use.
func (g *Graph) tables() *flatTables {
	g.flatOnce.Do(g.buildTables)
	return &g.flat
}

// flatI32PerInst and flatU8PerInst are the per-instruction element
// counts a graph arena reserves for the flat tables (see NewPooled).
const (
	flatI32PerInst = 6
	flatU8PerInst  = 1
)

func (g *Graph) buildTables() {
	n := g.Len()
	ft := &g.flat
	if ft.epBase == nil {
		// Heap graph (New, WithConfig, snapshot restore): one slab for
		// the six columns. Pooled graphs pre-carve these from the
		// graph arena in NewPooled.
		i32 := make([]int32, flatI32PerInst*n)
		ft.epBase = i32[0*n : 1*n : 1*n]
		ft.epDL1 = i32[1*n : 2*n : 2*n]
		ft.epDMiss = i32[2*n : 3*n : 3*n]
		ft.epShort = i32[3*n : 4*n : 4*n]
		ft.epLong = i32[4*n : 5*n : 5*n]
		ft.icache = i32[5*n : 6*n : 6*n]
		ft.mispPrev = make([]uint8, n)
	}
	cfg := &g.Cfg
	dl1 := int64(cfg.DL1Latency)
	l2 := int64(cfg.L2Latency)
	mem := int64(cfg.L2Latency) + int64(cfg.MemLatency)
	tlb := int64(cfg.TLBMissLatency)
	for i := 0; i < n; i++ {
		// decomposeLat (windoweval.go) is the single source of truth
		// for the per-instruction decomposition; the window evaluator
		// calls the same code, so whole-graph and windowed folds agree
		// by construction.
		base, d1, dm, sh, lg, ic := decomposeLat(&g.Info[i], dl1, l2, mem, tlb)
		ft.epBase[i] = int32(base)
		ft.epDL1[i] = int32(d1)
		ft.epDMiss[i] = int32(dm)
		ft.epShort[i] = int32(sh)
		ft.epLong[i] = int32(lg)
		ft.icache[i] = int32(ic)
		var mp uint8
		if i > 0 && g.Info[i-1].Mispredict {
			mp = 1
		}
		ft.mispPrev[i] = mp
	}
}
