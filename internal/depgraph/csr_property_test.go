package depgraph_test

// Property tests for the flat CSR layout: on real simulated
// microexecutions (every benchmark × several seeds), every analysis
// surface — ExecTime, NodeTimes, Slacks, EvalBatch — must be
// bit-identical to the legacy layout's walks (legacy_ref_test.go),
// across global, union and per-instruction idealizations.

import (
	"context"
	"testing"

	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/rng"
	"icost/internal/workload"
)

// buildBenchGraph simulates n instructions of the named benchmark and
// returns the built dependence graph.
func buildBenchGraph(tb testing.TB, bench string, seed uint64, n int) *ooo.Result {
	tb.Helper()
	w, err := workload.Cached(bench, seed)
	if err != nil {
		tb.Fatalf("workload %s: %v", bench, err)
	}
	tr := w.MustExecute(n, seed+1)
	res, err := ooo.Run(tr, ooo.DefaultConfig())
	if err != nil {
		tb.Fatalf("simulate %s: %v", bench, err)
	}
	return res
}

// propertyIdeals is the idealization set the properties quantify over:
// the empty set, every base category, representative unions, the full
// union, and seeded per-instruction masks.
func propertyIdeals(r *rng.Rand, n int) []depgraph.Ideal {
	ids := []depgraph.Ideal{{}}
	for b := 0; b < depgraph.NumFlags; b++ {
		ids = append(ids, depgraph.Ideal{Global: 1 << b})
	}
	ids = append(ids,
		depgraph.Ideal{Global: depgraph.IdealDL1 | depgraph.IdealDMiss},
		depgraph.Ideal{Global: depgraph.IdealBMisp | depgraph.IdealWindow | depgraph.IdealBW},
		depgraph.Ideal{Global: depgraph.AllFlags},
	)
	for k := 0; k < 2; k++ {
		per := make([]depgraph.Flags, n)
		for i := range per {
			if r.Bool(0.25) {
				per[i] = depgraph.Flags(r.Uint64()) & depgraph.AllFlags
			}
		}
		ids = append(ids, depgraph.Ideal{Global: depgraph.Flags(r.Uint64()) & depgraph.AllFlags, PerInst: per})
	}
	return ids
}

func sameTimes(t *testing.T, bench string, seed uint64, id depgraph.Ideal, got, want *depgraph.Times) {
	t.Helper()
	cols := []struct {
		name      string
		got, want []int64
	}{
		{"D", got.D, want.D}, {"R", got.R, want.R}, {"E", got.E, want.E},
		{"P", got.P, want.P}, {"C", got.C, want.C},
	}
	for _, c := range cols {
		for i := range c.want {
			if c.got[i] != c.want[i] {
				t.Fatalf("%s seed %d ideal %v: %s[%d] = %d, legacy %d",
					bench, seed, id, c.name, i, c.got[i], c.want[i])
			}
		}
	}
}

// TestCSRBitIdenticalAcrossBenches is the headline property: the CSR
// walks equal the legacy walks bit for bit on every benchmark × 3
// seeds, for exec times, node times, slacks and batched evaluation.
func TestCSRBitIdenticalAcrossBenches(t *testing.T) {
	const n = 2500
	ctx := context.Background()
	for _, bench := range workload.Names() {
		for seed := uint64(1); seed <= 3; seed++ {
			res := buildBenchGraph(t, bench, seed, n)
			g := res.Graph
			r := rng.New(seed * 977)
			ids := propertyIdeals(r, g.Len())

			var globals []depgraph.Ideal
			for _, id := range ids {
				if id.PerInst == nil {
					globals = append(globals, id)
				}
			}
			batch, err := g.EvalBatch(ctx, globals)
			if err != nil {
				t.Fatalf("%s seed %d: EvalBatch: %v", bench, seed, err)
			}
			legacyBatch := legacyEvalBatch(g, globals)
			for k := range globals {
				if batch[k] != legacyBatch[k] {
					t.Fatalf("%s seed %d ideal %v: EvalBatch %d, legacy %d",
						bench, seed, globals[k], batch[k], legacyBatch[k])
				}
			}

			for _, id := range ids {
				if got, want := g.ExecTime(id), legacyExecTime(g, id); got != want {
					t.Fatalf("%s seed %d ideal %v: ExecTime %d, legacy %d",
						bench, seed, id, got, want)
				}
				sameTimes(t, bench, seed, id, g.NodeTimes(id), legacyNodeTimes(g, id))
				gotSl := g.Slacks(id)
				wantSl := legacySlacks(g, id)
				for i := range wantSl {
					if gotSl[i] != wantSl[i] {
						t.Fatalf("%s seed %d ideal %v: Slacks[%d] = %d, legacy %d",
							bench, seed, id, i, gotSl[i], wantSl[i])
					}
				}
			}
			depgraph.ReleaseTimes(res.Times)
			g.Release()
		}
	}
}

// TestCSRBitIdenticalWideLanes re-proves batch bit-exactness at every
// legal configured lane width, including widths above the old 8-lane
// cap, over a real microexecution.
func TestCSRBitIdenticalWideLanes(t *testing.T) {
	res := buildBenchGraph(t, "gcc", 5, 3000)
	defer func() { depgraph.ReleaseTimes(res.Times); res.Graph.Release() }()
	base := res.Graph

	var ids []depgraph.Ideal
	for f := depgraph.Flags(0); f < 40; f++ {
		ids = append(ids, depgraph.Ideal{Global: f & depgraph.AllFlags})
	}
	want := legacyEvalBatch(base, ids)
	for _, lanes := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := base.Cfg
		cfg.Lanes = lanes
		if err := cfg.Validate(); err != nil {
			t.Fatalf("lanes %d: %v", lanes, err)
		}
		g := base.WithConfig(cfg)
		got, err := g.EvalBatch(context.Background(), ids)
		if err != nil {
			t.Fatalf("lanes %d: %v", lanes, err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("lanes %d ideal %v: %d, legacy %d", lanes, ids[k], got[k], want[k])
			}
		}
	}
}

// TestLanesValidation pins the Config.Lanes contract: 0 is auto, legal
// widths are powers of two up to 64, everything else is rejected.
func TestLanesValidation(t *testing.T) {
	for _, lanes := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		cfg := depgraph.DefaultConfig()
		cfg.Lanes = lanes
		if err := cfg.Validate(); err != nil {
			t.Fatalf("lanes %d: unexpected error %v", lanes, err)
		}
	}
	for _, lanes := range []int{-1, 3, 5, 6, 7, 12, 24, 65, 128} {
		cfg := depgraph.DefaultConfig()
		cfg.Lanes = lanes
		if err := cfg.Validate(); err == nil {
			t.Fatalf("lanes %d: want validation error", lanes)
		}
	}
}
