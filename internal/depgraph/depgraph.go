// Package depgraph implements the paper's dependence-graph model of a
// microexecution (Section 3, Tables 2-3, Figure 2).
//
// Each dynamic instruction i contributes five nodes:
//
//	D  dispatch into the instruction window
//	R  all data operands ready
//	E  begins execution
//	P  completes execution
//	C  commits
//
// and the constraints between nodes are latency-labelled edges:
//
//	DD   in-order dispatch            D(i-1) -> D(i)   icache/fetch-break latency
//	FBW  finite fetch bandwidth       D(i-fbw) -> D(i) latency 1
//	CD   finite re-order buffer       C(i-w) -> D(i)   latency 0
//	PD   control dependence           P(i-1) -> D(i)   branch recovery, if i-1 mispredicted
//	DR   execution follows dispatch   D(i) -> R(i)     constant pipeline latency
//	PR   data dependences             P(j) -> R(i)     issue-wakeup extra latency
//	RE   execute after ready          R(i) -> E(i)     functional-unit contention
//	EP   complete after execute       E(i) -> P(i)     execution latency
//	PP   cache-line sharing           P(j) -> P(i)     latency 0, if j is i's line's miss leader
//	PC   commit follows completion    P(i) -> C(i)     constant pipeline latency
//	CC   in-order commit              C(i-1) -> C(i)   latency 0
//	CBW  commit bandwidth             C(i-cbw) -> C(i) latency 1
//
// The graph is stored as per-instruction records (structure-of-arrays)
// rather than an explicit edge list: every edge's source is implied by
// its kind, so node times under any idealization are recomputed with
// one in-order pass. Idealizations (paper Table 1) change edge
// latencies — they never re-run the machine — which is exactly the
// paper's "determine the effect of an idealization without performing
// it" methodology.
package depgraph

import (
	"context"
	"fmt"
	"sync"

	"icost/internal/cache"
	"icost/internal/faultinject"
	"icost/internal/isa"
)

// Flags selects which event classes are idealized. These are the
// eight base breakdown categories of paper Table 4.
type Flags uint16

const (
	// IdealDL1 zeroes the level-one data-cache access latency
	// (category "dl1").
	IdealDL1 Flags = 1 << iota
	// IdealDMiss turns data-cache and DTLB misses into hits
	// (category "dmiss").
	IdealDMiss
	// IdealICache turns instruction-cache and ITLB misses into hits
	// (category "imiss").
	IdealICache
	// IdealBMisp turns branch mispredictions into correct
	// predictions (category "bmisp").
	IdealBMisp
	// IdealWindow enlarges the instruction window 20x (the paper's
	// finite approximation of an infinite window; category "win").
	IdealWindow
	// IdealBW gives infinite fetch, issue and commit bandwidth
	// (category "bw").
	IdealBW
	// IdealShortALU zeroes one-cycle integer-op latency (category
	// "shalu").
	IdealShortALU
	// IdealLongALU zeroes multi-cycle integer and FP op latency
	// (category "lgalu").
	IdealLongALU

	// NumFlags is the number of base categories.
	NumFlags = 8
	// AllFlags idealizes everything.
	AllFlags Flags = 1<<NumFlags - 1
)

var flagNames = [NumFlags]string{
	"dl1", "dmiss", "imiss", "bmisp", "win", "bw", "shalu", "lgalu",
}

// String renders a flag set as "dl1+win" etc.
func (f Flags) String() string {
	if f == 0 {
		return "none"
	}
	s := ""
	for b := 0; b < NumFlags; b++ {
		if f&(1<<b) != 0 {
			if s != "" {
				s += "+"
			}
			s += flagNames[b]
		}
	}
	return s
}

// FlagByName maps a category name ("dl1", "win", ...) to its flag.
func FlagByName(name string) (Flags, bool) {
	for b := 0; b < NumFlags; b++ {
		if flagNames[b] == name {
			return 1 << b, true
		}
	}
	return 0, false
}

// FlagNames returns the category names in flag-bit order.
func FlagNames() []string { return flagNames[:] }

// Ideal selects the events to idealize: Global applies to every
// instruction; PerInst (optional, same length as the graph) is OR'd
// in per instruction, enabling event-set granularity such as "all
// dynamic misses of one static load".
type Ideal struct {
	Global  Flags
	PerInst []Flags
	// Scale assigns each selected category a scale factor α (see
	// scale.go): instead of removing the category outright, its
	// latency contribution is multiplied by α ∈ [0,1]. The zero value
	// is all-α=0 — the binary zero-out — so every existing Ideal
	// keeps its exact meaning. Entries of unselected categories are
	// ignored.
	Scale ScaleVec
}

// Of returns the effective flags for instruction i.
func (id Ideal) Of(i int) Flags {
	if id.PerInst == nil {
		return id.Global
	}
	return id.Global | id.PerInst[i]
}

// Config carries the machine parameters the graph model needs to
// recompute edge latencies under idealization. It mirrors the
// simulator configuration (paper Table 6).
type Config struct {
	// FetchBW and CommitBW are instructions per cycle (FBW/CBW edges).
	FetchBW  int
	CommitBW int
	// Window is the re-order buffer size (CD edges).
	Window int
	// WindowIdealFactor is the window multiplier used to approximate
	// an infinite window (paper Table 1 uses 20).
	WindowIdealFactor int
	// DispatchToReady is the DR edge latency.
	DispatchToReady int
	// CompleteToCommit is the PC edge latency.
	CompleteToCommit int
	// BranchRecovery is the PD edge latency (the branch-misprediction
	// loop length).
	BranchRecovery int
	// WakeupExtra is added to every PR edge; 0 models single-cycle
	// issue-wakeup, 1 models the two-cycle wakeup loop of paper
	// Section 4.2.
	WakeupExtra int

	// Memory latencies (shared with the cache hierarchy config).
	DL1Latency     int
	L2Latency      int
	MemLatency     int
	TLBMissLatency int

	// Lanes is the batch-evaluator lane width: how many idealizations
	// one kernel pass carries. 0 picks automatically (see laneWidth);
	// otherwise it must be a power of two in [1, 64]. Lanes affects
	// only evaluation throughput, never results, so it is excluded
	// from session identity and snapshots.
	Lanes int
}

// Validate rejects nonsensical parameters.
func (c *Config) Validate() error {
	switch {
	case c.FetchBW < 1 || c.CommitBW < 1:
		return fmt.Errorf("depgraph: bandwidth must be >= 1")
	case c.Window < 1:
		return fmt.Errorf("depgraph: window must be >= 1")
	case c.WindowIdealFactor < 2:
		return fmt.Errorf("depgraph: window ideal factor must be >= 2")
	case c.DL1Latency < 0 || c.L2Latency < 0 || c.MemLatency < 0 || c.TLBMissLatency < 0:
		return fmt.Errorf("depgraph: negative latency")
	case c.DispatchToReady < 0 || c.CompleteToCommit < 0 || c.BranchRecovery < 0 || c.WakeupExtra < 0:
		return fmt.Errorf("depgraph: negative pipeline latency")
	case c.Lanes != 0 && (c.Lanes < 1 || c.Lanes > maxLanes || c.Lanes&(c.Lanes-1) != 0):
		return fmt.Errorf("depgraph: lanes must be 0 (auto) or a power of two in [1, %d], got %d", maxLanes, c.Lanes)
	}
	return nil
}

// InstInfo annotates one dynamic instruction with the outcomes that
// determine its edge latencies.
type InstInfo struct {
	// Op is the opcode class.
	Op isa.Op
	// SIdx is the static instruction index (-1 if unknown, e.g. in
	// profiler fragments built without full binary context).
	SIdx int32
	// Mispredict marks a mispredicted control transfer (PD edge from
	// this instruction's P to the next instruction's D).
	Mispredict bool
	// DataLevel and DTLBMiss describe the data access of loads and
	// stores.
	DataLevel cache.Level
	DTLBMiss  bool
	// ILevel and ITLBMiss describe this instruction's fetch.
	ILevel   cache.Level
	ITLBMiss bool
}

// Graph is the dependence-graph model of one microexecution.
// Fields are exported for the builders in packages ooo and profiler;
// analysis code should treat a Graph as immutable.
//
// The seven per-instruction columns share one dynamic index space:
// any code that reassigns, reslices or rebuilds one of them wholesale
// must do the same to all seven, or every walk after that reads
// desynchronized records. colsync enforces the invariant, here and in
// every package that imports this one.
//
//lint:columns csr Info,DDBreak,RELat,CCLat,Prod1,Prod2,PPLeader
type Graph struct {
	// Cfg is the machine configuration.
	Cfg Config
	// Info holds per-instruction annotations.
	Info []InstInfo
	// DDBreak is extra DD-edge latency from fetch-group breaks
	// (taken-branch limits), excluding the icache penalty, which is
	// derived from Info so it can be idealized.
	DDBreak []uint8
	// RELat is the recorded functional-unit contention per
	// instruction (RE edge latency).
	RELat []int32
	// CCLat is the recorded store-commit bandwidth contention on the
	// CC edge into each instruction (paper Figure 5b: "store BW
	// contention", collected dynamically). Zero for non-contended
	// commits; removed by IdealBW.
	CCLat []int32
	// Prod1, Prod2 are the dynamic indices of register producers (PR
	// edges); -1 means the operand was ready long before.
	Prod1, Prod2 []int32
	// PPLeader is the dynamic index of the load whose outstanding
	// miss this instruction's line depends on (PP edge); -1 if none.
	PPLeader []int32

	// flatOnce guards the lazily built, idealization-independent flat
	// CSR tables every walk and batch kernel reads (see csr.go).
	// Built on first walk; Info must not be mutated after.
	flatOnce sync.Once
	flat     flatTables

	// arena backs the record slices (and the pre-carved flat tables)
	// when the graph came from NewPooled (see arena.go); nil for New
	// and WithConfig graphs.
	arena *memArena
}

// WithConfig returns a graph sharing this graph's per-instruction
// records but evaluated under a different machine configuration
// (what-if analysis on a built microexecution). The clone carries its
// own lazily built flat tables — they depend on the configuration —
// so both graphs can be walked independently. Graphs cannot be copied
// by value for the same reason.
func (g *Graph) WithConfig(cfg Config) *Graph {
	return &Graph{
		Cfg:      cfg,
		Info:     g.Info,
		DDBreak:  g.DDBreak,
		RELat:    g.RELat,
		CCLat:    g.CCLat,
		Prod1:    g.Prod1,
		Prod2:    g.Prod2,
		PPLeader: g.PPLeader,
	}
}

// New allocates an empty graph for n instructions.
func New(cfg Config, n int) *Graph {
	g := &Graph{
		Cfg:      cfg,
		Info:     make([]InstInfo, n),
		DDBreak:  make([]uint8, n),
		RELat:    make([]int32, n),
		CCLat:    make([]int32, n),
		Prod1:    make([]int32, n),
		Prod2:    make([]int32, n),
		PPLeader: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		g.Prod1[i] = -1
		g.Prod2[i] = -1
		g.PPLeader[i] = -1
	}
	return g
}

// Len returns the number of instructions.
func (g *Graph) Len() int { return len(g.Info) }

// BaseExecLat is the execution latency of a non-memory opcode on the
// Table 6 machine: 1-cycle integer ALU, 3-cycle integer multiply,
// 2-cycle FP add, 4-cycle FP multiply, 12-cycle FP divide. Branches
// and nops resolve in one ALU cycle.
func BaseExecLat(op isa.Op) int64 {
	switch op {
	case isa.OpIntMul:
		return 3
	case isa.OpFloatAdd:
		return 2
	case isa.OpFloatMul:
		return 4
	case isa.OpFloatDiv:
		return 12
	default:
		return 1
	}
}

// EPLat returns the EP-edge (execution) latency of instruction i
// under flags f. For memory operations the latency is composed from
// the access outcome so that idealizations can remove exactly their
// component: IdealDL1 removes the L1-hit component, IdealDMiss the
// miss and TLB components.
func (g *Graph) EPLat(i int, f Flags) int64 {
	info := &g.Info[i]
	op := info.Op
	if op.IsMem() {
		var lat int64
		if f&IdealDL1 == 0 {
			lat += int64(g.Cfg.DL1Latency)
		}
		if f&IdealDMiss == 0 {
			if info.DTLBMiss {
				lat += int64(g.Cfg.TLBMissLatency)
			}
			switch info.DataLevel {
			case cache.LevelL2:
				lat += int64(g.Cfg.L2Latency)
			case cache.LevelMem:
				lat += int64(g.Cfg.L2Latency) + int64(g.Cfg.MemLatency)
			}
		}
		return lat
	}
	switch {
	case op.IsShortALU():
		if f&IdealShortALU != 0 {
			return 0
		}
		return 1
	case op.IsLongALU():
		if f&IdealLongALU != 0 {
			return 0
		}
		return BaseExecLat(op)
	default:
		return BaseExecLat(op)
	}
}

// DDLat returns the DD-edge latency into instruction i under flags f:
// the fetch-break penalty (removed by IdealBW) plus the icache/ITLB
// penalty (removed by IdealICache).
func (g *Graph) DDLat(i int, f Flags) int64 {
	var lat int64
	if f&IdealBW == 0 {
		lat += int64(g.DDBreak[i])
	}
	if f&IdealICache == 0 {
		info := &g.Info[i]
		if info.ITLBMiss {
			lat += int64(g.Cfg.TLBMissLatency)
		}
		switch info.ILevel {
		case cache.LevelL2:
			lat += int64(g.Cfg.L2Latency)
		case cache.LevelMem:
			lat += int64(g.Cfg.L2Latency) + int64(g.Cfg.MemLatency)
		}
	}
	return lat
}

// Times holds the node times of every instruction; returned by
// NodeTimes for tests, visualization and the profiler.
type Times struct {
	D, R, E, P, C []int64

	// arena is non-nil when the slices came from pooled scratch
	// (AcquireTimes); releaseTimes recycles it.
	arena *memArena
}

// ExecTime returns the execution time (cycles) of the microexecution
// under the given idealization: the commit time of the last
// instruction plus one. ExecTime is infallible: it walks with a
// background context, which can never be cancelled, so the only
// error path of the walk is unreachable and a zero return always
// means zero cycles, never a swallowed error.
//
//lint:ignore ctxflow infallible wrapper over ExecTimeCtx; a background ctx cannot cancel
func (g *Graph) ExecTime(id Ideal) int64 {
	t, err := g.ExecTimeCtx(context.Background(), id)
	if err != nil {
		panic("depgraph: background-context walk failed: " + err.Error())
	}
	return t
}

// ExecTimeCtx is ExecTime with cancellation: the graph walk checks
// ctx periodically (every ctxCheckStride instructions) and returns
// ctx.Err() if the query was cancelled or timed out mid-walk. A
// long-lived analysis service uses this to abort queries whose
// clients have gone away. The node-time scratch comes from a pool,
// so a warm query allocates nothing.
//
//lint:hotpath
func (g *Graph) ExecTimeCtx(ctx context.Context, id Ideal) (int64, error) {
	n := g.Len()
	if n == 0 {
		return 0, nil
	}
	t := acquireTimes(n)
	defer releaseTimes(t)
	if err := g.runInto(ctx, id, t); err != nil {
		return 0, err
	}
	return t.C[n-1] + 1, nil
}

// NodeTimes computes all node times under the given idealization.
// Like ExecTime it is infallible: the background context cannot
// cancel the walk, so the result is never nil.
//
//lint:ignore ctxflow infallible wrapper over runCtx; a background ctx cannot cancel
func (g *Graph) NodeTimes(id Ideal) *Times {
	t, err := g.runCtx(context.Background(), id)
	if err != nil {
		panic("depgraph: background-context walk failed: " + err.Error())
	}
	return t
}

// ctxCheckStride is how many instructions the forward and backward
// passes process between ctx.Err() polls: frequent enough that
// cancellation lands within microseconds, rare enough to be free.
const ctxCheckStride = 2048

// runCtx evaluates the recurrence into freshly allocated node times
// that the caller may keep.
func (g *Graph) runCtx(ctx context.Context, id Ideal) (*Times, error) {
	n := g.Len()
	t := &Times{
		D: make([]int64, n), R: make([]int64, n), E: make([]int64, n),
		P: make([]int64, n), C: make([]int64, n),
	}
	if err := g.runInto(ctx, id, t); err != nil {
		return nil, err
	}
	return t, nil
}

// runInto evaluates the recurrence with one in-order pass, writing
// into t (whose slices must be Len() long; every element is
// overwritten, so pooled scratch needs no zeroing). Every node's time
// is the max over its in-edges of source time plus edge latency, so
// the unidealized result reproduces the simulator's timing exactly
// (the simulator computes these same maxima while arbitrating). The
// pass aborts with ctx.Err() if ctx is done.
//
// Both kernels stream the flat CSR columns (csr.go): the latency
// decomposition is selected by flag instead of re-derived from
// InstInfo, and a global-only idealization additionally hoists every
// flag test out of the instruction loop.
func (g *Graph) runInto(ctx context.Context, id Ideal, t *Times) error {
	// Fault hook: fires only on cancellable walks (ctx with a Done
	// channel); the infallible background-context wrappers are exempt
	// by contract — their callers are promised no error, ever.
	if ctx.Done() != nil {
		if err := faultinject.Hit(ctx, faultinject.GraphWalk); err != nil {
			return err
		}
	}
	if !id.Scale.IsZero() {
		return g.runScaled(ctx, id, t)
	}
	if id.PerInst == nil {
		return g.runGlobal(ctx, id.Global, t)
	}
	return g.runGeneric(ctx, id, t)
}

// runGlobal is the scalar forward walk for a global-only
// idealization: flag-derived constants hoist out of the loop and the
// body reads only flat int32/int64 columns.
//
//lint:hotpath
func (g *Graph) runGlobal(ctx context.Context, f Flags, t *Times) error {
	n := g.Len()
	ft := g.tables()
	cfg := &g.Cfg
	ln := laneOf(cfg, f)
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw, win := cfg.FetchBW, cfg.CommitBW, ln.win
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	epB, epD1, epDm, epSh, epLg, ic, mp :=
		ft.epBase, ft.epDL1, ft.epDMiss, ft.epShort, ft.epLong, ft.icache, ft.mispPrev
	tD, tR, tE, tP, tC := t.D, t.R, t.E, t.P, t.C

	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}

		// --- D node (DD, PD, FBW, CD edges) ---
		var d int64
		if ln.bw {
			d = int64(ddB[i])
		}
		if ln.ic {
			d += int64(ic[i])
		}
		if i > 0 {
			d += tD[i-1]
			if mp[i] != 0 && ln.bm {
				d = max(d, tP[i-1]+rec)
			}
		}
		if ln.bw && i >= fbw {
			d = max(d, tD[i-fbw]+1)
		}
		if i >= win {
			d = max(d, tC[i-win])
		}
		tD[i] = d

		// --- R node (DR, PR edges) ---
		r := d + dr
		if p := pr1[i]; p >= 0 {
			r = max(r, tP[p]+wake)
		}
		if p := pr2[i]; p >= 0 {
			r = max(r, tP[p]+wake)
		}
		tR[i] = r

		// --- E node (RE edge) ---
		e := r
		if ln.bw {
			e += int64(reL[i])
		}
		tE[i] = e

		// --- P node (EP, PP edges) ---
		p := e + int64(epB[i])
		if ln.dl1 {
			p += int64(epD1[i])
		}
		if ln.dm {
			p += int64(epDm[i])
		}
		if ln.sh {
			p += int64(epSh[i])
		}
		if ln.lg {
			p += int64(epLg[i])
		}
		if l := ld[i]; l >= 0 && ln.dm {
			p = max(p, tP[l])
		}
		tP[i] = p

		// --- C node (PC, CC, CBW edges) ---
		c := p + pc
		if i > 0 {
			cc := tC[i-1]
			if ln.bw {
				cc += int64(ccL[i])
			}
			c = max(c, cc)
		}
		if ln.bw && i >= cbw {
			c = max(c, tC[i-cbw]+1)
		}
		tC[i] = c
	}
	return nil
}

// runGeneric handles idealizations with a per-instruction mask: flags
// are recomposed per instruction, but the body still streams the flat
// columns instead of re-deriving latencies from InstInfo.
//
//lint:hotpath
func (g *Graph) runGeneric(ctx context.Context, id Ideal, t *Times) error {
	n := g.Len()
	ft := g.tables()
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	epB, epD1, epDm, epSh, epLg, ic, mp :=
		ft.epBase, ft.epDL1, ft.epDMiss, ft.epShort, ft.epLong, ft.icache, ft.mispPrev

	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		f := id.Of(i)

		// --- D node ---
		var d int64
		if f&IdealBW == 0 {
			d = int64(ddB[i])
		}
		if f&IdealICache == 0 {
			d += int64(ic[i])
		}
		if i > 0 {
			d += t.D[i-1]
			// PD edge (branch recovery), gated by the branch's flags.
			if mp[i] != 0 && id.Of(i-1)&IdealBMisp == 0 {
				d = max(d, t.P[i-1]+rec)
			}
		}
		if f&IdealBW == 0 && i >= fbw {
			d = max(d, t.D[i-fbw]+1)
		}
		w := cfg.Window
		if f&IdealWindow != 0 {
			w *= cfg.WindowIdealFactor
		}
		if i >= w {
			d = max(d, t.C[i-w])
		}
		t.D[i] = d

		// --- R node ---
		r := d + dr
		if p := pr1[i]; p >= 0 {
			r = max(r, t.P[p]+wake)
		}
		if p := pr2[i]; p >= 0 {
			r = max(r, t.P[p]+wake)
		}
		t.R[i] = r

		// --- E node ---
		e := r
		if f&IdealBW == 0 {
			e += int64(reL[i])
		}
		t.E[i] = e

		// --- P node ---
		p := e + int64(epB[i])
		if f&IdealDL1 == 0 {
			p += int64(epD1[i])
		}
		if f&IdealDMiss == 0 {
			p += int64(epDm[i])
		}
		if f&IdealShortALU == 0 {
			p += int64(epSh[i])
		}
		if f&IdealLongALU == 0 {
			p += int64(epLg[i])
		}
		if l := ld[i]; l >= 0 && f&IdealDMiss == 0 {
			p = max(p, t.P[l])
		}
		t.P[i] = p

		// --- C node ---
		c := p + pc
		if i > 0 {
			cc := t.C[i-1]
			if f&IdealBW == 0 {
				cc += int64(ccL[i])
			}
			c = max(c, cc)
		}
		if f&IdealBW == 0 && i >= cbw {
			c = max(c, t.C[i-cbw]+1)
		}
		t.C[i] = c
	}
	return nil
}
