package depgraph

import (
	"testing"
	"testing/quick"

	"icost/internal/cache"
	"icost/internal/isa"
	"icost/internal/rng"
)

// smallCfg is a tiny machine for hand-checkable tests: no pipeline
// constants, 2-wide, 4-entry window.
func smallCfg() Config {
	return Config{
		FetchBW: 2, CommitBW: 2,
		Window: 4, WindowIdealFactor: 20,
		DispatchToReady: 0, CompleteToCommit: 0,
		BranchRecovery: 5, WakeupExtra: 0,
		DL1Latency: 2, L2Latency: 12, MemLatency: 100, TLBMissLatency: 30,
	}
}

func addGraph(cfg Config, n int) *Graph {
	g := New(cfg, n)
	for i := 0; i < n; i++ {
		g.Info[i] = InstInfo{Op: isa.OpIntShort, SIdx: int32(i)}
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New(smallCfg(), 0)
	if got := g.ExecTime(Ideal{}); got != 0 {
		t.Fatalf("empty ExecTime = %d", got)
	}
	if g.CriticalPath(Ideal{}) != nil {
		t.Fatal("empty graph has a critical path")
	}
}

func TestSingleInstructionTimes(t *testing.T) {
	g := addGraph(smallCfg(), 1)
	ts := g.NodeTimes(Ideal{})
	// D=0, R=0 (DR lat 0), E=0, P=1 (1-cycle add), C=1.
	if ts.D[0] != 0 || ts.R[0] != 0 || ts.E[0] != 0 || ts.P[0] != 1 || ts.C[0] != 1 {
		t.Fatalf("times %v %v %v %v %v", ts.D[0], ts.R[0], ts.E[0], ts.P[0], ts.C[0])
	}
	if g.ExecTime(Ideal{}) != 2 {
		t.Fatalf("ExecTime = %d", g.ExecTime(Ideal{}))
	}
}

func TestSerialChainLatency(t *testing.T) {
	const n = 50
	g := addGraph(smallCfg(), n)
	for i := 1; i < n; i++ {
		g.Prod1[i] = int32(i - 1)
	}
	// Each add takes 1 cycle and depends on the previous: P[n-1] = n.
	ts := g.NodeTimes(Ideal{})
	if ts.P[n-1] != n {
		t.Fatalf("chain P = %d, want %d", ts.P[n-1], n)
	}
}

func TestIndependentOpsBandwidthBound(t *testing.T) {
	const n = 100
	g := addGraph(smallCfg(), n)
	// No deps: 2-wide fetch and commit bound the rate at 2/cycle,
	// and the 4-entry window also binds; time ~ n/2.
	total := g.ExecTime(Ideal{})
	if total < n/2 || total > n/2+16 {
		t.Fatalf("bandwidth-bound time %d for %d independent ops", total, n)
	}
	// With infinite bandwidth AND window the chain collapses.
	fast := g.ExecTime(Ideal{Global: IdealBW | IdealWindow})
	if fast > 8 {
		t.Fatalf("idealized time %d", fast)
	}
}

func TestWindowEdgeBinds(t *testing.T) {
	cfg := smallCfg()
	const n = 12
	g := addGraph(cfg, n)
	// Make instruction 0 a long memory miss; with a 4-entry window,
	// instruction 4 cannot dispatch until 0 commits.
	g.Info[0] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem}
	ts := g.NodeTimes(Ideal{})
	if ts.D[4] < ts.C[0] {
		t.Fatalf("D[4]=%d before C[0]=%d despite 4-entry window", ts.D[4], ts.C[0])
	}
	// Idealizing the window removes the stall.
	ts2 := g.NodeTimes(Ideal{Global: IdealWindow})
	if ts2.D[4] >= ts2.C[0] {
		t.Fatalf("window idealization did not unbind D[4] (D=%d C0=%d)", ts2.D[4], ts2.C[0])
	}
}

func TestMispredictRecovery(t *testing.T) {
	cfg := smallCfg()
	g := addGraph(cfg, 3)
	g.Info[1].Op = isa.OpBranch
	g.Info[1].Mispredict = true
	ts := g.NodeTimes(Ideal{})
	// D[2] >= P[1] + recovery(5).
	if ts.D[2] != ts.P[1]+5 {
		t.Fatalf("D[2]=%d, want P[1]+5=%d", ts.D[2], ts.P[1]+5)
	}
	// IdealBMisp removes the PD edge.
	ts2 := g.NodeTimes(Ideal{Global: IdealBMisp})
	if ts2.D[2] >= ts2.P[1]+5 {
		t.Fatalf("bmisp idealization kept recovery: D[2]=%d", ts2.D[2])
	}
}

func TestPerInstMispredictIdealization(t *testing.T) {
	cfg := smallCfg()
	g := addGraph(cfg, 4)
	g.Info[1].Op = isa.OpBranch
	g.Info[1].Mispredict = true
	per := make([]Flags, 4)
	per[1] = IdealBMisp // idealize only this branch
	base := g.ExecTime(Ideal{})
	ideal := g.ExecTime(Ideal{PerInst: per})
	if ideal >= base {
		t.Fatalf("per-inst bmisp idealization did not speed up: %d vs %d", ideal, base)
	}
	if ideal != g.ExecTime(Ideal{Global: IdealBMisp}) {
		t.Fatal("single-branch per-inst should equal global here")
	}
}

func TestICachePenaltyOnDDEdge(t *testing.T) {
	cfg := smallCfg()
	g := addGraph(cfg, 3)
	g.Info[1].ILevel = cache.LevelL2
	ts := g.NodeTimes(Ideal{})
	if ts.D[1] != ts.D[0]+12 {
		t.Fatalf("D[1]=%d, want D[0]+12", ts.D[1])
	}
	ts2 := g.NodeTimes(Ideal{Global: IdealICache})
	if ts2.D[1] != ts2.D[0] {
		t.Fatalf("icache idealization kept penalty: D[1]=%d", ts2.D[1])
	}
}

func TestEPLatComposition(t *testing.T) {
	g := New(DefaultConfig(), 4)
	g.Info[0] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelL1}
	g.Info[1] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelL2}
	g.Info[2] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem, DTLBMiss: true}
	g.Info[3] = InstInfo{Op: isa.OpFloatDiv}

	cases := []struct {
		i    int
		f    Flags
		want int64
	}{
		{0, 0, 2},          // L1 hit
		{0, IdealDL1, 0},   // hit latency idealized
		{0, IdealDMiss, 2}, // miss idealization leaves hits alone
		{1, 0, 14},         // 2 + 12
		{1, IdealDMiss, 2}, // miss -> hit
		{1, IdealDL1, 12},  // only the L1 component removed
		{1, IdealDL1 | IdealDMiss, 0},
		{2, 0, 144}, // 2 + 12 + 100 + 30
		{2, IdealDMiss, 2},
		{3, 0, 12},
		{3, IdealLongALU, 0},
		{3, IdealShortALU, 12}, // shalu does not affect FP
	}
	for _, c := range cases {
		if got := g.EPLat(c.i, c.f); got != c.want {
			t.Errorf("EPLat(%d, %v) = %d, want %d", c.i, c.f, got, c.want)
		}
	}
}

func TestPPEdgeCacheLineSharing(t *testing.T) {
	cfg := smallCfg()
	g := addGraph(cfg, 3)
	// Load 0 misses to memory; load 2 is a partial miss on the same
	// line: functionally a hit but bound to the leader's completion.
	g.Info[0] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem}
	g.Info[2] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelL1}
	g.PPLeader[2] = 0
	ts := g.NodeTimes(Ideal{})
	if ts.P[2] != ts.P[0] {
		t.Fatalf("partial miss P[2]=%d, want leader P[0]=%d", ts.P[2], ts.P[0])
	}
	// Idealizing dmiss makes the leader fast and unbinds the edge.
	ts2 := g.NodeTimes(Ideal{Global: IdealDMiss})
	if ts2.P[2] >= ts.P[0] {
		t.Fatalf("dmiss idealization left partial miss slow: %d", ts2.P[2])
	}
}

func TestWakeupExtraSerializesDependents(t *testing.T) {
	cfg := smallCfg()
	g1 := addGraph(cfg, 2)
	g1.Prod1[1] = 0
	t1 := g1.ExecTime(Ideal{})

	cfg2 := cfg
	cfg2.WakeupExtra = 1
	g2 := addGraph(cfg2, 2)
	g2.Prod1[1] = 0
	t2 := g2.ExecTime(Ideal{})
	if t2 != t1+1 {
		t.Fatalf("2-cycle wakeup time %d, want %d", t2, t1+1)
	}
}

func TestFetchBreakOnDDEdge(t *testing.T) {
	cfg := smallCfg()
	g := addGraph(cfg, 3)
	g.DDBreak[1] = 1
	ts := g.NodeTimes(Ideal{})
	if ts.D[1] != ts.D[0]+1 {
		t.Fatalf("D[1]=%d, want D[0]+1", ts.D[1])
	}
	// IdealBW removes the break.
	ts2 := g.NodeTimes(Ideal{Global: IdealBW})
	if ts2.D[1] != ts2.D[0] {
		t.Fatalf("bw idealization kept break: %d", ts2.D[1])
	}
}

func TestREContention(t *testing.T) {
	cfg := smallCfg()
	g := addGraph(cfg, 2)
	g.RELat[1] = 3
	ts := g.NodeTimes(Ideal{})
	if ts.E[1] != ts.R[1]+3 {
		t.Fatalf("E[1]=%d, want R[1]+3", ts.E[1])
	}
	ts2 := g.NodeTimes(Ideal{Global: IdealBW})
	if ts2.E[1] != ts2.R[1] {
		t.Fatal("bw idealization kept contention")
	}
}

// TestFigure2Shape reproduces the structure of paper Figure 2: a
// 4-entry ROB, 2-wide machine, where a load's EP edge is in series
// with the CD window edge of a later instruction.
func TestFigure2Shape(t *testing.T) {
	cfg := smallCfg() // 4-entry ROB, 2-wide: the Figure 2 machine
	const n = 7
	g := New(cfg, n)
	for i := 0; i < n; i++ {
		g.Info[i] = InstInfo{Op: isa.OpIntShort, SIdx: int32(i)}
	}
	// i1 is a load that misses to L2; i2 consumes it.
	g.Info[1] = InstInfo{Op: isa.OpLoad, SIdx: 1, DataLevel: cache.LevelL2}
	g.Prod1[2] = 1

	// Structural checks via InEdges.
	edges := g.InEdges(5, Ideal{})
	var kinds []EdgeKind
	for _, e := range edges {
		kinds = append(kinds, e.Kind)
	}
	want := map[EdgeKind]bool{EdgeDD: true, EdgeFBW: true, EdgeCD: true,
		EdgeDR: true, EdgeRE: true, EdgeEP: true, EdgePC: true,
		EdgeCC: true, EdgeCBW: true}
	for k := range want {
		found := false
		for _, kk := range kinds {
			if kk == k {
				found = true
			}
		}
		if !found {
			t.Errorf("instruction 5 missing %v edge", k)
		}
	}
	// The CD edge for instruction 5 comes from C of instruction 1
	// (window 4), so the load's EP edge is in series with the CD
	// edge — the serial-interaction potential the paper's Figure 2
	// dashed arrow shows.
	ts := g.NodeTimes(Ideal{})
	if ts.D[5] < ts.C[1] {
		t.Fatalf("D[5]=%d before C[1]=%d", ts.D[5], ts.C[1])
	}
}

func TestCriticalPathTightAndComplete(t *testing.T) {
	g := randomGraph(rng.New(42), 200)
	id := Ideal{}
	ts := g.NodeTimes(id)
	path := g.CriticalPath(id)
	if len(path) == 0 {
		t.Fatal("no critical path")
	}
	// Every edge tight; consecutive edges connect.
	for i, e := range path {
		from := ts.nodeTime(e.FromNode, e.FromInst)
		to := ts.nodeTime(e.ToNode, e.ToInst)
		if from+e.Lat != to {
			t.Fatalf("edge %v not tight: %d + %d != %d", e, from, e.Lat, to)
		}
		if i > 0 {
			prev := path[i-1]
			if prev.ToInst != e.FromInst || prev.ToNode != e.FromNode {
				t.Fatalf("path disconnected between %v and %v", prev, e)
			}
		}
	}
	last := path[len(path)-1]
	if last.ToInst != g.Len()-1 || last.ToNode != NodeC {
		t.Fatalf("path does not end at final C node: %v", last)
	}
}

// randomGraph builds a structurally valid random graph for property
// tests.
func randomGraph(r *rng.Rand, n int) *Graph {
	cfg := DefaultConfig()
	cfg.Window = 16
	g := New(cfg, n)
	for i := 0; i < n; i++ {
		info := InstInfo{Op: isa.OpIntShort, SIdx: int32(i % 37)}
		switch r.Intn(10) {
		case 0, 1:
			info.Op = isa.OpLoad
			switch r.Intn(4) {
			case 0:
				info.DataLevel = cache.LevelL2
			case 1:
				info.DataLevel = cache.LevelMem
				info.DTLBMiss = r.Bool(0.2)
			}
		case 2:
			info.Op = isa.OpStore
		case 3:
			info.Op = isa.OpBranch
			info.Mispredict = r.Bool(0.3)
		case 4:
			info.Op = isa.OpIntMul
		case 5:
			info.Op = isa.OpFloatMul
		}
		if r.Bool(0.1) {
			info.ILevel = cache.LevelL2
		}
		g.Info[i] = info
		if i > 0 && r.Bool(0.6) {
			g.Prod1[i] = int32(i - 1 - r.Intn(min(i, 8)))
		}
		if i > 1 && r.Bool(0.3) {
			g.Prod2[i] = int32(i - 1 - r.Intn(min(i, 16)))
		}
		if r.Bool(0.1) {
			g.RELat[i] = int32(r.Intn(3))
		}
		if r.Bool(0.05) {
			g.DDBreak[i] = 1
		}
		if info.Op == isa.OpLoad && i > 2 && r.Bool(0.1) {
			g.PPLeader[i] = int32(r.Intn(i))
		}
	}
	return g
}

func TestQuickIdealizationMonotone(t *testing.T) {
	// Idealizing a superset of events never lengthens execution:
	// for random graphs and random flag sets A ⊆ B,
	// ExecTime(B) <= ExecTime(A) <= ExecTime(nothing).
	f := func(seed uint64, a, b uint16) bool {
		g := randomGraph(rng.New(seed), 120)
		fa := Flags(a) & AllFlags
		fb := fa | (Flags(b) & AllFlags) // fb ⊇ fa
		tBase := g.ExecTime(Ideal{})
		ta := g.ExecTime(Ideal{Global: fa})
		tb := g.ExecTime(Ideal{Global: fb})
		return tb <= ta && ta <= tBase
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNodeOrderInvariant(t *testing.T) {
	// For every instruction: D <= R <= E <= P <= C.
	f := func(seed uint64, flags uint16) bool {
		g := randomGraph(rng.New(seed), 120)
		ts := g.NodeTimes(Ideal{Global: Flags(flags) & AllFlags})
		for i := 0; i < g.Len(); i++ {
			if ts.D[i] > ts.R[i] || ts.R[i] > ts.E[i] ||
				ts.E[i] > ts.P[i] || ts.P[i] > ts.C[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCommitOrderInvariant(t *testing.T) {
	// C times never decrease (in-order commit).
	f := func(seed uint64) bool {
		g := randomGraph(rng.New(seed), 150)
		ts := g.NodeTimes(Ideal{})
		for i := 1; i < g.Len(); i++ {
			if ts.C[i] < ts.C[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsStringAndLookup(t *testing.T) {
	for _, name := range FlagNames() {
		f, ok := FlagByName(name)
		if !ok {
			t.Fatalf("FlagByName(%q) failed", name)
		}
		if f.String() != name {
			t.Fatalf("Flags round trip: %q -> %v", name, f)
		}
	}
	if _, ok := FlagByName("bogus"); ok {
		t.Fatal("FlagByName accepted bogus")
	}
	if (IdealDL1 | IdealWindow).String() != "dl1+win" {
		t.Fatalf("combined = %q", (IdealDL1 | IdealWindow).String())
	}
	if Flags(0).String() != "none" {
		t.Fatal("zero flags name")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.FetchBW = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.WindowIdealFactor = 1 },
		func(c *Config) { c.MemLatency = -1 },
		func(c *Config) { c.BranchRecovery = -1 },
	}
	for i, mod := range bads {
		c := DefaultConfig()
		mod(&c)
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEdgeAndNodeStrings(t *testing.T) {
	e := Edge{Kind: EdgePR, FromInst: 3, FromNode: NodeP, ToInst: 5, ToNode: NodeR, Lat: 0}
	if e.String() != "P3 -PR(0)-> R5" {
		t.Fatalf("Edge string %q", e.String())
	}
	if NodeD.String() != "D" || NodeC.String() != "C" {
		t.Fatal("node names")
	}
	if EdgeCBW.String() != "CBW" {
		t.Fatal("edge names")
	}
}
