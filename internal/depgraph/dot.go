package depgraph

import (
	"fmt"
	"io"
	"strings"
)

// DOT writes a Graphviz rendering of instructions [lo, hi) under the
// given idealization — the tooling equivalent of the paper's Figure 2
// drawings. Nodes are laid out one instruction per rank (D R E P C
// left to right); critical-path edges are drawn bold and red; edges
// with zero latency are dotted. Labels show the node times.
//
// Typical use: pipe `cmd/icost -dot` output through `dot -Tsvg`.
func (g *Graph) DOT(w io.Writer, lo, hi int, id Ideal) error {
	if lo < 0 || hi > g.Len() || lo >= hi {
		return fmt.Errorf("depgraph: DOT range [%d,%d) outside graph of %d", lo, hi, g.Len())
	}
	t := g.NodeTimes(id)

	// Mark the critical-path edges that fall inside the range.
	type edgeKey struct {
		fi int
		fn NodeKind
		ti int
		tn NodeKind
	}
	critical := map[edgeKey]bool{}
	for _, e := range g.CriticalPath(id) {
		critical[edgeKey{e.FromInst, e.FromNode, e.ToInst, e.ToNode}] = true
	}

	var b strings.Builder
	b.WriteString("digraph microexecution {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=10];\n")
	name := func(k NodeKind, i int) string { return fmt.Sprintf("%v%d", k, i) }
	for i := lo; i < hi; i++ {
		fmt.Fprintf(&b, "  subgraph cluster_i%d {\n    label=\"i%d %v\"; style=dashed;\n",
			i, i, g.Info[i].Op)
		for _, k := range [...]NodeKind{NodeD, NodeR, NodeE, NodeP, NodeC} {
			fmt.Fprintf(&b, "    %s [label=\"%v\\n%d\"];\n", name(k, i), k, t.nodeTime(k, i))
		}
		b.WriteString("  }\n")
	}
	for i := lo; i < hi; i++ {
		for _, e := range g.InEdges(i, id) {
			if e.FromInst < lo {
				continue // source outside the rendered window
			}
			attrs := []string{fmt.Sprintf("label=\"%v %d\"", e.Kind, e.Lat)}
			if critical[edgeKey{e.FromInst, e.FromNode, e.ToInst, e.ToNode}] {
				attrs = append(attrs, "color=red", "penwidth=2")
			}
			if e.Lat == 0 {
				attrs = append(attrs, "style=dotted")
			}
			fmt.Fprintf(&b, "  %s -> %s [%s];\n",
				name(e.FromNode, e.FromInst), name(e.ToNode, e.ToInst),
				strings.Join(attrs, ", "))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
