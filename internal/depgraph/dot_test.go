package depgraph

import (
	"strings"
	"testing"

	"icost/internal/rng"
)

func TestDOTStructure(t *testing.T) {
	g := randomGraph(rng.New(5), 30)
	var b strings.Builder
	if err := g.DOT(&b, 0, 10, Ideal{}); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{
		"digraph microexecution",
		"rankdir=LR",
		"cluster_i0",
		"cluster_i9",
		"D0", "C9",
		"->",
		"}",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
	// No node outside the window.
	if strings.Contains(s, "cluster_i10") {
		t.Fatal("rendered instruction outside the window")
	}
	// Balanced braces.
	if strings.Count(s, "{") != strings.Count(s, "}") {
		t.Fatal("unbalanced braces")
	}
}

func TestDOTCriticalHighlight(t *testing.T) {
	g := randomGraph(rng.New(7), 40)
	var b strings.Builder
	if err := g.DOT(&b, 0, 40, Ideal{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "color=red") {
		t.Fatal("no critical edges highlighted over the full graph")
	}
}

func TestDOTRangeValidation(t *testing.T) {
	g := randomGraph(rng.New(9), 10)
	var b strings.Builder
	for _, r := range [][2]int{{-1, 5}, {0, 11}, {5, 5}, {7, 3}} {
		if err := g.DOT(&b, r[0], r[1], Ideal{}); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}
