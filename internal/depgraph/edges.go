package depgraph

import "fmt"

// DefaultConfig is the paper's Table 6 machine expressed as graph
// parameters: 64-entry window, 6-wide fetch/commit, 15-cycle pipeline
// apportioned as 8 cycles of branch-recovery (fetch-to-dispatch),
// 2 cycles dispatch-to-ready and 2 cycles complete-to-commit, with the
// Table 6 memory latencies.
func DefaultConfig() Config {
	return Config{
		FetchBW: 6, CommitBW: 6,
		Window: 64, WindowIdealFactor: 20,
		DispatchToReady: 2, CompleteToCommit: 2,
		BranchRecovery: 8, WakeupExtra: 0,
		DL1Latency: 2, L2Latency: 12, MemLatency: 100, TLBMissLatency: 30,
	}
}

// NodeKind identifies one of the five per-instruction nodes.
type NodeKind uint8

// The five node kinds, in pipeline order.
const (
	NodeD NodeKind = iota
	NodeR
	NodeE
	NodeP
	NodeC
)

var nodeNames = [...]string{"D", "R", "E", "P", "C"}

// String returns the paper's single-letter node name.
func (k NodeKind) String() string {
	if int(k) < len(nodeNames) {
		return nodeNames[k]
	}
	return fmt.Sprintf("node?%d", uint8(k))
}

// EdgeKind identifies a constraint type (paper Table 3).
type EdgeKind uint8

// The twelve edge kinds of Table 3.
const (
	EdgeDD EdgeKind = iota
	EdgeFBW
	EdgeCD
	EdgePD
	EdgeDR
	EdgePR
	EdgeRE
	EdgeEP
	EdgePP
	EdgePC
	EdgeCC
	EdgeCBW
)

var edgeNames = [...]string{
	"DD", "FBW", "CD", "PD", "DR", "PR", "RE", "EP", "PP", "PC", "CC", "CBW",
}

// String returns the paper's edge name.
func (k EdgeKind) String() string {
	if int(k) < len(edgeNames) {
		return edgeNames[k]
	}
	return fmt.Sprintf("edge?%d", uint8(k))
}

// Edge is one explicit constraint, produced by InEdges for
// visualization, testing and critical-path walks.
type Edge struct {
	Kind     EdgeKind
	FromInst int
	FromNode NodeKind
	ToInst   int
	ToNode   NodeKind
	Lat      int64
}

// String renders e.g. "P3 -PR(0)-> R5".
func (e Edge) String() string {
	return fmt.Sprintf("%v%d -%v(%d)-> %v%d",
		e.FromNode, e.FromInst, e.Kind, e.Lat, e.ToNode, e.ToInst)
}

// InEdges enumerates every edge into the five nodes of instruction i
// under the given idealization. The enumeration matches exactly the
// constraints evaluated by ExecTime.
func (g *Graph) InEdges(i int, id Ideal) []Edge {
	if !id.Scale.IsZero() {
		return g.inEdgesScaled(i, id)
	}
	f := id.Of(i)
	cfg := &g.Cfg
	var out []Edge
	// Into D.
	if i > 0 {
		out = append(out, Edge{EdgeDD, i - 1, NodeD, i, NodeD, g.DDLat(i, f)})
		if g.Info[i-1].Mispredict && id.Of(i-1)&IdealBMisp == 0 {
			out = append(out, Edge{EdgePD, i - 1, NodeP, i, NodeD, int64(cfg.BranchRecovery)})
		}
	}
	if f&IdealBW == 0 && i >= cfg.FetchBW {
		out = append(out, Edge{EdgeFBW, i - cfg.FetchBW, NodeD, i, NodeD, 1})
	}
	w := cfg.Window
	if f&IdealWindow != 0 {
		w *= cfg.WindowIdealFactor
	}
	if i >= w {
		out = append(out, Edge{EdgeCD, i - w, NodeC, i, NodeD, 0})
	}
	// Into R.
	out = append(out, Edge{EdgeDR, i, NodeD, i, NodeR, int64(cfg.DispatchToReady)})
	if p := g.Prod1[i]; p >= 0 {
		out = append(out, Edge{EdgePR, int(p), NodeP, i, NodeR, int64(cfg.WakeupExtra)})
	}
	if p := g.Prod2[i]; p >= 0 {
		out = append(out, Edge{EdgePR, int(p), NodeP, i, NodeR, int64(cfg.WakeupExtra)})
	}
	// Into E.
	re := int64(0)
	if f&IdealBW == 0 {
		re = int64(g.RELat[i])
	}
	out = append(out, Edge{EdgeRE, i, NodeR, i, NodeE, re})
	// Into P.
	out = append(out, Edge{EdgeEP, i, NodeE, i, NodeP, g.EPLat(i, f)})
	if l := g.PPLeader[i]; l >= 0 && f&IdealDMiss == 0 {
		out = append(out, Edge{EdgePP, int(l), NodeP, i, NodeP, 0})
	}
	// Into C.
	out = append(out, Edge{EdgePC, i, NodeP, i, NodeC, int64(cfg.CompleteToCommit)})
	if i > 0 {
		cc := int64(0)
		if f&IdealBW == 0 {
			cc = int64(g.CCLat[i])
		}
		out = append(out, Edge{EdgeCC, i - 1, NodeC, i, NodeC, cc})
	}
	if f&IdealBW == 0 && i >= cfg.CommitBW {
		out = append(out, Edge{EdgeCBW, i - cfg.CommitBW, NodeC, i, NodeC, 1})
	}
	return out
}

// nodeTime reads one node's time from a Times. The switch is
// exhaustive over the five kinds: a sixth node kind must say where
// its times live, not silently read the commit column.
func (t *Times) nodeTime(k NodeKind, i int) int64 {
	switch k {
	case NodeD:
		return t.D[i]
	case NodeR:
		return t.R[i]
	case NodeE:
		return t.E[i]
	case NodeP:
		return t.P[i]
	case NodeC:
		return t.C[i]
	default:
		panic("depgraph: unknown NodeKind " + k.String())
	}
}

// CriticalPath walks the binding-edge chain backward from the last
// instruction's C node and returns the edges of one critical path,
// in execution order. Ties are broken toward the first enumerated
// binding edge. The walk is exact for this model: every node's time
// equals the max over its in-edges of source time plus latency (node
// slack is zero along the returned path).
func (g *Graph) CriticalPath(id Ideal) []Edge {
	n := g.Len()
	if n == 0 {
		return nil
	}
	t := g.NodeTimes(id)
	var path []Edge
	inst, node := n-1, NodeC
	for {
		found := false
		for _, e := range g.InEdges(inst, id) {
			if e.ToNode != node {
				continue
			}
			if t.nodeTime(e.FromNode, e.FromInst)+e.Lat == t.nodeTime(node, inst) {
				path = append(path, e)
				inst, node = e.FromInst, e.FromNode
				found = true
				break
			}
		}
		if !found {
			break // reached a source node (time fully from latencies)
		}
		if node == NodeD && t.D[inst] == 0 && inst == 0 {
			break
		}
	}
	// Reverse into execution order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path
}
