package depgraph_test

// Benchmarks for BENCH_graph.json (make bench-graph): the flat CSR
// walks and batch kernels against the legacy layout's reference
// implementations, on a real simulated microexecution. The companion
// guard test keeps the warm path honest in CI without depending on
// absolute machine speed: the CSR paths may never fall behind the
// legacy paths they replaced.

import (
	"context"
	"sync"
	"testing"
	"time"

	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/workload"
)

const benchInsts = 20000

var (
	benchOnce sync.Once
	benchRes  *ooo.Result
)

// benchGraph builds (once) the 20k-instruction gcc graph every
// benchmark here walks.
func benchGraph(tb testing.TB) *depgraph.Graph {
	tb.Helper()
	benchOnce.Do(func() {
		// Fatalf-free so the once survives for later callers;
		// failures surface as a nil graph.
		w, err := workload.Cached("gcc", 42)
		if err != nil {
			return
		}
		tr, err := w.Execute(benchInsts, 43)
		if err != nil {
			return
		}
		if r, err := ooo.Run(tr, ooo.DefaultConfig()); err == nil {
			benchRes = r
		}
	})
	if benchRes == nil {
		tb.Fatal("benchmark graph build failed")
	}
	return benchRes.Graph
}

// batchIdeals is the 16-union warm workload: the engine's icost and
// matrix queries evaluate exactly such power-set batches.
func batchIdeals() []depgraph.Ideal {
	out := make([]depgraph.Ideal, 16)
	for k := range out {
		out[k] = depgraph.Ideal{Global: depgraph.Flags(k*5+1) & depgraph.AllFlags}
	}
	return out
}

func BenchmarkForwardWalk(b *testing.B) {
	g := benchGraph(b)
	id := depgraph.Ideal{Global: depgraph.IdealDMiss}
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if legacyExecTime(g, id) == 0 {
				b.Fatal("zero time")
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if g.ExecTime(id) == 0 {
				b.Fatal("zero time")
			}
		}
	})
}

func BenchmarkBackwardWalk(b *testing.B) {
	g := benchGraph(b)
	id := depgraph.Ideal{Global: depgraph.IdealDL1}
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if legacySlacks(g, id) == nil {
				b.Fatal("nil slacks")
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if g.Slacks(id) == nil {
				b.Fatal("nil slacks")
			}
		}
	})
}

func BenchmarkBatchEval(b *testing.B) {
	g := benchGraph(b)
	ids := batchIdeals()
	ctx := context.Background()
	b.Run("legacy8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if legacyEvalBatch(g, ids) == nil {
				b.Fatal("nil batch")
			}
		}
	})
	for _, lanes := range []int{8, 16, 32} {
		cfg := g.Cfg
		cfg.Lanes = lanes
		gw := g.WithConfig(cfg)
		b.Run(map[int]string{8: "csr8", 16: "csr16", 32: "csr32"}[lanes], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gw.EvalBatch(ctx, ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// timeIt reports the best-of-reps wall time of reps runs of fn —
// best-of filters scheduler noise, which matters because the guard
// below compares two measurements taken in the same process.
func timeIt(reps int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestWarmPathNoRegression is the CI guard on the warm query path:
// the CSR forward walk, backward walk and batch kernel must not run
// slower than the legacy implementations they replaced (with 1.5x
// headroom for timer and scheduler noise — the measured advantage is
// far larger, so a real regression trips this long before it erodes
// the recorded speedup). Relative-to-baseline in the same process, so
// CI machine speed never matters.
func TestWarmPathNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in -short")
	}
	g := benchGraph(t)
	id := depgraph.Ideal{Global: depgraph.IdealDMiss}
	ids := batchIdeals()
	ctx := context.Background()

	// Warm both paths (table builds, pool fills) before timing.
	g.ExecTime(id)
	legacyExecTime(g, id)
	g.Slacks(id)

	const reps = 7
	const headroom = 1.5
	checks := []struct {
		name        string
		csr, legacy func()
	}{
		{"forward", func() { g.ExecTime(id) }, func() { legacyExecTime(g, id) }},
		{"backward", func() { g.Slacks(id) }, func() { legacySlacks(g, id) }},
		{"batch", func() { _, _ = g.EvalBatch(ctx, ids) }, func() { legacyEvalBatch(g, ids) }},
	}
	for _, c := range checks {
		csr := timeIt(reps, c.csr)
		leg := timeIt(reps, c.legacy)
		t.Logf("%s: csr %v, legacy %v (%.2fx)", c.name, csr, leg, float64(leg)/float64(csr))
		if float64(csr) > float64(leg)*headroom {
			t.Errorf("%s walk regressed: csr %v vs legacy %v (allowed %.1fx)", c.name, csr, leg, headroom)
		}
	}
}
