package depgraph_test

// Test-only reference implementation of the pre-CSR ("legacy") graph
// layout and walks, kept verbatim in behaviour so the property tests
// can prove the flat CSR layout bit-identical and the benchmarks can
// measure the speedup against the real former code paths:
//
//   - legacyNodeTimes: the scalar forward recurrence re-deriving every
//     latency from InstInfo per instruction per idealization.
//   - legacyLatest: the backward pass enumerating explicit []Edge
//     in-edge lists (one allocation per node visit).
//   - legacyEvalBatch: the 8-lane-capped AoS-parts batch kernel.
//
// Everything here uses only the exported Graph surface, exactly like
// the analysis packages did.

import (
	"icost/internal/cache"
	"icost/internal/depgraph"
)

const legacyWidth = 8

const legacyInf = int64(1) << 62

// legacyNodeTimes is the original runInto: one in-order pass, all
// latencies re-derived via DDLat/EPLat per instruction.
func legacyNodeTimes(g *depgraph.Graph, id depgraph.Ideal) *depgraph.Times {
	n := g.Len()
	t := &depgraph.Times{
		D: make([]int64, n), R: make([]int64, n), E: make([]int64, n),
		P: make([]int64, n), C: make([]int64, n),
	}
	cfg := &g.Cfg
	for i := 0; i < n; i++ {
		f := id.Of(i)

		var d int64
		if i > 0 {
			d = max(d, t.D[i-1]+g.DDLat(i, f))
			if g.Info[i-1].Mispredict && id.Of(i-1)&depgraph.IdealBMisp == 0 {
				d = max(d, t.P[i-1]+int64(cfg.BranchRecovery))
			}
		} else {
			d = g.DDLat(i, f)
		}
		if f&depgraph.IdealBW == 0 && i >= cfg.FetchBW {
			d = max(d, t.D[i-cfg.FetchBW]+1)
		}
		w := cfg.Window
		if f&depgraph.IdealWindow != 0 {
			w *= cfg.WindowIdealFactor
		}
		if i >= w {
			d = max(d, t.C[i-w])
		}
		t.D[i] = d

		r := d + int64(cfg.DispatchToReady)
		wake := int64(cfg.WakeupExtra)
		if p := g.Prod1[i]; p >= 0 {
			r = max(r, t.P[p]+wake)
		}
		if p := g.Prod2[i]; p >= 0 {
			r = max(r, t.P[p]+wake)
		}
		t.R[i] = r

		e := r
		if f&depgraph.IdealBW == 0 {
			e += int64(g.RELat[i])
		}
		t.E[i] = e

		p := e + g.EPLat(i, f)
		if l := g.PPLeader[i]; l >= 0 && f&depgraph.IdealDMiss == 0 {
			p = max(p, t.P[l])
		}
		t.P[i] = p

		c := p + int64(cfg.CompleteToCommit)
		if i > 0 {
			cc := t.C[i-1]
			if f&depgraph.IdealBW == 0 {
				cc += int64(g.CCLat[i])
			}
			c = max(c, cc)
		}
		if f&depgraph.IdealBW == 0 && i >= cfg.CommitBW {
			c = max(c, t.C[i-cfg.CommitBW]+1)
		}
		t.C[i] = c
	}
	return t
}

// legacyExecTime is the original ExecTime over legacyNodeTimes.
func legacyExecTime(g *depgraph.Graph, id depgraph.Ideal) int64 {
	n := g.Len()
	if n == 0 {
		return 0
	}
	return legacyNodeTimes(g, id).C[n-1] + 1
}

func legacyNodeTime(t *depgraph.Times, k depgraph.NodeKind, i int) int64 {
	switch k {
	case depgraph.NodeD:
		return t.D[i]
	case depgraph.NodeR:
		return t.R[i]
	case depgraph.NodeE:
		return t.E[i]
	case depgraph.NodeP:
		return t.P[i]
	default:
		return t.C[i]
	}
}

// legacyLatest is the original latestInto: explicit in-edge lists from
// InEdges, one []Edge allocation per node visit.
func legacyLatest(g *depgraph.Graph, id depgraph.Ideal, t *depgraph.Times) *depgraph.Latest {
	n := g.Len()
	l := &depgraph.Latest{
		D: make([]int64, n), R: make([]int64, n), E: make([]int64, n),
		P: make([]int64, n), C: make([]int64, n),
	}
	at := func(k depgraph.NodeKind, i int) *int64 {
		switch k {
		case depgraph.NodeD:
			return &l.D[i]
		case depgraph.NodeR:
			return &l.R[i]
		case depgraph.NodeE:
			return &l.E[i]
		case depgraph.NodeP:
			return &l.P[i]
		default:
			return &l.C[i]
		}
	}
	for i := 0; i < n; i++ {
		l.D[i], l.R[i], l.E[i], l.P[i], l.C[i] = legacyInf, legacyInf, legacyInf, legacyInf, legacyInf
	}
	if n == 0 {
		return l
	}
	l.C[n-1] = t.C[n-1]
	for i := n - 1; i >= 0; i-- {
		for _, node := range [...]depgraph.NodeKind{depgraph.NodeC, depgraph.NodeP, depgraph.NodeE, depgraph.NodeR, depgraph.NodeD} {
			to := at(node, i)
			if *to == legacyInf {
				*to = legacyNodeTime(t, node, i)
			}
			for _, e := range g.InEdges(i, id) {
				if e.ToNode != node {
					continue
				}
				src := at(e.FromNode, e.FromInst)
				if v := *to - e.Lat; v < *src {
					*src = v
				}
			}
		}
	}
	return l
}

// legacySlacks is the original Slacks: forward pass, backward pass,
// P-node latest minus actual.
func legacySlacks(g *depgraph.Graph, id depgraph.Ideal) []int64 {
	t := legacyNodeTimes(g, id)
	l := legacyLatest(g, id, t)
	out := make([]int64, g.Len())
	for i := range out {
		out[i] = l.P[i] - t.P[i]
	}
	return out
}

// legacyEPParts is the AoS latency decomposition of the legacy batch
// tables (one 48-byte struct per instruction).
type legacyEPParts struct {
	base, dl1, dmiss, short, long, icache int64
}

func legacyParts(g *depgraph.Graph, i int) legacyEPParts {
	var p legacyEPParts
	info := &g.Info[i]
	cfg := &g.Cfg
	op := info.Op
	switch {
	case op.IsMem():
		p.dl1 = int64(cfg.DL1Latency)
		if info.DTLBMiss {
			p.dmiss += int64(cfg.TLBMissLatency)
		}
		switch info.DataLevel {
		case cache.LevelL2:
			p.dmiss += int64(cfg.L2Latency)
		case cache.LevelMem:
			p.dmiss += int64(cfg.L2Latency) + int64(cfg.MemLatency)
		}
	case op.IsShortALU():
		p.short = 1
	case op.IsLongALU():
		p.long = depgraph.BaseExecLat(op)
	default:
		p.base = depgraph.BaseExecLat(op)
	}
	if info.ITLBMiss {
		p.icache = int64(cfg.TLBMissLatency)
	}
	switch info.ILevel {
	case cache.LevelL2:
		p.icache += int64(cfg.L2Latency)
	case cache.LevelMem:
		p.icache += int64(cfg.L2Latency) + int64(cfg.MemLatency)
	}
	return p
}

type legacyLaneConsts struct {
	bw, ic, dl1, dm, sh, lg bool
	bm                      bool
	win                     int
}

func legacyLaneOf(cfg *depgraph.Config, f depgraph.Flags) legacyLaneConsts {
	l := legacyLaneConsts{
		bw:  f&depgraph.IdealBW == 0,
		ic:  f&depgraph.IdealICache == 0,
		dl1: f&depgraph.IdealDL1 == 0,
		dm:  f&depgraph.IdealDMiss == 0,
		sh:  f&depgraph.IdealShortALU == 0,
		lg:  f&depgraph.IdealLongALU == 0,
		bm:  f&depgraph.IdealBMisp == 0,
		win: cfg.Window,
	}
	if f&depgraph.IdealWindow != 0 {
		l.win *= cfg.WindowIdealFactor
	}
	return l
}

// legacyEvalBatch is the original const-8-lane batch evaluator (the
// global-only kernel; the reference tests use global lanes, which is
// also the kernel the engine's warm path ran).
func legacyEvalBatch(g *depgraph.Graph, ids []depgraph.Ideal) []int64 {
	n := g.Len()
	out := make([]int64, len(ids))
	if len(ids) == 0 || n == 0 {
		return out
	}
	parts := make([]legacyEPParts, n)
	mispPrev := make([]bool, n)
	for i := 0; i < n; i++ {
		parts[i] = legacyParts(g, i)
		if i > 0 {
			mispPrev[i] = g.Info[i-1].Mispredict
		}
	}
	for s := 0; s < len(ids); s += legacyWidth {
		e := s + legacyWidth
		if e > len(ids) {
			e = len(ids)
		}
		legacyEvalChunk(g, parts, mispPrev, ids[s:e], out[s:e])
	}
	return out
}

func legacyEvalChunk(g *depgraph.Graph, pp []legacyEPParts, mp []bool, ids []depgraph.Ideal, out []int64) {
	const W = legacyWidth
	n := g.Len()
	D := make([]int64, n*W)
	P := make([]int64, n*W)
	C := make([]int64, n*W)
	lanes4 := ids
	if len(ids) < W {
		var pad [W]depgraph.Ideal
		copy(pad[:], ids)
		for k := len(ids); k < W; k++ {
			pad[k] = ids[0]
		}
		lanes4 = pad[:]
	}
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader

	var lanes [W]legacyLaneConsts
	var winOff [W]int
	for w := range lanes {
		lanes[w] = legacyLaneOf(cfg, lanes4[w].Global)
		winOff[w] = lanes[w].win * W
	}

	for i := 0; i < n; i++ {
		ep := &pp[i]
		ddBreak := int64(ddB[i])
		reLat := int64(reL[i])
		ccLat := int64(ccL[i])
		p1Row, p2Row, leadRow := int(pr1[i])*W, int(pr2[i])*W, int(ld[i])*W
		misp := mp[i]
		base := i * W
		prev := base - W
		fbwRow, cbwRow := base-fbw*W, base-cbw*W
		for w := 0; w < W; w++ {
			ln := &lanes[w]
			var dd int64
			if ln.bw {
				dd = ddBreak
			}
			if ln.ic {
				dd += ep.icache
			}
			d := dd
			if i > 0 {
				d += D[prev+w]
				if misp && ln.bm {
					if v := P[prev+w] + rec; v > d {
						d = v
					}
				}
			}
			if ln.bw && fbwRow >= 0 {
				if v := D[fbwRow+w] + 1; v > d {
					d = v
				}
			}
			if wr := base - winOff[w]; wr >= 0 {
				if v := C[wr+w]; v > d {
					d = v
				}
			}
			D[base+w] = d

			r := d + dr
			if p1Row >= 0 {
				if v := P[p1Row+w] + wake; v > r {
					r = v
				}
			}
			if p2Row >= 0 {
				if v := P[p2Row+w] + wake; v > r {
					r = v
				}
			}

			e := r
			if ln.bw {
				e += reLat
			}

			p := e + ep.base
			if ln.dl1 {
				p += ep.dl1
			}
			if ln.dm {
				p += ep.dmiss
			}
			if ln.sh {
				p += ep.short
			}
			if ln.lg {
				p += ep.long
			}
			if leadRow >= 0 && ln.dm {
				if v := P[leadRow+w]; v > p {
					p = v
				}
			}
			P[base+w] = p

			c := p + pc
			if i > 0 {
				cc := C[prev+w]
				if ln.bw {
					cc += ccLat
				}
				if cc > c {
					c = cc
				}
			}
			if ln.bw && cbwRow >= 0 {
				if v := C[cbwRow+w] + 1; v > c {
					c = v
				}
			}
			C[base+w] = c
		}
	}
	for w := range ids {
		out[w] = C[(n-1)*W+w] + 1
	}
}
