package depgraph

import (
	"strings"
	"testing"

	"icost/internal/rng"
)

// Regression for the edgeswitch findings on nodeTime and Latest.at:
// both switches must cover all five node kinds explicitly (NodeC used
// to fall through to a bare default) and must panic — not silently
// read the commit column — on a kind outside the enum.

func TestNodeTimeCoversAllKinds(t *testing.T) {
	g := randomGraph(rng.New(3), 50)
	id := Ideal{}
	tm := g.NodeTimes(id)
	for i := 0; i < g.Len(); i++ {
		for k, want := range map[NodeKind]int64{
			NodeD: tm.D[i], NodeR: tm.R[i], NodeE: tm.E[i],
			NodeP: tm.P[i], NodeC: tm.C[i],
		} {
			if got := tm.nodeTime(k, i); got != want {
				t.Fatalf("nodeTime(%v, %d) = %d, want %d", k, i, got, want)
			}
		}
	}
}

func TestLatestAtCoversAllKinds(t *testing.T) {
	g := randomGraph(rng.New(5), 50)
	_, l := g.LatestTimes(Ideal{})
	for i := 0; i < g.Len(); i++ {
		for k, want := range map[NodeKind]*int64{
			NodeD: &l.D[i], NodeR: &l.R[i], NodeE: &l.E[i],
			NodeP: &l.P[i], NodeC: &l.C[i],
		} {
			if got := l.at(k, i); got != want {
				t.Fatalf("at(%v, %d) aliases the wrong slot", k, i)
			}
		}
	}
}

func TestUnknownNodeKindPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic on unknown NodeKind", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "unknown NodeKind") {
				t.Fatalf("%s: panic %v, want an unknown-NodeKind message", name, r)
			}
		}()
		f()
	}
	bogus := NodeKind(9)
	tm := &Times{D: []int64{0}, R: []int64{0}, E: []int64{0}, P: []int64{0}, C: []int64{0}}
	mustPanic("Times.nodeTime", func() { tm.nodeTime(bogus, 0) })
	l := &Latest{D: []int64{0}, R: []int64{0}, E: []int64{0}, P: []int64{0}, C: []int64{0}}
	mustPanic("Latest.at", func() { l.at(bogus, 0) })
}
