package depgraph

import "sync"

// Scratch pooling for the scalar walks. A cost query that only needs
// the final commit time (ExecTimeCtx) or a derived aggregate
// (SlacksCtx) has no reason to allocate five n-length slices per
// call: the node-time scratch is recycled through sync.Pools shared
// by all graphs, sized up on demand. Walk results that escape to the
// caller (NodeTimes, LatestTimes) still allocate fresh.

var timesPool = sync.Pool{New: func() any { return new(Times) }}

// acquireTimes returns a Times with n-length slices whose contents
// are unspecified; runInto overwrites every element.
func acquireTimes(n int) *Times {
	t := timesPool.Get().(*Times)
	if cap(t.D) < n {
		t.D = make([]int64, n)
		t.R = make([]int64, n)
		t.E = make([]int64, n)
		t.P = make([]int64, n)
		t.C = make([]int64, n)
	}
	t.D, t.R, t.E = t.D[:n], t.R[:n], t.E[:n]
	t.P, t.C = t.P[:n], t.C[:n]
	return t
}

func releaseTimes(t *Times) { timesPool.Put(t) }

var latestPool = sync.Pool{New: func() any { return new(Latest) }}

// acquireLatest returns a Latest with n-length slices whose contents
// are unspecified; the backward pass initializes every element.
func acquireLatest(n int) *Latest {
	l := latestPool.Get().(*Latest)
	if cap(l.D) < n {
		l.D = make([]int64, n)
		l.R = make([]int64, n)
		l.E = make([]int64, n)
		l.P = make([]int64, n)
		l.C = make([]int64, n)
	}
	l.D, l.R, l.E = l.D[:n], l.R[:n], l.E[:n]
	l.P, l.C = l.P[:n], l.C[:n]
	return l
}

func releaseLatest(l *Latest) { latestPool.Put(l) }
