package depgraph

import "context"

// Parametric (scale-by-α) idealization. The paper's idealizations are
// binary: an event class is either fully present or fully removed
// (latency → 0, Table 1). The sensitivity line of related work
// instead measures *response curves* — scale a resource's latency by
// a factor α and watch execution time respond. This file adds that
// middle ground: every flagged category carries a scale factor
// α ∈ [0,1], where α=0 reproduces the zero-out flags bit for bit and
// α=1 reproduces the unidealized machine bit for bit.
//
// Representation. α is fixed-point with an 8-bit fraction (Alpha,
// denominator AlphaOne=256), so scaled latencies are integers, walks
// stay integer-exact and reproducible across platforms, and a scale
// vector is a comparable array usable as a memo key. A latency scales
// as round(lat·α) = (lat·m + 128) >> 8, which is exact at both
// endpoints: m=256 yields lat, m=0 yields 0.
//
// Semantics per category:
//
//   - latency components (dl1, dmiss, imiss, shalu, lgalu and the
//     bw contention columns DDBreak/RELat/CCLat) scale continuously;
//   - the win category interpolates the effective re-order window
//     between Window (α=1) and Window×WindowIdealFactor (α=0);
//   - structural zero/unit-latency edges tied to a category (the PP
//     line-sharing edge of dmiss, the FBW/CBW unit edges of bw) stay
//     active for α>0 and vanish only at α=0, matching the binary
//     idealization at the endpoint;
//   - the PD branch-recovery edge scales its latency for α>0 and is
//     dropped at α=0 ("the branch predicts correctly"), again matching
//     the binary endpoint.
//
// The scaled kernels below mirror the binary ones (runGlobal /
// runGeneric, evalLanesGlobal / evalLanesGeneric, WindowEval.Feed,
// latestInto) with flag tests replaced by multiplier arithmetic. An
// all-zero scale vector routes to the binary kernels, so existing
// workloads never pay the multiplies.

// alphaBits is the fixed-point fraction width of Alpha; alphaHalf the
// rounding term of scaleLat.
const (
	alphaBits = 8
	alphaHalf = 1 << (alphaBits - 1)
)

// Alpha is a fixed-point scale factor in [0,1]: 0 means fully
// idealized (the binary zero-out), AlphaOne means unscaled. Values
// above AlphaOne clamp to AlphaOne.
type Alpha uint16

// AlphaOne is α = 1.0 (no idealization of the flagged category).
const AlphaOne Alpha = 1 << alphaBits

// AlphaOf quantizes x ∈ [0,1] to the nearest representable Alpha,
// clamping outside the interval.
func AlphaOf(x float64) Alpha {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return AlphaOne
	}
	return Alpha(x*float64(AlphaOne) + 0.5)
}

// Float returns the α value as a float64 in [0,1].
func (a Alpha) Float() float64 {
	if a > AlphaOne {
		a = AlphaOne
	}
	return float64(a) / float64(AlphaOne)
}

// mult is the clamped integer multiplier of a.
func (a Alpha) mult() int64 {
	if a > AlphaOne {
		a = AlphaOne
	}
	return int64(a)
}

// scaleLat scales a latency by a fixed-point multiplier m ∈
// [0, AlphaOne] with round-to-nearest: exact at both endpoints and
// monotone in both arguments.
func scaleLat(lat, m int64) int64 {
	return (lat*m + alphaHalf) >> alphaBits
}

// ScaleLatency returns round(lat·α) with the same fixed-point
// rounding the scaled kernels use, so callers deriving machine
// configurations from an α (the refutation harness, sweeps) land on
// exactly the latency the graph model assumes.
func ScaleLatency(lat int, a Alpha) int {
	return int(scaleLat(int64(lat), a.mult()))
}

// ScaleVec assigns one Alpha per base category, indexed by flag bit.
// The zero value is all-α=0 — i.e. plain zero-out flags — so every
// existing Ideal literal keeps its exact meaning. An entry is only
// consulted for categories selected by the idealization's flags.
type ScaleVec [NumFlags]Alpha

// IsZero reports whether every entry is zero, i.e. the idealization
// is the binary zero-out and the binary kernels apply.
func (s ScaleVec) IsZero() bool { return s == ScaleVec{} }

// ScaleUniform builds a vector assigning α to every category in f.
func ScaleUniform(f Flags, a Alpha) ScaleVec {
	var s ScaleVec
	for b := 0; b < NumFlags; b++ {
		if f&(1<<b) != 0 {
			s[b] = a
		}
	}
	return s
}

// CanonScale zeroes the entries of categories outside mask: two
// idealizations whose vectors differ only on unselected categories
// are semantically identical, and memo keys built from the canonical
// vector (plus the flags) never split or — with the flags — collide.
func CanonScale(mask Flags, s ScaleVec) ScaleVec {
	var out ScaleVec
	for b := 0; b < NumFlags; b++ {
		if mask&(1<<b) != 0 {
			a := s[b]
			if a > AlphaOne {
				a = AlphaOne
			}
			out[b] = a
		}
	}
	return out
}

// EffWindow is the effective re-order window under win-category scale
// α: Window at α=1, Window×WindowIdealFactor at α=0, rounded linear
// interpolation between.
func (c *Config) EffWindow(a Alpha) int {
	w := c.Window
	ideal := w * c.WindowIdealFactor
	return w + int(scaleLat(int64(ideal-w), AlphaOne.mult()-a.mult()))
}

// scaledLane caches one lane's scale-derived constants: a multiplier
// per latency component (AlphaOne for unselected categories, the
// lane's α for selected ones) and the interpolated window. Edge gates
// derive from the multipliers: a structural edge tied to a category
// is active iff its multiplier is nonzero.
type scaledLane struct {
	bwM, icM, dl1M, dmM, shM, lgM, recM int64
	win                                 int
}

// scaledLaneOf resolves the multipliers of one (flags, scale) lane.
func scaledLaneOf(cfg *Config, f Flags, s ScaleVec) scaledLane {
	m := func(fl Flags, b int) int64 {
		if f&fl == 0 {
			return int64(AlphaOne)
		}
		return s[b].mult()
	}
	l := scaledLane{
		dl1M: m(IdealDL1, 0),
		dmM:  m(IdealDMiss, 1),
		icM:  m(IdealICache, 2),
		recM: m(IdealBMisp, 3),
		bwM:  m(IdealBW, 5),
		shM:  m(IdealShortALU, 6),
		lgM:  m(IdealLongALU, 7),
		win:  cfg.Window,
	}
	if f&IdealWindow != 0 {
		l.win = cfg.EffWindow(s[4])
	}
	return l
}

// runScaled is the scalar walk for parametric idealizations: the
// binary kernels' flag tests become multiplier arithmetic. With no
// per-instruction mask the lane constants hoist out of the loop;
// with one they are recomposed per instruction, like runGeneric.
func (g *Graph) runScaled(ctx context.Context, id Ideal, t *Times) error {
	n := g.Len()
	ft := g.tables()
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	epB, epD1, epDm, epSh, epLg, ic, mp :=
		ft.epBase, ft.epDL1, ft.epDMiss, ft.epShort, ft.epLong, ft.icache, ft.mispPrev
	ln := scaledLaneOf(cfg, id.Global, id.Scale)
	perInst := id.PerInst != nil

	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if perInst {
			ln = scaledLaneOf(cfg, id.Of(i), id.Scale)
		}

		// --- D node (DD, PD, FBW, CD edges) ---
		d := scaleLat(int64(ddB[i]), ln.bwM) + scaleLat(int64(ic[i]), ln.icM)
		if i > 0 {
			d += t.D[i-1]
			if mp[i] != 0 {
				// The PD edge is gated and scaled by the *branch's*
				// (i-1's) effective flags.
				recM := ln.recM
				if perInst {
					recM = scaledLaneOf(cfg, id.Of(i-1), id.Scale).recM
				}
				if recM > 0 {
					d = max(d, t.P[i-1]+scaleLat(rec, recM))
				}
			}
		}
		if ln.bwM > 0 && i >= fbw {
			d = max(d, t.D[i-fbw]+1)
		}
		if i >= ln.win {
			d = max(d, t.C[i-ln.win])
		}
		t.D[i] = d

		// --- R node (DR, PR edges) ---
		r := d + dr
		if p := pr1[i]; p >= 0 {
			r = max(r, t.P[p]+wake)
		}
		if p := pr2[i]; p >= 0 {
			r = max(r, t.P[p]+wake)
		}
		t.R[i] = r

		// --- E node (RE edge) ---
		e := r + scaleLat(int64(reL[i]), ln.bwM)
		t.E[i] = e

		// --- P node (EP, PP edges) ---
		p := e + int64(epB[i]) +
			scaleLat(int64(epD1[i]), ln.dl1M) +
			scaleLat(int64(epDm[i]), ln.dmM) +
			scaleLat(int64(epSh[i]), ln.shM) +
			scaleLat(int64(epLg[i]), ln.lgM)
		if l := ld[i]; l >= 0 && ln.dmM > 0 {
			p = max(p, t.P[l])
		}
		t.P[i] = p

		// --- C node (PC, CC, CBW edges) ---
		c := p + pc
		if i > 0 {
			c = max(c, t.C[i-1]+scaleLat(int64(ccL[i]), ln.bwM))
		}
		if ln.bwM > 0 && i >= cbw {
			c = max(c, t.C[i-cbw]+1)
		}
		t.C[i] = c
	}
	return nil
}

// evalLanesScaled is the batch kernel for chunks holding at least one
// scaled lane: every lane runs in multiplier form (binary lanes get
// endpoint multipliers, which scaleLat reproduces exactly), so mixed
// chunks stay bit-exact with the scalar walks lane by lane.
func (g *Graph) evalLanesScaled(ctx context.Context, ids []Ideal, sc *laneScratch) error {
	W := len(ids)
	n := g.Len()
	D, P, C := sc.d, sc.p, sc.c
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	ft := g.tables()
	epB, epD1, epDm, epSh, epLg, icc, mp :=
		ft.epBase, ft.epDL1, ft.epDMiss, ft.epShort, ft.epLong, ft.icache, ft.mispPrev

	lanes := make([]scaledLane, W)
	anyPer := false
	for w := range ids {
		lanes[w] = scaledLaneOf(cfg, ids[w].Global, ids[w].Scale)
		if ids[w].PerInst != nil {
			anyPer = true
		}
	}

	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		ddBreak := int64(ddB[i])
		icLat := int64(icc[i])
		reLat := int64(reL[i])
		ccLat := int64(ccL[i])
		base0 := int64(epB[i])
		dl1L := int64(epD1[i])
		dmL := int64(epDm[i])
		shL := int64(epSh[i])
		lgL := int64(epLg[i])
		p1Row, p2Row, leadRow := int(pr1[i])*W, int(pr2[i])*W, int(ld[i])*W
		misp := mp[i] != 0
		base := i * W
		prev := base - W
		fbwRow, cbwRow := base-fbw*W, base-cbw*W
		dRow := D[base : base+W]
		pRow := P[base : base+W]
		cRow := C[base : base+W]
		for w := 0; w < W; w++ {
			ln := lanes[w]
			if anyPer && ids[w].PerInst != nil {
				ln = scaledLaneOf(cfg, ids[w].Of(i), ids[w].Scale)
			}
			d := scaleLat(ddBreak, ln.bwM) + scaleLat(icLat, ln.icM)
			if i > 0 {
				d += D[prev+w]
				if misp {
					recM := ln.recM
					if anyPer && ids[w].PerInst != nil {
						recM = scaledLaneOf(cfg, ids[w].Of(i-1), ids[w].Scale).recM
					}
					if recM > 0 {
						if v := P[prev+w] + scaleLat(rec, recM); v > d {
							d = v
						}
					}
				}
			}
			if ln.bwM > 0 && fbwRow >= 0 {
				if v := D[fbwRow+w] + 1; v > d {
					d = v
				}
			}
			if wr := base - ln.win*W; wr >= 0 {
				if v := C[wr+w]; v > d {
					d = v
				}
			}
			dRow[w] = d

			r := d + dr
			if p1Row >= 0 {
				if v := P[p1Row+w] + wake; v > r {
					r = v
				}
			}
			if p2Row >= 0 {
				if v := P[p2Row+w] + wake; v > r {
					r = v
				}
			}

			e := r + scaleLat(reLat, ln.bwM)

			p := e + base0 +
				scaleLat(dl1L, ln.dl1M) +
				scaleLat(dmL, ln.dmM) +
				scaleLat(shL, ln.shM) +
				scaleLat(lgL, ln.lgM)
			if leadRow >= 0 && ln.dmM > 0 {
				if v := P[leadRow+w]; v > p {
					p = v
				}
			}
			pRow[w] = p

			c := p + pc
			if i > 0 {
				if cc := C[prev+w] + scaleLat(ccLat, ln.bwM); cc > c {
					c = cc
				}
			}
			if ln.bwM > 0 && cbwRow >= 0 {
				if v := C[cbwRow+w] + 1; v > c {
					c = v
				}
			}
			cRow[w] = c
		}
	}
	return nil
}

// latestIntoScaled is the backward (latest-time) pass for parametric
// idealizations, the multiplier mirror of latestInto. Forward times t
// must come from the same idealization.
func (g *Graph) latestIntoScaled(ctx context.Context, id Ideal, t *Times, l *Latest) error {
	n := g.Len()
	lD, lR, lE, lP, lC := l.D, l.R, l.E, l.P, l.C
	for i := 0; i < n; i++ {
		lD[i], lR[i], lE[i], lP[i], lC[i] = inf, inf, inf, inf, inf
	}
	if n == 0 {
		return nil
	}
	ft := g.tables()
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	epB, epD1, epDm, epSh, epLg, ic, mp :=
		ft.epBase, ft.epDL1, ft.epDMiss, ft.epShort, ft.epLong, ft.icache, ft.mispPrev
	ln := scaledLaneOf(cfg, id.Global, id.Scale)
	perInst := id.PerInst != nil

	lC[n-1] = t.C[n-1]
	for i := n - 1; i >= 0; i-- {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if perInst {
			ln = scaledLaneOf(cfg, id.Of(i), id.Scale)
		}

		// --- C node; in-edges PC, CC, CBW ---
		toC := lC[i]
		if toC == inf {
			toC = t.C[i]
			lC[i] = toC
		}
		if v := toC - pc; v < lP[i] {
			lP[i] = v
		}
		if i > 0 {
			if cc := toC - scaleLat(int64(ccL[i]), ln.bwM); cc < lC[i-1] {
				lC[i-1] = cc
			}
		}
		if ln.bwM > 0 && i >= cbw {
			if v := toC - 1; v < lC[i-cbw] {
				lC[i-cbw] = v
			}
		}

		// --- P node; in-edges EP, PP ---
		toP := lP[i]
		if toP == inf {
			toP = t.P[i]
			lP[i] = toP
		}
		ep := int64(epB[i]) +
			scaleLat(int64(epD1[i]), ln.dl1M) +
			scaleLat(int64(epDm[i]), ln.dmM) +
			scaleLat(int64(epSh[i]), ln.shM) +
			scaleLat(int64(epLg[i]), ln.lgM)
		if v := toP - ep; v < lE[i] {
			lE[i] = v
		}
		if lead := ld[i]; lead >= 0 && ln.dmM > 0 {
			if toP < lP[lead] {
				lP[lead] = toP
			}
		}

		// --- E node; in-edge RE ---
		toE := lE[i]
		if toE == inf {
			toE = t.E[i]
			lE[i] = toE
		}
		if re := toE - scaleLat(int64(reL[i]), ln.bwM); re < lR[i] {
			lR[i] = re
		}

		// --- R node; in-edges DR, PR ---
		toR := lR[i]
		if toR == inf {
			toR = t.R[i]
			lR[i] = toR
		}
		if v := toR - dr; v < lD[i] {
			lD[i] = v
		}
		if p := pr1[i]; p >= 0 {
			if v := toR - wake; v < lP[p] {
				lP[p] = v
			}
		}
		if p := pr2[i]; p >= 0 {
			if v := toR - wake; v < lP[p] {
				lP[p] = v
			}
		}

		// --- D node; in-edges DD, PD, FBW, CD ---
		toD := lD[i]
		if toD == inf {
			toD = t.D[i]
			lD[i] = toD
		}
		if i > 0 {
			dd := scaleLat(int64(ddB[i]), ln.bwM) + scaleLat(int64(ic[i]), ln.icM)
			if v := toD - dd; v < lD[i-1] {
				lD[i-1] = v
			}
			if mp[i] != 0 {
				recM := ln.recM
				if perInst {
					recM = scaledLaneOf(cfg, id.Of(i-1), id.Scale).recM
				}
				if recM > 0 {
					if v := toD - scaleLat(rec, recM); v < lP[i-1] {
						lP[i-1] = v
					}
				}
			}
		}
		if ln.bwM > 0 && i >= fbw {
			if v := toD - 1; v < lD[i-fbw] {
				lD[i-fbw] = v
			}
		}
		if i >= ln.win {
			if toD < lC[i-ln.win] {
				lC[i-ln.win] = toD
			}
		}
	}
	return nil
}

// inEdgesScaled enumerates instruction i's in-edges under a
// parametric idealization, matching the scaled kernels constraint for
// constraint (so CriticalPath binds against runScaled's node times).
func (g *Graph) inEdgesScaled(i int, id Ideal) []Edge {
	cfg := &g.Cfg
	ft := g.tables()
	ln := scaledLaneOf(cfg, id.Of(i), id.Scale)
	var out []Edge
	// Into D.
	if i > 0 {
		dd := scaleLat(int64(g.DDBreak[i]), ln.bwM) + scaleLat(int64(ft.icache[i]), ln.icM)
		out = append(out, Edge{EdgeDD, i - 1, NodeD, i, NodeD, dd})
		if g.Info[i-1].Mispredict {
			// Gated and scaled by the branch's (i-1's) effective flags.
			if recM := scaledLaneOf(cfg, id.Of(i-1), id.Scale).recM; recM > 0 {
				out = append(out, Edge{EdgePD, i - 1, NodeP, i, NodeD,
					scaleLat(int64(cfg.BranchRecovery), recM)})
			}
		}
	}
	if ln.bwM > 0 && i >= cfg.FetchBW {
		out = append(out, Edge{EdgeFBW, i - cfg.FetchBW, NodeD, i, NodeD, 1})
	}
	if i >= ln.win {
		out = append(out, Edge{EdgeCD, i - ln.win, NodeC, i, NodeD, 0})
	}
	// Into R.
	out = append(out, Edge{EdgeDR, i, NodeD, i, NodeR, int64(cfg.DispatchToReady)})
	if p := g.Prod1[i]; p >= 0 {
		out = append(out, Edge{EdgePR, int(p), NodeP, i, NodeR, int64(cfg.WakeupExtra)})
	}
	if p := g.Prod2[i]; p >= 0 {
		out = append(out, Edge{EdgePR, int(p), NodeP, i, NodeR, int64(cfg.WakeupExtra)})
	}
	// Into E.
	out = append(out, Edge{EdgeRE, i, NodeR, i, NodeE, scaleLat(int64(g.RELat[i]), ln.bwM)})
	// Into P.
	ep := int64(ft.epBase[i]) +
		scaleLat(int64(ft.epDL1[i]), ln.dl1M) +
		scaleLat(int64(ft.epDMiss[i]), ln.dmM) +
		scaleLat(int64(ft.epShort[i]), ln.shM) +
		scaleLat(int64(ft.epLong[i]), ln.lgM)
	out = append(out, Edge{EdgeEP, i, NodeE, i, NodeP, ep})
	if l := g.PPLeader[i]; l >= 0 && ln.dmM > 0 {
		out = append(out, Edge{EdgePP, int(l), NodeP, i, NodeP, 0})
	}
	// Into C.
	out = append(out, Edge{EdgePC, i, NodeP, i, NodeC, int64(cfg.CompleteToCommit)})
	if i > 0 {
		out = append(out, Edge{EdgeCC, i - 1, NodeC, i, NodeC, scaleLat(int64(g.CCLat[i]), ln.bwM)})
	}
	if ln.bwM > 0 && i >= cfg.CommitBW {
		out = append(out, Edge{EdgeCBW, i - cfg.CommitBW, NodeC, i, NodeC, 1})
	}
	return out
}

// feedScaled is the windowed fold kernel for parametric lanes: the
// multiplier mirror of feedBinary. The caller (Feed) has already
// verified stream order and advances the fold count.
func (we *WindowEval) feedScaled(win *Window) {
	cfg := &we.cfg
	L := int64(len(we.slanes))
	D, P, C := we.d, we.p, we.c
	rmask := we.rmask
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := int64(cfg.FetchBW), int64(cfg.CommitBW)
	dl1 := int64(cfg.DL1Latency)
	l2 := int64(cfg.L2Latency)
	mem := int64(cfg.L2Latency) + int64(cfg.MemLatency)
	tlb := int64(cfg.TLBMissLatency)

	for j := 0; j < win.N; j++ {
		abs := win.Lo + int64(j)
		base, d1L, dmL, shL, lgL, icL := decomposeLat(&win.Info[j], dl1, l2, mem, tlb)
		ddBreak := int64(win.DDBreak[j])
		reLat := int64(win.RELat[j])
		ccLat := int64(win.CCLat[j])
		misp := win.MispPrev[j] != 0

		row := (abs & rmask) * L
		prevRow, fbwRow, cbwRow := int64(-1), int64(-1), int64(-1)
		if abs > 0 {
			prevRow = ((abs - 1) & rmask) * L
		}
		if abs >= fbw {
			fbwRow = ((abs - fbw) & rmask) * L
		}
		if abs >= cbw {
			cbwRow = ((abs - cbw) & rmask) * L
		}
		p1Row := refRow(win.Prod1[j], win.Lo, rmask, L)
		p2Row := refRow(win.Prod2[j], win.Lo, rmask, L)
		leadRow := refRow(win.PPLeader[j], win.Lo, rmask, L)

		dRow := D[row : row+L]
		pRow := P[row : row+L]
		cRow := C[row : row+L]
		for w := int64(0); w < L; w++ {
			ln := &we.slanes[w]
			d := scaleLat(ddBreak, ln.bwM) + scaleLat(icL, ln.icM)
			if prevRow >= 0 {
				d += D[prevRow+w]
				if misp && ln.recM > 0 {
					if v := P[prevRow+w] + scaleLat(rec, ln.recM); v > d {
						d = v
					}
				}
			}
			if ln.bwM > 0 && fbwRow >= 0 {
				if v := D[fbwRow+w] + 1; v > d {
					d = v
				}
			}
			if win := int64(ln.win); abs >= win {
				if v := C[((abs-win)&rmask)*L+w]; v > d {
					d = v
				}
			}
			dRow[w] = d

			r := d + dr
			if p1Row >= 0 {
				if v := P[p1Row+w] + wake; v > r {
					r = v
				}
			}
			if p2Row >= 0 {
				if v := P[p2Row+w] + wake; v > r {
					r = v
				}
			}

			e := r + scaleLat(reLat, ln.bwM)

			p := e + base +
				scaleLat(d1L, ln.dl1M) +
				scaleLat(dmL, ln.dmM) +
				scaleLat(shL, ln.shM) +
				scaleLat(lgL, ln.lgM)
			if leadRow >= 0 && ln.dmM > 0 {
				if v := P[leadRow+w]; v > p {
					p = v
				}
			}
			pRow[w] = p

			c := p + pc
			if prevRow >= 0 {
				if cc := C[prevRow+w] + scaleLat(ccLat, ln.bwM); cc > c {
					c = cc
				}
			}
			if ln.bwM > 0 && cbwRow >= 0 {
				if v := C[cbwRow+w] + 1; v > c {
					c = v
				}
			}
			cRow[w] = c
		}
	}
}
