package depgraph

import (
	"context"
	"testing"

	"icost/internal/rng"
)

func TestAlphaQuantization(t *testing.T) {
	cases := []struct {
		x    float64
		want Alpha
	}{
		{-0.5, 0}, {0, 0}, {1, AlphaOne}, {1.5, AlphaOne},
		{0.5, 128}, {0.25, 64}, {0.75, 192},
	}
	for _, c := range cases {
		if got := AlphaOf(c.x); got != c.want {
			t.Errorf("AlphaOf(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	// Float/AlphaOf round-trip on every representable value.
	for a := Alpha(0); a <= AlphaOne; a++ {
		if got := AlphaOf(a.Float()); got != a {
			t.Fatalf("round-trip %d -> %v -> %d", a, a.Float(), got)
		}
	}
	// scaleLat endpoints are exact for every latency that fits a column.
	for _, lat := range []int64{0, 1, 2, 7, 100, 142, 1 << 20} {
		if got := scaleLat(lat, 0); got != 0 {
			t.Errorf("scaleLat(%d, 0) = %d", lat, got)
		}
		if got := scaleLat(lat, int64(AlphaOne)); got != lat {
			t.Errorf("scaleLat(%d, 1) = %d", lat, got)
		}
	}
}

func TestEffWindowEndpoints(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.EffWindow(AlphaOne); got != cfg.Window {
		t.Errorf("EffWindow(1) = %d, want %d", got, cfg.Window)
	}
	if got := cfg.EffWindow(0); got != cfg.Window*cfg.WindowIdealFactor {
		t.Errorf("EffWindow(0) = %d, want %d", got, cfg.Window*cfg.WindowIdealFactor)
	}
	prev := cfg.EffWindow(0)
	for a := Alpha(1); a <= AlphaOne; a++ {
		w := cfg.EffWindow(a)
		if w > prev {
			t.Fatalf("EffWindow not monotone at α=%d: %d > %d", a, w, prev)
		}
		prev = w
	}
}

func TestCanonScale(t *testing.T) {
	s := ScaleVec{10, 20, 30, 40, 50, 60, 70, 80}
	got := CanonScale(IdealDL1|IdealWindow, s)
	want := ScaleVec{0: 10, 4: 50}
	if got != want {
		t.Errorf("CanonScale = %v, want %v", got, want)
	}
	over := ScaleVec{0: 2 * AlphaOne}
	if got := CanonScale(IdealDL1, over); got != (ScaleVec{0: AlphaOne}) {
		t.Errorf("CanonScale clamp = %v", got)
	}
	if !CanonScale(0, s).IsZero() {
		t.Error("CanonScale(0, s) should be zero")
	}
}

// randomScale draws a scale vector whose entries cover both endpoints
// and interior values.
func randomScale(r *rng.Rand) ScaleVec {
	var s ScaleVec
	for b := 0; b < NumFlags; b++ {
		switch r.Intn(4) {
		case 0:
			// leave zero
		case 1:
			s[b] = AlphaOne
		default:
			s[b] = Alpha(r.Intn(int(AlphaOne) + 1))
		}
	}
	return s
}

// TestScaledAlphaZeroBitExact drives the scaled kernels — scalar,
// batch and backward — through the public API with every selected
// category at α=0 and checks bit-exactness against the binary zero-out
// flags. Routing to the scaled kernels is forced by a nonzero scale
// entry on an *unselected* category, which the semantics ignore.
func TestScaledAlphaZeroBitExact(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 40; seed++ {
		r := rng.New(seed)
		n := r.Intn(300)
		g := randomGraph(r.Derive("graph"), n)
		g.Cfg = randomCfg(r.Derive("cfg"))
		id := randomIdeal(r, n)
		// The forcing entry must sit on a category no instruction
		// selects — globally or through the per-instruction mask.
		used := id.Global
		for _, pf := range id.PerInst {
			used |= pf
		}
		if used == AllFlags {
			id.Global &^= IdealWindow
			for i := range id.PerInst {
				id.PerInst[i] &^= IdealWindow
			}
			used &^= IdealWindow
		}
		free := -1
		for b := 0; b < NumFlags; b++ {
			if used&(1<<b) == 0 {
				free = b
				break
			}
		}
		forced := id
		forced.Scale[free] = AlphaOne // ignored: category not selected
		if forced.Scale.IsZero() {
			t.Fatal("forcing vector is zero")
		}

		want := g.ExecTime(id)
		if got := g.ExecTime(forced); got != want {
			t.Fatalf("seed %d: scaled scalar at α=0 gives %d, binary %d", seed, got, want)
		}

		out, err := g.EvalBatch(ctx, []Ideal{forced, id, forced})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for w, v := range out {
			if v != want {
				t.Fatalf("seed %d lane %d: scaled batch at α=0 gives %d, binary %d", seed, w, v, want)
			}
		}

		if n == 0 {
			continue
		}
		wantSl := g.Slacks(id)
		gotSl := g.Slacks(forced)
		for i := range wantSl {
			if gotSl[i] != wantSl[i] {
				t.Fatalf("seed %d inst %d: scaled slack at α=0 gives %d, binary %d", seed, i, gotSl[i], wantSl[i])
			}
		}
	}
}

// TestScaledAlphaOneMatchesBaseline: every multiplier at α=1 must
// reproduce the unidealized machine exactly, whatever flags are set.
func TestScaledAlphaOneMatchesBaseline(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 40; seed++ {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		g := randomGraph(r.Derive("graph"), n)
		g.Cfg = randomCfg(r.Derive("cfg"))
		id := randomIdeal(r, n)
		id.Scale = ScaleUniform(AllFlags, AlphaOne)

		base := g.ExecTime(Ideal{})
		if got := g.ExecTime(id); got != base {
			t.Fatalf("seed %d: scaled scalar at α=1 gives %d, baseline %d (flags %v)",
				seed, got, base, id.Global)
		}
		out, err := g.EvalBatch(ctx, []Ideal{id})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out[0] != base {
			t.Fatalf("seed %d: scaled batch at α=1 gives %d, baseline %d", seed, out[0], base)
		}
		wantSl := g.Slacks(Ideal{})
		gotSl := g.Slacks(id)
		for i := range wantSl {
			if gotSl[i] != wantSl[i] {
				t.Fatalf("seed %d inst %d: scaled slack at α=1 gives %d, baseline %d",
					seed, i, gotSl[i], wantSl[i])
			}
		}
	}
}

// TestScaledBatchMatchesScalar is the lane-exactness property over
// random α grids: EvalBatch must equal the scalar scaled walk
// element-wise, for chunks mixing scaled, binary and per-instruction
// lanes.
func TestScaledBatchMatchesScalar(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 40; seed++ {
		r := rng.New(seed)
		n := r.Intn(300)
		g := randomGraph(r.Derive("graph"), n)
		g.Cfg = randomCfg(r.Derive("cfg"))
		width := 1 + r.Intn(2*defaultLanes()+3)
		ids := make([]Ideal, width)
		for w := range ids {
			ids[w] = randomIdeal(r, n)
			if r.Bool(0.7) {
				ids[w].Scale = randomScale(r)
			}
		}
		got, err := g.EvalBatch(ctx, ids)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for w, id := range ids {
			if want := g.ExecTime(id); got[w] != want {
				t.Fatalf("seed %d lane %d (n=%d): batch %d, scalar %d (ideal %+v)",
					seed, w, n, got[w], want, id)
			}
		}
	}
}

// TestScaledMonotoneInAlpha: execution time responds monotonically to
// α — scaling a latency up can only lengthen the critical path. This
// is the property that makes sensitivity curves interpretable.
func TestScaledMonotoneInAlpha(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		r := rng.New(seed)
		n := 1 + r.Intn(250)
		g := randomGraph(r.Derive("graph"), n)
		g.Cfg = randomCfg(r.Derive("cfg"))
		f := randomFlags(r)
		if f == 0 {
			f = IdealDMiss
		}
		prev := int64(-1)
		for _, a := range []Alpha{0, 32, 64, 128, 192, 255, AlphaOne} {
			id := Ideal{Global: f, Scale: ScaleUniform(f, a)}
			got := g.ExecTime(id)
			if got < prev {
				t.Fatalf("seed %d flags %v: exec time not monotone at α=%d: %d < %d",
					seed, f, a, got, prev)
			}
			prev = got
		}
		// Endpoints against the binary answers.
		if first := g.ExecTime(Ideal{Global: f}); g.ExecTime(Ideal{Global: f, Scale: ScaleUniform(f, 0)}) != first {
			t.Fatalf("seed %d: α=0 endpoint differs from binary flags", seed)
		}
		if prev != g.ExecTime(Ideal{}) {
			t.Fatalf("seed %d: α=1 endpoint %d differs from baseline %d", seed, prev, g.ExecTime(Ideal{}))
		}
	}
}

// TestScaledCriticalPathBinds: on scaled idealizations the edge
// enumeration (inEdgesScaled) must agree with the kernels — every
// critical-path edge binds exactly, and the path reaches the last
// commit.
func TestScaledCriticalPathBinds(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		r := rng.New(seed)
		n := 1 + r.Intn(150)
		g := randomGraph(r.Derive("graph"), n)
		g.Cfg = randomCfg(r.Derive("cfg"))
		id := Ideal{Global: randomFlags(r), Scale: randomScale(r)}
		if id.Scale.IsZero() {
			id.Scale = ScaleUniform(AllFlags, 128)
		}
		tm := g.NodeTimes(id)
		path := g.CriticalPath(id)
		if len(path) == 0 {
			t.Fatalf("seed %d: empty critical path", seed)
		}
		for _, e := range path {
			from := tm.nodeTime(e.FromNode, e.FromInst)
			to := tm.nodeTime(e.ToNode, e.ToInst)
			if from+e.Lat != to {
				t.Fatalf("seed %d: edge %v does not bind: %d + %d != %d", seed, e, from, e.Lat, to)
			}
		}
		last := path[len(path)-1]
		if last.ToInst != n-1 || last.ToNode != NodeC {
			t.Fatalf("seed %d: path ends at %v%d, want C%d", seed, last.ToNode, last.ToInst, n-1)
		}
		// Latest times bound actual times from above under scale too.
		tm2, l, err := g.LatestTimesCtx(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if l.P[i] < tm2.P[i] || l.C[i] < tm2.C[i] || l.D[i] < tm2.D[i] {
				t.Fatalf("seed %d inst %d: latest below actual", seed, i)
			}
		}
	}
}

// graphWindows slices a whole graph into Window blocks with
// Lo-relative references and carry-horizon clamping, the shape the
// streaming simulator emits.
func graphWindows(g *Graph, block, carry int) []*Window {
	n := g.Len()
	rel := func(abs int32, i, lo int) int32 {
		if abs < 0 || i-int(abs) > carry {
			return NoRef
		}
		return abs - int32(lo)
	}
	var wins []*Window
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		w := &Window{}
		w.Resize(int64(lo), hi-lo)
		for j := 0; j < hi-lo; j++ {
			i := lo + j
			w.Info[j] = g.Info[i]
			w.DDBreak[j] = g.DDBreak[i]
			w.RELat[j] = g.RELat[i]
			w.CCLat[j] = g.CCLat[i]
			w.Prod1[j] = rel(g.Prod1[i], i, lo)
			w.Prod2[j] = rel(g.Prod2[i], i, lo)
			w.PPLeader[j] = rel(g.PPLeader[i], i, lo)
			var mp uint8
			if i > 0 && g.Info[i-1].Mispredict {
				mp = 1
			}
			w.MispPrev[j] = mp
		}
		wins = append(wins, w)
	}
	return wins
}

// TestScaledWindowedMatchesWholeGraph: the windowed fold over scaled
// lanes must be bit-identical to the whole-graph scaled walk at every
// grid point, including mixed binary/scaled lane sets (which all run
// through feedScaled once any lane is scaled).
func TestScaledWindowedMatchesWholeGraph(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		r := rng.New(seed)
		n := 1 + r.Intn(400)
		g := randomGraph(r.Derive("graph"), n)
		g.Cfg = randomCfg(r.Derive("cfg"))
		if g.Cfg.WakeupExtra > g.Cfg.DispatchToReady+g.Cfg.CompleteToCommit {
			g.Cfg.WakeupExtra = 0 // windowed-exactness precondition
		}
		lanes := []Ideal{
			{}, // binary baseline lane through the scaled kernel
			{Global: randomFlags(r)},
			{Global: randomFlags(r) | IdealDMiss, Scale: randomScale(r)},
			{Global: AllFlags, Scale: ScaleUniform(AllFlags, Alpha(r.Intn(257)))},
		}
		we, err := NewWindowEvalIdeals(g.Cfg, lanes)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !we.scaled {
			t.Fatalf("seed %d: evaluator not scaled", seed)
		}
		block := 1 + r.Intn(60)
		for _, win := range graphWindows(g, block, we.CarryDepth()) {
			if err := we.Feed(win); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		got := we.ExecTimes()
		for w, id := range lanes {
			if want := g.ExecTime(id); got[w] != want {
				t.Fatalf("seed %d lane %d (block %d): windowed %d, whole-graph %d (ideal %+v)",
					seed, w, block, got[w], want, id)
			}
		}
	}
}

// TestWindowEvalIdealsRejectsPerInst: windowed lanes have no
// per-instruction identity, so a mask must be rejected up front.
func TestWindowEvalIdealsRejectsPerInst(t *testing.T) {
	_, err := NewWindowEvalIdeals(DefaultConfig(), []Ideal{
		{Global: IdealDL1},
		{PerInst: make([]Flags, 10)},
	})
	if err == nil {
		t.Fatal("want error for per-instruction lane")
	}
	// Binary-only lane sets stay on the binary kernel.
	we, err := NewWindowEvalIdeals(DefaultConfig(), []Ideal{{Global: IdealDL1}})
	if err != nil {
		t.Fatal(err)
	}
	if we.scaled {
		t.Fatal("binary lanes should not route to the scaled kernel")
	}
}
