package depgraph

// Slack analysis: the companion metric to cost from the same research
// line (Fields, Bodík & Hill, "Slack: maximizing performance under
// technological constraints", ISCA 2002 — reference [11] of the
// paper). The slack of a node is how late it could occur without
// lengthening execution; an instruction with large slack can be
// delayed, de-optimized, or steered to a slower, cheaper resource for
// free, which is the paper's "de-optimization" use case for
// zero-cost events (Section 1).

import (
	"context"

	"icost/internal/faultinject"
)

// Latest holds, for every node, the latest time it can occur without
// extending total execution time. By construction Latest >= the
// corresponding NodeTimes value, with equality exactly on critical
// nodes.
type Latest struct {
	D, R, E, P, C []int64
}

const inf = int64(1) << 62

// at returns one node's latest-time slot. The switch is exhaustive
// over the five kinds: a sixth node kind must say where its slot
// lives, not silently alias the commit column.
func (l *Latest) at(k NodeKind, i int) *int64 {
	switch k {
	case NodeD:
		return &l.D[i]
	case NodeR:
		return &l.R[i]
	case NodeE:
		return &l.E[i]
	case NodeP:
		return &l.P[i]
	case NodeC:
		return &l.C[i]
	default:
		panic("depgraph: unknown NodeKind " + k.String())
	}
}

// LatestTimes runs the backward pass: starting from the final commit
// pinned at its actual time, each edge source's latest time is
// min(latest(dst) - latency) over its out-edges. Unconstrained nodes
// (no path to the final commit) keep their actual times, giving them
// zero slack contribution beyond program end. LatestTimes is
// infallible (the background context cannot cancel the passes), so
// the results are never nil.
//
//lint:ignore ctxflow infallible wrapper over LatestTimesCtx; a background ctx cannot cancel
func (g *Graph) LatestTimes(id Ideal) (*Times, *Latest) {
	t, l, err := g.LatestTimesCtx(context.Background(), id)
	if err != nil {
		panic("depgraph: background-context walk failed: " + err.Error())
	}
	return t, l
}

// LatestTimesCtx is LatestTimes with cancellation: both the forward
// and backward passes poll ctx every ctxCheckStride instructions.
func (g *Graph) LatestTimesCtx(ctx context.Context, id Ideal) (*Times, *Latest, error) {
	n := g.Len()
	t, err := g.runCtx(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	l := &Latest{
		D: make([]int64, n), R: make([]int64, n), E: make([]int64, n),
		P: make([]int64, n), C: make([]int64, n),
	}
	if err := g.latestInto(ctx, id, t, l); err != nil {
		return nil, nil, err
	}
	return t, l, nil
}

// latestInto runs the backward pass into l, whose slices must be
// Len() long; every element is initialized here, so pooled scratch
// needs no zeroing.
func (g *Graph) latestInto(ctx context.Context, id Ideal, t *Times, l *Latest) error {
	// Fault hook: backward-pass walks, cancellable contexts only (see
	// runInto).
	if ctx.Done() != nil {
		if err := faultinject.Hit(ctx, faultinject.GraphWalk); err != nil {
			return err
		}
	}
	n := g.Len()
	for i := 0; i < n; i++ {
		l.D[i], l.R[i], l.E[i], l.P[i], l.C[i] = inf, inf, inf, inf, inf
	}
	if n == 0 {
		return nil
	}
	l.C[n-1] = t.C[n-1]
	// Visit instructions backward; within an instruction, nodes in
	// reverse pipeline order. Every edge goes forward in this order,
	// so one pass suffices.
	for i := n - 1; i >= 0; i-- {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		for _, node := range [...]NodeKind{NodeC, NodeP, NodeE, NodeR, NodeD} {
			to := l.at(node, i)
			if *to == inf {
				// Dead end (e.g. the last instructions' D/R nodes
				// feed nothing beyond their own chain): pin to the
				// actual time so slack reads zero-extra.
				*to = t.nodeTime(node, i)
			}
			for _, e := range g.InEdges(i, id) {
				if e.ToNode != node {
					continue
				}
				src := l.at(e.FromNode, e.FromInst)
				if v := *to - e.Lat; v < *src {
					*src = v
				}
			}
		}
	}
	return nil
}

// Slacks returns each instruction's global slack: how many cycles its
// completion (P node) can slip without lengthening execution. Zero
// slack marks critical instructions. Slacks is infallible (the
// background context cannot cancel the passes), so the result is
// never nil.
//
//lint:ignore ctxflow infallible wrapper over SlacksCtx; a background ctx cannot cancel
func (g *Graph) Slacks(id Ideal) []int64 {
	out, err := g.SlacksCtx(context.Background(), id)
	if err != nil {
		panic("depgraph: background-context walk failed: " + err.Error())
	}
	return out
}

// SlacksCtx is Slacks with cancellation. Both passes run on pooled
// scratch: only the returned slack slice is allocated.
func (g *Graph) SlacksCtx(ctx context.Context, id Ideal) ([]int64, error) {
	n := g.Len()
	t := acquireTimes(n)
	defer releaseTimes(t)
	if err := g.runInto(ctx, id, t); err != nil {
		return nil, err
	}
	l := acquireLatest(n)
	defer releaseLatest(l)
	if err := g.latestInto(ctx, id, t, l); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = l.P[i] - t.P[i]
	}
	return out, nil
}

// CriticalTally walks one critical path and sums its edge latencies
// by edge kind — the classic "where do the cycles go" attribution
// that icost breakdowns refine. Zero-latency edges on the path are
// counted in Edges but contribute no cycles.
type Tally struct {
	// Cycles per edge kind along the critical path.
	Cycles [12]int64
	// Edges per edge kind along the critical path.
	Edges [12]int
	// Total is the sum of Cycles (equals the critical-path length
	// minus the first node's start time).
	Total int64
}

// CriticalTally computes the per-edge-kind attribution of one
// critical path under the given idealization.
func (g *Graph) CriticalTally(id Ideal) Tally {
	var t Tally
	for _, e := range g.CriticalPath(id) {
		t.Cycles[e.Kind] += e.Lat
		t.Edges[e.Kind]++
		t.Total += e.Lat
	}
	return t
}
