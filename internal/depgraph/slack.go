package depgraph

// Slack analysis: the companion metric to cost from the same research
// line (Fields, Bodík & Hill, "Slack: maximizing performance under
// technological constraints", ISCA 2002 — reference [11] of the
// paper). The slack of a node is how late it could occur without
// lengthening execution; an instruction with large slack can be
// delayed, de-optimized, or steered to a slower, cheaper resource for
// free, which is the paper's "de-optimization" use case for
// zero-cost events (Section 1).

import (
	"context"

	"icost/internal/faultinject"
)

// Latest holds, for every node, the latest time it can occur without
// extending total execution time. By construction Latest >= the
// corresponding NodeTimes value, with equality exactly on critical
// nodes.
type Latest struct {
	D, R, E, P, C []int64

	// arena is non-nil when the slices came from pooled scratch;
	// releaseLatest recycles it.
	arena *memArena
}

const inf = int64(1) << 62

// at returns one node's latest-time slot. The switch is exhaustive
// over the five kinds: a sixth node kind must say where its slot
// lives, not silently alias the commit column.
func (l *Latest) at(k NodeKind, i int) *int64 {
	switch k {
	case NodeD:
		return &l.D[i]
	case NodeR:
		return &l.R[i]
	case NodeE:
		return &l.E[i]
	case NodeP:
		return &l.P[i]
	case NodeC:
		return &l.C[i]
	default:
		panic("depgraph: unknown NodeKind " + k.String())
	}
}

// LatestTimes runs the backward pass: starting from the final commit
// pinned at its actual time, each edge source's latest time is
// min(latest(dst) - latency) over its out-edges. Unconstrained nodes
// (no path to the final commit) keep their actual times, giving them
// zero slack contribution beyond program end. LatestTimes is
// infallible (the background context cannot cancel the passes), so
// the results are never nil.
//
//lint:ignore ctxflow infallible wrapper over LatestTimesCtx; a background ctx cannot cancel
func (g *Graph) LatestTimes(id Ideal) (*Times, *Latest) {
	t, l, err := g.LatestTimesCtx(context.Background(), id)
	if err != nil {
		panic("depgraph: background-context walk failed: " + err.Error())
	}
	return t, l
}

// LatestTimesCtx is LatestTimes with cancellation: both the forward
// and backward passes poll ctx every ctxCheckStride instructions.
func (g *Graph) LatestTimesCtx(ctx context.Context, id Ideal) (*Times, *Latest, error) {
	n := g.Len()
	t, err := g.runCtx(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	l := &Latest{
		D: make([]int64, n), R: make([]int64, n), E: make([]int64, n),
		P: make([]int64, n), C: make([]int64, n),
	}
	if err := g.latestInto(ctx, id, t, l); err != nil {
		return nil, nil, err
	}
	return t, l, nil
}

// latestInto runs the backward pass into l, whose slices must be
// Len() long; every element is initialized here, so pooled scratch
// needs no zeroing.
//
// The pass visits instructions backward and, within an instruction,
// nodes in reverse pipeline order (C, P, E, R, D); every edge goes
// forward in this order, so one pass suffices. Each node's in-edges
// are enumerated implicitly from the flat CSR columns — the exact
// constraint set InEdges materializes — relaxing each source to
// min(source, dest latest - latency). A node still unconstrained when
// visited (no path to the final commit) pins to its actual time so
// slack reads zero-extra, matching the explicit-edge enumeration
// bit for bit without allocating a single Edge.
//
//lint:hotpath
func (g *Graph) latestInto(ctx context.Context, id Ideal, t *Times, l *Latest) error {
	// Fault hook: backward-pass walks, cancellable contexts only (see
	// runInto).
	if ctx.Done() != nil {
		if err := faultinject.Hit(ctx, faultinject.GraphWalk); err != nil {
			return err
		}
	}
	if !id.Scale.IsZero() {
		return g.latestIntoScaled(ctx, id, t, l)
	}
	n := g.Len()
	lD, lR, lE, lP, lC := l.D, l.R, l.E, l.P, l.C
	for i := 0; i < n; i++ {
		lD[i], lR[i], lE[i], lP[i], lC[i] = inf, inf, inf, inf, inf
	}
	if n == 0 {
		return nil
	}
	ft := g.tables()
	cfg := &g.Cfg
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := cfg.FetchBW, cfg.CommitBW
	ddB, reL, ccL := g.DDBreak, g.RELat, g.CCLat
	pr1, pr2, ld := g.Prod1, g.Prod2, g.PPLeader
	epB, epD1, epDm, epSh, epLg, ic, mp :=
		ft.epBase, ft.epDL1, ft.epDMiss, ft.epShort, ft.epLong, ft.icache, ft.mispPrev

	lC[n-1] = t.C[n-1]
	for i := n - 1; i >= 0; i-- {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		f := id.Of(i)
		bw := f&IdealBW == 0

		// --- C node; in-edges PC, CC, CBW ---
		toC := lC[i]
		if toC == inf {
			toC = t.C[i]
			lC[i] = toC
		}
		if v := toC - pc; v < lP[i] { // PC: P(i) -> C(i)
			lP[i] = v
		}
		if i > 0 {
			cc := toC // CC: C(i-1) -> C(i)
			if bw {
				cc -= int64(ccL[i])
			}
			if cc < lC[i-1] {
				lC[i-1] = cc
			}
		}
		if bw && i >= cbw { // CBW: C(i-cbw) -> C(i), lat 1
			if v := toC - 1; v < lC[i-cbw] {
				lC[i-cbw] = v
			}
		}

		// --- P node; in-edges EP, PP ---
		toP := lP[i]
		if toP == inf {
			toP = t.P[i]
			lP[i] = toP
		}
		ep := int64(epB[i]) // EP: E(i) -> P(i)
		if f&IdealDL1 == 0 {
			ep += int64(epD1[i])
		}
		dm := f&IdealDMiss == 0
		if dm {
			ep += int64(epDm[i])
		}
		if f&IdealShortALU == 0 {
			ep += int64(epSh[i])
		}
		if f&IdealLongALU == 0 {
			ep += int64(epLg[i])
		}
		if v := toP - ep; v < lE[i] {
			lE[i] = v
		}
		if lead := ld[i]; lead >= 0 && dm { // PP: P(leader) -> P(i), lat 0
			if toP < lP[lead] {
				lP[lead] = toP
			}
		}

		// --- E node; in-edge RE ---
		toE := lE[i]
		if toE == inf {
			toE = t.E[i]
			lE[i] = toE
		}
		re := toE // RE: R(i) -> E(i)
		if bw {
			re -= int64(reL[i])
		}
		if re < lR[i] {
			lR[i] = re
		}

		// --- R node; in-edges DR, PR ---
		toR := lR[i]
		if toR == inf {
			toR = t.R[i]
			lR[i] = toR
		}
		if v := toR - dr; v < lD[i] { // DR: D(i) -> R(i)
			lD[i] = v
		}
		if p := pr1[i]; p >= 0 { // PR: P(prod) -> R(i)
			if v := toR - wake; v < lP[p] {
				lP[p] = v
			}
		}
		if p := pr2[i]; p >= 0 {
			if v := toR - wake; v < lP[p] {
				lP[p] = v
			}
		}

		// --- D node; in-edges DD, PD, FBW, CD ---
		toD := lD[i]
		if toD == inf {
			toD = t.D[i]
			lD[i] = toD
		}
		if i > 0 {
			var dd int64 // DD: D(i-1) -> D(i), icache + fetch break
			if bw {
				dd = int64(ddB[i])
			}
			if f&IdealICache == 0 {
				dd += int64(ic[i])
			}
			if v := toD - dd; v < lD[i-1] {
				lD[i-1] = v
			}
			// PD: P(i-1) -> D(i), gated by the branch's flags.
			if mp[i] != 0 && id.Of(i-1)&IdealBMisp == 0 {
				if v := toD - rec; v < lP[i-1] {
					lP[i-1] = v
				}
			}
		}
		if bw && i >= fbw { // FBW: D(i-fbw) -> D(i), lat 1
			if v := toD - 1; v < lD[i-fbw] {
				lD[i-fbw] = v
			}
		}
		w := cfg.Window
		if f&IdealWindow != 0 {
			w *= cfg.WindowIdealFactor
		}
		if i >= w { // CD: C(i-w) -> D(i), lat 0
			if toD < lC[i-w] {
				lC[i-w] = toD
			}
		}
	}
	return nil
}

// Slacks returns each instruction's global slack: how many cycles its
// completion (P node) can slip without lengthening execution. Zero
// slack marks critical instructions. Slacks is infallible (the
// background context cannot cancel the passes), so the result is
// never nil.
//
//lint:ignore ctxflow infallible wrapper over SlacksCtx; a background ctx cannot cancel
func (g *Graph) Slacks(id Ideal) []int64 {
	out, err := g.SlacksCtx(context.Background(), id)
	if err != nil {
		panic("depgraph: background-context walk failed: " + err.Error())
	}
	return out
}

// SlacksCtx is Slacks with cancellation. Both passes run on pooled
// scratch: only the returned slack slice is allocated.
//
//lint:hotpath allocs=1
func (g *Graph) SlacksCtx(ctx context.Context, id Ideal) ([]int64, error) {
	n := g.Len()
	t := acquireTimes(n)
	defer releaseTimes(t)
	if err := g.runInto(ctx, id, t); err != nil {
		return nil, err
	}
	l := acquireLatest(n)
	defer releaseLatest(l)
	if err := g.latestInto(ctx, id, t, l); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = l.P[i] - t.P[i]
	}
	return out, nil
}

// CriticalTally walks one critical path and sums its edge latencies
// by edge kind — the classic "where do the cycles go" attribution
// that icost breakdowns refine. Zero-latency edges on the path are
// counted in Edges but contribute no cycles.
type Tally struct {
	// Cycles per edge kind along the critical path.
	Cycles [12]int64
	// Edges per edge kind along the critical path.
	Edges [12]int
	// Total is the sum of Cycles (equals the critical-path length
	// minus the first node's start time).
	Total int64
}

// CriticalTally computes the per-edge-kind attribution of one
// critical path under the given idealization.
func (g *Graph) CriticalTally(id Ideal) Tally {
	var t Tally
	for _, e := range g.CriticalPath(id) {
		t.Cycles[e.Kind] += e.Lat
		t.Edges[e.Kind]++
		t.Total += e.Lat
	}
	return t
}
