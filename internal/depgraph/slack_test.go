package depgraph

import (
	"testing"
	"testing/quick"

	"icost/internal/cache"
	"icost/internal/isa"
	"icost/internal/rng"
)

func TestSlackNonNegative(t *testing.T) {
	g := randomGraph(rng.New(11), 300)
	for i, s := range g.Slacks(Ideal{}) {
		if s < 0 {
			t.Fatalf("instruction %d has negative slack %d", i, s)
		}
	}
}

func TestSlackZeroOnCriticalPath(t *testing.T) {
	g := randomGraph(rng.New(13), 300)
	id := Ideal{}
	slacks := g.Slacks(id)
	for _, e := range g.CriticalPath(id) {
		if e.FromNode == NodeP && slacks[e.FromInst] != 0 {
			t.Fatalf("critical instruction %d (P node on path) has slack %d",
				e.FromInst, slacks[e.FromInst])
		}
	}
}

func TestSlackAsymmetricMisses(t *testing.T) {
	// Two independent loads: one misses to memory (critical), one
	// only to L2. The L2 miss's slack is the latency difference.
	cfg := Config{
		FetchBW: 8, CommitBW: 8, Window: 64, WindowIdealFactor: 20,
		DispatchToReady: 0, CompleteToCommit: 0, BranchRecovery: 8,
		DL1Latency: 2, L2Latency: 12, MemLatency: 100, TLBMissLatency: 30,
	}
	g := New(cfg, 2)
	g.Info[0] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem} // 114
	g.Info[1] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelL2}  // 14
	slacks := g.Slacks(Ideal{})
	if slacks[0] != 0 {
		t.Fatalf("memory miss slack %d, want 0", slacks[0])
	}
	if slacks[1] != 100 {
		t.Fatalf("L2 miss slack %d, want 100", slacks[1])
	}
}

func TestLatestNeverBeforeActual(t *testing.T) {
	g := randomGraph(rng.New(17), 250)
	ts, l := g.LatestTimes(Ideal{})
	for i := 0; i < g.Len(); i++ {
		if l.D[i] < ts.D[i] || l.R[i] < ts.R[i] || l.E[i] < ts.E[i] ||
			l.P[i] < ts.P[i] || l.C[i] < ts.C[i] {
			t.Fatalf("instruction %d: latest before actual", i)
		}
	}
	// The final commit is pinned.
	n := g.Len()
	if l.C[n-1] != ts.C[n-1] {
		t.Fatal("final commit not pinned")
	}
}

func TestQuickSlackSoundAndTight(t *testing.T) {
	// Soundness: delaying an instruction's completion by exactly its
	// slack (via extra RE latency, which shifts P one-for-one when no
	// PP edge binds) must not lengthen execution. Tightness: one more
	// cycle must. Checked on a sample of instructions per graph.
	f := func(seed uint64, pick uint8) bool {
		g := randomGraph(rng.New(seed), 120)
		slacks := g.Slacks(Ideal{})
		base := g.ExecTime(Ideal{})
		i := int(pick) % g.Len()
		if g.PPLeader[i] >= 0 {
			return true // RE delay may be absorbed by the PP bound
		}
		orig := g.RELat[i]
		g.RELat[i] = orig + int32(slacks[i])
		same := g.ExecTime(Ideal{})
		g.RELat[i] = orig + int32(slacks[i]) + 1
		more := g.ExecTime(Ideal{})
		g.RELat[i] = orig
		return same == base && more > base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalTallyMatchesPath(t *testing.T) {
	g := randomGraph(rng.New(19), 300)
	id := Ideal{}
	tally := g.CriticalTally(id)
	path := g.CriticalPath(id)
	var cycles int64
	edges := 0
	for _, e := range path {
		cycles += e.Lat
		edges++
	}
	if tally.Total != cycles {
		t.Fatalf("tally total %d != path sum %d", tally.Total, cycles)
	}
	n := 0
	for k := range tally.Edges {
		n += tally.Edges[k]
	}
	if n != edges {
		t.Fatalf("tally edges %d != path edges %d", n, edges)
	}
}

func TestCriticalTallyMemBound(t *testing.T) {
	// A serial chain of memory misses must attribute nearly all
	// critical cycles to EP edges.
	cfg := DefaultConfig()
	g := New(cfg, 20)
	for i := 0; i < 20; i++ {
		g.Info[i] = InstInfo{Op: isa.OpLoad, DataLevel: cache.LevelMem}
		if i > 0 {
			g.Prod1[i] = int32(i - 1)
		}
	}
	tally := g.CriticalTally(Ideal{})
	if tally.Cycles[EdgeEP] < tally.Total*8/10 {
		t.Fatalf("EP cycles %d of %d, expected dominant", tally.Cycles[EdgeEP], tally.Total)
	}
}

func TestSlackEmptyGraph(t *testing.T) {
	g := New(DefaultConfig(), 0)
	if len(g.Slacks(Ideal{})) != 0 {
		t.Fatal("non-empty slack for empty graph")
	}
}
