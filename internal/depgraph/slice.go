package depgraph

import "fmt"

// Slice returns an independent sub-graph covering instructions
// [lo, hi). Cross-boundary references are clamped: producers and
// cache-line leaders before lo become "ready long before" (-1),
// exactly how the shotgun profiler treats fragment edges. Slicing
// enables phase analysis — per-interval breakdowns over a long
// execution — at the cost of losing cross-boundary constraints
// (negligible for slices much longer than the window).
func (g *Graph) Slice(lo, hi int) (*Graph, error) {
	if lo < 0 || hi > g.Len() || lo >= hi {
		return nil, fmt.Errorf("depgraph: slice [%d,%d) outside graph of %d", lo, hi, g.Len())
	}
	n := hi - lo
	s := New(g.Cfg, n)
	copy(s.Info, g.Info[lo:hi])
	copy(s.DDBreak, g.DDBreak[lo:hi])
	copy(s.RELat, g.RELat[lo:hi])
	copy(s.CCLat, g.CCLat[lo:hi])
	clamp := func(idx int32) int32 {
		if idx < int32(lo) {
			return -1
		}
		return idx - int32(lo)
	}
	for i := 0; i < n; i++ {
		if p := g.Prod1[lo+i]; p >= 0 {
			s.Prod1[i] = clamp(p)
		}
		if p := g.Prod2[lo+i]; p >= 0 {
			s.Prod2[i] = clamp(p)
		}
		if l := g.PPLeader[lo+i]; l >= 0 {
			s.PPLeader[i] = clamp(l)
		}
	}
	// A mispredict on the last instruction has no successor inside
	// the slice; leaving the flag set is harmless (the PD edge targets
	// i+1, which does not exist here).
	return s, nil
}

// Phases splits the graph into k equal intervals and returns them.
// The final interval absorbs the remainder.
func (g *Graph) Phases(k int) ([]*Graph, error) {
	if k < 1 || k > g.Len() {
		return nil, fmt.Errorf("depgraph: cannot split %d instructions into %d phases", g.Len(), k)
	}
	size := g.Len() / k
	out := make([]*Graph, 0, k)
	for p := 0; p < k; p++ {
		lo := p * size
		hi := lo + size
		if p == k-1 {
			hi = g.Len()
		}
		s, err := g.Slice(lo, hi)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
