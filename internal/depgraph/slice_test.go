package depgraph

import (
	"testing"

	"icost/internal/rng"
)

func TestSliceIndependence(t *testing.T) {
	g := randomGraph(rng.New(21), 200)
	s, err := g.Slice(50, 150)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 {
		t.Fatalf("slice length %d", s.Len())
	}
	// No reference may point outside the slice.
	for i := 0; i < s.Len(); i++ {
		for _, p := range []int32{s.Prod1[i], s.Prod2[i], s.PPLeader[i]} {
			if p >= int32(s.Len()) || p < -1 {
				t.Fatalf("instruction %d references %d outside slice", i, p)
			}
		}
	}
	// The copied annotations match the original.
	for i := 0; i < s.Len(); i++ {
		if s.Info[i] != g.Info[50+i] {
			t.Fatalf("info mismatch at %d", i)
		}
	}
}

func TestSliceClampsCrossBoundary(t *testing.T) {
	g := randomGraph(rng.New(23), 100)
	// Find an instruction whose producer precedes the cut.
	cut := 50
	found := false
	for i := cut; i < 100; i++ {
		if p := g.Prod1[i]; p >= 0 && p < int32(cut) {
			s, err := g.Slice(cut, 100)
			if err != nil {
				t.Fatal(err)
			}
			if s.Prod1[i-cut] != -1 {
				t.Fatalf("cross-boundary producer not clamped: %d", s.Prod1[i-cut])
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no cross-boundary producer in this random graph")
	}
}

func TestSliceTimesConsistent(t *testing.T) {
	// A slice's execution time is close to the original's over the
	// same range: boundary effects only (lost cross-boundary
	// producers and window state make the slice optimistic).
	g := randomGraph(rng.New(25), 400)
	full := g.NodeTimes(Ideal{})
	s, err := g.Slice(100, 400)
	if err != nil {
		t.Fatal(err)
	}
	sliceTime := s.ExecTime(Ideal{})
	origSpan := full.C[399] - full.C[99]
	if sliceTime > origSpan+int64(g.Cfg.MemLatency)+50 {
		t.Fatalf("slice time %d far exceeds original span %d", sliceTime, origSpan)
	}
}

func TestPhases(t *testing.T) {
	g := randomGraph(rng.New(27), 305)
	phases, err := g.Phases(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("%d phases", len(phases))
	}
	total := 0
	for _, p := range phases {
		total += p.Len()
	}
	if total != 305 {
		t.Fatalf("phases cover %d of 305", total)
	}
	// Last phase absorbs the remainder.
	if phases[2].Len() != 103 { // 305 - 2*101
		t.Fatalf("last phase %d", phases[2].Len())
	}
}

func TestSliceAndPhaseValidation(t *testing.T) {
	g := randomGraph(rng.New(29), 50)
	if _, err := g.Slice(-1, 10); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := g.Slice(10, 51); err == nil {
		t.Fatal("hi beyond end accepted")
	}
	if _, err := g.Slice(10, 10); err == nil {
		t.Fatal("empty slice accepted")
	}
	if _, err := g.Phases(0); err == nil {
		t.Fatal("zero phases accepted")
	}
	if _, err := g.Phases(51); err == nil {
		t.Fatal("more phases than instructions accepted")
	}
}
