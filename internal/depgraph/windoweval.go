package depgraph

import (
	"fmt"
	"math"

	"icost/internal/cache"
)

// Windowed long-trace evaluation. A whole-trace Graph holds ~56 bytes
// of records per instruction — tens of millions of instructions means
// gigabytes resident before a single query runs. But the graph model
// itself is local: every edge reaches back a bounded number of
// instructions (the re-order buffer for CD edges — at most
// Window×WindowIdealFactor under the infinite-window idealization —
// and FetchBW/CommitBW for the bandwidth edges; producer and
// line-sharing edges can reach arbitrarily far back as *records*, but
// beyond the window depth they can never bind, see below). So the
// forward recurrence streams: the simulator emits bounded Window
// blocks of CSR records, and WindowEval folds each block into
// per-idealization node-time rings whose size depends only on the
// machine configuration — never on trace length.
//
// Boundary-edge carry and exactness. The carry depth K = CarryDepth()
// = max(Window×WindowIdealFactor, FetchBW, CommitBW) bounds how far
// back any *binding* edge can reach, for every global idealization:
// commit times are monotone (the CC edge chains every instruction),
// and the CD edge — present under every idealization, merely widened
// by IdealWindow — forces D(i) ≥ C(i−w). A producer p more than w
// behind i therefore has P(p) ≤ C(p) − CompleteToCommit ≤ C(i−w) −
// CompleteToCommit ≤ D(i) − CompleteToCommit, so its PR edge cannot
// lift R(i) = max(D(i) + DispatchToReady, P(p) + WakeupExtra) as long
// as WakeupExtra ≤ DispatchToReady + CompleteToCommit — the
// ValidateWindowed precondition. Line-sharing PP edges are
// unconditional: P(leader) ≤ C(i−w) ≤ D(i) ≤ P(i) already. Refs
// farther back than K are clamped to NoRef at emission, and the fold
// over clamped blocks is bit-identical to the whole-graph walk —
// FuzzWindowFold and the window package's tests prove this against
// full simulations.
//
// The arrays are per-kind edge columns exactly like Graph's — the
// same CSR layout, windowed.

// NoRef marks an absent or clamped cross-window reference in a
// Window's producer/leader columns. Distinct from -1, which is a
// valid relative reference (the instruction before the window start).
const NoRef = int32(math.MinInt32)

// Window is one bounded block of dependence-graph records emitted by
// the streaming simulator. Producer and leader references are
// relative to Lo (absolute index Lo+rel; negative values reach into
// earlier windows, never farther back than the carry depth — beyond
// it they are clamped to NoRef, which the evaluation above proves
// lossless).
type Window struct {
	// Lo is the absolute dynamic index of the first instruction.
	Lo int64
	// N is the number of instructions in the block.
	N int

	Info     []InstInfo
	DDBreak  []uint8
	RELat    []int32
	CCLat    []int32
	Prod1    []int32 // relative to Lo, or NoRef
	Prod2    []int32 // relative to Lo, or NoRef
	PPLeader []int32 // relative to Lo, or NoRef
	// MispPrev[j] != 0 marks instruction Lo+j-1 as a mispredicted
	// branch (the PD-edge gate; carried explicitly because the
	// previous instruction may live in an earlier, discarded window).
	MispPrev []uint8
}

// Resize prepares the window to hold n instructions starting at
// absolute index lo, growing the columns as needed. Contents are
// unspecified; the filler overwrites every element.
func (w *Window) Resize(lo int64, n int) {
	w.Lo, w.N = lo, n
	if cap(w.Info) < n {
		w.Info = make([]InstInfo, n)
		w.DDBreak = make([]uint8, n)
		w.RELat = make([]int32, n)
		w.CCLat = make([]int32, n)
		w.Prod1 = make([]int32, n)
		w.Prod2 = make([]int32, n)
		w.PPLeader = make([]int32, n)
		w.MispPrev = make([]uint8, n)
	}
	w.Info = w.Info[:n]
	w.DDBreak = w.DDBreak[:n]
	w.RELat = w.RELat[:n]
	w.CCLat = w.CCLat[:n]
	w.Prod1 = w.Prod1[:n]
	w.Prod2 = w.Prod2[:n]
	w.PPLeader = w.PPLeader[:n]
	w.MispPrev = w.MispPrev[:n]
}

// Bytes is the block's backing-store footprint, for budget accounting.
func (w *Window) Bytes() int64 {
	const instInfoBytes = int64(16) // Op+SIdx+flags+levels, padded
	n := int64(cap(w.Info))
	return n*instInfoBytes + n /*DDBreak*/ + 5*4*n /*int32 columns*/ + n /*MispPrev*/
}

// CarryDepth is the maximum backward reach, in instructions, of any
// binding edge under any global idealization of this configuration:
// the idealized re-order window, or a bandwidth-edge span if wider.
func (c *Config) CarryDepth() int {
	k := c.Window * c.WindowIdealFactor
	if c.FetchBW > k {
		k = c.FetchBW
	}
	if c.CommitBW > k {
		k = c.CommitBW
	}
	return k
}

// ValidateWindowed extends Validate with the windowed-exactness
// precondition: a producer beyond the re-order window must never bind
// through its PR edge, which requires the wakeup latency not to
// exceed the dispatch-to-ready plus complete-to-commit path (see the
// package comment above; the Table 6 machine satisfies it with room).
func (c *Config) ValidateWindowed() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.WakeupExtra > c.DispatchToReady+c.CompleteToCommit {
		return fmt.Errorf("depgraph: windowed evaluation requires WakeupExtra (%d) <= DispatchToReady (%d) + CompleteToCommit (%d)",
			c.WakeupExtra, c.DispatchToReady, c.CompleteToCommit)
	}
	return nil
}

// WindowEval folds Window blocks into execution times under a fixed
// set of global idealizations, holding only carry-deep node-time
// rings: memory is O(CarryDepth × lanes), independent of trace
// length. Blocks must be fed in stream order.
type WindowEval struct {
	cfg   Config
	flags []Flags
	lanes []laneConsts

	// scaled marks an evaluator built from parametric lanes
	// (NewWindowEvalIdeals with a nonzero scale somewhere): Feed then
	// runs the multiplier kernel over slanes instead of the binary
	// kernel over lanes. Every scaled effective window stays within
	// [Window, Window×WindowIdealFactor], so the carry depth and the
	// exactness argument above hold unchanged.
	scaled bool
	slanes []scaledLane

	carry int   // K: emission clamp horizon, ring history depth
	rmask int64 // ring index mask (ring size - 1, power of two)

	// Node-time rings, ring-slot-major × lane: index (abs&rmask)*L+w.
	// R and E never cross instructions and stay in registers.
	d, p, c []int64

	n int64 // instructions folded so far
}

// NewWindowEval builds an evaluator for the given configuration and
// global idealization lanes.
func NewWindowEval(cfg Config, flags []Flags) (*WindowEval, error) {
	if err := cfg.ValidateWindowed(); err != nil {
		return nil, err
	}
	if len(flags) == 0 {
		return nil, fmt.Errorf("depgraph: windowed evaluation needs at least one idealization lane")
	}
	we := &WindowEval{cfg: cfg, flags: append([]Flags(nil), flags...)}
	we.carry = cfg.CarryDepth()
	ring := int64(1)
	for ring < int64(we.carry)+1 {
		ring <<= 1
	}
	we.rmask = ring - 1
	L := len(flags)
	we.lanes = make([]laneConsts, L)
	for w, f := range we.flags {
		we.lanes[w] = laneOf(&cfg, f)
	}
	we.d = make([]int64, ring*int64(L))
	we.p = make([]int64, ring*int64(L))
	we.c = make([]int64, ring*int64(L))
	return we, nil
}

// NewWindowEvalIdeals builds an evaluator whose lanes may carry
// parametric scale factors. Lanes must be global: windowed folds have
// no per-instruction identity to apply a mask against.
func NewWindowEvalIdeals(cfg Config, ids []Ideal) (*WindowEval, error) {
	flags := make([]Flags, len(ids))
	scaled := false
	for k := range ids {
		if ids[k].PerInst != nil {
			return nil, fmt.Errorf("depgraph: windowed evaluation lanes must be global (lane %d has a per-instruction mask)", k)
		}
		flags[k] = ids[k].Global
		if !ids[k].Scale.IsZero() {
			scaled = true
		}
	}
	we, err := NewWindowEval(cfg, flags)
	if err != nil {
		return nil, err
	}
	if scaled {
		we.scaled = true
		we.slanes = make([]scaledLane, len(ids))
		for k := range ids {
			we.slanes[k] = scaledLaneOf(&we.cfg, ids[k].Global, ids[k].Scale)
		}
	}
	return we, nil
}

// Lanes returns the evaluator's idealization lanes in order.
func (we *WindowEval) Lanes() []Flags { return we.flags }

// Insts returns how many instructions have been folded.
func (we *WindowEval) Insts() int64 { return we.n }

// RingBytes is the evaluator's node-time ring footprint.
func (we *WindowEval) RingBytes() int64 {
	return 3 * int64(len(we.d)) * 8
}

// CarryDepth returns the clamp horizon K the emitter must apply:
// references farther than K behind their consumer must arrive as
// NoRef.
func (we *WindowEval) CarryDepth() int { return we.carry }

// Feed folds one block. Blocks must arrive in stream order: win.Lo
// must equal the number of instructions already folded.
func (we *WindowEval) Feed(win *Window) error {
	if win.Lo != we.n {
		return fmt.Errorf("depgraph: window starts at %d, evaluator at %d", win.Lo, we.n)
	}
	if we.scaled {
		we.feedScaled(win)
	} else {
		we.feedBinary(win)
	}
	we.n += int64(win.N)
	return nil
}

// feedBinary is the fold kernel for binary (zero-out) lanes.
func (we *WindowEval) feedBinary(win *Window) {
	cfg := &we.cfg
	L := int64(len(we.lanes))
	D, P, C := we.d, we.p, we.c
	rmask := we.rmask
	dr := int64(cfg.DispatchToReady)
	pc := int64(cfg.CompleteToCommit)
	rec := int64(cfg.BranchRecovery)
	wake := int64(cfg.WakeupExtra)
	fbw, cbw := int64(cfg.FetchBW), int64(cfg.CommitBW)
	dl1 := int64(cfg.DL1Latency)
	l2 := int64(cfg.L2Latency)
	mem := int64(cfg.L2Latency) + int64(cfg.MemLatency)
	tlb := int64(cfg.TLBMissLatency)

	for j := 0; j < win.N; j++ {
		abs := win.Lo + int64(j)
		// Decompose this instruction's latencies once; the cost
		// amortizes over every lane.
		base, d1L, dmL, shL, lgL, icL := decomposeLat(&win.Info[j], dl1, l2, mem, tlb)
		ddBreak := int64(win.DDBreak[j])
		reLat := int64(win.RELat[j])
		ccLat := int64(win.CCLat[j])
		misp := win.MispPrev[j] != 0

		// Ring rows. Relative references resolve against Lo; NoRef
		// (clamped or absent) scales far negative and is caught by
		// the row sign test, exactly like the batch kernels' -1.
		row := (abs & rmask) * L
		prevRow, fbwRow, cbwRow := int64(-1), int64(-1), int64(-1)
		if abs > 0 {
			prevRow = ((abs - 1) & rmask) * L
		}
		if abs >= fbw {
			fbwRow = ((abs - fbw) & rmask) * L
		}
		if abs >= cbw {
			cbwRow = ((abs - cbw) & rmask) * L
		}
		p1Row := refRow(win.Prod1[j], win.Lo, rmask, L)
		p2Row := refRow(win.Prod2[j], win.Lo, rmask, L)
		leadRow := refRow(win.PPLeader[j], win.Lo, rmask, L)

		dRow := D[row : row+L]
		pRow := P[row : row+L]
		cRow := C[row : row+L]
		for w := int64(0); w < L; w++ {
			ln := &we.lanes[w]
			var dd int64
			if ln.bw {
				dd = ddBreak
			}
			if ln.ic {
				dd += icL
			}
			d := dd
			if prevRow >= 0 {
				d += D[prevRow+w]
				if misp && ln.bm {
					if v := P[prevRow+w] + rec; v > d {
						d = v
					}
				}
			}
			if ln.bw && fbwRow >= 0 {
				if v := D[fbwRow+w] + 1; v > d {
					d = v
				}
			}
			if win := int64(ln.win); abs >= win {
				if v := C[((abs-win)&rmask)*L+w]; v > d {
					d = v
				}
			}
			dRow[w] = d

			r := d + dr
			if p1Row >= 0 {
				if v := P[p1Row+w] + wake; v > r {
					r = v
				}
			}
			if p2Row >= 0 {
				if v := P[p2Row+w] + wake; v > r {
					r = v
				}
			}

			e := r
			if ln.bw {
				e += reLat
			}

			p := e + base
			if ln.dl1 {
				p += d1L
			}
			if ln.dm {
				p += dmL
			}
			if ln.sh {
				p += shL
			}
			if ln.lg {
				p += lgL
			}
			if leadRow >= 0 && ln.dm {
				if v := P[leadRow+w]; v > p {
					p = v
				}
			}
			pRow[w] = p

			c := p + pc
			if prevRow >= 0 {
				cc := C[prevRow+w]
				if ln.bw {
					cc += ccLat
				}
				if cc > c {
					c = cc
				}
			}
			if ln.bw && cbwRow >= 0 {
				if v := C[cbwRow+w] + 1; v > c {
					c = v
				}
			}
			cRow[w] = c
		}
	}
}

// refRow converts a Lo-relative reference into a ring row offset, or
// -1 when the reference is absent/clamped. A NoRef scales far
// negative, so the caller's sign test rejects it for free.
func refRow(rel int32, lo int64, rmask, lanes int64) int64 {
	if rel == NoRef {
		return -1
	}
	abs := lo + int64(rel)
	if abs < 0 {
		return -1
	}
	return (abs & rmask) * lanes
}

// decomposeLat is the shared per-instruction latency decomposition
// (csr.go's buildTables and the window evaluator agree by
// construction: both call this shape of code with the same inputs).
func decomposeLat(info *InstInfo, dl1, l2, mem, tlb int64) (base, d1, dm, sh, lg, ic int64) {
	op := info.Op
	switch {
	case op.IsMem():
		d1 = dl1
		if info.DTLBMiss {
			dm += tlb
		}
		switch info.DataLevel {
		case cache.LevelL2:
			dm += l2
		case cache.LevelMem:
			dm += mem
		}
	case op.IsShortALU():
		sh = 1
	case op.IsLongALU():
		lg = BaseExecLat(op)
	default:
		base = BaseExecLat(op)
	}
	if info.ITLBMiss {
		ic = tlb
	}
	switch info.ILevel {
	case cache.LevelL2:
		ic += l2
	case cache.LevelMem:
		ic += mem
	}
	return
}

// ExecTimes returns, per lane, the execution time of everything
// folded so far: the last commit time plus one (zero before any
// instructions).
func (we *WindowEval) ExecTimes() []int64 {
	out := make([]int64, len(we.lanes))
	if we.n == 0 {
		return out
	}
	row := ((we.n - 1) & we.rmask) * int64(len(we.lanes))
	for w := range out {
		out[w] = we.c[row+int64(w)] + 1
	}
	return out
}
