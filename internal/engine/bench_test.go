package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchSpec sizes sessions for benchmarking: big enough that a cold
// build visibly dominates, small enough for -benchtime=1x smoke runs.
func benchSpec(bench string) SessionSpec {
	return SessionSpec{Bench: bench, Seed: 7, TraceLen: 4000, Warmup: 2000}
}

var benchMix = []Query{
	{Op: OpCost, Cats: []string{"dmiss"}},
	{Op: OpICost, Cats: []string{"dmiss", "win"}},
	{Op: OpBreakdown, Focus: "dl1"},
	{Op: OpSlack},
}

// BenchmarkEngineThroughput measures queries/sec at 1, 4 and
// GOMAXPROCS workers, cold (build-and-query per iteration) vs warm
// (session and result cache hot). The warm/cold ratio is the
// acceptance criterion: a warm repeated query must be >= 10x faster
// than a cold build-and-query.
func BenchmarkEngineThroughput(b *testing.B) {
	ctx := context.Background()
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range workers {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("cold/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New(Config{Workers: w})
				if _, err := e.Query(ctx, Query{Session: benchSpec("mcf"), Op: OpBreakdown}); err != nil {
					b.Fatal(err)
				}
				e.Close()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
		b.Run(fmt.Sprintf("warm/workers=%d", w), func(b *testing.B) {
			e := New(Config{Workers: w, QueueDepth: 1024})
			defer e.Close()
			for _, q := range benchMix {
				q.Session = benchSpec("mcf")
				if _, err := e.Query(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := benchMix[i%len(benchMix)]
					i++
					q.Session = benchSpec("mcf")
					if _, err := e.Query(ctx, q); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}
