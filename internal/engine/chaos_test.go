package engine

// Chaos suite: drives every engine-side fault-injection point with
// deterministic, seeded fault plans and asserts the service degrades
// the way the docs promise — errors surface typed, followers are
// never poisoned by a leader's departure, failed builds retry then
// back off, nothing leaks a goroutine. Run via `make chaos` (the
// TestChaos name prefix is the suite's contract with the Makefile).

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"icost/internal/faultinject"
	"icost/internal/leakcheck"
)

var errBoom = errors.New("boom")

// chaosQuery is the suite's standard cheap query: one cost walk
// against the shared test session.
func chaosQuery(spec SessionSpec) Query {
	return Query{Session: spec, Op: OpCost, Cats: []string{"dmiss"}}
}

// qkeyOf computes the single-flight key the engine will use for q,
// for tests that need to inspect the flight table.
func qkeyOf(t *testing.T, q Query) string {
	t.Helper()
	spec, err := q.Session.normalize()
	if err != nil {
		t.Fatal(err)
	}
	skey, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	q.Session = spec
	q, err = q.normalize()
	if err != nil {
		t.Fatal(err)
	}
	return q.key(skey)
}

// TestChaosFollowerSurvivesLeaderCancel is the acceptance regression
// for single-flight decoupling: a leader that cancels while a
// follower still waits must not poison the shared computation — the
// follower receives the computed result, not context.Canceled.
func TestChaosFollowerSurvivesLeaderCancel(t *testing.T) {
	leakcheck.Check(t)
	e := New(Config{Workers: 1})
	defer e.Close()
	spec := testSpec("mcf")
	if _, err := e.Warm(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	// Hold the single worker at job start so the leader's computation
	// cannot finish before the leader cancels.
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate() // must run before e.Close, or the worker never exits
	started := make(chan struct{}, 4)
	e.onJobStart = func() { started <- struct{}{}; <-gate }

	q := chaosQuery(spec)
	qkey := qkeyOf(t, q)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Query(leaderCtx, q)
		leaderErr <- err
	}()
	<-started // worker picked the leader's job up and is held

	type follow struct {
		resp *Response
		err  error
	}
	followerCh := make(chan follow, 1)
	go func() {
		r, err := e.Query(context.Background(), q)
		followerCh <- follow{r, err}
	}()

	// Wait for the follower to join the flight before canceling the
	// leader, so the cancel provably happens with a live waiter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.flightMu.Lock()
		fl := e.flight[qkey]
		waiters := 0
		if fl != nil {
			waiters = fl.waiters
		}
		e.flightMu.Unlock()
		if waiters == 2 {
			break
		}
		if time.Now().After(deadline) {
			openGate()
			t.Fatalf("follower never joined the flight (waiters=%d)", waiters)
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		openGate()
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}

	openGate()
	f := <-followerCh
	if f.err != nil {
		t.Fatalf("follower poisoned by leader cancel: %v", f.err)
	}
	if f.resp == nil || f.resp.Op != OpCost || f.resp.Insts == 0 {
		t.Fatalf("follower got a degenerate response: %+v", f.resp)
	}

	// The computed result must match an undisturbed query.
	want, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if f.resp.Value != want.Value {
		t.Fatalf("follower value %d, undisturbed %d", f.resp.Value, want.Value)
	}
}

// TestChaosQueryTimeout: a wedged graph walk (injected 10s stall) is
// cut off by the server-side deadline, counted, and does not poison
// later queries.
func TestChaosQueryTimeout(t *testing.T) {
	leakcheck.Check(t)
	e := New(Config{Workers: 1, QueryTimeout: 200 * time.Millisecond})
	defer e.Close()
	spec := testSpec("mcf")
	if _, err := e.Warm(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(1, faultinject.Rule{Point: faultinject.GraphWalk, Latency: 10 * time.Second})
	defer faultinject.Disable()

	_, err := e.Query(context.Background(), chaosQuery(spec))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled query returned %v, want DeadlineExceeded", err)
	}
	m := e.Metrics()
	if m.QueryTimeoutsTotal != 1 {
		t.Fatalf("QueryTimeoutsTotal = %d, want 1", m.QueryTimeoutsTotal)
	}
	if m.CanceledTotal < 1 {
		t.Fatalf("CanceledTotal = %d, want >= 1", m.CanceledTotal)
	}

	faultinject.Disable()
	resp, err := e.Query(context.Background(), chaosQuery(spec))
	if err != nil {
		t.Fatalf("query after timeout recovery: %v", err)
	}
	if resp.Insts == 0 {
		t.Fatal("degenerate response after recovery")
	}
}

// TestChaosBuildRetry: one injected build failure is retried and the
// query succeeds; the retry is counted and the failure is not.
func TestChaosBuildRetry(t *testing.T) {
	leakcheck.Check(t)
	e := New(Config{Workers: 1, BuildRetryBackoff: time.Millisecond})
	defer e.Close()
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.EngineBuild, Err: errBoom, Count: 1})
	defer faultinject.Disable()

	resp, err := e.Query(context.Background(), chaosQuery(testSpec("mcf")))
	if err != nil {
		t.Fatalf("query should survive one build fault via retry: %v", err)
	}
	if resp.Insts == 0 {
		t.Fatal("degenerate response")
	}
	m := e.Metrics()
	if m.BuildRetriesTotal != 1 {
		t.Fatalf("BuildRetriesTotal = %d, want 1", m.BuildRetriesTotal)
	}
	if m.BuildFailuresTotal != 0 {
		t.Fatalf("BuildFailuresTotal = %d, want 0", m.BuildFailuresTotal)
	}
	if m.SessionsBuiltTotal != 1 {
		t.Fatalf("SessionsBuiltTotal = %d, want 1", m.SessionsBuiltTotal)
	}
}

// TestChaosBuildNegativeCache: a build that fails for good (retries
// disabled) is remembered for BuildFailTTL — the second query shares
// the cached failure instead of re-attempting the build.
func TestChaosBuildNegativeCache(t *testing.T) {
	leakcheck.Check(t)
	e := New(Config{Workers: 1, BuildRetries: -1, BuildFailTTL: time.Hour})
	defer e.Close()
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.EngineBuild, Err: errBoom})
	defer faultinject.Disable()

	q := chaosQuery(testSpec("mcf"))
	if _, err := e.Query(context.Background(), q); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("first query: %v, want injected failure", err)
	}
	if got := faultinject.Snapshot().Fired[faultinject.EngineBuild]; got != 1 {
		t.Fatalf("build attempts = %d, want 1", got)
	}
	// Use different cats so the query misses the flight/result paths
	// and exercises the session store's negative entry directly.
	q2 := q
	q2.Cats = []string{"win"}
	if _, err := e.Query(context.Background(), q2); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("second query: %v, want cached failure", err)
	}
	if got := faultinject.Snapshot().Fired[faultinject.EngineBuild]; got != 1 {
		t.Fatalf("build attempts after negative-cache hit = %d, want still 1", got)
	}
	if m := e.Metrics(); m.BuildFailuresTotal != 1 {
		t.Fatalf("BuildFailuresTotal = %d, want 1", m.BuildFailuresTotal)
	}
}

// TestChaosBuildFailureDropped: with a negative BuildFailTTL the
// failure is forgotten immediately and the next query rebuilds.
func TestChaosBuildFailureDropped(t *testing.T) {
	leakcheck.Check(t)
	e := New(Config{Workers: 1, BuildRetries: -1, BuildFailTTL: -1})
	defer e.Close()
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.EngineBuild, Err: errBoom, Count: 1})
	defer faultinject.Disable()

	q := chaosQuery(testSpec("mcf"))
	if _, err := e.Query(context.Background(), q); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("first query: %v, want injected failure", err)
	}
	resp, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("rebuild after dropped failure: %v", err)
	}
	if resp.Insts == 0 {
		t.Fatal("degenerate response")
	}
}

// TestChaosColdPathFaults drives an always-on error fault through
// each cold-path and admission point: the query fails with the
// injected error and, once the fault is disarmed, the same engine
// recovers without a restart.
func TestChaosColdPathFaults(t *testing.T) {
	points := []faultinject.Point{
		faultinject.WorkloadGen,
		faultinject.OOOSim,
		faultinject.OOOGraph,
		faultinject.EngineAdmit,
		faultinject.EngineBuild,
	}
	for _, pt := range points {
		t.Run(string(pt), func(t *testing.T) {
			leakcheck.Check(t)
			e := New(Config{Workers: 2, BuildRetries: -1, BuildFailTTL: -1})
			defer e.Close()
			faultinject.Enable(7, faultinject.Rule{Point: pt, Err: errBoom})
			defer faultinject.Disable()

			q := chaosQuery(testSpec("mcf"))
			if _, err := e.Query(context.Background(), q); err == nil || !strings.Contains(err.Error(), "boom") {
				t.Fatalf("faulted query: %v, want injected error", err)
			}
			if got := faultinject.Snapshot().Fired[pt]; got == 0 {
				t.Fatalf("point %s never fired", pt)
			}
			faultinject.Disable()
			resp, err := e.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("recovery query: %v", err)
			}
			if resp.Insts == 0 {
				t.Fatal("degenerate response after recovery")
			}
		})
	}
}

// TestChaosCachePutFault: a faulted result-cache insert costs a
// recomputation, never the answer — queries keep succeeding, they
// just stop being served from cache until the fault is disarmed.
func TestChaosCachePutFault(t *testing.T) {
	leakcheck.Check(t)
	e := New(Config{Workers: 1})
	defer e.Close()
	spec := testSpec("mcf")
	if _, err := e.Warm(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.EngineCachePut, Err: errBoom})
	defer faultinject.Disable()

	q := chaosQuery(spec)
	for i := 0; i < 2; i++ {
		resp, err := e.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d under cache-put fault: %v", i, err)
		}
		if resp.Cached {
			t.Fatalf("query %d served from cache despite faulted puts", i)
		}
	}
	faultinject.Disable()
	if resp, err := e.Query(context.Background(), q); err != nil || resp.Cached {
		t.Fatalf("first post-fault query: err=%v cached=%v, want fresh success", err, resp.Cached)
	}
	if resp, err := e.Query(context.Background(), q); err != nil || !resp.Cached {
		t.Fatalf("second post-fault query: err=%v, want cache hit", err)
	}
}

// TestChaosCancelFault: a Cancel-mode fault severs the computation's
// real context (registered by the flight leader), surfacing as
// context.Canceled; the canceled build is dropped, so the next query
// rebuilds cleanly.
func TestChaosCancelFault(t *testing.T) {
	leakcheck.Check(t)
	e := New(Config{Workers: 1})
	defer e.Close()
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.EngineBuild, Cancel: true, Count: 1})
	defer faultinject.Disable()

	q := chaosQuery(testSpec("mcf"))
	if _, err := e.Query(context.Background(), q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault returned %v, want context.Canceled", err)
	}
	resp, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query after cancel fault: %v", err)
	}
	if resp.Insts == 0 {
		t.Fatal("degenerate response")
	}
}

// TestChaosSeededStormReplays runs a deterministic query storm under
// probabilistic faults twice with the same seed and asserts the
// success/failure pattern replays exactly — the property that makes a
// chaos failure from CI reproducible at a desk. It also checks the
// engine's books: successes equal QueriesTotal and every fault fired
// no more often than its point was hit.
func TestChaosSeededStormReplays(t *testing.T) {
	leakcheck.Check(t)
	storm := func(seed uint64) ([]bool, Snapshot, faultinject.Stats) {
		e := New(Config{
			Workers: 1, BuildRetries: -1, BuildFailTTL: -1,
			BuildRetryBackoff: time.Millisecond,
		})
		defer e.Close()
		faultinject.Enable(seed,
			faultinject.Rule{Point: faultinject.WorkloadGen, Err: errBoom, Prob: 0.02},
			faultinject.Rule{Point: faultinject.GraphWalk, Err: errBoom, Prob: 0.3},
			faultinject.Rule{Point: faultinject.EngineCachePut, Err: errBoom, Prob: 0.5},
		)
		defer faultinject.Disable()

		specs := []SessionSpec{testSpec("mcf"), testSpec("vortex")}
		queries := []Query{
			{Op: OpCost, Cats: []string{"dmiss"}},
			{Op: OpExecTime, Cats: []string{"win"}},
			{Op: OpICost, Cats: []string{"dmiss", "win"}},
			{Op: OpCost, Cats: []string{"bmisp"}},
		}
		var pattern []bool
		for round := 0; round < 3; round++ {
			for _, spec := range specs {
				for _, q := range queries {
					q.Session = spec
					_, err := e.Query(context.Background(), q)
					pattern = append(pattern, err == nil)
				}
			}
		}
		return pattern, e.Metrics(), faultinject.Snapshot()
	}

	p1, m1, s1 := storm(99)
	p2, _, _ := storm(99)
	if len(p1) != len(p2) {
		t.Fatalf("pattern lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at query %d: %v vs %v\n%v\n%v", i, p1[i], p2[i], p1, p2)
		}
	}

	ok, fail := 0, 0
	for _, s := range p1 {
		if s {
			ok++
		} else {
			fail++
		}
	}
	if ok == 0 || fail == 0 {
		t.Fatalf("storm should mix successes and failures, got %d ok / %d fail", ok, fail)
	}
	if m1.QueriesTotal != int64(ok) {
		t.Fatalf("QueriesTotal = %d, successes = %d", m1.QueriesTotal, ok)
	}
	for pt, fired := range s1.Fired {
		if hits := s1.Hits[pt]; fired > hits {
			t.Fatalf("point %s fired %d times on %d hits", pt, fired, hits)
		}
	}
}
