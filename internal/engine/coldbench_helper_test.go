package engine

import "context"

// buildForBench adapts the internal build entry point for the cold
// benchmark, so the benchmark body survives signature changes.
func buildForBench(spec SessionSpec) (*session, error) {
	return build(context.Background(), spec, 0, nil)
}
