package engine

import (
	"testing"
)

// BenchmarkSessionBuild isolates the cold path: one full session
// build (workload generation + simulation + graph construction +
// analyzer wiring) per iteration, with the artifacts torn down so
// allocation reuse across builds is visible in bytes/op. This is the
// number BENCH_coldpath.json tracks; run via `make bench-cold`.
func BenchmarkSessionBuild(b *testing.B) {
	spec, err := benchSpec("mcf").normalize()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := buildForBench(spec)
		if err != nil {
			b.Fatal(err)
		}
		s.release()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}
