package engine

import (
	"context"
	"testing"
)

// TestColdPathMetrics checks that one cold query populates the
// pipeline instrumentation: a session-build histogram sample and
// productive time in both pipeline stages (the stall counters may
// legitimately be zero when one side never blocks).
func TestColdPathMetrics(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	spec := SessionSpec{Bench: "mcf", Seed: 7, TraceLen: 2000, Warmup: 1000}
	if _, err := e.Query(context.Background(), Query{Session: spec, Op: OpExecTime}); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.SessionsBuiltTotal != 1 {
		t.Fatalf("SessionsBuiltTotal = %d, want 1", m.SessionsBuiltTotal)
	}
	if m.SessionBuildP50us <= 0 || m.SessionBuildP99us < m.SessionBuildP50us {
		t.Fatalf("implausible build quantiles: p50=%d p95=%d p99=%d",
			m.SessionBuildP50us, m.SessionBuildP95us, m.SessionBuildP99us)
	}
	if m.ColdGenNS <= 0 || m.ColdSimNS <= 0 {
		t.Fatalf("stage time not recorded: gen=%d sim=%d", m.ColdGenNS, m.ColdSimNS)
	}
	if m.ColdGenStallNS < 0 || m.ColdSimStallNS < 0 {
		t.Fatalf("negative stall time: gen=%d sim=%d", m.ColdGenStallNS, m.ColdSimStallNS)
	}
}

// TestSessionReleaseIdempotent pins the release contract: releasing a
// built session returns its pooled artifacts exactly once; a second
// call is a no-op rather than a double-put.
func TestSessionReleaseIdempotent(t *testing.T) {
	spec, err := SessionSpec{Bench: "gzip", Seed: 3, TraceLen: 1500, Warmup: 500}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	s, err := build(context.Background(), spec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.pooled {
		t.Fatal("built session not marked pooled")
	}
	if s.result.Graph == nil || s.result.Times == nil || s.trace == nil {
		t.Fatal("built session missing artifacts")
	}
	s.release()
	if s.pooled || s.result.Graph != nil || s.result.Times != nil || s.trace != nil {
		t.Fatalf("release left artifacts attached: %+v", s)
	}
	s.release() // must not panic or double-put
}

// TestCloseReleasesSessions checks that Close drains the store: after
// Close the engine holds no sessions and a drained store reports
// empty, while queries are refused.
func TestCloseReleasesSessions(t *testing.T) {
	e := New(Config{Workers: 1})
	spec := SessionSpec{Bench: "mcf", Seed: 7, TraceLen: 2000, Warmup: 1000}
	if _, err := e.Query(context.Background(), Query{Session: spec, Op: OpExecTime}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.storeMu.Lock()
	n := e.store.len()
	e.storeMu.Unlock()
	if n != 0 {
		t.Fatalf("store holds %d sessions after Close, want 0", n)
	}
	if _, err := e.Query(context.Background(), Query{Session: spec, Op: OpExecTime}); err != ErrClosed {
		t.Fatalf("query after Close: %v, want ErrClosed", err)
	}
}
