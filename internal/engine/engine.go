// Package engine turns the icost library into a concurrent,
// query-oriented analysis service. The paper's efficiency claim —
// graph idealization answers a cost query in O(|graph|) instead of
// one re-simulation per idealization set — only pays off when many
// queries are answered against one shared graph. The engine owns that
// sharing:
//
//   - a session store keeps built artifacts (workload trace,
//     simulation result, dependence graph, memoizing analyzer) keyed
//     by a content hash of (benchmark, seed, machine parameters), so
//     repeated queries never rebuild;
//   - a fixed worker pool executes cost/icost/breakdown/slack/matrix
//     queries in parallel, with per-query context cancellation
//     threaded into the graph-walk loops;
//   - a bounded job queue applies backpressure: when full, Query
//     returns a typed *QueueFullError with a retry hint instead of
//     growing without bound;
//   - identical concurrent queries are deduplicated (single-flight)
//     and completed results live in a byte-bounded LRU cache;
//   - atomic counters and a latency histogram expose service health
//     (cmd/icostd serves them as /metrics).
//
// cmd/icostd is the HTTP daemon on top; cmd/icost -engine routes the
// CLI through the same code path.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"icost/internal/depgraph"
	"icost/internal/faultinject"
)

// Config sizes the engine. Zero fields take defaults.
type Config struct {
	// Workers is the number of concurrent query executors (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-unstarted queries
	// (default 4x workers). A full queue rejects with *QueueFullError.
	QueueDepth int
	// CacheBytes bounds the result cache (default 64 MiB).
	CacheBytes int64
	// MaxSessions bounds the session store (default 8 sessions, LRU).
	MaxSessions int
	// RetryAfter is the hint carried by queue-full rejections
	// (default 1s).
	RetryAfter time.Duration
	// QueryTimeout bounds each query's server-side execution (session
	// build plus graph walks), measured from the moment a worker picks
	// the job up and independent of the client's own context — a
	// wedged walk cannot hold a worker forever. Zero disables the
	// deadline.
	QueryTimeout time.Duration
	// BuildRetries is how many times a failed session build is
	// retried before the failure is reported (default 2; negative
	// disables retries). Cancellation is never retried.
	BuildRetries int
	// BuildRetryBackoff is the base delay of the capped exponential
	// backoff between build retries: attempt k waits base<<k, capped
	// at base<<3 (default base 10ms).
	BuildRetryBackoff time.Duration
	// BuildFailTTL is how long a failed build is remembered: until it
	// expires, queries for the same session share the cached failure
	// instead of stampeding into fresh build attempts (default 1s;
	// negative drops failures immediately).
	BuildFailTTL time.Duration
	// Lanes is the batched-evaluation lane width handed to every
	// session's graph config (0 = auto-pick from GOMAXPROCS; otherwise
	// a power of two up to 64). Pure throughput knob: it never changes
	// results and is excluded from session identity and snapshots.
	Lanes int
	// Accuracy, when set, is the advertised model-vs-simulator
	// relative-error envelope per knob (the measured bound committed
	// to BENCH_sens.json by internal/refute). It is attached verbatim
	// to sensitivity responses so clients can judge how literally to
	// read a curve; the engine never interprets it.
	Accuracy map[string]float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BuildRetries == 0 {
		c.BuildRetries = 2
	} else if c.BuildRetries < 0 {
		c.BuildRetries = 0
	}
	if c.BuildRetryBackoff <= 0 {
		c.BuildRetryBackoff = 10 * time.Millisecond
	}
	if c.BuildFailTTL == 0 {
		c.BuildFailTTL = time.Second
	} else if c.BuildFailTTL < 0 {
		c.BuildFailTTL = 0
	}
	return c
}

// QueueFullError is the typed backpressure rejection: the job queue
// is at capacity and the client should retry after the hinted delay.
type QueueFullError struct {
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("engine: queue full, retry after %s", e.RetryAfter)
}

// ErrClosed is returned by Query after Close.
var ErrClosed = errors.New("engine: closed")

// Engine is the concurrent analysis service. Create with New, stop
// with Close (drains in-flight queries).
type Engine struct {
	cfg  Config
	jobs chan *job

	submitMu sync.RWMutex // guards closed + sends on jobs
	closed   bool
	workerWG sync.WaitGroup

	storeMu sync.Mutex
	store   *sessionStore
	// gen numbers completed session installs (builds and snapshot
	// restores) process-wide. A session's generation changes exactly
	// when its entry is replaced, so a router can decide whether a
	// replica's shipped copy is still current by comparing generations
	// instead of re-shipping bytes.
	gen atomic.Uint64

	flightMu sync.Mutex
	flight   map[string]*flight

	results *resultCache
	met     metrics
	started time.Time

	// onJobStart, when set (tests), runs at the top of every worker
	// job — used to hold workers busy deterministically.
	onJobStart func()
}

// flight is one in-progress computation shared by all concurrent
// identical queries.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
	// jctx is the detached computation context: it inherits the first
	// caller's values but not its cancellation, so a leader that gives
	// up cannot poison followers still waiting on the shared result.
	// cancel fires only when the last waiter leaves (leaveFlight) —
	// the one moment nobody wants the result anymore.
	jctx    context.Context
	cancel  context.CancelFunc
	waiters int // guarded by Engine.flightMu
}

type job struct {
	ctx  context.Context
	q    Query // normalized
	qkey string
	skey string
	fl   *flight
}

// New starts an engine with cfg defaults applied.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	{
		// Fail loudly at construction, not on the first build: an
		// invalid lane width is an operator configuration error.
		probe := depgraph.DefaultConfig()
		probe.Lanes = cfg.Lanes
		if err := probe.Validate(); err != nil {
			panic(fmt.Sprintf("engine: invalid Config.Lanes %d: %v", cfg.Lanes, err))
		}
	}
	e := &Engine{
		cfg:     cfg,
		jobs:    make(chan *job, cfg.QueueDepth),
		store:   newSessionStore(cfg.MaxSessions),
		flight:  map[string]*flight{},
		results: newResultCache(cfg.CacheBytes),
		started: time.Now(),
	}
	e.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Close stops accepting queries, lets queued and in-flight queries
// finish, and waits for the workers to exit. It then releases every
// built session's pool-backed artifacts — safe because no worker can
// still be reading them, and responses never alias session memory.
func (e *Engine) Close() {
	e.submitMu.Lock()
	if e.closed {
		e.submitMu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.submitMu.Unlock()
	e.workerWG.Wait()
	e.storeMu.Lock()
	sessions := e.store.drain()
	e.storeMu.Unlock()
	for _, s := range sessions {
		s.release()
	}
}

// Query answers one analysis query, blocking until the result is
// ready, ctx is done, or the queue rejects it. Identical concurrent
// queries share one computation; completed results are served from
// the cache without touching the queue. The returned response is
// owned by the caller (cache hits return a copy).
func (e *Engine) Query(ctx context.Context, q Query) (*Response, error) {
	start := time.Now()
	e.submitMu.RLock()
	closed := e.closed
	e.submitMu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	spec, err := q.Session.normalize()
	if err != nil {
		return nil, err
	}
	skey, _ := spec.Key()
	q.Session = spec
	q, err = q.normalize()
	if err != nil {
		return nil, err
	}
	qkey := q.key(skey)

	if resp, ok := e.results.get(qkey); ok {
		e.met.queries.Add(1)
		e.met.cacheHits.Add(1)
		cp := *resp
		cp.Cached = true
		cp.Elapsed = time.Since(start)
		e.met.latency.record(cp.Elapsed)
		return &cp, nil
	}
	e.met.cacheMisses.Add(1)

	// Single-flight: join an identical in-progress query if one
	// exists, otherwise become the leader and enqueue. The shared
	// computation runs under a context detached from the leader's
	// (values survive, cancellation does not): it is canceled only
	// when every waiter has left, so a leader cancel with live
	// followers lets the computation finish and the followers get the
	// result.
	e.flightMu.Lock()
	fl, leader := e.flight[qkey], false
	if fl == nil {
		dctx, dcancel := context.WithCancel(context.WithoutCancel(ctx))
		fl = &flight{
			done:    make(chan struct{}),
			jctx:    faultinject.Register(dctx, dcancel),
			cancel:  dcancel,
			waiters: 1,
		}
		e.flight[qkey] = fl
		leader = true
	} else {
		fl.waiters++
	}
	e.flightMu.Unlock()
	defer e.leaveFlight(qkey, fl)

	if leader {
		j := &job{ctx: fl.jctx, q: q, qkey: qkey, skey: skey, fl: fl}
		if err := e.submit(j); err != nil {
			e.flightMu.Lock()
			if e.flight[qkey] == fl {
				delete(e.flight, qkey)
			}
			e.flightMu.Unlock()
			fl.err = err   // publish before waking followers
			close(fl.done) // wake followers; they observe fl.err
			if _, full := err.(*QueueFullError); full {
				e.met.queueRejects.Add(1)
			}
			return nil, err
		}
	}

	select {
	case <-fl.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if fl.err != nil {
		// All waiters share the computation's outcome: a build
		// failure, an injected fault, or a server-side timeout.
		return nil, fl.err
	}
	e.met.queries.Add(1)
	resp := *fl.resp
	resp.Elapsed = time.Since(start)
	e.met.latency.record(resp.Elapsed)
	return &resp, nil
}

// leaveFlight signs one waiter off a shared computation. The last
// waiter out cancels the detached job context — with nobody left to
// receive the result the computation is pure waste — and removes the
// flight so a later identical query starts fresh rather than joining
// a doomed one.
func (e *Engine) leaveFlight(qkey string, fl *flight) {
	e.flightMu.Lock()
	fl.waiters--
	last := fl.waiters == 0
	if last && e.flight[qkey] == fl {
		delete(e.flight, qkey)
	}
	e.flightMu.Unlock()
	if last {
		fl.cancel()
	}
}

// Warm builds (or refreshes) a session without running an analysis
// query, so a daemon can preload its working set at startup.
func (e *Engine) Warm(ctx context.Context, spec SessionSpec) (string, error) {
	resp, err := e.Query(ctx, Query{Session: spec, Op: OpExecTime})
	if err != nil {
		return "", err
	}
	return resp.SessionKey, nil
}

// submit enqueues a job, applying backpressure.
func (e *Engine) submit(j *job) error {
	if err := faultinject.Hit(j.ctx, faultinject.EngineAdmit); err != nil {
		return err
	}
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	select {
	case e.jobs <- j:
		return nil
	default:
		return &QueueFullError{RetryAfter: e.cfg.RetryAfter}
	}
}

func (e *Engine) worker() {
	defer e.workerWG.Done()
	for j := range e.jobs {
		e.met.inFlight.Add(1)
		if e.onJobStart != nil {
			e.onJobStart()
		}
		// The server-side deadline starts when a worker picks the job
		// up, not when it was queued: queue time is governed by
		// backpressure, the deadline by the compute budget.
		ctx := j.ctx
		var tcancel context.CancelFunc
		if e.cfg.QueryTimeout > 0 {
			ctx, tcancel = context.WithTimeout(ctx, e.cfg.QueryTimeout)
		}
		resp, err := e.run(ctx, j)
		if tcancel != nil {
			if err != nil && ctx.Err() == context.DeadlineExceeded && j.ctx.Err() == nil {
				e.met.queryTimeouts.Add(1)
			}
			tcancel()
		}
		j.fl.resp, j.fl.err = resp, err
		e.flightMu.Lock()
		if e.flight[j.qkey] == j.fl {
			delete(e.flight, j.qkey)
		}
		e.flightMu.Unlock()
		close(j.fl.done)
		e.met.inFlight.Add(-1)
	}
}

// run executes one job: resolve or build the session, then compute.
func (e *Engine) run(ctx context.Context, j *job) (*Response, error) {
	if err := ctx.Err(); err != nil {
		e.met.canceled.Add(1)
		return nil, err
	}
	// Fault hook on the worker itself: a latency rule here holds this
	// worker for its duration, which is how load harnesses pin
	// per-query service time.
	if err := faultinject.Hit(ctx, faultinject.EngineExec); err != nil {
		e.countErr(err)
		return nil, err
	}
	s, err := e.sessionFor(ctx, j.skey, j.q.Session)
	if err != nil {
		e.countErr(err)
		return nil, err
	}
	resp, err := e.execute(ctx, j.q, s)
	if err != nil {
		e.countErr(err)
		return nil, err
	}
	// The result cache is an optimization: a faulted put costs a
	// future recomputation, never the answer in hand.
	if err := faultinject.Hit(ctx, faultinject.EngineCachePut); err == nil {
		e.results.put(j.qkey, resp)
	}
	return resp, nil
}

func (e *Engine) countErr(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		e.met.canceled.Add(1)
	} else {
		e.met.errors.Add(1)
	}
}

// sessionFor returns the built session for key, building it at most
// once per store residency regardless of how many queries race. A
// failed build is remembered for BuildFailTTL: until it expires,
// queries for the same session share the cached failure instead of
// stampeding into fresh build attempts.
func (e *Engine) sessionFor(ctx context.Context, key string, spec SessionSpec) (*session, error) {
	e.storeMu.Lock()
	entry, builder := e.store.entry(key, time.Now())
	e.storeMu.Unlock()

	if builder {
		s, err := e.buildWithRetry(ctx, spec)
		if err == nil {
			// Attach before the session is published: every batched
			// walk the analyzer issues feeds the size histogram.
			s.analyzer.SetBatchObserver(e.met.recordBatch)
		}
		entry.sess, entry.err = s, err
		e.storeMu.Lock()
		if err != nil {
			e.met.buildFailures.Add(1)
			ttl := e.cfg.BuildFailTTL
			if ttl > 0 && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				entry.expires = time.Now().Add(ttl)
			} else {
				// A canceled build says nothing about the session;
				// drop it so the next query rebuilds immediately.
				e.store.drop(key)
			}
		} else {
			entry.gen = e.gen.Add(1)
			e.met.sessionsBuilt.Add(1)
			e.met.sessionsEvicted.Add(int64(e.store.evict()))
		}
		e.storeMu.Unlock()
		close(entry.ready)
		return s, err
	}
	select {
	case <-entry.ready:
		return entry.sess, entry.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// buildWithRetry runs the session build, retrying transient failures
// with capped exponential backoff (base<<attempt, capped at base<<3).
// Cancellation and deadline expiry are never retried — the caller is
// gone or out of budget.
func (e *Engine) buildWithRetry(ctx context.Context, spec SessionSpec) (*session, error) {
	for attempt := 0; ; attempt++ {
		s, err := e.buildOnce(ctx, spec)
		if err == nil || attempt >= e.cfg.BuildRetries ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return s, err
		}
		e.met.buildRetries.Add(1)
		delay := e.cfg.BuildRetryBackoff << attempt
		if cap := e.cfg.BuildRetryBackoff << 3; delay > cap {
			delay = cap
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// buildOnce is one build attempt, behind the engine.build injection
// point (inside the retry loop, so a Count-limited fault exercises
// fail-then-recover).
func (e *Engine) buildOnce(ctx context.Context, spec SessionSpec) (*session, error) {
	if err := faultinject.Hit(ctx, faultinject.EngineBuild); err != nil {
		return nil, err
	}
	return build(ctx, spec, e.cfg.Lanes, &e.met)
}

// Metrics snapshots the engine's observability state.
func (e *Engine) Metrics() Snapshot {
	entries, bytes := e.results.stats()
	e.storeMu.Lock()
	live := e.store.len()
	e.storeMu.Unlock()
	return Snapshot{
		QueriesTotal:       e.met.queries.Load(),
		CacheHitsTotal:     e.met.cacheHits.Load(),
		CacheMissesTotal:   e.met.cacheMisses.Load(),
		QueueRejectsTotal:  e.met.queueRejects.Load(),
		ErrorsTotal:        e.met.errors.Load(),
		CanceledTotal:      e.met.canceled.Load(),
		QueryTimeoutsTotal: e.met.queryTimeouts.Load(),

		BuildRetriesTotal:   e.met.buildRetries.Load(),
		BuildFailuresTotal:  e.met.buildFailures.Load(),
		WindowedBuildsTotal: e.met.windowedBuilds.Load(),

		SnapshotsSavedTotal:     e.met.snapshotsSaved.Load(),
		SnapshotsLoadedTotal:    e.met.snapshotsLoaded.Load(),
		SnapshotLoadErrorsTotal: e.met.snapshotLoadErrors.Load(),

		SessionsBuiltTotal:   e.met.sessionsBuilt.Load(),
		SessionsEvictedTotal: e.met.sessionsEvicted.Load(),
		SessionsLive:         live,

		ResultCacheEntries: entries,
		ResultCacheBytes:   bytes,
		ResultCacheMax:     e.cfg.CacheBytes,

		Workers:    e.cfg.Workers,
		InFlight:   int(e.met.inFlight.Load()),
		QueueDepth: len(e.jobs),
		QueueCap:   e.cfg.QueueDepth,

		LatencyP50us: e.met.latency.quantile(0.50),
		LatencyP95us: e.met.latency.quantile(0.95),
		LatencyP99us: e.met.latency.quantile(0.99),

		SessionBuildP50us: e.met.sessionBuild.quantile(0.50),
		SessionBuildP95us: e.met.sessionBuild.quantile(0.95),
		SessionBuildP99us: e.met.sessionBuild.quantile(0.99),
		ColdGenNS:         e.met.coldGenNS.Load(),
		ColdGenStallNS:    e.met.coldGenStallNS.Load(),
		ColdSimNS:         e.met.coldSimNS.Load(),
		ColdSimStallNS:    e.met.coldSimStallNS.Load(),

		BatchesTotal:    e.met.batches.Load(),
		BatchLanesTotal: e.met.batchLanes.Load(),
		BatchSizeHist:   batchHistSnapshot(&e.met),

		UptimeSeconds: time.Since(e.started).Seconds(),
	}
}

// batchHistSnapshot copies the batch-size histogram buckets. Not
// atomic across buckets, which is fine for monitoring.
func batchHistSnapshot(m *metrics) []int64 {
	out := make([]int64, batchHistBuckets)
	for i := range out {
		out[i] = m.batchHist[i].Load()
	}
	return out
}
