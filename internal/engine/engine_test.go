package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/workload"
)

// testSpec is small enough that a session builds in well under a
// second but large enough that graph walks span several ctx-check
// strides.
func testSpec(bench string) SessionSpec {
	return SessionSpec{Bench: bench, Seed: 7, TraceLen: 3000, Warmup: 1500}
}

// directAnalyzer builds the same artifacts the engine would, through
// the library directly.
func directAnalyzer(t testing.TB, spec SessionSpec) *cost.Analyzer {
	t.Helper()
	spec, err := spec.normalize()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Load(spec.Bench, spec.Seed, spec.Warmup+spec.TraceLen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ooo.Simulate(tr, spec.machine(0), ooo.Options{KeepGraph: true, Warmup: spec.Warmup})
	if err != nil {
		t.Fatal(err)
	}
	return cost.New(res.Graph)
}

// TestGoldenEquivalence: engine answers must be bit-identical to
// direct library calls for the same (benchmark, config, seed).
func TestGoldenEquivalence(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()
	spec := testSpec("mcf")
	a := directAnalyzer(t, spec)

	t.Run("cost", func(t *testing.T) {
		resp, err := e.Query(ctx, Query{Session: spec, Op: OpCost, Cats: []string{"dmiss"}})
		if err != nil {
			t.Fatal(err)
		}
		if want := a.Cost(depgraph.IdealDMiss); resp.Value != want {
			t.Fatalf("cost(dmiss) = %d, direct %d", resp.Value, want)
		}
		if resp.BaseCycles != a.BaseTime() {
			t.Fatalf("base = %d, direct %d", resp.BaseCycles, a.BaseTime())
		}
	})
	t.Run("icost", func(t *testing.T) {
		resp, err := e.Query(ctx, Query{Session: spec, Op: OpICost, Cats: []string{"dmiss", "win"}})
		if err != nil {
			t.Fatal(err)
		}
		want := a.MustICost(depgraph.IdealDMiss, depgraph.IdealWindow)
		if resp.Value != want {
			t.Fatalf("icost(dmiss,win) = %d, direct %d", resp.Value, want)
		}
		if got := cost.Classify(want, 0).String(); resp.Interaction != got {
			t.Fatalf("interaction %q, direct %q", resp.Interaction, got)
		}
	})
	t.Run("breakdown", func(t *testing.T) {
		resp, err := e.Query(ctx, Query{Session: spec, Op: OpBreakdown, Focus: "dl1"})
		if err != nil {
			t.Fatal(err)
		}
		cats := breakdown.BaseCategories()
		want, err := breakdown.Focus(a, cats[0], cats, "mcf")
		if err != nil {
			t.Fatal(err)
		}
		// The engine uses flag-bit order for defaulted cats; recompute
		// with the same order for a strict comparison.
		wantSame, err := breakdown.Focus(a,
			breakdown.Category{Name: "dl1", Flags: depgraph.IdealDL1},
			catsOf(depgraph.FlagNames()), "mcf")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Breakdown, wantSame) {
			t.Fatalf("breakdown mismatch:\nengine: %+v\ndirect: %+v", resp.Breakdown, wantSame)
		}
		if resp.Breakdown.TotalCycles != want.TotalCycles {
			t.Fatalf("total cycles differ")
		}
	})
	t.Run("full", func(t *testing.T) {
		resp, err := e.Query(ctx, Query{Session: spec, Op: OpFull, Cats: []string{"dmiss", "win", "bmisp"}})
		if err != nil {
			t.Fatal(err)
		}
		want, err := breakdown.ComputeFull(a, catsOf([]string{"dmiss", "win", "bmisp"}), "mcf")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Full, want) {
			t.Fatalf("full breakdown mismatch")
		}
		if err := resp.Full.CheckIdentity(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("matrix", func(t *testing.T) {
		resp, err := e.Query(ctx, Query{Session: spec, Op: OpMatrix})
		if err != nil {
			t.Fatal(err)
		}
		// normalize sorts matrix categories (permutation invariance),
		// so the direct computation must use the same order.
		names := append([]string(nil), depgraph.FlagNames()...)
		sort.Strings(names)
		want, err := breakdown.ComputeMatrix(a, catsOf(names), "mcf")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Matrix, want) {
			t.Fatalf("matrix mismatch")
		}
	})
	t.Run("slack", func(t *testing.T) {
		resp, err := e.Query(ctx, Query{Session: spec, Op: OpSlack})
		if err != nil {
			t.Fatal(err)
		}
		slacks := a.Graph().Slacks(depgraph.Ideal{})
		want := &SlackSummary{Insts: len(slacks)}
		var sum int64
		for _, s := range slacks {
			sum += s
			switch {
			case s == 0:
				want.Critical++
			case s < 10:
				want.Small++
			default:
				want.Large++
			}
		}
		want.MeanSlack = float64(sum) / float64(len(slacks))
		if !reflect.DeepEqual(resp.Slack, want) {
			t.Fatalf("slack = %+v, direct %+v", resp.Slack, want)
		}
	})
	t.Run("exectime", func(t *testing.T) {
		resp, err := e.Query(ctx, Query{Session: spec, Op: OpExecTime, Cats: []string{"dmiss", "win"}})
		if err != nil {
			t.Fatal(err)
		}
		if want := a.ExecTime(depgraph.IdealDMiss | depgraph.IdealWindow); resp.Value != want {
			t.Fatalf("exectime = %d, direct %d", resp.Value, want)
		}
	})
}

// TestConcurrentLoad drives >= 64 concurrent mixed queries against 3
// cached sessions — the acceptance load test (run under -race).
func TestConcurrentLoad(t *testing.T) {
	e := New(Config{Workers: 4, QueueDepth: 256})
	defer e.Close()
	ctx := context.Background()
	benches := []string{"mcf", "gzip", "gcc"}
	for _, b := range benches {
		if _, err := e.Warm(ctx, testSpec(b)); err != nil {
			t.Fatal(err)
		}
	}
	mixes := []Query{
		{Op: OpCost, Cats: []string{"dmiss"}},
		{Op: OpCost, Cats: []string{"win", "bw"}},
		{Op: OpICost, Cats: []string{"dmiss", "win"}},
		{Op: OpICost, Cats: []string{"dl1", "bmisp"}},
		{Op: OpBreakdown, Focus: "dl1"},
		{Op: OpSlack},
		{Op: OpExecTime, Cats: []string{"bmisp"}},
	}
	const n = 84 // 84 concurrent queries over 3 sessions x 7 shapes
	results := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := mixes[i%len(mixes)]
			q.Session = testSpec(benches[i%len(benches)])
			results[i], errs[i] = e.Query(ctx, q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	// Identical (session, query) pairs must agree bit-for-bit.
	kind := len(mixes) * len(benches)
	for i := 0; i < n; i++ {
		j := i % kind // first issue of the same (bench, shape) combination
		if results[i].Value != results[j].Value ||
			results[i].SessionKey != results[j].SessionKey ||
			!reflect.DeepEqual(results[i].Slack, results[j].Slack) {
			t.Fatalf("divergent results for identical query %d vs %d", i, j)
		}
	}
	m := e.Metrics()
	if m.SessionsBuiltTotal != int64(len(benches)) {
		t.Fatalf("built %d sessions, want %d (dedup failed)", m.SessionsBuiltTotal, len(benches))
	}
	if m.SessionsLive != len(benches) {
		t.Fatalf("live sessions %d, want %d", m.SessionsLive, len(benches))
	}
	if m.QueriesTotal < n {
		t.Fatalf("queries served %d < %d", m.QueriesTotal, n)
	}
}

// TestResultCacheHit: a repeated query is served from the cache and
// marked Cached.
func TestResultCacheHit(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()
	q := Query{Session: testSpec("twolf"), Op: OpCost, Cats: []string{"dmiss"}}
	first, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query reported cached")
	}
	second, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat query not served from cache")
	}
	if second.Value != first.Value {
		t.Fatalf("cache changed the answer: %d vs %d", second.Value, first.Value)
	}
	if m := e.Metrics(); m.CacheHitsTotal == 0 {
		t.Fatal("metrics recorded no cache hit")
	}
}

// TestBackpressure: with one worker held busy and a one-slot queue, a
// third distinct query must be rejected with the typed error.
func TestBackpressure(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: 250 * time.Millisecond})
	defer e.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.onJobStart = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	enqueue := func(cat string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Query(ctx, Query{Session: testSpec("gap"), Op: OpCost, Cats: []string{cat}})
			if err != nil {
				t.Errorf("held query %s failed: %v", cat, err)
			}
		}()
	}
	enqueue("dmiss") // occupies the single worker
	<-started
	enqueue("win") // fills the one queue slot
	// The queue slot fill is asynchronous; poll until it lands.
	deadline := time.Now().Add(2 * time.Second)
	for e.Metrics().QueueDepth == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Metrics().QueueDepth != 1 {
		t.Fatal("queue never filled")
	}

	_, err := e.Query(ctx, Query{Session: testSpec("gap"), Op: OpCost, Cats: []string{"bw"}})
	var full *QueueFullError
	if !errors.As(err, &full) {
		t.Fatalf("overflow query returned %v, want *QueueFullError", err)
	}
	if full.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v", full.RetryAfter)
	}
	if m := e.Metrics(); m.QueueRejectsTotal == 0 {
		t.Fatal("reject not counted")
	}
	close(release)
	wg.Wait()
}

// TestCancellation: a cancelled context aborts an in-flight graph
// query promptly — the full power-set breakdown over all eight
// categories (256 graph walks) must stop mid-walk, not run to
// completion.
func TestCancellation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	spec := SessionSpec{Bench: "mcf", Seed: 7, TraceLen: 120000, Warmup: 1000}
	if _, err := e.Warm(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	full := Query{Session: spec, Op: OpFull}

	// Reference: how long the uncancelled query takes.
	start := time.Now()
	if _, err := e.Query(context.Background(), full); err != nil {
		t.Fatal(err)
	}
	uncancelled := time.Since(start)

	// Same query shape against a second, identical-but-for-seed
	// session (so the result cache cannot serve it), cancelled early.
	spec2 := spec
	spec2.Seed = 8
	if _, err := e.Warm(context.Background(), spec2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), uncancelled/10+time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err := e.Query(ctx, Query{Session: spec2, Op: OpFull})
	aborted := time.Since(start)
	if err == nil {
		t.Fatal("cancelled query returned a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled query returned %v", err)
	}
	if aborted > uncancelled/2+50*time.Millisecond {
		t.Fatalf("abort not prompt: %v (uncancelled query takes %v)", aborted, uncancelled)
	}
	// The worker records the cancellation just after the caller
	// returns; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for e.Metrics().CanceledTotal == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m := e.Metrics(); m.CanceledTotal == 0 {
		t.Fatal("cancellation not counted")
	}
}

// TestSessionEviction: the store holds at most MaxSessions sessions.
func TestSessionEviction(t *testing.T) {
	e := New(Config{Workers: 2, MaxSessions: 2})
	defer e.Close()
	ctx := context.Background()
	for _, b := range []string{"mcf", "gzip", "gcc"} {
		if _, err := e.Warm(ctx, testSpec(b)); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.SessionsLive > 2 {
		t.Fatalf("sessions live %d > max 2", m.SessionsLive)
	}
	if m.SessionsEvictedTotal == 0 {
		t.Fatal("no eviction recorded")
	}
}

// TestValidation: malformed queries are rejected before consuming a
// queue slot.
func TestValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	ctx := context.Background()
	cases := []Query{
		{Session: SessionSpec{Bench: "nosuch"}, Op: OpCost, Cats: []string{"dmiss"}},
		{Session: testSpec("mcf"), Op: "bogus"},
		{Session: testSpec("mcf"), Op: OpCost},                           // no cats
		{Session: testSpec("mcf"), Op: OpCost, Cats: []string{"nope"}},   // bad cat
		{Session: testSpec("mcf"), Op: OpICost, Cats: []string{"dmiss"}}, // one set
		{Session: testSpec("mcf"), Op: OpBreakdown, Focus: "nosuchcat"},  // bad focus
		{Session: SessionSpec{Bench: "mcf", TraceLen: -5}, Op: OpSlack},  // bad spec
	}
	for i, q := range cases {
		if _, err := e.Query(ctx, q); err == nil {
			t.Errorf("case %d: invalid query accepted: %+v", i, q)
		}
	}
	if m := e.Metrics(); m.QueriesTotal != 0 {
		t.Fatalf("invalid queries counted as served: %d", m.QueriesTotal)
	}
}

// TestClose: Close drains queued work and subsequent queries fail
// with ErrClosed.
func TestClose(t *testing.T) {
	e := New(Config{Workers: 2})
	ctx := context.Background()
	if _, err := e.Query(ctx, Query{Session: testSpec("vpr"), Op: OpSlack}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Query(ctx, Query{Session: testSpec("vpr"), Op: OpSlack}); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close returned %v, want ErrClosed", err)
	}
}

// TestSessionKeyNormalization: defaulted and explicit specs hash the
// same; different parameters hash differently.
func TestSessionKeyNormalization(t *testing.T) {
	short := SessionSpec{Bench: "mcf"}
	explicit := SessionSpec{Bench: "mcf", Seed: 42, TraceLen: 30000, Warmup: 30000,
		DL1Latency: 2, Window: 64, BranchRecovery: 8}
	k1, err := short.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("defaulted spec hashes %s, explicit %s", k1, k2)
	}
	other := explicit
	other.Window = 128
	k3, _ := other.Key()
	if k3 == k1 {
		t.Fatal("different window hashed identically")
	}
	if _, err := (SessionSpec{}).Key(); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(1 << 10)
	mk := func(i int) *Response {
		return &Response{Op: OpCost, SessionKey: fmt.Sprintf("s%04d", i), Value: int64(i)}
	}
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("k%d", i), mk(i))
	}
	entries, bytes := c.stats()
	if bytes > 1<<10 {
		t.Fatalf("cache over budget: %d bytes", bytes)
	}
	if entries == 0 || entries >= 100 {
		t.Fatalf("eviction did not keep a working set: %d entries", entries)
	}
	if _, ok := c.get("k0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if r, ok := c.get(fmt.Sprintf("k%d", 99)); !ok || r.Value != 99 {
		t.Fatal("newest entry missing")
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 90; i++ {
		h.record(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.record(3 * time.Millisecond)
	}
	if p50 := h.quantile(0.50); p50 > 8 {
		t.Fatalf("p50 = %dus, want <= 8us", p50)
	}
	if p99 := h.quantile(0.99); p99 < 2000 {
		t.Fatalf("p99 = %dus, want >= 2000us", p99)
	}
	var empty latencyHist
	if empty.quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

// TestLatencyHistOverflowClamp: a latency past the histogram's range
// lands in the overflow bucket, and quantiles report that bucket's
// honest lower bound (2^26µs, ~67s) — never a doubled upper bound the
// histogram cannot actually distinguish.
func TestLatencyHistOverflowClamp(t *testing.T) {
	var h latencyHist
	h.record(200 * time.Second) // far past the ~67s boundary
	want := int64(1) << 26
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.quantile(q); got != want {
			t.Fatalf("quantile(%v) = %dus, want clamped to %dus", q, got, want)
		}
	}
	// The boundary value itself also lands in (and reports) the
	// overflow bucket.
	h = latencyHist{}
	h.record((1 << 26) * time.Microsecond)
	if got := h.quantile(0.99); got != want {
		t.Fatalf("boundary quantile = %dus, want %dus", got, want)
	}
}

// TestQueryCatOrderCanonicalized is the cache/dedup regression for
// permutation-invariant queries: icost(b,a) must be the same cache
// entry as icost(a,b), and likewise for matrix category lists, while
// order-sensitive ops are left alone.
func TestQueryCatOrderCanonicalized(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()
	spec := testSpec("mcf")

	cold, err := e.Query(ctx, Query{Session: spec, Op: OpICost, Cats: []string{"win", "dmiss"}})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first icost query claimed cached")
	}
	perm, err := e.Query(ctx, Query{Session: spec, Op: OpICost, Cats: []string{"dmiss", "win"}})
	if err != nil {
		t.Fatal(err)
	}
	if !perm.Cached {
		t.Fatal("permuted icost missed the cache: icost(a,b) and icost(b,a) must share one entry")
	}
	if perm.Value != cold.Value {
		t.Fatalf("permuted icost value %d != %d", perm.Value, cold.Value)
	}

	if _, err := e.Query(ctx, Query{Session: spec, Op: OpMatrix, Cats: []string{"win", "dmiss", "dl1"}}); err != nil {
		t.Fatal(err)
	}
	m, err := e.Query(ctx, Query{Session: spec, Op: OpMatrix, Cats: []string{"dl1", "win", "dmiss"}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cached {
		t.Fatal("permuted matrix missed the cache")
	}

	// Breakdown cats stay in client order (the category list orders
	// the report rows), so a permutation is a distinct query.
	if _, err := e.Query(ctx, Query{Session: spec, Op: OpBreakdown, Focus: "dl1", Cats: []string{"dl1", "dmiss"}}); err != nil {
		t.Fatal(err)
	}
	b, err := e.Query(ctx, Query{Session: spec, Op: OpBreakdown, Focus: "dl1", Cats: []string{"dmiss", "dl1"}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cached {
		t.Fatal("permuted breakdown wrongly shared a cache entry")
	}
}

// TestBatchMetrics: a matrix query routes its power-set unions
// through the analyzer's batched graph walk, and the engine's batch
// observer must see it: non-zero batch count, lane total covering the
// k + k(k-1)/2 unions, and a histogram that sums to the batch count.
func TestBatchMetrics(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	if _, err := e.Query(context.Background(), Query{Session: testSpec("gcc"), Op: OpMatrix}); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.BatchesTotal == 0 {
		t.Fatal("matrix query issued no batched evaluations")
	}
	// 8 categories -> 8 singles + 28 pairs = 36 distinct masks, all
	// cold, so at least that many lanes were batch-evaluated.
	if m.BatchLanesTotal < 36 {
		t.Fatalf("batch lanes = %d, want >= 36", m.BatchLanesTotal)
	}
	var hist int64
	for _, c := range m.BatchSizeHist {
		hist += c
	}
	if hist != m.BatchesTotal {
		t.Fatalf("histogram sums to %d, batches total %d", hist, m.BatchesTotal)
	}

	// A repeated query is all memo hits: no new batches.
	before := m.BatchesTotal
	if _, err := e.Query(context.Background(), Query{Session: testSpec("gcc"), Op: OpMatrix}); err != nil {
		t.Fatal(err)
	}
	if after := e.Metrics().BatchesTotal; after != before {
		t.Fatalf("warm matrix query issued %d new batches", after-before)
	}
}
