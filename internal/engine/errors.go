package engine

import "fmt"

// ValidationError marks a request the client got wrong — an unknown
// op, a bad category name, a malformed session spec. It exists so the
// daemon can map client mistakes to 400 while every other engine
// failure (a broken build, a faulted simulation) surfaces as the 500
// it really is, instead of masquerading as the client's fault.
type ValidationError struct {
	Msg string
}

func (e *ValidationError) Error() string { return e.Msg }

// errValidation builds a *ValidationError fmt.Errorf-style.
func errValidation(format string, args ...any) error {
	return &ValidationError{Msg: fmt.Sprintf(format, args...)}
}

// SnapshotVersionError reports a snapshot stamped with an ICSS codec
// version this build cannot decode. The router treats it as a schema
// skew between shards (the pushing side is newer), distinct from
// corruption: re-pushing the same bytes can never succeed, so the
// replica is skipped rather than retried.
type SnapshotVersionError struct {
	Version byte
}

func (e *SnapshotVersionError) Error() string {
	return fmt.Sprintf("engine: unsupported snapshot version %d (this build decodes <= %d)",
		e.Version, snapVersionCurrent)
}

// SnapshotChecksumError reports a snapshot payload whose CRC-32C does
// not match the frame header — corruption in transit or at rest. The
// router treats it as retryable: the source session is intact, only
// this copy of the bytes is damaged.
type SnapshotChecksumError struct {
	Want, Got uint32
}

func (e *SnapshotChecksumError) Error() string {
	return fmt.Sprintf("engine: snapshot checksum mismatch (header %08x, payload %08x): corrupt bytes",
		e.Want, e.Got)
}
