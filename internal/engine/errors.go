package engine

import "fmt"

// ValidationError marks a request the client got wrong — an unknown
// op, a bad category name, a malformed session spec. It exists so the
// daemon can map client mistakes to 400 while every other engine
// failure (a broken build, a faulted simulation) surfaces as the 500
// it really is, instead of masquerading as the client's fault.
type ValidationError struct {
	Msg string
}

func (e *ValidationError) Error() string { return e.Msg }

// errValidation builds a *ValidationError fmt.Errorf-style.
func errValidation(format string, args ...any) error {
	return &ValidationError{Msg: fmt.Sprintf(format, args...)}
}
