package engine

import (
	"container/list"
	"encoding/json"
	"sync"
)

// resultCache is a byte-bounded LRU of query responses. Entry sizes
// are measured by JSON encoding length at insertion time — the same
// bytes icostd would send on the wire — so the bound tracks real
// memory, not entry counts. Cached responses are treated as
// immutable; serve-time mutation (the Cached flag) happens on a
// shallow copy.
type resultCache struct {
	mu    sync.Mutex
	max   int64
	size  int64
	items map[string]*list.Element // -> *cacheEntry
	ll    *list.List               // front = most recently used
}

type cacheEntry struct {
	key   string
	resp  *Response
	bytes int64
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{max: maxBytes, items: map[string]*list.Element{}, ll: list.New()}
}

// get returns the cached response and refreshes its recency.
func (c *resultCache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put inserts resp, evicting least-recently-used entries until the
// byte budget holds. An entry larger than the whole budget is not
// cached at all.
func (c *resultCache) put(key string, resp *Response) {
	b, err := json.Marshal(resp)
	if err != nil {
		return // unencodable results are simply not cached
	}
	sz := int64(len(b))
	if sz > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*cacheEntry)
		c.size += sz - old.bytes
		old.resp, old.bytes = resp, sz
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp, bytes: sz})
		c.size += sz
	}
	for c.size > c.max {
		el := c.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.size -= e.bytes
	}
}

// stats returns current entry count and byte usage.
func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.size
}
