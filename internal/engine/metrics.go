package engine

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency histogram buckets: bucket i
// counts latencies in [2^i, 2^(i+1)) microseconds for i below the
// last bucket, which absorbs everything from 2^26µs (~67s) up.
// Reported quantiles are clamped to that ~67s overflow boundary — an
// overflow latency is "at least 67s", never a fabricated 134s.
const histBuckets = 27

// latencyHist is a lock-free log-scaled histogram. Recording is one
// atomic increment; quantiles are estimated as the upper bound of the
// bucket holding the target rank (≤ 2x error, plenty for p50/p95/p99
// service gauges).
type latencyHist struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
}

func (h *latencyHist) record(d time.Duration) {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
	h.total.Add(1)
}

// quantile returns the estimated q-quantile (0 < q < 1) in
// microseconds, or 0 when nothing was recorded. The snapshot is not
// atomic across buckets; for monitoring that is fine.
func (h *latencyHist) quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.counts[b].Load()
		if seen > rank {
			if b == histBuckets-1 {
				// Overflow bucket: its only honest bound is the
				// lower one (~67s); don't invent an upper bound.
				return int64(1) << uint(b)
			}
			return int64(1) << uint(b+1) // bucket upper bound in µs
		}
	}
	return int64(1) << uint(histBuckets-1)
}

// batchHistBuckets is the number of batch-size histogram buckets:
// bucket i counts batched graph evaluations with lane count in
// [2^i, 2^(i+1)), so the range spans 1 .. 128+ lanes.
const batchHistBuckets = 8

// metrics is the engine's observability state: everything is atomic,
// so the hot path never takes a lock to count.
type metrics struct {
	queries       atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	queueRejects  atomic.Int64
	errors        atomic.Int64
	canceled      atomic.Int64
	queryTimeouts atomic.Int64

	sessionsBuilt   atomic.Int64
	sessionsEvicted atomic.Int64
	buildRetries    atomic.Int64
	buildFailures   atomic.Int64
	windowedBuilds  atomic.Int64

	snapshotsSaved     atomic.Int64
	snapshotsLoaded    atomic.Int64
	snapshotLoadErrors atomic.Int64

	inFlight atomic.Int64
	latency  latencyHist

	// Cold-path pipeline instrumentation: the session-build wall-time
	// histogram plus per-stage time totals. gen/sim are productive time
	// in the producer (trace generation) and consumer (simulation);
	// the stall counters are time each side spent blocked on the
	// segment channel — together they show whether the pipeline
	// overlaps or serializes.
	sessionBuild   latencyHist
	coldGenNS      atomic.Int64
	coldGenStallNS atomic.Int64
	coldSimNS      atomic.Int64
	coldSimStallNS atomic.Int64

	batches    atomic.Int64
	batchLanes atomic.Int64
	batchHist  [batchHistBuckets]atomic.Int64
}

// recordBatch counts one batched multi-lane graph evaluation issued
// by a session analyzer. Installed as the analyzer's batch observer,
// so it must stay lock-free: one power-set query can fire it from
// several worker goroutines.
func (m *metrics) recordBatch(lanes int) {
	m.batches.Add(1)
	m.batchLanes.Add(int64(lanes))
	b := 0
	for l := lanes; l > 1 && b < batchHistBuckets-1; l >>= 1 {
		b++
	}
	m.batchHist[b].Add(1)
}

// Snapshot is a point-in-time metrics export, shaped for the icostd
// /metrics endpoint (flat JSON, counter names with conventional
// _total suffixes).
type Snapshot struct {
	QueriesTotal      int64 `json:"queries_total"`
	CacheHitsTotal    int64 `json:"cache_hits_total"`
	CacheMissesTotal  int64 `json:"cache_misses_total"`
	QueueRejectsTotal int64 `json:"queue_rejects_total"`
	ErrorsTotal       int64 `json:"errors_total"`
	CanceledTotal     int64 `json:"canceled_total"`
	// QueryTimeoutsTotal counts queries aborted by the server-side
	// Config.QueryTimeout deadline (also included in CanceledTotal).
	QueryTimeoutsTotal int64 `json:"query_timeouts_total"`

	SessionsBuiltTotal   int64 `json:"sessions_built_total"`
	SessionsEvictedTotal int64 `json:"sessions_evicted_total"`
	SessionsLive         int   `json:"sessions_live"`
	// BuildRetriesTotal counts session-build attempts re-run after a
	// transient failure; BuildFailuresTotal counts builds that failed
	// after all retries (and were negatively cached for BuildFailTTL).
	BuildRetriesTotal  int64 `json:"session_build_retries_total"`
	BuildFailuresTotal int64 `json:"session_build_failures_total"`
	// WindowedBuildsTotal counts sessions built through the windowed
	// long-trace pipeline instead of a resident whole-trace graph.
	WindowedBuildsTotal int64 `json:"windowed_builds_total"`

	// SnapshotsSavedTotal / SnapshotsLoadedTotal count sessions written
	// to and restored from durable snapshots; SnapshotLoadErrorsTotal
	// counts snapshot files skipped at load (corrupt, unreadable, or
	// racing a live session).
	SnapshotsSavedTotal     int64 `json:"session_snapshots_saved_total"`
	SnapshotsLoadedTotal    int64 `json:"session_snapshots_loaded_total"`
	SnapshotLoadErrorsTotal int64 `json:"session_snapshot_load_errors_total"`

	ResultCacheEntries int   `json:"result_cache_entries"`
	ResultCacheBytes   int64 `json:"result_cache_bytes"`
	ResultCacheMax     int64 `json:"result_cache_max_bytes"`

	Workers    int `json:"workers"`
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	LatencyP50us int64 `json:"latency_p50_us"`
	LatencyP95us int64 `json:"latency_p95_us"`
	LatencyP99us int64 `json:"latency_p99_us"`

	// Cold-path pipeline: session-build wall-time quantiles and the
	// cumulative per-stage split (productive vs channel-blocked time in
	// the trace producer and the simulation consumer).
	SessionBuildP50us int64 `json:"session_build_p50_us"`
	SessionBuildP95us int64 `json:"session_build_p95_us"`
	SessionBuildP99us int64 `json:"session_build_p99_us"`
	ColdGenNS         int64 `json:"coldpath_gen_ns_total"`
	ColdGenStallNS    int64 `json:"coldpath_gen_stall_ns_total"`
	ColdSimNS         int64 `json:"coldpath_sim_ns_total"`
	ColdSimStallNS    int64 `json:"coldpath_sim_stall_ns_total"`

	// Batched graph evaluation: how many multi-lane walks analyzers
	// issued, the total lanes across them, and a log-scaled size
	// distribution (bucket i = batches with 2^i .. 2^(i+1)-1 lanes).
	BatchesTotal    int64   `json:"batches_total"`
	BatchLanesTotal int64   `json:"batch_lanes_total"`
	BatchSizeHist   []int64 `json:"batch_size_hist"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}
