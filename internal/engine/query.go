package engine

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/window"
)

// Op names a query kind.
type Op string

const (
	// OpCost: cost of the union of Cats (cycles saved by idealizing
	// them all together).
	OpCost Op = "cost"
	// OpICost: interaction cost of the Cats, one event set per entry.
	OpICost Op = "icost"
	// OpExecTime: execution time with the union of Cats idealized
	// (empty Cats = base time).
	OpExecTime Op = "exectime"
	// OpBreakdown: Table 4-style focused breakdown over Cats with
	// pairwise interactions against Focus.
	OpBreakdown Op = "breakdown"
	// OpFull: Figure 1-style full power-set breakdown over Cats.
	OpFull Op = "full"
	// OpSlack: per-instruction slack distribution summary.
	OpSlack Op = "slack"
	// OpMatrix: all-pairs interaction-cost matrix over Cats.
	OpMatrix Op = "matrix"
	// OpSensitivity: per-category response curves — execution time vs
	// the scale factor α applied to each category's latency, sampled
	// at the query's Alphas grid.
	OpSensitivity Op = "sensitivity"
)

// Query is one analysis request against a session.
type Query struct {
	Session SessionSpec `json:"session"`
	Op      Op          `json:"op"`
	// Cats are category names ("dl1", "dmiss", ...). Meaning depends
	// on Op: for cost/exectime they are unioned into one event set;
	// for icost each entry is its own set; for breakdown/full/matrix
	// they are the category list (empty = the paper's eight). For
	// cost/exectime/icost/matrix the order is canonicalized (sorted)
	// during normalization: unions and interaction costs are
	// permutation-invariant (paper §2.2), so icost(a,b) and
	// icost(b,a) are one query — one cache entry, one flight.
	Cats []string `json:"cats,omitempty"`
	// Focus is the breakdown focus category (default "dl1").
	Focus string `json:"focus,omitempty"`
	// Alphas is the sensitivity sample grid in [0,1] (sensitivity op
	// only; default {0, 0.25, 0.5, 0.75, 1}). Values are quantized to
	// the model's fixed-point α resolution, sorted and deduplicated
	// during normalization, so grids that quantize identically share
	// one cache entry and one flight.
	Alphas []float64 `json:"alphas,omitempty"`
}

// SlackSummary is the aggregate the slack query returns (the
// cmd/icost -slack view, shaped for JSON).
type SlackSummary struct {
	Insts     int     `json:"insts"`
	Critical  int     `json:"critical"` // slack == 0
	Small     int     `json:"small"`    // 1..9 cycles
	Large     int     `json:"large"`    // >= 10 cycles: de-optimization candidates
	MeanSlack float64 `json:"mean_slack"`
}

// Response is a query result. Exactly one of the payload fields is
// set, matching Op.
type Response struct {
	Op         Op     `json:"op"`
	SessionKey string `json:"session_key"`
	Bench      string `json:"bench"`
	BaseCycles int64  `json:"base_cycles"`
	Insts      int    `json:"insts"`

	// Value is the scalar answer of cost/icost/exectime, in cycles.
	Value int64 `json:"value,omitempty"`
	// Interaction classifies an icost value (serial / independent /
	// parallel).
	Interaction string `json:"interaction,omitempty"`

	Breakdown   *breakdown.Focused `json:"breakdown,omitempty"`
	Full        *breakdown.Full    `json:"full,omitempty"`
	Matrix      *breakdown.Matrix  `json:"matrix,omitempty"`
	Slack       *SlackSummary      `json:"slack,omitempty"`
	Sensitivity *SensitivityResult `json:"sensitivity,omitempty"`

	// Windowed reports that the session was built through the
	// bounded-memory long-trace pipeline: Windows is the number of
	// emission blocks folded and PeakBytes the peak graph-analysis
	// storage held resident during the build.
	Windowed  bool  `json:"windowed,omitempty"`
	Windows   int   `json:"windows,omitempty"`
	PeakBytes int64 `json:"peak_bytes,omitempty"`

	// Cached reports whether this response was served from the result
	// cache; Elapsed is the serving time (build + compute for a cold
	// query, lookup time when cached).
	Cached  bool          `json:"cached"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// SensitivityResult is the sensitivity op's payload: one response
// curve per queried category, sampled at the normalized α grid, plus
// the advertised model-accuracy envelope (Config.Accuracy) when the
// operator configured one.
type SensitivityResult struct {
	Alphas   []float64          `json:"alphas"`
	Curves   []cost.Curve       `json:"curves"`
	Accuracy map[string]float64 `json:"accuracy,omitempty"`
}

// normalize validates the query and resolves defaults. It does not
// touch the session spec (normalized separately).
func (q Query) normalize() (Query, error) {
	switch q.Op {
	case OpCost, OpICost, OpExecTime, OpBreakdown, OpFull, OpSlack, OpMatrix, OpSensitivity:
	case "":
		return q, errValidation("engine: query needs an op")
	default:
		return q, errValidation("engine: unknown op %q", q.Op)
	}
	for _, c := range q.Cats {
		if _, ok := depgraph.FlagByName(c); !ok {
			return q, errValidation("engine: unknown category %q (have %s)",
				c, strings.Join(depgraph.FlagNames(), ","))
		}
	}
	switch q.Op {
	case OpCost:
		if len(q.Cats) == 0 {
			return q, errValidation("engine: cost query needs at least one category")
		}
	case OpICost:
		if len(q.Cats) < 2 {
			return q, errValidation("engine: icost query needs at least two categories")
		}
	case OpBreakdown, OpFull, OpMatrix, OpSensitivity:
		if len(q.Cats) == 0 {
			q.Cats = depgraph.FlagNames()
		}
		if q.Op == OpFull && len(q.Cats) > 12 {
			return q, errValidation("engine: full breakdown limited to 12 categories, got %d", len(q.Cats))
		}
	}
	if q.Op == OpSensitivity {
		if len(q.Alphas) == 0 {
			q.Alphas = []float64{0, 0.25, 0.5, 0.75, 1}
		}
		// Quantize to the model's fixed-point resolution, then sort and
		// deduplicate: the canonical grid is part of the cache key, and
		// curves are reported in ascending α.
		quant := make([]float64, 0, len(q.Alphas))
		for _, x := range q.Alphas {
			if x < 0 || x > 1 {
				return q, errValidation("engine: sensitivity alpha %v outside [0,1]", x)
			}
			quant = append(quant, depgraph.AlphaOf(x).Float())
		}
		sort.Float64s(quant)
		dedup := quant[:1]
		for _, x := range quant[1:] {
			if x != dedup[len(dedup)-1] {
				dedup = append(dedup, x)
			}
		}
		q.Alphas = dedup
	} else {
		q.Alphas = nil
	}
	switch q.Op {
	case OpCost, OpExecTime, OpICost, OpMatrix, OpSensitivity:
		// Canonical category order: the cost/exectime union is a set,
		// and icost and the all-pairs matrix are permutation-invariant
		// (paper §2.2), so icost(b,a) must hit the cache entry and
		// in-progress flight of icost(a,b) rather than recompute.
		// Matrix rows/columns come out in sorted order as a result.
		if !sort.StringsAreSorted(q.Cats) {
			q.Cats = append([]string(nil), q.Cats...)
			sort.Strings(q.Cats)
		}
	}
	if q.Op == OpBreakdown {
		if q.Focus == "" {
			q.Focus = "dl1"
		}
		if _, ok := depgraph.FlagByName(q.Focus); !ok {
			return q, errValidation("engine: unknown focus category %q", q.Focus)
		}
	} else {
		q.Focus = ""
	}
	return q, nil
}

// key is the result-cache / single-flight identity of a normalized
// query. Category order is already canonical where it is semantically
// irrelevant (normalize sorts cost/exectime unions and the
// permutation-invariant icost/matrix lists), so the key is a plain
// join.
func (q Query) key(sessionKey string) string {
	k := sessionKey + "|" + string(q.Op) + "|" + strings.Join(q.Cats, ",") + "|" + q.Focus
	if len(q.Alphas) > 0 {
		// Already quantized, sorted and deduplicated by normalize.
		parts := make([]string, len(q.Alphas))
		for i, x := range q.Alphas {
			parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		k += "|" + strings.Join(parts, ",")
	}
	return k
}

// flagsOf resolves category names; union=true ORs them into one set.
func flagsOf(names []string) []depgraph.Flags {
	out := make([]depgraph.Flags, 0, len(names))
	for _, n := range names {
		f, _ := depgraph.FlagByName(n) // validated by normalize
		out = append(out, f)
	}
	return out
}

func unionFlags(names []string) depgraph.Flags {
	var u depgraph.Flags
	for _, f := range flagsOf(names) {
		u |= f
	}
	return u
}

func catsOf(names []string) []breakdown.Category {
	out := make([]breakdown.Category, 0, len(names))
	for _, n := range names {
		f, _ := depgraph.FlagByName(n)
		out = append(out, breakdown.Category{Name: n, Flags: f})
	}
	return out
}

// execute answers a normalized query against a built session. It runs
// on an engine worker; ctx carries the client's cancellation.
func (e *Engine) execute(ctx context.Context, q Query, s *session) (*Response, error) {
	a := s.analyzer
	resp := &Response{
		Op:         q.Op,
		SessionKey: s.key,
		Bench:      s.spec.Bench,
		BaseCycles: a.BaseTime(),
		Insts:      s.instCount(),
		Windowed:   s.windowed,
		Windows:    s.windows,
		PeakBytes:  s.peakBytes,
	}
	switch q.Op {
	case OpCost:
		v, err := a.CostCtx(ctx, unionFlags(q.Cats))
		if err != nil {
			return nil, err
		}
		resp.Value = v
	case OpExecTime:
		v, err := a.ExecTimeCtx(ctx, unionFlags(q.Cats))
		if err != nil {
			return nil, err
		}
		resp.Value = v
	case OpICost:
		v, err := a.ICostCtx(ctx, flagsOf(q.Cats)...)
		if err != nil {
			return nil, err
		}
		resp.Value = v
		resp.Interaction = cost.Classify(v, 0).String()
	case OpBreakdown:
		f, _ := depgraph.FlagByName(q.Focus)
		bd, err := breakdown.FocusCtx(ctx, a,
			breakdown.Category{Name: q.Focus, Flags: f}, catsOf(q.Cats), s.spec.Bench)
		if err != nil {
			return nil, err
		}
		resp.Breakdown = bd
	case OpFull:
		fb, err := breakdown.ComputeFullCtx(ctx, a, catsOf(q.Cats), s.spec.Bench)
		if err != nil {
			return nil, err
		}
		resp.Full = fb
	case OpMatrix:
		m, err := breakdown.ComputeMatrixCtx(ctx, a, catsOf(q.Cats), s.spec.Bench)
		if err != nil {
			return nil, err
		}
		resp.Matrix = m
	case OpSensitivity:
		grid := make([]depgraph.Alpha, len(q.Alphas))
		for i, x := range q.Alphas {
			grid[i] = depgraph.AlphaOf(x)
		}
		var curves []cost.Curve
		var err error
		if s.windowed {
			curves, err = e.windowedSensitivity(ctx, s, q.Cats, grid)
		} else {
			curves, err = a.SensitivityCtx(ctx, flagsOf(q.Cats), grid)
		}
		if err != nil {
			return nil, err
		}
		resp.Sensitivity = &SensitivityResult{
			Alphas:   q.Alphas,
			Curves:   curves,
			Accuracy: e.cfg.Accuracy,
		}
	case OpSlack:
		if s.windowed {
			// Slack needs per-instruction forward/backward passes over a
			// resident graph; windowed sessions fold per-window costs and
			// never hold one.
			return nil, errValidation("engine: slack query unsupported for windowed sessions (window_insts > 0)")
		}
		slacks, err := a.Graph().SlacksCtx(ctx, depgraph.Ideal{})
		if err != nil {
			return nil, err
		}
		sum := &SlackSummary{Insts: len(slacks)}
		var total int64
		for _, sl := range slacks {
			total += sl
			switch {
			case sl == 0:
				sum.Critical++
			case sl < 10:
				sum.Small++
			default:
				sum.Large++
			}
		}
		if len(slacks) > 0 {
			sum.MeanSlack = float64(total) / float64(len(slacks))
		}
		resp.Slack = sum
	default:
		return nil, fmt.Errorf("engine: unhandled op %q", q.Op)
	}
	return resp, nil
}

// windowedSensitivity answers a sensitivity query for a windowed
// session, which holds no graph: the trace is re-folded through the
// bounded-memory pipeline with one parametric lane per (category, α)
// sample. The fold is bit-identical to a whole-graph walk, so
// windowed and whole-graph sessions over the same microexecution
// return identical curves. Cost of the re-fold is one streaming pass;
// the engine's result cache memoizes the response like any other.
func (e *Engine) windowedSensitivity(ctx context.Context, s *session, cats []string, grid []depgraph.Alpha) ([]cost.Curve, error) {
	flags := flagsOf(cats)
	ids := make([]depgraph.Ideal, 0, len(flags)*len(grid))
	for _, f := range flags {
		if f == 0 {
			return nil, errValidation("engine: empty category in sensitivity query")
		}
		for _, a := range grid {
			ids = append(ids, depgraph.Ideal{Global: f, Scale: depgraph.ScaleUniform(f, a)})
		}
	}
	spec := s.spec
	wres, err := window.AnalyzeIdeals(ctx, window.Request{
		Bench:       spec.Bench,
		Seed:        spec.Seed,
		TraceLen:    spec.TraceLen,
		Warmup:      spec.Warmup,
		WindowInsts: spec.WindowInsts,
		Sim:         spec.machine(e.cfg.Lanes),
	}, ids)
	if err != nil {
		return nil, err
	}
	base := s.analyzer.BaseTime()
	curves := make([]cost.Curve, len(flags))
	li := 0
	for ci, f := range flags {
		c := cost.Curve{Name: f.String(), Flags: f, Points: make([]cost.CurvePoint, len(grid))}
		for gi, a := range grid {
			t := wres.Times[li]
			li++
			c.Points[gi] = cost.CurvePoint{Alpha: a.Float(), Time: t, Cost: base - t}
		}
		curves[ci] = c
	}
	return curves, nil
}
