package engine

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestSensitivityQuery pins the sensitivity op's whole-graph
// contract: curve shape, endpoint agreement with the binary cost op,
// grid normalization into the cache key, and the advertised accuracy
// envelope.
func TestSensitivityQuery(t *testing.T) {
	ctx := context.Background()
	acc := map[string]float64{"dl1": 0.001, "mem": 0.002}
	e := New(Config{Workers: 2, Accuracy: acc})
	defer e.Close()
	spec := SessionSpec{Bench: "gzip", Seed: 7, TraceLen: 4000, Warmup: 500}

	resp, err := e.Query(ctx, Query{Session: spec, Op: OpSensitivity, Cats: []string{"dmiss", "bmisp"}})
	if err != nil {
		t.Fatal(err)
	}
	sens := resp.Sensitivity
	if sens == nil {
		t.Fatal("no sensitivity payload")
	}
	wantGrid := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(sens.Alphas) != len(wantGrid) {
		t.Fatalf("default grid %v", sens.Alphas)
	}
	for i, x := range wantGrid {
		if sens.Alphas[i] != x {
			t.Fatalf("default grid %v, want %v", sens.Alphas, wantGrid)
		}
	}
	if len(sens.Curves) != 2 {
		t.Fatalf("%d curves", len(sens.Curves))
	}
	if sens.Accuracy["mem"] != 0.002 {
		t.Fatalf("accuracy envelope not advertised: %v", sens.Accuracy)
	}
	for _, c := range sens.Curves {
		if len(c.Points) != len(sens.Alphas) {
			t.Fatalf("curve %q has %d points", c.Name, len(c.Points))
		}
		// α=0 endpoint equals the binary cost query; α=1 recovers 0.
		cq, err := e.Query(ctx, Query{Session: spec, Op: OpCost, Cats: []string{c.Name}})
		if err != nil {
			t.Fatal(err)
		}
		if c.Points[0].Cost != cq.Value {
			t.Fatalf("curve %q α=0 cost %d, cost op %d", c.Name, c.Points[0].Cost, cq.Value)
		}
		if last := c.Points[len(c.Points)-1]; last.Cost != 0 || last.Time != resp.BaseCycles {
			t.Fatalf("curve %q α=1 point %+v, base %d", c.Name, last, resp.BaseCycles)
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Time < c.Points[i-1].Time {
				t.Fatalf("curve %q not monotone", c.Name)
			}
		}
	}

	// Empty Cats defaults to all eight categories.
	all, err := e.Query(ctx, Query{Session: spec, Op: OpSensitivity})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Sensitivity.Curves) != 8 {
		t.Fatalf("%d curves for default cats", len(all.Sensitivity.Curves))
	}

	// Grids that quantize identically share one cache entry; a
	// different grid does not.
	r1, err := e.Query(ctx, Query{Session: spec, Op: OpSensitivity, Cats: []string{"dmiss"}, Alphas: []float64{0.5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Query(ctx, Query{Session: spec, Op: OpSensitivity, Cats: []string{"dmiss"}, Alphas: []float64{0, 0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("equivalent grid missed the result cache")
	}
	r3, err := e.Query(ctx, Query{Session: spec, Op: OpSensitivity, Cats: []string{"dmiss"}, Alphas: []float64{0, 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("different grid hit the same cache entry")
	}
	_ = r1

	// Out-of-range α is a validation error.
	var ve *ValidationError
	if _, err := e.Query(ctx, Query{Session: spec, Op: OpSensitivity, Alphas: []float64{1.5}}); !errors.As(err, &ve) {
		t.Fatalf("alpha 1.5: got %v", err)
	}
}

// TestWindowedSensitivityMatchesWholeGraph: a windowed session
// answers a sensitivity query by re-folding the stream with
// parametric lanes, bit-identical to the whole-graph session.
func TestWindowedSensitivityMatchesWholeGraph(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 2, MaxSessions: 4})
	defer e.Close()

	whole := SessionSpec{Bench: "gcc", Seed: 11, TraceLen: 5000, Warmup: 1000}
	windowed := whole
	windowed.WindowInsts = 777

	q := Query{Session: whole, Op: OpSensitivity, Cats: []string{"dl1", "dmiss", "win"}, Alphas: []float64{0, 0.3, 0.6, 1}}
	want, err := e.Query(ctx, q)
	if err != nil {
		t.Fatalf("whole-graph sensitivity: %v", err)
	}
	q.Session = windowed
	got, err := e.Query(ctx, q)
	if err != nil {
		t.Fatalf("windowed sensitivity: %v", err)
	}
	if !got.Windowed {
		t.Fatal("windowed response not marked windowed")
	}
	if g, w := answerOnly(t, got), answerOnly(t, want); !bytes.Equal(g, w) {
		t.Fatalf("sensitivity diverged:\n  whole:    %s\n  windowed: %s", w, g)
	}
}
