package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"icost/internal/cost"
	"icost/internal/ooo"
	"icost/internal/trace"
	"icost/internal/workload"
)

// SessionSpec identifies one built microexecution: a benchmark,
// generation seed, trace length and the machine parameters that vary
// across the paper's experiments. Zero-valued fields take the
// defaults of cmd/icost (Table 6 machine, 30k measured instructions
// after 30k warmup), so a client can say just {"bench":"mcf"}.
//
// Two specs that normalize identically share one session: the trace,
// simulation and dependence graph are built once and every subsequent
// query — from any client — reuses them. This is the paper's
// efficiency argument operationalized: graph idealization is
// O(|graph|) per cost query only if the graph survives between
// queries.
type SessionSpec struct {
	Bench          string `json:"bench"`
	Seed           uint64 `json:"seed,omitempty"`
	TraceLen       int    `json:"trace_len,omitempty"`
	Warmup         int    `json:"warmup,omitempty"`
	DL1Latency     int    `json:"dl1_latency,omitempty"`
	Window         int    `json:"window,omitempty"`
	WakeupExtra    int    `json:"wakeup_extra,omitempty"`
	BranchRecovery int    `json:"branch_recovery,omitempty"`
}

// normalize fills defaults and validates the spec.
func (s SessionSpec) normalize() (SessionSpec, error) {
	if s.Bench == "" {
		return s, fmt.Errorf("engine: session needs a benchmark name")
	}
	known := false
	for _, n := range workload.Names() {
		if n == s.Bench {
			known = true
			break
		}
	}
	if !known {
		return s, fmt.Errorf("engine: unknown benchmark %q (have %v)", s.Bench, workload.Names())
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.TraceLen == 0 {
		s.TraceLen = 30000
	}
	if s.Warmup == 0 {
		s.Warmup = 30000
	}
	if s.DL1Latency == 0 {
		s.DL1Latency = 2
	}
	if s.Window == 0 {
		s.Window = 64
	}
	if s.BranchRecovery == 0 {
		s.BranchRecovery = 8
	}
	if s.TraceLen < 1 || s.Warmup < 0 {
		return s, fmt.Errorf("engine: bad trace length %d / warmup %d", s.TraceLen, s.Warmup)
	}
	if s.DL1Latency < 0 || s.Window < 1 || s.WakeupExtra < 0 || s.BranchRecovery < 0 {
		return s, fmt.Errorf("engine: bad machine parameters in %+v", s)
	}
	return s, nil
}

// Key returns the content hash identifying the session: SHA-256 over
// the canonical rendering of the normalized spec. Specs that differ
// only in defaulted fields hash identically.
func (s SessionSpec) Key() (string, error) {
	n, err := s.normalize()
	if err != nil {
		return "", err
	}
	canon := fmt.Sprintf("bench=%s seed=%d n=%d warmup=%d dl1=%d win=%d wake=%d rec=%d",
		n.Bench, n.Seed, n.TraceLen, n.Warmup,
		n.DL1Latency, n.Window, n.WakeupExtra, n.BranchRecovery)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:8]), nil
}

func (s SessionSpec) machine() ooo.Config {
	return ooo.DefaultConfig().
		WithDL1Latency(s.DL1Latency).
		WithWindow(s.Window).
		WithWakeupExtra(s.WakeupExtra).
		WithBranchRecovery(s.BranchRecovery)
}

// session is one built artifact set: trace + simulation result
// (graph) + memoizing analyzer.
type session struct {
	key      string
	spec     SessionSpec // normalized
	trace    *trace.Trace
	result   *ooo.Result
	analyzer *cost.Analyzer
	built    time.Duration // wall time of the cold build
}

// build generates the workload, simulates it with the graph kept, and
// wraps the graph in a memoizing analyzer.
func build(spec SessionSpec) (*session, error) {
	key, err := spec.Key()
	if err != nil {
		return nil, err
	}
	spec, _ = spec.normalize()
	start := time.Now()
	tr, err := workload.Load(spec.Bench, spec.Seed, spec.Warmup+spec.TraceLen)
	if err != nil {
		return nil, fmt.Errorf("engine: generating %s: %w", spec.Bench, err)
	}
	res, err := ooo.Simulate(tr, spec.machine(), ooo.Options{KeepGraph: true, Warmup: spec.Warmup})
	if err != nil {
		return nil, fmt.Errorf("engine: simulating %s: %w", spec.Bench, err)
	}
	return &session{
		key:      key,
		spec:     spec,
		trace:    tr,
		result:   res,
		analyzer: cost.New(res.Graph),
		built:    time.Since(start),
	}, nil
}

// sessionStore is an LRU-bounded map of built sessions with
// single-flight building: concurrent queries against a cold session
// trigger exactly one build, and everyone waits on it.
type sessionStore struct {
	max   int
	items map[string]*list.Element // -> *sessionEntry
	ll    *list.List               // front = most recently used
}

type sessionEntry struct {
	key   string
	ready chan struct{} // closed when build finishes
	sess  *session      // nil until ready; nil after ready on error
	err   error
}

func newSessionStore(max int) *sessionStore {
	return &sessionStore{max: max, items: map[string]*list.Element{}, ll: list.New()}
}

// entry returns the store entry for key, creating it (and electing
// the caller as builder) if absent. The boolean is true when the
// caller must perform the build and complete the entry.
func (st *sessionStore) entry(key string) (*sessionEntry, bool) {
	if el, ok := st.items[key]; ok {
		st.ll.MoveToFront(el)
		return el.Value.(*sessionEntry), false
	}
	e := &sessionEntry{key: key, ready: make(chan struct{})}
	st.items[key] = st.ll.PushFront(e)
	return e, true
}

// drop removes a failed entry so a later query can retry the build.
func (st *sessionStore) drop(key string) {
	if el, ok := st.items[key]; ok {
		st.ll.Remove(el)
		delete(st.items, key)
	}
}

// evict trims the store to max entries, oldest first, never evicting
// entries still being built. Returns how many sessions were evicted.
func (st *sessionStore) evict() int {
	n := 0
	for st.ll.Len() > st.max {
		el := st.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*sessionEntry)
		select {
		case <-e.ready:
		default:
			return n // oldest entry still building; stop evicting
		}
		st.ll.Remove(el)
		delete(st.items, e.key)
		n++
	}
	return n
}

func (st *sessionStore) len() int { return st.ll.Len() }
