package engine

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/trace"
	"icost/internal/window"
	"icost/internal/workload"
)

// SessionSpec identifies one built microexecution: a benchmark,
// generation seed, trace length and the machine parameters that vary
// across the paper's experiments. Zero-valued fields take the
// defaults of cmd/icost (Table 6 machine, 30k measured instructions
// after 30k warmup), so a client can say just {"bench":"mcf"}.
//
// Two specs that normalize identically share one session: the trace,
// simulation and dependence graph are built once and every subsequent
// query — from any client — reuses them. This is the paper's
// efficiency argument operationalized: graph idealization is
// O(|graph|) per cost query only if the graph survives between
// queries.
type SessionSpec struct {
	Bench          string `json:"bench"`
	Seed           uint64 `json:"seed,omitempty"`
	TraceLen       int    `json:"trace_len,omitempty"`
	Warmup         int    `json:"warmup,omitempty"`
	DL1Latency     int    `json:"dl1_latency,omitempty"`
	Window         int    `json:"window,omitempty"`
	WakeupExtra    int    `json:"wakeup_extra,omitempty"`
	BranchRecovery int    `json:"branch_recovery,omitempty"`
	// WindowInsts, when nonzero, builds the session through the
	// windowed long-trace pipeline: the trace streams through
	// ring-storage simulation in WindowInsts-instruction blocks and
	// the full 256-entry idealization-subset table is folded in one
	// pass, so peak memory is bounded by the window budget instead of
	// the trace length. Every cost/icost/breakdown query answers from
	// the table with bit-identical results; only the slack query
	// (which needs per-instruction node times) is unavailable.
	WindowInsts int `json:"window_insts,omitempty"`
}

// normalize fills defaults and validates the spec.
func (s SessionSpec) normalize() (SessionSpec, error) {
	if s.Bench == "" {
		return s, errValidation("engine: session needs a benchmark name")
	}
	known := false
	for _, n := range workload.Names() {
		if n == s.Bench {
			known = true
			break
		}
	}
	if !known {
		return s, errValidation("engine: unknown benchmark %q (have %v)", s.Bench, workload.Names())
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.TraceLen == 0 {
		s.TraceLen = 30000
	}
	if s.Warmup == 0 {
		s.Warmup = 30000
	}
	if s.DL1Latency == 0 {
		s.DL1Latency = 2
	}
	if s.Window == 0 {
		s.Window = 64
	}
	if s.BranchRecovery == 0 {
		s.BranchRecovery = 8
	}
	if s.TraceLen < 1 || s.Warmup < 0 {
		return s, errValidation("engine: bad trace length %d / warmup %d", s.TraceLen, s.Warmup)
	}
	if s.DL1Latency < 0 || s.Window < 1 || s.WakeupExtra < 0 || s.BranchRecovery < 0 {
		return s, errValidation("engine: bad machine parameters in %+v", s)
	}
	if s.WindowInsts < 0 {
		return s, errValidation("engine: bad window_insts %d", s.WindowInsts)
	}
	if s.WindowInsts > 0 {
		cfg := s.machine(0)
		if err := cfg.Graph.ValidateWindowed(); err != nil {
			return s, errValidation("engine: %v", err)
		}
	}
	return s, nil
}

// Key returns the content hash identifying the session: SHA-256 over
// the canonical rendering of the normalized spec. Specs that differ
// only in defaulted fields hash identically.
func (s SessionSpec) Key() (string, error) {
	n, err := s.normalize()
	if err != nil {
		return "", err
	}
	canon := fmt.Sprintf("bench=%s seed=%d n=%d warmup=%d dl1=%d win=%d wake=%d rec=%d wininsts=%d",
		n.Bench, n.Seed, n.TraceLen, n.Warmup,
		n.DL1Latency, n.Window, n.WakeupExtra, n.BranchRecovery, n.WindowInsts)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:8]), nil
}

// machine resolves the simulated machine. lanes is the engine-wide
// batch lane width (Config.Lanes): a throughput knob, deliberately
// outside the spec and the session key.
func (s SessionSpec) machine(lanes int) ooo.Config {
	cfg := ooo.DefaultConfig().
		WithDL1Latency(s.DL1Latency).
		WithWindow(s.Window).
		WithWakeupExtra(s.WakeupExtra).
		WithBranchRecovery(s.BranchRecovery)
	cfg.Graph.Lanes = lanes
	return cfg
}

// session is one built artifact set. A whole-graph session holds
// trace + simulation result (graph) + graph-backed analyzer; a
// windowed session holds no graph at all — just the folded 256-entry
// idealization-subset table wrapped in a function-backed analyzer,
// plus the windowed run's shape for observability.
type session struct {
	key      string
	spec     SessionSpec // normalized
	trace    *trace.Trace
	result   *ooo.Result
	analyzer *cost.Analyzer
	built    time.Duration // wall time of the cold build
	pooled   bool          // artifacts are pool-backed; release returns them

	// Windowed-session state (spec.WindowInsts > 0): the folded
	// 256-entry subset table (also the snapshot payload), insts folded,
	// blocks emitted, and peak analysis bytes, from window.Analyze.
	windowed  bool
	table     []int64
	insts     int
	windows   int
	peakBytes int64
}

// instCount is the session's timed instruction count, independent of
// whether a graph is resident.
func (s *session) instCount() int {
	if s.windowed {
		return s.insts
	}
	return s.result.Graph.Len()
}

// release returns the session's pool-backed artifacts — trace backing
// array, graph arena, node-time scratch — so the next cold build
// reuses them instead of reallocating. Only called once no reader can
// still hold the session (engine Close, after the workers exit);
// evicted sessions are never released, since an in-flight query may
// still be reading them, and simply fall to the garbage collector.
func (s *session) release() {
	if !s.pooled {
		return
	}
	s.pooled = false
	if s.result != nil {
		if s.result.Graph != nil {
			s.result.Graph.Release()
			s.result.Graph = nil
		}
		if s.result.Times != nil {
			depgraph.ReleaseTimes(s.result.Times)
			s.result.Times = nil
		}
	}
	if s.trace != nil {
		trace.ReleaseInsts(s.trace.Insts)
		s.trace = nil
	}
}

// build constructs a session through the streaming cold path: the
// workload interpreter produces trace segments on a bounded channel
// while the simulator consumes them, overlapping generation,
// simulation and graph-edge materialization; the trace, graph and
// node times all land in pooled storage. ctx cancels both pipeline
// stages. met (nil in benchmarks) receives the build histogram and
// per-stage time counters.
func build(ctx context.Context, spec SessionSpec, lanes int, met *metrics) (*session, error) {
	key, err := spec.Key()
	if err != nil {
		return nil, err
	}
	spec, _ = spec.normalize()
	if spec.WindowInsts > 0 {
		return buildWindowed(ctx, spec, lanes, met, key)
	}
	start := time.Now()
	w, err := workload.Cached(spec.Bench, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("engine: generating %s: %w", spec.Bench, err)
	}
	// The derived cancel stops the producer goroutine on every error
	// return below; on success the stream is fully drained and the
	// producer already gone.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st, err := w.ExecuteStream(ctx, spec.Warmup+spec.TraceLen, spec.Seed+1, 0)
	if err != nil {
		return nil, fmt.Errorf("engine: generating %s: %w", spec.Bench, err)
	}
	var tm ooo.StreamTiming
	res, err := ooo.SimulateStream(ctx, st, spec.machine(lanes), ooo.Options{
		KeepGraph: true, Warmup: spec.Warmup, Timing: &tm,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: simulating %s: %w", spec.Bench, err)
	}
	built := time.Since(start)
	if met != nil {
		met.sessionBuild.record(built)
		met.coldGenNS.Add(st.GenNS())
		met.coldGenStallNS.Add(st.StallNS())
		met.coldSimNS.Add(tm.SimNS)
		met.coldSimStallNS.Add(tm.WaitNS)
	}
	return &session{
		key:      key,
		spec:     spec,
		trace:    st.Trace(),
		result:   res,
		analyzer: cost.New(res.Graph),
		built:    built,
		pooled:   true,
	}, nil
}

// subsetTable returns every global-idealization subset in table
// order: index == flag bits.
func subsetTable() []depgraph.Flags {
	lanes := make([]depgraph.Flags, 1<<depgraph.NumFlags)
	for i := range lanes {
		lanes[i] = depgraph.Flags(i)
	}
	return lanes
}

// buildWindowed constructs a windowed session: one streaming pass of
// ring-storage simulation folds the execution time of all 256
// idealization subsets, and the analyzer answers every subsequent
// query from that table. No trace, graph or node times are retained —
// peak memory during the build and the session's resident size are
// both bounded by the window budget, which is what lets a session
// cover tens of millions of instructions.
func buildWindowed(ctx context.Context, spec SessionSpec, lanes int, met *metrics, key string) (*session, error) {
	start := time.Now()
	wres, err := window.Analyze(ctx, window.Request{
		Bench:       spec.Bench,
		Seed:        spec.Seed,
		TraceLen:    spec.TraceLen,
		Warmup:      spec.Warmup,
		WindowInsts: spec.WindowInsts,
		Sim:         spec.machine(lanes),
	}, subsetTable())
	if err != nil {
		return nil, fmt.Errorf("engine: windowed build of %s: %w", spec.Bench, err)
	}
	built := time.Since(start)
	if met != nil {
		met.sessionBuild.record(built)
		met.windowedBuilds.Add(1)
	}
	s := newWindowedSession(key, spec, wres.Times,
		&ooo.Result{Cycles: wres.Cycles, Stats: wres.Stats}, built,
		int(wres.Insts), wres.Windows, wres.PeakBytes)
	return s, nil
}

// newWindowedSession wraps a folded subset table (index == flag bits)
// as a session. Shared by the cold build and snapshot restore.
func newWindowedSession(key string, spec SessionSpec, table []int64, res *ooo.Result,
	built time.Duration, insts, windows int, peakBytes int64) *session {
	return &session{
		key:  key,
		spec: spec,
		analyzer: cost.NewFromFunc(func(f depgraph.Flags) int64 {
			return table[f&depgraph.AllFlags]
		}),
		result:    res,
		built:     built,
		windowed:  true,
		table:     table,
		insts:     insts,
		windows:   windows,
		peakBytes: peakBytes,
	}
}

// sessionStore is an LRU-bounded map of built sessions with
// single-flight building: concurrent queries against a cold session
// trigger exactly one build, and everyone waits on it.
type sessionStore struct {
	max   int
	items map[string]*list.Element // -> *sessionEntry
	ll    *list.List               // front = most recently used
}

type sessionEntry struct {
	key   string
	ready chan struct{} // closed when build finishes
	sess  *session      // nil until ready; nil after ready on error
	err   error
	// gen is the engine-wide install generation stamped when the build
	// (or snapshot restore) completes; 0 while building or failed.
	// Written under the engine's store lock before ready observers can
	// see the entry complete, read under the same lock.
	gen uint64
	// expires, when set on a failed entry, is how long the failure is
	// served as a negative result before a new query may rebuild.
	// Written by the builder before ready is closed, read under the
	// store lock.
	expires time.Time
}

func newSessionStore(max int) *sessionStore {
	return &sessionStore{max: max, items: map[string]*list.Element{}, ll: list.New()}
}

// entry returns the store entry for key, creating it (and electing
// the caller as builder) if absent. A failed entry whose negative TTL
// has lapsed counts as absent: it is replaced and rebuilt. The
// boolean is true when the caller must perform the build and complete
// the entry.
func (st *sessionStore) entry(key string, now time.Time) (*sessionEntry, bool) {
	if el, ok := st.items[key]; ok {
		e := el.Value.(*sessionEntry)
		if !e.expired(now) {
			st.ll.MoveToFront(el)
			return e, false
		}
		st.ll.Remove(el)
		delete(st.items, key)
	}
	e := &sessionEntry{key: key, ready: make(chan struct{})}
	st.items[key] = st.ll.PushFront(e)
	return e, true
}

// expired reports whether e is a completed failure whose negative TTL
// has lapsed. In-progress builds and successes never expire here (the
// LRU handles successes).
func (e *sessionEntry) expired(now time.Time) bool {
	select {
	case <-e.ready:
		return e.err != nil && now.After(e.expires)
	default:
		return false
	}
}

// drop removes a failed entry so a later query can retry the build.
func (st *sessionStore) drop(key string) {
	if el, ok := st.items[key]; ok {
		st.ll.Remove(el)
		delete(st.items, key)
	}
}

// evict trims the store to max entries, oldest first, never evicting
// entries still being built. Returns how many sessions were evicted.
func (st *sessionStore) evict() int {
	n := 0
	for st.ll.Len() > st.max {
		el := st.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*sessionEntry)
		select {
		case <-e.ready:
		default:
			return n // oldest entry still building; stop evicting
		}
		st.ll.Remove(el)
		delete(st.items, e.key)
		n++
	}
	return n
}

// drain empties the store and returns every completed session, for
// Close-time release of their pooled artifacts. Entries still being
// built (unreachable in practice — drain runs after the workers exit)
// are discarded without a session.
func (st *sessionStore) drain() []*session {
	var out []*session
	for el := st.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*sessionEntry)
		select {
		case <-e.ready:
			if e.sess != nil {
				out = append(out, e.sess)
			}
		default:
		}
	}
	st.items = map[string]*list.Element{}
	st.ll.Init()
	return out
}

// sessions returns every completed session, most recently used first,
// without disturbing the store (snapshot saves read it in place).
func (st *sessionStore) sessions() []*session {
	var out []*session
	for el := st.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*sessionEntry)
		select {
		case <-e.ready:
			if e.sess != nil {
				out = append(out, e.sess)
			}
		default:
		}
	}
	return out
}

func (st *sessionStore) len() int { return st.ll.Len() }
