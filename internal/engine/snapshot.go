package engine

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"icost/internal/cache"
	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/faultinject"
	"icost/internal/isa"
	"icost/internal/ooo"
)

// Durable session snapshots. A built session is expensive — trace
// generation plus out-of-order simulation — but every query it can
// answer needs only the normalized spec and the dependence graph
// (execute reads the analyzer, which wraps the graph). The snapshot
// encodes exactly that closure, so a daemon restart restores its
// working set in milliseconds instead of re-simulating it:
//
//	magic    "ICSS" + version byte
//	checksum 4-byte little-endian CRC-32C of the payload
//	length   uvarint payload byte count
//	payload  normalized spec, build wall time, simulated cycles, a
//	         kind byte, then the kind-specific body: kind 0 (whole
//	         graph) is graph config + per-instruction records
//	         (varints); kind 1 (windowed) is the folded 256-entry
//	         idealization-subset table plus the windowed run's shape
//
// Version 2 added the spec's window_insts field and the kind byte;
// version-1 snapshots (whole-graph only) still load. The encoding is
// canonical: the same session always produces the same bytes, so a
// snapshot of a restored session is bit-identical to the snapshot it
// came from (property-tested in snapshot_test.go). The checksum makes
// corruption a clean load error, never a corrupt graph answering
// queries.

// Snapshot format versions. Adding a version means adding a constant
// here AND a dispatch case in readSnapshot — codecver enforces both,
// and that the encoder stamps the newest version.
//
//lint:codec icss
const (
	snapVersion1       = 1 // whole-graph payloads only, no kind byte
	snapVersion2       = 2 // adds spec window_insts and the kind byte
	snapVersionCurrent = snapVersion2
)

// snapMagic is the header every written snapshot starts with: the
// four ICSS bytes plus the current format version.
//
//lint:codec-encode icss
var snapMagic = [5]byte{'I', 'C', 'S', 'S', snapVersionCurrent}

// Snapshot payload kinds (version ≥ 2).
const (
	snapKindGraph    = 0
	snapKindWindowed = 1
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// maxSnapPayload bounds a snapshot payload (a 30k-instruction session
// encodes to well under 1 MiB; 1 GiB is a generous corruption guard).
const maxSnapPayload = 1 << 30

// SnapshotSession encodes the built session identified by key into w.
// The session stays live — encoding only reads the graph, which is
// immutable after build, so snapshots can be taken while queries run.
func (e *Engine) SnapshotSession(ctx context.Context, key string, w io.Writer) error {
	s := e.sessionByKey(key)
	if s == nil {
		return fmt.Errorf("engine: no built session %q to snapshot", key)
	}
	return writeSnapshot(ctx, w, s)
}

// sessionByKey returns the completed session for key, or nil.
func (e *Engine) sessionByKey(key string) *session {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	el, ok := e.store.items[key]
	if !ok {
		return nil
	}
	entry := el.Value.(*sessionEntry)
	select {
	case <-entry.ready:
		return entry.sess
	default:
		return nil
	}
}

func writeSnapshot(ctx context.Context, w io.Writer, s *session) error {
	if err := faultinject.Hit(ctx, faultinject.FleetSnapshot); err != nil {
		return err
	}
	var payload bytes.Buffer
	bw := bufio.NewWriter(&payload)

	sp := s.spec
	putSnapString(bw, sp.Bench)
	putSnapUv(bw, sp.Seed)
	putSnapUv(bw, uint64(sp.TraceLen))
	putSnapUv(bw, uint64(sp.Warmup))
	putSnapUv(bw, uint64(sp.DL1Latency))
	putSnapUv(bw, uint64(sp.Window))
	putSnapUv(bw, uint64(sp.WakeupExtra))
	putSnapUv(bw, uint64(sp.BranchRecovery))
	putSnapUv(bw, uint64(sp.WindowInsts))
	putSnapUv(bw, uint64(s.built))
	putSnapUv(bw, uint64(s.result.Cycles))

	if s.windowed {
		bw.WriteByte(snapKindWindowed)
		putSnapUv(bw, uint64(s.insts))
		putSnapUv(bw, uint64(s.windows))
		putSnapUv(bw, uint64(s.peakBytes))
		putSnapUv(bw, uint64(len(s.table)))
		for _, t := range s.table {
			putSnapUv(bw, uint64(t))
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return writeSnapFrame(w, payload.Bytes())
	}
	bw.WriteByte(snapKindGraph)

	g := s.result.Graph
	n := g.Len()
	putSnapUv(bw, uint64(n))
	for _, v := range snapCfgFields(g.Cfg) {
		putSnapUv(bw, uint64(v))
	}
	for i := 0; i < n; i++ {
		info := &g.Info[i]
		bw.WriteByte(byte(info.Op))
		putSnapUv(bw, uint64(info.SIdx+1))
		var flags byte
		if info.Mispredict {
			flags |= 1
		}
		if info.DTLBMiss {
			flags |= 2
		}
		if info.ITLBMiss {
			flags |= 4
		}
		bw.WriteByte(flags)
		bw.WriteByte(byte(info.DataLevel))
		bw.WriteByte(byte(info.ILevel))
		bw.WriteByte(g.DDBreak[i])
		putSnapUv(bw, uint64(g.RELat[i]))
		putSnapUv(bw, uint64(g.CCLat[i]))
		putSnapUv(bw, uint64(g.Prod1[i]+1))
		putSnapUv(bw, uint64(g.Prod2[i]+1))
		putSnapUv(bw, uint64(g.PPLeader[i]+1))
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return writeSnapFrame(w, payload.Bytes())
}

// writeSnapFrame wraps a finished payload in the magic + CRC + length
// framing.
func writeSnapFrame(w io.Writer, payload []byte) error {
	out := bufio.NewWriter(w)
	out.Write(snapMagic[:])
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(payload, snapCRC))
	out.Write(crcb[:])
	putSnapUv(out, uint64(len(payload)))
	if _, err := out.Write(payload); err != nil {
		return err
	}
	return out.Flush()
}

// snapCfgFields flattens a graph config in canonical field order.
func snapCfgFields(c depgraph.Config) []int {
	return []int{
		c.FetchBW, c.CommitBW, c.Window, c.WindowIdealFactor,
		c.DispatchToReady, c.CompleteToCommit, c.BranchRecovery, c.WakeupExtra,
		c.DL1Latency, c.L2Latency, c.MemLatency, c.TLBMissLatency,
	}
}

// RestoreSession decodes one snapshot from r and installs it in the
// session store, returning the restored session's key. A session
// already live (or building) under the same key wins: the snapshot is
// decoded and discarded, and the live key is returned.
func (e *Engine) RestoreSession(ctx context.Context, r io.Reader) (string, error) {
	s, err := readSnapshot(ctx, r)
	if err != nil {
		return "", err
	}
	e.installSession(s)
	return s.key, nil
}

// readSnapshot decodes one framed snapshot, dispatching on the
// version byte: every declared snapVersion* constant has a case.
//
//lint:codec-decode icss
func readSnapshot(ctx context.Context, r io.Reader) (*session, error) {
	if err := faultinject.Hit(ctx, faultinject.FleetSnapshot); err != nil {
		return nil, err
	}
	hr := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(hr, magic[:]); err != nil {
		return nil, fmt.Errorf("engine: reading snapshot magic: %w", err)
	}
	if [4]byte{magic[0], magic[1], magic[2], magic[3]} != [4]byte{'I', 'C', 'S', 'S'} {
		return nil, fmt.Errorf("engine: bad snapshot magic %q", magic[:4])
	}
	version := magic[4]
	switch version {
	case snapVersion1, snapVersion2:
	default:
		return nil, &SnapshotVersionError{Version: version}
	}
	var crcb [4]byte
	if _, err := io.ReadFull(hr, crcb[:]); err != nil {
		return nil, fmt.Errorf("engine: reading snapshot checksum: %w", err)
	}
	plen, err := getSnapUv(hr, maxSnapPayload)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(hr, payload); err != nil {
		return nil, fmt.Errorf("engine: snapshot truncated: %w", err)
	}
	if want, got := binary.LittleEndian.Uint32(crcb[:]), crc32.Checksum(payload, snapCRC); got != want {
		return nil, &SnapshotChecksumError{Want: want, Got: got}
	}

	br := bufio.NewReader(bytes.NewReader(payload))
	var sp SessionSpec
	if sp.Bench, err = getSnapString(br); err != nil {
		return nil, err
	}
	if sp.Seed, err = getSnapUv(br, 1<<63); err != nil {
		return nil, err
	}
	ints := []*int{&sp.TraceLen, &sp.Warmup, &sp.DL1Latency, &sp.Window, &sp.WakeupExtra, &sp.BranchRecovery}
	if version >= snapVersion2 {
		ints = append(ints, &sp.WindowInsts)
	}
	for _, dst := range ints {
		v, err := getSnapUv(br, 1<<31)
		if err != nil {
			return nil, err
		}
		*dst = int(v)
	}
	builtNS, err := getSnapUv(br, 1<<62)
	if err != nil {
		return nil, err
	}
	cycles, err := getSnapUv(br, 1<<62)
	if err != nil {
		return nil, err
	}

	spec, err := sp.normalize()
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot spec: %w", err)
	}
	key, _ := spec.Key()

	kind := byte(snapKindGraph)
	if version >= snapVersion2 {
		if kind, err = br.ReadByte(); err != nil {
			return nil, fmt.Errorf("engine: reading snapshot kind: %w", err)
		}
	}
	if windowed := spec.WindowInsts > 0; windowed != (kind == snapKindWindowed) {
		return nil, fmt.Errorf("engine: snapshot kind %d disagrees with spec window_insts %d", kind, spec.WindowInsts)
	}
	if kind == snapKindWindowed {
		return readWindowedBody(br, key, spec, time.Duration(builtNS), int64(cycles))
	}
	if kind != snapKindGraph {
		return nil, fmt.Errorf("engine: unknown snapshot kind %d", kind)
	}

	n64, err := getSnapUv(br, 1<<24)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	if n != spec.TraceLen {
		return nil, fmt.Errorf("engine: snapshot graph has %d instructions, spec says %d", n, spec.TraceLen)
	}
	var cfg depgraph.Config
	cfgDst := snapCfgFieldPtrs(&cfg)
	for _, dst := range cfgDst {
		v, err := getSnapUv(br, 1<<31)
		if err != nil {
			return nil, err
		}
		*dst = int(v)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("engine: snapshot graph config: %w", err)
	}

	g := depgraph.New(cfg, n)
	for i := 0; i < n; i++ {
		var hdr [5]byte
		if _, err := io.ReadFull(br, hdr[:1]); err != nil {
			return nil, fmt.Errorf("engine: snapshot truncated at instruction %d: %w", i, err)
		}
		if isa.Op(hdr[0]) >= isa.NumOps {
			return nil, fmt.Errorf("engine: snapshot has invalid opcode %d", hdr[0])
		}
		g.Info[i].Op = isa.Op(hdr[0])
		sidx, err := getSnapUv(br, 1<<31)
		if err != nil {
			return nil, err
		}
		g.Info[i].SIdx = int32(sidx) - 1
		if _, err := io.ReadFull(br, hdr[1:]); err != nil {
			return nil, fmt.Errorf("engine: snapshot truncated at instruction %d: %w", i, err)
		}
		flags := hdr[1]
		if flags > 7 {
			return nil, fmt.Errorf("engine: snapshot has invalid flag byte %#x", flags)
		}
		g.Info[i].Mispredict = flags&1 != 0
		g.Info[i].DTLBMiss = flags&2 != 0
		g.Info[i].ITLBMiss = flags&4 != 0
		if hdr[2] > byte(cache.LevelMem) || hdr[3] > byte(cache.LevelMem) {
			return nil, fmt.Errorf("engine: snapshot has invalid cache level")
		}
		g.Info[i].DataLevel = cache.Level(hdr[2])
		g.Info[i].ILevel = cache.Level(hdr[3])
		g.DDBreak[i] = hdr[4]
		lat, err := getSnapUv(br, 1<<30)
		if err != nil {
			return nil, err
		}
		g.RELat[i] = int32(lat)
		if lat, err = getSnapUv(br, 1<<30); err != nil {
			return nil, err
		}
		g.CCLat[i] = int32(lat)
		for _, dst := range []*[]int32{&g.Prod1, &g.Prod2, &g.PPLeader} {
			v, err := getSnapUv(br, uint64(n))
			if err != nil {
				return nil, err
			}
			(*dst)[i] = int32(v) - 1
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("engine: snapshot has trailing payload bytes")
	}

	return &session{
		key:      key,
		spec:     spec,
		result:   &ooo.Result{Cycles: int64(cycles), Graph: g},
		analyzer: cost.New(g),
		built:    time.Duration(builtNS),
		pooled:   false, // restored graphs are heap-backed; release is a no-op
	}, nil
}

// readWindowedBody decodes a windowed (kind 1) payload body: run
// shape plus the folded subset table. br must be positioned after the
// kind byte and end exactly at the table's last entry.
func readWindowedBody(br *bufio.Reader, key string, spec SessionSpec, built time.Duration, cycles int64) (*session, error) {
	insts, err := getSnapUv(br, 1<<40)
	if err != nil {
		return nil, err
	}
	if int64(insts) != int64(spec.TraceLen) {
		return nil, fmt.Errorf("engine: snapshot folded %d instructions, spec says %d", insts, spec.TraceLen)
	}
	windows, err := getSnapUv(br, 1<<40)
	if err != nil {
		return nil, err
	}
	peakBytes, err := getSnapUv(br, 1<<50)
	if err != nil {
		return nil, err
	}
	tlen, err := getSnapUv(br, 1<<depgraph.NumFlags)
	if err != nil {
		return nil, err
	}
	if tlen != 1<<depgraph.NumFlags {
		return nil, fmt.Errorf("engine: snapshot subset table has %d entries, want %d", tlen, 1<<depgraph.NumFlags)
	}
	table := make([]int64, tlen)
	for i := range table {
		v, err := getSnapUv(br, 1<<62)
		if err != nil {
			return nil, err
		}
		table[i] = int64(v)
	}
	// The base lane is the simulated cycle count by the windowed
	// pipeline's self-check; re-verify so a corrupted-but-CRC-valid
	// table (or a hand-edited one) cannot answer queries.
	if table[0] != cycles {
		return nil, fmt.Errorf("engine: snapshot base lane %d != cycles %d", table[0], cycles)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("engine: snapshot has trailing payload bytes")
	}
	return newWindowedSession(key, spec, table, &ooo.Result{Cycles: cycles},
		built, int(insts), int(windows), int64(peakBytes)), nil
}

// snapCfgFieldPtrs mirrors snapCfgFields for decoding.
func snapCfgFieldPtrs(c *depgraph.Config) []*int {
	return []*int{
		&c.FetchBW, &c.CommitBW, &c.Window, &c.WindowIdealFactor,
		&c.DispatchToReady, &c.CompleteToCommit, &c.BranchRecovery, &c.WakeupExtra,
		&c.DL1Latency, &c.L2Latency, &c.MemLatency, &c.TLBMissLatency,
	}
}

// installSession publishes a restored session, respecting the store's
// LRU bound and single-flight discipline: if the key is already live
// or building, the restored copy is discarded (the store's version is
// at least as fresh). Returns whether the session was installed.
func (e *Engine) installSession(s *session) bool {
	s.analyzer.SetBatchObserver(e.met.recordBatch)
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	entry, builder := e.store.entry(s.key, time.Now())
	if !builder {
		return false
	}
	entry.sess = s
	entry.gen = e.gen.Add(1)
	close(entry.ready)
	e.met.sessionsBuilt.Add(1)
	e.met.sessionsEvicted.Add(int64(e.store.evict()))
	return true
}

// SessionInfo describes one resident, fully built session: its
// content-hash key, the engine-wide install generation (monotone; a
// higher generation under the same key means the entry was replaced),
// and whether it was built through the windowed pipeline.
type SessionInfo struct {
	Key        string `json:"key"`
	Generation uint64 `json:"generation"`
	Windowed   bool   `json:"windowed,omitempty"`
}

// Sessions lists the resident built sessions, most recently used
// first. Entries still building or failed are omitted — only sessions
// that can be snapshotted appear.
func (e *Engine) Sessions() []SessionInfo {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	var out []SessionInfo
	for el := e.store.ll.Front(); el != nil; el = el.Next() {
		entry := el.Value.(*sessionEntry)
		select {
		case <-entry.ready:
			if entry.sess != nil {
				out = append(out, SessionInfo{
					Key:        entry.key,
					Generation: entry.gen,
					Windowed:   entry.sess.windowed,
				})
			}
		default:
		}
	}
	return out
}

// SessionGeneration returns the install generation of the built
// session under key, with ok=false when no completed session is
// resident.
func (e *Engine) SessionGeneration(key string) (uint64, bool) {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	el, ok := e.store.items[key]
	if !ok {
		return 0, false
	}
	entry := el.Value.(*sessionEntry)
	select {
	case <-entry.ready:
		if entry.sess != nil {
			return entry.gen, true
		}
	default:
	}
	return 0, false
}

// SaveSnapshots writes every built session to dir, one atomically
// renamed <key>.icss file each, and reports how many were saved. Call
// before Close: Close releases pool-backed graph storage back to the
// arena, after which sessions must not be read.
func (e *Engine) SaveSnapshots(ctx context.Context, dir string) (int, error) {
	e.storeMu.Lock()
	sessions := e.store.sessions()
	e.storeMu.Unlock()
	if len(sessions) == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	saved := 0
	for _, s := range sessions {
		if err := ctx.Err(); err != nil {
			return saved, err
		}
		if err := e.saveOne(ctx, dir, s); err != nil {
			return saved, err
		}
		saved++
		e.met.snapshotsSaved.Add(1)
	}
	return saved, nil
}

func (e *Engine) saveOne(ctx context.Context, dir string, s *session) error {
	final := filepath.Join(dir, s.key+".icss")
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := writeSnapshot(ctx, f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, final)
}

// LoadSnapshots restores every *.icss snapshot under dir into the
// session store and reports how many loaded. Individual corrupt or
// stale files are skipped (counted in the snapshot-load-error metric)
// rather than failing startup; a missing directory is zero sessions,
// not an error.
func (e *Engine) LoadSnapshots(ctx context.Context, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	loaded := 0
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".icss" {
			continue
		}
		if err := ctx.Err(); err != nil {
			return loaded, err
		}
		if e.loadOne(ctx, filepath.Join(dir, ent.Name())) {
			loaded++
		}
	}
	return loaded, nil
}

func (e *Engine) loadOne(ctx context.Context, path string) bool {
	f, err := os.Open(path)
	if err != nil {
		e.met.snapshotLoadErrors.Add(1)
		return false
	}
	defer f.Close()
	s, err := readSnapshot(ctx, f)
	if err != nil {
		e.met.snapshotLoadErrors.Add(1)
		return false
	}
	if !e.installSession(s) {
		return false
	}
	e.met.snapshotsLoaded.Add(1)
	return true
}

func putSnapUv(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func getSnapUv(r *bufio.Reader, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("engine: reading snapshot varint: %w", err)
	}
	if v > max {
		return 0, fmt.Errorf("engine: snapshot field %d exceeds bound %d", v, max)
	}
	return v, nil
}

func putSnapString(w *bufio.Writer, s string) {
	putSnapUv(w, uint64(len(s)))
	w.WriteString(s)
}

func getSnapString(r *bufio.Reader) (string, error) {
	n, err := getSnapUv(r, 1<<12)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("engine: reading snapshot string: %w", err)
	}
	return string(b), nil
}
