package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"icost/internal/faultinject"
)

// snapshotQueryMix is the full query surface a restored session must
// answer identically: scalar costs, an interaction, a focused
// breakdown, and the slack distribution.
func snapshotQueryMix(spec SessionSpec) []Query {
	return []Query{
		{Session: spec, Op: OpCost, Cats: []string{"dl1"}},
		{Session: spec, Op: OpCost, Cats: []string{"win", "bw"}},
		{Session: spec, Op: OpICost, Cats: []string{"dl1", "win"}},
		{Session: spec, Op: OpBreakdown},
		{Session: spec, Op: OpSlack},
	}
}

// canonicalResponse strips the serving-dependent fields (latency,
// cache provenance) and renders the rest as JSON for byte comparison.
func canonicalResponse(t *testing.T, resp *Response) []byte {
	t.Helper()
	cp := *resp
	cp.Elapsed = 0
	cp.Cached = false
	raw, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSnapshotRoundTripProperty: for every benchmark x seed in the
// grid, a session snapshot restores into a session that answers the
// full query mix byte-identically, and re-snapshotting the restored
// session reproduces the original snapshot bit-for-bit.
func TestSnapshotRoundTripProperty(t *testing.T) {
	ctx := context.Background()
	benches := []string{"gzip", "mcf", "vpr"}
	seeds := []uint64{42, 7, 9}

	for _, bench := range benches {
		for _, seed := range seeds {
			spec := SessionSpec{Bench: bench, Seed: seed, TraceLen: 4000, Warmup: 2000}

			e1 := New(Config{Workers: 2, MaxSessions: 2})
			key, err := e1.Warm(ctx, spec)
			if err != nil {
				t.Fatalf("%s/%d: warm: %v", bench, seed, err)
			}
			var want [][]byte
			for _, q := range snapshotQueryMix(spec) {
				resp, err := e1.Query(ctx, q)
				if err != nil {
					t.Fatalf("%s/%d: %s: %v", bench, seed, q.Op, err)
				}
				want = append(want, canonicalResponse(t, resp))
			}
			var snap bytes.Buffer
			if err := e1.SnapshotSession(ctx, key, &snap); err != nil {
				t.Fatalf("%s/%d: snapshot: %v", bench, seed, err)
			}
			e1.Close()

			e2 := New(Config{Workers: 2, MaxSessions: 2})
			gotKey, err := e2.RestoreSession(ctx, bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatalf("%s/%d: restore: %v", bench, seed, err)
			}
			if gotKey != key {
				t.Fatalf("%s/%d: restored key %s, want %s", bench, seed, gotKey, key)
			}
			if m := e2.Metrics(); m.SessionsLive != 1 {
				t.Fatalf("%s/%d: restored engine has %d live sessions", bench, seed, m.SessionsLive)
			}
			for i, q := range snapshotQueryMix(spec) {
				resp, err := e2.Query(ctx, q)
				if err != nil {
					t.Fatalf("%s/%d: restored %s: %v", bench, seed, q.Op, err)
				}
				if got := canonicalResponse(t, resp); !bytes.Equal(got, want[i]) {
					t.Fatalf("%s/%d: %s diverged after restore:\n  built:    %s\n  restored: %s",
						bench, seed, q.Op, want[i], got)
				}
			}
			// The restored engine never rebuilt: every answer came off
			// the restored graph.
			if m := e2.Metrics(); m.SessionBuildP50us != 0 {
				t.Fatalf("%s/%d: restored engine ran a cold build", bench, seed)
			}

			// Bit-identical re-encoding: the snapshot is canonical.
			var snap2 bytes.Buffer
			if err := e2.SnapshotSession(ctx, key, &snap2); err != nil {
				t.Fatalf("%s/%d: re-snapshot: %v", bench, seed, err)
			}
			if !bytes.Equal(snap.Bytes(), snap2.Bytes()) {
				t.Fatalf("%s/%d: re-snapshot differs (%d vs %d bytes)",
					bench, seed, snap.Len(), snap2.Len())
			}
			e2.Close()
		}
	}
}

func TestSnapshotSaveLoadDir(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	specs := []SessionSpec{
		{Bench: "gzip", TraceLen: 3000, Warmup: 1000},
		{Bench: "mcf", TraceLen: 3000, Warmup: 1000},
	}

	e1 := New(Config{Workers: 2})
	for _, sp := range specs {
		if _, err := e1.Warm(ctx, sp); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e1.SaveSnapshots(ctx, dir)
	if err != nil || n != len(specs) {
		t.Fatalf("SaveSnapshots = %d, %v", n, err)
	}
	if m := e1.Metrics(); m.SnapshotsSavedTotal != int64(len(specs)) {
		t.Fatalf("save metric: %+v", m)
	}
	e1.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "*.icss"))
	if len(files) != len(specs) {
		t.Fatalf("snapshot dir holds %v", files)
	}
	// Startup tolerates junk alongside snapshots: non-snapshot files
	// are ignored, corrupt snapshots are skipped and counted.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), mustRead(t, files[0])...)
	corrupt[len(corrupt)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, "corrupt.icss"), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New(Config{Workers: 2})
	defer e2.Close()
	loaded, err := e2.LoadSnapshots(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != len(specs) {
		t.Fatalf("loaded %d sessions, want %d", loaded, len(specs))
	}
	m := e2.Metrics()
	if m.SnapshotsLoadedTotal != int64(len(specs)) || m.SnapshotLoadErrorsTotal != 1 {
		t.Fatalf("load metrics: %+v", m)
	}
	for _, sp := range specs {
		if _, err := e2.Query(ctx, Query{Session: sp, Op: OpCost, Cats: []string{"dl1"}}); err != nil {
			t.Fatalf("restored %s: %v", sp.Bench, err)
		}
	}
	if m := e2.Metrics(); m.SessionBuildP50us != 0 {
		t.Fatal("restored engine ran a cold build")
	}

	// A missing directory is an empty fleet, not an error.
	if n, err := e2.LoadSnapshots(ctx, filepath.Join(dir, "nope")); n != 0 || err != nil {
		t.Fatalf("missing dir: %d, %v", n, err)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 1})
	defer e.Close()
	spec := SessionSpec{Bench: "gzip", TraceLen: 3000, Warmup: 1000}
	key, err := e.Warm(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := e.SnapshotSession(ctx, key, &snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	fresh := func() *Engine { return New(Config{Workers: 1}) }
	check := func(name string, raw []byte) {
		e2 := fresh()
		defer e2.Close()
		if _, err := e2.RestoreSession(ctx, bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: corrupt snapshot restored", name)
		}
		if m := e2.Metrics(); m.SessionsLive != 0 {
			t.Errorf("%s: corrupt snapshot left a live session", name)
		}
	}
	check("empty", nil)
	check("bad magic", []byte("JCSS\x02junk"))
	check("bad version", []byte("ICSS\x09junk"))
	check("truncated", good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-5] ^= 0x01
	check("bit flip", flipped)
	// A payload length disagreeing with the checksum must fail (the
	// length uvarint starts right after the 5-byte magic + 4-byte CRC).
	lengthLie := append([]byte(nil), good...)
	lengthLie[9]++
	check("length lie", lengthLie)

	// The unknown-session path errors cleanly too.
	if err := e.SnapshotSession(ctx, "deadbeef00000000", &bytes.Buffer{}); err == nil {
		t.Fatal("snapshot of unknown session succeeded")
	}
}

// TestSnapshotTypedErrors pins the two decode failures a replication
// router must tell apart: a codec-version mismatch (the replica runs
// an older build — replication to it is pointless until it upgrades)
// and a checksum mismatch (the bytes were damaged in transit — a
// retry can succeed). Each must surface as its own typed error, never
// as the other or as an opaque string.
func TestSnapshotTypedErrors(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 1})
	defer e.Close()
	key, err := e.Warm(ctx, SessionSpec{Bench: "gzip", TraceLen: 3000, Warmup: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := e.SnapshotSession(ctx, key, &snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	restore := func(raw []byte) error {
		e2 := New(Config{Workers: 1})
		defer e2.Close()
		_, err := e2.RestoreSession(ctx, bytes.NewReader(raw))
		return err
	}

	// Byte 4 is the codec version in the ICSS frame.
	future := append([]byte(nil), good...)
	future[4] = 0x7f
	err = restore(future)
	var sver *SnapshotVersionError
	if !errors.As(err, &sver) {
		t.Fatalf("unknown version: got %T (%v), want *SnapshotVersionError", err, err)
	}
	if sver.Version != 0x7f {
		t.Fatalf("version error reports %d, want 127", sver.Version)
	}
	var scrc *SnapshotChecksumError
	if errors.As(err, &scrc) {
		t.Fatalf("version mismatch misreported as checksum error: %v", err)
	}

	// Damaging the payload (past the 5-byte magic + 4-byte CRC + length
	// prefix) must fail the CRC, not the version dispatch.
	damaged := append([]byte(nil), good...)
	damaged[len(damaged)-1] ^= 0x01
	err = restore(damaged)
	if !errors.As(err, &scrc) {
		t.Fatalf("damaged payload: got %T (%v), want *SnapshotChecksumError", err, err)
	}
	if scrc.Want == scrc.Got {
		t.Fatalf("checksum error carries equal sums: %+v", scrc)
	}
	if errors.As(err, &sver) {
		t.Fatalf("checksum mismatch misreported as version error: %v", err)
	}
}

// TestSnapshotLiveSessionWins: restoring a snapshot whose key is
// already live keeps the live session and reports the key.
func TestSnapshotLiveSessionWins(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 1})
	defer e.Close()
	spec := SessionSpec{Bench: "gzip", TraceLen: 3000, Warmup: 1000}
	key, err := e.Warm(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := e.SnapshotSession(ctx, key, &snap); err != nil {
		t.Fatal(err)
	}
	gotKey, err := e.RestoreSession(ctx, bytes.NewReader(snap.Bytes()))
	if err != nil || gotKey != key {
		t.Fatalf("RestoreSession = %s, %v", gotKey, err)
	}
	m := e.Metrics()
	if m.SessionsLive != 1 || m.SnapshotsLoadedTotal != 0 {
		t.Fatalf("live-session restore: %+v", m)
	}
}

// TestChaosSnapshotFaults drives the fleet.snapshot injection point
// through both the encode and decode paths.
func TestChaosSnapshotFaults(t *testing.T) {
	defer faultinject.Disable()
	faultinject.Disable()
	ctx := context.Background()
	e := New(Config{Workers: 1})
	defer e.Close()
	spec := SessionSpec{Bench: "gzip", TraceLen: 3000, Warmup: 1000}
	key, err := e.Warm(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := e.SnapshotSession(ctx, key, &snap); err != nil {
		t.Fatal(err)
	}

	errBoom := errors.New("chaos: snapshot fault")
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.FleetSnapshot, Err: errBoom})
	if err := e.SnapshotSession(ctx, key, &bytes.Buffer{}); !errors.Is(err, errBoom) {
		t.Fatalf("encode fault not surfaced: %v", err)
	}
	e2 := New(Config{Workers: 1})
	defer e2.Close()
	if _, err := e2.RestoreSession(ctx, bytes.NewReader(snap.Bytes())); !errors.Is(err, errBoom) {
		t.Fatalf("decode fault not surfaced: %v", err)
	}
	// A faulted save leaves no partial file behind.
	dir := t.TempDir()
	if n, err := e.SaveSnapshots(ctx, dir); err == nil || n != 0 {
		t.Fatalf("faulted save: %d, %v", n, err)
	}
	if files, _ := os.ReadDir(dir); len(files) != 0 {
		t.Fatalf("faulted save left %d files", len(files))
	}
	faultinject.Disable()

	// And the paths recover once the fault clears.
	if n, err := e.SaveSnapshots(ctx, dir); err != nil || n != 1 {
		t.Fatalf("post-chaos save: %d, %v", n, err)
	}
	if n, err := e2.LoadSnapshots(ctx, dir); err != nil || n != 1 {
		t.Fatalf("post-chaos load: %d, %v", n, err)
	}
}
