package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// windowedQueryMix is the query surface a windowed session answers:
// everything but slack (which needs a resident graph).
func windowedQueryMix(spec SessionSpec) []Query {
	return []Query{
		{Session: spec, Op: OpCost, Cats: []string{"dl1"}},
		{Session: spec, Op: OpCost, Cats: []string{"win", "bw"}},
		{Session: spec, Op: OpICost, Cats: []string{"dl1", "win"}},
		{Session: spec, Op: OpExecTime, Cats: []string{"dmiss"}},
		{Session: spec, Op: OpExecTime},
		{Session: spec, Op: OpBreakdown},
		{Session: spec, Op: OpFull, Cats: []string{"dl1", "win", "bw"}},
		{Session: spec, Op: OpMatrix, Cats: []string{"dl1", "dmiss", "win"}},
	}
}

// answerOnly renders just the analysis payload of a response —
// stripping session identity, serving provenance, and the windowed
// shape fields — so windowed and whole-graph sessions for the same
// machine can be compared answer-for-answer.
func answerOnly(t *testing.T, resp *Response) []byte {
	t.Helper()
	cp := *resp
	cp.SessionKey = ""
	cp.Elapsed = 0
	cp.Cached = false
	cp.Windowed = false
	cp.Windows = 0
	cp.PeakBytes = 0
	raw, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestWindowedSessionMatchesWholeGraph: a session built through the
// bounded-memory windowed pipeline answers the whole query surface
// identically to the resident-graph session for the same machine and
// trace — the engine-level restatement of the windowed-exactness
// property.
func TestWindowedSessionMatchesWholeGraph(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 2, MaxSessions: 4})
	defer e.Close()

	whole := SessionSpec{Bench: "gcc", Seed: 11, TraceLen: 5000, Warmup: 1000}
	windowed := whole
	windowed.WindowInsts = 777 // deliberately not dividing TraceLen

	for i, wq := range windowedQueryMix(whole) {
		want, err := e.Query(ctx, wq)
		if err != nil {
			t.Fatalf("whole-graph %s: %v", wq.Op, err)
		}
		qq := windowedQueryMix(windowed)[i]
		got, err := e.Query(ctx, qq)
		if err != nil {
			t.Fatalf("windowed %s: %v", qq.Op, err)
		}
		if !got.Windowed {
			t.Fatalf("%s: windowed session response not marked windowed", qq.Op)
		}
		if wantW := (whole.TraceLen + windowed.WindowInsts - 1) / windowed.WindowInsts; got.Windows != wantW {
			t.Fatalf("%s: %d windows, want %d", qq.Op, got.Windows, wantW)
		}
		if got.PeakBytes <= 0 {
			t.Fatalf("%s: peak bytes %d", qq.Op, got.PeakBytes)
		}
		if g, w := answerOnly(t, got), answerOnly(t, want); !bytes.Equal(g, w) {
			t.Fatalf("%s diverged:\n  whole:    %s\n  windowed: %s", wq.Op, w, g)
		}
	}
	if m := e.Metrics(); m.WindowedBuildsTotal != 1 {
		t.Fatalf("windowed builds %d, want 1", m.WindowedBuildsTotal)
	}

	// Slack needs a resident graph; a windowed session must reject it
	// as a validation error, not panic on its nil graph.
	_, err := e.Query(ctx, Query{Session: windowed, Op: OpSlack})
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("slack on windowed session: got %v, want validation error", err)
	}
	if _, err := e.Query(ctx, Query{Session: whole, Op: OpSlack}); err != nil {
		t.Fatalf("slack on whole-graph session: %v", err)
	}
}

// TestWindowedSpecValidation pins the spec-level contract for
// window_insts.
func TestWindowedSpecValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	ctx := context.Background()

	bad := SessionSpec{Bench: "gcc", TraceLen: 500, WindowInsts: -1}
	var ve *ValidationError
	if _, err := e.Warm(ctx, bad); !errors.As(err, &ve) {
		t.Fatalf("negative window_insts: got %v", err)
	}
	// WakeupExtra beyond the windowed-exactness precondition is legal
	// for whole-graph sessions but must be rejected when windowed.
	edge := SessionSpec{Bench: "gcc", TraceLen: 500, WakeupExtra: 100}
	if _, err := e.Warm(ctx, edge); err != nil {
		t.Fatalf("whole-graph wakeup_extra=100: %v", err)
	}
	edge.WindowInsts = 64
	if _, err := e.Warm(ctx, edge); !errors.As(err, &ve) {
		t.Fatalf("windowed wakeup_extra=100: got %v", err)
	}
	// window_insts is part of session identity.
	a := SessionSpec{Bench: "gcc", TraceLen: 500}
	b := a
	b.WindowInsts = 128
	ka, _ := a.Key()
	kb, _ := b.Key()
	if ka == kb {
		t.Fatal("window_insts not in session key")
	}
}

// TestWindowedSnapshotRoundTrip: a windowed session snapshots to the
// kind-1 payload, restores answering the full windowed query surface
// byte-identically, and re-snapshots bit-for-bit.
func TestWindowedSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	spec := SessionSpec{Bench: "vpr", Seed: 5, TraceLen: 4000, Warmup: 500, WindowInsts: 512}

	e1 := New(Config{Workers: 2, MaxSessions: 2})
	key, err := e1.Warm(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for _, q := range windowedQueryMix(spec) {
		resp, err := e1.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q.Op, err)
		}
		want = append(want, canonicalResponse(t, resp))
	}
	var snap bytes.Buffer
	if err := e1.SnapshotSession(ctx, key, &snap); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	e2 := New(Config{Workers: 2, MaxSessions: 2})
	defer e2.Close()
	gotKey, err := e2.RestoreSession(ctx, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Fatalf("restored key %s, want %s", gotKey, key)
	}
	for i, q := range windowedQueryMix(spec) {
		resp, err := e2.Query(ctx, q)
		if err != nil {
			t.Fatalf("restored %s: %v", q.Op, err)
		}
		if got := canonicalResponse(t, resp); !bytes.Equal(got, want[i]) {
			t.Fatalf("%s diverged after restore:\n  built:    %s\n  restored: %s", q.Op, want[i], got)
		}
	}
	if m := e2.Metrics(); m.SessionBuildP50us != 0 || m.WindowedBuildsTotal != 0 {
		t.Fatal("restored engine ran a cold build")
	}
	var snap2 bytes.Buffer
	if err := e2.SnapshotSession(ctx, key, &snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), snap2.Bytes()) {
		t.Fatalf("re-snapshot differs (%d vs %d bytes)", snap.Len(), snap2.Len())
	}
	// Slack stays rejected after restore.
	var ve *ValidationError
	if _, err := e2.Query(ctx, Query{Session: spec, Op: OpSlack}); !errors.As(err, &ve) {
		t.Fatalf("slack on restored windowed session: got %v", err)
	}
}

// TestSnapshotRestoresCSRByteEqual: restoring a whole-graph snapshot
// reproduces the flat CSR record columns byte for byte — the graph a
// restored session answers from is the graph that was simulated, not
// a merely equivalent one.
func TestSnapshotRestoresCSRByteEqual(t *testing.T) {
	ctx := context.Background()
	spec := SessionSpec{Bench: "mcf", Seed: 13, TraceLen: 3000, Warmup: 300}

	e1 := New(Config{Workers: 1})
	key, err := e1.Warm(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	orig := e1.sessionByKey(key)
	if orig == nil || orig.result.Graph == nil {
		t.Fatal("built session has no graph")
	}
	var snap bytes.Buffer
	if err := e1.SnapshotSession(ctx, key, &snap); err != nil {
		t.Fatal(err)
	}

	e2 := New(Config{Workers: 1})
	defer e2.Close()
	if _, err := e2.RestoreSession(ctx, bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	rest := e2.sessionByKey(key)
	if rest == nil || rest.result.Graph == nil {
		t.Fatal("restored session has no graph")
	}
	g1, g2 := orig.result.Graph, rest.result.Graph
	if g1.Len() != g2.Len() {
		t.Fatalf("lengths differ: %d vs %d", g1.Len(), g2.Len())
	}
	n := g1.Len()
	if !bytes.Equal(g1.DDBreak[:n], g2.DDBreak[:n]) {
		t.Fatal("DDBreak columns differ")
	}
	for i := 0; i < n; i++ {
		if g1.Info[i] != g2.Info[i] {
			t.Fatalf("Info[%d]: %+v vs %+v", i, g1.Info[i], g2.Info[i])
		}
		if g1.RELat[i] != g2.RELat[i] || g1.CCLat[i] != g2.CCLat[i] ||
			g1.Prod1[i] != g2.Prod1[i] || g1.Prod2[i] != g2.Prod2[i] ||
			g1.PPLeader[i] != g2.PPLeader[i] {
			t.Fatalf("record %d differs: (%d,%d,%d,%d,%d) vs (%d,%d,%d,%d,%d)", i,
				g1.RELat[i], g1.CCLat[i], g1.Prod1[i], g1.Prod2[i], g1.PPLeader[i],
				g2.RELat[i], g2.CCLat[i], g2.Prod1[i], g2.Prod2[i], g2.PPLeader[i])
		}
	}
	e1.Close() // after comparison: Close releases pooled graph storage
}
