package experiments

import (
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"

	"icost/internal/ooo"
)

// Characterization is the functional profile of one benchmark on the
// baseline machine — the standard "workload characterization" table
// evaluations lead with, and the numbers the per-benchmark profiles
// in package workload were calibrated against.
type Characterization struct {
	Bench         string
	IPC           float64
	CondBranchPct float64 // conditional branches per instruction
	MispredictPct float64 // mispredicts per conditional branch
	LoadPct       float64 // loads per instruction
	DL1MissPct    float64 // L1D misses per memory access
	L2MissPct     float64 // L2 misses per memory access
	DTLBMissPct   float64 // DTLB misses per memory access
	IL1MissPct    float64 // L1I misses per instruction
	CodeKB        int     // static footprint
}

// Characterize runs every benchmark on the baseline machine
// concurrently and reports functional rates.
func Characterize(c Config) ([]Characterization, error) {
	benches := c.benches()
	out := make([]Characterization, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for bi, b := range benches {
		bi, b := bi, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Simulate(c, b, ooo.DefaultConfig(), ooo.Options{KeepGraph: true})
			if err != nil {
				errs[bi] = err
				return
			}
			st := res.Stats
			mem := float64(st.Loads + st.Stores)
			if mem == 0 {
				mem = 1
			}
			cond := float64(st.CondBranches)
			if cond == 0 {
				cond = 1
			}
			// Static footprint from the graph's program indices.
			maxS := int32(0)
			for i := 0; i < res.Graph.Len(); i++ {
				if s := res.Graph.Info[i].SIdx; s > maxS {
					maxS = s
				}
			}
			out[bi] = Characterization{
				Bench:         b,
				IPC:           res.IPC(),
				CondBranchPct: 100 * float64(st.CondBranches) / float64(st.Insts),
				MispredictPct: 100 * float64(st.Mispredicts) / cond,
				LoadPct:       100 * float64(st.Loads) / float64(st.Insts),
				DL1MissPct:    100 * float64(st.DL1Misses) / mem,
				L2MissPct:     100 * float64(st.L2Misses) / mem,
				DTLBMissPct:   100 * float64(st.DTLBMisses) / mem,
				IL1MissPct:    100 * float64(st.IL1Misses) / float64(st.Insts),
				CodeKB:        int(maxS) * 4 / 1024,
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FormatCharacterization renders the table.
func FormatCharacterization(rows []Characterization) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "bench\tIPC\tbr%\tmis%\tld%\tdl1m%\tl2m%\tdtlb%\til1m%\tcodeKB\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%d\t\n",
			r.Bench, r.IPC, r.CondBranchPct, r.MispredictPct, r.LoadPct,
			r.DL1MissPct, r.L2MissPct, r.DTLBMissPct, r.IL1MissPct, r.CodeKB)
	}
	w.Flush()
	return b.String()
}
