// Package experiments contains one harness per table and figure of
// the paper's evaluation (see DESIGN.md §4 for the full index):
//
//	Figure 1  — power-set breakdown of a small execution + stacked bar
//	Figure 2  — an instance of the graph model (rendered by cmd/paper)
//	Table 4a  — CPI breakdown with a 4-cycle level-one data cache,
//	            interactions focused on "dl1"
//	Table 4b  — breakdown with a 2-cycle issue-wakeup loop, focus "shalu"
//	Table 4c  — breakdown with a 15-cycle mispredict loop, focus "bmisp"
//	Figure 3  — window-size speedups at different dl1 latencies
//	Sec 4.2   — gap's window speedup at 1- vs 2-cycle wakeup
//	Table 7   — profiler validation (package profiler supplies the
//	            third column; see Table7 in table7.go)
//
// All experiments are deterministic in (Seed, TraceLen).
package experiments

import (
	"fmt"
	"sync"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/ooo"
	"icost/internal/trace"
	"icost/internal/workload"
)

// Config scales the experiments. The defaults are sized for a laptop:
// large enough for stable shapes, small enough for seconds-per-table.
type Config struct {
	// TraceLen is the measured dynamic instruction count per
	// benchmark.
	TraceLen int
	// Warmup is the number of additional leading instructions run
	// through the stateful components untimed (the paper skips eight
	// billion instructions before measuring; we scale down).
	Warmup int
	// Seed drives workload generation and execution.
	Seed uint64
	// Benches lists the benchmarks to run (nil = full suite).
	Benches []string
}

// DefaultConfig runs the full suite at 30k measured instructions
// after a 30k-instruction warmup.
func DefaultConfig() Config {
	return Config{TraceLen: 30000, Warmup: 30000, Seed: 42, Benches: workload.Names()}
}

func (c Config) benches() []string {
	if len(c.Benches) == 0 {
		return workload.Names()
	}
	return c.Benches
}

// Machine4a is the Section 4.1 machine: Table 6 with a 4-cycle
// level-one data cache.
func Machine4a() ooo.Config { return ooo.DefaultConfig().WithDL1Latency(4) }

// Machine4b is the Section 4.2 machine: Table 6 with a 2-cycle
// issue-wakeup loop.
func Machine4b() ooo.Config { return ooo.DefaultConfig().WithWakeupExtra(1) }

// Machine4c is the Section 4.2 machine: Table 6 with a 15-cycle
// branch-misprediction loop.
func Machine4c() ooo.Config { return ooo.DefaultConfig().WithBranchRecovery(15) }

// LoadTrace generates one benchmark trace under the experiment
// config: Warmup+TraceLen instructions (simulations skip the first
// Warmup).
func LoadTrace(c Config, bench string) (*trace.Trace, error) {
	return workload.Load(bench, c.Seed, c.Warmup+c.TraceLen)
}

// Simulate runs bench on cfg with the experiment's warmup and
// returns the result with the graph kept.
func Simulate(c Config, bench string, cfg ooo.Config, ideal ooo.Options) (*ooo.Result, error) {
	tr, err := LoadTrace(c, bench)
	if err != nil {
		return nil, err
	}
	ideal.Warmup = c.Warmup
	res, err := ooo.Simulate(tr, cfg, ideal)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", bench, err)
	}
	return res, nil
}

// GraphAnalyzer simulates bench on cfg and returns a graph-backed
// cost analyzer.
func GraphAnalyzer(c Config, bench string, cfg ooo.Config) (*cost.Analyzer, error) {
	res, err := Simulate(c, bench, cfg, ooo.Options{KeepGraph: true})
	if err != nil {
		return nil, err
	}
	return cost.New(res.Graph), nil
}

// focusTable runs a focused breakdown for each benchmark. Benchmarks
// are independent (each gets its own generated program, trace and
// simulation), so they run concurrently; results keep the requested
// column order.
func focusTable(c Config, cfg ooo.Config, focusName string, benches []string) ([]*breakdown.Focused, error) {
	cats := breakdown.BaseCategories()
	var focus breakdown.Category
	found := false
	for _, cat := range cats {
		if cat.Name == focusName {
			focus = cat
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: unknown focus category %q", focusName)
	}
	out := make([]*breakdown.Focused, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for bi, b := range benches {
		bi, b := bi, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := GraphAnalyzer(c, b, cfg)
			if err != nil {
				errs[bi] = err
				return
			}
			out[bi], errs[bi] = breakdown.Focus(a, focus, cats, b)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Table4a reproduces Table 4a: the full-suite CPI-contribution
// breakdown on the 4-cycle-dl1 machine with dl1 interactions.
func Table4a(c Config) ([]*breakdown.Focused, error) {
	return focusTable(c, Machine4a(), "dl1", c.benches())
}

// Table4b reproduces Table 4b: the 2-cycle issue-wakeup machine with
// shalu interactions, on the paper's five-benchmark subset.
func Table4b(c Config) ([]*breakdown.Focused, error) {
	return focusTable(c, Machine4b(), "shalu", table4bSubset(c))
}

// Table4c reproduces Table 4c: the 15-cycle mispredict-loop machine
// with bmisp interactions, on the same subset.
func Table4c(c Config) ([]*breakdown.Focused, error) {
	return focusTable(c, Machine4c(), "bmisp", table4bSubset(c))
}

func table4bSubset(c Config) []string {
	if len(c.Benches) > 0 {
		return c.Benches
	}
	return workload.Table4bNames()
}

// Figure3Point is one point of the Figure 3 sensitivity study.
type Figure3Point struct {
	// DL1 is the level-one cache latency; Window the ROB size.
	DL1, Window int
	// Cycles is simulated execution time.
	Cycles int64
	// SpeedupPct is the percentage speedup over the 64-entry window
	// at the same DL1 latency.
	SpeedupPct float64
}

// Figure3 reproduces Figure 3 via re-simulation (the conventional
// sensitivity study the paper compares icost analysis against):
// speedup from growing the window at dl1 latency 1 vs 4. The paper's
// prediction — a serial dl1+win interaction means window growth helps
// *more* at the higher latency — is checked by the caller.
func Figure3(c Config, bench string) ([]Figure3Point, error) {
	tr, err := LoadTrace(c, bench)
	if err != nil {
		return nil, err
	}
	var out []Figure3Point
	for _, dl1 := range []int{1, 4} {
		var base int64
		for _, win := range []int{64, 128, 256} {
			cfg := ooo.DefaultConfig().WithDL1Latency(dl1).WithWindow(win)
			res, err := ooo.Simulate(tr, cfg, ooo.Options{Warmup: c.Warmup})
			if err != nil {
				return nil, err
			}
			p := Figure3Point{DL1: dl1, Window: win, Cycles: res.Cycles}
			if win == 64 {
				base = res.Cycles
			}
			p.SpeedupPct = 100 * (float64(base)/float64(res.Cycles) - 1)
			out = append(out, p)
		}
	}
	return out, nil
}

// Sec42Result is one row of the Section 4.2 validation: the speedup
// from doubling the window at a given issue-wakeup latency.
type Sec42Result struct {
	// WakeupCycles is the issue-wakeup loop length (1 or 2).
	WakeupCycles int
	// SpeedupPct is the speedup from window 64 -> 128.
	SpeedupPct float64
}

// Sec42 reproduces the Section 4.2 numbers: because shalu and win
// interact serially, enlarging the window helps more when the wakeup
// loop is longer (the paper reports 12% vs 18% for gap).
func Sec42(c Config, bench string) ([]Sec42Result, error) {
	tr, err := LoadTrace(c, bench)
	if err != nil {
		return nil, err
	}
	var out []Sec42Result
	for _, extra := range []int{0, 1} {
		var cycles [2]int64
		for i, win := range []int{64, 128} {
			cfg := ooo.DefaultConfig().WithWakeupExtra(extra).WithWindow(win)
			res, err := ooo.Simulate(tr, cfg, ooo.Options{Warmup: c.Warmup})
			if err != nil {
				return nil, err
			}
			cycles[i] = res.Cycles
		}
		out = append(out, Sec42Result{
			WakeupCycles: extra + 1,
			SpeedupPct:   100 * (float64(cycles[0])/float64(cycles[1]) - 1),
		})
	}
	return out, nil
}

// Figure1 reproduces the Figure 1 accounting example: a complete
// power-set breakdown over three categories on one benchmark, with
// the identity "rows + ideal residual = total" checkable by the
// caller, and negative interaction rows plotting below the axis in
// the stacked-bar rendering.
func Figure1(c Config, bench string) (*breakdown.Full, error) {
	a, err := GraphAnalyzer(c, bench, Machine4a())
	if err != nil {
		return nil, err
	}
	cats := []breakdown.Category{}
	for _, n := range []string{"dmiss", "bmisp", "win"} {
		for _, cat := range breakdown.BaseCategories() {
			if cat.Name == n {
				cats = append(cats, cat)
			}
		}
	}
	return breakdown.ComputeFull(a, cats, bench)
}
