package experiments

import (
	"strings"
	"testing"

	"icost/internal/breakdown"
	"icost/internal/depgraph"
	"icost/internal/ooo"
)

// testConfig is sized for CI speed while keeping shapes stable.
func testConfig(benches ...string) Config {
	return Config{TraceLen: 15000, Warmup: 15000, Seed: 42, Benches: benches}
}

func pctOf(t *testing.T, f *breakdown.Focused, label string) float64 {
	t.Helper()
	for _, r := range f.Base {
		if r.Label == label {
			return r.Percent
		}
	}
	for _, r := range f.Pairs {
		if r.Label == label {
			return r.Percent
		}
	}
	t.Fatalf("label %q not in breakdown", label)
	return 0
}

func TestTable4aShapes(t *testing.T) {
	c := testConfig("mcf", "vortex", "bzip", "gzip")
	c.TraceLen = 25000 // shapes need a slightly longer window
	bds, err := Table4a(c)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*breakdown.Focused{}
	for _, b := range bds {
		byName[b.Name] = b
	}
	// mcf is dmiss-dominated (paper: 81%) with a small window cost
	// (4.2%).
	if p := pctOf(t, byName["mcf"], "dmiss"); p < 60 {
		t.Errorf("mcf dmiss %.1f%%, expected dominant", p)
	}
	if p := pctOf(t, byName["mcf"], "win"); p > 20 {
		t.Errorf("mcf win %.1f%%, expected small", p)
	}
	// vortex is window-dominated with near-perfect branch prediction.
	if p := pctOf(t, byName["vortex"], "win"); p < 25 {
		t.Errorf("vortex win %.1f%%, expected dominant", p)
	}
	if pctOf(t, byName["vortex"], "bmisp") > pctOf(t, byName["bzip"], "bmisp") {
		t.Error("vortex mispredicts should cost less than bzip's")
	}
	// bzip is mispredict-heavy (paper: 41%).
	if p := pctOf(t, byName["bzip"], "bmisp"); p < 15 {
		t.Errorf("bzip bmisp %.1f%%, expected large", p)
	}
	// gzip: level-one cache latency matters (paper: 30.5%).
	if p := pctOf(t, byName["gzip"], "dl1"); p < 10 {
		t.Errorf("gzip dl1 %.1f%%, expected large", p)
	}
}

func TestTable4aSerialInteractions(t *testing.T) {
	bds, err := Table4a(testConfig("gzip", "crafty", "twolf"))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bds {
		// The paper's headline Section 4.1 result: dl1 interacts
		// *serially* with window stalls (negative icost) on every
		// benchmark, and positively with bandwidth.
		if p := pctOf(t, b, "dl1+win"); p >= 0 {
			t.Errorf("%s dl1+win = %.1f, expected negative (serial)", b.Name, p)
		}
		if p := pctOf(t, b, "dl1+bw"); p < 0 {
			t.Errorf("%s dl1+bw = %.1f, expected positive (parallel)", b.Name, p)
		}
		if p := pctOf(t, b, "dl1+shalu"); p >= 0 {
			t.Errorf("%s dl1+shalu = %.1f, expected negative (serial)", b.Name, p)
		}
	}
}

func TestTable4bShaluWinSerial(t *testing.T) {
	bds, err := Table4b(testConfig("gap", "gzip", "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bds {
		if b.Focus.Name != "shalu" {
			t.Fatal("wrong focus")
		}
		// Section 4.2: ALU ops interact serially with window stalls.
		if p := pctOf(t, b, "shalu+win"); p >= 0 {
			t.Errorf("%s shalu+win = %.1f, expected negative", b.Name, p)
		}
	}
}

func TestTable4cBmispWinParallel(t *testing.T) {
	bds, err := Table4c(testConfig("gap", "gcc", "gzip", "mcf", "parser"))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bds {
		// The paper's branch-misprediction-loop result: unlike the
		// other two loops, bmisp interacts in *parallel* with window
		// stalls — enlarging the window does not hide mispredicts.
		if p := pctOf(t, b, "bmisp+win"); p <= 0 {
			t.Errorf("%s bmisp+win = %.1f, expected positive (parallel)", b.Name, p)
		}
	}
	// mcf: serial interaction with dmiss (cache-missing loads feed
	// branches).
	for _, b := range bds {
		if b.Name == "mcf" {
			if p := pctOf(t, b, "bmisp+dmiss"); p >= 0 {
				t.Errorf("mcf bmisp+dmiss = %.1f, expected negative", p)
			}
		}
	}
}

func TestFigure3WindowHelpsMoreAtHighDL1(t *testing.T) {
	pts, err := Figure3(testConfig(), "gap")
	if err != nil {
		t.Fatal(err)
	}
	sp := map[[2]int]float64{}
	for _, p := range pts {
		sp[[2]int{p.DL1, p.Window}] = p.SpeedupPct
	}
	// The serial dl1+win interaction predicts larger window speedups
	// at dl1 latency 4 than at 1 (the paper's validation corollary).
	if sp[[2]int{4, 128}] <= sp[[2]int{1, 128}] {
		t.Errorf("window 128: speedup at dl1=4 (%.1f%%) not > dl1=1 (%.1f%%)",
			sp[[2]int{4, 128}], sp[[2]int{1, 128}])
	}
	if sp[[2]int{4, 256}] <= sp[[2]int{1, 256}] {
		t.Errorf("window 256: speedup at dl1=4 (%.1f%%) not > dl1=1 (%.1f%%)",
			sp[[2]int{4, 256}], sp[[2]int{1, 256}])
	}
	// Speedups grow with window size.
	if sp[[2]int{4, 256}] <= sp[[2]int{4, 128}] {
		t.Error("speedup did not grow with window size")
	}
}

func TestSec42WakeupIncreasesWindowValue(t *testing.T) {
	rows, err := Sec42(testConfig(), "gap")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].WakeupCycles != 1 || rows[1].WakeupCycles != 2 {
		t.Fatalf("rows %+v", rows)
	}
	// The serial shalu+win interaction: doubling the window helps at
	// least as much with the longer wakeup loop.
	if rows[1].SpeedupPct < rows[0].SpeedupPct-0.5 {
		t.Errorf("window speedup fell with longer wakeup: %.1f%% -> %.1f%%",
			rows[0].SpeedupPct, rows[1].SpeedupPct)
	}
}

func TestFigure1Identity(t *testing.T) {
	full, err := Figure1(testConfig(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if err := full.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != 7 {
		t.Fatalf("%d rows", len(full.Rows))
	}
}

func TestTable7GraphTracksMultisim(t *testing.T) {
	c := testConfig("parser")
	rows, err := Table7With(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 8 base + 7 pairs
		t.Fatalf("%d rows", len(rows))
	}
	g, _ := Table7Summary(rows, 5)
	// Our graph model is near-exact by construction; allow 2 points.
	if g > 2 {
		t.Errorf("fullgraph avg error %.2f points", g)
	}
}

func TestTable7WithProfiler(t *testing.T) {
	if testing.Short() {
		t.Skip("profiler validation is slow")
	}
	c := testConfig("gzip")
	rows, err := Table7(c)
	if err != nil {
		t.Fatal(err)
	}
	hasProf := false
	for _, r := range rows {
		if r.HasProfiler {
			hasProf = true
		}
	}
	if !hasProf {
		t.Fatal("no profiler column")
	}
	_, p := Table7Summary(rows, 5)
	// The paper reports ~11% relative error; as percentage points on
	// categories >= 5% that is a few points. Allow 8.
	if p > 8 {
		t.Errorf("profiler avg error %.2f points", p)
	}
	out := FormatTable7(rows)
	if !strings.Contains(out, "gzip") || !strings.Contains(out, "avg |err|") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestMachineConfigs(t *testing.T) {
	if Machine4a().Graph.DL1Latency != 4 || Machine4a().Cache.DL1Latency != 4 {
		t.Error("Machine4a dl1 latency")
	}
	if Machine4b().Graph.WakeupExtra != 1 {
		t.Error("Machine4b wakeup")
	}
	if Machine4c().Graph.BranchRecovery != 15 {
		t.Error("Machine4c recovery")
	}
}

func TestGraphAnalyzerErrors(t *testing.T) {
	c := testConfig()
	if _, err := GraphAnalyzer(c, "nosuch", ooo.DefaultConfig()); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
	bad := ooo.DefaultConfig()
	bad.Graph.DL1Latency = 9
	if _, err := GraphAnalyzer(c, "gzip", bad); err == nil {
		t.Fatal("accepted inconsistent machine config")
	}
}

func TestDefaultConfigCoversSuite(t *testing.T) {
	c := DefaultConfig()
	if len(c.Benches) != 12 {
		t.Fatalf("%d benchmarks", len(c.Benches))
	}
	if c.Warmup <= 0 {
		t.Fatal("no warmup")
	}
}

func TestPerInstEventCostOnBenchmark(t *testing.T) {
	// End-to-end check of event-set granularity: the cost of all
	// dmiss events equals the category cost when selected per
	// instruction.
	a, err := GraphAnalyzer(testConfig(), "twolf", Machine4a())
	if err != nil {
		t.Fatal(err)
	}
	g := a.Graph()
	per := make([]depgraph.Flags, g.Len())
	for i := range per {
		per[i] = depgraph.IdealDMiss
	}
	whole := a.Cost(depgraph.IdealDMiss)
	perInst := a.CostSet(depgraph.Ideal{PerInst: per})
	if whole != perInst {
		t.Fatalf("per-inst dmiss cost %d != category cost %d", perInst, whole)
	}
}
