package experiments

import (
	"testing"

	"icost/internal/ooo"
	"icost/internal/workload"
)

// TestGoldenCycleCounts pins the exact simulated cycle count of every
// benchmark at a fixed small configuration. Everything in the stack is
// deterministic — PRNG, generation, execution, simulation — so any
// change here means machine or workload behaviour changed. That is
// sometimes intended (a model fix, a recalibration); when it is,
// regenerate the table below and update EXPERIMENTS.md in the same
// change. When it is not, this test is the tripwire.
func TestGoldenCycleCounts(t *testing.T) {
	golden := map[string]int64{
		"bzip":   13418,
		"crafty": 4602,
		"eon":    4978,
		"gap":    4052,
		"gcc":    11309,
		"gzip":   3763,
		"mcf":    29043,
		"parser": 8798,
		"perl":   6301,
		"twolf":  8498,
		"vortex": 3940,
		"vpr":    11998,
	}
	c := Config{TraceLen: 10000, Warmup: 10000, Seed: 42}
	for _, b := range workload.Names() {
		res, err := Simulate(c, b, ooo.DefaultConfig(), ooo.Options{})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		want, ok := golden[b]
		if !ok {
			t.Errorf("%s: no golden value — new benchmark? add it here", b)
			continue
		}
		if res.Cycles != want {
			t.Errorf("%s: %d cycles, golden %d — behaviour changed; see comment above",
				b, res.Cycles, want)
		}
	}
}
