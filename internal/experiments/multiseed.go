package experiments

import (
	"fmt"
	"sort"
	"sync"

	"icost/internal/breakdown"
	"icost/internal/ooo"
	"icost/internal/stats"
)

// SeedSweep runs the focused Table 4a breakdown for one benchmark
// across several seeds (different generated programs and executions
// of the same profile) and summarizes each category's percentage —
// the robustness check a single-seed table lacks. Runs are
// independent, so they execute concurrently.
type SeedSweep struct {
	Bench string
	// Rows maps category labels to the cross-seed summary of their
	// percentage of execution time.
	Rows map[string]stats.Summary
	// Labels preserves the breakdown's display order.
	Labels []string
	// Seeds used.
	Seeds []uint64
}

// RunSeedSweep computes the sweep; cfg.Seed is ignored in favour of
// the given seeds.
func RunSeedSweep(cfg Config, bench string, mc ooo.Config, seeds []uint64) (*SeedSweep, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	cats := breakdown.BaseCategories()

	type outcome struct {
		bd  *breakdown.Focused
		err error
	}
	results := make([]outcome, len(seeds))
	var wg sync.WaitGroup
	for si, seed := range seeds {
		si, seed := si, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			c.Seed = seed
			a, err := GraphAnalyzer(c, bench, mc)
			if err != nil {
				results[si] = outcome{err: err}
				return
			}
			bd, err := breakdown.Focus(a, cats[0], cats, bench)
			results[si] = outcome{bd: bd, err: err}
		}()
	}
	wg.Wait()

	samples := map[string][]float64{}
	var labels []string
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for _, row := range append(append([]breakdown.Row{}, r.bd.Base...), r.bd.Pairs...) {
			if _, seen := samples[row.Label]; !seen {
				labels = append(labels, row.Label)
			}
			samples[row.Label] = append(samples[row.Label], row.Percent)
		}
	}
	out := &SeedSweep{Bench: bench, Rows: map[string]stats.Summary{},
		Labels: labels, Seeds: append([]uint64(nil), seeds...)}
	for label, xs := range samples {
		out.Rows[label] = stats.Summarize(xs)
	}
	return out, nil
}

// StableSigns returns the interaction labels whose sign is identical
// across every seed (the paper's qualitative conclusions should be
// seed-independent even when magnitudes wiggle), and those that flip.
func (s *SeedSweep) StableSigns() (stable, flipped []string) {
	var labels []string
	for l := range s.Rows {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		r := s.Rows[l]
		if r.Min >= 0 || r.Max <= 0 {
			stable = append(stable, l)
		} else {
			flipped = append(flipped, l)
		}
	}
	return stable, flipped
}

// String renders the sweep in display order.
func (s *SeedSweep) String() string {
	out := fmt.Sprintf("%s across %d seeds:\n", s.Bench, len(s.Seeds))
	for _, l := range s.Labels {
		out += fmt.Sprintf("  %-10s %s\n", l, s.Rows[l])
	}
	return out
}
