package experiments

import (
	"strings"
	"testing"
)

func TestSeedSweepRuns(t *testing.T) {
	cfg := testConfig()
	cfg.TraceLen = 8000
	cfg.Warmup = 8000
	sw, err := RunSeedSweep(cfg, "gzip", Machine4a(), []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Labels) != 15 { // 8 base + 7 pairs
		t.Fatalf("%d labels", len(sw.Labels))
	}
	for _, l := range sw.Labels {
		if sw.Rows[l].N != 3 {
			t.Fatalf("label %s has %d samples", l, sw.Rows[l].N)
		}
	}
	if !strings.Contains(sw.String(), "gzip across 3 seeds") {
		t.Fatal("render")
	}
}

func TestSeedSweepSignStability(t *testing.T) {
	// The headline serial interaction dl1+win should keep its sign
	// across seeds on a dl1-heavy benchmark.
	cfg := testConfig()
	cfg.TraceLen = 12000
	cfg.Warmup = 12000
	sw, err := RunSeedSweep(cfg, "gzip", Machine4a(), []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := sw.Rows["dl1+win"]
	if r.Max > 0 {
		t.Fatalf("dl1+win flipped sign across seeds: %v", r)
	}
	stable, _ := sw.StableSigns()
	found := false
	for _, l := range stable {
		if l == "dl1+win" {
			found = true
		}
	}
	if !found {
		t.Fatal("dl1+win not reported stable")
	}
}

func TestSeedSweepErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := RunSeedSweep(cfg, "gzip", Machine4a(), nil); err == nil {
		t.Fatal("accepted empty seeds")
	}
	if _, err := RunSeedSweep(cfg, "nosuch", Machine4a(), []uint64{1}); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}

func TestCharacterize(t *testing.T) {
	cfg := testConfig("mcf", "gzip", "vortex", "bzip")
	cfg.TraceLen = 12000
	rows, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Characterization{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	// Benchmark character: mcf slowest with the most L2 misses;
	// vortex best-predicted.
	if byName["mcf"].IPC >= byName["gzip"].IPC {
		t.Error("mcf should be slower than gzip")
	}
	if byName["mcf"].L2MissPct <= byName["gzip"].L2MissPct {
		t.Error("mcf should miss L2 more than gzip")
	}
	if byName["vortex"].MispredictPct >= byName["bzip"].MispredictPct {
		t.Error("vortex should predict better than bzip")
	}
	out := FormatCharacterization(rows)
	if !strings.Contains(out, "mcf") || !strings.Contains(out, "IPC") {
		t.Fatalf("format: %s", out)
	}
}
