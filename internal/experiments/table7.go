package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"icost/internal/breakdown"
	"icost/internal/cost"
	"icost/internal/multisim"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/stats"
	"icost/internal/workload"
)

// Table7Row is one category of one benchmark in the validation table:
// the multisim ground truth percentage, and the absolute errors of
// the full-graph analysis and the shotgun profiler against it (the
// paper's Table 7 layout).
type Table7Row struct {
	Bench    string
	Category string
	// MultisimPct is the cost/icost from idealized re-simulation, as
	// a percentage of execution time.
	MultisimPct float64
	// FullgraphErr is fullgraph minus multisim, in percentage points.
	FullgraphErr float64
	// ProfilerErr is profiler minus multisim, in percentage points.
	// NaN-free: zero when no profiler column was computed.
	ProfilerErr float64
	// HasProfiler reports whether ProfilerErr is meaningful.
	HasProfiler bool
}

// Table7Benches is the paper's displayed subset.
func Table7Benches() []string { return []string{"gcc", "parser", "twolf"} }

// ProfilerColumn computes breakdown percentages for one benchmark the
// way the shotgun profiler would. Table7 uses ShotgunColumn; tests
// may inject alternatives.
type ProfilerColumn func(c Config, bench string, cfg ooo.Config) (map[string]float64, error)

// ShotgunColumn runs the real shotgun profiler: it regenerates the
// benchmark, simulates it, samples the simulation with the
// performance-monitor model, reconstructs fragments, and returns the
// estimated breakdown percentages.
func ShotgunColumn(c Config, bench string, cfg ooo.Config) (map[string]float64, error) {
	w, err := workload.New(bench, c.Seed)
	if err != nil {
		return nil, err
	}
	tr, err := w.Execute(c.Warmup+c.TraceLen, c.Seed+1)
	if err != nil {
		return nil, err
	}
	res, err := ooo.Simulate(tr, cfg, ooo.Options{KeepGraph: true, Warmup: c.Warmup})
	if err != nil {
		return nil, err
	}
	cats := breakdown.BaseCategories()
	pcfg := profiler.DefaultConfig()
	pcfg.Seed = c.Seed + 2
	est, _, err := profiler.Profile(w.Prog, cfg.Graph, tr, res.Graph, c.Warmup, pcfg, cats[0], cats)
	if err != nil {
		return nil, err
	}
	return est.Pct, nil
}

// Table7 validates the graph analysis and the shotgun profiler
// against multisim on the Table 4a machine and categories.
func Table7(c Config) ([]Table7Row, error) { return Table7With(c, ShotgunColumn) }

// Table7With is Table7 with an optional profiler column.
func Table7With(c Config, profCol ProfilerColumn) ([]Table7Row, error) {
	cfg := Machine4a()
	cats := breakdown.BaseCategories()
	benches := c.Benches
	if benches == nil {
		benches = Table7Benches()
	}
	var rows []Table7Row
	for _, b := range benches {
		tr, err := LoadTrace(c, b)
		if err != nil {
			return nil, err
		}
		// Ground truth: idealized re-simulation.
		ms, err := multisim.New(tr, cfg, c.Warmup)
		if err != nil {
			return nil, err
		}
		// Graph analysis on the same execution.
		res, err := ooo.Simulate(tr, cfg, ooo.Options{KeepGraph: true, Warmup: c.Warmup})
		if err != nil {
			return nil, err
		}
		ga := cost.New(res.Graph)

		var prof map[string]float64
		if profCol != nil {
			prof, err = profCol(c, b, cfg)
			if err != nil {
				return nil, err
			}
		}

		pct := func(a *cost.Analyzer, cy int64) float64 {
			return 100 * float64(cy) / float64(a.BaseTime())
		}
		add := func(category string, msCy, gaCy int64) {
			r := Table7Row{
				Bench:        b,
				Category:     category,
				MultisimPct:  pct(ms, msCy),
				FullgraphErr: pct(ga, gaCy) - pct(ms, msCy),
			}
			if prof != nil {
				if v, ok := prof[category]; ok {
					r.ProfilerErr = v - r.MultisimPct
					r.HasProfiler = true
				}
			}
			rows = append(rows, r)
		}
		for _, cat := range cats {
			add(cat.Name, ms.Cost(cat.Flags), ga.Cost(cat.Flags))
		}
		focus := cats[0] // dl1
		for _, cat := range cats[1:] {
			msIC, err := ms.ICost(focus.Flags, cat.Flags)
			if err != nil {
				return nil, err
			}
			gaIC, err := ga.ICost(focus.Flags, cat.Flags)
			if err != nil {
				return nil, err
			}
			add(focus.Name+"+"+cat.Name, msIC, gaIC)
		}
	}
	return rows, nil
}

// Table7Summary computes the paper's two headline error averages over
// categories whose multisim magnitude is at least minPct (the paper
// excludes categories under 5%): the mean |fullgraph - multisim| and
// mean |profiler - multisim|, in percentage points.
func Table7Summary(rows []Table7Row, minPct float64) (graphErr, profErr float64) {
	var gSum, pSum float64
	var gN, pN int
	for _, r := range rows {
		m := r.MultisimPct
		if m < 0 {
			m = -m
		}
		if m < minPct {
			continue
		}
		e := r.FullgraphErr
		if e < 0 {
			e = -e
		}
		gSum += e
		gN++
		if r.HasProfiler {
			e = r.ProfilerErr
			if e < 0 {
				e = -e
			}
			pSum += e
			pN++
		}
	}
	if gN > 0 {
		graphErr = gSum / float64(gN)
	}
	if pN > 0 {
		profErr = pSum / float64(pN)
	}
	return graphErr, profErr
}

// FormatTable7 renders rows grouped by benchmark in the paper's
// layout.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "bench\tcategory\tmultisim\tfullgraph(err)\tprofiler(err)\t")
	for _, r := range rows {
		prof := "-"
		if r.HasProfiler {
			prof = fmt.Sprintf("%+.1f", r.ProfilerErr)
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%+.1f\t%s\t\n",
			r.Bench, r.Category, r.MultisimPct, r.FullgraphErr, prof)
	}
	w.Flush()
	g, p := Table7Summary(rows, 5)
	fmt.Fprintf(&b, "avg |err| (categories >= 5%%): fullgraph %.2f pts, profiler %.2f pts\n", g, p)
	if r, ok := Table7Correlation(rows); ok {
		fmt.Fprintf(&b, "profiler-vs-multisim correlation across categories: %.3f\n", r)
	}
	return b.String()
}

// Table7Correlation computes the Pearson correlation between the
// profiler's category percentages and the multisim ground truth — a
// stricter tracking measure than average error (a profiler that
// reported every category as its mean would have low error but no
// correlation).
func Table7Correlation(rows []Table7Row) (float64, bool) {
	var truth, prof []float64
	for _, r := range rows {
		if !r.HasProfiler {
			continue
		}
		truth = append(truth, r.MultisimPct)
		prof = append(prof, r.MultisimPct+r.ProfilerErr)
	}
	if len(truth) < 2 {
		return 0, false
	}
	return stats.Correlation(truth, prof), true
}
