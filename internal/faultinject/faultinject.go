// Package faultinject is a deterministic, seeded fault-injection
// layer for the analysis service. The paper's measurements are only
// trustworthy if the machinery under them stays honest when parts of
// it misbehave (the §5 shotgun profiler is explicitly built to
// tolerate lossy, fragmentary samples); this package makes every
// failure path testable on demand instead of waiting for production
// to find it.
//
// Design:
//
//   - Named injection points (Point) are threaded through the cold
//     path (trace generation, simulation, graph build/walk), the
//     engine (queue admission, session build, result-cache put) and
//     the icostd query handler. Each point is one call to Hit.
//   - When no plan is armed, Hit is a single atomic pointer load and
//     a nil check — zero cost, no build tags, safe to leave in
//     production binaries.
//   - A plan (Enable) arms rules: a rule can return an error, inject
//     latency (honoring ctx so an injected stall is still
//     cancellable), or force real context cancellation through a
//     cancel function registered with Register/WithCancel.
//   - Firing is deterministic: rules fire by hit count (After, Count)
//     and, when probabilistic (Prob), draw from a PRNG seeded by
//     Enable — the same seed replays the same fault schedule.
//
// Stats exposes per-point hit and fired counters so a chaos suite can
// assert every point was actually exercised.
package faultinject

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site. The constants below are the
// complete set; Points returns them for coverage assertions.
type Point string

const (
	// WorkloadGen fires in the trace-generation producer, once per
	// emitted segment.
	WorkloadGen Point = "workload.gen"
	// OOOSim fires in the streaming simulator, once per consumed
	// segment.
	OOOSim Point = "ooo.sim"
	// OOOGraph fires after the stream is drained, just before the
	// dependence graph is finalized (replay check + assembly).
	OOOGraph Point = "ooo.graph"
	// GraphWalk fires at the entry of every cancellable graph walk
	// (scalar recurrence, batched evaluation, latest-times pass).
	// Walks issued through the infallible background-context wrappers
	// are exempt by contract — their callers are promised no error.
	GraphWalk Point = "depgraph.walk"
	// EngineAdmit fires at queue admission, before a job is enqueued.
	EngineAdmit Point = "engine.admit"
	// EngineExec fires when a worker picks a query job up, before any
	// session or analysis work. A latency rule here occupies the
	// worker for its duration — the knob load harnesses use to pin
	// per-query service time so shard capacity is measurable
	// independent of host CPU count.
	EngineExec Point = "engine.exec"
	// EngineBuild fires at the top of every session-build attempt
	// (inside the retry loop, so Count=1 exercises retry-then-succeed).
	EngineBuild Point = "engine.build"
	// EngineCachePut fires before a computed response is inserted into
	// the result cache; a fault skips the insert (the cache is an
	// optimization, so the query still succeeds).
	EngineCachePut Point = "engine.cacheput"
	// DaemonQuery fires at the top of the icostd /query handler.
	DaemonQuery Point = "icostd.query"
	// FleetIngest fires at the top of every fleet sample-batch ingest,
	// before the batch touches its aggregate.
	FleetIngest Point = "fleet.ingest"
	// FleetMerge fires inside the aggregate merge, after the batch is
	// staged but before it is committed — a fault here must leave the
	// aggregate exactly as it was (merges are transactional).
	FleetMerge Point = "fleet.merge"
	// FleetSnapshot fires at the top of every session snapshot encode
	// and decode (engine SnapshotSession / RestoreSession).
	FleetSnapshot Point = "fleet.snapshot"
	// RouterForward fires before every request the router proxies to a
	// backend shard. An error here models the backend dying mid-query
	// (connection severed); latency models a slow shard, which is what
	// hedged reads exist to absorb.
	RouterForward Point = "router.forward"
	// RouterReplicate fires before every snapshot push the router ships
	// to a replica backend — a fault models a replica refusing or
	// corrupting a hot-session copy.
	RouterReplicate Point = "router.replicate"
)

// Points returns every defined injection point, for chaos-suite
// coverage loops.
func Points() []Point {
	return []Point{
		WorkloadGen, OOOSim, OOOGraph, GraphWalk,
		EngineAdmit, EngineExec, EngineBuild, EngineCachePut, DaemonQuery,
		FleetIngest, FleetMerge, FleetSnapshot,
		RouterForward, RouterReplicate,
	}
}

// Rule arms one fault at one point. Exactly the actions whose fields
// are set are applied, in order: latency first (so a fault can model
// a slow failure), then cancellation, then the returned error.
type Rule struct {
	Point Point
	// Err, when non-nil, is returned from Hit.
	Err error
	// Latency, when positive, delays Hit by that long (or until ctx
	// is done, whichever is first).
	Latency time.Duration
	// Cancel forces real context cancellation: the cancel function
	// registered on ctx via Register/WithCancel is invoked and Hit
	// returns the context's error (context.Canceled if none is
	// registered).
	Cancel bool
	// Prob is the per-hit firing probability; 0 means always fire.
	// Draws come from the plan's seeded PRNG, so a given seed replays
	// identically.
	Prob float64
	// After skips the first After matching hits before the rule may
	// fire.
	After int
	// Count caps how many times the rule fires; 0 means no cap.
	Count int
}

// armedRule is a Rule plus its firing state.
type armedRule struct {
	Rule
	seen  int
	fired int
}

// plan is one armed fault schedule.
type plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*armedRule
	hits  map[Point]int64
	fired map[Point]int64
}

// active is the armed plan; nil means injection is disabled and Hit
// is free.
var active atomic.Pointer[plan]

// Enable arms a plan with the given rules, replacing any previous
// plan. seed drives every probabilistic decision, so a chaos run is
// replayed by re-enabling with the same seed and rules.
func Enable(seed uint64, rules ...Rule) {
	p := &plan{
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		hits:  map[Point]int64{},
		fired: map[Point]int64{},
	}
	for i := range rules {
		p.rules = append(p.rules, &armedRule{Rule: rules[i]})
	}
	active.Store(p)
}

// Disable disarms injection; Hit returns to its zero-cost path.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is armed.
func Enabled() bool { return active.Load() != nil }

// Stats is a snapshot of per-point activity under the current plan.
type Stats struct {
	Hits  map[Point]int64 // Hit calls per point
	Fired map[Point]int64 // faults actually applied per point
}

// Snapshot copies the current plan's counters (empty maps when
// disabled).
func Snapshot() Stats {
	s := Stats{Hits: map[Point]int64{}, Fired: map[Point]int64{}}
	p := active.Load()
	if p == nil {
		return s
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range p.hits {
		s.Hits[k] = v
	}
	for k, v := range p.fired {
		s.Fired[k] = v
	}
	return s
}

// cancelKey indexes the registered cancel function in a context's
// value chain.
type cancelKey struct{}

// Register attaches cancel to ctx so a Cancel-mode fault at any point
// below can sever the context for real (not just pretend with a
// returned error). Returns ctx unchanged when injection is disabled.
func Register(ctx context.Context, cancel context.CancelFunc) context.Context {
	if active.Load() == nil {
		return ctx
	}
	return context.WithValue(ctx, cancelKey{}, cancel)
}

// WithCancel derives a cancellable child of ctx with its cancel
// pre-registered — the one-liner for call sites that have no cancel
// of their own to offer. When injection is disabled it returns ctx
// untouched and a no-op cancel.
func WithCancel(ctx context.Context) (context.Context, context.CancelFunc) {
	if active.Load() == nil {
		return ctx, func() {}
	}
	cctx, cancel := context.WithCancel(ctx)
	return Register(cctx, cancel), cancel
}

// Hit is the injection hook: each named point calls it once per pass.
// With no plan armed it costs one atomic load. With a plan armed it
// applies the first rule for pt that elects to fire and returns that
// rule's error (nil for pure-latency rules).
func Hit(ctx context.Context, pt Point) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(ctx, pt)
}

func (p *plan) hit(ctx context.Context, pt Point) error {
	p.mu.Lock()
	p.hits[pt]++
	var r *armedRule
	for _, cand := range p.rules {
		if cand.Point != pt {
			continue
		}
		cand.seen++
		if cand.seen <= cand.After {
			continue
		}
		if cand.Count > 0 && cand.fired >= cand.Count {
			continue
		}
		if cand.Prob > 0 && cand.Prob < 1 && p.rng.Float64() >= cand.Prob {
			continue
		}
		cand.fired++
		p.fired[pt]++
		r = cand
		break
	}
	p.mu.Unlock()
	if r == nil {
		return nil
	}
	// Apply outside the lock: a latency fault must not serialize every
	// other injection point behind its sleep.
	if r.Latency > 0 {
		t := time.NewTimer(r.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if r.Cancel {
		if cancel, ok := ctx.Value(cancelKey{}).(context.CancelFunc); ok {
			cancel()
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return context.Canceled
	}
	return r.Err
}
