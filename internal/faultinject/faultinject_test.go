package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestDisabledIsFree(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled after Disable")
	}
	for _, pt := range Points() {
		if err := Hit(context.Background(), pt); err != nil {
			t.Fatalf("disabled Hit(%s) = %v", pt, err)
		}
	}
	s := Snapshot()
	if len(s.Hits) != 0 || len(s.Fired) != 0 {
		t.Fatalf("disabled stats not empty: %+v", s)
	}
}

func TestErrFault(t *testing.T) {
	defer Disable()
	Enable(1, Rule{Point: EngineBuild, Err: errBoom})
	if err := Hit(context.Background(), EngineBuild); !errors.Is(err, errBoom) {
		t.Fatalf("Hit = %v, want errBoom", err)
	}
	// Other points are untouched.
	if err := Hit(context.Background(), OOOSim); err != nil {
		t.Fatalf("unruled point fired: %v", err)
	}
	s := Snapshot()
	if s.Hits[EngineBuild] != 1 || s.Fired[EngineBuild] != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Hits[OOOSim] != 1 || s.Fired[OOOSim] != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestAfterAndCount(t *testing.T) {
	defer Disable()
	Enable(1, Rule{Point: WorkloadGen, Err: errBoom, After: 2, Count: 2})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Hit(context.Background(), WorkloadGen) != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (After=2 Count=2)", i, got[i], want[i])
		}
	}
}

// TestSeededProbReplays: the same seed yields the same firing
// pattern; a different seed (very likely) differs somewhere over 64
// draws, and expected firing counts track Prob.
func TestSeededProbReplays(t *testing.T) {
	defer Disable()
	pattern := func(seed uint64) []bool {
		Enable(seed, Rule{Point: OOOSim, Err: errBoom, Prob: 0.5})
		var p []bool
		for i := 0; i < 64; i++ {
			p = append(p, Hit(context.Background(), OOOSim) != nil)
		}
		return p
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := pattern(43)
	same := true
	fired := 0
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			fired++
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-hit patterns")
	}
	if fired < 16 || fired > 48 {
		t.Fatalf("prob 0.5 fired %d/64 times", fired)
	}
}

// TestFleetPointsRegistered pins the ingestion-path points: they are
// enumerable (so chaos coverage loops visit them) and fire like any
// other point.
func TestFleetPointsRegistered(t *testing.T) {
	defer Disable()
	want := []Point{FleetIngest, FleetMerge, FleetSnapshot}
	all := Points()
	for _, pt := range want {
		found := false
		for _, p := range all {
			if p == pt {
				found = true
			}
		}
		if !found {
			t.Fatalf("Points() is missing %s", pt)
		}
		Enable(1, Rule{Point: pt, Err: errBoom})
		if err := Hit(context.Background(), pt); !errors.Is(err, errBoom) {
			t.Fatalf("Hit(%s) = %v, want errBoom", pt, err)
		}
	}
}

func TestLatencyHonorsCtx(t *testing.T) {
	defer Disable()
	Enable(1, Rule{Point: GraphWalk, Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Hit(ctx, GraphWalk)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("latency fault under expiring ctx returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("latency fault ignored ctx, slept %v", elapsed)
	}
}

func TestCancelFault(t *testing.T) {
	defer Disable()
	Enable(1, Rule{Point: EngineBuild, Cancel: true})

	// With a registered cancel the fault severs the real context.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rctx := Register(ctx, cancel)
	if err := Hit(rctx, EngineBuild); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault returned %v", err)
	}
	if ctx.Err() == nil {
		t.Fatal("registered context not actually canceled")
	}

	// Without one it still reports cancellation.
	if err := Hit(context.Background(), EngineBuild); !errors.Is(err, context.Canceled) {
		t.Fatalf("unregistered cancel fault returned %v", err)
	}
}

func TestWithCancel(t *testing.T) {
	Disable()
	base := context.Background()
	ctx, cancel := WithCancel(base)
	if ctx != base {
		t.Fatal("disabled WithCancel derived a new context")
	}
	cancel() // no-op

	Enable(1, Rule{Point: DaemonQuery, Cancel: true})
	defer Disable()
	ctx, cancel = WithCancel(base)
	defer cancel()
	if err := Hit(ctx, DaemonQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault through WithCancel returned %v", err)
	}
	if ctx.Err() == nil {
		t.Fatal("WithCancel context not canceled by fault")
	}
}
