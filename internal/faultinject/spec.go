package faultinject

// Fault-spec parsing, shared by every binary that arms a plan from a
// flag (icostd -faults, icostload -perturb). The grammar is a
// comma-separated list of rules:
//
//	point:action[*count][@after][%prob]
//
// where point is a Point name (see Points), action is one of
//
//	err         return an injected error
//	lat=<dur>   sleep <dur> (a time.ParseDuration string), honoring ctx
//	cancel      cancel the registered request context
//
// and the optional modifiers bound the rule: *count fires it at most
// count times, @after skips the first after hits, %prob fires it with
// the given probability in (0,1]. Examples:
//
//	engine.build:err*1            fail the first session build
//	icostd.query:lat=50ms%0.1     delay 10% of queries by 50ms
//	router.forward:lat=40ms%0.05  make 5% of proxied requests slow
//
// Unknown points are refused loudly — arming nothing silently would
// turn a typo into a chaos drill that tested the happy path.

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SpecError is the typed failure for fault-spec parsing: Rule carries
// the offending rule text (empty for spec-level failures) and Detail
// says what was wrong. Callers that build specs programmatically
// (icostload -perturb) can errors.As it apart from transport errors.
type SpecError struct {
	Rule   string
	Detail string
}

func (e *SpecError) Error() string {
	if e.Rule == "" {
		return "fault spec: " + e.Detail
	}
	return fmt.Sprintf("fault spec rule %q: %s", e.Rule, e.Detail)
}

// ParseSpec parses a fault-spec flag value into injection rules.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, &SpecError{Detail: "empty fault spec"}
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	var r Rule
	bad := func(format string, args ...any) (Rule, error) {
		return Rule{}, &SpecError{Rule: s, Detail: fmt.Sprintf(format, args...)}
	}
	point, rest, ok := strings.Cut(s, ":")
	if !ok {
		return bad("missing ':' between point and action")
	}
	pt := Point(point)
	if !knownPoint(pt) {
		return bad("unknown point %q (known: %s)", point, pointList())
	}
	r.Point = pt

	// Peel modifiers off the tail in any order: %prob, @after, *count.
	// None of the modifier characters appear in the actions themselves
	// (durations spell out units), so a rightmost scan is unambiguous.
	// A repeated modifier is refused rather than letting one copy
	// silently shadow the other.
	action := rest
	seen := map[byte]bool{}
	for {
		i := strings.LastIndexAny(action, "*@%")
		if i < 0 {
			break
		}
		mod, val := action[i], action[i+1:]
		if seen[mod] {
			return bad("duplicate %c modifier", mod)
		}
		seen[mod] = true
		switch mod {
		case '%':
			// The comparison is written positively so NaN (which fails
			// every ordering) cannot sneak past a <=0 || >1 rejection.
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || !(p > 0 && p <= 1) {
				return bad("bad probability %q (want (0,1])", val)
			}
			r.Prob = p
		case '@':
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return bad("bad @after %q (want an integer >= 0)", val)
			}
			r.After = n
		case '*':
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return bad("bad *count %q (want an integer >= 1)", val)
			}
			r.Count = n
		}
		action = action[:i]
	}

	switch {
	case action == "err":
		r.Err = fmt.Errorf("faultinject: injected fault at %s", point)
	case action == "cancel":
		r.Cancel = true
	case strings.HasPrefix(action, "lat="):
		d, err := time.ParseDuration(action[len("lat="):])
		if err != nil || d <= 0 {
			return bad("bad latency %q", action)
		}
		r.Latency = d
	default:
		return bad("unknown action %q (want err, lat=<dur> or cancel)", action)
	}
	return r, nil
}

func knownPoint(pt Point) bool {
	for _, p := range Points() {
		if p == pt {
			return true
		}
	}
	return false
}

func pointList() string {
	pts := Points()
	names := make([]string, len(pts))
	for i, p := range pts {
		names[i] = string(p)
	}
	return strings.Join(names, ", ")
}
