package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestParseSpecValid(t *testing.T) {
	rules, err := ParseSpec("engine.build:err*1, icostd.query:lat=50ms%0.1, ooo.sim:cancel@3*2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	if rules[0].Point != EngineBuild || rules[0].Err == nil || rules[0].Count != 1 {
		t.Fatalf("rule 0: %+v", rules[0])
	}
	if rules[1].Latency != 50*time.Millisecond || rules[1].Prob != 0.1 {
		t.Fatalf("rule 1: %+v", rules[1])
	}
	if !rules[2].Cancel || rules[2].After != 3 || rules[2].Count != 2 {
		t.Fatalf("rule 2: %+v", rules[2])
	}
}

// TestParseSpecDegenerate pins the rejection of spec values that used
// to arm rules which then never fire or always fire: out-of-range or
// NaN probabilities, non-positive counts, negative after-skips, and
// silently-shadowed duplicate modifiers. Every failure must surface as
// a *SpecError naming the offending rule.
func TestParseSpecDegenerate(t *testing.T) {
	cases := []struct {
		name, spec string
	}{
		{"empty spec", "  , "},
		{"missing colon", "engine.build"},
		{"unknown point", "nope.nope:err"},
		{"unknown action", "engine.build:explode"},
		{"prob zero", "engine.build:err%0"},
		{"prob negative", "engine.build:err%-0.5"},
		{"prob above one", "engine.build:err%1.5"},
		{"prob NaN", "engine.build:err%NaN"},
		{"prob garbage", "engine.build:err%often"},
		{"count zero", "engine.build:err*0"},
		{"count negative", "engine.build:err*-2"},
		{"count fractional", "engine.build:err*1.5"},
		{"after negative", "engine.build:err@-1"},
		{"after garbage", "engine.build:err@soon"},
		{"duplicate count", "engine.build:err*2*3"},
		{"duplicate prob", "engine.build:err%0.1%0.2"},
		{"duplicate after", "engine.build:err@1@2"},
		{"zero latency", "engine.build:lat=0s"},
		{"negative latency", "engine.build:lat=-1ms"},
		{"bad latency", "engine.build:lat=fast"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rules, err := ParseSpec(tc.spec)
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted: %+v", tc.spec, rules)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *SpecError: %v", err, err)
			}
			if tc.name != "empty spec" && se.Rule == "" {
				t.Fatalf("SpecError does not name the rule: %v", err)
			}
		})
	}
}

// TestParseSpecBoundaryProb: the closed upper endpoint of (0,1] and a
// tiny positive probability both parse.
func TestParseSpecBoundaryProb(t *testing.T) {
	for _, spec := range []string{"engine.build:err%1", "engine.build:err%1e-9"} {
		if _, err := ParseSpec(spec); err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
	}
}
