package fleet

import (
	"container/list"
	"context"
	"strconv"
	"strings"
	"sync"
	"time"

	"icost/internal/breakdown"
	"icost/internal/depgraph"
	"icost/internal/faultinject"
	"icost/internal/isa"
	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/window"
	"icost/internal/workload"
)

// Config sizes the aggregator. Zero fields take defaults.
type Config struct {
	// MaxBytes bounds the retained sample pool across all aggregates
	// (default 64 MiB). When an ingest pushes the fleet past the
	// budget, whole aggregates are evicted coldest-first — the lossy
	// half of the paper's lossy-collection contract.
	MaxBytes int64
	// Profiler parameterizes fragment reconstruction and analysis
	// over merged pools (default profiler.DefaultConfig()). Fragments
	// is the per-query default; a query may override it.
	Profiler profiler.Config
	// Machine is the timing configuration of the machines the fleet
	// runs (default ooo.DefaultConfig(), the paper's Table 6 box) —
	// reconstruction needs the same edge latencies the hosts had.
	Machine ooo.Config
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	zero := profiler.Config{}
	if c.Profiler == zero {
		c.Profiler = profiler.DefaultConfig()
	}
	if c.Machine.Graph.Window == 0 {
		c.Machine = ooo.DefaultConfig()
	}
	return c
}

// aggregate is one (binary, seed, group) merged sample pool plus the
// memoized analysis results over it. Its two locks slot into the
// fleet-wide order documented on Aggregator: mu is acquired after
// Aggregator.mu and before memoMu, and memoMu is the innermost lock
// in the package.
type aggregate struct {
	key Key

	// mu guards the pool: ingest merges hold it exclusively, queries
	// analyze under read locks (profiler reconstruction only reads).
	// Order: after Aggregator.mu (eviction flips evicted while the
	// LRU books are held), before memoMu (estimate memoizes under the
	// pool's read lock).
	mu      sync.RWMutex
	samples *profiler.Samples
	hosts   map[string]struct{}
	batches int64
	// evicted marks an aggregate the LRU has dropped; an in-flight
	// merge that finds it set must restart against a fresh aggregate
	// rather than commit into an orphan the books can no longer see.
	evicted bool
	// gen counts committed merges; a memoized estimate is valid only
	// for the generation it was computed against.
	gen uint64

	// bytes is the retained size of the pool. Unlike the fields above
	// it is guarded by the Aggregator's mu, not the aggregate's: it
	// must move in lockstep with LRU membership and the fleet-wide
	// byte total, or a concurrent eviction could strand bytes in the
	// accounting that no eviction pass can ever reclaim.
	bytes int64

	// memoMu guards memo and cal. Innermost lock: estimate takes it
	// while holding mu for read, and nothing is ever acquired under
	// it — so a slow analysis pipeline runs between memoMu sections,
	// never inside one.
	memoMu sync.Mutex
	memo   map[string]*memoEntry
	// cal memoizes calibrate results. Unlike memo it is
	// generation-independent: the windowed ground truth depends only
	// on (binary, seed, machine, trace shape), never on the pool.
	cal map[string]*calEntry
}

type memoEntry struct {
	gen uint64
	est *profiler.Estimate
}

// calEntry is one memoized windowed ground-truth run.
type calEntry struct {
	pct       map[string]float64
	cycles    int64
	insts     int64
	windows   int
	peakBytes int64
}

// Aggregator is the fleet's online merge + query surface.
//
// Lock order (outermost first, enforced by the lockorder analyzer):
//
//	Aggregator.mu  ->  aggregate.mu  ->  aggregate.memoMu
//
// A goroutine holding a later lock must never acquire an earlier
// one; code that needs two of them in the other direction (ingest's
// commit, query's calibrate path) drops the inner lock first and
// revalidates after reacquiring. The one field guarded out of line
// is aggregate.bytes, which belongs to Aggregator.mu so that byte
// accounting moves in lockstep with LRU membership — see its field
// comment.
type Aggregator struct {
	cfg Config

	// mu guards the aggregate directory: items, ll, bytes, and every
	// aggregate's bytes field. Outermost lock — lookup and eviction
	// acquire aggregate.mu beneath it, never the reverse.
	mu    sync.Mutex
	items map[string]*list.Element // Key.String() -> *aggregate
	ll    *list.List               // front = most recently ingested
	bytes int64

	met metrics
}

// NewAggregator readies an empty aggregator.
func NewAggregator(cfg Config) *Aggregator {
	return &Aggregator{
		cfg:   cfg.withDefaults(),
		items: map[string]*list.Element{},
		ll:    list.New(),
	}
}

// Ingest merges one host's sample batch into its aggregate, taking
// ownership of s. The merge is transactional: a fault or invalid
// batch leaves the aggregate exactly as it was.
func (a *Aggregator) Ingest(ctx context.Context, h Header, s *profiler.Samples) error {
	start := time.Now()
	if err := a.ingest(ctx, h, s); err != nil {
		a.met.ingestErrors.Add(1)
		return err
	}
	a.met.ingestBatches.Add(1)
	a.met.ingestSigs.Add(int64(len(s.Sigs)))
	var details int64
	for _, ds := range s.Details {
		details += int64(len(ds))
	}
	a.met.ingestDetails.Add(details)
	a.met.ingestInsts.Add(int64(s.Insts))
	a.met.ingestLatency.record(time.Since(start))
	return nil
}

func (a *Aggregator) ingest(ctx context.Context, h Header, s *profiler.Samples) error {
	if err := faultinject.Hit(ctx, faultinject.FleetIngest); err != nil {
		return err
	}
	if err := h.validate(); err != nil {
		return err
	}
	if _, ok := workload.ByName(h.Binary); !ok {
		return errValidation("fleet: unknown binary %q (have %s)",
			h.Binary, strings.Join(workload.Names(), ","))
	}
	if len(s.Sigs) == 0 {
		return errValidation("fleet: batch has no signature samples")
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Stage outside the aggregate's critical state: the byte cost and
	// detail count are pure reads of the incoming batch.
	add := sampleBytes(s)

	// Commit into a live aggregate. An aggregate can be evicted
	// between lookup and lock acquisition; merging into it then would
	// grow an orphan pool, so retry against a fresh one instead.
	var agg *aggregate
	for {
		agg = a.lookup(h.Key(), true)
		agg.mu.Lock()
		if !agg.evicted {
			break
		}
		agg.mu.Unlock()
	}
	// The merge fault point sits after staging, before commit: a
	// fault kills this merge mid-flight and the transactional shape
	// guarantees the aggregate is untouched.
	if err := faultinject.Hit(ctx, faultinject.FleetMerge); err != nil {
		agg.mu.Unlock()
		return err
	}
	if agg.samples == nil {
		agg.samples = &profiler.Samples{Details: map[isa.Addr][]profiler.DetailedSample{}}
	}
	agg.samples.Sigs = append(agg.samples.Sigs, s.Sigs...)
	for pc, ds := range s.Details {
		agg.samples.Details[pc] = append(agg.samples.Details[pc], ds...)
	}
	agg.samples.Insts += s.Insts
	if h.Host != "" {
		agg.hosts[h.Host] = struct{}{}
	}
	agg.batches++
	agg.gen++
	agg.mu.Unlock()

	// Fleet-level byte accounting + eviction, coldest aggregate
	// first. Membership and byte counts move together under a.mu: the
	// batch is accounted only if its aggregate is still in the LRU
	// (an eviction racing the commit above takes the whole pool with
	// it — lossy collection, nothing left to bill), and an evicted
	// aggregate's bytes leave the books in the same critical section
	// that drops it from the list.
	a.mu.Lock()
	if el, ok := a.items[h.Key().String()]; ok && el.Value.(*aggregate) == agg {
		agg.bytes += add
		a.bytes += add
		a.ll.MoveToFront(el)
		for a.bytes > a.cfg.MaxBytes {
			back := a.ll.Back()
			if back == nil {
				break
			}
			ev := back.Value.(*aggregate)
			a.ll.Remove(back)
			delete(a.items, ev.key.String())
			a.bytes -= ev.bytes
			ev.mu.Lock()
			ev.evicted = true
			ev.mu.Unlock()
			a.met.evictions.Add(1)
		}
	}
	a.mu.Unlock()
	return nil
}

// lookup returns the aggregate for key, creating it when create is
// set, and refreshes its LRU recency.
func (a *Aggregator) lookup(key Key, create bool) *aggregate {
	ks := key.String()
	a.mu.Lock()
	defer a.mu.Unlock()
	if el, ok := a.items[ks]; ok {
		a.ll.MoveToFront(el)
		return el.Value.(*aggregate)
	}
	if !create {
		return nil
	}
	agg := &aggregate{
		key:   key,
		hosts: map[string]struct{}{},
		memo:  map[string]*memoEntry{},
		cal:   map[string]*calEntry{},
	}
	a.items[ks] = a.ll.PushFront(agg)
	return agg
}

// sampleBytes estimates the retained size of a batch: slice and map
// storage the merged pool keeps, not the encoded wire size.
func sampleBytes(s *profiler.Samples) int64 {
	const (
		sigOverhead    = 32 // SignatureSample header + slice header
		detailOverhead = 96 // DetailedSample struct + map bucket share
	)
	b := int64(0)
	for i := range s.Sigs {
		b += sigOverhead + int64(len(s.Sigs[i].Bits))
	}
	for _, ds := range s.Details {
		for i := range ds {
			b += detailOverhead + int64(len(ds[i].Before)+len(ds[i].After))
		}
	}
	return b
}

// Query answers one fleet query against an aggregate profile.
func (a *Aggregator) Query(ctx context.Context, q Query) (*Response, error) {
	start := time.Now()
	resp, err := a.query(ctx, q)
	if err != nil {
		a.met.queryErrors.Add(1)
		return nil, err
	}
	a.met.queries.Add(1)
	resp.Elapsed = time.Since(start)
	a.met.queryLatency.record(resp.Elapsed)
	return resp, nil
}

func (a *Aggregator) query(ctx context.Context, q Query) (*Response, error) {
	q, focus, cats, err := q.normalize(a.cfg.Profiler.Fragments)
	if err != nil {
		return nil, err
	}
	agg := a.lookup(q.Key(), false)
	if agg == nil {
		return nil, &NotFoundError{Key: q.Key()}
	}

	// The binary: reconstruction walks PCs through the program text,
	// so the service regenerates the same binary the hosts ran.
	w, err := workload.Cached(q.Binary, q.Seed)
	if err != nil {
		return nil, err
	}

	agg.mu.RLock()
	if agg.samples == nil || len(agg.samples.Sigs) == 0 {
		agg.mu.RUnlock()
		return nil, &NotFoundError{Key: q.Key()}
	}
	gen := agg.gen
	resp := &Response{
		Op:           q.Op,
		Key:          q.Key().String(),
		Binary:       q.Binary,
		Group:        q.Group,
		Generation:   gen,
		Hosts:        len(agg.hosts),
		Batches:      agg.batches,
		SampledInsts: agg.samples.Insts,
		Sigs:         len(agg.samples.Sigs),
	}
	if q.Op == OpCalibrate {
		// Calibration never reads the pool — drop the read lock so the
		// (comparatively long) windowed ground-truth run cannot block
		// merges the way fragment reconstruction does.
		agg.mu.RUnlock()
		if err := a.calibrate(ctx, agg, q, cats, resp); err != nil {
			return nil, err
		}
		return resp, nil
	}
	defer agg.mu.RUnlock()

	est, memoized, err := a.estimate(ctx, agg, gen, q, focus, cats, w)
	if err != nil {
		return nil, err
	}
	resp.Memoized = memoized
	resp.Fragments = est.Fragments
	resp.Attempts = est.Attempts
	resp.MatchedFrac = est.MatchedFrac
	switch q.Op {
	case OpCost:
		resp.Value = est.Pct[q.Cats[0]]
		resp.StdErr = est.StdErr[q.Cats[0]]
	case OpICost:
		label := q.Cats[0] + "+" + q.Cats[1]
		resp.Value = est.Pct[label]
		resp.StdErr = est.StdErr[label]
		resp.Interaction = classifyPct(resp.Value)
	case OpBreakdown:
		resp.Pct = est.Pct
		resp.StdErrs = est.StdErr
	}
	return resp, nil
}

// estimate returns the memoized estimate for (generation, focus,
// cats, fragments), running the profiler pipeline over the merged
// pool on a miss. Runs under the aggregate's read lock, so merges
// wait while fragments reconstruct — and the pool cannot shift under
// the profiler.
func (a *Aggregator) estimate(ctx context.Context, agg *aggregate, gen uint64, q Query,
	focus breakdown.Category, cats []breakdown.Category, w *workload.Workload) (*profiler.Estimate, bool, error) {
	ekey := q.estimateKey()
	agg.memoMu.Lock()
	if e, ok := agg.memo[ekey]; ok && e.gen == gen {
		agg.memoMu.Unlock()
		a.met.memoHits.Add(1)
		return e.est, true, nil
	}
	agg.memoMu.Unlock()

	pcfg := a.cfg.Profiler
	pcfg.Fragments = q.Fragments
	p, err := profiler.New(w.Prog, a.cfg.Machine.Graph, agg.samples, pcfg)
	if err != nil {
		return nil, false, err
	}
	est, err := p.AnalyzeCtx(ctx, focus, cats)
	if err != nil {
		return nil, false, err
	}
	a.met.estimates.Add(1)
	agg.memoMu.Lock()
	agg.memo[ekey] = &memoEntry{gen: gen, est: est}
	agg.memoMu.Unlock()
	return est, false, nil
}

// calibrate answers an OpCalibrate query: one windowed ground-truth
// pass folds the base lane plus every requested category's single
// idealization, and the exact cost percentages land in resp.Pct —
// what the sampled fleet estimates for the same categories should
// converge to. Results are memoized per (cats, trace shape),
// generation-independent: the ground truth reads the binary, never
// the sample pool. Runs outside the aggregate's locks.
func (a *Aggregator) calibrate(ctx context.Context, agg *aggregate, q Query,
	cats []breakdown.Category, resp *Response) error {
	ckey := q.calibrateKey()
	agg.memoMu.Lock()
	e, ok := agg.cal[ckey]
	agg.memoMu.Unlock()
	if ok {
		a.met.memoHits.Add(1)
		resp.Memoized = true
		e.fill(resp)
		return nil
	}

	lanes := make([]depgraph.Flags, 0, len(cats)+1)
	lanes = append(lanes, 0)
	for _, c := range cats {
		lanes = append(lanes, c.Flags)
	}
	wres, err := window.Analyze(ctx, window.Request{
		Bench:       q.Binary,
		Seed:        q.Seed,
		TraceLen:    q.TraceLen,
		Warmup:      q.Warmup,
		WindowInsts: q.WindowInsts,
		Sim:         a.cfg.Machine,
	}, lanes)
	if err != nil {
		return err
	}
	pct := make(map[string]float64, len(cats))
	base := float64(wres.Times[0])
	for k, c := range cats {
		pct[c.Name] = float64(wres.Times[0]-wres.Times[k+1]) / base * 100
	}
	e = &calEntry{pct: pct, cycles: wres.Cycles, insts: wres.Insts,
		windows: wres.Windows, peakBytes: wres.PeakBytes}
	a.met.calibrations.Add(1)
	agg.memoMu.Lock()
	agg.cal[ckey] = e
	agg.memoMu.Unlock()
	e.fill(resp)
	return nil
}

func (e *calEntry) fill(resp *Response) {
	resp.Pct = e.pct
	resp.BaseCycles = e.cycles
	resp.AnalyzedInsts = e.insts
	resp.Windows = e.windows
	resp.PeakBytes = e.peakBytes
}

// classifyPct maps an interaction-cost percentage onto the paper's
// trichotomy (§2.2). The estimate is sampled, so a small epsilon
// around zero reads as independent rather than over-interpreting
// noise.
func classifyPct(pct float64) string {
	const eps = 0.05
	switch {
	case pct > eps:
		return "serial"
	case pct < -eps:
		return "parallel"
	default:
		return "independent"
	}
}

// Len reports how many aggregates are live.
func (a *Aggregator) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ll.Len()
}

// Bytes reports the retained sample-pool bytes across aggregates.
func (a *Aggregator) Bytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bytes
}

// Op names a fleet query kind. The fleet surface is the profiler's:
// estimates are percentages of execution time with sampling error
// bars, not exact cycle counts — exactly what §5 hardware can know.
type Op string

const (
	// OpCost: one category's cost as percent of execution time.
	OpCost Op = "cost"
	// OpICost: the interaction cost of a category pair, percent.
	OpICost Op = "icost"
	// OpBreakdown: the focused breakdown over all requested
	// categories (costs plus focus-pair interactions).
	OpBreakdown Op = "breakdown"
	// OpCalibrate: exact per-category cost percentages from a windowed
	// ground-truth analysis of the aggregate's binary — the yardstick
	// the sampled estimates above are judged against. Runs the full
	// trace through the bounded-memory pipeline, so it is exact (no
	// error bars) yet never holds a whole-trace graph resident.
	OpCalibrate Op = "calibrate"
)

// Query is one fleet query: which aggregate, and what to estimate
// over it.
type Query struct {
	Binary string `json:"binary"`
	Seed   uint64 `json:"seed,omitempty"`
	Group  string `json:"group"`
	Op     Op     `json:"op"`
	// Cats meaning depends on Op: cost takes exactly one category,
	// icost exactly two, breakdown any list (empty = the paper's
	// eight base categories).
	Cats []string `json:"cats,omitempty"`
	// Focus is the breakdown focus category (default "dl1").
	Focus string `json:"focus,omitempty"`
	// Fragments overrides how many fragments the estimate stitches
	// (0 = the aggregator's configured default).
	Fragments int `json:"fragments,omitempty"`
	// Calibrate-only trace shape: timed instructions, warmup, and the
	// emission-window size of the windowed ground-truth run (defaults
	// 100000 / 10000 / 4096; ignored and zeroed for other ops).
	TraceLen    int `json:"trace_len,omitempty"`
	Warmup      int `json:"warmup,omitempty"`
	WindowInsts int `json:"window_insts,omitempty"`
}

// Key returns the aggregate the query targets.
func (q Query) Key() Key { return Key{Binary: q.Binary, Seed: q.Seed, Group: q.Group} }

// normalize validates the query, fills defaults, and resolves the
// (focus, cats) pair the underlying estimate is computed over.
func (q Query) normalize(defaultFragments int) (Query, breakdown.Category, []breakdown.Category, error) {
	var focus breakdown.Category
	if q.Binary == "" || q.Group == "" {
		return q, focus, nil, errValidation("fleet: query needs binary and group")
	}
	if q.Seed == 0 {
		q.Seed = 42
	}
	if q.Fragments == 0 {
		q.Fragments = defaultFragments
	}
	if q.Fragments < 1 {
		return q, focus, nil, errValidation("fleet: fragments must be >= 1")
	}
	for _, c := range q.Cats {
		if _, ok := depgraph.FlagByName(c); !ok {
			return q, focus, nil, errValidation("fleet: unknown category %q (have %s)",
				c, strings.Join(depgraph.FlagNames(), ","))
		}
	}
	switch q.Op {
	case OpCost:
		if len(q.Cats) != 1 {
			return q, focus, nil, errValidation("fleet: cost query takes exactly one category")
		}
		q.Focus = q.Cats[0]
	case OpICost:
		if len(q.Cats) != 2 || q.Cats[0] == q.Cats[1] {
			return q, focus, nil, errValidation("fleet: icost query takes exactly two distinct categories")
		}
		q.Focus = q.Cats[0]
	case OpBreakdown:
		if len(q.Cats) == 0 {
			q.Cats = depgraph.FlagNames()
		}
		if q.Focus == "" {
			q.Focus = "dl1"
		}
		if _, ok := depgraph.FlagByName(q.Focus); !ok {
			return q, focus, nil, errValidation("fleet: unknown focus category %q", q.Focus)
		}
	case OpCalibrate:
		if len(q.Cats) == 0 {
			q.Cats = depgraph.FlagNames()
		}
		q.Focus = q.Cats[0] // unused by calibration; pinned for the generic tail below
		if q.TraceLen == 0 {
			q.TraceLen = 100_000
		}
		if q.Warmup == 0 {
			q.Warmup = 10_000
		}
		if q.WindowInsts == 0 {
			q.WindowInsts = 4096
		}
		if q.TraceLen < 1 || q.TraceLen > 1<<30 || q.Warmup < 0 || q.WindowInsts < 1 {
			return q, focus, nil, errValidation("fleet: bad calibration shape trace_len=%d warmup=%d window_insts=%d",
				q.TraceLen, q.Warmup, q.WindowInsts)
		}
	case "":
		return q, focus, nil, errValidation("fleet: query needs an op (cost, icost, breakdown, calibrate)")
	default:
		return q, focus, nil, errValidation("fleet: unknown op %q (have cost, icost, breakdown, calibrate)", q.Op)
	}
	if q.Op != OpCalibrate {
		// The trace shape parameterizes only the ground-truth run; zero
		// it elsewhere so equivalent estimate queries share memo keys.
		q.TraceLen, q.Warmup, q.WindowInsts = 0, 0, 0
	}
	ff, _ := depgraph.FlagByName(q.Focus)
	focus = breakdown.Category{Name: q.Focus, Flags: ff}
	cats := make([]breakdown.Category, 0, len(q.Cats))
	seenFocus := false
	for _, c := range q.Cats {
		f, _ := depgraph.FlagByName(c)
		cats = append(cats, breakdown.Category{Name: c, Flags: f})
		if c == q.Focus {
			seenFocus = true
		}
	}
	if !seenFocus {
		cats = append([]breakdown.Category{focus}, cats...)
	}
	return q, focus, cats, nil
}

// estimateKey identifies the underlying estimate: every op is a view
// over one (focus, cats, fragments) analysis, so a breakdown and the
// cost queries it subsumes share a memo entry when their parameters
// align.
func (q Query) estimateKey() string {
	names := make([]string, 0, len(q.Cats)+1)
	names = append(names, q.Focus)
	names = append(names, q.Cats...)
	return strings.Join(names, ",") + "|" + strconv.Itoa(q.Fragments)
}

// calibrateKey identifies a memoized ground-truth run: the categories
// folded plus the trace shape, independent of the pool generation.
func (q Query) calibrateKey() string {
	return strings.Join(q.Cats, ",") + "|" +
		strconv.Itoa(q.TraceLen) + "|" + strconv.Itoa(q.Warmup) + "|" + strconv.Itoa(q.WindowInsts)
}

// Response is a fleet query result.
type Response struct {
	Op     Op     `json:"op"`
	Key    string `json:"key"`
	Binary string `json:"binary"`
	Group  string `json:"group"`

	// Generation is the aggregate's merge count when the estimate was
	// computed; Memoized reports whether the estimate was served from
	// the per-generation memo.
	Generation uint64 `json:"generation"`
	Memoized   bool   `json:"memoized"`

	// Aggregate shape: distinct hosts, merged batches, total sampled
	// instructions and signature samples in the pool.
	Hosts        int   `json:"hosts"`
	Batches      int64 `json:"batches"`
	SampledInsts int   `json:"sampled_insts"`
	Sigs         int   `json:"sigs"`

	// Value/StdErr answer cost and icost queries (percent of
	// execution time ± standard error); Interaction classifies an
	// icost. Pct/StdErrs carry the full breakdown.
	Value       float64            `json:"value,omitempty"`
	StdErr      float64            `json:"stderr,omitempty"`
	Interaction string             `json:"interaction,omitempty"`
	Pct         map[string]float64 `json:"pct,omitempty"`
	StdErrs     map[string]float64 `json:"stderrs,omitempty"`

	// Estimate quality: fragments analyzed vs attempted and the
	// fraction of instructions filled from a detailed sample.
	Fragments   int     `json:"fragments"`
	Attempts    int     `json:"attempts"`
	MatchedFrac float64 `json:"matched_frac"`

	// Calibrate results: BaseCycles is the ground-truth simulated
	// execution time, AnalyzedInsts/Windows/PeakBytes the windowed
	// run's shape. Pct carries the exact per-category percentages;
	// StdErrs stay empty — the ground truth has no sampling error.
	BaseCycles    int64 `json:"base_cycles,omitempty"`
	AnalyzedInsts int64 `json:"analyzed_insts,omitempty"`
	Windows       int   `json:"windows,omitempty"`
	PeakBytes     int64 `json:"peak_bytes,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns"`
}
