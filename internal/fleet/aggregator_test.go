package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"icost/internal/depgraph"
	"icost/internal/profiler"
)

func TestIngestValidation(t *testing.T) {
	a := NewAggregator(testAggConfig())
	good := hostBatch(t, "gzip", 42, 7)
	ctx := context.Background()

	var verr *ValidationError
	cases := []struct {
		name string
		h    Header
		s    *profiler.Samples
	}{
		{"missing binary", Header{Group: "prod"}, good},
		{"missing group", Header{Binary: "gzip"}, good},
		{"unknown binary", Header{Binary: "nope", Group: "prod"}, good},
		{"empty batch", Header{Binary: "gzip", Group: "prod"}, &profiler.Samples{}},
	}
	for _, c := range cases {
		if err := a.Ingest(ctx, c.h, c.s); !errors.As(err, &verr) {
			t.Errorf("%s: err = %v, want ValidationError", c.name, err)
		}
	}

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := a.Ingest(cctx, Header{Binary: "gzip", Group: "prod"}, good); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v", err)
	}

	if a.Len() != 0 || a.Bytes() != 0 {
		t.Fatalf("rejected batches left state: %d aggregates, %d bytes", a.Len(), a.Bytes())
	}
	if m := a.Metrics(); m.IngestErrorsTotal != int64(len(cases)+1) || m.IngestBatchesTotal != 0 {
		t.Fatalf("metrics after rejects: %+v", m)
	}
}

func TestMergeAndQuery(t *testing.T) {
	a := NewAggregator(testAggConfig())
	ctx := context.Background()

	wantSigs := 0
	for host := 0; host < 2; host++ {
		for b := 0; b < 2; b++ {
			s := hostBatch(t, "gzip", 42, uint64(10+2*host+b))
			wantSigs += len(s.Sigs)
			h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: fmt.Sprintf("host-%02d", host)}
			if err := a.Ingest(ctx, h, s); err != nil {
				t.Fatal(err)
			}
		}
	}

	// cost: a fresh estimate over the merged pool.
	q := Query{Binary: "gzip", Group: "prod", Op: OpCost, Cats: []string{"win"}}
	r1, err := a.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hosts != 2 || r1.Batches != 4 || r1.Generation != 4 || r1.Sigs != wantSigs {
		t.Fatalf("aggregate shape: %+v", r1)
	}
	if r1.Memoized {
		t.Fatal("first query claimed a memo hit")
	}
	if r1.Fragments < 1 || r1.MatchedFrac <= 0 {
		t.Fatalf("estimate quality: %+v", r1)
	}

	// The same query again is a memo hit with identical numbers.
	r2, err := a.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Memoized || r2.Value != r1.Value || r2.StdErr != r1.StdErr {
		t.Fatalf("memo replay: first %+v, second %+v", r1, r2)
	}

	// icost over a pair, classified onto the paper's trichotomy.
	ri, err := a.Query(ctx, Query{Binary: "gzip", Group: "prod", Op: OpICost, Cats: []string{"dl1", "win"}})
	if err != nil {
		t.Fatal(err)
	}
	switch ri.Interaction {
	case "serial", "parallel", "independent":
	default:
		t.Fatalf("icost interaction %q", ri.Interaction)
	}

	// breakdown: all eight base categories plus focus interactions.
	rb, err := a.Query(ctx, Query{Binary: "gzip", Group: "prod", Op: OpBreakdown})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range depgraph.FlagNames() {
		if _, ok := rb.Pct[name]; !ok {
			t.Fatalf("breakdown missing category %q: %v", name, rb.Pct)
		}
	}
	if _, ok := rb.Pct["dl1+win"]; !ok {
		t.Fatalf("breakdown missing focus interaction: %v", rb.Pct)
	}

	// A new ingest bumps the generation and invalidates the memo.
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "host-09"}
	if err := a.Ingest(ctx, h, hostBatch(t, "gzip", 42, 29)); err != nil {
		t.Fatal(err)
	}
	r3, err := a.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Memoized || r3.Generation != 5 || r3.Hosts != 3 {
		t.Fatalf("post-ingest query: %+v", r3)
	}

	// Unpopulated aggregates are not found.
	var nf *NotFoundError
	if _, err := a.Query(ctx, Query{Binary: "gzip", Group: "canary", Op: OpCost, Cats: []string{"win"}}); !errors.As(err, &nf) {
		t.Fatalf("missing group: %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	a := NewAggregator(testAggConfig())
	ctx := context.Background()
	var verr *ValidationError
	bads := []Query{
		{Group: "prod", Op: OpCost, Cats: []string{"win"}},                         // no binary
		{Binary: "gzip", Op: OpCost, Cats: []string{"win"}},                        // no group
		{Binary: "gzip", Group: "prod", Cats: []string{"win"}},                     // no op
		{Binary: "gzip", Group: "prod", Op: "median", Cats: []string{"win"}},       // unknown op
		{Binary: "gzip", Group: "prod", Op: OpCost},                                // cost arity
		{Binary: "gzip", Group: "prod", Op: OpCost, Cats: []string{"a", "b"}},      // cost arity
		{Binary: "gzip", Group: "prod", Op: OpCost, Cats: []string{"warp"}},        // unknown cat
		{Binary: "gzip", Group: "prod", Op: OpICost, Cats: []string{"win"}},        // icost arity
		{Binary: "gzip", Group: "prod", Op: OpICost, Cats: []string{"win", "win"}}, // icost dup
		{Binary: "gzip", Group: "prod", Op: OpBreakdown, Focus: "warp"},            // unknown focus
		{Binary: "gzip", Group: "prod", Op: OpCost, Cats: []string{"win"}, Fragments: -1},
	}
	for i, q := range bads {
		if _, err := a.Query(ctx, q); !errors.As(err, &verr) {
			t.Errorf("bad query %d accepted: %v", i, err)
		}
	}
	if m := a.Metrics(); m.QueryErrorsTotal != int64(len(bads)) {
		t.Fatalf("query error metric: %+v", m)
	}
}

// TestEvictionBound: when ingest pushes the fleet past its byte
// budget, whole aggregates fall out coldest-first and the budget
// holds.
func TestEvictionBound(t *testing.T) {
	ctx := context.Background()
	s := hostBatch(t, "gzip", 42, 7)
	one := sampleBytes(s)
	cfg := testAggConfig()
	cfg.MaxBytes = one + one/2 // room for one aggregate, not two
	a := NewAggregator(cfg)

	if err := a.Ingest(ctx, Header{Binary: "gzip", Seed: 42, Group: "a", Host: "h"}, s); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || a.Bytes() != one {
		t.Fatalf("after first ingest: %d aggregates, %d bytes", a.Len(), a.Bytes())
	}
	if err := a.Ingest(ctx, Header{Binary: "gzip", Seed: 42, Group: "b", Host: "h"}, s); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || a.Bytes() > cfg.MaxBytes {
		t.Fatalf("after second ingest: %d aggregates, %d bytes (budget %d)", a.Len(), a.Bytes(), cfg.MaxBytes)
	}
	if m := a.Metrics(); m.EvictionsTotal != 1 {
		t.Fatalf("evictions: %+v", m)
	}

	// Group a (the cold aggregate) was the one dropped.
	var nf *NotFoundError
	if _, err := a.Query(ctx, Query{Binary: "gzip", Seed: 42, Group: "a", Op: OpCost, Cats: []string{"win"}}); !errors.As(err, &nf) {
		t.Fatalf("evicted aggregate still answers: %v", err)
	}
	if _, err := a.Query(ctx, Query{Binary: "gzip", Seed: 42, Group: "b", Op: OpCost, Cats: []string{"win"}}); err != nil {
		t.Fatalf("surviving aggregate lost: %v", err)
	}

	// Queries refresh recency: touch b, feed a, b must survive the
	// next squeeze... but a single new aggregate over budget evicts
	// down to the budget regardless, so feed a (evicts b) and verify
	// accounting stays exact.
	if err := a.Ingest(ctx, Header{Binary: "gzip", Seed: 42, Group: "a", Host: "h"}, s); err != nil {
		t.Fatal(err)
	}
	if a.Bytes() != one || a.Len() != 1 {
		t.Fatalf("byte accounting drifted: %d bytes, %d aggregates", a.Bytes(), a.Len())
	}
}

func TestConcurrentIngestBounded(t *testing.T) {
	ctx := context.Background()
	batches := []*profiler.Samples{
		hostBatch(t, "gzip", 42, 7),
		hostBatch(t, "gzip", 42, 8),
		hostBatch(t, "gzip", 42, 9),
	}
	one := sampleBytes(batches[0])
	cfg := testAggConfig()
	cfg.MaxBytes = 6 * one
	a := NewAggregator(cfg)

	const hosts = 50
	var wg sync.WaitGroup
	for hid := 0; hid < hosts; hid++ {
		wg.Add(1)
		go func(hid int) {
			defer wg.Done()
			h := Header{
				Binary: "gzip", Seed: 42,
				Group: fmt.Sprintf("g%d", hid%4),
				Host:  fmt.Sprintf("host-%02d", hid),
			}
			for b := 0; b < 3; b++ {
				if err := a.Ingest(ctx, h, batches[(hid+b)%len(batches)]); err != nil {
					t.Errorf("host %d batch %d: %v", hid, b, err)
					return
				}
				// Interleave queries against whatever survives; only
				// hard failures count, NotFound is a legal race with
				// eviction.
				q := Query{Binary: "gzip", Seed: 42, Group: h.Group, Op: OpCost, Cats: []string{"win"}}
				if _, err := a.Query(ctx, q); err != nil {
					var nf *NotFoundError
					if !errors.As(err, &nf) {
						t.Errorf("host %d query: %v", hid, err)
						return
					}
				}
			}
		}(hid)
	}
	wg.Wait()

	if a.Bytes() > cfg.MaxBytes {
		t.Fatalf("retained %d bytes, budget %d", a.Bytes(), cfg.MaxBytes)
	}
	m := a.Metrics()
	if m.IngestBatchesTotal != hosts*3 {
		t.Fatalf("ingest metric: %+v", m)
	}
	if m.AggregateBytes > m.MaxBytes {
		t.Fatalf("snapshot over budget: %+v", m)
	}
}

func TestMetricsSnapshotJSON(t *testing.T) {
	a := NewAggregator(testAggConfig())
	ctx := context.Background()
	if err := a.Ingest(ctx, Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h"}, hostBatch(t, "gzip", 42, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Query(ctx, Query{Binary: "gzip", Group: "prod", Op: OpCost, Cats: []string{"win"}}); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(a.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(raw, &flat); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"fleet_ingest_batches_total", "fleet_evictions_total",
		"fleet_aggregates_live", "fleet_aggregate_bytes",
		"fleet_queries_total", "fleet_estimates_built_total",
		"fleet_query_p99_us",
	} {
		if _, ok := flat[key]; !ok {
			t.Errorf("metrics snapshot missing %q", key)
		}
	}
	m := a.Metrics()
	if m.IngestBatchesTotal != 1 || m.QueriesTotal != 1 || m.EstimatesBuiltTotal != 1 ||
		m.AggregatesLive != 1 || m.HostsSeen != 1 || m.AggregateBytes <= 0 {
		t.Fatalf("snapshot values: %+v", m)
	}
	if m.IngestP50us <= 0 || m.QueryP50us <= 0 {
		t.Fatalf("latency quantiles not recorded: %+v", m)
	}
}

func TestLatencyHist(t *testing.T) {
	var h latencyHist
	if h.quantile(0.5) != 0 {
		t.Fatal("empty hist nonzero quantile")
	}
	for i := 0; i < 100; i++ {
		h.record(100e3) // 100µs -> bucket upper bound 128µs
	}
	if q := h.quantile(0.5); q != 128 {
		t.Fatalf("p50 = %dµs, want 128", q)
	}
	h.record(1 << 40) // absurd duration lands in the overflow bucket
	if q := h.quantile(0.999); q < 128 {
		t.Fatalf("p99.9 = %dµs after overflow record", q)
	}
}
