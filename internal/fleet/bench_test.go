package fleet

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkFleetIngest measures the online merge path: one batch
// staged, byte-accounted, and committed into a live aggregate.
func BenchmarkFleetIngest(b *testing.B) {
	ctx := context.Background()
	s := hostBatch(b, "gzip", 42, 7)
	a := NewAggregator(testAggConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: fmt.Sprintf("host-%03d", i%64)}
		if err := a.Ingest(ctx, h, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetQueryMemoized measures the dashboard steady state:
// the aggregate generation is stable, so every query is a memo hit.
func BenchmarkFleetQueryMemoized(b *testing.B) {
	ctx := context.Background()
	a := NewAggregator(testAggConfig())
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h0"}
	for seed := uint64(7); seed < 10; seed++ {
		if err := a.Ingest(ctx, h, hostBatch(b, "gzip", 42, seed)); err != nil {
			b.Fatal(err)
		}
	}
	q := Query{Binary: "gzip", Seed: 42, Group: "prod", Op: OpBreakdown}
	if _, err := a.Query(ctx, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := a.Query(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Memoized {
			b.Fatal("expected a memo hit")
		}
	}
}

// BenchmarkFleetQueryCold measures a full estimate build — fragment
// reconstruction and analysis over the merged pool — by wiping the
// memo between iterations.
func BenchmarkFleetQueryCold(b *testing.B) {
	ctx := context.Background()
	a := NewAggregator(testAggConfig())
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h0"}
	for seed := uint64(7); seed < 10; seed++ {
		if err := a.Ingest(ctx, h, hostBatch(b, "gzip", 42, seed)); err != nil {
			b.Fatal(err)
		}
	}
	q := Query{Binary: "gzip", Seed: 42, Group: "prod", Op: OpBreakdown}
	agg := a.lookup(Key{Binary: "gzip", Seed: 42, Group: "prod"}, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		agg.memoMu.Lock()
		clear(agg.memo)
		agg.memoMu.Unlock()
		b.StartTimer()
		r, err := a.Query(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if r.Memoized {
			b.Fatal("memo should have been wiped")
		}
	}
}
