package fleet

import (
	"context"
	"testing"

	"icost/internal/engine"
)

// TestMemoizedQueryTracksEngineWarmPath is the `make ci` no-regression
// guard behind bench-fleet: the fleet's memoized query path serves the
// same dashboard role as the engine's warm (result-cached) query path,
// so it must stay in the same performance class. The factor is
// deliberately generous — this is a canary for the routing layer
// growing accidental per-query work (a lost memo hit re-runs a full
// multi-second reconstruction), not a microbenchmark, and it only
// trips when the fleet path is both far slower than the engine's and
// slow in absolute terms.
func TestMemoizedQueryTracksEngineWarmPath(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	ctx := context.Background()

	e := engine.New(engine.Config{Workers: 1})
	defer e.Close()
	eq := engine.Query{
		Session: engine.SessionSpec{Bench: "gzip", Seed: 7, TraceLen: 2000, Warmup: 1000},
		Op:      engine.OpCost,
		Cats:    []string{"dl1"},
	}
	if _, err := e.Query(ctx, eq); err != nil { // cold build + cache fill
		t.Fatal(err)
	}
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Query(ctx, eq); err != nil {
				b.Fatal(err)
			}
		}
	})

	a := NewAggregator(testAggConfig())
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h0"}
	if err := a.Ingest(ctx, h, hostBatch(t, "gzip", 42, 7)); err != nil {
		t.Fatal(err)
	}
	fq := Query{Binary: "gzip", Seed: 42, Group: "prod", Op: OpBreakdown}
	if _, err := a.Query(ctx, fq); err != nil { // memo fill
		t.Fatal(err)
	}
	memo := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := a.Query(ctx, fq)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Memoized {
				b.Fatal("expected a memo hit")
			}
		}
	})

	const (
		factor  = 50        // same performance class, with ample noise headroom
		floorNs = 1_000_000 // and never flag a path that is fast in absolute terms
	)
	if memo.NsPerOp() > factor*warm.NsPerOp() && memo.NsPerOp() > floorNs {
		t.Fatalf("fleet memoized query regressed: %d ns/op vs engine warm %d ns/op (allowed %dx)",
			memo.NsPerOp(), warm.NsPerOp(), factor)
	}
	t.Logf("fleet memoized %d ns/op, engine warm %d ns/op", memo.NsPerOp(), warm.NsPerOp())
}
