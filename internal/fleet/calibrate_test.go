package fleet

import (
	"context"
	"errors"
	"testing"

	"icost/internal/breakdown"
	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/workload"
)

// TestCalibrateGroundTruth: a calibrate query returns the exact
// per-category cost percentages a whole-graph analysis of the same
// trace yields — the yardstick the fleet's sampled estimates are
// judged against — and memoizes across pool generations.
func TestCalibrateGroundTruth(t *testing.T) {
	ctx := context.Background()
	a := NewAggregator(Config{})
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h0"}
	if err := a.Ingest(ctx, h, hostBatch(t, "gzip", 42, 7)); err != nil {
		t.Fatal(err)
	}

	q := Query{Binary: "gzip", Seed: 42, Group: "prod", Op: OpCalibrate,
		TraceLen: 3000, Warmup: 300, WindowInsts: 256}
	resp, err := a.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Memoized {
		t.Fatal("first calibration memoized")
	}
	if len(resp.Pct) != depgraph.NumFlags || len(resp.StdErrs) != 0 {
		t.Fatalf("pct has %d entries, stderrs %d", len(resp.Pct), len(resp.StdErrs))
	}
	if resp.AnalyzedInsts != int64(q.TraceLen) || resp.Windows != (q.TraceLen+q.WindowInsts-1)/q.WindowInsts {
		t.Fatalf("shape: insts %d windows %d", resp.AnalyzedInsts, resp.Windows)
	}
	if resp.BaseCycles <= 0 || resp.PeakBytes <= 0 {
		t.Fatalf("base cycles %d, peak bytes %d", resp.BaseCycles, resp.PeakBytes)
	}

	// The ground truth, computed the expensive way: whole-trace graph,
	// batched evaluation of every single-category idealization.
	w, err := workload.Cached("gzip", 42)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Execute(q.Warmup+q.TraceLen, q.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{KeepGraph: true, Warmup: q.Warmup})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != resp.BaseCycles {
		t.Fatalf("base cycles %d, whole-graph %d", resp.BaseCycles, res.Cycles)
	}
	cats := make([]breakdown.Category, 0, depgraph.NumFlags)
	ids := []depgraph.Ideal{{}}
	for _, name := range depgraph.FlagNames() {
		f, _ := depgraph.FlagByName(name)
		cats = append(cats, breakdown.Category{Name: name, Flags: f})
		ids = append(ids, depgraph.Ideal{Global: f})
	}
	times, err := res.Graph.EvalBatch(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	base := float64(times[0])
	for k, c := range cats {
		want := float64(times[0]-times[k+1]) / base * 100
		if got := resp.Pct[c.Name]; got != want {
			t.Fatalf("%s: calibrated %v%%, whole-graph %v%%", c.Name, got, want)
		}
	}

	// Second query: memoized, no new ground-truth run.
	resp2, err := a.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Memoized {
		t.Fatal("second calibration not memoized")
	}
	// Generation independence: a merge bumps the pool generation, but
	// the ground truth never read the pool, so the memo survives.
	if err := a.Ingest(ctx, h, hostBatch(t, "gzip", 42, 8)); err != nil {
		t.Fatal(err)
	}
	resp3, err := a.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp3.Memoized {
		t.Fatal("calibration recomputed after merge")
	}
	if m := a.Metrics(); m.CalibrationsTotal != 1 {
		t.Fatalf("calibrations %d, want 1", m.CalibrationsTotal)
	}

	// A different trace shape is a different ground truth.
	q2 := q
	q2.WindowInsts = 512
	resp4, err := a.Query(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	if resp4.Memoized {
		t.Fatal("different shape served from memo")
	}
	for name, v := range resp.Pct {
		if resp4.Pct[name] != v {
			t.Fatalf("%s: window size changed the exact answer: %v vs %v", name, resp4.Pct[name], v)
		}
	}
}

// TestCalibrateValidation pins the calibrate query contract.
func TestCalibrateValidation(t *testing.T) {
	ctx := context.Background()
	a := NewAggregator(Config{})
	var verr *ValidationError
	if _, err := a.Query(ctx, Query{Binary: "gzip", Group: "prod", Op: OpCalibrate, Warmup: -1}); !errors.As(err, &verr) {
		t.Fatalf("negative warmup: %v", err)
	}
	if _, err := a.Query(ctx, Query{Binary: "gzip", Group: "prod", Op: OpCalibrate, Cats: []string{"nope"}}); !errors.As(err, &verr) {
		t.Fatalf("unknown category: %v", err)
	}
	// Calibration requires the aggregate to exist: it is a comparison
	// point for fleet estimates, not a standalone analysis service.
	var nf *NotFoundError
	if _, err := a.Query(ctx, Query{Binary: "gzip", Group: "prod", Op: OpCalibrate}); !errors.As(err, &nf) {
		t.Fatalf("missing aggregate: %v", err)
	}
}
