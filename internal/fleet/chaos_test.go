package fleet

import (
	"context"
	"errors"
	"testing"

	"icost/internal/faultinject"
)

var errChaos = errors.New("chaos: injected fault")

// TestChaosFleetMergeTransactional kills a merge mid-flight: the
// fault fires after the batch is staged, inside the aggregate's
// critical section, and the aggregate must come out exactly as it
// went in — same generation, batches, bytes, and query answers.
func TestChaosFleetMergeTransactional(t *testing.T) {
	defer faultinject.Disable()
	faultinject.Disable()

	ctx := context.Background()
	a := NewAggregator(testAggConfig())
	s := hostBatch(t, "gzip", 42, 7)
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h0"}
	if err := a.Ingest(ctx, h, s); err != nil {
		t.Fatal(err)
	}
	q := Query{Binary: "gzip", Seed: 42, Group: "prod", Op: OpCost, Cats: []string{"win"}}
	before, err := a.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	bytesBefore := a.Bytes()

	faultinject.Enable(1, faultinject.Rule{Point: faultinject.FleetMerge, Err: errChaos})
	if err := a.Ingest(ctx, h, hostBatch(t, "gzip", 42, 8)); !errors.Is(err, errChaos) {
		t.Fatalf("merge fault not surfaced: %v", err)
	}
	faultinject.Disable()

	after, err := a.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation != before.Generation || after.Batches != before.Batches ||
		after.Sigs != before.Sigs || a.Bytes() != bytesBefore {
		t.Fatalf("killed merge mutated the aggregate: before %+v (%d bytes), after %+v (%d bytes)",
			before, bytesBefore, after, a.Bytes())
	}
	if !after.Memoized || after.Value != before.Value {
		t.Fatalf("killed merge invalidated the memo: %+v vs %+v", before, after)
	}

	// The aggregate keeps accepting merges once the fault clears.
	if err := a.Ingest(ctx, h, hostBatch(t, "gzip", 42, 8)); err != nil {
		t.Fatal(err)
	}
	if r, err := a.Query(ctx, q); err != nil || r.Generation != before.Generation+1 {
		t.Fatalf("post-chaos ingest: %+v, %v", r, err)
	}
}

// TestChaosFleetIngestStorm drives a seeded probabilistic fault mix
// through the whole ingest path and checks the aggregate's books
// balance: every committed batch is counted exactly once, every
// failed one not at all.
func TestChaosFleetIngestStorm(t *testing.T) {
	defer faultinject.Disable()
	ctx := context.Background()
	a := NewAggregator(testAggConfig())
	s := hostBatch(t, "gzip", 42, 7)
	one := sampleBytes(s)
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h0"}

	faultinject.Enable(42,
		faultinject.Rule{Point: faultinject.FleetIngest, Err: errChaos, Prob: 0.3},
		faultinject.Rule{Point: faultinject.FleetMerge, Err: errChaos, Prob: 0.3},
	)
	committed := 0
	for i := 0; i < 64; i++ {
		if err := a.Ingest(ctx, h, s); err == nil {
			committed++
		} else if !errors.Is(err, errChaos) {
			t.Fatalf("ingest %d: unexpected error %v", i, err)
		}
	}
	faultinject.Disable()

	if committed == 0 || committed == 64 {
		t.Fatalf("fault mix fired degenerately: %d/64 committed", committed)
	}
	if got := a.Bytes(); got != int64(committed)*one {
		t.Fatalf("books: %d bytes retained, want %d batches x %d", got, committed, one)
	}
	m := a.Metrics()
	if m.IngestBatchesTotal != int64(committed) || m.IngestErrorsTotal != int64(64-committed) {
		t.Fatalf("metrics books: %+v (committed %d)", m, committed)
	}
	r, err := a.Query(ctx, Query{Binary: "gzip", Seed: 42, Group: "prod", Op: OpCost, Cats: []string{"win"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Batches != int64(committed) || r.Generation != uint64(committed) {
		t.Fatalf("query sees %d batches gen %d, want %d", r.Batches, r.Generation, committed)
	}
}

// TestChaosFleetIngestCancel: a cancel fault at the ingest point
// severs the request context and the ingest reports cancellation, not
// a partial merge.
func TestChaosFleetIngestCancel(t *testing.T) {
	defer faultinject.Disable()
	faultinject.Enable(1, faultinject.Rule{Point: faultinject.FleetIngest, Cancel: true})
	a := NewAggregator(testAggConfig())
	ctx, cancel := faultinject.WithCancel(context.Background())
	defer cancel()
	err := a.Ingest(ctx, Header{Binary: "gzip", Group: "prod"}, hostBatch(t, "gzip", 42, 7))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault returned %v", err)
	}
	if a.Len() != 0 {
		t.Fatal("canceled ingest created an aggregate")
	}
}
