// Package fleet is the multi-tenant data plane of the analysis
// service: it turns the paper's shotgun profiler (Section 5) from an
// in-process sampler into a fleet service. The §5 design is explicit
// about the deployment shape — performance-monitoring hardware cheap
// enough to run on *every* production machine, emitting lossy
// signature/detailed samples that software stitches post-mortem.
// This package is the post-mortem side at fleet scale:
//
//   - many hosts stream batched profiler.Samples (the binary framing
//     of profiler.WriteSamples, wrapped in a versioned stream header
//     naming the binary and host group) to an ingestion endpoint;
//   - an online Aggregator merges batches per (binary, seed,
//     host-group) key into a growing sample pool with bounded memory:
//     a byte-budgeted LRU evicts whole aggregates when the fleet's
//     retained samples exceed the budget (lossy collection is the §5
//     contract, so dropping the coldest aggregate is honest);
//   - fleet queries answer cost / icost / breakdown against the
//     *aggregate* profile by running the unmodified reconstruction
//     and analysis pipeline (profiler.New + AnalyzeCtx) over the
//     merged pool — the same estimator that runs on one machine's
//     samples runs on a million machines' worth, with the estimate
//     memoized per aggregate generation so a hot dashboard does not
//     re-stitch fragments on every refresh.
//
// cmd/icostd serves the data plane over HTTP (/ingest, /query with a
// "fleet" target) and cmd/icostfeed is the load generator that drives
// it.
package fleet

import "fmt"

// Key identifies one aggregate profile. A "binary" in this repository
// is a generated benchmark program, so its identity is the benchmark
// name plus the generation seed; Group partitions the fleet the way a
// real deployment would (rack, region, release ring) so regressions
// localized to one slice of the fleet stay visible in its aggregate.
type Key struct {
	Binary string
	Seed   uint64
	Group  string
}

// String renders the key as "binary@seed/group".
func (k Key) String() string {
	return fmt.Sprintf("%s@%d/%s", k.Binary, k.Seed, k.Group)
}

// ValidationError marks a malformed ingest header or fleet query —
// the client's fault, mapped to 400 by icostd.
type ValidationError struct{ msg string }

func (e *ValidationError) Error() string { return e.msg }

func errValidation(format string, args ...any) *ValidationError {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// NotFoundError reports a fleet query against an aggregate no host
// has populated (or that the byte budget evicted), mapped to 404.
type NotFoundError struct{ Key Key }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("fleet: no aggregate for %s", e.Key)
}
