package fleet

import (
	"fmt"
	"sync"
	"testing"

	"icost/internal/ooo"
	"icost/internal/profiler"
	"icost/internal/workload"
)

// testProfCfg is a small, fast profiler configuration shared by the
// collection side (tests standing in for hosts) and the aggregator.
func testProfCfg() profiler.Config {
	return profiler.Config{
		SigLen:         200,
		SigInterval:    97,
		DetailInterval: 3,
		Context:        10,
		Fragments:      8,
		SignatureBits:  2,
		Seed:           1,
	}
}

func testAggConfig() Config {
	return Config{
		MaxBytes: 1 << 30,
		Profiler: testProfCfg(),
		Machine:  ooo.DefaultConfig(),
	}
}

// batchCache memoizes collected sample batches: simulating a host is
// the expensive part of these tests, and every test wants the same
// few batches.
var batchCache = struct {
	sync.Mutex
	m map[string]*profiler.Samples
}{m: map[string]*profiler.Samples{}}

// hostBatch simulates one host's run of bench@seed and collects its
// sample batch. traceSeed varies the execution so different "hosts"
// observe different dynamic paths of the same binary.
func hostBatch(tb testing.TB, bench string, seed, traceSeed uint64) *profiler.Samples {
	tb.Helper()
	const n, warmup = 6000, 2000
	key := fmt.Sprintf("%s@%d/%d", bench, seed, traceSeed)
	batchCache.Lock()
	defer batchCache.Unlock()
	if s, ok := batchCache.m[key]; ok {
		return s
	}
	w, err := workload.Cached(bench, seed)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := w.Execute(warmup+n, traceSeed)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := ooo.Simulate(tr, ooo.DefaultConfig(), ooo.Options{KeepGraph: true, Warmup: warmup})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := testProfCfg()
	cfg.Seed = traceSeed
	s, err := profiler.Collect(tr, res.Graph, warmup, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	batchCache.m[key] = s
	return s
}
