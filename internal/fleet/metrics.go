package fleet

import (
	"sync/atomic"
	"time"
)

// histBuckets matches the engine's latency histogram shape: bucket i
// counts durations in [2^i, 2^(i+1)) microseconds, with the last
// bucket absorbing everything from 2^26µs (~67s) up. Quantiles are
// bucket upper bounds, clamped to the honest overflow lower bound.
const histBuckets = 27

// latencyHist is a lock-free log-scaled histogram (one atomic
// increment to record).
type latencyHist struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
}

func (h *latencyHist) record(d time.Duration) {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
	h.total.Add(1)
}

// quantile estimates the q-quantile in microseconds (0 when nothing
// was recorded). Not atomic across buckets; fine for monitoring.
func (h *latencyHist) quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.counts[b].Load()
		if seen > rank {
			if b == histBuckets-1 {
				return int64(1) << uint(b)
			}
			return int64(1) << uint(b+1)
		}
	}
	return int64(1) << uint(histBuckets-1)
}

// metrics is the aggregator's observability state — atomics only, the
// ingest hot path never takes a lock to count.
type metrics struct {
	ingestBatches atomic.Int64
	ingestSigs    atomic.Int64
	ingestDetails atomic.Int64
	ingestInsts   atomic.Int64
	ingestErrors  atomic.Int64
	evictions     atomic.Int64

	queries      atomic.Int64
	queryErrors  atomic.Int64
	estimates    atomic.Int64
	memoHits     atomic.Int64
	calibrations atomic.Int64

	ingestLatency latencyHist
	queryLatency  latencyHist
}

// Snapshot is the aggregator's point-in-time metrics export, served
// by icostd under the /metrics "fleet" section (flat JSON, counters
// with conventional _total suffixes).
type Snapshot struct {
	IngestBatchesTotal int64 `json:"fleet_ingest_batches_total"`
	IngestSigsTotal    int64 `json:"fleet_ingest_sigs_total"`
	IngestDetailsTotal int64 `json:"fleet_ingest_details_total"`
	IngestInstsTotal   int64 `json:"fleet_ingest_insts_total"`
	IngestErrorsTotal  int64 `json:"fleet_ingest_errors_total"`
	// EvictionsTotal counts whole aggregates dropped to hold the
	// fleet's byte budget.
	EvictionsTotal int64 `json:"fleet_evictions_total"`

	QueriesTotal     int64 `json:"fleet_queries_total"`
	QueryErrorsTotal int64 `json:"fleet_query_errors_total"`
	// EstimatesBuiltTotal counts full profiler analyses over merged
	// pools; MemoHitsTotal counts queries served from a generation's
	// memoized estimate without re-stitching fragments.
	EstimatesBuiltTotal int64 `json:"fleet_estimates_built_total"`
	MemoHitsTotal       int64 `json:"fleet_estimate_memo_hits_total"`
	// CalibrationsTotal counts windowed ground-truth analyses run by
	// calibrate queries (memo hits excluded).
	CalibrationsTotal int64 `json:"fleet_calibrations_total"`

	AggregatesLive int   `json:"fleet_aggregates_live"`
	AggregateBytes int64 `json:"fleet_aggregate_bytes"`
	MaxBytes       int64 `json:"fleet_aggregate_max_bytes"`
	HostsSeen      int   `json:"fleet_hosts_seen"`

	IngestP50us int64 `json:"fleet_ingest_p50_us"`
	IngestP95us int64 `json:"fleet_ingest_p95_us"`
	IngestP99us int64 `json:"fleet_ingest_p99_us"`
	QueryP50us  int64 `json:"fleet_query_p50_us"`
	QueryP95us  int64 `json:"fleet_query_p95_us"`
	QueryP99us  int64 `json:"fleet_query_p99_us"`
}

// Metrics snapshots the aggregator's observability state.
func (a *Aggregator) Metrics() Snapshot {
	a.mu.Lock()
	live := a.ll.Len()
	bytes := a.bytes
	hosts := 0
	for el := a.ll.Front(); el != nil; el = el.Next() {
		agg := el.Value.(*aggregate)
		agg.mu.RLock()
		hosts += len(agg.hosts)
		agg.mu.RUnlock()
	}
	a.mu.Unlock()
	return Snapshot{
		IngestBatchesTotal: a.met.ingestBatches.Load(),
		IngestSigsTotal:    a.met.ingestSigs.Load(),
		IngestDetailsTotal: a.met.ingestDetails.Load(),
		IngestInstsTotal:   a.met.ingestInsts.Load(),
		IngestErrorsTotal:  a.met.ingestErrors.Load(),
		EvictionsTotal:     a.met.evictions.Load(),

		QueriesTotal:        a.met.queries.Load(),
		QueryErrorsTotal:    a.met.queryErrors.Load(),
		EstimatesBuiltTotal: a.met.estimates.Load(),
		MemoHitsTotal:       a.met.memoHits.Load(),
		CalibrationsTotal:   a.met.calibrations.Load(),

		AggregatesLive: live,
		AggregateBytes: bytes,
		MaxBytes:       a.cfg.MaxBytes,
		HostsSeen:      hosts,

		IngestP50us: a.met.ingestLatency.quantile(0.50),
		IngestP95us: a.met.ingestLatency.quantile(0.95),
		IngestP99us: a.met.ingestLatency.quantile(0.99),
		QueryP50us:  a.met.queryLatency.quantile(0.50),
		QueryP95us:  a.met.queryLatency.quantile(0.95),
		QueryP99us:  a.met.queryLatency.quantile(0.99),
	}
}
