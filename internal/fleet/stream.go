package fleet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"icost/internal/profiler"
)

// Binary ingestion stream: what a host's collection agent ships to
// the service. The payload reuses the profiler's sample framing
// (WriteSamples/ReadSamples) unchanged — each batch is one PMU buffer
// drain — wrapped in a versioned stream header that names the binary
// and the host, so collection agents and the service can evolve
// independently of the sample format.
//
//	magic  "ICFS" + version byte
//	header binary name, seed, host group, host id (uvarint-length strings)
//	record 'B' + uvarint payload length + WriteSamples payload   (repeated)
//	record 'E' + uvarint batch count                             (trailer)
//
// The trailer's batch count lets the reader distinguish a complete
// stream from one truncated mid-flight (a host that died while
// sending); truncated streams keep every batch that arrived whole —
// lossy collection is the §5 contract.

// Stream format versions. A new version needs a constant here AND a
// dispatch case in ReadStream — codecver enforces both, and that the
// writer stamps the newest version.
//
//lint:codec icfs
const (
	streamVersion1       = 1 // initial wire format
	streamVersionCurrent = streamVersion1
)

// streamMagic is the header every written stream starts with: the
// four ICFS bytes plus the current format version.
//
//lint:codec-encode icfs
var streamMagic = [5]byte{'I', 'C', 'F', 'S', streamVersionCurrent}

const (
	recBatch = 'B'
	recEnd   = 'E'

	// maxNameLen bounds the header strings; maxBatchLen bounds one
	// batch's encoded payload (64 MiB is far beyond any real PMU
	// drain).
	maxNameLen  = 1 << 12
	maxBatchLen = 1 << 26
)

// Header names the stream's origin: which binary the samples observe,
// which slice of the fleet sent them, and which host.
type Header struct {
	Binary string
	Seed   uint64
	Group  string
	Host   string
}

// Key returns the aggregate key the stream's batches merge into.
func (h Header) Key() Key { return Key{Binary: h.Binary, Seed: h.Seed, Group: h.Group} }

// validate rejects malformed headers before any batch is parsed.
func (h Header) validate() error {
	switch {
	case h.Binary == "":
		return errValidation("fleet: stream header needs a binary name")
	case h.Group == "":
		return errValidation("fleet: stream header needs a host group")
	case len(h.Binary) > maxNameLen || len(h.Group) > maxNameLen || len(h.Host) > maxNameLen:
		return errValidation("fleet: stream header string exceeds %d bytes", maxNameLen)
	}
	return nil
}

// StreamWriter frames sample batches onto one ingestion stream.
type StreamWriter struct {
	w       *bufio.Writer
	buf     bytes.Buffer
	batches int
	closed  bool
}

// NewStreamWriter writes the stream header and returns a writer ready
// for batches. Close writes the trailer.
func NewStreamWriter(w io.Writer, h Header) (*StreamWriter, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic[:]); err != nil {
		return nil, err
	}
	writeString(bw, h.Binary)
	putUvarint(bw, h.Seed)
	writeString(bw, h.Group)
	writeString(bw, h.Host)
	return &StreamWriter{w: bw}, nil
}

// WriteBatch frames one sample batch.
func (sw *StreamWriter) WriteBatch(s *profiler.Samples) error {
	if sw.closed {
		return fmt.Errorf("fleet: WriteBatch after Close")
	}
	sw.buf.Reset()
	if err := profiler.WriteSamples(&sw.buf, s); err != nil {
		return err
	}
	if sw.buf.Len() > maxBatchLen {
		return fmt.Errorf("fleet: batch of %d bytes exceeds %d", sw.buf.Len(), maxBatchLen)
	}
	sw.w.WriteByte(recBatch)
	putUvarint(sw.w, uint64(sw.buf.Len()))
	if _, err := sw.w.Write(sw.buf.Bytes()); err != nil {
		return err
	}
	sw.batches++
	return nil
}

// Close writes the trailer and flushes. The writer is unusable after.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	sw.w.WriteByte(recEnd)
	putUvarint(sw.w, uint64(sw.batches))
	return sw.w.Flush()
}

// WriteStream is the one-shot convenience: header, every batch, and
// the trailer in one call.
func WriteStream(w io.Writer, h Header, batches []*profiler.Samples) error {
	sw, err := NewStreamWriter(w, h)
	if err != nil {
		return err
	}
	for _, s := range batches {
		if err := sw.WriteBatch(s); err != nil {
			return err
		}
	}
	return sw.Close()
}

// ReadStream decodes an ingestion stream, invoking fn with the
// stream's header and each batch as it arrives (streaming — the whole
// stream is never buffered). It returns the header, the number of
// complete batches delivered, and the first error: a fn error aborts
// the stream, a truncation after at least one whole batch is reported
// alongside the batches already delivered. The header is valid
// whenever err is nil or the failure happened after the header
// parsed.
func ReadStream(r io.Reader, fn func(Header, *profiler.Samples) error) (Header, int, error) {
	br := bufio.NewReader(r)
	h, err := readHeader(br)
	if err != nil {
		return h, 0, err
	}

	n := 0
	for {
		rec, err := br.ReadByte()
		if err != nil {
			return h, n, fmt.Errorf("fleet: stream truncated after %d batches: %w", n, err)
		}
		switch rec {
		case recBatch:
			plen, err := getUvarint(br, maxBatchLen)
			if err != nil {
				return h, n, err
			}
			lr := io.LimitReader(br, int64(plen))
			s, err := profiler.ReadSamples(lr)
			if err != nil {
				return h, n, fmt.Errorf("fleet: batch %d: %w", n, err)
			}
			// Realign to the frame boundary: the decoder's internal
			// buffering may leave frame bytes unconsumed in lr.
			if _, err := io.Copy(io.Discard, lr); err != nil {
				return h, n, fmt.Errorf("fleet: batch %d: %w", n, err)
			}
			// A frame must be exactly the canonical encoding of its
			// batch — a longer frame means slack bytes the decoder
			// silently ignored (length and payload disagree).
			var cw countWriter
			if err := profiler.WriteSamples(&cw, s); err != nil {
				return h, n, fmt.Errorf("fleet: batch %d: %w", n, err)
			}
			if cw.n != int64(plen) {
				return h, n, errValidation("fleet: batch %d: frame is %d bytes, canonical encoding is %d",
					n, plen, cw.n)
			}
			if err := fn(h, s); err != nil {
				return h, n, err
			}
			n++
		case recEnd:
			want, err := getUvarint(br, 1<<32)
			if err != nil {
				return h, n, err
			}
			if int(want) != n {
				return h, n, errValidation("fleet: trailer says %d batches, stream carried %d", want, n)
			}
			return h, n, nil
		default:
			return h, n, errValidation("fleet: unknown record type %#x", rec)
		}
	}
}

// readHeader decodes the stream magic, version and header from br,
// leaving it positioned at the first record byte. Both ReadStream and
// PeekHeader enter the format through it, so the version dispatch
// lives here.
//
//lint:codec-decode icfs
func readHeader(br *bufio.Reader) (Header, error) {
	var h Header
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return h, errValidation("fleet: reading stream magic: %v", err)
	}
	if [4]byte{magic[0], magic[1], magic[2], magic[3]} != [4]byte{'I', 'C', 'F', 'S'} {
		return h, errValidation("fleet: bad stream magic %q", magic[:4])
	}
	switch magic[4] {
	case streamVersion1:
	default:
		return h, errValidation("fleet: unsupported stream version %d", magic[4])
	}
	var err error
	if h.Binary, err = readString(br); err != nil {
		return h, err
	}
	if h.Seed, err = getUvarint(br, 1<<63); err != nil {
		return h, err
	}
	if h.Group, err = readString(br); err != nil {
		return h, err
	}
	if h.Host, err = readString(br); err != nil {
		return h, err
	}
	if err := h.validate(); err != nil {
		return h, err
	}
	return h, nil
}

// PeekHeader decodes just the stream header from r without touching
// any batch payload. The sharding router uses it to pick the backend
// an /ingest body belongs to — the aggregate key is in the header, so
// routing never pays for sample decoding — before forwarding the
// unconsumed bytes verbatim.
func PeekHeader(r io.Reader) (Header, error) {
	return readHeader(bufio.NewReader(r))
}

// countWriter measures a canonical re-encoding without keeping it.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func writeString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := getUvarint(r, maxNameLen)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("fleet: reading header string: %w", err)
	}
	return string(b), nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func getUvarint(r *bufio.Reader, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("fleet: reading varint: %w", err)
	}
	if v > max {
		return 0, errValidation("fleet: field %d exceeds bound %d", v, max)
	}
	return v, nil
}
