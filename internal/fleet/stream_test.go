package fleet

import (
	"bufio"
	"bytes"
	"errors"
	"testing"

	"icost/internal/profiler"
)

func TestStreamRoundTrip(t *testing.T) {
	batches := []*profiler.Samples{
		hostBatch(t, "gzip", 42, 7),
		hostBatch(t, "gzip", 42, 8),
	}
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "host-00"}
	var buf bytes.Buffer
	if err := WriteStream(&buf, h, batches); err != nil {
		t.Fatal(err)
	}

	var got []*profiler.Samples
	gh, n, err := ReadStream(bytes.NewReader(buf.Bytes()), func(hh Header, s *profiler.Samples) error {
		got = append(got, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gh != h {
		t.Fatalf("header round-trip: got %+v, want %+v", gh, h)
	}
	if n != len(batches) || len(got) != len(batches) {
		t.Fatalf("delivered %d batches (fn saw %d), want %d", n, len(got), len(batches))
	}
	// WriteSamples is deterministic (sorted PC order), so comparing
	// re-encodings is an exact semantic round-trip check that ignores
	// nil-vs-empty slice normalization in the decoder.
	enc := func(s *profiler.Samples) []byte {
		var b bytes.Buffer
		if err := profiler.WriteSamples(&b, s); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	for i := range batches {
		if !bytes.Equal(enc(got[i]), enc(batches[i])) {
			t.Fatalf("batch %d did not round-trip", i)
		}
	}
}

// TestPeekHeader: the router's routing peek decodes exactly the
// header — O(header), not O(stream) — agrees with ReadStream, and the
// peeked-at bytes remain a fully readable stream (the router forwards
// the body verbatim after peeking a copy).
func TestPeekHeader(t *testing.T) {
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "host-07"}
	var buf bytes.Buffer
	if err := WriteStream(&buf, h, []*profiler.Samples{hostBatch(t, "gzip", 42, 7)}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	got, err := PeekHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("PeekHeader = %+v, want %+v", got, h)
	}
	if got.Key() != h.Key() {
		t.Fatalf("peeked key %v, want %v", got.Key(), h.Key())
	}

	// The peek must not require the payload: the header alone, with
	// every batch byte chopped off, still peeks.
	rh, _, err := ReadStream(bytes.NewReader(raw), func(Header, *profiler.Samples) error { return nil })
	if err != nil || rh != h {
		t.Fatalf("full read after peek: header %+v, err %v", rh, err)
	}
	for cut := len(raw) - 1; cut > 64; cut /= 2 {
		if _, err := PeekHeader(bytes.NewReader(raw[:cut])); err != nil {
			t.Fatalf("peek of %d-byte prefix failed: %v", cut, err)
		}
	}

	// Garbage is a clean error, not a panic.
	if _, err := PeekHeader(bytes.NewReader([]byte("not a stream"))); err == nil {
		t.Fatal("PeekHeader accepted garbage")
	}
}

func TestStreamHeaderValidation(t *testing.T) {
	s := hostBatch(t, "gzip", 42, 7)
	bads := []Header{
		{Binary: "", Group: "prod"},
		{Binary: "gzip", Group: ""},
		{Binary: string(make([]byte, maxNameLen+1)), Group: "prod"},
	}
	for i, h := range bads {
		if _, err := NewStreamWriter(&bytes.Buffer{}, h); err == nil {
			t.Errorf("writer accepted bad header %d: %+v", i, h)
		}
		// The read side enforces the same rules on hand-built streams.
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		bw.Write(streamMagic[:])
		writeString(bw, h.Binary)
		putUvarint(bw, h.Seed)
		writeString(bw, h.Group)
		writeString(bw, h.Host)
		bw.Flush()
		var verr *ValidationError
		if _, _, err := ReadStream(&buf, drop); !errors.As(err, &verr) {
			t.Errorf("reader accepted bad header %d: err=%v", i, err)
		}
	}
	_ = s
}

func drop(Header, *profiler.Samples) error { return nil }

func TestStreamBadMagic(t *testing.T) {
	var verr *ValidationError
	if _, _, err := ReadStream(bytes.NewReader([]byte("ICFS\x02xxxx")), drop); !errors.As(err, &verr) {
		t.Fatalf("wrong version accepted: %v", err)
	}
	if _, _, err := ReadStream(bytes.NewReader([]byte("NOPE")), drop); !errors.As(err, &verr) {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

// TestStreamTruncation cuts a valid two-batch stream at every 11th
// byte: a truncated stream must always error, and must never claim
// more complete batches than the cut allows.
func TestStreamTruncation(t *testing.T) {
	batches := []*profiler.Samples{
		hostBatch(t, "gzip", 42, 7),
		hostBatch(t, "gzip", 42, 8),
	}
	h := Header{Binary: "gzip", Seed: 42, Group: "prod", Host: "h"}
	var buf bytes.Buffer
	if err := WriteStream(&buf, h, batches); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 11 {
		n := 0
		_, got, err := ReadStream(bytes.NewReader(full[:cut]), func(Header, *profiler.Samples) error {
			n++
			return nil
		})
		if err == nil {
			t.Fatalf("cut at %d/%d decoded cleanly", cut, len(full))
		}
		if got != n || got > len(batches) {
			t.Fatalf("cut at %d: reported %d batches, fn saw %d", cut, got, n)
		}
	}
}

func TestStreamTrailerMismatch(t *testing.T) {
	h := Header{Binary: "gzip", Seed: 42, Group: "prod"}
	var buf bytes.Buffer
	if err := WriteStream(&buf, h, []*profiler.Samples{hostBatch(t, "gzip", 42, 7)}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// The trailer count of a one-batch stream is the single final
	// byte uvarint(1); bump it.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] = 3
	var verr *ValidationError
	if _, n, err := ReadStream(bytes.NewReader(corrupt), drop); !errors.As(err, &verr) || n != 1 {
		t.Fatalf("trailer mismatch: n=%d err=%v", n, err)
	}
}

func TestStreamFnErrorAborts(t *testing.T) {
	h := Header{Binary: "gzip", Seed: 42, Group: "prod"}
	var buf bytes.Buffer
	err := WriteStream(&buf, h, []*profiler.Samples{
		hostBatch(t, "gzip", 42, 7),
		hostBatch(t, "gzip", 42, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("sink full")
	calls := 0
	_, n, err := ReadStream(bytes.NewReader(buf.Bytes()), func(Header, *profiler.Samples) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("fn error not propagated: %v", err)
	}
	if calls != 1 || n != 0 {
		t.Fatalf("fn called %d times, %d batches reported delivered", calls, n)
	}
}

// TestStreamFrameSlack hand-builds a record whose declared length
// exceeds the encoded batch: the reader must reject the disagreement
// rather than silently skipping bytes.
func TestStreamFrameSlack(t *testing.T) {
	var payload bytes.Buffer
	if err := profiler.WriteSamples(&payload, hostBatch(t, "gzip", 42, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.Write(streamMagic[:])
	writeString(bw, "gzip")
	putUvarint(bw, 42)
	writeString(bw, "prod")
	writeString(bw, "h")
	bw.WriteByte(recBatch)
	putUvarint(bw, uint64(payload.Len()+3))
	bw.Write(payload.Bytes())
	bw.WriteString("xxx")
	bw.WriteByte(recEnd)
	putUvarint(bw, 1)
	bw.Flush()

	var verr *ValidationError
	if _, _, err := ReadStream(&buf, drop); !errors.As(err, &verr) {
		t.Fatalf("frame slack accepted: %v", err)
	}
}

func TestStreamUnknownRecord(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.Write(streamMagic[:])
	writeString(bw, "gzip")
	putUvarint(bw, 42)
	writeString(bw, "prod")
	writeString(bw, "h")
	bw.WriteByte('Z')
	bw.Flush()
	var verr *ValidationError
	if _, _, err := ReadStream(&buf, drop); !errors.As(err, &verr) {
		t.Fatalf("unknown record accepted: %v", err)
	}
}

func TestStreamWriterAfterClose(t *testing.T) {
	sw, err := NewStreamWriter(&bytes.Buffer{}, Header{Binary: "gzip", Group: "prod"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
	if err := sw.WriteBatch(hostBatch(t, "gzip", 42, 7)); err == nil {
		t.Fatal("WriteBatch after Close accepted")
	}
}
