// Package fu models the functional-unit pools of the simulated
// machine (paper Table 6): 6 integer ALUs, 2 integer multipliers,
// 4 FP adders, 2 FP multiply/divide units, and 3 load/store ports.
// Units are fully pipelined with an issue interval of one cycle, so a
// pool of N units accepts at most N new operations per cycle. The
// delay an operation spends waiting for a free issue slot is the
// "functional unit contention" latency the dependence-graph model
// records on RE edges (paper Figure 5b).
//
// Bookings are exact regardless of the order they arrive in: the pool
// keeps a per-cycle occupancy schedule, so an instruction processed
// later in program order but ready earlier in time correctly claims
// an earlier slot. (The simulator processes instructions in program
// order while their ready times are out of order, especially under
// idealized re-simulation, so a naive "next free unit" model would
// fabricate contention.)
package fu

import "icost/internal/isa"

// Counts is the number of units per class.
type Counts [isa.NumFUClasses]int

// DefaultCounts is the Table 6 configuration.
func DefaultCounts() Counts {
	var c Counts
	c[isa.FUIntALU] = 6
	c[isa.FUIntMul] = 2
	c[isa.FUFloatAdd] = 4
	c[isa.FUFloatMul] = 2
	c[isa.FULoadStore] = 3
	return c
}

// Pool tracks per-class, per-cycle issue occupancy.
type Pool struct {
	sched [isa.NumFUClasses]Sched
}

// NewPool builds a pool with the given unit counts.
func NewPool(c Counts) *Pool {
	p := &Pool{}
	for k := 0; k < int(isa.NumFUClasses); k++ {
		if c[k] <= 0 {
			panic("fu: class with no units")
		}
		p.sched[k] = Sched{cap: c[k], cnt: map[int64]int{}, next: map[int64]int64{}}
	}
	return p
}

// Book reserves an issue slot of class c at the earliest cycle >=
// ready with spare capacity and returns that cycle.
func (p *Pool) Book(c isa.FUClass, ready int64) int64 {
	return p.sched[c].book(ready)
}

// Reset clears all bookings.
func (p *Pool) Reset() {
	for k := range p.sched {
		p.sched[k].cnt = map[int64]int{}
		p.sched[k].next = map[int64]int64{}
	}
}

// Sched is a per-cycle capacity schedule usable on its own (the
// simulator books store-commit ports through one). Full cycles carry
// a forwarding pointer to the next candidate cycle; find follows and
// path-compresses the pointers (union-find), keeping bookings
// amortized near-constant even through long saturated stretches.
type Sched struct {
	cap  int
	cnt  map[int64]int
	next map[int64]int64
}

// NewSched builds a schedule accepting cap bookings per cycle.
func NewSched(cap int) *Sched {
	if cap <= 0 {
		panic("fu: non-positive schedule capacity")
	}
	return &Sched{cap: cap, cnt: map[int64]int{}, next: map[int64]int64{}}
}

// Book reserves the earliest cycle >= ready with spare capacity.
func (s *Sched) Book(ready int64) int64 { return s.book(ready) }

func (s *Sched) book(ready int64) int64 {
	c := s.find(ready)
	s.cnt[c]++
	if s.cnt[c] >= s.cap {
		s.next[c] = c + 1
	}
	return c
}

// find returns the first cycle >= c with spare capacity.
func (s *Sched) find(c int64) int64 {
	root := c
	for {
		n, ok := s.next[root]
		if !ok {
			break
		}
		root = n
	}
	// Path compression.
	for c != root {
		n := s.next[c]
		s.next[c] = root
		c = n
	}
	return root
}
