package fu

import (
	"testing"

	"icost/internal/isa"
)

func TestNoContentionWhenUnderCapacity(t *testing.T) {
	p := NewPool(DefaultCounts())
	// 6 int ALUs: six bookings in the same cycle all start on time.
	for i := 0; i < 6; i++ {
		if got := p.Book(isa.FUIntALU, 10); got != 10 {
			t.Fatalf("booking %d started at %d, want 10", i, got)
		}
	}
}

func TestContentionDelaysOverflow(t *testing.T) {
	p := NewPool(DefaultCounts())
	for i := 0; i < 6; i++ {
		p.Book(isa.FUIntALU, 10)
	}
	if got := p.Book(isa.FUIntALU, 10); got != 11 {
		t.Fatalf("7th booking started at %d, want 11", got)
	}
	if got := p.Book(isa.FUIntALU, 10); got != 11 {
		t.Fatalf("8th booking started at %d, want 11", got)
	}
}

func TestClassesIndependent(t *testing.T) {
	p := NewPool(DefaultCounts())
	for i := 0; i < 6; i++ {
		p.Book(isa.FUIntALU, 5)
	}
	if got := p.Book(isa.FULoadStore, 5); got != 5 {
		t.Fatalf("load port delayed by ALU contention: %d", got)
	}
}

func TestLaterReadyNeverStartsEarly(t *testing.T) {
	p := NewPool(DefaultCounts())
	if got := p.Book(isa.FUIntMul, 100); got != 100 {
		t.Fatalf("start %d, want 100", got)
	}
}

func TestOutOfOrderBookingExact(t *testing.T) {
	// An instruction booked later in program order but ready earlier
	// in time must claim the earlier cycle — no fabricated
	// contention from booking order.
	p := NewPool(DefaultCounts())
	if got := p.Book(isa.FUIntMul, 100); got != 100 {
		t.Fatalf("late booking at %d", got)
	}
	if got := p.Book(isa.FUIntMul, 5); got != 5 {
		t.Fatalf("early booking pushed to %d, want 5", got)
	}
	// Cycle 100 already holds one of two multipliers; two more fit
	// at 100 and then overflow to 101.
	if got := p.Book(isa.FUIntMul, 100); got != 100 {
		t.Fatalf("second slot at cycle 100 given %d", got)
	}
	if got := p.Book(isa.FUIntMul, 100); got != 101 {
		t.Fatalf("overflow booking at %d, want 101", got)
	}
}

func TestSaturatedStretch(t *testing.T) {
	// Hammer one class far past capacity and check slots spread
	// exactly cap-per-cycle.
	c := Counts{}
	for k := range c {
		c[k] = 1
	}
	c[isa.FUIntALU] = 3
	p := NewPool(c)
	counts := map[int64]int{}
	for i := 0; i < 300; i++ {
		counts[p.Book(isa.FUIntALU, 0)]++
	}
	for cy := int64(0); cy < 100; cy++ {
		if counts[cy] != 3 {
			t.Fatalf("cycle %d has %d bookings, want 3", cy, counts[cy])
		}
	}
}

func TestPipelinedIssueOnePerCyclePerUnit(t *testing.T) {
	c := Counts{}
	for k := range c {
		c[k] = 1
	}
	p := NewPool(c)
	if got := p.Book(isa.FUFloatMul, 0); got != 0 {
		t.Fatalf("start %d", got)
	}
	if got := p.Book(isa.FUFloatMul, 0); got != 1 {
		t.Fatalf("start %d, want 1 (issue interval)", got)
	}
	if got := p.Book(isa.FUFloatMul, 5); got != 5 {
		t.Fatalf("start %d, want 5 (pipelined)", got)
	}
}

func TestReset(t *testing.T) {
	p := NewPool(DefaultCounts())
	for i := 0; i < 10; i++ {
		p.Book(isa.FUIntMul, 0)
	}
	p.Reset()
	if got := p.Book(isa.FUIntMul, 0); got != 0 {
		t.Fatalf("after reset, start %d", got)
	}
}

func TestZeroUnitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-unit class")
		}
	}()
	NewPool(Counts{})
}
