// Package isa defines the instruction set used throughout the
// repository: a small RISC-like ISA with fixed 4-byte instructions,
// 32 integer and 32 floating-point registers, loads/stores, short and
// long ALU operations, and the full complement of control transfers
// (conditional branches, jumps, indirect jumps, calls and returns)
// that the shotgun profiler's static PC-inference needs (paper
// Figure 5a, steps 2d1-2d4).
package isa

import "fmt"

// Addr is a byte address in the (synthetic) address space. Code and
// data live in disjoint regions; see package program.
type Addr uint64

// InstBytes is the fixed encoding size; PCs advance by this much for
// non-taken control flow (paper Fig 5a step 2d1 uses PC+4).
const InstBytes = 4

// Reg names an architectural register. 0..31 are integer registers
// (R0 hardwired to zero, writes ignored), 32..63 floating-point.
type Reg uint8

const (
	// RZero is the hardwired zero register.
	RZero Reg = 0
	// NumIntRegs is the count of integer registers.
	NumIntRegs = 32
	// NumRegs is the total architectural register count.
	NumRegs = 64
	// NoReg marks an absent operand.
	NoReg Reg = 255
)

// IsFloat reports whether r is a floating-point register.
func (r Reg) IsFloat() bool { return r >= NumIntRegs && r < NumRegs }

// String renders the conventional assembly name.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r < NumIntRegs:
		return fmt.Sprintf("r%d", r)
	case r < NumRegs:
		return fmt.Sprintf("f%d", r-NumIntRegs)
	default:
		return fmt.Sprintf("reg?%d", uint8(r))
	}
}

// Op is an opcode class. The simulator and dependence-graph model care
// about instruction *classes* (latency, ports, control behaviour), not
// the precise arithmetic performed, so opcodes are grouped by class.
type Op uint8

const (
	// OpNop does nothing (used as a filler and in tests).
	OpNop Op = iota
	// OpIntShort is a one-cycle integer ALU operation ("shalu" in the
	// paper's breakdown categories).
	OpIntShort
	// OpIntMul is a multi-cycle integer multiply ("lgalu").
	OpIntMul
	// OpFloatAdd is a pipelined FP add/sub ("lgalu").
	OpFloatAdd
	// OpFloatMul is an FP multiply ("lgalu").
	OpFloatMul
	// OpFloatDiv is a long-latency FP divide ("lgalu").
	OpFloatDiv
	// OpLoad reads memory into a register.
	OpLoad
	// OpStore writes a register to memory.
	OpStore
	// OpBranch is a direct conditional branch.
	OpBranch
	// OpJump is a direct unconditional jump.
	OpJump
	// OpCall is a direct call (pushes return address).
	OpCall
	// OpReturn is an indirect jump through the return-address stack.
	OpReturn
	// OpJumpIndirect is an indirect jump through a register (e.g.
	// switch tables, virtual dispatch).
	OpJumpIndirect

	// NumOps is the number of opcode classes.
	NumOps
)

var opNames = [NumOps]string{
	"nop", "add", "mul", "fadd", "fmul", "fdiv",
	"ld", "st", "br", "jmp", "call", "ret", "jr",
}

// String returns the mnemonic for the opcode class.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// IsBranch reports whether the opcode is any control transfer.
func (o Op) IsBranch() bool {
	switch o {
	case OpBranch, OpJump, OpCall, OpReturn, OpJumpIndirect:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o == OpBranch }

// IsIndirect reports whether the target comes from a register or the
// return stack rather than the instruction encoding.
func (o Op) IsIndirect() bool { return o == OpReturn || o == OpJumpIndirect }

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool { return o == OpLoad }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return o == OpStore }

// IsLongALU reports whether the opcode is a multi-cycle computation
// (the paper's "lgalu" category: multi-cycle integer and all FP ops).
func (o Op) IsLongALU() bool {
	switch o {
	case OpIntMul, OpFloatAdd, OpFloatMul, OpFloatDiv:
		return true
	}
	return false
}

// IsShortALU reports whether the opcode is a one-cycle integer
// operation (the paper's "shalu" category).
func (o Op) IsShortALU() bool { return o == OpIntShort }

// FUClass identifies a functional-unit pool (paper Table 6).
type FUClass uint8

const (
	// FUIntALU: 6 units, latency 1.
	FUIntALU FUClass = iota
	// FUIntMul: 2 units, latency 3.
	FUIntMul
	// FUFloatAdd: 4 units, latency 2.
	FUFloatAdd
	// FUFloatMul: 2 units, latency 4 (divide 12 on same pool).
	FUFloatMul
	// FULoadStore: 3 ports, latency 2 (L1 hit).
	FULoadStore
	// NumFUClasses is the number of functional-unit pools.
	NumFUClasses
)

var fuNames = [NumFUClasses]string{"intalu", "intmul", "fpadd", "fpmul", "ldst"}

// String names the pool.
func (c FUClass) String() string {
	if int(c) < len(fuNames) {
		return fuNames[c]
	}
	return fmt.Sprintf("fu?%d", uint8(c))
}

// FU returns the functional-unit class executing the opcode. Branches
// and nops resolve on the integer ALUs.
func (o Op) FU() FUClass {
	switch o {
	case OpLoad, OpStore:
		return FULoadStore
	case OpIntMul:
		return FUIntMul
	case OpFloatAdd:
		return FUFloatAdd
	case OpFloatMul, OpFloatDiv:
		return FUFloatMul
	default:
		return FUIntALU
	}
}

// Inst is a static (architectural) instruction. Dynamic state — the
// resolved memory address, branch outcome, and cache behaviour — lives
// in package trace.
type Inst struct {
	// PC is the instruction's address in the code region.
	PC Addr
	// Op is the opcode class.
	Op Op
	// Dst is the destination register, or NoReg.
	Dst Reg
	// Src1, Src2 are source registers, or NoReg. For stores Src1 is
	// the data register and Src2 the address base; for loads Src1 is
	// the address base. For indirect jumps Src1 holds the target.
	Src1, Src2 Reg
	// Target is the statically-encoded branch/jump/call target
	// (meaningless for indirect transfers and non-branches).
	Target Addr
}

// NextPC returns the fall-through PC.
func (in *Inst) NextPC() Addr { return in.PC + InstBytes }

// Srcs appends the valid source registers to dst and returns it.
func (in *Inst) Srcs(dst []Reg) []Reg {
	if in.Src1 != NoReg {
		dst = append(dst, in.Src1)
	}
	if in.Src2 != NoReg {
		dst = append(dst, in.Src2)
	}
	return dst
}

// HasDst reports whether the instruction writes a register. Writes to
// RZero are discarded and treated as no destination.
func (in *Inst) HasDst() bool { return in.Dst != NoReg && in.Dst != RZero }

// String renders a compact assembly-like form, e.g.
// "0x1004: ld r3, (r7)" or "0x1010: br r3, r0 -> 0x1040".
func (in *Inst) String() string {
	switch {
	case in.Op == OpLoad:
		return fmt.Sprintf("%#x: ld %s, (%s)", uint64(in.PC), in.Dst, in.Src1)
	case in.Op == OpStore:
		return fmt.Sprintf("%#x: st %s, (%s)", uint64(in.PC), in.Src1, in.Src2)
	case in.Op == OpBranch:
		return fmt.Sprintf("%#x: br %s,%s -> %#x", uint64(in.PC), in.Src1, in.Src2, uint64(in.Target))
	case in.Op == OpJump || in.Op == OpCall:
		return fmt.Sprintf("%#x: %s -> %#x", uint64(in.PC), in.Op, uint64(in.Target))
	case in.Op == OpReturn:
		return fmt.Sprintf("%#x: ret", uint64(in.PC))
	case in.Op == OpJumpIndirect:
		return fmt.Sprintf("%#x: jr %s", uint64(in.PC), in.Src1)
	case in.Dst == NoReg:
		return fmt.Sprintf("%#x: %s", uint64(in.PC), in.Op)
	default:
		return fmt.Sprintf("%#x: %s %s, %s, %s", uint64(in.PC), in.Op, in.Dst, in.Src1, in.Src2)
	}
}
