package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{RZero, "r0"},
		{Reg(5), "r5"},
		{Reg(31), "r31"},
		{Reg(32), "f0"},
		{Reg(63), "f31"},
		{NoReg, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegIsFloat(t *testing.T) {
	if RZero.IsFloat() || Reg(31).IsFloat() {
		t.Error("integer register classified as float")
	}
	if !Reg(32).IsFloat() || !Reg(63).IsFloat() {
		t.Error("float register not classified as float")
	}
	if NoReg.IsFloat() {
		t.Error("NoReg classified as float")
	}
}

func TestOpClassification(t *testing.T) {
	branches := []Op{OpBranch, OpJump, OpCall, OpReturn, OpJumpIndirect}
	for _, o := range branches {
		if !o.IsBranch() {
			t.Errorf("%v should be a branch", o)
		}
	}
	nonBranches := []Op{OpNop, OpIntShort, OpIntMul, OpLoad, OpStore, OpFloatDiv}
	for _, o := range nonBranches {
		if o.IsBranch() {
			t.Errorf("%v should not be a branch", o)
		}
	}
	if !OpBranch.IsCondBranch() || OpJump.IsCondBranch() {
		t.Error("conditional-branch classification wrong")
	}
	if !OpReturn.IsIndirect() || !OpJumpIndirect.IsIndirect() || OpBranch.IsIndirect() {
		t.Error("indirect classification wrong")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpIntShort.IsMem() {
		t.Error("mem classification wrong")
	}
	if !OpLoad.IsLoad() || OpStore.IsLoad() {
		t.Error("load classification wrong")
	}
	if !OpStore.IsStore() || OpLoad.IsStore() {
		t.Error("store classification wrong")
	}
}

func TestALUClasses(t *testing.T) {
	if !OpIntShort.IsShortALU() || OpIntMul.IsShortALU() {
		t.Error("shalu classification wrong")
	}
	for _, o := range []Op{OpIntMul, OpFloatAdd, OpFloatMul, OpFloatDiv} {
		if !o.IsLongALU() {
			t.Errorf("%v should be lgalu", o)
		}
	}
	for _, o := range []Op{OpIntShort, OpLoad, OpBranch, OpNop} {
		if o.IsLongALU() {
			t.Errorf("%v should not be lgalu", o)
		}
	}
}

func TestFUMapping(t *testing.T) {
	cases := []struct {
		op Op
		fu FUClass
	}{
		{OpLoad, FULoadStore},
		{OpStore, FULoadStore},
		{OpIntMul, FUIntMul},
		{OpFloatAdd, FUFloatAdd},
		{OpFloatMul, FUFloatMul},
		{OpFloatDiv, FUFloatMul},
		{OpIntShort, FUIntALU},
		{OpBranch, FUIntALU},
		{OpNop, FUIntALU},
	}
	for _, c := range cases {
		if got := c.op.FU(); got != c.fu {
			t.Errorf("%v.FU() = %v, want %v", c.op, got, c.fu)
		}
	}
}

func TestOpStrings(t *testing.T) {
	seen := map[string]Op{}
	for o := Op(0); o < NumOps; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op?") {
			t.Errorf("opcode %d has no mnemonic", o)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("mnemonic %q shared by %d and %d", s, prev, o)
		}
		seen[s] = o
	}
	if NumOps.String() == "" {
		t.Error("out-of-range opcode should still render")
	}
}

func TestFUStrings(t *testing.T) {
	for c := FUClass(0); c < NumFUClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "fu?") {
			t.Errorf("FU class %d has no name", c)
		}
	}
}

func TestInstNextPC(t *testing.T) {
	in := Inst{PC: 0x1000}
	if in.NextPC() != 0x1004 {
		t.Fatalf("NextPC = %#x, want 0x1004", uint64(in.NextPC()))
	}
}

func TestInstSrcs(t *testing.T) {
	in := Inst{Src1: Reg(3), Src2: Reg(4)}
	got := in.Srcs(nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("Srcs = %v", got)
	}
	in = Inst{Src1: NoReg, Src2: Reg(4)}
	got = in.Srcs(nil)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("Srcs = %v", got)
	}
	in = Inst{Src1: NoReg, Src2: NoReg}
	if got = in.Srcs(nil); len(got) != 0 {
		t.Fatalf("Srcs = %v, want empty", got)
	}
}

func TestHasDst(t *testing.T) {
	if (&Inst{Dst: NoReg}).HasDst() {
		t.Error("NoReg counted as destination")
	}
	if (&Inst{Dst: RZero}).HasDst() {
		t.Error("write to RZero counted as destination")
	}
	if !(&Inst{Dst: Reg(7)}).HasDst() {
		t.Error("real destination not counted")
	}
}

func TestInstStringForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{PC: 0x1004, Op: OpLoad, Dst: 3, Src1: 7, Src2: NoReg}, "0x1004: ld r3, (r7)"},
		{Inst{PC: 0x1008, Op: OpStore, Src1: 3, Src2: 7}, "0x1008: st r3, (r7)"},
		{Inst{PC: 0x1010, Op: OpBranch, Src1: 3, Src2: 0, Target: 0x1040}, "0x1010: br r3,r0 -> 0x1040"},
		{Inst{PC: 0x1014, Op: OpJump, Target: 0x2000}, "0x1014: jmp -> 0x2000"},
		{Inst{PC: 0x1018, Op: OpCall, Target: 0x3000}, "0x1018: call -> 0x3000"},
		{Inst{PC: 0x101c, Op: OpReturn}, "0x101c: ret"},
		{Inst{PC: 0x1020, Op: OpJumpIndirect, Src1: 9}, "0x1020: jr r9"},
		{Inst{PC: 0x1024, Op: OpNop, Dst: NoReg}, "0x1024: nop"},
		{Inst{PC: 0x1028, Op: OpIntShort, Dst: 1, Src1: 2, Src2: 3}, "0x1028: add r1, r2, r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestQuickSrcsNeverReturnsNoReg(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		in := Inst{Src1: Reg(s1), Src2: Reg(s2)}
		for _, r := range in.Srcs(nil) {
			if r == NoReg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
