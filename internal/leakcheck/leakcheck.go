// Package leakcheck asserts that a test leaves no goroutines behind.
// The chaos suite leans on it: every injected fault — error, stall,
// forced cancellation — must tear down cleanly, or the analysis
// service would bleed workers under sustained failure.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check records the current goroutine count and registers a cleanup
// that fails the test if the count has not returned to the baseline
// shortly after the test (and every cleanup registered after this
// call — cleanups run last-in-first-out, so call Check first) has
// finished. Transient runtime goroutines get a grace period; a real
// leak fails with a full stack dump.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("leakcheck: %d goroutines at exit, %d at start; stacks:\n%s", n, base, buf)
		}
	})
}
