package lint

// All returns the repo's analyzer suite in stable order: the PR 3
// wave (ctxflow, edgeswitch, gocheck, metricreg, poolbalance) plus
// the second wave built on the dataflow/call-graph layer
// (atomichygiene, codecver, colsync, hotalloc, lockorder).
func All() []*Analyzer {
	return []*Analyzer{
		AtomicHygiene, CodecVer, ColSync, CtxFlow, EdgeSwitch,
		GoCheck, HotAlloc, LockOrder, MetricReg, PoolBalance,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
