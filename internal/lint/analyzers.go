package lint

// All returns the repo's analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, EdgeSwitch, GoCheck, MetricReg, PoolBalance}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
