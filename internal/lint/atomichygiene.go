package lint

// atomichygiene enforces the all-or-nothing rule of sync/atomic: a
// variable or field whose address is ever passed to a function-style
// atomic operation (atomic.LoadInt64(&x), atomic.AddUint32(&s.n, 1),
// ...) must never be read or written plainly anywhere else — a plain
// access races with the atomic ones, and on weakly-ordered hardware
// the race is not benign. The typed atomics (atomic.Int64,
// atomic.Pointer[T]) make this mistake unrepresentable, which is why
// the faultinject disarmed fast path uses them; this analyzer guards
// the function-style residue, where the type system offers no help.
//
// The tracked set is keyed by types.Object, so a struct *field* is
// tracked across every instance of the struct. Composite-literal
// initialization (S{n: 0}) is exempt: initializing before publishing
// is the standard construction idiom and does not race.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AtomicHygiene flags plain accesses to atomically-accessed locations.
var AtomicHygiene = &Analyzer{
	Name: "atomichygiene",
	Doc:  "locations passed to sync/atomic functions must not be plainly loaded or stored elsewhere",
	Run:  runAtomicHygiene,
}

func runAtomicHygiene(pass *Pass) error {
	// Pass 1: collect the objects whose addresses feed sync/atomic
	// calls, remembering one witness site per object, and bless the
	// identifiers inside those arguments so pass 2 skips them.
	tracked := map[types.Object]token.Pos{}
	blessed := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(pass.Info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj := addressedObject(pass.Info, un.X)
				if obj == nil {
					continue
				}
				if _, seen := tracked[obj]; !seen {
					tracked[obj] = un.Pos()
				}
				ast.Inspect(un, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						blessed[id] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return nil
	}

	// Composite-literal struct keys are initialization, not access.
	initKeys := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range cl.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						initKeys[id] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: any other use of a tracked object is a racy plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || blessed[id] || initKeys[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			at, ok := tracked[obj]
			if !ok {
				return true
			}
			p := pass.Fset.Position(at)
			pass.Reportf(id.Pos(), "%s is accessed with sync/atomic (%s:%d); this plain access races with it",
				obj.Name(), filepath.Base(p.Filename), p.Line)
			return true
		})
	}
	return nil
}

// addressedObject resolves &expr's base location to a variable or
// field object, or nil for anything unaddressable by a stable name
// (map/index expressions, call results).
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}
