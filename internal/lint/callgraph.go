package lint

// The second-wave analyzers need two ingredients the PR 3 suite got
// by with ad-hoc ast.Inspect walks: a package-level call graph
// (which functions in this package call which, at which sites) and a
// lexical intraprocedural dataflow walk whose state respects block
// structure. Both live here so analyzers share one implementation.
//
// The dataflow walk is deliberately an under-approximation: compound
// statements (if/for/switch/select bodies) are visited on a forked
// copy of the visitor's state, and the fork is discarded when the
// branch ends. Facts established inside a branch therefore never
// leak onto the straight-line continuation — a branch that releases
// a lock cannot convince the walker the lock is free afterwards, and
// a branch that acquires one cannot poison the code after the merge
// point. Analyzers built on it trade a few missed reports for zero
// false positives, the only sustainable deal for a gating linter.

import (
	"go/ast"
	"go/types"
)

// flowVisitor receives the events of one function body in source
// order. Call is invoked for every call expression on the current
// path (deferred reports defer statements, including calls textually
// inside an immediately-deferred func literal). FuncLit is invoked
// for nested function literals, whose bodies are NOT walked — they
// run at an unknown time, so the analyzer decides whether to restart
// a walk with fresh state. Fork returns a visitor sharing recorded
// facts but owning an independent copy of the path state.
type flowVisitor interface {
	Call(call *ast.CallExpr, deferred bool)
	FuncLit(lit *ast.FuncLit)
	Fork() flowVisitor
}

// walkFlow drives a flowVisitor over a statement list in source
// order, forking around compound-statement bodies.
func walkFlow(stmts []ast.Stmt, v flowVisitor) {
	for _, s := range stmts {
		walkFlowStmt(s, v)
	}
}

func walkFlowStmt(s ast.Stmt, v flowVisitor) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		if s != nil {
			walkFlow(s.List, v)
		}
	case *ast.IfStmt:
		walkFlowStmt(s.Init, v)
		flowExpr(s.Cond, v, false)
		walkFlowStmt(s.Body, v.Fork())
		if s.Else != nil {
			walkFlowStmt(s.Else, v.Fork())
		}
	case *ast.ForStmt:
		walkFlowStmt(s.Init, v)
		flowExpr(s.Cond, v, false)
		fork := v.Fork()
		walkFlowStmt(s.Body, fork)
		walkFlowStmt(s.Post, fork)
	case *ast.RangeStmt:
		flowExpr(s.X, v, false)
		walkFlowStmt(s.Body, v.Fork())
	case *ast.SwitchStmt:
		walkFlowStmt(s.Init, v)
		flowExpr(s.Tag, v, false)
		for _, c := range s.Body.List {
			walkFlow(c.(*ast.CaseClause).Body, v.Fork())
		}
	case *ast.TypeSwitchStmt:
		walkFlowStmt(s.Init, v)
		walkFlowStmt(s.Assign, v)
		for _, c := range s.Body.List {
			walkFlow(c.(*ast.CaseClause).Body, v.Fork())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			fork := v.Fork()
			walkFlowStmt(cc.Comm, fork)
			walkFlow(cc.Body, fork)
		}
	case *ast.LabeledStmt:
		walkFlowStmt(s.Stmt, v)
	case *ast.DeferStmt:
		deferCall(s.Call, v)
	case *ast.GoStmt:
		// The goroutine body runs concurrently with unknown state;
		// only surface nested literals so the analyzer can restart.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			v.FuncLit(lit)
		}
		for _, a := range s.Call.Args {
			flowExpr(a, v, false)
		}
	case *ast.ExprStmt:
		flowExpr(s.X, v, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			flowExpr(e, v, false)
		}
		for _, e := range s.Lhs {
			flowExpr(e, v, false)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			flowExpr(e, v, false)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, e := range vs.Values {
				flowExpr(e, v, false)
			}
		}
	case *ast.SendStmt:
		flowExpr(s.Value, v, false)
		flowExpr(s.Chan, v, false)
	case *ast.IncDecStmt:
		flowExpr(s.X, v, false)
	}
}

// deferCall reports a deferred call. `defer func() { ... }()` is
// common enough (unlock-with-bookkeeping) that calls textually inside
// an immediately-deferred literal are reported as deferred too.
func deferCall(call *ast.CallExpr, v flowVisitor) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				v.FuncLit(n)
				return false
			case *ast.CallExpr:
				v.Call(n, true)
			}
			return true
		})
		return
	}
	v.Call(call, true)
}

// flowExpr reports the calls inside one expression in evaluation
// order, diverting func literals to FuncLit.
func flowExpr(e ast.Expr, v flowVisitor, deferred bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			v.FuncLit(n)
			return false
		case *ast.CallExpr:
			v.Call(n, deferred)
		}
		return true
	})
}

// declaredFuncs indexes the package's function and method
// declarations (those with bodies) by their types object.
func declaredFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// staticCallee resolves a call to a function or method declared in
// the package under analysis, or nil (func values, other packages,
// builtins). Method values and interface dispatch resolve only when
// the static callee is unambiguous, which keeps the call graph an
// under-approximation too.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn, ok := calleeObject(pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}
