package lint

// codecver pins the version discipline of the repo's binary formats
// (ICSS session snapshots, ICFS fleet sample streams): every declared
// version constant must be dispatched by the codec's decoder, and the
// encoder must emit — and only emit — the newest version. A version
// constant added without a decoder case means freshly written files
// that old readers reject and new readers crash on; an encoder still
// referencing a stale constant silently downgrades every snapshot it
// writes. Both failure modes survive unit tests that roundtrip through
// a single process, which is exactly why they get a static check.
//
// The wiring is three doc-comment annotations:
//
//	//lint:codec <name>          on the const block declaring versions
//	//lint:codec-decode <name>   on the decoder dispatch function
//	//lint:codec-encode <name>   on the encoder function or the
//	                             var/const decl that bakes the wire
//	                             magic
//
// Decoder coverage is judged the same way edgeswitch judges enum
// switches: by the exact constant values appearing in case clauses
// anywhere in the function, so dispatching on a magic byte works as
// well as dispatching on a named constant.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CodecVer flags version constants missing from decoder switches and
// encoders not pinned to the newest version.
var CodecVer = &Analyzer{
	Name: "codecver",
	Doc:  "declared codec versions must be decoded, and encoders must emit the newest version",
	Run:  runCodecVer,
}

// codecConst is one declared version constant.
type codecConst struct {
	obj *types.Const
	val int64
}

// codecGroup is one annotated codec: its version constants and the
// decls annotated as its decoder(s)/encoder(s).
type codecGroup struct {
	name   string
	pos    token.Pos
	consts []codecConst
}

func (g *codecGroup) newest() codecConst {
	max := g.consts[0]
	for _, c := range g.consts[1:] {
		if c.val > max.val {
			max = c
		}
	}
	return max
}

func runCodecVer(pass *Pass) error {
	groups := map[string]*codecGroup{}
	type annotated struct {
		codec string
		node  ast.Node
		name  *ast.Ident // function name, nil for var decls
	}
	var decoders, encoders []annotated

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				for _, arg := range markers(d.Doc, "codec") {
					name := strings.TrimSpace(arg)
					if name == "" || d.Tok != token.CONST {
						pass.Reportf(d.Pos(), "//lint:codec must name the codec and sit on a const declaration")
						continue
					}
					g := groups[name]
					if g == nil {
						g = &codecGroup{name: name, pos: d.Pos()}
						groups[name] = g
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, id := range vs.Names {
							c, ok := pass.Info.Defs[id].(*types.Const)
							if !ok {
								continue
							}
							v, ok := constant.Int64Val(constant.ToInt(c.Val()))
							if !ok {
								continue
							}
							g.consts = append(g.consts, codecConst{obj: c, val: v})
						}
					}
				}
				for _, arg := range markers(d.Doc, "codec-encode") {
					encoders = append(encoders, annotated{strings.TrimSpace(arg), d, nil})
				}
			case *ast.FuncDecl:
				for _, arg := range markers(d.Doc, "codec-decode") {
					decoders = append(decoders, annotated{strings.TrimSpace(arg), d, d.Name})
				}
				for _, arg := range markers(d.Doc, "codec-encode") {
					encoders = append(encoders, annotated{strings.TrimSpace(arg), d, d.Name})
				}
			}
		}
	}
	if len(groups) == 0 && len(decoders) == 0 && len(encoders) == 0 {
		return nil
	}

	for _, a := range decoders {
		if groups[a.codec] == nil {
			pass.Reportf(a.node.Pos(), "//lint:codec-decode %s has no matching //lint:codec const declaration", a.codec)
		}
	}
	for _, a := range encoders {
		if groups[a.codec] == nil {
			pass.Reportf(a.node.Pos(), "//lint:codec-encode %s has no matching //lint:codec const declaration", a.codec)
		}
	}

	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := groups[n]
		if len(g.consts) == 0 {
			pass.Reportf(g.pos, "//lint:codec %s declares no integer version constants", g.name)
			continue
		}
		var decoded, encoded bool
		for _, a := range decoders {
			if a.codec != g.name {
				continue
			}
			decoded = true
			checkDecoder(pass, g, a.node.(*ast.FuncDecl))
		}
		for _, a := range encoders {
			if a.codec != g.name {
				continue
			}
			encoded = true
			checkEncoder(pass, g, a.node, a.name)
		}
		if !decoded {
			pass.Reportf(g.pos, "codec %q declares version constants but no decoder is annotated (//lint:codec-decode %s)", g.name, g.name)
		}
		if !encoded {
			pass.Reportf(g.pos, "codec %q declares version constants but no encoder is annotated (//lint:codec-encode %s)", g.name, g.name)
		}
	}
	return nil
}

// checkDecoder verifies every version value of the group appears as a
// constant case value in some switch inside the decoder.
func checkDecoder(pass *Pass, g *codecGroup, fd *ast.FuncDecl) {
	covered := map[string]bool{}
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			for _, c := range sw.Body.List {
				for _, e := range c.(*ast.CaseClause).List {
					if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
						covered[constant.ToInt(tv.Value).ExactString()] = true
					}
				}
			}
			return true
		})
	}
	var missing []string
	for _, c := range g.consts {
		if !covered[constant.ToInt(c.obj.Val()).ExactString()] {
			missing = append(missing, c.obj.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(fd.Name.Pos(), "decoder %s for codec %q does not dispatch version(s) %s",
			fd.Name.Name, g.name, strings.Join(missing, ", "))
	}
}

// checkEncoder verifies the encoder decl references the newest
// version constant and no stale one.
func checkEncoder(pass *Pass, g *codecGroup, node ast.Node, name *ast.Ident) {
	newest := g.newest()
	byObj := map[types.Object]codecConst{}
	for _, c := range g.consts {
		byObj[c.obj] = c
	}
	usesNewest := false
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		c, tracked := byObj[obj]
		if !tracked {
			return true
		}
		if c.val == newest.val {
			usesNewest = true
		} else {
			pass.Reportf(id.Pos(), "encoder for codec %q references stale version constant %s (newest is %s=%d)",
				g.name, c.obj.Name(), newest.obj.Name(), newest.val)
		}
		return true
	})
	if !usesNewest {
		pos := node.Pos()
		what := "encoder declaration"
		if name != nil {
			pos = name.Pos()
			what = "encoder " + name.Name
		}
		pass.Reportf(pos, "%s for codec %q does not reference the newest version constant %s=%d",
			what, g.name, newest.obj.Name(), newest.val)
	}
}
