package lint

// colsync guards parallel-array (struct-of-arrays) invariants: the
// seven CSR columns of depgraph.Graph are one logical table, so any
// code that reassigns, reslices, appends to or rebuilds one column
// outside the builder must do the same to all seven — a column left
// behind silently desynchronizes node indices and every walk after
// that reads garbage. The 46.97x backward walk exists because the
// columns share one topological index space; this analyzer is what
// keeps that assumption true as the code grows.
//
// A struct opts in with a doc-comment annotation:
//
//	//lint:columns <group> <field1,field2,...>
//
// Per function, every instance (keyed by the receiver expression) that
// gets a whole-column write — assignment, append, reslice — to some
// but not all group members is reported. Composite literals that set
// a strict subset of the group are reported at the literal. Element
// writes (g.Info[i] = v) are not whole-column writes and are exempt.
// Annotations are visible across packages: the loader retains parsed
// sources of non-stdlib imports, so window/engine code manipulating
// depgraph columns is held to depgraph's annotation.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ColSync flags partial writes to lockstep column groups.
var ColSync = &Analyzer{
	Name: "colsync",
	Doc:  "whole-column writes to a //lint:columns group must touch every column in the group",
	Run:  runColSync,
}

// colGroup is one annotated lockstep field group.
type colGroup struct {
	name   string
	owner  *types.TypeName
	fields map[*types.Var]bool
	order  []string
}

func (g *colGroup) String() string { return g.owner.Pkg().Name() + "." + g.owner.Name() }

func runColSync(pass *Pass) error {
	groups := collectColGroups(pass)
	if len(groups) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		checkColComposites(pass, f, groups)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkColAssigns(pass, fd, groups)
			}
		}
	}
	return nil
}

// collectColGroups gathers //lint:columns annotations from this
// package and from every direct non-stdlib import (whose parsed
// sources the loader retained).
func collectColGroups(pass *Pass) []*colGroup {
	var out []*colGroup
	out = append(out, colGroupsIn(pass, pass.Files, pass.Pkg, true)...)
	for _, imp := range pass.Pkg.Imports() {
		if files := packageFiles(imp.Path()); files != nil {
			out = append(out, colGroupsIn(pass, files, imp, false)...)
		}
	}
	return out
}

// colGroupsIn reads the annotations of one package's files, resolving
// field names against its type scope. Malformed annotations are
// reported only when the annotation lives in the package under
// analysis (own == true), so each mistake is diagnosed exactly once.
func colGroupsIn(pass *Pass, files []*ast.File, pkg *types.Package, own bool) []*colGroup {
	var out []*colGroup
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				for _, arg := range markers(doc, "columns") {
					g := parseColGroup(pass, pkg, ts, arg, own)
					if g != nil {
						out = append(out, g)
					}
				}
			}
		}
	}
	return out
}

func parseColGroup(pass *Pass, pkg *types.Package, ts *ast.TypeSpec, arg string, own bool) *colGroup {
	report := func(format string, args ...any) {
		if own {
			pass.Reportf(ts.Pos(), format, args...)
		}
	}
	parts := strings.Fields(arg)
	if len(parts) != 2 {
		report("malformed //lint:columns annotation %q: want `<group> <field1,field2,...>`", arg)
		return nil
	}
	tn, ok := pkg.Scope().Lookup(ts.Name.Name).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		report("//lint:columns on %s, which is not a struct type", ts.Name.Name)
		return nil
	}
	byName := map[string]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		byName[st.Field(i).Name()] = st.Field(i)
	}
	g := &colGroup{name: parts[0], owner: tn, fields: map[*types.Var]bool{}}
	for _, fname := range strings.Split(parts[1], ",") {
		fv, ok := byName[fname]
		if !ok {
			report("//lint:columns group %q names field %s, which %s does not have", g.name, fname, ts.Name.Name)
			return nil
		}
		g.fields[fv] = true
		g.order = append(g.order, fname)
	}
	if len(g.order) < 2 {
		report("//lint:columns group %q has fewer than two fields; a lockstep group needs siblings", g.name)
		return nil
	}
	return g
}

// checkColComposites reports composite literals of an annotated struct
// that key a strict subset of a column group. Positional literals set
// every field and are exempt.
func checkColComposites(pass *Pass, f *ast.File, groups []*colGroup) {
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[cl]
		if !ok {
			return true
		}
		named, ok := types.Unalias(tv.Type).(*types.Named)
		if !ok {
			return true
		}
		for _, g := range groups {
			if named.Obj() != g.owner {
				continue
			}
			var set []string
			keyed := true
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					keyed = false
					break
				}
				id, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if obj, ok := pass.Info.Uses[id].(*types.Var); ok && g.fields[obj] {
					set = append(set, id.Name)
				}
			}
			if !keyed || len(set) == 0 || len(set) == len(g.order) {
				continue
			}
			pass.Reportf(cl.Pos(), "literal of %s sets lockstep column(s) %s of group %q but not %s",
				g, strings.Join(set, ", "), g.name, strings.Join(missingCols(g, set), ", "))
		}
		return true
	})
}

// checkColAssigns reports, per instance, whole-column writes inside
// one function that touch some but not all columns of a group.
func checkColAssigns(pass *Pass, fd *ast.FuncDecl, groups []*colGroup) {
	type key struct {
		group    int
		instance string
	}
	writes := map[key]map[string]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				continue
			}
			fv, ok := s.Obj().(*types.Var)
			if !ok {
				continue
			}
			for gi, g := range groups {
				if !g.fields[fv] {
					continue
				}
				k := key{gi, types.ExprString(sel.X)}
				if writes[k] == nil {
					writes[k] = map[string]token.Pos{}
				}
				if _, seen := writes[k][fv.Name()]; !seen {
					writes[k][fv.Name()] = sel.Pos()
				}
			}
		}
		return true
	})
	keys := make([]key, 0, len(writes))
	for k := range writes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].group != keys[j].group {
			return keys[i].group < keys[j].group
		}
		return keys[i].instance < keys[j].instance
	})
	for _, k := range keys {
		g := groups[k.group]
		touched := writes[k]
		if len(touched) == len(g.order) {
			continue
		}
		var set []string
		first := token.Pos(0)
		for _, fname := range g.order {
			if pos, ok := touched[fname]; ok {
				set = append(set, fname)
				if first == 0 || pos < first {
					first = pos
				}
			}
		}
		pass.Reportf(first, "%s writes lockstep column(s) %s of %s group %q without sibling(s) %s (all %d move together)",
			k.instance, strings.Join(set, ", "), g, g.name, strings.Join(missingCols(g, set), ", "), len(g.order))
	}
}

func missingCols(g *colGroup, set []string) []string {
	have := map[string]bool{}
	for _, s := range set {
		have[s] = true
	}
	var out []string
	for _, f := range g.order {
		if !have[f] {
			out = append(out, f)
		}
	}
	return out
}
