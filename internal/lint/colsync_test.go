package lint_test

import (
	"path/filepath"
	"testing"

	"icost/internal/lint"
	"icost/internal/lint/linttest"
)

func TestColSync(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "colsync"), lint.ColSync)
}
