package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the engine's cancellation contract: the graph
// walks poll ctx, so a query can only be aborted if every layer above
// them threads the caller's context down. Library code (every
// non-main package) must therefore never mint its own root context —
// context.Background()/context.TODO() belong in main functions and
// tests — and an exported function that calls into context-accepting
// code must itself accept a context.Context so the chain is unbroken.
// Documented infallible wrappers (ExecTime over ExecTimeCtx, Slacks
// over SlacksCtx, ...) are deliberate exceptions, suppressed with a
// //lint:ignore ctxflow comment in their doc.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "library code must accept and propagate context.Context instead of minting context.Background/TODO",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.IsMain {
		return nil
	}
	for _, file := range pass.Files {
		// Rule 1: no fresh root contexts anywhere in library code.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.Info, call)
			if isPkgFunc(obj, "context", "Background") || isPkgFunc(obj, "context", "TODO") {
				pass.Reportf(call.Pos(), "context.%s() in library code: thread the caller's context.Context instead", obj.Name())
			}
			return true
		})
		// Rule 2: exported entry points must carry the context their
		// callees need.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if funcAcceptsContext(pass.Info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // closures may be handed a ctx later
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sig := calleeSignature(pass.Info, call)
				if sig == nil || sig.Params().Len() == 0 {
					return true
				}
				if isContextType(sig.Params().At(0).Type()) {
					pass.Reportf(fd.Name.Pos(), "exported %s has no context.Context parameter but calls context-accepting %s: add a Ctx variant or thread ctx through",
						fd.Name.Name, callName(call))
					return false // one finding per function is enough
				}
				return true
			})
		}
	}
	return nil
}

// funcAcceptsContext reports whether fd declares a context.Context
// parameter (in any position).
func funcAcceptsContext(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// callName renders a call's callee for a finding message.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function"
}
