package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EdgeSwitch guards the dependence-graph enums of the paper's
// Tables 2 and 3: depgraph.NodeKind (the five D/R/E/P/C nodes) and
// depgraph.EdgeKind (the twelve DD..CBW constraint kinds). Any switch
// over a *Kind enum must either enumerate every declared constant or
// carry a default that panics — so that when a 13th edge kind is
// added, every switch that silently lumped "the rest" into one bucket
// becomes a loud failure instead of a wrong latency attribution. The
// analyzer applies to every named integer type whose name ends in
// "Kind" and that has at least two declared constants.
var EdgeSwitch = &Analyzer{
	Name: "edgeswitch",
	Doc:  "switches over *Kind enums must be exhaustive or have a panicking default",
	Run:  runEdgeSwitch,
}

func runEdgeSwitch(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			enum, consts := kindEnum(tv.Type)
			if enum == nil {
				return true
			}
			checkKindSwitch(pass, sw, enum, consts)
			return true
		})
	}
	return nil
}

// enumConst is one declared constant of the enum type.
type enumConst struct {
	name string
	val  constant.Value
}

// kindEnum reports whether t is a "*Kind" enum: a named integer type
// whose declaring package has >= 2 constants of exactly that type.
func kindEnum(t types.Type) (*types.Named, []enumConst) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Name(), "Kind") {
		return nil, nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, nil
	}
	var consts []enumConst
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		consts = append(consts, enumConst{name: c.Name(), val: c.Val()})
	}
	if len(consts) < 2 {
		return nil, nil
	}
	return named, consts
}

func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt, enum *types.Named, consts []enumConst) {
	covered := map[string]bool{} // by exact constant value
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for _, c := range consts {
		if !covered[c.val.ExactString()] {
			missing = append(missing, c.name)
		}
	}
	sort.Strings(missing)
	typeName := enum.Obj().Pkg().Name() + "." + enum.Obj().Name()
	if defaultClause == nil {
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s (add the cases or a panicking default)",
				typeName, strings.Join(missing, ", "))
		}
		return
	}
	if len(missing) > 0 && !clausePanics(defaultClause) {
		pass.Reportf(sw.Pos(), "switch over %s hides %s behind a non-panicking default: a new kind would be silently miscomputed",
			typeName, strings.Join(missing, ", "))
	}
}

// clausePanics reports whether the clause body's final statement
// panics — the escape hatch that turns an unknown enum value into a
// loud failure instead of a silent fallthrough.
func clausePanics(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return false
	}
	expr, ok := cc.Body[len(cc.Body)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
