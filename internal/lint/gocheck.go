package lint

import (
	"go/ast"
	"go/types"
)

// GoCheck enforces that library goroutines are stoppable. The engine
// worker pool exits when its job channel closes; every other
// goroutine launched in library code must be observably bounded the
// same way: its body must reference a context.Context (cancellation
// threads through the graph walks), receive from a channel (done
// channel, work queue, select loop), or be a sync.WaitGroup-bounded
// fan-out (defer wg.Done() with the caller waiting). A goroutine with
// none of these outlives Close/Shutdown invisibly — under the
// daemon's load that is a leak the race detector cannot see.
// Launches of functions the analyzer cannot resolve (cross-package or
// dynamic func values) are reported too: wrap them in a literal that
// makes the stop condition visible, or suppress with a reason.
var GoCheck = &Analyzer{
	Name: "gocheck",
	Doc:  "library goroutines must select on a ctx/done channel or be WaitGroup-bounded",
	Run:  runGoCheck,
}

func runGoCheck(pass *Pass) error {
	if pass.IsMain {
		return nil
	}
	// Same-package function declarations, for resolving `go f()` and
	// `go e.worker()` to a body.
	declOf := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					declOf[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				if obj := calleeObject(pass.Info, gs.Call); obj != nil {
					if fd, ok := declOf[obj]; ok {
						body = fd.Body
					}
				}
			}
			if body == nil {
				pass.Reportf(gs.Pos(), "goroutine launches a function this analyzer cannot see into: make the stop condition visible at the go statement")
				return true
			}
			if !cancellable(pass, body) {
				pass.Reportf(gs.Pos(), "goroutine has no visible stop condition: select on a ctx/done channel, range over a work channel, or bound it with a sync.WaitGroup")
			}
			return true
		})
	}
	return nil
}

// cancellable reports whether a goroutine body carries a visible stop
// condition.
func cancellable(pass *Pass, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			// References a context.Context value (parameter or
			// captured variable): cancellation is threaded through.
			if obj := pass.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				ok = true
			}
		case *ast.UnaryExpr:
			// Channel receive: <-done, <-ch.
			if n.Op.String() == "<-" {
				ok = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel drains a closable work queue.
			if tv, found := pass.Info.Types[n.X]; found {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ok = true
				}
			}
		case *ast.SelectStmt:
			ok = true
		case *ast.DeferStmt:
			// defer wg.Done(): a WaitGroup-bounded fan-out.
			if isMethodOn(calleeObject(pass.Info, n.Call), "sync", "WaitGroup", "Done") {
				ok = true
			}
		}
		return !ok
	})
	return ok
}
