package lint

// hotalloc turns the repo's zero-alloc benchmark claims into a
// compile-time contract. The warm walks (CSR forward/backward
// kernels, EvalBatch lane evaluation) advertise 0 allocs/op in
// BENCH_graph.json and BENCH_batch.json; nothing but a benchmark run
// notices when a refactor quietly makes a scratch slice escape. A
// function opts in with a doc-comment annotation:
//
//	//lint:hotpath [allocs=N]
//
// and the analyzer rebuilds the package with `go build -gcflags=-m`
// and counts the compiler's own escape-analysis verdicts ("escapes to
// heap", "moved to heap") inside the function's line span. More than
// N distinct allocation sites (default 0) is a finding. The budget
// form exists for functions whose contract is "exactly the result
// slice" rather than "nothing".
//
// Parsing -gcflags=-m output is a toolchain dependency, so the
// analyzer self-gates: a cached probe compiles a one-function module
// and checks the expected diagnostics come back. When the probe fails
// (exotic toolchain, sandboxed build cache) the analyzer reports
// nothing and HotAllocSupported lets the driver print a skip notice
// instead of silently passing.

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// HotAlloc flags heap allocations in //lint:hotpath functions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//lint:hotpath functions must stay within their heap-allocation budget (default zero)",
	Run:  runHotAlloc,
}

var hotallocProbe struct {
	once sync.Once
	ok   bool
}

// HotAllocSupported reports whether the toolchain emits parseable
// escape-analysis diagnostics for -gcflags=-m. The probe compiles a
// throwaway single-function module once per process.
func HotAllocSupported() bool {
	hotallocProbe.once.Do(func() {
		dir, err := os.MkdirTemp("", "hotalloc-probe")
		if err != nil {
			return
		}
		defer os.RemoveAll(dir)
		files := map[string]string{
			"go.mod": "module hotallocprobe\n\ngo 1.21\n",
			"p.go":   "package p\n\nfunc Leak() *int {\n\treturn new(int)\n}\n",
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				return
			}
		}
		out, err := escapeOutput(dir)
		hotallocProbe.ok = err == nil && strings.Contains(out, "escapes to heap")
	})
	return hotallocProbe.ok
}

// escapeOutput rebuilds the package in dir with escape-analysis
// diagnostics enabled and returns the compiler's stderr. The build
// cache replays -m diagnostics, so repeated runs stay cheap.
func escapeOutput(dir string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=1", "-o", os.DevNull, ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=-m in %s: %v\n%s", dir, err, stderr.String())
	}
	return stderr.String(), nil
}

// hotpathFunc is one annotated function with its allocation budget.
type hotpathFunc struct {
	decl   *ast.FuncDecl
	budget int
	file   string
	start  int
	end    int
}

// escapeSite is one distinct allocation the compiler reported.
type escapeSite struct {
	file string
	line int
	col  int
	msg  string
}

// escapeLineRe matches `path.go:line:col: message` diagnostics.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

func runHotAlloc(pass *Pass) error {
	var funcs []hotpathFunc
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, arg := range markers(fd.Doc, "hotpath") {
				budget, err := parseAllocBudget(arg)
				if err != nil {
					pass.Reportf(fd.Name.Pos(), "malformed //lint:hotpath annotation: %v", err)
					continue
				}
				start := pass.Fset.Position(fd.Pos())
				end := pass.Fset.Position(fd.End())
				funcs = append(funcs, hotpathFunc{fd, budget, start.Filename, start.Line, end.Line})
			}
		}
	}
	if len(funcs) == 0 || !HotAllocSupported() {
		return nil
	}
	out, err := escapeOutput(pass.Dir)
	if err != nil {
		return err
	}
	sites := parseEscapeSites(pass.Dir, out)
	for _, hf := range funcs {
		var inSpan []escapeSite
		for _, s := range sites {
			if s.file == hf.file && hf.start <= s.line && s.line <= hf.end {
				inSpan = append(inSpan, s)
			}
		}
		if len(inSpan) <= hf.budget {
			continue
		}
		var details []string
		for _, s := range inSpan {
			details = append(details, fmt.Sprintf("line %d: %s", s.line, s.msg))
		}
		pass.Reportf(hf.decl.Name.Pos(), "hotpath function %s has %d heap-allocation site(s), budget %d: %s",
			hf.decl.Name.Name, len(inSpan), hf.budget, strings.Join(details, "; "))
	}
	return nil
}

func parseAllocBudget(arg string) (int, error) {
	if arg == "" {
		return 0, nil
	}
	val, ok := strings.CutPrefix(arg, "allocs=")
	if !ok {
		return 0, fmt.Errorf("unknown argument %q (want `allocs=N`)", arg)
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad allocation budget %q", val)
	}
	return n, nil
}

// parseEscapeSites extracts the distinct heap-allocation sites from
// -gcflags=-m stderr, resolving ./-relative paths against dir.
// "does not escape" and parameter-leak notes are not allocations.
func parseEscapeSites(dir, out string) []escapeSite {
	seen := map[string]escapeSite{}
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		key := fmt.Sprintf("%s:%d:%d", file, lineNo, col)
		if _, ok := seen[key]; !ok {
			seen[key] = escapeSite{file, lineNo, col, msg}
		}
	}
	sites := make([]escapeSite, 0, len(seen))
	for _, s := range seen {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].file != sites[j].file {
			return sites[i].file < sites[j].file
		}
		if sites[i].line != sites[j].line {
			return sites[i].line < sites[j].line
		}
		return sites[i].col < sites[j].col
	})
	return sites
}
