package lint_test

import (
	"path/filepath"
	"testing"

	"icost/internal/lint"
	"icost/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	if !lint.HotAllocSupported() {
		t.Skip("toolchain does not expose parseable -gcflags=-m escape output")
	}
	linttest.Run(t, filepath.Join("testdata", "src", "hotalloc"), lint.HotAlloc)
}

func TestHotAllocSupportedProbe(t *testing.T) {
	// The probe itself must never error out of the suite: whichever
	// way it answers, asking twice must agree (it is cached).
	a, b := lint.HotAllocSupported(), lint.HotAllocSupported()
	if a != b {
		t.Fatalf("HotAllocSupported flapped: %v then %v", a, b)
	}
}
