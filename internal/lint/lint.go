// Package lint is a self-contained static-analysis framework plus the
// analyzers that machine-check this repository's invariants: context
// propagation into the graph walks (ctxflow), sync.Pool Get/Put
// balance (poolbalance), exhaustiveness of switches over the Table 2/3
// node- and edge-kind enums (edgeswitch), metrics-struct vs /metrics
// export agreement (metricreg), goroutine cancellability (gocheck),
// mutex acquisition ordering (lockorder), sync/atomic field hygiene
// (atomichygiene), lockstep updates of the CSR parallel columns
// (colsync), codec version coverage (codecver), and heap-allocation
// budgets on annotated hot paths (hotalloc). cmd/icostvet is the
// multichecker driver; `make lint` runs it over the tree.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature —
// an Analyzer holds a Run function over a type-checked Pass — but is
// built only on the standard library (go/ast, go/types, go/parser and
// `go list` for package metadata), so the repo stays dependency-free.
// Two extra layers support the second-wave analyzers: a lexical
// intraprocedural dataflow walker and a package-level call graph
// (callgraph.go), and source annotations read from doc comments
// (//lint:hotpath, //lint:columns, //lint:codec*; see markers).
//
// # Suppressions
//
// A deliberate exception is annotated in the source with a
// staticcheck-compatible comment:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The comment suppresses matching findings on its own line and on the
// line directly below it. When it appears in the doc comment of a
// function declaration it suppresses matching findings anywhere in
// that function — the natural form for a documented infallible
// wrapper whose body intentionally uses context.Background. A reason
// is mandatory: an ignore comment without one suppresses nothing.
// `*` matches every analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the identifier used in findings and ignore comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports the analyzer's findings for one package via
	// pass.Reportf. Returning an error aborts the whole lint run
	// (reserved for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// IsMain reports whether the package is a command (package main).
	IsMain bool
	// Path is the package's import path ("testdata/<name>" for bare
	// LoadDir packages) and Dir its source directory on disk — the
	// working directory analyzers that shell out (hotalloc) build in.
	Path string
	Dir  string

	report func(Finding)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported diagnostic. Run drops suppressed findings;
// RunAll keeps them with Suppressed set, so drivers can report the
// suppression state (the -json schema exposes it).
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the
// surviving findings sorted by position. Suppressed findings are
// dropped here, so callers never see them.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	all, err := RunAll(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out, nil
}

// RunAll is Run without the suppression filter: every finding is
// returned, with Suppressed marking those an //lint:ignore comment
// covers. Findings are sorted by position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				IsMain:   pkg.Name == "main",
				Path:     pkg.Path,
				Dir:      pkg.Dir,
			}
			pass.report = func(f Finding) {
				f.Suppressed = sup.matches(a.Name, f.Pos)
				out = append(out, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreRe matches `lint:ignore names reason` after the comment
// marker; the reason group must be non-empty for the ignore to bind.
var ignoreRe = regexp.MustCompile(`^\s*lint:ignore\s+(\S+)\s+(\S.*)$`)

// suppressions indexes the //lint:ignore comments of one package.
type suppressions struct {
	// lines maps file -> line -> analyzer names suppressed on that
	// line and the next.
	lines map[string]map[int][]string
	// spans are function bodies whose doc comment carries an ignore:
	// any finding inside is suppressed for the named analyzers.
	spans []span
}

type span struct {
	file       string
	start, end int // line range, inclusive
	names      []string
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{lines: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := s.lines[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					s.lines[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], strings.Split(m[1], ",")...)
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := ignoreRe.FindStringSubmatch(strings.TrimPrefix(c.Text, "//"))
				if m == nil {
					continue
				}
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				s.spans = append(s.spans, span{
					file:  start.Filename,
					start: start.Line,
					end:   end.Line,
					names: strings.Split(m[1], ","),
				})
			}
		}
	}
	return s
}

func nameMatches(names []string, analyzer string) bool {
	for _, n := range names {
		if n == analyzer || n == "*" {
			return true
		}
	}
	return false
}

func (s *suppressions) matches(analyzer string, pos token.Position) bool {
	if byLine := s.lines[pos.Filename]; byLine != nil {
		if nameMatches(byLine[pos.Line], analyzer) || nameMatches(byLine[pos.Line-1], analyzer) {
			return true
		}
	}
	for _, sp := range s.spans {
		if sp.file == pos.Filename && sp.start <= pos.Line && pos.Line <= sp.end &&
			nameMatches(sp.names, analyzer) {
			return true
		}
	}
	return false
}

// markerRe matches `lint:<marker> [args]` after the comment marker.
var markerRe = regexp.MustCompile(`^\s*lint:([a-z-]+)(?:\s+(\S.*))?$`)

// markers returns the argument strings of every `//lint:<name> args`
// line in a comment group (one entry per matching line, possibly
// empty when the marker takes no arguments). This is how analyzers
// read source annotations: //lint:hotpath on warm-walk functions,
// //lint:columns on parallel-array structs, //lint:codec and friends
// on version constants and codec functions.
func markers(doc *ast.CommentGroup, name string) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		m := markerRe.FindStringSubmatch(strings.TrimPrefix(c.Text, "//"))
		if m != nil && m[1] == name {
			out = append(out, strings.TrimSpace(m[2]))
		}
	}
	return out
}

// namedTypeName returns "Type" for a (possibly pointer-to) named type,
// or "" for anything else.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeSignature returns the signature of a call's callee, or nil
// for conversions, builtins and other non-function calls.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// calleeObject resolves the called function or method object of a
// call, or nil when the callee is not a named function (func values,
// conversions, builtins).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the named function path.name
// (e.g. "context", "Background").
func isPkgFunc(obj types.Object, path, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == path
}

// isMethodOn reports whether obj is the method recvPath.recvType.name
// (pointer or value receiver).
func isMethodOn(obj types.Object, recvPath, recvType, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj2 := named.Obj()
	return obj2.Name() == recvType && obj2.Pkg() != nil && obj2.Pkg().Path() == recvPath
}
