// Package linttest runs lint analyzers over testdata packages and
// checks their findings against `// want` expectations, in the style
// of golang.org/x/tools/go/analysis/analysistest:
//
//	t := pool.Get().(*buf) // want `never released`
//
// Each backquoted fragment is a regexp that must match one finding
// reported on that line; findings without a matching want, and wants
// without a matching finding, fail the test. Suppressed findings
// never reach the matcher, so a testdata line that pairs a violation
// with a //lint:ignore comment and carries no want proves the
// suppression works.
package linttest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"icost/internal/lint"
)

var wantRe = regexp.MustCompile("`([^`]+)`")

// Run loads the package rooted at dir and applies the analyzers,
// matching findings against the // want comments in the sources.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(f.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding at %s: %s: %s", position(f.Pos), f.Analyzer, f.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

func position(p token.Position) string { return p.String() }
