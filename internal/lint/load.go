package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// The loader type-checks everything from source: `go list -json
// -deps` supplies package metadata (files, import maps) and go/types
// checks packages in dependency order, with the standard library
// resolved the same way. No export data, no network, no module
// downloads — the toolchain's source tree is the single input, which
// keeps the linter usable in hermetic builds. One process-wide cache
// shares the work across Load and LoadDir calls (the analyzer tests
// would otherwise re-check the stdlib once per test).
var shared = struct {
	mu    sync.Mutex
	fset  *token.FileSet
	meta  map[string]*listPkg
	typed map[string]*types.Package
	// files retains the parsed sources of non-stdlib packages so a
	// pass over one package can read doc-comment annotations (e.g.
	// //lint:columns) declared in an imported package. Stdlib ASTs
	// are not retained — nothing annotates them and they dominate
	// the dependency closure.
	files map[string][]*ast.File
}{
	fset:  token.NewFileSet(),
	meta:  map[string]*listPkg{},
	typed: map[string]*types.Package{},
	files: map[string][]*ast.File{},
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// packageFiles returns the retained parsed sources of a previously
// loaded non-stdlib package, or nil when the package is unknown or
// from the standard library.
func packageFiles(path string) []*ast.File {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	return shared.files[path]
}

// goList runs `go list -e -json -deps args...` in dir and merges the
// results into the shared metadata map, returning the listed
// packages in order. CGO_ENABLED=0 selects the pure-Go variants of
// stdlib packages so every dependency type-checks from source.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json", "-deps"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
		if _, ok := shared.meta[p.ImportPath]; !ok {
			shared.meta[p.ImportPath] = p
		}
	}
	return pkgs, nil
}

// checkPath type-checks the package at import path (and, recursively,
// its dependencies) from source, caching results. info, when non-nil,
// receives the type-checker's facts for this package only.
func checkPath(path string, info *types.Info) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := shared.typed[path]; ok && info == nil {
		return tp, nil
	}
	lp, ok := shared.meta[path]
	if !ok {
		return nil, fmt.Errorf("lint: no metadata for package %q", path)
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("lint: %s: %s", path, lp.Error.Err)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		af, err := parser.ParseFile(shared.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	tp, err := checkFiles(path, lp.ImportMap, files, info)
	if err == nil && !lp.Standard {
		shared.files[path] = files
	}
	return tp, err
}

// checkFiles type-checks one package's parsed files, resolving
// imports through the shared cache.
func checkFiles(path string, importMap map[string]string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if mapped, ok := importMap[imp]; ok {
				imp = mapped
			}
			return checkPath(imp, nil)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	tp, err := conf.Check(path, shared.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	shared.typed[path] = tp
	return tp, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load lists patterns (e.g. "./...") relative to dir, type-checks the
// matched packages and their dependencies from source, and returns
// the matched packages with full type information. Test files are not
// loaded: the invariants guard library and command code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		info := newInfo()
		var files []*ast.File
		for _, name := range lp.GoFiles {
			af, err := parser.ParseFile(shared.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, af)
		}
		tp, err := checkFiles(lp.ImportPath, lp.ImportMap, files, info)
		if err != nil {
			return nil, err
		}
		shared.files[lp.ImportPath] = files
		out = append(out, &Package{
			Path:  lp.ImportPath,
			Name:  lp.Name,
			Dir:   lp.Dir,
			Fset:  shared.fset,
			Files: files,
			Types: tp,
			Info:  info,
		})
	}
	return out, nil
}

// LoadDir loads the .go files of one bare directory — a testdata
// package outside the module graph — resolving its imports (standard
// library only) through the shared loader.
func LoadDir(dir string) (*Package, error) {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		af, err := parser.ParseFile(shared.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		for _, imp := range af.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[p] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var missing []string
	for imp := range imports {
		if _, ok := shared.meta[imp]; !ok && imp != "unsafe" {
			missing = append(missing, imp)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		if _, err := goList(dir, missing); err != nil {
			return nil, err
		}
	}
	info := newInfo()
	path := "testdata/" + filepath.Base(dir)
	tp, err := checkFiles(path, nil, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  path,
		Name:  files[0].Name.Name,
		Dir:   dir,
		Fset:  shared.fset,
		Files: files,
		Types: tp,
		Info:  info,
	}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
