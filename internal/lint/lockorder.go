package lint

// lockorder builds the package's mutex-acquisition graph and flags
// cycles. A node is a lock *class* — the declaring struct type plus
// field name ("Aggregator.mu", "aggregate.memoMu") or a package-level
// variable — and an edge A → B means some path acquires B while an
// instance of A is held, either directly or through an intra-package
// call chain (the transitive closure of the call graph's acquire
// sets). Two code paths that nest the same pair of classes in
// opposite orders are a latent deadlock the race detector only
// catches when both paths collide at runtime; the graph makes the
// inconsistency a compile-time finding. Acquiring a class while an
// instance of the same class is held is reported too (self-deadlock
// for Mutex, formally prohibited recursion for RWMutex.RLock).
//
// Held sets are tracked with the block-scoped lexical walk from
// callgraph.go: a release inside a terminated branch (unlock; return)
// does not free the lock on the fallthrough path, a deferred unlock
// holds to function end, and function literals restart with an empty
// held set. TryLock is ignored (its acquisition is conditional on a
// result the lexical walk cannot see). All of this under-approximates
// the true may-hold relation, so every reported cycle is backed by
// real acquisition sites.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder flags inconsistent mutex acquisition order.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex classes must nest in one global acquisition order (no cycles, no same-class recursion)",
	Run:  runLockOrder,
}

type lockOp int

const (
	lockOpNone lockOp = iota
	lockOpAcquire
	lockOpRelease
)

// lockCallSite is one intra-package call with the lock classes held
// at the call site.
type lockCallSite struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

// funcLockInfo accumulates one function body's direct acquisitions
// and outgoing calls.
type funcLockInfo struct {
	acquires map[string]bool
	calls    []lockCallSite
}

// lockGraph is the package's acquisition-order graph.
type lockGraph struct {
	edges map[string]map[string]token.Pos // from -> to -> first witness
}

func (g *lockGraph) add(from, to string, pos token.Pos) {
	m := g.edges[from]
	if m == nil {
		m = map[string]token.Pos{}
		g.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// lockWalker is the flowVisitor tracking the held set down one path.
type lockWalker struct {
	pass  *Pass
	graph *lockGraph
	info  *funcLockInfo
	lits  *[]*ast.FuncLit
	held  []string
}

func (w *lockWalker) Fork() flowVisitor {
	fork := *w
	fork.held = append([]string(nil), w.held...)
	return &fork
}

func (w *lockWalker) FuncLit(lit *ast.FuncLit) {
	*w.lits = append(*w.lits, lit)
}

func (w *lockWalker) Call(call *ast.CallExpr, deferred bool) {
	op, class := classifyLockOp(w.pass, call)
	switch op {
	case lockOpAcquire:
		if class == "" || deferred {
			return
		}
		for _, h := range w.held {
			w.graph.add(h, class, call.Pos())
		}
		w.info.acquires[class] = true
		w.held = append(w.held, class)
	case lockOpRelease:
		if class == "" || deferred {
			// A deferred unlock fires at function end: the lock
			// stays held for everything that follows.
			return
		}
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i] == class {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
	default:
		if fn := staticCallee(w.pass, call); fn != nil {
			w.info.calls = append(w.info.calls, lockCallSite{
				callee: fn,
				held:   append([]string(nil), w.held...),
				pos:    call.Pos(),
			})
		}
	}
}

// classifyLockOp recognizes sync.Mutex / sync.RWMutex acquire and
// release calls and names the lock class they operate on.
func classifyLockOp(pass *Pass, call *ast.CallExpr) (lockOp, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOpNone, ""
	}
	obj := pass.Info.Uses[sel.Sel]
	var op lockOp
	switch {
	case isMethodOn(obj, "sync", "Mutex", "Lock"),
		isMethodOn(obj, "sync", "RWMutex", "Lock"),
		isMethodOn(obj, "sync", "RWMutex", "RLock"):
		op = lockOpAcquire
	case isMethodOn(obj, "sync", "Mutex", "Unlock"),
		isMethodOn(obj, "sync", "RWMutex", "Unlock"),
		isMethodOn(obj, "sync", "RWMutex", "RUnlock"):
		op = lockOpRelease
	default:
		return lockOpNone, ""
	}
	return op, lockClassOf(pass, sel)
}

// lockClassOf names the mutex a `<recv>.Lock`-shaped selector
// operates on: "Struct.field" for struct-field mutexes (including
// promoted ones), the variable name for package-level mutexes, and
// "" for locals, which carry no cross-function ordering contract.
func lockClassOf(pass *Pass, sel *ast.SelectorExpr) string {
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if name := namedTypeName(s.Recv()); name != "" {
				return name + "." + x.Sel.Name
			}
			// Field of an anonymous struct: fall back to the root
			// identifier when it is a package-level variable
			// (e.g. a `var state = struct{ mu sync.Mutex; ... }`).
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if v, ok := pass.Info.Uses[id].(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
					return id.Name + "." + x.Sel.Name
				}
			}
			return ""
		}
		// Package-qualified or cross-scope variable: pkg.Mu.Lock().
		if v, ok := pass.Info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return v.Name()
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[x].(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			return v.Name()
		}
		// Promoted method on an embedded mutex: w.Lock() where the
		// mutex is an embedded field of w's struct type.
		if s, ok := pass.Info.Selections[sel]; ok && len(s.Index()) > 1 {
			if name := namedTypeName(s.Recv()); name != "" {
				return name + "." + embeddedFieldPath(s)
			}
		}
	}
	return ""
}

// embeddedFieldPath renders the field path of a promoted-method
// selection ("Mutex", or "inner.Mutex" through nested embedding).
func embeddedFieldPath(s *types.Selection) string {
	t := s.Recv()
	var parts []string
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			break
		}
		f := st.Field(i)
		parts = append(parts, f.Name())
		t = f.Type()
	}
	return strings.Join(parts, ".")
}

func runLockOrder(pass *Pass) error {
	funcs := declaredFuncs(pass)
	graph := &lockGraph{edges: map[string]map[string]token.Pos{}}
	infos := map[*types.Func]*funcLockInfo{}
	var anon []*funcLockInfo

	walk := func(body *ast.BlockStmt, info *funcLockInfo) {
		// Function literals nest arbitrarily; each restarts with an
		// empty held set and its own info (they are not callees in
		// the static call graph, but their edges and call sites
		// still feed the package graph).
		queue := []*ast.FuncLit{}
		w := &lockWalker{pass: pass, graph: graph, info: info, lits: &queue}
		walkFlow(body.List, w)
		for len(queue) > 0 {
			lit := queue[0]
			queue = queue[1:]
			li := &funcLockInfo{acquires: map[string]bool{}}
			anon = append(anon, li)
			lw := &lockWalker{pass: pass, graph: graph, info: li, lits: &queue}
			walkFlow(lit.Body.List, lw)
		}
	}
	names := make([]*types.Func, 0, len(funcs))
	for fn := range funcs {
		names = append(names, fn)
	}
	sort.Slice(names, func(i, j int) bool { return funcs[names[i]].Pos() < funcs[names[j]].Pos() })
	for _, fn := range names {
		info := &funcLockInfo{acquires: map[string]bool{}}
		infos[fn] = info
		walk(funcs[fn].Body, info)
	}

	// Transitive acquire sets over the intra-package call graph.
	trans := map[*types.Func]map[string]bool{}
	for fn, info := range infos {
		t := map[string]bool{}
		for c := range info.acquires {
			t[c] = true
		}
		trans[fn] = t
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			t := trans[fn]
			for _, site := range info.calls {
				for c := range trans[site.callee] {
					if !t[c] {
						t[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Call-site edges: everything the callee may transitively acquire
	// nests under whatever the caller holds at the site.
	addCallEdges := func(info *funcLockInfo) {
		for _, site := range info.calls {
			if len(site.held) == 0 {
				continue
			}
			for _, h := range site.held {
				for c := range trans[site.callee] {
					graph.add(h, c, site.pos)
				}
			}
		}
	}
	for _, fn := range names {
		addCallEdges(infos[fn])
	}
	for _, li := range anon {
		addCallEdges(li)
	}

	reportCycles(pass, graph)
	return nil
}

// reportCycles finds the strongly connected components of the
// acquisition graph and reports one finding per cycle (plus one per
// same-class self-edge), each citing its witness sites.
func reportCycles(pass *Pass, g *lockGraph) {
	classes := make([]string, 0, len(g.edges))
	for c := range g.edges {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	for _, c := range classes {
		if pos, ok := g.edges[c][c]; ok {
			pass.Reportf(pos, "lock class %s acquired while already held (same-class nesting deadlocks sync.Mutex and is prohibited for RWMutex)", c)
		}
	}

	for _, scc := range stronglyConnected(classes, g) {
		if len(scc) < 2 {
			continue
		}
		cycle := cyclePath(scc, g)
		if len(cycle) == 0 {
			continue
		}
		var steps []string
		var last token.Pos
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			pos := g.edges[from][to]
			p := pass.Fset.Position(pos)
			steps = append(steps, fmt.Sprintf("%s -> %s (%s:%d)", from, to, filepath.Base(p.Filename), p.Line))
			if pos > last {
				last = pos
			}
		}
		pass.Reportf(last, "inconsistent lock order: %s", strings.Join(steps, ", "))
	}
}

// stronglyConnected returns the SCCs of the class graph (Tarjan),
// deterministic via the sorted class order.
func stronglyConnected(classes []string, g *lockGraph) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(g.edges[v]))
		for t := range g.edges[v] {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, c := range classes {
		if _, seen := index[c]; !seen {
			strong(c)
		}
	}
	return sccs
}

// cyclePath extracts one concrete cycle inside an SCC, starting from
// its smallest class for determinism.
func cyclePath(scc []string, g *lockGraph) []string {
	in := map[string]bool{}
	for _, c := range scc {
		in[c] = true
	}
	start := scc[0]
	seen := map[string]bool{start: true}
	path := []string{start}
	var dfs func(v string) []string
	dfs = func(v string) []string {
		tos := make([]string, 0, len(g.edges[v]))
		for t := range g.edges[v] {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if !in[w] {
				continue
			}
			if w == start && len(path) > 1 {
				return path
			}
			if seen[w] {
				continue
			}
			seen[w] = true
			path = append(path, w)
			if cyc := dfs(w); cyc != nil {
				return cyc
			}
			path = path[:len(path)-1]
		}
		return nil
	}
	return dfs(start)
}
