package lint_test

import (
	"path/filepath"
	"testing"

	"icost/internal/lint"
	"icost/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "lockorder"), lint.LockOrder)
}
