package lint

import (
	"go/ast"
	"go/types"
	"reflect"
)

// MetricReg keeps the engine's observability wiring closed under
// drift: every field of the internal `metrics` struct must be read by
// the `Metrics()` snapshot method (directly or through a helper it
// calls), and every field of the exported `Snapshot` struct must be
// populated in the composite literal Metrics() returns and carry a
// json tag — otherwise a counter can be incremented forever yet never
// appear on /metrics, or a Snapshot field can be served as a
// permanent zero. The analyzer activates in any package that declares
// both a `metrics` struct and a `Snapshot` struct with a Metrics()
// method; today that is internal/engine.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc:  "every metrics field must be exported by Metrics()/the /metrics handler, and every Snapshot field populated",
	Run:  runMetricReg,
}

func runMetricReg(pass *Pass) error {
	scope := pass.Pkg.Scope()
	metricsStruct := structNamed(scope, "metrics")
	snapshotStruct := structNamed(scope, "Snapshot")
	if metricsStruct == nil || snapshotStruct == nil {
		return nil
	}
	metricsDecl, metricsFields := structFields(pass, "metrics")
	snapshotDecl, snapshotFields := structFields(pass, "Snapshot")
	if metricsDecl == nil || snapshotDecl == nil {
		return nil
	}

	// Snapshot fields need json tags: /metrics serves the struct as
	// flat JSON and an untagged field breaks the naming convention.
	for _, f := range snapshotFields {
		tag := ""
		if f.tag != nil {
			tag = reflect.StructTag(trimBackquotes(f.tag.Value)).Get("json")
		}
		if tag == "" || tag == "-" {
			pass.Reportf(f.pos.Pos(), "Snapshot field %s has no json tag: it will serve under the raw Go name (or not at all)", f.name)
		}
	}

	metricsFns := findMetricsFuncs(pass)
	if len(metricsFns) == 0 {
		pass.Reportf(snapshotDecl.Pos(), "package declares metrics and Snapshot structs but no Metrics() method returning Snapshot")
		return nil
	}
	for _, fd := range metricsFns {
		checkMetricsFunc(pass, fd, metricsFields, snapshotFields)
	}
	return nil
}

type fieldInfo struct {
	name string
	obj  types.Object
	tag  *ast.BasicLit
	pos  ast.Node
}

// structNamed returns the struct type declared under name, or nil.
func structNamed(scope *types.Scope, name string) *types.Struct {
	tn, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	s, _ := tn.Type().Underlying().(*types.Struct)
	return s
}

// structFields returns the AST declaration and fields of the named
// struct type in the package.
func structFields(pass *Pass, name string) (*ast.TypeSpec, []fieldInfo) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return nil, nil
				}
				var fields []fieldInfo
				for _, f := range st.Fields.List {
					for _, id := range f.Names {
						fields = append(fields, fieldInfo{
							name: id.Name,
							obj:  pass.Info.Defs[id],
							tag:  f.Tag,
							pos:  id,
						})
					}
				}
				return ts, fields
			}
		}
	}
	return nil, nil
}

// findMetricsFuncs returns the package's Metrics() methods/functions
// whose single result is the package's Snapshot type.
func findMetricsFuncs(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Metrics" || fd.Body == nil {
				continue
			}
			if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
				continue
			}
			tv, ok := pass.Info.Types[fd.Type.Results.List[0].Type]
			if !ok {
				continue
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Name() != "Snapshot" || named.Obj().Pkg() != pass.Pkg {
				continue
			}
			out = append(out, fd)
		}
	}
	return out
}

// checkMetricsFunc verifies the export surface of one Metrics()
// implementation.
func checkMetricsFunc(pass *Pass, fd *ast.FuncDecl, metricsFields, snapshotFields []fieldInfo) {
	// The bodies Metrics() reads from: its own plus every same-package
	// function it calls directly (helpers like batchHistSnapshot).
	bodies := []*ast.BlockStmt{fd.Body}
	declOf := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if f, ok := decl.(*ast.FuncDecl); ok && f.Body != nil {
				if obj := pass.Info.Defs[f.Name]; obj != nil {
					declOf[obj] = f
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeObject(pass.Info, call); callee != nil {
			if helper, ok := declOf[callee]; ok {
				bodies = append(bodies, helper.Body)
			}
		}
		return true
	})

	// Every metrics field must be selected somewhere in those bodies.
	read := map[types.Object]bool{}
	for _, body := range bodies {
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := pass.Info.Selections[sel]; ok {
				read[s.Obj()] = true
			}
			return true
		})
	}
	for _, f := range metricsFields {
		if f.obj != nil && !read[f.obj] {
			pass.Reportf(f.pos.Pos(), "metrics field %s is not read by %s(): it will be counted but never served on /metrics",
				f.name, fd.Name.Name)
		}
	}

	// Every Snapshot field must be keyed in the composite literal(s)
	// Metrics() builds.
	set := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[lit]
		if !ok {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok || named.Obj().Name() != "Snapshot" || named.Obj().Pkg() != pass.Pkg {
			return true
		}
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					set[id.Name] = true
				}
			}
		}
		return true
	})
	for _, f := range snapshotFields {
		if !set[f.name] {
			pass.Reportf(f.pos.Pos(), "Snapshot field %s is never populated by %s(): /metrics would serve a permanent zero",
				f.name, fd.Name.Name)
		}
	}
}

// trimBackquotes strips the surrounding quotes of a struct-tag
// literal.
func trimBackquotes(s string) string {
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}
