package lint

import (
	"go/ast"
	"go/types"
)

// PoolBalance enforces the scratch-pool discipline of
// internal/depgraph/pool.go: a value obtained from a sync.Pool (or
// from an acquire-style wrapper around one) must be released through
// a deferred Put (or a deferred release-style wrapper call) in the
// same function. Defer is the point, not a style nit — only a defer
// releases the scratch on every return path, early returns and
// panics included; a trailing Put silently leaks the value on the
// error paths, which shows up as steady-state allocation growth under
// the engine's query load. Functions that transfer ownership of the
// pooled value are exempt: returning it (the acquire wrappers
// themselves), returning a reslice of it (trace.AcquireInsts), or
// storing it into a struct field or composite literal (the graph
// arena rides inside the Graph it backs; whoever holds the container
// owes the Release).
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc:  "sync.Pool values must be released via a deferred Put (or release wrapper) on every return path",
	Run:  runPoolBalance,
}

func runPoolBalance(pass *Pass) error {
	acquirers, releasers := poolWrappers(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolUse(pass, fd, acquirers, releasers)
		}
	}
	return nil
}

// poolWrappers classifies the package's own functions: acquirers
// bind a (*sync.Pool).Get result to a variable and return that
// variable (ownership moves to the caller); releasers pass one of
// their parameters to (*sync.Pool).Put. Calls to them count the same
// as direct Get/Put.
func poolWrappers(pass *Pass) (acquirers, releasers map[types.Object]bool) {
	acquirers = map[types.Object]bool{}
	releasers = map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			params := map[types.Object]bool{}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if p := pass.Info.Defs[name]; p != nil {
						params[p] = true
					}
				}
			}
			pooled := map[types.Object]bool{} // vars bound from Pool.Get
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Rhs) != 1 {
						return true
					}
					call := acquireCall(n.Rhs[0])
					if call == nil || !isMethodOn(calleeObject(pass.Info, call), "sync", "Pool", "Get") {
						return true
					}
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if o := identObject(pass.Info, id); o != nil {
								pooled[o] = true
							}
						}
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if id, ok := ast.Unparen(res).(*ast.Ident); ok && pooled[pass.Info.Uses[id]] {
							acquirers[obj] = true
						}
						// `return pool.Get().(*T)` without a binding.
						if call := acquireCall(res); call != nil &&
							isMethodOn(calleeObject(pass.Info, call), "sync", "Pool", "Get") {
							acquirers[obj] = true
						}
					}
				case *ast.CallExpr:
					if isMethodOn(calleeObject(pass.Info, n), "sync", "Pool", "Put") {
						for _, arg := range n.Args {
							if id, ok := ast.Unparen(arg).(*ast.Ident); ok && params[pass.Info.Uses[id]] {
								releasers[obj] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return acquirers, releasers
}

// identObject resolves an identifier to its object, whether the
// identifier defines it (:=) or re-assigns it (=).
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkPoolUse verifies every pool acquisition in fd is matched by a
// deferred release of the same variable.
func checkPoolUse(pass *Pass, fd *ast.FuncDecl, acquirers, releasers map[types.Object]bool) {
	// Collect (variable, position) pairs bound from Get/acquire calls.
	type acquisition struct {
		obj  types.Object
		name string
		pos  ast.Node
	}
	var got []acquisition
	isAcquire := func(call *ast.CallExpr) bool {
		callee := calleeObject(pass.Info, call)
		return isMethodOn(callee, "sync", "Pool", "Get") || acquirers[callee]
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call := acquireCall(n.Rhs[0])
			if call == nil || !isAcquire(call) {
				return true
			}
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				got = append(got, acquisition{obj: identObject(pass.Info, id), name: id.Name, pos: n})
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isAcquire(call) {
				pass.Reportf(n.Pos(), "result of pool Get is discarded: the value can never be Put back")
			}
		}
		return true
	})
	if len(got) == 0 {
		return
	}
	// A variable handed to the caller via return transfers ownership;
	// the acquire wrappers themselves pass this way.
	returned := map[types.Object]bool{}
	// Collect the variables released by deferred Put/release calls.
	released := map[types.Object]bool{}
	nonDeferred := map[types.Object]ast.Node{}
	markArgs := func(call *ast.CallExpr, deferred bool) {
		callee := calleeObject(pass.Info, call)
		if !isMethodOn(callee, "sync", "Pool", "Put") && !releasers[callee] {
			return
		}
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				continue
			}
			if deferred {
				released[obj] = true
			} else if _, seen := nonDeferred[obj]; !seen {
				nonDeferred[obj] = call
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			markArgs(n.Call, true)
			// A deferred closure releasing the value also counts.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						markArgs(call, true)
					}
					return true
				})
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				switch e := ast.Unparen(res).(type) {
				case *ast.Ident:
					if obj := pass.Info.Uses[e]; obj != nil {
						returned[obj] = true
					}
				case *ast.SliceExpr:
					// `return b[:0]` hands the backing array to the
					// caller just as surely as `return b`.
					if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							returned[obj] = true
						}
					}
				}
			}
		case *ast.CompositeLit:
			// `&Graph{arena: a}`: the pooled value rides inside the
			// container; ownership follows the container.
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			// `g.arena = a`: same container transfer, after the fact.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); !ok {
					continue
				}
				if id, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			markArgs(n, false)
		}
		return true
	})
	for _, g := range got {
		if g.obj == nil || released[g.obj] || returned[g.obj] {
			continue
		}
		if _, ok := nonDeferred[g.obj]; ok {
			pass.Reportf(g.pos.Pos(), "pooled value %s is released without defer: early returns and panics leak it — defer the Put", g.name)
			continue
		}
		pass.Reportf(g.pos.Pos(), "pooled value %s is never released: defer the matching Put in this function", g.name)
	}
}

// acquireCall unwraps `pool.Get()`, `pool.Get().(*T)` and
// `acquireX(n)` expressions to the underlying call.
func acquireCall(e ast.Expr) *ast.CallExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return e
	case *ast.TypeAssertExpr:
		if call, ok := ast.Unparen(e.X).(*ast.CallExpr); ok {
			return call
		}
	}
	return nil
}
