package lint_test

import (
	"path/filepath"
	"testing"

	"icost/internal/lint"
	"icost/internal/lint/linttest"
)

// TestSuppressions proves the //lint:ignore mechanism across the
// whole suite: every violation in the testdata package is annotated,
// so any finding that leaks through fails; reasonless and
// wrong-analyzer ignores are shown to be inert via explicit wants.
func TestSuppressions(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "suppress"), lint.All()...)
}

// TestMainExempt proves that package main is out of scope for the
// context and goroutine rules: commands own the root context.
func TestMainExempt(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "mainexempt"), lint.All()...)
}
