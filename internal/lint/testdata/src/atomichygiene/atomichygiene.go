// Package atomichygiene exercises the atomichygiene analyzer: fields
// and package variables accessed via sync/atomic must not be plainly
// loaded or stored anywhere else, composite-literal initialization is
// exempt, and suppression needs a reason.
package atomichygiene

import "sync/atomic"

type Counter struct {
	n    int64
	hits int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Bad() int64 {
	return c.n // want `n is accessed with sync/atomic \(atomichygiene.go:\d+\); this plain access races with it`
}

func (c *Counter) Hits() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *Counter) AddHits() {
	atomic.AddInt64(&c.hits, 2)
}

// NewCounter initializes before publishing; a composite literal is
// not a racy access.
func NewCounter() *Counter {
	return &Counter{n: 0, hits: 0}
}

var flag uint32

func SetFlag() {
	atomic.StoreUint32(&flag, 1)
}

func BadFlag() bool {
	return flag == 1 // want `flag is accessed with sync/atomic`
}

// Plain never touches sync/atomic, so plain access is fine.
type Plain struct{ v int64 }

func (p *Plain) Set(x int64) { p.v = x }

func (p *Plain) Get() int64 { return p.v }

type Snapshotted struct{ seq uint64 }

func (s *Snapshotted) Bump() {
	atomic.AddUint64(&s.seq, 1)
}

// Locked reads seq under the writer's own exclusion; the suppression
// documents why the plain read cannot race.
//
//lint:ignore atomichygiene read only on the single writer goroutine, no concurrent Bump by construction
func (s *Snapshotted) Locked() uint64 {
	return s.seq
}
