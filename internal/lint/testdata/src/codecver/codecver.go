// Package codecver exercises the codecver analyzer: declared version
// constants must be dispatched by the annotated decoder, encoders
// must reference the newest version and nothing older, and every
// annotated codec needs both halves.
package codecver

import "fmt"

// Versions of the toy format, wired up correctly.
//
//lint:codec toy
const (
	toyV1      = 1
	toyV2      = 2
	toyCurrent = toyV2
)

// decodeToy dispatches every declared version.
//
//lint:codec-decode toy
func decodeToy(version int) error {
	switch version {
	case toyV1:
		return nil
	case toyV2:
		return nil
	default:
		return fmt.Errorf("toy: unknown version %d", version)
	}
}

// encodeToy emits the newest version.
//
//lint:codec-encode toy
func encodeToy() int {
	return toyCurrent
}

// The gap codec leaves v2 out of the decoder and encodes v1.
//
//lint:codec gap
const (
	gapV1 = 1
	gapV2 = 2
)

//lint:codec-decode gap
func decodeGap(version int) error { // want `decoder decodeGap for codec "gap" does not dispatch version\(s\) gapV2`
	switch version {
	case gapV1:
		return nil
	}
	return fmt.Errorf("gap: unknown version %d", version)
}

//lint:codec-encode gap
func encodeGap() int { // want `encoder encodeGap for codec "gap" does not reference the newest version constant gapV2=2`
	return gapV1 // want `encoder for codec "gap" references stale version constant gapV1 \(newest is gapV2=2\)`
}

// The halfway codec decodes but never encodes.
//
//lint:codec halfway
const halfwayV1 = 1 // want `codec "halfway" declares version constants but no encoder is annotated`

//lint:codec-decode halfway
func decodeHalfway(version int) error {
	switch version {
	case halfwayV1:
		return nil
	}
	return fmt.Errorf("halfway: unknown version %d", version)
}

//lint:codec-decode ghost
func decodeGhost(version int) error { // want `//lint:codec-decode ghost has no matching //lint:codec const declaration`
	return nil
}

// The legacy codec's halves live in a sibling tool; the suppression
// records that.
//
//lint:codec legacy
//lint:ignore codecver decoder and encoder live in the exporter tool, tracked there
const legacyV1 = 1
