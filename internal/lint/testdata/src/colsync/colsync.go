// Package colsync exercises the colsync analyzer: whole-column
// writes to an annotated lockstep group must touch every column,
// element writes are exempt, composite literals may set none or all,
// and instances are tracked separately.
package colsync

// Table is a toy struct-of-arrays with three lockstep columns and
// one free-standing field.
//
//lint:columns cols A,B,C
type Table struct {
	A    []int
	B    []int
	C    []int
	Name string
}

// Grow touches all three columns: fine.
func Grow(t *Table, n int) {
	t.A = append(t.A, n)
	t.B = append(t.B, n)
	t.C = append(t.C, n)
}

// BadGrow extends one column and leaves its siblings behind.
func BadGrow(t *Table, n int) {
	t.A = append(t.A, n) // want `t writes lockstep column\(s\) A of colsync.Table group "cols" without sibling\(s\) B, C`
	t.Name = "grown"
}

// Element writes do not desynchronize the index space.
func Element(t *Table, i, v int) {
	t.A[i] = v
}

// BadLit keys a strict subset of the group.
func BadLit() *Table {
	return &Table{ // want `literal of colsync.Table sets lockstep column\(s\) A, B of group "cols" but not C`
		A: []int{1},
		B: []int{2},
	}
}

// GoodLit keys the whole group.
func GoodLit() *Table {
	return &Table{A: nil, B: nil, C: nil}
}

// EmptyLit keys none of the group: the zero value is in sync.
func EmptyLit() *Table {
	return &Table{Name: "zero"}
}

// TwoInstances keeps per-instance accounting: t is complete, u is not.
func TwoInstances(t, u *Table) {
	t.A = nil
	t.B = nil
	t.C = nil
	u.A = nil // want `u writes lockstep column\(s\) A of colsync.Table group "cols" without sibling\(s\) B, C`
}

// Forgiven trims one column deliberately; the suppression documents
// the invariant that makes it safe.
//
//lint:ignore colsync A is the only column consulted before the rebuild two lines down
func Forgiven(t *Table) {
	t.A = t.A[:0]
}
