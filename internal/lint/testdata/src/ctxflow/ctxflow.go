// Package ctxflow is analyzer testdata: context propagation.
package ctxflow

import "context"

// step is a context-accepting callee.
func step(ctx context.Context) error { return ctx.Err() }

// Walk threads its caller's context: no finding.
func Walk(ctx context.Context) error { return step(ctx) }

// bad mints a root context in library code (rule 1 only; unexported
// keeps rule 2 out of the picture).
func bad() error {
	ctx := context.Background() // want `context\.Background\(\) in library code`
	return step(ctx)
}

// alsoBad uses TODO.
func alsoBad() error {
	return step(context.TODO()) // want `context\.TODO\(\) in library code`
}

// Entry trips both rules: an exported entry point without a ctx
// parameter, minting its own root context to reach step.
func Entry() error { // want `exported Entry has no context\.Context parameter`
	return step(context.Background()) // want `context\.Background\(\) in library code`
}

// Runner carries a stored context; Go shows rule 2 firing on its own
// (the ctx comes from the struct, not from context.Background).
type Runner struct{ ctx context.Context }

// Go is an exported entry point calling context-accepting code
// without accepting a context itself.
func (r *Runner) Go() error { // want `exported Go has no context\.Context parameter`
	return step(r.ctx)
}

// Deferred hands a closure a context later: closures are exempt from
// rule 2, so no finding.
func Deferred() func(context.Context) error {
	return func(ctx context.Context) error { return step(ctx) }
}

var _ = bad
var _ = alsoBad
