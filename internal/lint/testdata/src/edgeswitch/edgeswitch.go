// Package edgeswitch is analyzer testdata: enum switch
// exhaustiveness.
package edgeswitch

// FlowKind is a *Kind enum the analyzer targets.
type FlowKind uint8

// The three flow kinds.
const (
	KindA FlowKind = iota
	KindB
	KindC
)

// Exhaustive covers every constant: no finding.
func Exhaustive(k FlowKind) int {
	switch k {
	case KindA:
		return 1
	case KindB:
		return 2
	case KindC:
		return 3
	}
	return 0
}

// PanicDefault uses the escape hatch: unknown kinds fail loudly.
func PanicDefault(k FlowKind) int {
	switch k {
	case KindA:
		return 1
	default:
		panic("edgeswitch: unknown FlowKind")
	}
}

// Missing has neither full coverage nor a default.
func Missing(k FlowKind) int {
	switch k { // want `switch over edgeswitch\.FlowKind is not exhaustive: missing KindB, KindC`
	case KindA:
		return 1
	}
	return 0
}

// SilentDefault lumps the missing kinds into a quiet default.
func SilentDefault(k FlowKind) int {
	switch k { // want `hides KindC behind a non-panicking default`
	case KindA, KindB:
		return 1
	default:
		return 0
	}
}

// Mode is out of scope: the type name does not end in Kind, so the
// partial switch is fine.
type Mode uint8

// The two modes.
const (
	ModeX Mode = iota
	ModeY
)

// OutOfScope switches over a non-Kind enum.
func OutOfScope(m Mode) int {
	switch m {
	case ModeX:
		return 1
	}
	return 0
}

// TaglessOK is a tagless switch: never an enum switch.
func TaglessOK(k FlowKind) int {
	switch {
	case k == KindA:
		return 1
	default:
		return 0
	}
}
