// Package gocheck is analyzer testdata: goroutine cancellability.
package gocheck

import (
	"context"
	"sync"
)

// CtxWorker waits on ctx.Done: fine.
func CtxWorker(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// CtxRef merely references a context value: cancellation is threaded
// through, fine.
func CtxRef(ctx context.Context, f func(context.Context)) {
	go func() { f(ctx) }()
}

// Ranger drains a closable work queue: fine.
func Ranger(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// Selecty blocks on a done channel via select: fine.
func Selecty(done chan struct{}) {
	go func() {
		select {
		case <-done:
		}
	}()
}

// Bounded is a WaitGroup fan-out: fine.
func Bounded(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Leaky spins forever with no stop condition.
func Leaky() {
	go func() { // want `goroutine has no visible stop condition`
		for {
		}
	}()
}

// worker is resolvable same-package but unstoppable.
func worker() {
	for {
	}
}

// Named launches the unstoppable named worker.
func Named() {
	go worker() // want `goroutine has no visible stop condition`
}

// Opaque launches a func value the analyzer cannot see into.
func Opaque(f func()) {
	go f() // want `cannot see into`
}
