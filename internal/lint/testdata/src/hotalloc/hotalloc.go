// Package hotalloc exercises the hotalloc analyzer: //lint:hotpath
// functions must stay within their heap-allocation budget as judged
// by the compiler's own escape analysis. This package is compiled
// with -gcflags=-m by the analyzer, so every function here must keep
// deterministic escape behavior.
package hotalloc

// Sum is allocation-free.
//
//lint:hotpath
func Sum(xs []int64) int64 {
	var s int64
	for _, v := range xs {
		s += v
	}
	return s
}

// Leaky returns a fresh heap object with a zero budget.
//
//lint:hotpath
func Leaky() *int { // want `hotpath function Leaky has 1 heap-allocation site\(s\), budget 0`
	return new(int)
}

// Budgeted's contract is "exactly the result slice".
//
//lint:hotpath allocs=1
func Budgeted(n int) []int64 {
	return make([]int64, n)
}

// OverBudget allocates twice against a budget of one.
//
//lint:hotpath allocs=1
func OverBudget(n int) ([]int64, *int) { // want `hotpath function OverBudget has 2 heap-allocation site\(s\), budget 1`
	return make([]int64, n), new(int)
}

// BadBudget carries a malformed annotation.
//
//lint:hotpath allocs=lots
func BadBudget() { // want `malformed //lint:hotpath annotation`
}

// Forgiven allocates deliberately: a cold-start slab carve measured
// outside the warm path.
//
//lint:ignore hotalloc cold-start slab carve, measured by the cold benchmarks instead
//lint:hotpath
func Forgiven() []byte {
	return make([]byte, 64)
}
