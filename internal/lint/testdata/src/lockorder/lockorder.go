// Package lockorder exercises the lockorder analyzer: direct
// two-class cycles, cycles routed through the intra-package call
// graph, same-class recursion, branch-scoped releases, and
// suppression with a reason.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func busy() bool { return false }

// ABPath establishes the A.mu -> B.mu edge.
func ABPath(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// BAPath nests the same classes the other way around.
func BAPath(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `inconsistent lock order: A.mu -> B.mu \(lockorder.go:\d+\), B.mu -> A.mu \(lockorder.go:\d+\)`
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

// Recursive acquires C.mu while an instance of C.mu is already held.
func Recursive(c, d *C) {
	c.mu.Lock()
	d.mu.Lock() // want `lock class C.mu acquired while already held`
	d.mu.Unlock()
	c.mu.Unlock()
}

type D struct{ mu sync.Mutex }

type E struct{ mu sync.Mutex }

func lockE(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}

// DThenE acquires E.mu only transitively, through lockE.
func DThenE(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockE(e)
}

// EThenD closes the cycle against DThenE's call-graph edge.
func EThenD(d *D, e *E) {
	e.mu.Lock()
	d.mu.Lock() // want `inconsistent lock order: D.mu -> E.mu \(lockorder.go:\d+\), E.mu -> D.mu \(lockorder.go:\d+\)`
	d.mu.Unlock()
	e.mu.Unlock()
}

// Retry releases inside a terminated branch: the continuation still
// holds the lock, the loop re-acquire starts a fresh fork, and no
// same-class recursion is reported.
func Retry(a *A, b *B) {
	for {
		a.mu.Lock()
		if busy() {
			a.mu.Unlock()
			continue
		}
		b.mu.Lock()
		b.mu.Unlock()
		a.mu.Unlock()
		return
	}
}

// Spawned goroutines start with an empty held set: no A.mu -> B.mu
// ordering is implied by the enclosing lock.
func Spawn(a *A, b *B) {
	a.mu.Lock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
	}()
	a.mu.Unlock()
}

type F struct{ mu sync.Mutex }

type G struct{ mu sync.Mutex }

// FG establishes F.mu -> G.mu.
func FG(f *F, g *G) {
	f.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	f.mu.Unlock()
}

// GF inverts it deliberately; the suppression carries the reason.
//
//lint:ignore lockorder the G-first path only runs in single-threaded recovery, documented here
func GF(f *F, g *G) {
	g.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	g.mu.Unlock()
}
