// Command mainexempt is analyzer testdata: package main is exempt
// from ctxflow and gocheck — entry points own the root context and
// process-lifetime goroutines.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
	go spin()
}

func spin() {
	for {
	}
}
