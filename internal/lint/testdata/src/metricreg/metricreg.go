// Package metricreg is analyzer testdata: metrics-export agreement.
package metricreg

import "sync/atomic"

// metrics mirrors the engine's atomic counter struct.
type metrics struct {
	hits   atomic.Int64
	misses atomic.Int64
	orphan atomic.Int64 // want `metrics field orphan is not read by Metrics\(\)`
}

// Snapshot mirrors the engine's export struct.
type Snapshot struct {
	HitsTotal   int64 `json:"hits_total"`
	MissesTotal int64 `json:"misses_total"`
	StaleTotal  int64 `json:"stale_total"` // want `Snapshot field StaleTotal is never populated by Metrics\(\)`
	NoTag       int64 // want `Snapshot field NoTag has no json tag`
}

// Engine owns the counters.
type Engine struct{ met metrics }

// Metrics exports the snapshot; misses flows through a helper, which
// still counts as read.
func (e *Engine) Metrics() Snapshot {
	return Snapshot{
		HitsTotal:   e.met.hits.Load(),
		MissesTotal: missesOf(&e.met),
		NoTag:       0,
	}
}

func missesOf(m *metrics) int64 { return m.misses.Load() }
