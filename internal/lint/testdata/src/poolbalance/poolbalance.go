// Package poolbalance is analyzer testdata: sync.Pool discipline.
package poolbalance

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

// acquire is an acquire wrapper: the Got value is returned, moving
// ownership to the caller.
func acquire() *buf { return pool.Get().(*buf) }

// release is a release wrapper: it Puts its parameter back.
func release(b *buf) { pool.Put(b) }

// Good defers the Put directly.
func Good() int {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	return len(b.b)
}

// GoodWrapper defers through the wrappers.
func GoodWrapper() int {
	b := acquire()
	defer release(b)
	return len(b.b)
}

// GoodClosure releases inside a deferred closure.
func GoodClosure() int {
	b := acquire()
	defer func() { release(b) }()
	return len(b.b)
}

// Transfer returns the pooled value: ownership moves up, no finding.
func Transfer() *buf {
	b := acquire()
	b.b = b.b[:0]
	return b
}

// Leak never releases.
func Leak() int {
	b := pool.Get().(*buf) // want `pooled value b is never released`
	return len(b.b)
}

// LateRelease releases on only one path, and not via defer.
func LateRelease(skip bool) int {
	b := acquire() // want `pooled value b is released without defer`
	if skip {
		return 0
	}
	n := len(b.b)
	release(b)
	return n
}

// Discard drops the Get result on the floor.
func Discard() {
	pool.Get() // want `result of pool Get is discarded`
}
