// Package poolbalance is analyzer testdata: sync.Pool discipline.
package poolbalance

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

// acquire is an acquire wrapper: the Got value is returned, moving
// ownership to the caller.
func acquire() *buf { return pool.Get().(*buf) }

// release is a release wrapper: it Puts its parameter back.
func release(b *buf) { pool.Put(b) }

// Good defers the Put directly.
func Good() int {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	return len(b.b)
}

// GoodWrapper defers through the wrappers.
func GoodWrapper() int {
	b := acquire()
	defer release(b)
	return len(b.b)
}

// GoodClosure releases inside a deferred closure.
func GoodClosure() int {
	b := acquire()
	defer func() { release(b) }()
	return len(b.b)
}

// Transfer returns the pooled value: ownership moves up, no finding.
func Transfer() *buf {
	b := acquire()
	b.b = b.b[:0]
	return b
}

// slabPool recycles byte slabs, the trace.AcquireInsts shape.
var slabPool = sync.Pool{New: func() any { return []byte(nil) }}

// TransferReslice returns a reslice of the pooled value: the backing
// array moves to the caller, no finding.
func TransferReslice(n int) []byte {
	s, _ := slabPool.Get().([]byte)
	if cap(s) >= n {
		return s[:0]
	}
	return make([]byte, 0, n)
}

// holder is an arena-style container: the pooled value rides inside
// the struct that it backs, and whoever holds the struct owes the
// Release.
type holder struct{ b *buf }

// TransferComposite stores the pooled value into a returned composite
// literal: ownership follows the container, no finding.
func TransferComposite() *holder {
	b := acquire()
	return &holder{b: b}
}

// TransferField stores the pooled value into a struct field after the
// fact: same container transfer, no finding.
func TransferField(h *holder) {
	b := acquire()
	h.b = b
}

// Leak never releases.
func Leak() int {
	b := pool.Get().(*buf) // want `pooled value b is never released`
	return len(b.b)
}

// LateRelease releases on only one path, and not via defer.
func LateRelease(skip bool) int {
	b := acquire() // want `pooled value b is released without defer`
	if skip {
		return 0
	}
	n := len(b.b)
	release(b)
	return n
}

// Discard drops the Get result on the floor.
func Discard() {
	pool.Get() // want `result of pool Get is discarded`
}
