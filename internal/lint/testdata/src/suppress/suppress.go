// Package suppress is analyzer testdata proving the
// //lint:ignore mechanism: suppressed violations carry no want
// comment, so any finding that leaks through fails the test.
package suppress

import "context"

func step(ctx context.Context) error { return ctx.Err() }

// Root is a documented infallible wrapper: the ignore in the doc
// comment suppresses ctxflow findings anywhere in the function,
// covering both the missing parameter and the Background call.
//
//lint:ignore ctxflow infallible wrapper; a background ctx cannot cancel
func Root() error {
	return step(context.Background())
}

// inline suppresses one finding with a comment on the line above.
func inline() error {
	//lint:ignore ctxflow deliberate: startup path has no caller ctx
	ctx := context.Background()
	return step(ctx)
}

// sameLine suppresses with a trailing comment.
func sameLine() error {
	return step(context.Background()) //lint:ignore ctxflow deliberate: ditto
}

// star suppresses every analyzer at once.
func star() error {
	//lint:ignore * deliberate: ditto
	ctx := context.Background()
	return step(ctx)
}

// reasonless ignores are inert: a suppression without a reason
// suppresses nothing, so the finding still fires.
func reasonless() error {
	//lint:ignore ctxflow
	ctx := context.Background() // want `context\.Background\(\) in library code`
	return step(ctx)
}

// wrongName ignores some other analyzer: ctxflow still fires.
func wrongName() error {
	//lint:ignore poolbalance wrong analyzer on purpose
	ctx := context.Background() // want `context\.Background\(\) in library code`
	return step(ctx)
}

// modeKind exercises the edgeswitch escape hatches side by side.
type modeKind uint8

const (
	modeA modeKind = iota
	modeB
)

// suppressedSwitch hides modeB behind a quiet default, annotated as
// deliberate.
func suppressedSwitch(k modeKind) int {
	//lint:ignore edgeswitch tri-state semantics: everything else is modeB-like
	switch k {
	case modeA:
		return 1
	default:
		return 0
	}
}

// panicDefault needs no suppression: the default panics, which is the
// sanctioned escape hatch.
func panicDefault(k modeKind) int {
	switch k {
	case modeA:
		return 1
	default:
		panic("suppress: unknown modeKind")
	}
}

var (
	_ = inline
	_ = sameLine
	_ = star
	_ = reasonless
	_ = wrongName
	_ = suppressedSwitch
	_ = panicDefault
)
