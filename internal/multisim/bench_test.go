package multisim

import (
	"context"
	"testing"

	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/workload"
)

// benchCats is a four-category subset: the power set is 16 unions, so
// one breakdown costs 16 idealized re-simulations — enough to expose
// the fan-out without the full 256-simulation blow-up.
var benchCats = []depgraph.Flags{
	depgraph.IdealDMiss, depgraph.IdealBMisp, depgraph.IdealWindow, depgraph.IdealBW,
}

// BenchmarkMultisimBreakdown measures the paper's multiple-simulation
// baseline: every power-set union of benchCats evaluated by idealized
// re-simulation. Each iteration starts from a fresh analyzer so every
// union is re-simulated (nothing rides the memo).
func BenchmarkMultisimBreakdown(b *testing.B) {
	tr, err := workload.Load("mcf", 7, 6000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ooo.DefaultConfig()
	unions := make([]depgraph.Flags, 0, 1<<len(benchCats))
	for m := 1; m < 1<<len(benchCats); m++ {
		var u depgraph.Flags
		for j, f := range benchCats {
			if m&(1<<j) != 0 {
				u |= f
			}
		}
		unions = append(unions, u)
	}
	b.ReportAllocs()
	b.ResetTimer()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		a, err := New(tr, cfg, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.PrewarmCtx(ctx, unions); err != nil {
			b.Fatal(err)
		}
		for _, u := range unions {
			a.Cost(u)
		}
	}
	b.ReportMetric(float64(len(unions)), "sims/op")
}
