// Package multisim implements the paper's baseline methodology for
// measuring costs: run one idealized simulation per cost query
// (Section 6, "multiple-simulation approach"). It is the ground truth
// the dependence-graph analysis (packages depgraph/cost) and the
// shotgun profiler (package profiler) are validated against in
// Table 7, and it is deliberately expensive: a full breakdown costs
// one complete machine simulation per power-set member, which is
// exactly the 2^n blow-up the graph method avoids.
//
// Unlike the pure graph analysis, an idealized re-simulation
// re-arbitrates structural resources — functional-unit contention and
// taken-branch fetch breaks are recomputed under the idealization —
// so its answers differ (slightly, in this implementation) from the
// graph's frozen-latency answers. That difference is the model error
// Table 7 quantifies.
package multisim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/trace"
)

// New returns a cost analyzer whose execution times come from
// idealized re-simulation of tr on cfg, skipping warmup instructions
// before timing (every re-simulation warms identically). Batched
// queries (PrewarmCtx) fan the independent re-simulations over a
// GOMAXPROCS-bounded worker pool; see NewWorkers.
func New(tr *trace.Trace, cfg ooo.Config, warmup int) (*cost.Analyzer, error) {
	return NewWorkers(tr, cfg, warmup, 0)
}

// NewWorkers is New with an explicit fan-out width for batched
// queries: workers <= 0 means GOMAXPROCS, 1 forces serial evaluation.
// Every re-simulation is an independent pure function of (trace,
// config, flags) — the simulator never mutates the trace — so the
// fan-out is result-identical to serial evaluation, just faster; the
// serial width exists as the reference for that property test. The
// configuration is validated up front; simulation failures afterward
// indicate programming errors and panic.
func NewWorkers(tr *trace.Trace, cfg ooo.Config, warmup, workers int) (*cost.Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if warmup < 0 || warmup >= tr.Len() {
		return nil, fmt.Errorf("multisim: warmup %d outside trace of %d", warmup, tr.Len())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eval := func(f depgraph.Flags) int64 {
		res, err := ooo.Simulate(tr, cfg, ooo.Options{Ideal: f, Warmup: warmup})
		if err != nil {
			panic(fmt.Sprintf("multisim: resimulation failed: %v", err))
		}
		return res.Cycles
	}
	if workers == 1 {
		return cost.NewFromFunc(eval), nil
	}
	evalBatch := func(ctx context.Context, flags []depgraph.Flags) ([]int64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out := make([]int64, len(flags))
		nw := workers
		if nw > len(flags) {
			nw = len(flags)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(flags) || ctx.Err() != nil {
						return
					}
					out[i] = eval(flags[i])
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	return cost.NewFromBatchFunc(eval, evalBatch), nil
}
