// Package multisim implements the paper's baseline methodology for
// measuring costs: run one idealized simulation per cost query
// (Section 6, "multiple-simulation approach"). It is the ground truth
// the dependence-graph analysis (packages depgraph/cost) and the
// shotgun profiler (package profiler) are validated against in
// Table 7, and it is deliberately expensive: a full breakdown costs
// one complete machine simulation per power-set member, which is
// exactly the 2^n blow-up the graph method avoids.
//
// Unlike the pure graph analysis, an idealized re-simulation
// re-arbitrates structural resources — functional-unit contention and
// taken-branch fetch breaks are recomputed under the idealization —
// so its answers differ (slightly, in this implementation) from the
// graph's frozen-latency answers. That difference is the model error
// Table 7 quantifies.
package multisim

import (
	"fmt"

	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/trace"
)

// New returns a cost analyzer whose execution times come from
// idealized re-simulation of tr on cfg, skipping warmup instructions
// before timing (every re-simulation warms identically). The
// configuration is validated up front; simulation failures afterward
// indicate programming errors and panic.
func New(tr *trace.Trace, cfg ooo.Config, warmup int) (*cost.Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if warmup < 0 || warmup >= tr.Len() {
		return nil, fmt.Errorf("multisim: warmup %d outside trace of %d", warmup, tr.Len())
	}
	eval := func(f depgraph.Flags) int64 {
		res, err := ooo.Simulate(tr, cfg, ooo.Options{Ideal: f, Warmup: warmup})
		if err != nil {
			panic(fmt.Sprintf("multisim: resimulation failed: %v", err))
		}
		return res.Cycles
	}
	return cost.NewFromFunc(eval), nil
}
