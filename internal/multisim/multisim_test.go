package multisim

import (
	"testing"

	"icost/internal/cost"
	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/workload"
)

func TestResimCostsMatchDirectSimulation(t *testing.T) {
	tr, err := workload.Load("gzip", 1, 8000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ooo.DefaultConfig()
	a, err := New(tr, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ooo.Simulate(tr, cfg, ooo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.BaseTime() != base.Cycles {
		t.Fatalf("base %d != sim %d", a.BaseTime(), base.Cycles)
	}
	ideal, err := ooo.Simulate(tr, cfg, ooo.Options{Ideal: depgraph.IdealDMiss})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Cost(depgraph.IdealDMiss); got != base.Cycles-ideal.Cycles {
		t.Fatalf("cost %d != %d", got, base.Cycles-ideal.Cycles)
	}
}

func TestResimCloseToGraphAnalysis(t *testing.T) {
	// The graph freezes arbitration; resimulation redoes it. The two
	// must agree closely (the paper reports ~11% average error for a
	// much coarser graph model; ours is near-exact by construction).
	tr, err := workload.Load("parser", 1, 12000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ooo.DefaultConfig()
	ms, err := New(tr, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ooo.Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ga := cost.New(res.Graph)
	if ga.BaseTime() != ms.BaseTime() {
		t.Fatalf("base disagreement: graph %d, resim %d", ga.BaseTime(), ms.BaseTime())
	}
	for _, f := range []depgraph.Flags{
		depgraph.IdealDL1, depgraph.IdealDMiss, depgraph.IdealBMisp,
		depgraph.IdealWindow, depgraph.IdealBW,
	} {
		cg, cm := ga.Cost(f), ms.Cost(f)
		diff := cg - cm
		if diff < 0 {
			diff = -diff
		}
		// Within 10% of total time of each other.
		if float64(diff) > 0.10*float64(ga.BaseTime()) {
			t.Errorf("cost(%v): graph %d vs resim %d (base %d)", f, cg, cm, ga.BaseTime())
		}
	}
}

func TestGuards(t *testing.T) {
	tr, err := workload.Load("gzip", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	bad := ooo.DefaultConfig()
	bad.Graph.DL1Latency = 99
	if _, err := New(tr, bad, 0); err == nil {
		t.Fatal("accepted inconsistent config")
	}
	tr.Insts = nil
	if _, err := New(tr, ooo.DefaultConfig(), 0); err == nil {
		t.Fatal("accepted empty trace")
	}
}

func TestEventSetMethodsPanicWithoutGraph(t *testing.T) {
	tr, err := workload.Load("gzip", 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(tr, ooo.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CostSet on resim analyzer did not panic")
		}
	}()
	a.CostSet(depgraph.Ideal{Global: depgraph.IdealDMiss})
}
