package multisim

import (
	"context"
	"testing"

	"icost/internal/depgraph"
	"icost/internal/ooo"
	"icost/internal/workload"
)

// TestParallelBitIdentical proves the fan-out legality claim: costs
// from the worker-pool batch backend equal the serial reference for
// every power-set union, because each idealized re-simulation is an
// independent pure function of (trace, config, flags).
func TestParallelBitIdentical(t *testing.T) {
	tr, err := workload.Load("gcc", 11, 4000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ooo.DefaultConfig()
	cats := []depgraph.Flags{
		depgraph.IdealDMiss, depgraph.IdealBMisp, depgraph.IdealWindow, depgraph.IdealBW,
	}
	var unions []depgraph.Flags
	for m := 0; m < 1<<len(cats); m++ {
		var u depgraph.Flags
		for j, f := range cats {
			if m&(1<<j) != 0 {
				u |= f
			}
		}
		unions = append(unions, u)
	}

	serial, err := NewWorkers(tr, cfg, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewWorkers(tr, cfg, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := serial.PrewarmCtx(ctx, unions); err != nil {
		t.Fatal(err)
	}
	if err := parallel.PrewarmCtx(ctx, unions); err != nil {
		t.Fatal(err)
	}
	for _, u := range unions {
		if s, p := serial.ExecTime(u), parallel.ExecTime(u); s != p {
			t.Errorf("union %v: serial %d cycles, parallel %d", u, s, p)
		}
	}
	for _, c := range cats {
		if s, p := serial.Cost(c), parallel.Cost(c); s != p {
			t.Errorf("cost(%v): serial %d, parallel %d", c, s, p)
		}
	}
	s, err := serial.ICost(cats[0], cats[1])
	if err != nil {
		t.Fatal(err)
	}
	p, err := parallel.ICost(cats[0], cats[1])
	if err != nil {
		t.Fatal(err)
	}
	if s != p {
		t.Errorf("icost: serial %d, parallel %d", s, p)
	}
}

// TestParallelCancel checks the batch backend honors ctx: a canceled
// context fails the prewarm instead of running the fleet.
func TestParallelCancel(t *testing.T) {
	tr, err := workload.Load("mcf", 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewWorkers(tr, ooo.DefaultConfig(), 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.PrewarmCtx(ctx, []depgraph.Flags{depgraph.IdealDMiss, depgraph.IdealBMisp}); err == nil {
		t.Fatal("expected context error from canceled prewarm")
	}
}
